package vcc_test

import (
	"bytes"
	"fmt"

	vcc "repro"
)

// ExampleNewMemory shows the end-to-end path: a cache line is encrypted,
// coset-encoded, programmed into simulated MLC PCM, and read back.
func ExampleNewMemory() {
	mem, err := vcc.NewMemory(vcc.MemoryConfig{
		Lines:     64,
		Encoder:   vcc.NewVCCEncoder(256),
		Objective: vcc.OptEnergy,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	line := bytes.Repeat([]byte{0xAB}, vcc.LineSize)
	if _, err := mem.Write(3, line); err != nil {
		panic(err)
	}
	back, _ := mem.Read(3, nil)
	fmt.Println("round trip ok:", bytes.Equal(back, line))
	fmt.Println("writes:", mem.Stats().LineWrites)
	// Output:
	// round trip ok: true
	// writes: 1
}

// ExampleShardedMemory_Session shows the asynchronous submission path
// (the runnable pipeline lives in examples/async_pipeline): Submit
// returns a Ticket immediately, per-shard queues apply tickets in
// submission order — so a read batch submitted after a write batch
// observes every write, without waiting on the first ticket — and
// Wait delivers the outcomes.
func ExampleShardedMemory_Session() {
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:      256,
		Shards:     4,
		NewEncoder: func() vcc.Encoder { return vcc.NewVCCEncoder(256) },
		Seed:       1,
	})
	if err != nil {
		panic(err)
	}
	defer mem.Close()
	sess := mem.Session()

	writes := make([]vcc.Op, 64)
	reads := make([]vcc.Op, 64)
	for i := range writes {
		data := bytes.Repeat([]byte{byte(i)}, vcc.LineSize)
		writes[i] = vcc.Op{Kind: vcc.OpWrite, Line: i, Data: data}
		reads[i] = vcc.Op{Kind: vcc.OpRead, Line: i}
	}
	wt, err := sess.Submit(writes, nil) // returns before any op runs
	if err != nil {
		panic(err)
	}
	rt, err := sess.Submit(reads, nil) // queued behind the writes per shard
	if err != nil {
		panic(err)
	}
	if _, err := wt.Wait(); err != nil {
		panic(err)
	}
	outs, err := rt.Wait()
	if err != nil {
		panic(err)
	}
	ok := true
	for i := range outs {
		ok = ok && bytes.Equal(outs[i].Data, writes[i].Data)
	}
	sess.Drain() // everything submitted through the session is complete
	fmt.Println("round trips ok:", ok)
	fmt.Println("writes:", mem.Stats().LineWrites, "reads:", mem.Stats().LineReads)
	// Output:
	// round trips ok: true
	// writes: 64 reads: 64
}

// ExampleNewMemory_faultMasking demonstrates the Opt.SAW cost function
// masking stuck cells that would corrupt an unencoded memory.
func ExampleNewMemory_faultMasking() {
	cfg := vcc.MemoryConfig{
		Lines:     256,
		Objective: vcc.OptSAW,
		FaultRate: 1e-2,
		Seed:      7,
	}
	line := bytes.Repeat([]byte{0x5C}, vcc.LineSize)

	cfg.Encoder = vcc.NewUnencoded()
	plain, _ := vcc.NewMemory(cfg)
	cfg.Encoder = vcc.NewVCCEncoder(256)
	encoded, _ := vcc.NewMemory(cfg)

	var sawPlain, sawVCC int
	for l := 0; l < 256; l++ {
		a, _ := plain.Write(l, line)
		b, _ := encoded.Write(l, line)
		sawPlain += a
		sawVCC += b
	}
	fmt.Println("unencoded corrupted cells > 100:", sawPlain > 100)
	fmt.Println("VCC corrupted cells < 10% of that:", sawVCC*10 < sawPlain)
	// Output:
	// unencoded corrupted cells > 100: true
	// VCC corrupted cells < 10% of that: true
}
