// Package stats provides the small statistical toolkit used by the
// experiment drivers: summary statistics, confidence intervals,
// histograms, and a geometric mean for normalized-IPC style aggregates.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all values must be positive),
// or 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (stddev/mean), or 0 if the
// mean is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// of xs, using the normal approximation (z = 1.96). With the small sample
// counts used in the experiments (5 seeds, as in the paper) this is an
// approximation, which is fine for the error bars we report.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	CI95   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		CI95:   CI95(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g ±%.3g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max, s.CI95)
}

// Histogram is a fixed-width bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Bins     []int
	Under    int // samples below Lo
	Over     int // samples at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n),
		binWidth: (hi - lo) / float64(n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Bins) { // float edge case at the upper bound
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// RatioTo returns xs scaled so that the element at base index is 1.0.
// Used for "normalized to unencoded" style series.
func RatioTo(xs []float64, base int) []float64 {
	if base < 0 || base >= len(xs) {
		panic("stats: RatioTo base out of range")
	}
	b := xs[base]
	out := make([]float64, len(xs))
	for i, x := range xs {
		if b == 0 {
			out[i] = 0
			continue
		}
		out[i] = x / b
	}
	return out
}
