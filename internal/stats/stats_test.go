package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !approx(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{8, 8, 8}); !approx(got, 8, 1e-12) {
		t.Errorf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !approx(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("single-sample variance should be 0")
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if CoV(xs) != 0 {
		t.Error("constant sample CoV should be 0")
	}
	if CoV([]float64{0, 0}) != 0 {
		t.Error("zero-mean CoV should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Error("Min/Max/Sum wrong")
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interp = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI of one sample should be 0")
	}
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); !approx(got, want, 1e-12) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	for i, b := range h.Bins {
		if b != 1 {
			t.Errorf("bin %d = %d, want 1", i, b)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 13 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestRatioTo(t *testing.T) {
	got := RatioTo([]float64{10, 5, 20}, 0)
	want := []float64{1, 0.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RatioTo[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip pathological magnitudes where the running sum
			// overflows; the experiments never produce them.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
