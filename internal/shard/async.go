package shard

// This file implements the engine's asynchronous submission path: the
// per-shard issue queues, pooled tickets and completion machinery
// behind Submit/Wait and the OnComplete callback form. The synchronous
// Apply (ops.go) is a thin Submit+Wait wrapper, so every request —
// single-op Write/Read, WriteBatch/ReadBatch, mixed Apply batches and
// pipelined async producers — funnels through this one path.
//
// Design:
//
//   - Every shard owns a bounded FIFO issue queue (a buffered channel
//     of by-value entries) drained by a dedicated goroutine. A Submit
//     call groups its ops by shard and enqueues one entry per touched
//     shard, then returns immediately; the producer can generate the
//     next batch while the shards encode this one.
//   - Per-shard order is submission order: entries drain FIFO and each
//     entry's ops run in slice order, so at any in-flight depth the
//     per-shard op sequence — and therefore every statistic and
//     outcome — is exactly what a synchronous replay would produce.
//   - Backpressure is the queue bound: when a shard already has
//     QueueDepth tickets queued, Submit blocks until the drainer
//     catches up. Memory in flight is therefore bounded by
//     shards x QueueDepth tickets regardless of producer speed.
//   - Tickets are pooled and recycled on Wait (or after the callback
//     fires), so steady-state Submit/Wait performs zero heap
//     allocations per op — the same guarantee Apply has always had.
//   - Flush and Close are ordered with in-flight tickets by reusing
//     the queues: both enqueue a flush barrier entry on every shard,
//     so they take effect after everything submitted before them and
//     before anything submitted after.

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/memctrl"
)

// ErrClosed is returned by Submit (and the synchronous wrappers built
// on it: Apply, Write, Read, WriteBatch, ReadBatch) once the engine has
// been Closed.
var ErrClosed = errors.New("shard: engine is closed")

// DefaultQueueDepth is the per-shard issue-queue bound used when
// Config.QueueDepth is zero: at most this many tickets can be queued on
// one shard before Submit blocks.
const DefaultQueueDepth = 32

// issue is one queued unit of work: run ticket t's ops (or its flush
// barrier) on one shard. Issues travel by value through the per-shard
// queues, so enqueueing allocates nothing.
type issue struct {
	t     *Ticket
	shard int
}

// Ticket tracks one asynchronous Submit until completion. A ticket
// returned by Submit must be Waited exactly once: Wait blocks until
// every shard has applied the ticket's ops, returns the outcomes, and
// recycles the ticket. Tickets submitted with a callback complete
// through the callback instead and must not be Waited.
//
// Until the ticket completes, the submitted op and outcome slices
// belong to the engine: the caller must not read or modify them (reads
// fill op Data buffers, writes consume them) before Wait returns or the
// callback fires.
type Ticket struct {
	e   *Engine
	ops []Op
	out []Outcome
	// byShard[s] lists op indices owned by shard s, in submission order.
	byShard [][]int
	// active lists the shards with at least one op, in first-touch order.
	active []int
	// pending counts shards that have not finished their part yet; the
	// drainer that decrements it to zero completes the ticket.
	pending atomic.Int32
	// done carries the completion signal for Wait-form tickets. It is
	// allocated once per pooled ticket (capacity 1) and reused forever.
	done chan struct{}
	// cb, when set, is invoked on completion instead of signaling done.
	cb func([]Outcome, error)
	// cbStats, when set, is the statistics-carrying completion callback
	// (SubmitFuncStats); mutually exclusive with cb.
	cbStats func([]Outcome, memctrl.Stats, error)
	// track enables per-ticket statistics accumulation: each drainer
	// folds its shard's Stats delta into stats. statsMu guards the fold —
	// a ticket's shards finish concurrently.
	track   bool
	statsMu sync.Mutex
	stats   memctrl.Stats
	// sess, when set, is the Session whose Drain tracks this ticket.
	sess *Session
	// flush marks a Flush/Close barrier: drainers flush their shard's
	// store stack instead of running ops.
	flush bool
	// inval marks a DropCaches barrier: drainers invalidate their
	// shard's decoded-line cache (dirty data lost) instead of running
	// ops. Mutually exclusive with flush.
	inval bool
	err   error
}

// Wait blocks until every shard has applied the ticket's ops, then
// returns the outcome slice (the one sized by Submit, indexed like the
// submitted ops). It must be called exactly once, and only for tickets
// obtained from Submit (not SubmitFunc); the ticket is recycled when it
// returns.
func (t *Ticket) Wait() ([]Outcome, error) {
	<-t.done
	out, err := t.out, t.err
	t.e.putTicket(t)
	return out, err
}

// runShard executes the ticket's ops for shard s in submission order
// and folds the shard's statistics delta into the live counters. The
// caller must hold e.mu[s].
func (t *Ticket) runShard(s int) {
	e := t.e
	b := e.backends[s]
	before := b.StackStats()
	for _, i := range t.byShard[s] {
		op := &t.ops[i]
		local := e.part.LocalOf(op.Line)
		if op.Kind == OpWrite {
			saw, err := b.WriteLine(local, op.Data)
			t.out[i] = Outcome{SAWCells: saw, Err: err}
		} else {
			data, err := b.ReadLine(local, op.Data)
			t.out[i] = Outcome{Data: data, Err: err}
		}
	}
	delta := b.StackStats().Delta(before)
	e.live.add(delta)
	if t.track {
		t.statsMu.Lock()
		t.stats.Add(delta)
		t.statsMu.Unlock()
	}
}

// finish completes the ticket once the last shard is done: callback
// tickets are recycled and then fire their callback; Wait-form tickets
// signal done and are recycled by Wait. The session counter (if any) is
// released last, so Session.Drain returning means every callback has
// also returned.
func (t *Ticket) finish() {
	sess := t.sess
	switch {
	case t.cb != nil:
		cb, out, err := t.cb, t.out, t.err
		t.e.putTicket(t)
		cb(out, err)
	case t.cbStats != nil:
		cb, out, stats, err := t.cbStats, t.out, t.stats, t.err
		t.e.putTicket(t)
		cb(out, stats, err)
	default:
		t.done <- struct{}{}
	}
	if sess != nil {
		sess.wg.Done()
	}
}

// getTicket fetches a recycled ticket (or builds one via the pool).
func (e *Engine) getTicket() *Ticket {
	return e.tickets.Get().(*Ticket)
}

// putTicket resets and recycles a ticket. Only the shards actually
// touched are cleared, so huge shard counts don't pay a full sweep per
// batch; the caller's op/outcome slices are released to keep the pool
// from pinning them.
func (e *Engine) putTicket(t *Ticket) {
	for _, s := range t.active {
		t.byShard[s] = t.byShard[s][:0]
	}
	t.active = t.active[:0]
	t.ops, t.out = nil, nil
	t.cb, t.cbStats, t.sess = nil, nil, nil
	t.track, t.stats = false, memctrl.Stats{}
	t.flush, t.inval = false, false
	t.err = nil
	e.tickets.Put(t)
}

// submit is the single entry point of the request path. It validates
// ops up front (on error nothing is enqueued), sizes the outcome slice
// (reusing out when it has capacity, as Apply always has), groups ops
// by shard, and enqueues one issue per touched shard. With cb == nil it
// returns a ticket to Wait on; with cb set it returns a nil ticket and
// completion is delivered through the callback.
func (e *Engine) submit(ops []Op, out []Outcome, cb func([]Outcome, error),
	cbStats func([]Outcome, memctrl.Stats, error), sess *Session) (*Ticket, error) {
	if err := e.validateOps(ops); err != nil {
		return nil, err
	}
	if cap(out) >= len(ops) {
		out = out[:len(ops)]
	} else {
		out = make([]Outcome, len(ops))
	}
	t := e.getTicket()
	t.ops, t.out, t.cb, t.sess = ops, out, cb, sess
	t.cbStats = cbStats
	t.track = cbStats != nil
	for i := range ops {
		s := e.part.ShardOf(ops[i].Line)
		if len(t.byShard[s]) == 0 {
			t.active = append(t.active, s)
		}
		t.byShard[s] = append(t.byShard[s], i)
	}
	t.pending.Store(int32(len(t.active)))
	// The read lock pairs with Close's write lock: a Submit that passes
	// the closed check finishes enqueueing before Close can close the
	// queues, so enqueueing never races teardown.
	e.qmu.RLock()
	if e.closed {
		e.qmu.RUnlock()
		e.putTicket(t)
		return nil, ErrClosed
	}
	if sess != nil {
		sess.wg.Add(1)
	}
	if len(t.active) == 0 {
		// Empty batch: complete immediately (Wait will consume the
		// buffered done signal; a callback fires inline).
		e.qmu.RUnlock()
		t.finish()
	} else {
		for _, s := range t.active {
			e.queues[s] <- issue{t: t, shard: s}
		}
		e.qmu.RUnlock()
	}
	if cb != nil || cbStats != nil {
		return nil, nil
	}
	return t, nil
}

// Submit enqueues a mixed stream of reads and writes on the issue
// queues of the shards it touches and returns a Ticket immediately,
// without waiting for any op to execute. Ops are validated up front; on
// error nothing is enqueued.
//
// Ordering: ops addressed to the same shard are applied in slice order,
// and successive Submit calls (from one goroutine, or otherwise ordered
// by the caller) drain per shard in submission order — so any pipeline
// of in-flight tickets produces outcomes and statistics bit-identical
// to the same ops applied synchronously.
//
// Backpressure: Submit blocks when a touched shard already has
// QueueDepth tickets queued.
//
// The returned ticket must be Waited exactly once; until then the op
// and outcome slices belong to the engine. out is reused when it has
// capacity for len(ops) outcomes and allocated otherwise — with pooled
// tickets and recycled buffers, steady-state Submit/Wait performs zero
// heap allocations per op.
func (e *Engine) Submit(ops []Op, out []Outcome) (*Ticket, error) {
	return e.submit(ops, out, nil, nil, nil)
}

// SubmitFunc is the callback form of Submit: fn is invoked exactly once
// when every shard has applied the ops, receiving the sized outcome
// slice. The callback runs on an engine drainer goroutine — except for
// an empty batch, which completes inline, running fn on the caller's
// goroutine before SubmitFunc returns — and must not block (a blocked
// callback stalls that shard's queue); to chain heavy work, hand off
// to another goroutine. There is no ticket to Wait on.
func (e *Engine) SubmitFunc(ops []Op, out []Outcome, fn func([]Outcome, error)) error {
	if fn == nil {
		return errors.New("shard: SubmitFunc requires a callback")
	}
	_, err := e.submit(ops, out, fn, nil, nil)
	return err
}

// SubmitFuncStats is SubmitFunc with exact per-submission engine
// statistics: fn additionally receives the memctrl.Stats delta this
// batch's ops accumulated across the shards they touched — the same
// per-entry deltas that feed the live counters, folded per ticket. It
// lets a caller attribute engine work (line writes/reads, energy, SAW
// cells, cache hits) to individual submissions — e.g. the network
// server's per-tenant accounting — without snapshotting engine-wide
// Stats around the call or racing a ResetStats from another client.
// Everything else matches SubmitFunc: the callback runs on a drainer
// goroutine (inline for an empty batch) and must not block.
func (e *Engine) SubmitFuncStats(ops []Op, out []Outcome, fn func([]Outcome, memctrl.Stats, error)) error {
	if fn == nil {
		return errors.New("shard: SubmitFuncStats requires a callback")
	}
	_, err := e.submit(ops, out, nil, fn, nil)
	return err
}

// Session is an asynchronous submission handle over an engine's issue
// queues. It adds in-flight tracking to Submit/SubmitFunc: Drain blocks
// until everything submitted through this session has completed
// (including callbacks). Multiple sessions can share one engine; each
// session is intended for a single producer goroutine — Drain must not
// run concurrently with that producer's Submit calls.
type Session struct {
	e  *Engine
	wg sync.WaitGroup
}

// NewSession creates a session over the engine's issue queues.
func (e *Engine) NewSession() *Session { return &Session{e: e} }

// Submit is Engine.Submit, tracked by the session's Drain.
func (s *Session) Submit(ops []Op, out []Outcome) (*Ticket, error) {
	return s.e.submit(ops, out, nil, nil, s)
}

// SubmitFunc is Engine.SubmitFunc, tracked by the session's Drain
// (including its empty-batch inline-completion edge case).
func (s *Session) SubmitFunc(ops []Op, out []Outcome, fn func([]Outcome, error)) error {
	if fn == nil {
		return errors.New("shard: SubmitFunc requires a callback")
	}
	_, err := s.e.submit(ops, out, fn, nil, s)
	return err
}

// SubmitFuncStats is Engine.SubmitFuncStats, tracked by the session's
// Drain.
func (s *Session) SubmitFuncStats(ops []Op, out []Outcome, fn func([]Outcome, memctrl.Stats, error)) error {
	if fn == nil {
		return errors.New("shard: SubmitFuncStats requires a callback")
	}
	_, err := s.e.submit(ops, out, nil, fn, s)
	return err
}

// Drain blocks until every ticket submitted through this session has
// completed, callbacks included. Wait-form tickets still need their own
// Wait call (Drain does not consume or recycle them).
func (s *Session) Drain() { s.wg.Wait() }

// drain serves shard s's issue queue until the engine closes it. The
// drainer is the only goroutine that runs ops on shard s, so the shard
// pipeline needs no internal locking; e.mu[s] is held per entry only to
// exclude the snapshot readers (Stats, ShardStats, StuckCells, ...).
func (e *Engine) drain(s int) {
	defer e.drained.Done()
	for iss := range e.queues[s] {
		t := iss.t
		if e.sem != nil {
			// The semaphore bounds cross-shard parallelism to the
			// configured worker count; order within this shard is fixed
			// by the queue, so the bound cannot affect results.
			e.sem <- struct{}{}
		}
		e.mu[s].Lock()
		switch {
		case t.flush:
			b := e.backends[s]
			before := b.StackStats()
			ferr := b.Store.Flush()
			e.live.add(b.StackStats().Delta(before))
			if ferr != nil {
				// First failing shard wins; statsMu doubles as the guard
				// since a barrier ticket never tracks stats.
				t.statsMu.Lock()
				if t.err == nil {
					t.err = ferr
				}
				t.statsMu.Unlock()
			}
		case t.inval:
			if c := e.backends[s].Cache; c != nil {
				c.Invalidate()
			}
		default:
			t.runShard(s)
		}
		e.mu[s].Unlock()
		if e.sem != nil {
			<-e.sem
		}
		if t.pending.Add(-1) == 0 {
			t.finish()
		}
	}
}

// barrier enqueues a flush or invalidate ticket on every shard and
// returns it. The caller must guarantee the queues stay open (hold
// qmu.RLock, or be the Close call that will close them afterwards).
func (e *Engine) barrier(inval bool) *Ticket {
	t := e.getTicket()
	t.flush, t.inval = !inval, inval
	t.pending.Store(int32(len(e.queues)))
	for s := range e.queues {
		e.queues[s] <- issue{t: t, shard: s}
	}
	return t
}

// flushBarrier enqueues a flush ticket on every shard and returns it.
func (e *Engine) flushBarrier() *Ticket { return e.barrier(false) }

// Flush forces every shard's deferred writes (dirty write-back cache
// lines) down to its device, folding the resulting statistics into the
// live counters. It is a no-op on uncached and write-through engines,
// and on closed engines (Close already flushed). Safe for concurrent
// use; the flush rides the issue queues as a barrier, so it covers
// everything submitted before it and nothing submitted after. On a
// device error the first failing shard's error is returned; the
// affected lines stay dirty in their caches and a later Flush retries
// them.
func (e *Engine) Flush() error {
	e.qmu.RLock()
	if e.closed {
		e.qmu.RUnlock()
		return nil
	}
	t := e.flushBarrier()
	e.qmu.RUnlock()
	_, err := t.Wait()
	return err
}

// DropCaches simulates a power loss of the volatile layer: every
// shard's decoded-line cache is invalidated without writing anything
// back, so dirty write-back lines are lost and subsequent reads observe
// whatever the (persistent) device last stored. The controller's coset
// auxiliary bits and the remapping decorator's translation table are
// modeled as living in the device's persistent metadata region, so both
// survive. It is a no-op on uncached engines and on closed engines.
// Like Flush it rides the issue queues as a barrier: everything
// submitted before it is applied (or absorbed into the cache, and then
// lost) first, nothing submitted after is affected.
func (e *Engine) DropCaches() {
	e.qmu.RLock()
	if e.closed {
		e.qmu.RUnlock()
		return
	}
	t := e.barrier(true)
	e.qmu.RUnlock()
	t.Wait()
}

// Close drains all in-flight tickets, flushes deferred writes, and
// shuts down the issue queues and their drainer goroutines. It is
// idempotent and safe for concurrent use: the first call tears down,
// later calls wait for that teardown and return. After Close, Submit
// and every wrapper built on it (Apply, Write, Read, WriteBatch,
// ReadBatch) return ErrClosed; the snapshot accessors (Stats,
// ShardStats, Counters, StuckCells, FailedCells) keep working.
//
// Engines that live for the whole process need not be closed — but
// write-back cached engines must be Flushed (or Closed) before the
// device state is inspected.
func (e *Engine) Close() {
	e.qmu.Lock()
	if e.closed {
		e.qmu.Unlock()
		<-e.closedCh
		return
	}
	e.closed = true
	e.qmu.Unlock()
	// New submissions are now rejected; everything already queued (plus
	// this barrier) still drains, so no accepted ticket is ever dropped.
	e.flushBarrier().Wait()
	for _, q := range e.queues {
		close(q)
	}
	e.drained.Wait()
	close(e.closedCh)
}
