//go:build !race

package shard

// Measured without the race detector: -race instrumentation itself
// allocates (channel shadowing, pool tracking), which would mask the
// encode path's own behavior. The same convention as the top-level
// alloc_guard_test.go.

import (
	"testing"

	"repro/internal/coset"
	"repro/internal/prng"
)

// TestApplySteadyStateAllocsSlicedEncoders is the 0-alloc guard of the
// full line pipeline: once warm, Engine.Apply of a mixed read/write
// batch with a reused Outcome slice must not allocate — per-batch
// dispatch state lives in pooled tickets, every sliced encoder prices
// candidates out of the controller-owned SlicedCtx (rebinding through
// the line-scoped fingerprint), and reads decode through the batched
// DecodeWords fast path (all three codecs implement LineDecoder).
// VCC-Generated is the teeth of the write-side guard: its BindFor hint
// rebuilds the nibble count tables (and on an energy objective the etab
// cache) on every word, so steady-state table construction is proven
// allocation-free, not just assumed — the tables are fixed arrays owned
// by the SlicedCtx, overwritten in place across rebinds. Read ops carry
// preallocated destination buffers, matching a steady-state caller.
func TestApplySteadyStateAllocsSlicedEncoders(t *testing.T) {
	codecs := []struct {
		name string
		mk   func() coset.Codec
	}{
		{"VCC-Gen(16,256)", func() coset.Codec { return coset.NewVCCGenerated(16, 256) }},
		{"VCC-Stored(64,256,16)", func() coset.Codec { return coset.NewVCCStored(64, 16, 256, 1) }},
		{"FNW(64,16)", func() coset.Codec { return coset.NewFNW(64, 16) }},
	}
	for _, cc := range codecs {
		t.Run(cc.name, func(t *testing.T) {
			const lines = 64
			e, err := New(Config{
				Lines:     lines,
				Shards:    1,
				Workers:   1,
				NewCodec:  cc.mk,
				Objective: coset.ObjEnergySAW,
				FaultRate: 1e-2, // stuck cells keep the SAW terms live
				Seed:      7,
				// A rate-0 chaos decorator on the stack must stay inert:
				// the error-free fast path through the fault-injection and
				// retry layers is part of the 0-alloc contract.
				Chaos: &ChaosSpec{},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			const batch = 32
			rng := prng.New(11)
			ops := make([]Op, batch)
			for i := range ops {
				data := make([]byte, LineSize)
				rng.Fill(data)
				kind := OpWrite
				if i%4 == 3 { // every 4th op reads back through DecodeWords
					kind = OpRead
				}
				ops[i] = Op{Kind: kind, Line: (i * 7) % lines, Data: data}
			}
			outs := make([]Outcome, batch)
			// One warm pass settles lazily-built scratch (kernel dedupe
			// state, issue-queue ticket pool) before counting.
			if outs, err = e.Apply(ops, outs); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(20, func() {
				var aerr error
				if outs, aerr = e.Apply(ops, outs); aerr != nil {
					t.Fatal(aerr)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Apply allocated %.2f times per batch, want 0", avg)
			}
		})
	}
}
