package shard

import (
	"fmt"
	"sync"
)

// This file implements the engine's unified mixed op-stream path.
// WriteBatch/ReadBatch (shard.go) are thin compatibility wrappers over
// Apply; Apply itself is the hot path and is engineered so steady-state
// dispatch performs zero heap allocations per op:
//
//   - the shard grouping plan (per-shard index lists, active-shard list,
//     completion WaitGroup) lives in a per-engine sync.Pool and is
//     recycled across batches;
//   - results go into a caller-reusable Outcome slice;
//   - multi-worker dispatch feeds a persistent worker pool (spawned once
//     at New) through a buffered channel of by-value tasks, so no
//     goroutines, channels or closures are created per batch.

// OpKind distinguishes reads from writes in a mixed op stream.
type OpKind uint8

const (
	// OpWrite stores a 64-byte line.
	OpWrite OpKind = iota
	// OpRead retrieves a 64-byte line.
	OpRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one element of a mixed read/write request stream.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Line is the global line index.
	Line int
	// Data is the 64-byte plaintext to store (OpWrite; the engine does
	// not retain it past the Apply call) or an optional destination
	// buffer (OpRead; allocated when nil).
	Data []byte
}

// Outcome is the per-op result of Apply, indexed like the op slice.
type Outcome struct {
	// SAWCells is the stuck-at-wrong cell count of the stored line
	// (OpWrite only).
	SAWCells int
	// Data is the plaintext read back (OpRead only). It aliases the
	// op's Data buffer when one was provided, otherwise it is freshly
	// allocated.
	Data []byte
}

// task is one unit of worker-pool work: run plan p's ops for one shard.
// Tasks travel by value through the jobs channel, so dispatch allocates
// nothing.
type task struct {
	p     *plan
	shard int
}

// plan is the reusable scratch state of one Apply call.
type plan struct {
	e   *Engine
	ops []Op
	out []Outcome
	// byShard[s] lists op indices owned by shard s, in submission order.
	byShard [][]int
	// active lists the shards with at least one op, in first-touch order.
	active []int
	wg     sync.WaitGroup
}

// getPlan fetches a recycled plan (or builds one) and binds it to the
// batch.
func (e *Engine) getPlan(ops []Op, out []Outcome) *plan {
	p := e.plans.Get().(*plan)
	p.ops, p.out = ops, out
	return p
}

// putPlan resets and recycles a plan. Only the shards actually touched
// are cleared, so huge shard counts don't pay a full sweep per batch;
// the caller's op/outcome slices are released to keep the pool from
// pinning them.
func (e *Engine) putPlan(p *plan) {
	for _, s := range p.active {
		p.byShard[s] = p.byShard[s][:0]
	}
	p.active = p.active[:0]
	p.ops, p.out = nil, nil
	e.plans.Put(p)
}

// runShard executes plan p's ops for shard s in submission order. The
// caller must hold e.mu[s].
func (p *plan) runShard(s int) {
	e := p.e
	b := e.backends[s]
	before := b.Store.Stats()
	for _, i := range p.byShard[s] {
		op := &p.ops[i]
		local := e.part.LocalOf(op.Line)
		if op.Kind == OpWrite {
			p.out[i] = Outcome{SAWCells: b.WriteLine(local, op.Data)}
		} else {
			p.out[i] = Outcome{Data: b.Store.ReadLine(local, op.Data)}
		}
	}
	e.live.add(b.Store.Stats().Delta(before))
}

// worker serves the persistent pool: it claims tasks until the jobs
// channel closes, taking the shard lock around each one.
func worker(jobs <-chan task) {
	for t := range jobs {
		e := t.p.e
		e.mu[t.shard].Lock()
		t.p.runShard(t.shard)
		e.mu[t.shard].Unlock()
		t.p.wg.Done()
	}
}

// Apply executes a mixed stream of reads and writes and returns one
// Outcome per op, indexed like ops. Ops are validated up front; on error
// nothing is executed.
//
// Ordering: ops addressed to the same shard are applied in slice order,
// interleaving reads and writes exactly as submitted, so a batch is
// equivalent to a deterministic sequential interleaving regardless of
// worker count (ops on different shards touch disjoint state and may
// run in any order).
//
// Allocation: out is reused when it has capacity for len(ops) outcomes
// and allocated otherwise; pass the previous call's slice back to make
// steady-state write dispatch allocation-free. Read outcomes alias the
// op's Data buffer when one is provided and allocate one otherwise.
func (e *Engine) Apply(ops []Op, out []Outcome) ([]Outcome, error) {
	for i := range ops {
		op := &ops[i]
		if err := e.checkLine(op.Line); err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		switch op.Kind {
		case OpWrite:
			if len(op.Data) != LineSize {
				return nil, fmt.Errorf("op %d: write needs %d bytes, got %d", i, LineSize, len(op.Data))
			}
		case OpRead:
			if op.Data != nil && len(op.Data) != LineSize {
				return nil, fmt.Errorf("op %d: read needs a %d-byte buffer, got %d", i, LineSize, len(op.Data))
			}
		default:
			return nil, fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	if cap(out) >= len(ops) {
		out = out[:len(ops)]
	} else {
		out = make([]Outcome, len(ops))
	}
	p := e.getPlan(ops, out)
	for i := range ops {
		s := e.part.ShardOf(ops[i].Line)
		if len(p.byShard[s]) == 0 {
			p.active = append(p.active, s)
		}
		p.byShard[s] = append(p.byShard[s], i)
	}
	if e.jobs == nil || len(p.active) <= 1 {
		for _, s := range p.active {
			e.mu[s].Lock()
			p.runShard(s)
			e.mu[s].Unlock()
		}
	} else {
		p.wg.Add(len(p.active))
		for _, s := range p.active {
			e.jobs <- task{p: p, shard: s}
		}
		p.wg.Wait()
	}
	e.putPlan(p)
	return out, nil
}
