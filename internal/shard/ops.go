package shard

import (
	"fmt"
)

// This file defines the mixed op-stream types and the synchronous
// Apply entry point. Apply is a thin Submit+Wait wrapper over the
// asynchronous issue queues (async.go) — as are WriteBatch/ReadBatch
// and the single-op Write/Read (shard.go) — so the whole request
// surface funnels through one path with one ordering and allocation
// contract:
//
//   - the shard grouping state (per-shard index lists, active-shard
//     list, completion signal) lives in pooled tickets recycled across
//     batches;
//   - results go into a caller-reusable Outcome slice;
//   - dispatch feeds per-shard bounded issue queues drained by
//     persistent goroutines (spawned once at New) through by-value
//     entries, so no goroutines, channels or closures are created per
//     batch.

// OpKind distinguishes reads from writes in a mixed op stream.
type OpKind uint8

const (
	// OpWrite stores a 64-byte line.
	OpWrite OpKind = iota
	// OpRead retrieves a 64-byte line.
	OpRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one element of a mixed read/write request stream.
type Op struct {
	// Kind selects the operation.
	Kind OpKind
	// Line is the global line index.
	Line int
	// Data is the 64-byte plaintext to store (OpWrite; the engine does
	// not retain it past the op's completion) or an optional destination
	// buffer (OpRead; allocated when nil).
	Data []byte
}

// Outcome is the per-op result of Apply/Submit, indexed like the op
// slice.
type Outcome struct {
	// SAWCells is the stuck-at-wrong cell count of the stored line
	// (OpWrite only).
	SAWCells int
	// Data is the plaintext read back (OpRead only). It aliases the
	// op's Data buffer when one was provided, otherwise it is freshly
	// allocated.
	Data []byte
	// Err is the per-op device error, set when the op still failed
	// after the backend's bounded in-place retries (a
	// *memctrl.DeviceError). A failed write may have left corrupted
	// cells behind; a failed read's Data must not be trusted. Other
	// ops of the same batch complete independently.
	Err error
}

// validateOps rejects malformed ops before anything is enqueued.
func (e *Engine) validateOps(ops []Op) error {
	for i := range ops {
		op := &ops[i]
		if err := e.checkLine(op.Line); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		switch op.Kind {
		case OpWrite:
			if len(op.Data) != LineSize {
				return fmt.Errorf("op %d: write needs %d bytes, got %d", i, LineSize, len(op.Data))
			}
		case OpRead:
			if op.Data != nil && len(op.Data) != LineSize {
				return fmt.Errorf("op %d: read needs a %d-byte buffer, got %d", i, LineSize, len(op.Data))
			}
		default:
			return fmt.Errorf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}

// Apply executes a mixed stream of reads and writes and returns one
// Outcome per op, indexed like ops. It is Submit followed by Wait — the
// synchronous view of the issue queues. Ops are validated up front; on
// error nothing is executed. After Close it returns ErrClosed.
//
// Ordering: ops addressed to the same shard are applied in slice order,
// interleaving reads and writes exactly as submitted, so a batch is
// equivalent to a deterministic sequential interleaving regardless of
// worker count or concurrent in-flight tickets on other shards (ops on
// different shards touch disjoint state and may run in any order).
//
// Allocation: out is reused when it has capacity for len(ops) outcomes
// and allocated otherwise; pass the previous call's slice back to make
// steady-state dispatch allocation-free. Read outcomes alias the op's
// Data buffer when one is provided and allocate one otherwise.
func (e *Engine) Apply(ops []Op, out []Outcome) ([]Outcome, error) {
	t, err := e.Submit(ops, out)
	if err != nil {
		return nil, err
	}
	return t.Wait()
}
