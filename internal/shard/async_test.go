package shard

// Tests of the asynchronous submission path: ticket ordering under
// backpressure, callback and session completion, the Flush barrier, and
// the Close lifecycle (idempotency, ErrClosed, post-Close snapshots).

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/coset"
	"repro/internal/linecache"
)

// asyncOps builds a deterministic mixed stream with per-op buffers.
func asyncOps(n, lines int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		data := make([]byte, LineSize)
		for k := range data {
			data[k] = byte(i*37 + k)
		}
		if i%3 == 2 {
			ops[i] = Op{Kind: OpRead, Line: (i * 11) % lines, Data: data}
		} else {
			ops[i] = Op{Kind: OpWrite, Line: (i * 11) % lines, Data: data}
		}
	}
	return ops
}

// TestSubmitPipelineMatchesApply: many tickets in flight through a
// depth-1 queue (maximum backpressure) must produce outcomes, stats and
// final contents identical to one synchronous Apply of the same ops.
func TestSubmitPipelineMatchesApply(t *testing.T) {
	const lines, n, batch = 96, 1200, 24
	mk := func(depth int) *Engine {
		e, err := New(Config{
			Lines: lines, Shards: 3, Workers: 2, QueueDepth: depth,
			NewCodec:  func() coset.Codec { return coset.NewFNW(64, 16) },
			FaultRate: 1e-2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	syncEng := mk(1)
	defer syncEng.Close()
	refOps := asyncOps(n, lines)
	refOuts, err := syncEng.Apply(refOps, nil)
	if err != nil {
		t.Fatal(err)
	}

	async := mk(1) // queue depth 1: every second Submit backpressures
	defer async.Close()
	ops := asyncOps(n, lines)
	var tickets []*Ticket
	for off := 0; off < n; off += batch {
		tk, err := async.Submit(ops[off:off+batch], nil)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	i := 0
	for _, tk := range tickets {
		outs, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		for k := range outs {
			if outs[k].SAWCells != refOuts[i].SAWCells || !bytes.Equal(outs[k].Data, refOuts[i].Data) {
				t.Fatalf("op %d: async outcome diverges from sync Apply", i)
			}
			i++
		}
	}
	if a, b := async.Stats(), syncEng.Stats(); a != b {
		t.Errorf("stats diverge:\nasync %+v\nsync  %+v", a, b)
	}
	for l := 0; l < lines; l++ {
		a, err := async.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := syncEng.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d contents diverge", l)
		}
	}
}

// TestSubmitCallbackAndDrain: the OnComplete form delivers every
// outcome exactly once, and Session.Drain blocks until all callbacks
// have run.
func TestSubmitCallbackAndDrain(t *testing.T) {
	const lines, n, batch = 64, 960, 32
	e := newTestEngine(t, 4, lines)
	defer e.Close()
	sess := e.NewSession()
	ops := asyncOps(n, lines)
	var completed atomic.Int64
	var saw atomic.Int64
	cb := func(outs []Outcome, err error) {
		if err != nil {
			t.Error(err)
		}
		for i := range outs {
			saw.Add(int64(outs[i].SAWCells))
		}
		completed.Add(int64(len(outs)))
	}
	for off := 0; off < n; off += batch {
		if err := sess.SubmitFunc(ops[off:off+batch], nil, cb); err != nil {
			t.Fatal(err)
		}
	}
	sess.Drain()
	if got := completed.Load(); got != n {
		t.Fatalf("callbacks delivered %d outcomes, want %d", got, n)
	}
	// Fault-free engine: SAW must be zero; the point is the sum was
	// readable after Drain without any further synchronization.
	if saw.Load() != 0 {
		t.Errorf("unexpected SAW cells %d on a fault-free engine", saw.Load())
	}
	writes := int64(0)
	for i := range ops {
		if ops[i].Kind == OpWrite {
			writes++
		}
	}
	if got := e.Counters().LineWrites; got != writes {
		t.Errorf("LineWrites %d after Drain, want %d", got, writes)
	}
}

// TestSubmitEmptyBatch: zero-op tickets complete immediately in both
// forms.
func TestSubmitEmptyBatch(t *testing.T) {
	e := newTestEngine(t, 2, 8)
	defer e.Close()
	tk, err := e.Submit(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs, err := tk.Wait(); err != nil || len(outs) != 0 {
		t.Fatalf("empty ticket: outs %v err %v", outs, err)
	}
	fired := false
	if err := e.SubmitFunc(nil, nil, func(outs []Outcome, err error) {
		fired = err == nil && len(outs) == 0
	}); err != nil {
		t.Fatal(err)
	}
	if !fired { // empty callbacks fire inline, before SubmitFunc returns
		t.Error("empty SubmitFunc did not fire its callback")
	}
}

// TestFlushBarrierOrdersWithInFlight: a Flush issued between Submits
// lands after everything already queued, so a write-back engine's
// device accounting is exact for the prefix without waiting on any
// ticket first.
func TestFlushBarrierOrdersWithInFlight(t *testing.T) {
	const lines, n = 64, 600
	e, err := New(Config{
		Lines: lines, Shards: 2, Workers: 2, QueueDepth: 4,
		NewCodec:    func() coset.Codec { return coset.NewFNW(64, 16) },
		Seed:        3,
		CacheLines:  8,
		CachePolicy: linecache.WriteBack,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ops := asyncOps(n, lines)
	writes := int64(0)
	var tickets []*Ticket
	for off := 0; off < n; off += 50 {
		tk, err := e.Submit(ops[off:off+50], nil)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i := range ops {
		if ops[i].Kind == OpWrite {
			writes++
		}
	}
	// Flush before waiting on anything: the barrier must cover all
	// tickets above because they were submitted first.
	e.Flush()
	st := e.Stats()
	if st.LineWrites+st.CoalescedWrites != writes {
		t.Errorf("post-barrier accounting: LineWrites %d + CoalescedWrites %d != logical %d",
			st.LineWrites, st.CoalescedWrites, writes)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseLifecycle is the Close regression suite: idempotent double
// Close (sequential and concurrent), ErrClosed from Submit and every
// wrapper, working snapshots afterwards, and a harmless post-Close
// Flush.
func TestCloseLifecycle(t *testing.T) {
	e := newTestEngine(t, 4, 64)
	data := make([]byte, LineSize)
	if _, err := e.Write(1, data); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // double Close must not panic or hang
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); e.Close() }() // nor concurrent Close
	}
	wg.Wait()

	if _, err := e.Submit(asyncOps(4, 64), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
	if err := e.SubmitFunc(nil, nil, func([]Outcome, error) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("SubmitFunc after Close: %v, want ErrClosed", err)
	}
	if _, err := e.Apply(asyncOps(4, 64), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply after Close: %v, want ErrClosed", err)
	}
	if _, err := e.Write(0, data); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after Close: %v, want ErrClosed", err)
	}
	if _, err := e.Read(0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after Close: %v, want ErrClosed", err)
	}
	if _, err := e.WriteBatch([]WriteReq{{Line: 0, Data: data}}); !errors.Is(err, ErrClosed) {
		t.Errorf("WriteBatch after Close: %v, want ErrClosed", err)
	}
	if _, err := e.ReadBatch([]ReadReq{{Line: 0}}); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadBatch after Close: %v, want ErrClosed", err)
	}
	if _, err := e.NewSession().Submit(nil, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("empty Submit after Close: %v, want ErrClosed", err)
	}
	if got := e.Stats().LineWrites; got != 1 {
		t.Errorf("Stats after Close: LineWrites %d, want 1", got)
	}
	if got := e.Counters().LineWrites; got != 1 {
		t.Errorf("Counters after Close: LineWrites %d, want 1", got)
	}
	e.Flush() // no-op, must not panic
}
