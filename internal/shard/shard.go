// Package shard implements the concurrent sharded memory engine behind
// vcc.ShardedMemory: the line address space is interleaved across N
// independent shards, each owning a complete single-threaded write
// pipeline — its own pcm.Device, cryptmem.Unit, memctrl.Controller,
// coset codec instance and PRNG streams derived from the master seed —
// so shards share no mutable state whatsoever.
//
// Each shard's pipeline is assembled as a memctrl.LineStore stack: the
// controller at the bottom, optionally decorated by a per-shard
// decoded-line cache (internal/linecache) when the configuration asks
// for one. The engine dispatches every operation against the top of the
// stack, so enabling the cache changes no dispatch code anywhere — and
// with the cache disabled the stack is exactly the bare controller,
// bit-identical to the pre-cache engine.
//
// Requests flow through per-shard bounded issue queues (async.go):
// Submit groups a batch's ops by shard, enqueues one entry per touched
// shard and returns a Ticket immediately; a dedicated drainer goroutine
// per shard applies entries FIFO, so op-stream generation overlaps
// encoding across shards. Apply/WriteBatch/ReadBatch and the single-op
// Write/Read are synchronous Submit+Wait wrappers — every caller
// funnels through the one asynchronous path. Three consequences matter:
//
//   - A shard is only ever touched by its own drainer (plus a per-shard
//     mutex excluding snapshot readers), so no locks are needed inside
//     the pipeline. This keeps the single-shard configuration on
//     exactly the code path of the sequential engine: with Shards == 1
//     the engine is bit-identical to a vcc.Memory built from the same
//     configuration (same seed → same cells, energy, SAW counts).
//   - Results are deterministic regardless of scheduling: each shard's
//     device evolves only under its own FIFO request stream, so
//     (config, seed, request sequence) fully determines every statistic
//     and outcome, at any shard, worker or in-flight-ticket count.
//   - Backpressure is structural: a shard's queue holds at most
//     QueueDepth tickets, so a fast producer blocks in Submit instead
//     of growing unbounded in-flight state.
//
// Engine-wide totals are additionally folded into lock-free atomic
// counters (Counters) after every queue entry, so monitoring code can
// observe throughput mid-batch without stopping the drainers.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/coset"
	"repro/internal/cryptmem"
	"repro/internal/faultrepo"
	"repro/internal/linecache"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// LineSize is the cache-line granularity of engine I/O, in bytes.
const LineSize = cryptmem.LineSize

// Partition maps the global line address space onto shards by
// round-robin interleaving: global line g lives in shard g % Shards at
// local index g / Shards. Interleaving (rather than contiguous blocks)
// spreads streaming writers across all shards, which is what makes the
// throughput benchmarks scale on sequential traces.
type Partition struct {
	// Shards is the number of shards (>= 1).
	Shards int
	// Lines is the total number of cache lines across all shards.
	Lines int
}

// ShardOf returns the shard owning global line g.
func (p Partition) ShardOf(g int) int { return g % p.Shards }

// LocalOf returns g's line index within its owning shard.
func (p Partition) LocalOf(g int) int { return g / p.Shards }

// GlobalOf inverts (ShardOf, LocalOf).
func (p Partition) GlobalOf(shard, local int) int { return local*p.Shards + shard }

// ShardLines returns the number of lines owned by shard s.
func (p Partition) ShardLines(s int) int {
	if s >= p.Lines {
		return 0
	}
	return (p.Lines - s + p.Shards - 1) / p.Shards
}

// BackendConfig assembles one shard's pipeline. It mirrors
// vcc.MemoryConfig; vcc.NewMemory delegates here, which is what makes
// the single-shard equivalence structural rather than coincidental.
type BackendConfig struct {
	// Lines is the shard capacity in 64-byte cache lines.
	Lines int
	// Codec encodes each block. It must be owned exclusively by this
	// backend: codec implementations may carry scratch state (e.g.
	// generated-kernel buffers) and are not safe to share across shards.
	Codec coset.Codec
	// Objective drives candidate selection.
	Objective coset.Objective
	// SLC selects single-level cells (default 2-bit MLC).
	SLC bool
	// DisableEncryption bypasses the AES-CTR unit.
	DisableEncryption bool
	// Key is the AES-256 key for the encryption unit.
	Key [32]byte
	// FaultRate pre-generates a stuck-at fault map at this per-cell rate.
	FaultRate float64
	// EnduranceWrites enables wear tracking with this mean cell lifetime.
	EnduranceWrites float64
	// EnduranceCoV is the lifetime coefficient of variation (default 0.2).
	EnduranceCoV float64
	// Seed drives all stochastic initialization of this shard.
	Seed uint64
	// CacheLines, when positive, fronts the controller with a
	// decoded-line LRU cache of that many 64-byte lines
	// (internal/linecache). 0 leaves the stack as the bare controller.
	CacheLines int
	// CachePolicy selects the cache's write policy (write-through by
	// default); meaningful only with CacheLines > 0.
	CachePolicy linecache.Policy
	// RemapSpares, when positive, reserves that many extra physical
	// lines (beyond Lines) as spare rows and layers a fault-repair
	// remapping decorator (memctrl.Remapper) over the controller: a
	// write-verify failure relocates the logical line to a spare and
	// rewrites it there. 0 disables repair; the logical capacity is
	// Lines either way.
	RemapSpares int
	// UseFaultRepo replaces the encoder's oracle fault view with a
	// runtime fault repository (internal/faultrepo): the controller only
	// knows about stuck cells previously observed by verify-after-write,
	// and feeds every write's outcome back in. The repository also
	// informs spare selection when RemapSpares > 0.
	UseFaultRepo bool
	// FaultRepoCache sizes the repository's descriptor cache in words
	// when UseFaultRepo is set; 0 defaults to 256.
	FaultRepoCache int
	// Chaos, when non-nil, installs a deterministic fault-injecting
	// decorator (internal/chaos) at the top of this shard's stack,
	// seeded from the shard seed. A spec with all rates zero still
	// installs the (inert) decorator — useful for proving the healthy
	// path costs nothing.
	Chaos *ChaosSpec
	// OpRetries bounds the backend's in-place retries of an op that
	// failed with a transient device error before the error surfaces in
	// its Outcome. 0 defaults to DefaultOpRetries; negative disables
	// retries.
	OpRetries int
}

// ChaosSpec carries the fault-injection rates of the chaos decorator
// without its assembly details (the inner store and seed are supplied
// by the backend). See internal/chaos for the fault taxonomy.
type ChaosSpec struct {
	// ReadErrRate is the transient read-error probability per read.
	ReadErrRate float64
	// WriteErrRate is the transient write-error probability per write.
	WriteErrRate float64
	// TornWriteRate is the torn-write probability per write (corrupted
	// image stored, typed error returned).
	TornWriteRate float64
	// ReadCorruptRate is the corrupted-read probability per read
	// (bit-flipped data returned alongside a typed error).
	ReadCorruptRate float64
	// StallRate is the latency-stall probability per op.
	StallRate float64
	// StallDelay is the stall duration (default 100µs).
	StallDelay time.Duration
}

// DefaultOpRetries is the bounded in-place retry budget a backend
// spends on a transiently-faulted op before surfacing the error.
const DefaultOpRetries = 2

// Backend is one shard's fully-assembled pipeline, a LineStore stack.
// It is not safe for concurrent use; the Engine serializes access per
// shard.
type Backend struct {
	// Store is the top of the stack — the cache when one is configured,
	// then the remapping decorator, then the controller. All I/O
	// dispatches through it.
	Store memctrl.LineStore
	// Ctrl is the bottom of the stack, the controller that owns the
	// device datapath.
	Ctrl *memctrl.Controller
	Dev  *pcm.Device
	// Remap is the fault-repair remapping decorator (nil when
	// RemapSpares was 0).
	Remap *memctrl.Remapper
	// Repo is the runtime fault repository (nil when UseFaultRepo was
	// false).
	Repo *faultrepo.Repo
	// Cache is the decoded-line cache at the top of the stack (nil when
	// CacheLines was 0).
	Cache *linecache.Cache
	// Chaos is the fault-injecting decorator at the very top of the
	// stack (nil when no ChaosSpec was configured).
	Chaos *chaos.Store
	// opRetries is the bounded in-place retry budget for transiently
	// faulted ops; errorRetries counts retries actually spent. Both are
	// only touched by the owning shard's drainer (or under its lock).
	opRetries    int
	errorRetries int64
}

// NewBackend builds one pipeline from cfg. The PRNG stream labels are
// those historically used by vcc.NewMemory, so a backend seeded like a
// vcc.Memory initializes identical cells, faults and endurance draws.
func NewBackend(cfg BackendConfig) (*Backend, error) {
	if cfg.Lines <= 0 {
		return nil, fmt.Errorf("shard: Lines must be positive, got %d", cfg.Lines)
	}
	if cfg.Codec == nil {
		return nil, fmt.Errorf("shard: Codec is required")
	}
	mode := pcm.MLC
	if cfg.SLC {
		mode = pcm.SLC
	}
	if cfg.RemapSpares < 0 {
		return nil, fmt.Errorf("shard: RemapSpares must be >= 0, got %d", cfg.RemapSpares)
	}
	// Spare rows for the remapping decorator are physical capacity beyond
	// the logical Lines; faults, wear and encryption cover them too.
	physLines := cfg.Lines + cfg.RemapSpares
	words := physLines * memctrl.WordsPerLine
	var faults *pcm.FaultMap
	if cfg.FaultRate > 0 {
		faults = pcm.Generate(mode, words, pcm.FaultParams{CellRate: cfg.FaultRate},
			prng.NewFrom(cfg.Seed, "vcc-faults"))
	}
	var wear *pcm.Wear
	if cfg.EnduranceWrites > 0 {
		cov := cfg.EnduranceCoV
		if cov == 0 {
			cov = 0.2
		}
		wear = pcm.NewWear(words*mode.CellsPerWord(),
			pcm.WearParams{MeanWrites: cfg.EnduranceWrites, CoV: cov},
			prng.NewFrom(cfg.Seed, "vcc-endurance"))
	}
	dev := pcm.NewDevice(pcm.Config{
		Mode: mode, Rows: physLines, WordsPerRow: memctrl.WordsPerLine,
		Faults: faults, Wear: wear,
	})
	dev.InitRandom(prng.NewFrom(cfg.Seed, "vcc-init"))

	mcfg := memctrl.Config{Device: dev, Codec: cfg.Codec, Objective: cfg.Objective}
	if !cfg.DisableEncryption {
		crypt, err := cryptmem.New(cfg.Key, physLines)
		if err != nil {
			return nil, err
		}
		mcfg.Crypt = crypt
	}
	var repo *faultrepo.Repo
	if cfg.UseFaultRepo {
		cacheWords := cfg.FaultRepoCache
		if cacheWords == 0 {
			cacheWords = 256
		}
		repo = faultrepo.New(mode, cacheWords)
		mcfg.FaultRepo = repo
	}
	ctrl, err := memctrl.New(mcfg)
	if err != nil {
		return nil, err
	}
	b := &Backend{Store: ctrl, Ctrl: ctrl, Dev: dev, Repo: repo}
	if cfg.RemapSpares > 0 {
		remap, err := memctrl.NewRemapper(memctrl.RemapConfig{
			Inner:  ctrl,
			Spares: cfg.RemapSpares,
			Repo:   repo,
		})
		if err != nil {
			return nil, err
		}
		b.Remap = remap
		b.Store = remap
	}
	if cfg.CacheLines > 0 {
		cache, err := linecache.New(linecache.Config{
			Inner:  b.Store,
			Lines:  cfg.CacheLines,
			Policy: cfg.CachePolicy,
		})
		if err != nil {
			return nil, err
		}
		b.Cache = cache
		b.Store = cache
	}
	if cfg.Chaos != nil {
		// Top of the stack: injected faults are visible to the backend's
		// retry (and past it, to clients) regardless of cache state, and
		// deferred cache writebacks below are never re-faulted.
		cs, err := chaos.New(chaos.Config{
			Inner:           b.Store,
			Seed:            cfg.Seed,
			ReadErrRate:     cfg.Chaos.ReadErrRate,
			WriteErrRate:    cfg.Chaos.WriteErrRate,
			TornWriteRate:   cfg.Chaos.TornWriteRate,
			ReadCorruptRate: cfg.Chaos.ReadCorruptRate,
			StallRate:       cfg.Chaos.StallRate,
			StallDelay:      cfg.Chaos.StallDelay,
		})
		if err != nil {
			return nil, err
		}
		b.Chaos = cs
		b.Store = cs
	}
	b.opRetries = cfg.OpRetries
	if b.opRetries == 0 {
		b.opRetries = DefaultOpRetries
	} else if b.opRetries < 0 {
		b.opRetries = 0
	}
	return b, nil
}

// WriteLine writes one line at a shard-local index and returns the
// stuck-at-wrong cell count of the stored result. Under a write-back
// cache a deferred write returns 0: its SAW cells materialize on
// eviction or Flush and are visible through Stats only.
//
// A transient device fault is retried in place up to the configured
// OpRetries budget — a retry re-runs the whole store-stack write, so
// the line is re-encoded against current device state (the same
// informed-retry discipline the Remapper uses for SAW failures). The
// error surfaces only once the budget is spent.
func (b *Backend) WriteLine(local int, data []byte) (int, error) {
	outs, err := b.Store.WriteLine(local, data)
	for attempt := 0; err != nil && memctrl.IsTransient(err) && attempt < b.opRetries; attempt++ {
		b.errorRetries++
		outs, err = b.Store.WriteLine(local, data)
	}
	if err != nil {
		return 0, err
	}
	saw := 0
	for _, o := range outs {
		saw += o.SAWCells
	}
	return saw, nil
}

// ReadLine reads one line at a shard-local index into dst (allocated
// when nil), with the same bounded in-place retry as WriteLine.
func (b *Backend) ReadLine(local int, dst []byte) ([]byte, error) {
	out, err := b.Store.ReadLine(local, dst)
	for attempt := 0; err != nil && memctrl.IsTransient(err) && attempt < b.opRetries; attempt++ {
		b.errorRetries++
		out, err = b.Store.ReadLine(local, dst)
	}
	return out, err
}

// StackStats returns the store stack's statistics plus the backend's
// own retry counter — the per-shard statistics currency the engine
// snapshots and deltas. The caller must hold the shard's lock (or be
// its drainer).
func (b *Backend) StackStats() memctrl.Stats {
	s := b.Store.Stats()
	s.ErrorRetries += b.errorRetries
	return s
}

// FailedCells returns the endurance-exhausted cell count (0 without
// wear tracking).
func (b *Backend) FailedCells() int64 {
	if w := b.Dev.Config().Wear; w != nil {
		return int64(w.FailedCells())
	}
	return 0
}

// Config assembles an Engine.
type Config struct {
	// Lines is the total capacity in cache lines across all shards.
	Lines int
	// Shards is the shard count; 0 defaults to 1. Must not exceed Lines.
	Shards int
	// Workers bounds how many shard drainers may run concurrently; 0
	// defaults to min(Shards, GOMAXPROCS). Values above Shards are
	// clamped: a shard is single-threaded, so extra workers could never
	// be scheduled. The bound affects wall-clock parallelism only —
	// per-shard FIFO order fixes every result at any worker count.
	Workers int
	// QueueDepth bounds the per-shard issue queue: at most this many
	// tickets may be queued on one shard before Submit blocks
	// (backpressure). 0 defaults to DefaultQueueDepth.
	QueueDepth int
	// NewCodec builds one codec instance per shard (codecs may carry
	// scratch state and cannot be shared). Required.
	NewCodec func() coset.Codec
	// The remaining fields mirror BackendConfig and apply to every shard.
	Objective         coset.Objective
	SLC               bool
	DisableEncryption bool
	Key               [32]byte
	FaultRate         float64
	EnduranceWrites   float64
	EnduranceCoV      float64
	// Seed is the master seed. With one shard it is used directly; with
	// more, each shard derives a decorrelated child seed from it.
	Seed uint64
	// CacheLines, when positive, gives every shard a decoded-line LRU
	// cache of that many lines in front of its controller. 0 disables
	// caching (the stack is then bit-identical to the pre-cache engine).
	CacheLines int
	// CachePolicy selects write-through (default) or write-back for the
	// per-shard caches.
	CachePolicy linecache.Policy
	// RemapSpares reserves that many spare physical lines per shard and
	// layers the fault-repair remapping decorator over each shard's
	// controller (see BackendConfig.RemapSpares). 0 disables.
	RemapSpares int
	// UseFaultRepo gives every shard a runtime fault repository in place
	// of the oracle fault view (see BackendConfig.UseFaultRepo).
	UseFaultRepo bool
	// FaultRepoCache sizes each shard's repository descriptor cache in
	// words; 0 defaults to 256.
	FaultRepoCache int
	// Chaos, when non-nil, installs the fault-injecting decorator at
	// the top of every shard's stack (see BackendConfig.Chaos). Each
	// shard's injection schedule derives from its own shard seed, so
	// the streams are decorrelated.
	Chaos *ChaosSpec
	// OpRetries bounds per-op in-place retries on transient device
	// errors (see BackendConfig.OpRetries).
	OpRetries int
}

// ShardSeed returns the seed for shard i of n derived from the master
// seed. With n == 1 the master seed is used directly, preserving
// bit-identity with the unsharded engine.
func ShardSeed(seed uint64, i, n int) uint64 {
	if n == 1 {
		return seed
	}
	return prng.NewFrom(seed, fmt.Sprintf("vcc-shard-%d", i)).Uint64()
}

// shardKey returns shard i's AES key. Each shard's encryption unit
// counts lines locally, so giving every shard the master key verbatim
// would reuse one-time pads across shards (the pad tweak is local line
// + counter). With n > 1 the key is therefore whitened per shard,
// keeping ciphertext streams decorrelated; with n == 1 the master key
// is used directly, preserving bit-identity with the unsharded engine.
func shardKey(key [32]byte, seed uint64, i, n int) [32]byte {
	if n == 1 {
		return key
	}
	var mask [32]byte
	prng.NewFrom(seed, fmt.Sprintf("vcc-shard-key-%d", i)).Fill(mask[:])
	for k := range key {
		key[k] ^= mask[k]
	}
	return key
}

// WriteReq is one line write in a batch.
type WriteReq struct {
	// Line is the global line index.
	Line int
	// Data is the 64-byte plaintext. The engine does not retain it past
	// the batch call.
	Data []byte
}

// ReadReq is one line read in a batch.
type ReadReq struct {
	// Line is the global line index.
	Line int
	// Dst receives the plaintext; allocated when nil.
	Dst []byte
}

// Counters is a point-in-time snapshot of engine-wide totals, merged
// lock-free from per-shard deltas (see Engine.Counters). The cache
// fields stay zero on an uncached engine.
type Counters struct {
	LineWrites      int64
	LineReads       int64
	EnergyPJ        float64
	BitFlips        int64
	CellChanges     int64
	SAWCells        int64
	CacheHits       int64
	CacheMisses     int64
	CacheEvictions  int64
	Writebacks      int64
	CoalescedWrites int64
	RemappedLines   int64
	RepairFailures  int64
	DeviceErrors    int64
	ErrorRetries    int64
}

// counters is the atomic accumulator behind Counters. Integer fields
// use plain atomic adds; the energy total is a float64 merged by
// compare-and-swap on its bit pattern.
type counters struct {
	lineWrites  atomic.Int64
	lineReads   atomic.Int64
	bitFlips    atomic.Int64
	cellChanges atomic.Int64
	sawCells    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	evictions   atomic.Int64
	writebacks  atomic.Int64
	coalesced   atomic.Int64
	remapped    atomic.Int64
	repairFails atomic.Int64
	devErrors   atomic.Int64
	errRetries  atomic.Int64
	energyBits  atomic.Uint64
}

func (c *counters) add(d memctrl.Stats) {
	c.lineWrites.Add(d.LineWrites)
	c.lineReads.Add(d.LineReads)
	c.bitFlips.Add(d.BitFlips)
	c.cellChanges.Add(d.CellChanges)
	c.sawCells.Add(d.SAWCells)
	c.cacheHits.Add(d.CacheHits)
	c.cacheMisses.Add(d.CacheMisses)
	c.evictions.Add(d.CacheEvictions)
	c.writebacks.Add(d.Writebacks)
	c.coalesced.Add(d.CoalescedWrites)
	c.remapped.Add(d.RemappedLines)
	c.repairFails.Add(d.RepairFailures)
	c.devErrors.Add(d.DeviceErrors)
	c.errRetries.Add(d.ErrorRetries)
	for {
		old := c.energyBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d.EnergyPJ)
		if c.energyBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (c *counters) snapshot() Counters {
	return Counters{
		LineWrites:      c.lineWrites.Load(),
		LineReads:       c.lineReads.Load(),
		EnergyPJ:        math.Float64frombits(c.energyBits.Load()),
		BitFlips:        c.bitFlips.Load(),
		CellChanges:     c.cellChanges.Load(),
		SAWCells:        c.sawCells.Load(),
		CacheHits:       c.cacheHits.Load(),
		CacheMisses:     c.cacheMisses.Load(),
		CacheEvictions:  c.evictions.Load(),
		Writebacks:      c.writebacks.Load(),
		CoalescedWrites: c.coalesced.Load(),
		RemappedLines:   c.remapped.Load(),
		RepairFailures:  c.repairFails.Load(),
		DeviceErrors:    c.devErrors.Load(),
		ErrorRetries:    c.errRetries.Load(),
	}
}

func (c *counters) reset() {
	c.lineWrites.Store(0)
	c.lineReads.Store(0)
	c.bitFlips.Store(0)
	c.cellChanges.Store(0)
	c.sawCells.Store(0)
	c.cacheHits.Store(0)
	c.cacheMisses.Store(0)
	c.evictions.Store(0)
	c.writebacks.Store(0)
	c.coalesced.Store(0)
	c.remapped.Store(0)
	c.repairFails.Store(0)
	c.devErrors.Store(0)
	c.errRetries.Store(0)
	c.energyBits.Store(0)
}

// Engine is the sharded, concurrency-safe memory engine. All methods,
// including Close, may be called from multiple goroutines.
type Engine struct {
	part     Partition
	backends []*Backend
	// mu[i] excludes the snapshot readers (Stats, ShardStats, ...) from
	// backends[i] while its drainer runs a queue entry.
	mu      []sync.Mutex
	workers int
	live    counters
	// tickets recycles Submit scratch state (see async.go).
	tickets sync.Pool
	// queues[s] is shard s's bounded issue queue, drained FIFO by a
	// dedicated goroutine for the life of the engine.
	queues []chan issue
	// sem bounds cross-shard drainer parallelism to the configured
	// worker count; nil when Workers >= Shards (no bound needed).
	sem chan struct{}
	// qmu pairs Submit's enqueue (read lock) with Close's teardown
	// (write lock); closed is guarded by it.
	qmu    sync.RWMutex
	closed bool
	// closedCh is closed once teardown completes, so concurrent Close
	// calls can wait for the winner.
	closedCh chan struct{}
	// drained counts live drainer goroutines.
	drained sync.WaitGroup
}

// New builds an engine from cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.Lines <= 0 {
		return nil, fmt.Errorf("shard: Lines must be positive, got %d", cfg.Lines)
	}
	if cfg.NewCodec == nil {
		return nil, fmt.Errorf("shard: NewCodec is required")
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
	}
	if shards < 0 || shards > cfg.Lines {
		return nil, fmt.Errorf("shard: Shards %d out of range [1,%d]", shards, cfg.Lines)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	part := Partition{Shards: shards, Lines: cfg.Lines}
	backends := make([]*Backend, shards)
	for i := range backends {
		b, err := NewBackend(BackendConfig{
			Lines:             part.ShardLines(i),
			Codec:             cfg.NewCodec(),
			Objective:         cfg.Objective,
			SLC:               cfg.SLC,
			DisableEncryption: cfg.DisableEncryption,
			Key:               shardKey(cfg.Key, cfg.Seed, i, shards),
			FaultRate:         cfg.FaultRate,
			EnduranceWrites:   cfg.EnduranceWrites,
			EnduranceCoV:      cfg.EnduranceCoV,
			Seed:              ShardSeed(cfg.Seed, i, shards),
			CacheLines:        cfg.CacheLines,
			CachePolicy:       cfg.CachePolicy,
			RemapSpares:       cfg.RemapSpares,
			UseFaultRepo:      cfg.UseFaultRepo,
			FaultRepoCache:    cfg.FaultRepoCache,
			Chaos:             cfg.Chaos,
			OpRetries:         cfg.OpRetries,
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		backends[i] = b
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	e := &Engine{
		part:     part,
		backends: backends,
		mu:       make([]sync.Mutex, shards),
		workers:  workers,
		queues:   make([]chan issue, shards),
		closedCh: make(chan struct{}),
	}
	e.tickets.New = func() any {
		return &Ticket{e: e, byShard: make([][]int, shards), done: make(chan struct{}, 1)}
	}
	if workers < shards {
		e.sem = make(chan struct{}, workers)
	}
	// The drainers exist for the engine's lifetime so dispatch never
	// creates goroutines or channels per batch; Close releases them.
	e.drained.Add(shards)
	for s := range e.queues {
		e.queues[s] = make(chan issue, depth)
		go e.drain(s)
	}
	return e, nil
}

// Lines returns the total capacity in cache lines.
func (e *Engine) Lines() int { return e.part.Lines }

// Shards returns the shard count.
func (e *Engine) Shards() int { return e.part.Shards }

// Workers returns the effective worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// Partition returns the address-space partition.
func (e *Engine) Partition() Partition { return e.part }

func (e *Engine) checkLine(line int) error {
	if line < 0 || line >= e.part.Lines {
		return fmt.Errorf("shard: line %d out of range [0,%d)", line, e.part.Lines)
	}
	return nil
}

// Write stores one 64-byte line through its owning shard's pipeline and
// returns the number of stuck-at-wrong cells the write could not avoid.
// It is a single-op Apply, so it rides the shard's issue queue behind
// any ticket submitted before it; hot loops should batch through Apply
// or pipeline through Submit instead.
func (e *Engine) Write(line int, data []byte) (int, error) {
	ops := [1]Op{{Kind: OpWrite, Line: line, Data: data}}
	var outs [1]Outcome
	if _, err := e.Apply(ops[:], outs[:]); err != nil {
		return 0, err
	}
	return outs[0].SAWCells, outs[0].Err
}

// Read retrieves one line into dst (allocated when nil). Like Write it
// is a single-op Apply over the issue queues.
func (e *Engine) Read(line int, dst []byte) ([]byte, error) {
	ops := [1]Op{{Kind: OpRead, Line: line, Data: dst}}
	var outs [1]Outcome
	if _, err := e.Apply(ops[:], outs[:]); err != nil {
		return nil, err
	}
	return outs[0].Data, outs[0].Err
}

// WriteBatch stores every request and returns the per-request
// stuck-at-wrong cell counts, indexed like reqs. When individual ops
// failed with device errors the counts are still returned alongside
// the first such error (use Apply for per-op errors). It is a thin wrapper
// over Apply (which see for ordering and determinism guarantees);
// callers that mix reads and writes, or that need allocation-free
// dispatch, should use Apply directly.
func (e *Engine) WriteBatch(reqs []WriteReq) ([]int, error) {
	ops := make([]Op, len(reqs))
	for i := range reqs {
		ops[i] = Op{Kind: OpWrite, Line: reqs[i].Line, Data: reqs[i].Data}
	}
	outs, err := e.Apply(ops, nil)
	if err != nil {
		return nil, err
	}
	saw := make([]int, len(outs))
	for i := range outs {
		saw[i] = outs[i].SAWCells
		if outs[i].Err != nil && err == nil {
			err = outs[i].Err
		}
	}
	return saw, err
}

// ReadBatch serves every read and returns the plaintexts, indexed like
// reqs; per-op device errors surface as the first failed op's error
// alongside the data (a failed op's bytes must not be trusted — use
// Apply for per-op errors). out[i] aliases reqs[i].Dst when a destination buffer was
// provided (no per-request allocation) and is freshly allocated
// otherwise; either way out[i] is only valid to reuse once the caller
// is done with the previous contents of reqs[i].Dst. It is a thin
// wrapper over Apply.
func (e *Engine) ReadBatch(reqs []ReadReq) ([][]byte, error) {
	ops := make([]Op, len(reqs))
	for i := range reqs {
		ops[i] = Op{Kind: OpRead, Line: reqs[i].Line, Data: reqs[i].Dst}
	}
	outs, err := e.Apply(ops, nil)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(outs))
	for i := range outs {
		out[i] = outs[i].Data
		if outs[i].Err != nil && err == nil {
			err = outs[i].Err
		}
	}
	return out, err
}

// Stats returns the exact merged store-stack statistics across shards,
// taking each shard's lock in turn. With one uncached shard this is the
// controller's Stats verbatim (bit-identical to the sequential engine).
func (e *Engine) Stats() memctrl.Stats {
	var total memctrl.Stats
	for i, b := range e.backends {
		e.mu[i].Lock()
		s := b.StackStats()
		e.mu[i].Unlock()
		total.Add(s)
	}
	return total
}

// ShardStats returns shard s's store-stack statistics.
func (e *Engine) ShardStats(s int) memctrl.Stats {
	e.mu[s].Lock()
	defer e.mu[s].Unlock()
	return e.backends[s].StackStats()
}

// Counters returns the live lock-free totals. Unlike Stats it never
// blocks on shard locks, so it can be polled while batches run; it only
// reflects writes whose job has already folded its delta in.
func (e *Engine) Counters() Counters { return e.live.snapshot() }

// FailedCells sums endurance-exhausted cells across shards.
func (e *Engine) FailedCells() int64 {
	var total int64
	for i, b := range e.backends {
		e.mu[i].Lock()
		total += b.FailedCells()
		e.mu[i].Unlock()
	}
	return total
}

// StuckCells sums permanently stuck cells (pre-generated faults plus
// endurance failures) across shards.
func (e *Engine) StuckCells() int {
	total := 0
	for i, b := range e.backends {
		e.mu[i].Lock()
		total += b.Dev.Faults().NumStuckCells()
		e.mu[i].Unlock()
	}
	return total
}

// DirtyLines returns the global line indices currently held dirty in
// the per-shard write-back caches — the exact set of writes that would
// be lost if the volatile caches vanished right now (see DropCaches).
// The result is sorted ascending; it is empty on uncached and
// write-through engines. Like Stats it takes each shard's lock in turn,
// so concurrent traffic may move lines between "dirty" and "written
// back" while the snapshot is assembled; quiesce submissions first for
// an exact answer.
func (e *Engine) DirtyLines() []int {
	var global []int
	var local []int
	for i, b := range e.backends {
		if b.Cache == nil {
			continue
		}
		e.mu[i].Lock()
		local = b.Cache.DirtyLineIDs(local[:0])
		e.mu[i].Unlock()
		for _, l := range local {
			global = append(global, e.part.GlobalOf(i, l))
		}
	}
	sort.Ints(global)
	return global
}

// FaultRepoStats sums runtime fault-repository traffic across shards.
// All zeros when the engine was built without UseFaultRepo.
func (e *Engine) FaultRepoStats() faultrepo.Stats {
	var total faultrepo.Stats
	for i, b := range e.backends {
		if b.Repo == nil {
			continue
		}
		e.mu[i].Lock()
		s := b.Repo.Stats
		e.mu[i].Unlock()
		total.Lookups += s.Lookups
		total.CacheHits += s.CacheHits
		total.CacheMiss += s.CacheMiss
		total.Discovered += s.Discovered
		total.Evictions += s.Evictions
	}
	return total
}

// SpareLinesLeft sums the unused repair spare lines across shards.
// Zero when the engine was built without RemapSpares.
func (e *Engine) SpareLinesLeft() int {
	total := 0
	for i, b := range e.backends {
		if b.Remap == nil {
			continue
		}
		e.mu[i].Lock()
		total += b.Remap.SparesLeft()
		e.mu[i].Unlock()
	}
	return total
}

// ResetStats clears store-stack statistics and live counters (device
// and cache contents are untouched).
func (e *Engine) ResetStats() {
	for i, b := range e.backends {
		e.mu[i].Lock()
		b.Store.ResetStats()
		b.errorRetries = 0
		e.mu[i].Unlock()
	}
	e.live.reset()
}
