package shard

import (
	"testing"

	"repro/internal/coset"
)

func TestPartitionRoundTrip(t *testing.T) {
	for _, tc := range []struct{ shards, lines int }{
		{1, 1}, {1, 1024}, {2, 1024}, {3, 1031}, {4, 7}, {8, 8192}, {7, 100},
	} {
		p := Partition{Shards: tc.shards, Lines: tc.lines}
		sum := 0
		for s := 0; s < tc.shards; s++ {
			sum += p.ShardLines(s)
		}
		if sum != tc.lines {
			t.Errorf("Partition%+v: shard sizes sum to %d, want %d", p, sum, tc.lines)
		}
		seen := make(map[[2]int]bool)
		for g := 0; g < tc.lines; g++ {
			s, l := p.ShardOf(g), p.LocalOf(g)
			if s < 0 || s >= tc.shards {
				t.Fatalf("Partition%+v: line %d maps to shard %d", p, g, s)
			}
			if l < 0 || l >= p.ShardLines(s) {
				t.Fatalf("Partition%+v: line %d maps to local %d, shard %d has %d lines",
					p, g, l, s, p.ShardLines(s))
			}
			if p.GlobalOf(s, l) != g {
				t.Fatalf("Partition%+v: GlobalOf(%d,%d) = %d, want %d", p, s, l, p.GlobalOf(s, l), g)
			}
			key := [2]int{s, l}
			if seen[key] {
				t.Fatalf("Partition%+v: (shard,local) %v claimed twice", p, key)
			}
			seen[key] = true
		}
	}
}

func TestShardSeed(t *testing.T) {
	if got := ShardSeed(42, 0, 1); got != 42 {
		t.Errorf("single-shard seed must pass through, got %d", got)
	}
	seen := map[uint64]int{}
	for i := 0; i < 16; i++ {
		s := ShardSeed(42, i, 16)
		if prev, dup := seen[s]; dup {
			t.Errorf("shards %d and %d share seed %d", prev, i, s)
		}
		seen[s] = i
	}
	if _, collides := seen[42]; collides {
		// Not fatal by construction, but with this derivation the master
		// seed should not reappear verbatim.
		t.Log("warning: a multi-shard seed equals the master seed")
	}
}

// TestShardKeyPadIndependence: each shard's encryption unit counts
// lines locally, so (local line, counter) tuples collide across shards.
// Without per-shard key whitening the same plaintext written to local
// line 0 of two shards at equal counters would store identical
// ciphertext — one-time pad reuse. Build two backends exactly as
// Engine.New would and compare stored words directly.
func TestShardKeyPadIndependence(t *testing.T) {
	master := [32]byte{1, 2, 3}
	if shardKey(master, 7, 0, 1) != master {
		t.Fatal("single-shard key must pass through unchanged")
	}
	k0, k1 := shardKey(master, 7, 0, 2), shardKey(master, 7, 1, 2)
	if k0 == k1 || k0 == master || k1 == master {
		t.Fatalf("multi-shard keys not whitened: %x %x", k0[:4], k1[:4])
	}
	stored := func(key [32]byte) [8]uint64 {
		b, err := NewBackend(BackendConfig{
			Lines: 1, Codec: coset.NewIdentity(64), Key: key, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		plain := make([]byte, LineSize)
		for i := range plain {
			plain[i] = 0xA5
		}
		b.WriteLine(0, plain)
		var w [8]uint64
		for i := range w {
			w[i] = b.Dev.Read(i)
		}
		return w
	}
	// Identity codec + no faults: stored words are the raw ciphertext.
	if stored(k0) == stored(k1) {
		t.Error("identical ciphertext on two shards: one-time pad reused across shards")
	}
	if stored(k0) != stored(k0) {
		t.Error("ciphertext not deterministic for a fixed key")
	}
}

func newTestEngine(t *testing.T, shards, lines int) *Engine {
	t.Helper()
	e, err := New(Config{
		Lines:    lines,
		Shards:   shards,
		Workers:  shards,
		NewCodec: func() coset.Codec { return coset.NewFNW(64, 16) },
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestBatchDeterminismAcrossWorkerCounts replays the same batch against
// engines that differ only in worker count and requires identical
// statistics: scheduling must not influence results.
func TestBatchDeterminismAcrossWorkerCounts(t *testing.T) {
	const lines = 257
	mkBatch := func() []WriteReq {
		reqs := make([]WriteReq, 3*lines)
		for i := range reqs {
			data := make([]byte, LineSize)
			for k := range data {
				data[k] = byte(i*31 + k)
			}
			reqs[i] = WriteReq{Line: (i * 13) % lines, Data: data}
		}
		return reqs
	}
	var ref *Engine
	var refSAW []int
	for _, workers := range []int{1, 2, 8} {
		e, err := New(Config{
			Lines: lines, Shards: 4, Workers: workers,
			NewCodec:  func() coset.Codec { return coset.NewFNW(64, 16) },
			FaultRate: 1e-2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		saw, err := e.WriteBatch(mkBatch())
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refSAW = e, saw
			continue
		}
		if e.Stats() != ref.Stats() {
			t.Errorf("workers=%d: stats %+v differ from workers=1 %+v", workers, e.Stats(), ref.Stats())
		}
		for i := range saw {
			if saw[i] != refSAW[i] {
				t.Fatalf("workers=%d: request %d SAW %d, want %d", workers, i, saw[i], refSAW[i])
			}
		}
	}
}

func TestCountersMatchStats(t *testing.T) {
	e := newTestEngine(t, 4, 64)
	data := make([]byte, LineSize)
	for l := 0; l < 64; l++ {
		if _, err := e.Write(l, data); err != nil {
			t.Fatal(err)
		}
	}
	st, live := e.Stats(), e.Counters()
	if live.LineWrites != st.LineWrites || live.BitFlips != st.BitFlips ||
		live.CellChanges != st.CellChanges || live.SAWCells != st.SAWCells {
		t.Errorf("live counters %+v disagree with stats %+v", live, st)
	}
	// Energy is merged via float CAS from per-write deltas; per-write
	// granularity makes the sum exact in this single-threaded sequence.
	if live.EnergyPJ != st.EnergyPJ {
		t.Errorf("live energy %v != stats energy %v", live.EnergyPJ, st.EnergyPJ)
	}
	e.ResetStats()
	if c := e.Counters(); c != (Counters{}) {
		t.Errorf("counters not cleared by ResetStats: %+v", c)
	}
	if s := e.Stats(); s.LineWrites != 0 {
		t.Errorf("stats not cleared by ResetStats: %+v", s)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(Config{Lines: 0, NewCodec: func() coset.Codec { return coset.NewFNW(64, 16) }}); err == nil {
		t.Error("want error for zero lines")
	}
	if _, err := New(Config{Lines: 4, Shards: 8, NewCodec: func() coset.Codec { return coset.NewFNW(64, 16) }}); err == nil {
		t.Error("want error for more shards than lines")
	}
	if _, err := New(Config{Lines: 4}); err == nil {
		t.Error("want error for missing codec factory")
	}
	e := newTestEngine(t, 2, 8)
	if _, err := e.Write(8, make([]byte, LineSize)); err == nil {
		t.Error("want range error")
	}
	if _, err := e.Write(0, make([]byte, 8)); err == nil {
		t.Error("want size error")
	}
	if _, err := e.WriteBatch([]WriteReq{{Line: -1, Data: make([]byte, LineSize)}}); err == nil {
		t.Error("want batch range error")
	}
	if _, err := e.ReadBatch([]ReadReq{{Line: 0, Dst: make([]byte, 3)}}); err == nil {
		t.Error("want batch buffer-size error")
	}
}
