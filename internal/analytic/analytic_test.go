package analytic

import (
	"math"
	"testing"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLogBinomCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {64, 32, 1.83262414094259e18},
	}
	for _, c := range cases {
		got := math.Exp(LogBinomCoeff(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogBinomCoeff(5, 6), -1) || !math.IsInf(LogBinomCoeff(5, -1), -1) {
		t.Error("out-of-range coefficients should be -Inf")
	}
}

func TestBinomPMFSums(t *testing.T) {
	for _, n := range []int{1, 8, 64} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			s := 0.0
			for k := 0; k <= n; k++ {
				s += BinomPMF(n, k, p)
			}
			if !approx(s, 1, 1e-9) {
				t.Errorf("PMF(n=%d,p=%v) sums to %v", n, p, s)
			}
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if BinomPMF(10, 0, 0) != 1 || BinomPMF(10, 5, 0) != 0 {
		t.Error("p=0 edge wrong")
	}
	if BinomPMF(10, 10, 1) != 1 || BinomPMF(10, 9, 1) != 0 {
		t.Error("p=1 edge wrong")
	}
}

func TestBinomCDF(t *testing.T) {
	if BinomCDF(10, -1, 0.5) != 0 || BinomCDF(10, 10, 0.5) != 1 {
		t.Error("CDF edges wrong")
	}
	// Symmetry at p=0.5: CDF(n, n/2-1) + CDF(n, n/2) sums around 1.
	c := BinomCDF(64, 31, 0.5)
	if !approx(c, 1-BinomCDF(64, 32, 0.5)+BinomPMF(64, 32, 0.5)-BinomPMF(64, 32, 0.5), 0.5) {
		_ = c // sanity handled below
	}
	if !approx(BinomCDF(64, 64, 0.5), 1, 1e-12) {
		t.Error("full CDF != 1")
	}
}

func TestERCCBaseline(t *testing.T) {
	// One coset: no choice, expectation is n/2.
	if got := ERCC(64, 1); !approx(got, 32, 1e-6) {
		t.Errorf("ERCC(64,1) = %v, want 32", got)
	}
	// Monotone decreasing in N.
	prev := math.Inf(1)
	for _, N := range []int{1, 2, 4, 16, 64, 256} {
		e := ERCC(64, N)
		if e >= prev {
			t.Errorf("ERCC not decreasing at N=%d: %v >= %v", N, e, prev)
		}
		prev = e
	}
}

func TestERCCMatchesMonteCarlo(t *testing.T) {
	rng := prng.New(3)
	const n, N, trials = 64, 16, 4000
	var sum float64
	for i := 0; i < trials; i++ {
		best := n + 1
		for c := 0; c < N; c++ {
			// change count of a random coset on random data = weight of
			// a random n-bit value
			w := bitutil.OnesCount(rng.Uint64())
			if w < best {
				best = w
			}
		}
		sum += float64(best)
	}
	mc := sum / trials
	cf := ERCC(n, N)
	if math.Abs(mc-cf) > 0.15 {
		t.Errorf("Monte Carlo %v vs closed form %v", mc, cf)
	}
}

func TestEBCCMatchesMonteCarlo(t *testing.T) {
	// FNW with k sections of n/k bits + 1 aux bit each.
	rng := prng.New(5)
	const n, N, trials = 64, 16, 4000 // k=4 sections of 16+1 bits
	k := 4
	bitsPer := n/k + 1
	var sum float64
	for i := 0; i < trials; i++ {
		tot := 0
		for s := 0; s < k; s++ {
			w := bitutil.OnesCount(rng.Uint64() & bitutil.Mask(bitsPer))
			if w > bitsPer-w {
				w = bitsPer - w
			}
			tot += w
		}
		sum += float64(tot)
	}
	mc := sum / trials
	cf := EBCC(n, N)
	if math.Abs(mc-cf) > 0.2 {
		t.Errorf("Monte Carlo %v vs closed form %v", mc, cf)
	}
}

// TestFig1Shape reproduces the paper's Fig. 1 qualitative claims: BCC
// wins at N=2 and N=4, RCC overtakes by N=16 and wins by a considerable
// margin at N=256.
func TestFig1Shape(t *testing.T) {
	pts := Fig1(64, []int{2, 4, 16, 256})
	byN := map[int]Fig1Point{}
	for _, p := range pts {
		byN[p.N] = p
	}
	if byN[2].ReductionBCC <= byN[2].ReductionRCC {
		t.Errorf("N=2: BCC (%v) should beat RCC (%v)",
			byN[2].ReductionBCC, byN[2].ReductionRCC)
	}
	if byN[4].ReductionBCC <= byN[4].ReductionRCC {
		t.Errorf("N=4: BCC (%v) should beat RCC (%v)",
			byN[4].ReductionBCC, byN[4].ReductionRCC)
	}
	if byN[16].ReductionRCC <= byN[16].ReductionBCC {
		t.Errorf("N=16: RCC (%v) should beat BCC (%v)",
			byN[16].ReductionRCC, byN[16].ReductionBCC)
	}
	margin := byN[256].ReductionRCC - byN[256].ReductionBCC
	if margin < 3 {
		t.Errorf("N=256: RCC margin %v too small; paper shows a considerable gap", margin)
	}
	// Without aux accounting the gap is even wider (paper's plotted
	// magnitudes, ~30%+ for RCC at 256).
	if byN[256].ReductionRCCNoAux < 30 {
		t.Errorf("N=256: no-aux RCC reduction %v, want >30%%", byN[256].ReductionRCCNoAux)
	}
	// Reductions grow with N for RCC.
	if !(byN[2].ReductionRCC < byN[4].ReductionRCC &&
		byN[4].ReductionRCC < byN[16].ReductionRCC &&
		byN[16].ReductionRCC < byN[256].ReductionRCC) {
		t.Error("RCC reduction should increase with N")
	}
	// Sanity range: paper's Fig 1 y-axis tops out around 30%.
	if byN[256].ReductionRCC < 15 || byN[256].ReductionRCC > 40 {
		t.Errorf("RCC reduction at 256 = %v%%, outside plausible Fig 1 range",
			byN[256].ReductionRCC)
	}
}

func TestEBCCPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	EBCC(64, 6)
}

func TestEBCCSingleCandidate(t *testing.T) {
	if got := EBCC(64, 1); got != 32 {
		t.Errorf("EBCC(64,1) = %v, want 32", got)
	}
}
