// Package analytic implements the closed-form models of the paper's
// Section III: the expected number of changed bits under random coset
// coding (Equation 1) and biased coset coding (Equation 2), which
// together regenerate Fig. 1. It also provides the binomial machinery
// (log-space, stable up to n in the hundreds) used elsewhere for
// sanity-checking Monte-Carlo results.
package analytic

import "math"

// LogBinomCoeff returns log(C(n, k)), or -Inf for k outside [0, n].
func LogBinomCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// BinomPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomCoeff(n, k) + float64(k)*math.Log(p) +
		float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomCDF returns P(X <= k) for X ~ Binomial(n, p).
func BinomCDF(n, k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	s := 0.0
	for i := 0; i <= k; i++ {
		s += BinomPMF(n, i, p)
	}
	if s > 1 {
		return 1
	}
	return s
}

// ERCC evaluates Equation (1): the expected number of changed bits when
// an n-bit random block is encoded with the best of N independent random
// coset candidates. Derivation: each candidate's change count is
// Binomial(n, 1/2); E[min of N draws] = sum over m of P(all N candidates
// change more than m bits).
func ERCC(n, N int) float64 {
	e := 0.0
	for m := 0; m < n; m++ {
		tail := 1 - BinomCDF(n, m, 0.5)
		e += math.Pow(tail, float64(N))
	}
	return e
}

// EBCC evaluates Equation (2): the expected number of changed bits when
// the n-bit block is split into k = log2(N) sections, each written
// directly or inverted (Flip-N-Write), including each section's
// auxiliary flip bit. Each section spans n/k data bits plus one aux bit;
// the best of {weight w, weight (n/k+1)-w} is kept.
func EBCC(n, N int) float64 {
	k := exactLog2(N)
	if k < 1 {
		// N=1 means no encoding freedom: expected flips n/2.
		return float64(n) / 2
	}
	sec := n / k // data bits per section
	bitsPer := sec + 1
	denom := math.Exp2(float64(bitsPer))
	var e float64
	half := sec / 2
	for i := 0; i <= bitsPer; i++ {
		c := math.Exp(LogBinomCoeff(bitsPer, i))
		if i <= half {
			e += float64(i) * c / denom
		} else {
			e += float64(bitsPer-i) * c / denom
		}
	}
	return float64(k) * e
}

// exactLog2 returns log2(n) when n is a power of two, panicking
// otherwise (the BCC construction needs 2^k candidates exactly).
func exactLog2(n int) int {
	if n < 1 || n&(n-1) != 0 {
		panic("analytic: N must be a power of two")
	}
	k := 0
	for v := n; v > 1; v >>= 1 {
		k++
	}
	return k
}

// Fig1Point holds one column of the paper's Fig. 1.
type Fig1Point struct {
	N int
	// ReductionRCC / ReductionBCC are percentage reductions in changed
	// bits relative to the unencoded expectation of n/2, including the
	// auxiliary-bit overhead of each scheme (the paper notes the encoded
	// block carries log2(N) extra bits, expected weight log2(N)/2 for
	// RCC; EBCC already includes each section's flip bit).
	ReductionRCC float64
	ReductionBCC float64
	// ReductionRCCNoAux excludes the auxiliary overhead (the paper's
	// figure does not state which accounting it plots; both are
	// reported, and the text's qualitative claims hold for both).
	ReductionRCCNoAux float64
}

// Fig1 computes the Fig. 1 series for block size n over the given coset
// counts (the paper uses n=64, N in {2, 4, 16, 256}).
func Fig1(n int, cosetCounts []int) []Fig1Point {
	out := make([]Fig1Point, 0, len(cosetCounts))
	base := float64(n) / 2
	for _, N := range cosetCounts {
		auxRCC := math.Log2(float64(N)) / 2
		rccRaw := ERCC(n, N)
		bcc := EBCC(n, N)
		out = append(out, Fig1Point{
			N:                 N,
			ReductionRCC:      100 * (base - rccRaw - auxRCC) / base,
			ReductionBCC:      100 * (base - bcc) / base,
			ReductionRCCNoAux: 100 * (base - rccRaw) / base,
		})
	}
	return out
}
