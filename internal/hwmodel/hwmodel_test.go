package hwmodel

import "testing"

var counts = []int{32, 64, 128, 256}

// TestFig6AreaTrends pins the qualitative claims of Fig. 6(a): RCC has a
// much higher starting area and a substantially faster growth rate; VCC
// area increases only slightly with coset count, with generated cosets
// slightly sharper than stored.
func TestFig6AreaTrends(t *testing.T) {
	rows := Fig6(Default45, counts)
	for _, r := range rows {
		if r.RCC.AreaUM2 <= 2*r.VCC64.AreaUM2 {
			t.Errorf("N=%d: RCC area %.0f not clearly above VCC-64 %.0f",
				r.N, r.RCC.AreaUM2, r.VCC64.AreaUM2)
		}
	}
	// RCC's absolute area slope dwarfs VCC's (the figure's "substantially
	// faster rate").
	rccSlope := rows[len(rows)-1].RCC.AreaUM2 - rows[0].RCC.AreaUM2
	vccSlope := rows[len(rows)-1].VCC64.AreaUM2 - rows[0].VCC64.AreaUM2
	if rccSlope < 5*vccSlope {
		t.Errorf("RCC area slope %.0f not >> VCC slope %.0f", rccSlope, vccSlope)
	}
	// Monotone increase for all designs.
	for i := 1; i < len(rows); i++ {
		if rows[i].RCC.AreaUM2 <= rows[i-1].RCC.AreaUM2 ||
			rows[i].VCC64.AreaUM2 <= rows[i-1].VCC64.AreaUM2 ||
			rows[i].VCC32.AreaUM2 <= rows[i-1].VCC32.AreaUM2 {
			t.Error("areas should grow with coset count")
		}
	}
}

// TestFig6EnergyTrends pins Fig. 6(b): RCC energy at least an order of
// magnitude above VCC, gap widening with N; VCC-32 above VCC-64.
func TestFig6EnergyTrends(t *testing.T) {
	rows := Fig6(Default45, counts)
	prevGap := 0.0
	for i, r := range rows {
		gap := r.RCC.EnergyPJ / r.VCC64.EnergyPJ
		if gap < 3 {
			t.Errorf("N=%d: RCC/VCC energy ratio %.1f too small", r.N, gap)
		}
		if i > 0 && gap <= prevGap {
			t.Errorf("N=%d: energy gap %.2f did not widen (prev %.2f)", r.N, gap, prevGap)
		}
		prevGap = gap
		if r.VCC32.EnergyPJ <= r.VCC64.EnergyPJ {
			t.Errorf("N=%d: VCC-32 energy %.2f should exceed VCC-64 %.2f",
				r.N, r.VCC32.EnergyPJ, r.VCC64.EnergyPJ)
		}
	}
	// The paper's log-scale plot reads as roughly an order of magnitude;
	// the analytic model lands around 7x at 256 (recorded as a deviation
	// in EXPERIMENTS.md).
	if rows[3].RCC.EnergyPJ/rows[3].VCC64.EnergyPJ < 7 {
		t.Errorf("N=256: RCC/VCC energy ratio %.1fx below calibrated 7x",
			rows[3].RCC.EnergyPJ/rows[3].VCC64.EnergyPJ)
	}
}

// TestFig6DelayTrends pins Fig. 6(c): VCC holds ~1.8-2 ns at 256 cosets
// while RCC exceeds 2.5 ns.
func TestFig6DelayTrends(t *testing.T) {
	rows := Fig6(Default45, counts)
	for _, r := range rows {
		if r.VCC64.DelayPS >= r.RCC.DelayPS {
			t.Errorf("N=%d: VCC delay %.0f not below RCC %.0f",
				r.N, r.VCC64.DelayPS, r.RCC.DelayPS)
		}
	}
	last := rows[len(rows)-1]
	if last.VCC64.DelayPS < 1500 || last.VCC64.DelayPS > 2100 {
		t.Errorf("VCC-64 delay at 256 = %.0f ps, want ~1.8-2 ns", last.VCC64.DelayPS)
	}
	if last.RCC.DelayPS < 2300 {
		t.Errorf("RCC delay at 256 = %.0f ps, want > 2.3 ns", last.RCC.DelayPS)
	}
}

// TestRCCAreaMagnitude keeps the calibration near the paper's plotted
// scale (~2.5e5 um^2 for RCC at 256 cosets).
func TestRCCAreaMagnitude(t *testing.T) {
	e := RCC(Default45, 64, 256)
	if e.AreaUM2 < 1e5 || e.AreaUM2 > 5e5 {
		t.Errorf("RCC(64,256) area %.0f um^2 outside calibration band", e.AreaUM2)
	}
}

func TestStoredVsGenerated(t *testing.T) {
	// At large N, generated-kernel area should be >= stored (the paper's
	// "slightly sharper trend for generated cosets").
	g := VCC(Default45, 64, 16, 256, false)
	s := VCC(Default45, 64, 16, 256, true)
	if g.AreaUM2 < s.AreaUM2 {
		t.Errorf("generated area %.0f below stored %.0f at N=256", g.AreaUM2, s.AreaUM2)
	}
	// Stored pays ROM access latency.
	if s.DelayPS <= g.DelayPS {
		t.Errorf("stored delay %.0f should exceed generated %.0f (ROM access)",
			s.DelayPS, g.DelayPS)
	}
}

func TestDecoderNegligible(t *testing.T) {
	enc := VCC(Default45, 64, 16, 256, true)
	dec := Decoder(Default45, 64)
	if dec.AreaUM2 > 0.05*enc.AreaUM2 {
		t.Errorf("decoder area %.0f not negligible next to encoder %.0f",
			dec.AreaUM2, enc.AreaUM2)
	}
	if dec.EnergyPJ > 0.05*enc.EnergyPJ {
		t.Errorf("decoder energy %.3f not negligible next to encoder %.3f",
			dec.EnergyPJ, enc.EnergyPJ)
	}
}

func TestVCCPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	VCC(Default45, 64, 16, 8, true) // p=4 needs N >= 16
}

func TestEstimateString(t *testing.T) {
	if RCC(Default45, 64, 32).String() == "" {
		t.Error("empty report row")
	}
}

func TestPopcountHelpers(t *testing.T) {
	if popcountCells(64) != 63 {
		t.Error("popcountCells(64) != 63")
	}
	if popcountLevels(64) != 6 {
		t.Error("popcountLevels(64) != 6")
	}
	if cmpWidth(63) != 6 || cmpWidth(64) != 7 {
		t.Error("cmpWidth wrong")
	}
}
