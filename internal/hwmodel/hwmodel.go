// Package hwmodel estimates encoder area, per-encode energy and critical
// path delay for the coset designs of the paper's Fig. 6, standing in for
// the Cadence Encounter 45 nm ASIC synthesis we cannot run (DESIGN.md
// substitution #2).
//
// The model composes gate-level building blocks (XOR arrays, popcount
// compressor trees, comparators, mux trees, ROM macros) from per-gate
// 45 nm constants, plus a routing/overhead multiplier. The absolute
// numbers are calibrated to land in the magnitude range the paper plots
// (RCC(64,256) around 2.5e5 um^2 and ~2.6 ns; VCC holding 1.8-2 ns);
// what the model must preserve — and what the tests pin down — are the
// relationships the paper draws from the figure:
//
//   - RCC area/energy grow linearly in N with a steep slope; VCC grows
//     in r = N/2^p, an order of magnitude flatter.
//   - RCC energy is at least an order of magnitude above VCC and the gap
//     widens with N.
//   - VCC delay stays below RCC delay at every coset count.
//   - Generated kernels trade the ROM for generator XORs: slightly more
//     area than stored at large N, no ROM macro.
package hwmodel

import (
	"fmt"
	"math"
)

// Tech45 holds 45 nm per-component constants. Area in um^2, energy in pJ
// per operation (already including average switching activity), delay in
// ps.
type Tech45 struct {
	XorArea, XorEnergy, XorDelay   float64
	FaArea, FaEnergy, FaDelay      float64 // full-adder / compressor cell
	CmpArea, CmpEnergy, CmpDelay   float64 // per-bit comparator slice
	MuxArea, MuxEnergy, MuxDelay   float64 // per-bit 2:1 mux
	RomAreaPerBit, RomEnergyPerBit float64
	RomAccessDelay                 float64
	RegArea                        float64 // per-bit pipeline register
	Routing                        float64 // area multiplier for wiring
	// WirePerLaneBit is the broadcast energy (pJ) of driving one data
	// bit to one candidate lane; it penalizes designs that fan the input
	// out to many parallel candidate evaluations.
	WirePerLaneBit float64
	// FixedArea / FixedEnergy model input/output registers and control
	// (identical for all designs).
	FixedArea   float64
	FixedEnergy float64
}

// Default45 is the constant set used by every experiment.
var Default45 = Tech45{
	XorArea: 2.5, XorEnergy: 0.002, XorDelay: 50,
	FaArea: 4.5, FaEnergy: 0.004, FaDelay: 120,
	CmpArea: 4.0, CmpEnergy: 0.003, CmpDelay: 120,
	MuxArea: 1.8, MuxEnergy: 0.001, MuxDelay: 40,
	RomAreaPerBit: 0.35, RomEnergyPerBit: 0.0004,
	RomAccessDelay: 300,
	RegArea:        4.0,
	Routing:        1.5,
	WirePerLaneBit: 0.001,
	FixedArea:      1200,
	FixedEnergy:    0.6,
}

// Estimate is the synthesis result for one design point.
type Estimate struct {
	Design   string
	N        int     // equivalent coset count
	AreaUM2  float64 // total cell area, um^2
	EnergyPJ float64 // dynamic energy per encode operation
	DelayPS  float64 // critical path, ps
}

// String formats the estimate like a synthesis report row.
func (e Estimate) String() string {
	return fmt.Sprintf("%-16s N=%-4d area=%9.0f um^2  energy=%8.2f pJ  delay=%6.0f ps",
		e.Design, e.N, e.AreaUM2, e.EnergyPJ, e.DelayPS)
}

// popcountCells returns the number of compressor (FA) cells in a
// Wallace-style popcount tree over w inputs: w - popcount-ish, modeled
// as w-1 compressors plus carry chain slack.
func popcountCells(w int) float64 { return float64(w - 1) }

// popcountLevels returns the tree depth in FA delays.
func popcountLevels(w int) float64 { return math.Ceil(math.Log2(float64(w))) }

// cmpWidth is the comparand width for a cost of maximum value v.
func cmpWidth(v int) float64 { return math.Ceil(math.Log2(float64(v + 1))) }

// RCC models the paper's delay-optimized RCC(n, N) encoder: all N coset
// candidates evaluated in parallel from a ROM, a popcount per candidate,
// and a log-depth select tree over candidates.
func RCC(t Tech45, n, N int) Estimate {
	xors := float64(N * n)
	pcCells := float64(N) * popcountCells(n)
	selCmps := float64(N-1) * cmpWidth(n)               // comparator slices
	selMux := float64(N-1) * (float64(n) + cmpWidth(n)) // data+cost muxes

	area := xors*t.XorArea + pcCells*t.FaArea + selCmps*t.CmpArea +
		selMux*t.MuxArea + float64(N*n)*t.RomAreaPerBit + t.FixedArea
	area *= t.Routing

	energy := xors*t.XorEnergy + pcCells*t.FaEnergy + selCmps*t.CmpEnergy +
		selMux*t.MuxEnergy + float64(N*n)*t.RomEnergyPerBit +
		float64(N*n)*t.WirePerLaneBit + t.FixedEnergy

	delay := t.RomAccessDelay + t.XorDelay +
		popcountLevels(n)*t.FaDelay +
		math.Ceil(math.Log2(float64(N)))*(t.CmpDelay+t.MuxDelay)

	return Estimate{Design: "RCC", N: N, AreaUM2: area, EnergyPJ: energy, DelayPS: delay}
}

// VCC models the VCC(n, N, r) encoder with p = n/m partitions: every
// kernel and its complement applied to every partition in parallel
// (2*r*n XOR cells), 2*r*p popcounts of m bits, a per-partition
// comparator/mux, a p-way adder per kernel, and a log-depth select tree
// over the r kernels. stored=true adds the kernel ROM; stored=false adds
// the Algorithm 2 generator network instead.
func VCC(t Tech45, n, m, N int, stored bool) Estimate {
	p := n / m
	r := N >> uint(p)
	if r < 1 {
		panic(fmt.Sprintf("hwmodel: N=%d too small for p=%d", N, p))
	}
	xors := float64(2 * r * n)
	pcCells := float64(2*r*p) * popcountCells(m)
	partCmp := float64(r*p) * cmpWidth(m)
	partMux := float64(r*p) * (float64(m) + cmpWidth(m))
	// p-way adder of cost values per kernel: (p-1) adders of ~cmpWidth+2
	// bits.
	addCells := float64(r*(p-1)) * (cmpWidth(m) + 2)
	selCmp := float64(r-1) * cmpWidth(n)
	selMux := float64(r-1) * (float64(n) + cmpWidth(n))

	area := xors*t.XorArea + pcCells*t.FaArea +
		(partCmp+selCmp)*t.CmpArea + (partMux+selMux)*t.MuxArea +
		addCells*t.FaArea + t.FixedArea
	energy := xors*t.XorEnergy + pcCells*t.FaEnergy +
		(partCmp+selCmp)*t.CmpEnergy + (partMux+selMux)*t.MuxEnergy +
		addCells*t.FaEnergy + float64(2*r*n)*t.WirePerLaneBit +
		t.FixedEnergy

	delay := t.XorDelay + popcountLevels(m)*t.FaDelay +
		(t.CmpDelay + t.MuxDelay) + // partition select
		math.Ceil(math.Log2(float64(p)))*t.FaDelay + // kernel total adder
		math.Ceil(math.Log2(float64(r)))*(t.CmpDelay+t.MuxDelay)

	name := fmt.Sprintf("VCC-%d", n)
	if stored {
		area += float64(r*m) * t.RomAreaPerBit * t.Routing
		energy += float64(r*m) * t.RomEnergyPerBit
		delay += t.RomAccessDelay
		name += "-Stored"
	} else {
		// Algorithm 2 generator: plane extraction wiring plus r*m mask
		// XORs, slightly steeper area growth than the ROM it replaces.
		genX := float64(r * m)
		area += genX * t.XorArea * 1.6
		energy += genX * t.XorEnergy
		delay += 2 * t.XorDelay
	}
	area *= t.Routing
	return Estimate{Design: name, N: N, AreaUM2: area, EnergyPJ: energy, DelayPS: delay}
}

// Decoder models the decode path (a kernel fetch / regeneration plus one
// XOR per bit) — the paper reports it as negligible next to the encoder,
// which the tests assert.
func Decoder(t Tech45, n int) Estimate {
	area := float64(n) * t.XorArea * t.Routing
	return Estimate{
		Design:   "Decoder",
		N:        0,
		AreaUM2:  area,
		EnergyPJ: float64(n) * t.XorEnergy,
		DelayPS:  t.RomAccessDelay + t.XorDelay,
	}
}

// Fig6Row is one coset-count column across the five designs the paper
// plots.
type Fig6Row struct {
	N                  int
	RCC                Estimate
	VCC64, VCC64Stored Estimate
	VCC32, VCC32Stored Estimate
}

// Fig6 evaluates the full design matrix of the paper's Fig. 6 (m = 16,
// the paper's reported configuration).
func Fig6(t Tech45, cosetCounts []int) []Fig6Row {
	rows := make([]Fig6Row, 0, len(cosetCounts))
	for _, N := range cosetCounts {
		rows = append(rows, Fig6Row{
			N:           N,
			RCC:         RCC(t, 64, N),
			VCC64:       VCC(t, 64, 16, N, false),
			VCC64Stored: VCC(t, 64, 16, N, true),
			VCC32:       VCC(t, 32, 16, N, false),
			VCC32Stored: VCC(t, 32, 16, N, true),
		})
	}
	return rows
}
