package memctrl

import (
	"bytes"
	"testing"

	"repro/internal/coset"
	"repro/internal/faultrepo"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// FuzzFaultRemapRoundTrip drives random op streams through a real
// remap-decorated controller stack over a randomly fault-seeded device
// and asserts the two invariants the campaign layer relies on:
//
//   - Read-after-write plaintext identity: any write whose final
//     outcome reports zero stuck-at-wrong cells must read back exactly
//     the written plaintext, remapped or not.
//   - Monotone repository statistics: lookups and discovered stuck
//     cells never decrease, and the discovered count never exceeds the
//     device's actual stuck-cell population.
func FuzzFaultRemapRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte{0x00, 0x05, 0x81, 0x22})
	f.Add(uint64(42), []byte{0xFF, 0x10, 0x10, 0x10, 0x33, 0x07})
	f.Add(uint64(0xDEAD), bytes.Repeat([]byte{0xA5, 0x3C}, 40))
	f.Fuzz(func(t *testing.T, seed uint64, stream []byte) {
		if len(stream) > 512 {
			stream = stream[:512]
		}
		const logical, spares = 24, 8
		const rows = logical + spares
		rng := prng.NewFrom(seed, "fuzz-remap")
		// Fault rate from the seed, spanning none to heavy (up to ~3%).
		rate := float64(seed%32) / 1000
		var faults *pcm.FaultMap
		if rate > 0 {
			faults = pcm.Generate(pcm.MLC, rows*WordsPerLine,
				pcm.FaultParams{CellRate: rate}, prng.NewFrom(seed, "fuzz-faults"))
		}
		dev := pcm.NewDevice(pcm.Config{
			Mode: pcm.MLC, Rows: rows, WordsPerRow: WordsPerLine, Faults: faults,
		})
		dev.InitRandom(prng.NewFrom(seed, "fuzz-init"))
		repo := faultrepo.New(pcm.MLC, 32)
		ctrl, err := New(Config{
			Device:    dev,
			Codec:     coset.NewVCCStored(64, 16, 64, seed),
			Objective: coset.ObjSAWEnergy,
			FaultRepo: repo,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRemapper(RemapConfig{Inner: ctrl, Spares: spares, Repo: repo})
		if err != nil {
			t.Fatal(err)
		}

		written := make([][]byte, logical)
		clean := make([]bool, logical)
		stuck := int64(dev.Faults().NumStuckCells())
		prevStats := repo.Stats
		rd := make([]byte, 64)
		for _, b := range stream {
			line := int(b>>1) % logical
			if b&1 == 0 {
				data := make([]byte, 64)
				rng.Fill(data)
				outs, _ := r.WriteLine(line, data)
				written[line] = data
				clean[line] = wordsSAW(outs) == 0
			} else if written[line] != nil && clean[line] {
				got, _ := r.ReadLine(line, rd)
				if !bytes.Equal(got, written[line]) {
					t.Fatalf("line %d: clean write did not round-trip (mapped to %d)",
						line, r.Mapping(line))
				}
			}
			st := repo.Stats
			if st.Lookups < prevStats.Lookups || st.Discovered < prevStats.Discovered ||
				st.CacheHits < prevStats.CacheHits || st.CacheMiss < prevStats.CacheMiss {
				t.Fatalf("repository stats regressed: %+v -> %+v", prevStats, st)
			}
			if st.Discovered > stuck {
				t.Fatalf("repository discovered %d stuck cells, device only has %d",
					st.Discovered, stuck)
			}
			prevStats = st
		}
		// Every clean line must still round-trip after the whole stream:
		// later repairs of other lines must not disturb it.
		for line, data := range written {
			if data == nil || !clean[line] {
				continue
			}
			if got, _ := r.ReadLine(line, rd); !bytes.Equal(got, data) {
				t.Fatalf("line %d corrupted by later traffic (mapped to %d)",
					line, r.Mapping(line))
			}
		}
		if s := r.Stats(); s.RemappedLines < 0 || s.RepairFailures < 0 {
			t.Fatalf("negative remap counters: %+v", s)
		}
	})
}
