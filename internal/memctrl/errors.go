package memctrl

import (
	"errors"
	"fmt"
)

// FaultKind classifies an injected or observed device fault. The chaos
// decorator (internal/chaos) is the only producer today; the taxonomy
// lives here so every layer of the stack — controller, cache, remapper,
// shard engine, server — can type-switch on one currency without
// importing the injector.
type FaultKind uint8

const (
	// FaultReadTransient is a transient read failure: the device did not
	// return data. Retrying the read may succeed.
	FaultReadTransient FaultKind = iota
	// FaultWriteTransient is a transient write failure: the device
	// rejected the write before storing anything. Retrying may succeed.
	FaultWriteTransient
	// FaultTornWrite is a partially-applied write: some cells of the
	// line were programmed with corrupted data before the operation
	// failed. The stored state is garbage; a retry must re-encode and
	// rewrite the whole line.
	FaultTornWrite
	// FaultReadCorruption is a read that returned bit-corrupted data.
	// The device state itself is intact; retrying may return clean data.
	FaultReadCorruption
)

// String names the fault kind for logs and error text.
func (k FaultKind) String() string {
	switch k {
	case FaultReadTransient:
		return "read-transient"
	case FaultWriteTransient:
		return "write-transient"
	case FaultTornWrite:
		return "torn-write"
	case FaultReadCorruption:
		return "read-corruption"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// DeviceError is the typed error every LineStore fault surfaces as. It
// never hides corruption: a store that detects (or injects) corrupted
// data must either repair it or return one of these, so "no error"
// always means "the bytes are trustworthy".
type DeviceError struct {
	// Kind classifies the fault.
	Kind FaultKind
	// Line is the logical line index the failing op addressed.
	Line int
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("memctrl: device error %s on line %d", e.Kind, e.Line)
}

// IsTransient reports whether err is a DeviceError that a bounded
// retry of the same operation can plausibly clear. All four injected
// kinds qualify: transient read/write faults by definition, torn
// writes because the retry re-encodes and rewrites the full line, and
// read corruption because the underlying cells are intact.
func IsTransient(err error) bool {
	var de *DeviceError
	return errors.As(err, &de)
}
