// Package memctrl implements the paper's Fig. 4 memory-controller
// datapath: on a dirty eviction from the last-level cache, the 512-bit
// line is encrypted by the counter-mode AES unit, split into eight 64-bit
// blocks, each block is read-modified-written through the coset encoder
// against the currently-stored data and known stuck cells, and the
// encoded blocks plus their auxiliary bits go to the PCM device. Reads
// run the inverse pipeline (decode, then decrypt).
//
// The controller accounts for energy the way the paper does: device
// write energy for data cells plus the energy of writing the auxiliary
// bits ("Includes the cost of writing auxiliary information", Figs. 7
// and 9).
package memctrl

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/coset"
	"repro/internal/cryptmem"
	"repro/internal/faultrepo"
	"repro/internal/pcm"
)

// WordsPerLine is the number of 64-bit blocks in a 512-bit cache line.
const WordsPerLine = 8

// LineStore is the per-shard line storage abstraction: anything that can
// absorb 64-byte plaintext writebacks and serve 64-byte plaintext reads
// at line granularity. The concrete Controller is the bottom of every
// stack; decorators (internal/linecache) wrap an inner LineStore and
// forward what they do not handle themselves.
//
// Implementations are not safe for concurrent use; shard.Engine
// serializes access per shard.
type LineStore interface {
	// WriteLine absorbs one 64-byte plaintext writeback and returns the
	// per-word device outcomes, valid until the next call. Stores that
	// defer the device write (a write-back cache) return an empty slice:
	// the outcomes materialize later, on Flush or eviction, and are then
	// visible only through Stats. A non-nil error is a *DeviceError:
	// the write did not take effect cleanly (though a torn write may
	// have left corrupted cells behind — the caller must retry or
	// surface the error, never trust the stored state).
	WriteLine(line int, plaintext []byte) ([]WordOutcome, error)
	// ReadLine serves one 64-byte plaintext read into dst (allocated
	// when nil). A non-nil error is a *DeviceError; the returned bytes
	// must not be trusted in that case.
	ReadLine(line int, dst []byte) ([]byte, error)
	// Flush forces every deferred write down to the device. It is a
	// no-op for stores that write through. On error some dirty state
	// remains buffered; a later Flush retries it.
	Flush() error
	// Stats returns the accumulated statistics of the whole stack below
	// (and including) this store.
	Stats() Stats
	// ResetStats zeroes the accumulated statistics of the whole stack.
	ResetStats()
	// NumLines returns the line capacity of the store.
	NumLines() int
}

// Config assembles a controller.
type Config struct {
	// Device is the PCM array. Its geometry must hold an integer number
	// of cache lines.
	Device *pcm.Device
	// Crypt is the encryption unit; nil disables encryption (the
	// "unencrypted workload" ablation).
	Crypt *cryptmem.Unit
	// Codec encodes each 64-bit block (or its 32-bit right-digit plane).
	Codec coset.Codec
	// Objective drives candidate selection.
	Objective coset.Objective
	// FaultRepo, when non-nil, replaces the device's oracle fault view
	// with the repository's discovered view: the encoder only knows
	// about stuck cells previously observed by verify-after-write, and
	// every write's outcome is fed back into the repository. This models
	// the runtime fault tracking the paper assumes (Section III) rather
	// than perfect knowledge.
	FaultRepo *faultrepo.Repo
}

// Stats accumulates the counters of a LineStore stack. It is the shared
// statistics currency from the controller up through shard.Counters to
// vcc.Stats: the cache-decorator fields (CacheHits through
// CoalescedWrites) stay zero for a bare Controller.
type Stats struct {
	// LineWrites is the number of cache-line writebacks processed.
	LineWrites int64
	// EnergyPJ is total write energy: cell programming plus aux bits.
	EnergyPJ float64
	// AuxEnergyPJ is the aux-bit component of EnergyPJ.
	AuxEnergyPJ float64
	// BitFlips counts logical bit transitions in data cells.
	BitFlips int64
	// CellChanges counts physical cell state changes in data cells.
	CellChanges int64
	// SAWCells counts stuck-at-wrong data cells over all writes.
	SAWCells int64
	// SAWWords counts word writes that left at least one SAW cell.
	SAWWords int64
	// NewlyFailedCells counts endurance exhaustions (wear-enabled
	// devices).
	NewlyFailedCells int64
	// LineReads is the number of cache-line reads served.
	LineReads int64
	// WordsDecoded counts 64-bit words run through the coset decoder on
	// the read path.
	WordsDecoded int64
	// CacheHits counts reads served from a decoded-line cache without
	// touching the decode+decrypt pipeline (see internal/linecache).
	CacheHits int64
	// CacheMisses counts cached reads that had to fall through to the
	// inner store.
	CacheMisses int64
	// CacheEvictions counts lines evicted from a decoded-line cache.
	CacheEvictions int64
	// Writebacks counts deferred device writebacks issued by a
	// write-back cache on eviction or Flush.
	Writebacks int64
	// CoalescedWrites counts writes absorbed into an already-dirty
	// cached line — device work a write-back cache eliminated entirely.
	CoalescedWrites int64
	// RemappedLines counts repair relocations performed by a remapping
	// decorator: a logical line moved to a spare physical line after a
	// write-verify failure (see Remapper).
	RemappedLines int64
	// RepairFailures counts writes that still stored stuck-at-wrong
	// cells after the remapping decorator ran out of spare lines.
	RepairFailures int64
	// DeviceErrors counts transient device faults surfaced by the stack
	// (injected by internal/chaos or, someday, a real device model).
	DeviceErrors int64
	// ErrorRetries counts in-controller retries of a faulted op by the
	// shard backend before it gave up or succeeded.
	ErrorRetries int64
}

// Add folds o into s field-wise.
func (s *Stats) Add(o Stats) {
	s.LineWrites += o.LineWrites
	s.EnergyPJ += o.EnergyPJ
	s.AuxEnergyPJ += o.AuxEnergyPJ
	s.BitFlips += o.BitFlips
	s.CellChanges += o.CellChanges
	s.SAWCells += o.SAWCells
	s.SAWWords += o.SAWWords
	s.NewlyFailedCells += o.NewlyFailedCells
	s.LineReads += o.LineReads
	s.WordsDecoded += o.WordsDecoded
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvictions += o.CacheEvictions
	s.Writebacks += o.Writebacks
	s.CoalescedWrites += o.CoalescedWrites
	s.RemappedLines += o.RemappedLines
	s.RepairFailures += o.RepairFailures
	s.DeviceErrors += o.DeviceErrors
	s.ErrorRetries += o.ErrorRetries
}

// HitRate returns CacheHits / (CacheHits + CacheMisses), or 0 before
// any cached read — the shared definition used by every stats surface
// (experiment tables, tracegen replay output).
func (s Stats) HitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// Delta returns s - o field-wise (the statistics accumulated between
// two snapshots).
func (s Stats) Delta(o Stats) Stats {
	return Stats{
		LineWrites:       s.LineWrites - o.LineWrites,
		EnergyPJ:         s.EnergyPJ - o.EnergyPJ,
		AuxEnergyPJ:      s.AuxEnergyPJ - o.AuxEnergyPJ,
		BitFlips:         s.BitFlips - o.BitFlips,
		CellChanges:      s.CellChanges - o.CellChanges,
		SAWCells:         s.SAWCells - o.SAWCells,
		SAWWords:         s.SAWWords - o.SAWWords,
		NewlyFailedCells: s.NewlyFailedCells - o.NewlyFailedCells,
		LineReads:        s.LineReads - o.LineReads,
		WordsDecoded:     s.WordsDecoded - o.WordsDecoded,
		CacheHits:        s.CacheHits - o.CacheHits,
		CacheMisses:      s.CacheMisses - o.CacheMisses,
		CacheEvictions:   s.CacheEvictions - o.CacheEvictions,
		Writebacks:       s.Writebacks - o.Writebacks,
		CoalescedWrites:  s.CoalescedWrites - o.CoalescedWrites,
		RemappedLines:    s.RemappedLines - o.RemappedLines,
		RepairFailures:   s.RepairFailures - o.RepairFailures,
		DeviceErrors:     s.DeviceErrors - o.DeviceErrors,
		ErrorRetries:     s.ErrorRetries - o.ErrorRetries,
	}
}

// WordOutcome describes one word of a line write.
type WordOutcome struct {
	// Word is the flat device word index.
	Word int
	// SAWCells is the number of stuck-at-wrong cells in the final
	// stored value.
	SAWCells int
	// Res is the raw device outcome.
	Res pcm.WriteResult
}

// Controller drives the datapath. It is the bottom LineStore of every
// per-shard stack. It is not safe for concurrent use.
type Controller struct {
	cfg      Config
	mlcPlane bool
	aux      []uint64
	// scratch state reused across calls so the steady-state write and
	// read paths perform no heap allocations: the encrypted-line buffer,
	// the word-packing buffer, the per-word outcome array and one coset
	// evaluator rebound (Reset) per word instead of reallocated.
	// words is shared by the write path (packing the encrypted line) and
	// the read path (collecting decoded words); the controller is
	// single-threaded per shard, so the two never overlap.
	lineBuf [cryptmem.LineSize]byte
	words   [WordsPerLine]uint64
	outc    [WordsPerLine]WordOutcome
	ev      coset.Evaluator
	// fast is non-nil when the codec exposes the partition-sliced encode
	// fast path (detected once at construction); sliced is the
	// controller-owned write context it rebinds per word, so the slice
	// storage is reused across the eight words of a line and across
	// lines without a heap allocation. The context now carries the
	// nibble-table storage too (~40KB: the per-partition count tables
	// plus the energy multiply-accumulate cache) as fixed arrays, so
	// embedding it by value keeps the whole rebind cycle — slicing,
	// table construction, etab reuse across energy-model-stable rebinds
	// — inside one controller-owned allocation made at New.
	fast   coset.FastCodec
	sliced coset.SlicedCtx
	// lineDec is non-nil when the codec exposes the batched decode fast
	// path (detected once at construction): ReadLine then decodes the
	// whole line with one dynamic dispatch instead of eight per-word
	// Decode calls. lefts/rights stage the split planes; for full-word
	// codecs lefts is never written and stays all-zero — the same left
	// value the per-word path passes.
	lineDec coset.LineDecoder
	lefts   [WordsPerLine]uint64
	rights  [WordsPerLine]uint64

	stats Stats
}

var _ LineStore = (*Controller)(nil)

// New builds a controller, validating geometry.
func New(cfg Config) (*Controller, error) {
	if cfg.Device == nil || cfg.Codec == nil {
		return nil, fmt.Errorf("memctrl: device and codec are required")
	}
	nw := cfg.Device.NumWords()
	if nw%WordsPerLine != 0 {
		return nil, fmt.Errorf("memctrl: device words %d not a multiple of %d", nw, WordsPerLine)
	}
	mlcPlane := false
	switch cfg.Codec.PlaneBits() {
	case 64:
	case 32:
		if cfg.Device.Config().Mode != pcm.MLC {
			return nil, fmt.Errorf("memctrl: 32-bit plane codec requires an MLC device")
		}
		mlcPlane = true
	default:
		return nil, fmt.Errorf("memctrl: unsupported codec plane width %d", cfg.Codec.PlaneBits())
	}
	if cfg.Crypt != nil && cfg.Crypt.NumLines() != nw/WordsPerLine {
		return nil, fmt.Errorf("memctrl: crypt unit sized for %d lines, device has %d",
			cfg.Crypt.NumLines(), nw/WordsPerLine)
	}
	c := &Controller{
		cfg:      cfg,
		mlcPlane: mlcPlane,
		aux:      make([]uint64, nw),
	}
	c.fast, _ = cfg.Codec.(coset.FastCodec)
	c.lineDec, _ = cfg.Codec.(coset.LineDecoder)
	return c, nil
}

// NumLines returns the number of cache lines the controller serves.
func (c *Controller) NumLines() int { return c.cfg.Device.NumWords() / WordsPerLine }

// Device returns the underlying device.
func (c *Controller) Device() *pcm.Device { return c.cfg.Device }

// Codec returns the codec in use.
func (c *Controller) Codec() coset.Codec { return c.cfg.Codec }

// Aux returns the stored auxiliary bits for a word (for tests).
func (c *Controller) Aux(word int) uint64 { return c.aux[word] }

// WriteLine processes one 64-byte writeback to the given line index and
// returns per-word outcomes (valid until the next call). The modeled
// device never fails on its own, so the error is always nil here; the
// return exists so fault-injecting decorators (internal/chaos) can
// satisfy the same LineStore contract. Passing a non-64-byte line is a
// programmer error and panics.
func (c *Controller) WriteLine(line int, plaintext []byte) ([]WordOutcome, error) {
	if len(plaintext) != cryptmem.LineSize {
		panic("memctrl: WriteLine needs a 64-byte line")
	}
	data := plaintext
	if c.cfg.Crypt != nil {
		c.cfg.Crypt.EncryptLine(line, c.lineBuf[:], plaintext)
		data = c.lineBuf[:]
	}
	bitutil.BytesToWordsInto(c.words[:], data)
	words := c.words[:]
	dev := c.cfg.Device
	energy := dev.Config().Energy
	mode := dev.Config().Mode
	repo := c.cfg.FaultRepo
	codec := c.cfg.Codec
	// The write context's configuration half (plane geometry, cell mode,
	// energy model) is identical for all eight words of the line; only
	// the stored-state half varies per word. Hoisting the template here
	// pairs with the codec-side line-scoped bind: SlicedCtx fingerprints
	// exactly these fields and skips its word-invariant bind layer when
	// they repeat.
	ctx := coset.Ctx{
		N:        codec.PlaneBits(),
		Mode:     mode,
		MLCPlane: c.mlcPlane,
		Energy:   energy,
	}

	for col, wv := range words {
		w := line*WordsPerLine + col
		oldStored := dev.Read(w)
		var stuckMask, stuckVal uint64
		if repo != nil {
			d, _ := repo.Lookup(w)
			stuckMask, stuckVal = d.StuckMask, d.StuckVal
		} else {
			stuckMask, stuckVal = dev.Stuck(w)
		}
		ctx.OldWord = oldStored
		ctx.StuckMask = stuckMask
		ctx.StuckVal = stuckVal
		ctx.OldAux = c.aux[w]
		ctx.NewLeft = 0
		var plane uint64
		if c.mlcPlane {
			var right uint64
			ctx.NewLeft, right = bitutil.SplitPlanes(wv)
			plane = right
		} else {
			plane = wv
		}
		c.ev.Reset(ctx, c.cfg.Objective)
		var enc, aux uint64
		if c.fast != nil {
			enc, aux = c.fast.EncodeSliced(plane, &c.ev, &c.sliced)
		} else {
			enc, aux = codec.Encode(plane, &c.ev)
		}

		var desired uint64
		if c.mlcPlane {
			desired = bitutil.MergePlanes(ctx.NewLeft, enc)
		} else {
			desired = enc
		}
		res := dev.Write(w, desired)
		if repo != nil {
			repo.RecordVerify(w, desired, res.Stored)
		}
		auxE := energy.AuxBitsEnergy(mode, c.aux[w], aux, codec.AuxBits())
		c.aux[w] = aux

		c.stats.EnergyPJ += res.EnergyPJ + auxE
		c.stats.AuxEnergyPJ += auxE
		c.stats.BitFlips += int64(res.BitFlips)
		c.stats.CellChanges += int64(res.CellChanges)
		c.stats.SAWCells += int64(res.SAWCells)
		if res.SAWCells > 0 {
			c.stats.SAWWords++
		}
		c.stats.NewlyFailedCells += int64(res.NewlyFailed)
		c.outc[col] = WordOutcome{Word: w, SAWCells: res.SAWCells, Res: res}
	}
	c.stats.LineWrites++
	return c.outc[:], nil
}

// ReadLine reads the line back through decode and decryption into dst
// (64 bytes, allocated if nil). If any cell of the line is stuck at a
// wrong value the plaintext will be correspondingly corrupted — exactly
// the failure the protection schemes try to avoid. The error is always
// nil for the concrete controller (see WriteLine); a non-64-byte dst
// panics as a programmer-error contract.
func (c *Controller) ReadLine(line int, dst []byte) ([]byte, error) {
	if dst == nil {
		dst = make([]byte, cryptmem.LineSize)
	}
	if len(dst) != cryptmem.LineSize {
		panic("memctrl: ReadLine needs a 64-byte buffer")
	}
	dev := c.cfg.Device
	base := line * WordsPerLine
	if c.lineDec != nil {
		// Batched decode fast path: the aux words of a line are stored
		// contiguously, so the whole line decodes with one dispatch.
		// For full-word codecs c.lefts is never written and stays
		// all-zero — the same left value the per-word path passes.
		auxs := c.aux[base : base+WordsPerLine]
		if c.mlcPlane {
			for col := 0; col < WordsPerLine; col++ {
				c.lefts[col], c.rights[col] = bitutil.SplitPlanes(dev.Read(base + col))
			}
			c.lineDec.DecodeWords(c.rights[:], auxs, c.lefts[:], c.words[:])
			for col := 0; col < WordsPerLine; col++ {
				c.words[col] = bitutil.MergePlanes(c.lefts[col], c.words[col])
			}
		} else {
			for col := 0; col < WordsPerLine; col++ {
				c.rights[col] = dev.Read(base + col)
			}
			c.lineDec.DecodeWords(c.rights[:], auxs, c.lefts[:], c.words[:])
		}
	} else {
		for col := 0; col < WordsPerLine; col++ {
			w := base + col
			stored := dev.Read(w)
			if c.mlcPlane {
				left, right := bitutil.SplitPlanes(stored)
				plane := c.cfg.Codec.Decode(right, c.aux[w], left)
				c.words[col] = bitutil.MergePlanes(left, plane)
			} else {
				c.words[col] = c.cfg.Codec.Decode(stored, c.aux[w], 0)
			}
		}
	}
	bitutil.WordsToBytesInto(dst, c.words[:])
	if c.cfg.Crypt != nil {
		c.cfg.Crypt.DecryptLine(line, c.cfg.Crypt.Counter(line), dst, dst)
	}
	c.stats.LineReads++
	c.stats.WordsDecoded += WordsPerLine
	return dst, nil
}

// Flush implements LineStore; the controller writes through, so there is
// nothing to flush.
func (c *Controller) Flush() error { return nil }

// Stats returns the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the accumulated statistics.
func (c *Controller) ResetStats() { c.stats = Stats{} }
