package memctrl

import (
	"bytes"
	"testing"

	"repro/internal/coset"
	"repro/internal/cryptmem"
	"repro/internal/faultrepo"
	"repro/internal/pcm"
	"repro/internal/prng"
)

var testKey = [32]byte{9, 9, 9}

func newMLCController(t *testing.T, codec coset.Codec, obj coset.Objective,
	faults *pcm.FaultMap) *Controller {
	t.Helper()
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: 16, WordsPerRow: 8,
		Faults: faults})
	dev.InitRandom(prng.New(100))
	ctrl, err := New(Config{
		Device:    dev,
		Crypt:     cryptmem.MustNew(testKey, dev.NumWords()/WordsPerLine),
		Codec:     codec,
		Objective: obj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func linePattern(seed byte) []byte {
	b := make([]byte, cryptmem.LineSize)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestWriteReadRoundTripAllCodecs(t *testing.T) {
	codecs := []coset.Codec{
		coset.NewIdentity(64),
		coset.NewFNW(64, 16),
		coset.NewFlipcy(64),
		coset.NewRCC(64, 64, 5),
		coset.NewVCCStored(64, 16, 256, 6),
		coset.NewVCCGenerated(16, 256), // MLC right-plane codec
	}
	for _, codec := range codecs {
		ctrl := newMLCController(t, codec, coset.ObjEnergySAW, nil)
		for line := 0; line < ctrl.NumLines(); line++ {
			pt := linePattern(byte(line))
			ctrl.WriteLine(line, pt)
			got, _ := ctrl.ReadLine(line, nil)
			if !bytes.Equal(got, pt) {
				t.Fatalf("%s: line %d round trip failed", codec.Name(), line)
			}
		}
		// Overwrite and read again (exercises counter advance and aux
		// overwrite).
		for line := 0; line < ctrl.NumLines(); line++ {
			pt := linePattern(byte(line) ^ 0x5A)
			ctrl.WriteLine(line, pt)
			got, _ := ctrl.ReadLine(line, nil)
			if !bytes.Equal(got, pt) {
				t.Fatalf("%s: line %d second round trip failed", codec.Name(), line)
			}
		}
	}
}

func TestUnencryptedRoundTrip(t *testing.T) {
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: 4, WordsPerRow: 8})
	ctrl, err := New(Config{Device: dev, Codec: coset.NewVCCGenerated(16, 64),
		Objective: coset.ObjFlips})
	if err != nil {
		t.Fatal(err)
	}
	pt := linePattern(7)
	ctrl.WriteLine(2, pt)
	if got, _ := ctrl.ReadLine(2, nil); !bytes.Equal(got, pt) {
		t.Error("unencrypted round trip failed")
	}
}

func TestCiphertextStoredNotPlaintext(t *testing.T) {
	ctrl := newMLCController(t, coset.NewIdentity(64), coset.ObjFlips, nil)
	pt := make([]byte, cryptmem.LineSize) // all zeros
	ctrl.WriteLine(0, pt)
	// Raw device content must not be all zeros.
	var nonzero bool
	for w := 0; w < WordsPerLine; w++ {
		if ctrl.Device().Read(w) != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("plaintext appears to be stored unencrypted")
	}
	// But the read path recovers it.
	if got, _ := ctrl.ReadLine(0, nil); !bytes.Equal(got, pt) {
		t.Error("round trip failed")
	}
}

func TestVCCSavesEnergyVsUnencoded(t *testing.T) {
	// Same write stream through identity vs VCC: VCC must spend less.
	run := func(codec coset.Codec) float64 {
		ctrl := newMLCController(t, codec, coset.ObjEnergySAW, nil)
		rng := prng.New(77)
		pt := make([]byte, cryptmem.LineSize)
		for i := 0; i < 600; i++ {
			rng.Fill(pt)
			ctrl.WriteLine(int(rng.Uint64n(uint64(ctrl.NumLines()))), pt)
		}
		return ctrl.Stats().EnergyPJ
	}
	eID := run(coset.NewIdentity(64))
	eVCC := run(coset.NewVCCGenerated(16, 256))
	if eVCC >= eID {
		t.Errorf("VCC energy %v not below unencoded %v", eVCC, eID)
	}
	saving := 1 - eVCC/eID
	if saving < 0.10 {
		t.Errorf("VCC energy saving only %.1f%%; paper reports 22-28%%", 100*saving)
	}
}

func TestSAWReducedByVCC(t *testing.T) {
	mkFaults := func() *pcm.FaultMap {
		return pcm.Generate(pcm.MLC, 16*8, pcm.FaultParams{CellRate: 2e-2},
			prng.New(31))
	}
	run := func(codec coset.Codec) int64 {
		ctrl := newMLCController(t, codec, coset.ObjSAWEnergy, mkFaults())
		rng := prng.New(78)
		pt := make([]byte, cryptmem.LineSize)
		for i := 0; i < 400; i++ {
			rng.Fill(pt)
			ctrl.WriteLine(int(rng.Uint64n(uint64(ctrl.NumLines()))), pt)
		}
		return ctrl.Stats().SAWCells
	}
	sID := run(coset.NewIdentity(64))
	if sID == 0 {
		t.Fatal("fault injection produced no SAW on identity path")
	}
	// Full-word VCC (stored kernels) can match both digits of a stuck
	// cell: the paper's Fig. 8 masking regime (~88-96% reduction).
	sVCC := run(coset.NewVCCStored(64, 16, 256, 6))
	if float64(sVCC) > 0.2*float64(sID) {
		t.Errorf("full-word VCC SAW %d vs unencoded %d; want >80%% reduction", sVCC, sID)
	}
	// Right-digit-plane VCC leaves the left digit to the (random)
	// encrypted data, capping per-cell masking at ~50%: the "slightly
	// less flexible" generated-kernel variant of Section VI-C.
	sGen := run(coset.NewVCCGenerated(16, 256))
	if float64(sGen) > 0.75*float64(sID) {
		t.Errorf("plane VCC SAW %d vs unencoded %d; want ~50%% reduction", sGen, sID)
	}
	if sGen <= sVCC {
		t.Errorf("plane VCC (%d) should mask fewer SAWs than full-word VCC (%d)",
			sGen, sVCC)
	}
}

func TestStatsAccumulate(t *testing.T) {
	ctrl := newMLCController(t, coset.NewVCCGenerated(16, 64), coset.ObjEnergySAW, nil)
	ctrl.WriteLine(0, linePattern(1))
	if ctrl.Stats().LineWrites != 1 {
		t.Error("line writes not counted")
	}
	if ctrl.Stats().EnergyPJ <= 0 {
		t.Error("no energy recorded")
	}
	if ctrl.Stats().EnergyPJ < ctrl.Stats().AuxEnergyPJ {
		t.Error("aux energy exceeds total")
	}
	ctrl.ResetStats()
	if ctrl.Stats().LineWrites != 0 {
		t.Error("reset failed")
	}
}

func TestNewValidation(t *testing.T) {
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.SLC, Rows: 4, WordsPerRow: 8})
	if _, err := New(Config{Device: dev, Codec: coset.NewVCCGenerated(16, 64)}); err == nil {
		t.Error("32-bit plane codec on SLC device should fail")
	}
	if _, err := New(Config{Codec: coset.NewIdentity(64)}); err == nil {
		t.Error("missing device should fail")
	}
	if _, err := New(Config{Device: dev}); err == nil {
		t.Error("missing codec should fail")
	}
	badCrypt := cryptmem.MustNew(testKey, 99)
	if _, err := New(Config{Device: dev, Codec: coset.NewIdentity(64),
		Crypt: badCrypt}); err == nil {
		t.Error("mis-sized crypt unit should fail")
	}
	devOdd := pcm.NewDevice(pcm.Config{Mode: pcm.SLC, Rows: 1, WordsPerRow: 7})
	if _, err := New(Config{Device: devOdd, Codec: coset.NewIdentity(64)}); err == nil {
		t.Error("non-line-multiple geometry should fail")
	}
}

func TestWriteLinePanicsOnShortBuffer(t *testing.T) {
	ctrl := newMLCController(t, coset.NewIdentity(64), coset.ObjFlips, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ctrl.WriteLine(0, make([]byte, 8))
}

func TestAuxPersistedPerWord(t *testing.T) {
	ctrl := newMLCController(t, coset.NewVCCGenerated(16, 256), coset.ObjEnergySAW, nil)
	ctrl.WriteLine(0, linePattern(3))
	// At least some words should have chosen a non-zero coset on random
	// ciphertext.
	var any uint64
	for w := 0; w < WordsPerLine; w++ {
		any |= ctrl.Aux(w)
	}
	if any == 0 {
		t.Error("all aux indices zero — encoder likely not engaging")
	}
}

func TestRoundTripSurvivesManyOverwrites(t *testing.T) {
	ctrl := newMLCController(t, coset.NewVCCGenerated(16, 256), coset.ObjEnergySAW, nil)
	rng := prng.New(5)
	pt := make([]byte, cryptmem.LineSize)
	for i := 0; i < 300; i++ {
		line := int(rng.Uint64n(uint64(ctrl.NumLines())))
		rng.Fill(pt)
		ctrl.WriteLine(line, pt)
		if got, _ := ctrl.ReadLine(line, nil); !bytes.Equal(got, pt) {
			t.Fatalf("round trip failed at write %d", i)
		}
	}
}

func TestFaultRepoVisibility(t *testing.T) {
	faults := pcm.Generate(pcm.MLC, 16*8, pcm.FaultParams{CellRate: 3e-2},
		prng.New(91))
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: 16, WordsPerRow: 8,
		Faults: faults})
	dev.InitRandom(prng.New(92))
	repo := faultrepo.New(pcm.MLC, 32)
	ctrl, err := New(Config{Device: dev,
		Codec:     coset.NewVCCStored(64, 16, 64, 1),
		Objective: coset.ObjSAWEnergy,
		FaultRepo: repo})
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.New(93)
	buf := make([]byte, cryptmem.LineSize)
	var early, late int64
	const passes = 6
	for p := 0; p < passes; p++ {
		before := ctrl.Stats().SAWCells
		for l := 0; l < ctrl.NumLines(); l++ {
			rng.Fill(buf)
			ctrl.WriteLine(l, buf)
		}
		delta := ctrl.Stats().SAWCells - before
		if p == 0 {
			early = delta
		}
		if p == passes-1 {
			late = delta
		}
	}
	if repo.KnownStuckCells() == 0 {
		t.Error("controller did not feed the fault repository")
	}
	if late >= early {
		t.Errorf("SAW per pass should fall as faults are discovered: %d -> %d",
			early, late)
	}
}
