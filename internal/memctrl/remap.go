package memctrl

// This file implements the fault-repair remapping decorator: a LineStore
// layer that turns the write-verify failures the paper's datapath merely
// *reports* (stuck-at-wrong cells the coset encoder could not mask) into
// *repaired* lines, by relocating the logical line onto a spare physical
// line and rewriting it there. It models the row-remapping repair tier
// the fault-repository line of work (FLOWER/ArchShield, the paper's [20]
// and [26]) layers above per-cell correction: coset coding masks the
// common case, and the rare word the encoder cannot store faithfully is
// moved wholesale to healthy cells.
//
// Placement. The Remapper must sit directly above the Controller (below
// any decoded-line cache): it repairs by inspecting the per-word device
// outcomes of a write, and a write-back cache above it defers those
// outcomes to eviction/Flush time — which is exactly when they pass
// through the Remapper on their way down. Stacking the cache above also
// keeps cache keys logical, so a remap does not invalidate cached data.
//
// Spare allocation is faultrepo-aware when a repository is attached:
// before burning a device write on a spare line, the Remapper consults
// the repository's discovered fault view and prefers a spare with no
// known stuck cells (Peek — a metadata check, not a modeled device
// access). A line that has failed a write is retired permanently; its
// spares-pool slot is not refilled, so repeated failures drain the pool
// and further failures become visible to the caller again (the same
// exhaustion semantics as ECP pointers, at line granularity).

import (
	"fmt"

	"repro/internal/faultrepo"
)

// RemapConfig assembles a Remapper.
type RemapConfig struct {
	// Inner is the decorated store (required) — the Controller in the
	// engine's stack. Its top Spares lines are reserved as spare rows;
	// the Remapper exposes the remaining lines as the logical space.
	Inner LineStore
	// Spares is the number of physical lines reserved for repair
	// (required, > 0, < Inner.NumLines()).
	Spares int
	// Repo, when non-nil, is the runtime fault repository consulted for
	// spare selection. The Controller below typically shares the same
	// repository (its verify-after-write feeds it), so by the time a
	// line fails, the repository already knows the cells that defeated
	// the encoder.
	Repo *faultrepo.Repo
}

// Remapper is a LineStore decorator that repairs write-verify failures
// by remapping logical lines onto spare physical lines. It is not safe
// for concurrent use; shard.Engine serializes access per shard.
type Remapper struct {
	inner   LineStore
	repo    *faultrepo.Repo
	logical int
	// mapTo[l] is the physical line currently backing logical line l.
	mapTo []int
	// spares holds the unused spare physical lines in ascending order;
	// allocation removes from it, retirement never returns to it.
	spares []int

	remapped int64
	failures int64
	retries  int64
}

var _ LineStore = (*Remapper)(nil)

// NewRemapper builds a Remapper over cfg.Inner.
func NewRemapper(cfg RemapConfig) (*Remapper, error) {
	if cfg.Inner == nil {
		return nil, fmt.Errorf("memctrl: remap Inner store is required")
	}
	total := cfg.Inner.NumLines()
	if cfg.Spares <= 0 || cfg.Spares >= total {
		return nil, fmt.Errorf("memctrl: remap Spares %d out of (0,%d)", cfg.Spares, total)
	}
	r := &Remapper{
		inner:   cfg.Inner,
		repo:    cfg.Repo,
		logical: total - cfg.Spares,
		mapTo:   make([]int, total-cfg.Spares),
		spares:  make([]int, 0, cfg.Spares),
	}
	for l := range r.mapTo {
		r.mapTo[l] = l
	}
	for p := r.logical; p < total; p++ {
		r.spares = append(r.spares, p)
	}
	return r, nil
}

// NumLines implements LineStore: the logical capacity (spares excluded).
func (r *Remapper) NumLines() int { return r.logical }

// SparesLeft returns the number of unused spare lines.
func (r *Remapper) SparesLeft() int { return len(r.spares) }

// Mapping returns the physical line currently backing logical line l.
func (r *Remapper) Mapping(l int) int { return r.mapTo[l] }

// RemappedLines returns the number of repair relocations performed.
func (r *Remapper) RemappedLines() int64 { return r.remapped }

// InPlaceRetries returns the number of informed in-place rewrites
// issued after a failed attempt taught the repository its stuck cells.
func (r *Remapper) InPlaceRetries() int64 { return r.retries }

// wordsSAW sums the stuck-at-wrong cells of one write's outcomes.
func wordsSAW(outs []WordOutcome) int {
	saw := 0
	for i := range outs {
		saw += outs[i].SAWCells
	}
	return saw
}

// pickSpare removes and returns the next spare line: the first spare
// with no known stuck cells per the fault repository when one is
// attached (and any is pristine), the first spare otherwise. Returns -1
// when the pool is empty.
func (r *Remapper) pickSpare() int {
	if len(r.spares) == 0 {
		return -1
	}
	idx := 0
	if r.repo != nil {
	scan:
		for i, p := range r.spares {
			for col := 0; col < WordsPerLine; col++ {
				if d := r.repo.Peek(p*WordsPerLine + col); d.StuckMask != 0 {
					continue scan
				}
			}
			idx = i
			break
		}
	}
	p := r.spares[idx]
	copy(r.spares[idx:], r.spares[idx+1:])
	r.spares = r.spares[:len(r.spares)-1]
	return p
}

// writeAt writes plaintext to physical line p, retrying once in place
// when the first attempt stores stuck-at-wrong cells and a fault
// repository is attached: the failed attempt's verify-after-write has
// just taught the repository exactly the cells that defeated the
// encoder, so a re-encode with that knowledge usually masks them
// without burning a spare (the FLOWER-style discipline: remap only what
// encoding cannot repair). Returns the final attempt's outcomes. Device
// errors propagate immediately: the repair loop reacts to SAW outcomes,
// not transient faults — those belong to the shard backend's retry.
func (r *Remapper) writeAt(p int, plaintext []byte) ([]WordOutcome, error) {
	outs, err := r.inner.WriteLine(p, plaintext)
	if err != nil || r.repo == nil || len(outs) == 0 || wordsSAW(outs) == 0 {
		return outs, err
	}
	retry, err := r.inner.WriteLine(p, plaintext)
	r.retries++
	return retry, err
}

// WriteLine implements LineStore. The write goes to the line's current
// physical location; if the device outcomes report stuck-at-wrong cells
// even after the in-place informed retry (a failure the encoder cannot
// mask), the logical line is remapped to a spare and rewritten there,
// repeating until a spare stores it faithfully or the pool runs dry.
// The returned outcomes are those of the final attempt, so a repaired
// write reports zero SAW cells; the failed attempts remain visible in
// Stats (the device really programmed them). Deferred writes (an inner
// store that returns no outcomes) pass through unrepaired — place the
// Remapper below any write-back cache.
func (r *Remapper) WriteLine(logical int, plaintext []byte) ([]WordOutcome, error) {
	outs, err := r.writeAt(r.mapTo[logical], plaintext)
	if err != nil || len(outs) == 0 || wordsSAW(outs) == 0 {
		return outs, err
	}
	for {
		next := r.pickSpare()
		if next < 0 {
			r.failures++
			return outs, nil
		}
		r.remapped++
		r.mapTo[logical] = next
		outs, err = r.writeAt(next, plaintext)
		if err != nil || wordsSAW(outs) == 0 {
			return outs, err
		}
	}
}

// ReadLine implements LineStore, serving the read from the line's
// current physical location.
func (r *Remapper) ReadLine(logical int, dst []byte) ([]byte, error) {
	return r.inner.ReadLine(r.mapTo[logical], dst)
}

// Flush implements LineStore.
func (r *Remapper) Flush() error { return r.inner.Flush() }

// Stats implements LineStore: the inner stack's counters plus the
// remap-layer's. Note that LineWrites counts device writes including
// repair attempts, so LineWrites >= logical writes when repairs
// happened.
func (r *Remapper) Stats() Stats {
	s := r.inner.Stats()
	s.RemappedLines += r.remapped
	s.RepairFailures += r.failures
	return s
}

// ResetStats implements LineStore, zeroing remap and inner counters (the
// mapping itself and the spare pool are untouched).
func (r *Remapper) ResetStats() {
	r.remapped, r.failures, r.retries = 0, 0, 0
	r.inner.ResetStats()
}
