package memctrl

import (
	"bytes"
	"testing"

	"repro/internal/faultrepo"
	"repro/internal/pcm"
)

// fakeStore is a scriptable LineStore for exercising the Remapper in
// isolation: it stores plaintext per line and reports one SAW cell per
// remaining "failure charge" on a line (each write consumes one
// charge), so tests can model lines that fail once, always, or never.
type fakeStore struct {
	lines  int
	data   map[int][]byte
	fails  map[int]int // line -> remaining failing writes (-1: always)
	writes int
	stats  Stats
}

func newFakeStore(lines int) *fakeStore {
	return &fakeStore{lines: lines, data: map[int][]byte{}, fails: map[int]int{}}
}

func (f *fakeStore) WriteLine(line int, plaintext []byte) ([]WordOutcome, error) {
	f.writes++
	f.stats.LineWrites++
	buf := make([]byte, len(plaintext))
	copy(buf, plaintext)
	f.data[line] = buf
	saw := 0
	if n := f.fails[line]; n != 0 {
		saw = 1
		if n > 0 {
			f.fails[line] = n - 1
		}
	}
	f.stats.SAWCells += int64(saw)
	return []WordOutcome{{Word: line * WordsPerLine, SAWCells: saw}}, nil
}

func (f *fakeStore) ReadLine(line int, dst []byte) ([]byte, error) {
	if dst == nil {
		dst = make([]byte, len(f.data[line]))
	}
	copy(dst, f.data[line])
	f.stats.LineReads++
	return dst, nil
}

func (f *fakeStore) Flush() error  { return nil }
func (f *fakeStore) Stats() Stats  { return f.stats }
func (f *fakeStore) ResetStats()   { f.stats = Stats{} }
func (f *fakeStore) NumLines() int { return f.lines }

func line64(b byte) []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestNewRemapperValidation(t *testing.T) {
	if _, err := NewRemapper(RemapConfig{Spares: 1}); err == nil {
		t.Error("nil inner accepted")
	}
	inner := newFakeStore(8)
	for _, spares := range []int{0, -1, 8, 9} {
		if _, err := NewRemapper(RemapConfig{Inner: inner, Spares: spares}); err == nil {
			t.Errorf("spares=%d accepted", spares)
		}
	}
	r, err := NewRemapper(RemapConfig{Inner: inner, Spares: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLines() != 5 {
		t.Errorf("NumLines = %d, want 5", r.NumLines())
	}
	if r.SparesLeft() != 3 {
		t.Errorf("SparesLeft = %d, want 3", r.SparesLeft())
	}
}

func TestRemapperRepairsFailedWrite(t *testing.T) {
	inner := newFakeStore(10)
	inner.fails[3] = -1 // logical line 3 always fails in place
	r, err := NewRemapper(RemapConfig{Inner: inner, Spares: 2})
	if err != nil {
		t.Fatal(err)
	}
	data := line64(0xAB)
	outs, _ := r.WriteLine(3, data)
	if saw := wordsSAW(outs); saw != 0 {
		t.Errorf("repaired write reports %d SAW cells, want 0", saw)
	}
	if got := r.Mapping(3); got != 8 {
		t.Errorf("Mapping(3) = %d, want first spare 8", got)
	}
	if r.RemappedLines() != 1 || r.SparesLeft() != 1 {
		t.Errorf("remapped=%d sparesLeft=%d, want 1,1", r.RemappedLines(), r.SparesLeft())
	}
	if got, _ := r.ReadLine(3, nil); !bytes.Equal(got, data) {
		t.Error("read after repair does not return written plaintext")
	}
	// A healthy line is untouched by the repair machinery.
	if outs, _ := r.WriteLine(4, line64(1)); wordsSAW(outs) != 0 || r.Mapping(4) != 4 {
		t.Error("healthy line was remapped")
	}
	st := r.Stats()
	if st.RemappedLines != 1 || st.RepairFailures != 0 {
		t.Errorf("Stats remap counters = %d/%d, want 1/0", st.RemappedLines, st.RepairFailures)
	}
}

func TestRemapperPoolExhaustion(t *testing.T) {
	inner := newFakeStore(6)
	inner.fails[0] = -1
	inner.fails[4] = -1 // both spares fail too
	inner.fails[5] = -1
	r, err := NewRemapper(RemapConfig{Inner: inner, Spares: 2})
	if err != nil {
		t.Fatal(err)
	}
	outs, _ := r.WriteLine(0, line64(7))
	if saw := wordsSAW(outs); saw == 0 {
		t.Error("exhausted pool still reported a clean write")
	}
	if r.SparesLeft() != 0 {
		t.Errorf("SparesLeft = %d, want 0", r.SparesLeft())
	}
	st := r.Stats()
	if st.RepairFailures != 1 || st.RemappedLines != 2 {
		t.Errorf("failures=%d remapped=%d, want 1,2", st.RepairFailures, st.RemappedLines)
	}
	// Retired lines never return: the next failing write fails
	// immediately instead of retrying burnt spares.
	before := inner.writes
	r.WriteLine(0, line64(9))
	if got := inner.writes - before; got != 1 {
		t.Errorf("write after exhaustion issued %d device writes, want 1", got)
	}
	if st := r.Stats(); st.RepairFailures != 2 {
		t.Errorf("RepairFailures = %d, want 2", st.RepairFailures)
	}
}

func TestRemapperPrefersPristineSpare(t *testing.T) {
	inner := newFakeStore(10) // logical 0..7, spares 8, 9
	inner.fails[2] = -1
	repo := faultrepo.New(pcm.MLC, 16)
	// Teach the repository that spare 8's first word has a stuck cell;
	// spare selection must skip it for the pristine spare 9.
	repo.RecordVerify(8*WordsPerLine, 0, 3)
	r, err := NewRemapper(RemapConfig{Inner: inner, Spares: 2, Repo: repo})
	if err != nil {
		t.Fatal(err)
	}
	r.WriteLine(2, line64(5))
	if got := r.Mapping(2); got != 9 {
		t.Errorf("Mapping(2) = %d, want pristine spare 9", got)
	}
	lookups := repo.Stats.Lookups
	r.WriteLine(3, line64(6))
	if repo.Stats.Lookups != lookups {
		t.Error("spare selection counted repository lookups (Peek must be metadata-only)")
	}
}

func TestRemapperInPlaceRetryWithRepo(t *testing.T) {
	inner := newFakeStore(10)
	inner.fails[1] = 1 // fails once, then the informed rewrite succeeds
	repo := faultrepo.New(pcm.MLC, 16)
	r, err := NewRemapper(RemapConfig{Inner: inner, Spares: 2, Repo: repo})
	if err != nil {
		t.Fatal(err)
	}
	outs, _ := r.WriteLine(1, line64(4))
	if saw := wordsSAW(outs); saw != 0 {
		t.Errorf("retried write reports %d SAW cells, want 0", saw)
	}
	if r.Mapping(1) != 1 || r.SparesLeft() != 2 {
		t.Error("in-place repair burnt a spare")
	}
	if r.InPlaceRetries() != 1 {
		t.Errorf("InPlaceRetries = %d, want 1", r.InPlaceRetries())
	}
}

func TestRemapperResetStats(t *testing.T) {
	inner := newFakeStore(10)
	inner.fails[0] = -1
	r, _ := NewRemapper(RemapConfig{Inner: inner, Spares: 2})
	r.WriteLine(0, line64(1))
	r.ResetStats()
	st := r.Stats()
	if st.RemappedLines != 0 || st.RepairFailures != 0 || st.LineWrites != 0 {
		t.Errorf("stats not cleared: %+v", st)
	}
	// The mapping and pool survive a stats reset.
	if r.Mapping(0) == 0 || r.SparesLeft() != 1 {
		t.Error("ResetStats disturbed the mapping or spare pool")
	}
}
