// Package wearlevel implements Start-Gap wear leveling (Qureshi et al.,
// MICRO 2009 — the paper's reference [30] for lifetime methodology).
//
// Start-Gap remaps logical rows onto physical rows with two registers
// (Start, Gap) and one spare row, moving the gap one row every
// GapInterval writes. The address arithmetic costs one add/compare per
// access and no tables, yet converts a pathological single-row write
// stream into near-uniform physical wear over time.
//
// The paper's lifetime experiments (Figs. 11-12) address wear *tolerance*
// (masking stuck cells); wear *leveling* is the orthogonal mechanism a
// deployed controller would stack underneath. The ablate-wearlevel
// experiment quantifies the stack: VCC's lifetime gains survive (and
// compose with) Start-Gap.
package wearlevel

import "fmt"

// StartGap remaps logical rows [0, N) onto physical rows [0, N] (one
// spare). It is not safe for concurrent use.
type StartGap struct {
	n           int // logical rows
	start       int // start register: rotation offset
	gap         int // gap register: physical index of the unused row
	writes      int // writes since the last gap movement
	gapInterval int
	moves       int64 // total gap movements (each costs one row copy)
}

// NewStartGap creates a leveler for n logical rows, moving the gap every
// gapInterval writes (Qureshi et al. use 100: <1% write overhead).
func NewStartGap(n, gapInterval int) *StartGap {
	if n <= 0 || gapInterval <= 0 {
		panic(fmt.Sprintf("wearlevel: bad config n=%d interval=%d", n, gapInterval))
	}
	return &StartGap{n: n, gap: n, gapInterval: gapInterval}
}

// LogicalRows returns n.
func (s *StartGap) LogicalRows() int { return s.n }

// PhysicalRows returns n+1 (the spare).
func (s *StartGap) PhysicalRows() int { return s.n + 1 }

// GapMoves returns the number of gap movements so far; each implies one
// row copy of write overhead (amortized 1/gapInterval per write).
func (s *StartGap) GapMoves() int64 { return s.moves }

// Map translates a logical row to its current physical row.
//
// Invariant: logical rows occupy the N+1 physical slots in circular
// order beginning at slot Start, with the gap's slot skipped. Logical L
// therefore lands at (Start+L) mod (N+1), advanced one further slot when
// the gap falls inside the circular walk [Start, Start+L].
func (s *StartGap) Map(logical int) int {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("wearlevel: logical row %d out of [0,%d)", logical, s.n))
	}
	mod := s.n + 1
	p := logical + s.start
	if p >= mod {
		p -= mod
	}
	// Circular-interval membership: offset of gap from start.
	off := s.gap - s.start
	if off < 0 {
		off += mod
	}
	if off <= logical {
		p++
		if p >= mod {
			p -= mod
		}
	}
	return p
}

// OnWrite accounts one row write and, when the interval expires, moves
// the gap one position (copying the displaced row into the old gap; the
// caller performs the copy via the returned pair). It returns
// (from, to, moved): when moved is true the caller must copy physical
// row `from` into physical row `to` before the next access.
func (s *StartGap) OnWrite() (from, to int, moved bool) {
	s.writes++
	if s.writes < s.gapInterval {
		return 0, 0, false
	}
	s.writes = 0
	s.moves++
	// The gap moves "down" by one slot (wrapping): the row in the slot
	// below slides into the gap's old slot.
	oldGap := s.gap
	newGap := s.gap - 1
	if newGap < 0 {
		newGap = s.n
	}
	// When the gap crosses the start slot, the row that begins the
	// circular walk has shifted one slot up; advance Start to follow it.
	if oldGap == s.start {
		s.start++
		if s.start >= s.n+1 {
			s.start = 0
		}
	}
	s.gap = newGap
	return newGap, oldGap, true
}

// state exposure for tests.
func (s *StartGap) Registers() (start, gap int) { return s.start, s.gap }
