package wearlevel

import (
	"testing"

	"repro/internal/prng"
)

func TestMapIsPermutation(t *testing.T) {
	s := NewStartGap(16, 4)
	for step := 0; step < 500; step++ {
		seen := make(map[int]bool)
		for l := 0; l < 16; l++ {
			p := s.Map(l)
			if p < 0 || p >= s.PhysicalRows() {
				t.Fatalf("step %d: physical %d out of range", step, p)
			}
			if p == func() int { _, g := s.Registers(); return g }() {
				t.Fatalf("step %d: logical %d mapped onto the gap", step, l)
			}
			if seen[p] {
				t.Fatalf("step %d: physical %d used twice", step, p)
			}
			seen[p] = true
		}
		s.OnWrite()
	}
}

// TestMapPermutationInvariantAcrossConfigs pins the structural
// invariant behind every Start-Gap proof: at ANY point of ANY rotation
// schedule, Map is injective over [0, n) and its image together with
// the gap slot tiles the physical space [0, n] exactly. It sweeps row
// counts (including the n=1 edge) and gap intervals, checking after
// every single gap move for several full rotations of the array.
func TestMapPermutationInvariantAcrossConfigs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		for _, interval := range []int{1, 2, 5} {
			s := NewStartGap(n, interval)
			// Three full rotations of the gap through all n+1 slots.
			writes := 3 * (n + 1) * interval
			used := make([]int, s.PhysicalRows())
			for step := 0; step <= writes; step++ {
				for i := range used {
					used[i] = -1
				}
				for l := 0; l < n; l++ {
					p := s.Map(l)
					if p < 0 || p >= s.PhysicalRows() {
						t.Fatalf("n=%d int=%d step %d: Map(%d) = %d out of range",
							n, interval, step, l, p)
					}
					if used[p] >= 0 {
						t.Fatalf("n=%d int=%d step %d: Map(%d) = Map(%d) = %d",
							n, interval, step, used[p], l, p)
					}
					used[p] = l
				}
				_, gap := s.Registers()
				if used[gap] >= 0 {
					t.Fatalf("n=%d int=%d step %d: logical %d mapped onto the gap %d",
						n, interval, step, used[gap], gap)
				}
				for p, l := range used {
					if p != gap && l < 0 {
						t.Fatalf("n=%d int=%d step %d: physical %d is neither mapped nor the gap",
							n, interval, step, p)
					}
				}
				s.OnWrite()
			}
		}
	}
}

func TestGapMovesEveryInterval(t *testing.T) {
	s := NewStartGap(8, 10)
	moved := 0
	for i := 0; i < 100; i++ {
		if _, _, m := s.OnWrite(); m {
			moved++
		}
	}
	if moved != 10 {
		t.Errorf("gap moved %d times over 100 writes at interval 10", moved)
	}
	if s.GapMoves() != 10 {
		t.Errorf("GapMoves = %d", s.GapMoves())
	}
}

func TestGapMovementCopiesCorrectRow(t *testing.T) {
	// Simulate physical storage and verify logical contents survive
	// arbitrary gap movement.
	const n = 12
	s := NewStartGap(n, 1) // move the gap on every write
	phys := make([]int, s.PhysicalRows())
	for i := range phys {
		phys[i] = -1
	}
	logical := make([]int, n)
	for l := 0; l < n; l++ {
		logical[l] = 100 + l
		phys[s.Map(l)] = logical[l]
	}
	for step := 0; step < 10*n*(n+1); step++ {
		if from, to, moved := s.OnWrite(); moved {
			phys[to] = phys[from]
			phys[from] = -1
		}
		for l := 0; l < n; l++ {
			if phys[s.Map(l)] != logical[l] {
				t.Fatalf("step %d: logical %d lost its contents", step, l)
			}
		}
	}
}

func TestStartAdvancesAfterFullRotation(t *testing.T) {
	s := NewStartGap(4, 1)
	start0, _ := s.Registers()
	// The gap needs PhysicalRows moves to rotate fully once.
	for i := 0; i < s.PhysicalRows(); i++ {
		s.OnWrite()
	}
	start1, _ := s.Registers()
	if start1 == start0 {
		t.Error("start register should advance after a full gap rotation")
	}
}

// TestWearSpreading is the point of the mechanism: a single-row write
// stream must spread across many physical rows over time.
func TestWearSpreading(t *testing.T) {
	const n = 64
	s := NewStartGap(n, 4)
	counts := make(map[int]int)
	for i := 0; i < 40000; i++ {
		counts[s.Map(0)]++ // pathological: always logical row 0
		s.OnWrite()
	}
	if len(counts) < n/2 {
		t.Errorf("hot row touched only %d physical rows; want broad spread", len(counts))
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max) > 0.15*40000 {
		t.Errorf("hottest physical row absorbed %d of 40000 writes; leveling weak", max)
	}
}

func TestMapPanicsOutOfRange(t *testing.T) {
	s := NewStartGap(4, 1)
	for _, l := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Map(%d) should panic", l)
				}
			}()
			s.Map(l)
		}()
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStartGap(0, 1)
}

func TestDeterministicUnderRandomWrites(t *testing.T) {
	a := NewStartGap(32, 7)
	b := NewStartGap(32, 7)
	rng := prng.New(1)
	for i := 0; i < 5000; i++ {
		l := int(rng.Uint64n(32))
		if a.Map(l) != b.Map(l) {
			t.Fatal("instances diverged")
		}
		a.OnWrite()
		b.OnWrite()
	}
}
