package pcm

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestEmptyFaultMap(t *testing.T) {
	fm := NewFaultMap(MLC, 10)
	if fm.NumStuckCells() != 0 || fm.Rate() != 0 {
		t.Error("new map should be fault free")
	}
	if fm.Apply(3, 0xDEAD) != 0xDEAD {
		t.Error("Apply on fault-free word must be identity")
	}
	if fm.SAWCells(3, 0xDEAD) != 0 {
		t.Error("no SAW on fault-free word")
	}
}

func TestStickCellMLC(t *testing.T) {
	fm := NewFaultMap(MLC, 4)
	fm.StickCellAt(1, 5, 0b10)
	mask, vals := fm.Stuck(1)
	if mask != uint64(3)<<10 {
		t.Errorf("mask = %#x", mask)
	}
	if vals != uint64(2)<<10 {
		t.Errorf("vals = %#x", vals)
	}
	// Writing the matching symbol: no SAW.
	desired := uint64(2) << 10
	if fm.SAWCells(1, desired) != 0 {
		t.Error("matching write should have 0 SAW")
	}
	// Writing a different symbol: 1 SAW, value forced.
	if fm.SAWCells(1, uint64(1)<<10) != 1 {
		t.Error("mismatched write should have 1 SAW")
	}
	if got := fm.Apply(1, uint64(1)<<10); got != uint64(2)<<10 {
		t.Errorf("Apply = %#x", got)
	}
}

func TestStickCellSLC(t *testing.T) {
	fm := NewFaultMap(SLC, 2)
	fm.StickCellAt(0, 63, 1)
	mask, vals := fm.Stuck(0)
	if mask != 1<<63 || vals != 1<<63 {
		t.Errorf("mask=%#x vals=%#x", mask, vals)
	}
	if fm.SAWCells(0, 0) != 1 {
		t.Error("stuck-at-1 writing 0 should be SAW")
	}
	if fm.SAWCells(0, 1<<63) != 0 {
		t.Error("stuck-at-1 writing 1 should not be SAW")
	}
}

func TestStickIdempotent(t *testing.T) {
	fm := NewFaultMap(MLC, 1)
	fm.StickCellAt(0, 0, 1)
	fm.StickCellAt(0, 0, 2)
	if fm.NumStuckCells() != 1 {
		t.Errorf("double stick counted twice: %d", fm.NumStuckCells())
	}
	_, vals := fm.Stuck(0)
	if vals != 2 {
		t.Errorf("restick should update value, got %#x", vals)
	}
}

func TestGenerateRate(t *testing.T) {
	rng := prng.New(1)
	const words = 20000
	fm := Generate(MLC, words, FaultParams{CellRate: 1e-2}, rng)
	got := fm.Rate()
	if math.Abs(got-1e-2) > 2.5e-3 {
		t.Errorf("realized rate %v, want ~1e-2", got)
	}
}

func TestGenerateZeroRate(t *testing.T) {
	fm := Generate(MLC, 100, FaultParams{}, prng.New(2))
	if fm.NumStuckCells() != 0 {
		t.Error("zero rate should give no faults")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(MLC, 500, FaultParams{CellRate: 1e-2}, prng.New(7))
	b := Generate(MLC, 500, FaultParams{CellRate: 1e-2}, prng.New(7))
	for w := 0; w < 500; w++ {
		am, av := a.Stuck(w)
		bm, bv := b.Stuck(w)
		if am != bm || av != bv {
			t.Fatalf("maps differ at word %d", w)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(MLC, 500, FaultParams{CellRate: 1e-2}, prng.New(7))
	b := Generate(MLC, 500, FaultParams{CellRate: 1e-2}, prng.New(8))
	same := true
	for w := 0; w < 500; w++ {
		am, _ := a.Stuck(w)
		bm, _ := b.Stuck(w)
		if am != bm {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault maps")
	}
}

// TestGenerateClusteredIncreasesLocality verifies that clustered
// generation concentrates more faults in fewer words than independent
// generation at the same overall rate.
func TestGenerateClusteredIncreasesLocality(t *testing.T) {
	const words = 20000
	ind := Generate(MLC, words, FaultParams{CellRate: 1e-2}, prng.New(3))
	cl := Generate(MLC, words, FaultParams{CellRate: 1e-2, ClusterFrac: 0.8,
		ClusterSize: 4}, prng.New(3))

	multi := func(fm *FaultMap) int {
		n := 0
		for w := 0; w < words; w++ {
			mask, _ := fm.Stuck(w)
			cells := 0
			for k := 0; k < 32; k++ {
				if mask>>(2*k)&3 != 0 {
					cells++
				}
			}
			if cells >= 2 {
				n++
			}
		}
		return n
	}
	mi, mc := multi(ind), multi(cl)
	if mc <= mi {
		t.Errorf("clustered multi-fault words %d <= independent %d", mc, mi)
	}
}

func TestSAWCountsSymbolsNotBits(t *testing.T) {
	fm := NewFaultMap(MLC, 1)
	fm.StickCellAt(0, 0, 0b00)
	// Desired symbol 0b11 differs in both bits: still one SAW cell.
	if got := fm.SAWCells(0, 0b11); got != 1 {
		t.Errorf("SAW = %d, want 1", got)
	}
}

func TestApplyPreservesUnstuckBits(t *testing.T) {
	fm := NewFaultMap(MLC, 1)
	fm.StickCellAt(0, 2, 0b01)
	desired := uint64(0xFFFFFFFFFFFFFFFF)
	got := fm.Apply(0, desired)
	want := desired&^(uint64(3)<<4) | uint64(1)<<4
	if got != want {
		t.Errorf("Apply = %#x, want %#x", got, want)
	}
}

func TestBinomialDraw(t *testing.T) {
	rng := prng.New(11)
	if binomialDraw(rng, 0, 0.5) != 0 {
		t.Error("n=0 should give 0")
	}
	if binomialDraw(rng, 10, 0) != 0 {
		t.Error("p=0 should give 0")
	}
	if binomialDraw(rng, 10, 1) != 10 {
		t.Error("p=1 should give n")
	}
	// Small mean: Poisson path; check the mean over draws.
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		sum += float64(binomialDraw(rng, 1000, 0.01))
	}
	if m := sum / trials; math.Abs(m-10) > 0.5 {
		t.Errorf("small-mean draw mean %v, want ~10", m)
	}
	// Large mean: normal path.
	sum = 0
	for i := 0; i < trials; i++ {
		sum += float64(binomialDraw(rng, 100000, 0.01))
	}
	if m := sum / trials; math.Abs(m-1000) > 5 {
		t.Errorf("large-mean draw mean %v, want ~1000", m)
	}
}

func TestFaultMapString(t *testing.T) {
	fm := Generate(MLC, 100, FaultParams{CellRate: 0.01}, prng.New(1))
	if fm.String() == "" {
		t.Error("String empty")
	}
}
