package pcm

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

// FaultMap records permanently stuck cells for a memory of fixed size.
// Stuck granularity is one physical cell: an entire 2-bit symbol for MLC
// (its resistance is frozen, so both logical digits are) or one bit for
// SLC.
//
// The paper's Section VI-A pre-generates fault maps at a fixed 1e-2 cell
// fault incidence rate to model a memory with extreme wear, and averages
// over five distinct permutations; Section II-A notes faults cluster
// spatially within rows due to process variation. Generate supports both
// the independent and the clustered regime.
type FaultMap struct {
	Mode CellMode
	// stuckBits[w] has every bit of every stuck cell of word w set.
	stuckBits []uint64
	// stuckVals[w] holds the frozen bit values at stuck positions.
	stuckVals []uint64
	numStuck  int // stuck cell count
}

// FaultParams configures fault map generation.
type FaultParams struct {
	// CellRate is the per-cell probability of being stuck (e.g. 1e-2).
	CellRate float64
	// ClusterFrac is the fraction of faulty cells that arrive in small
	// spatial clusters within one word, modeling process-variation
	// correlation. 0 gives fully independent faults.
	ClusterFrac float64
	// ClusterSize is the mean cluster size (cells) when clustering; the
	// actual size is 2 + geometric-ish spread. Ignored if ClusterFrac=0.
	ClusterSize int
}

// NewFaultMap returns an empty (fault-free) map covering numWords words.
func NewFaultMap(mode CellMode, numWords int) *FaultMap {
	return &FaultMap{
		Mode:      mode,
		stuckBits: make([]uint64, numWords),
		stuckVals: make([]uint64, numWords),
	}
}

// Generate populates a fresh fault map for numWords 64-bit words.
// Stuck values are drawn uniformly from the symbol alphabet.
func Generate(mode CellMode, numWords int, p FaultParams, rng *prng.Rand) *FaultMap {
	fm := NewFaultMap(mode, numWords)
	if p.CellRate <= 0 {
		return fm
	}
	cellsPerWord := mode.CellsPerWord()
	totalCells := numWords * cellsPerWord
	independent := p.CellRate * (1 - p.ClusterFrac)

	// Independent faults: binomial thinning via per-cell Bernoulli is
	// too slow for large maps, so draw the count then place uniformly.
	nInd := binomialDraw(rng, totalCells, independent)
	for i := 0; i < nInd; i++ {
		c := int(rng.Uint64n(uint64(totalCells)))
		fm.stickCell(c/cellsPerWord, c%cellsPerWord, uint8(rng.Uint64n(4)))
	}

	// Clustered faults: place cluster seeds, then stick a run of
	// adjacent cells in the same word (wrapping within the word).
	if p.ClusterFrac > 0 {
		sz := p.ClusterSize
		if sz < 2 {
			sz = 3
		}
		target := int(float64(totalCells) * p.CellRate * p.ClusterFrac)
		for placed := 0; placed < target; {
			c := int(rng.Uint64n(uint64(totalCells)))
			w, k := c/cellsPerWord, c%cellsPerWord
			n := 2 + int(rng.Uint64n(uint64(2*sz-3))) // mean ~sz
			for j := 0; j < n && placed < target; j++ {
				fm.stickCell(w, (k+j)%cellsPerWord, uint8(rng.Uint64n(4)))
				placed++
			}
		}
	}
	return fm
}

// stickCell marks cell k of word w stuck at symbol/bit value v. Idempotent
// per cell: re-sticking overwrites the frozen value without double
// counting.
func (fm *FaultMap) stickCell(w, k int, v uint8) {
	var mask, val uint64
	if fm.Mode == MLC {
		mask = uint64(3) << uint(2*k)
		val = uint64(v&3) << uint(2*k)
	} else {
		mask = uint64(1) << uint(k)
		val = uint64(v&1) << uint(k)
	}
	if fm.stuckBits[w]&mask == 0 {
		fm.numStuck++
	}
	fm.stuckBits[w] |= mask
	fm.stuckVals[w] = (fm.stuckVals[w] &^ mask) | val
}

// StickCellAt freezes cell k of word w at value v (exported for the wear
// model and tests).
func (fm *FaultMap) StickCellAt(w, k int, v uint8) { fm.stickCell(w, k, v) }

// Stuck returns the stuck-bit mask and frozen values for word w.
func (fm *FaultMap) Stuck(w int) (mask, vals uint64) {
	return fm.stuckBits[w], fm.stuckVals[w]
}

// NumWords returns the number of words covered.
func (fm *FaultMap) NumWords() int { return len(fm.stuckBits) }

// NumStuckCells returns the total number of stuck cells.
func (fm *FaultMap) NumStuckCells() int { return fm.numStuck }

// Rate returns the realized stuck-cell rate.
func (fm *FaultMap) Rate() float64 {
	total := len(fm.stuckBits) * fm.Mode.CellsPerWord()
	if total == 0 {
		return 0
	}
	return float64(fm.numStuck) / float64(total)
}

// Apply returns the value actually stored when desired is written to word
// w: stuck cells retain their frozen value.
func (fm *FaultMap) Apply(w int, desired uint64) uint64 {
	m := fm.stuckBits[w]
	return (desired &^ m) | (fm.stuckVals[w] & m)
}

// SAWCells counts stuck-at-wrong cells for writing desired to word w:
// stuck cells whose frozen value differs from the desired value.
func (fm *FaultMap) SAWCells(w int, desired uint64) int {
	m := fm.stuckBits[w]
	if m == 0 {
		return 0
	}
	wrong := (desired ^ fm.stuckVals[w]) & m
	if fm.Mode == MLC {
		// A cell is wrong if either of its digits is wrong.
		return bits.OnesCount64(bitutil.CollapseBitMaskToSymbols(wrong))
	}
	return bits.OnesCount64(wrong)
}

// binomialDraw samples Binomial(n, p) using a Poisson approximation for
// small means and a normal approximation otherwise. Fault counts at the
// scales simulated here (n up to millions, p around 1e-2) are insensitive
// to the approximation error, and both paths are O(mean) or O(1) rather
// than O(n).
func binomialDraw(rng *prng.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 30 {
		// Knuth's Poisson sampler.
		l := math.Exp(-mean)
		k, prod := 0, 1.0
		for {
			prod *= rng.Float64()
			if prod <= l {
				return clampInt(k, 0, n)
			}
			k++
		}
	}
	sd := math.Sqrt(mean * (1 - p))
	v := int(mean + sd*rng.NormFloat64() + 0.5)
	return clampInt(v, 0, n)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String summarizes the map.
func (fm *FaultMap) String() string {
	return fmt.Sprintf("FaultMap{%s, words=%d, stuck=%d, rate=%.2e}",
		fm.Mode, len(fm.stuckBits), fm.numStuck, fm.Rate())
}
