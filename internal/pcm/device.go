package pcm

import (
	"fmt"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

// Config describes a simulated PCM device.
type Config struct {
	// Mode selects SLC or MLC cells.
	Mode CellMode
	// Rows is the number of memory rows.
	Rows int
	// WordsPerRow is the number of 64-bit words per row (8 for the
	// paper's 512-bit rows).
	WordsPerRow int
	// Energy is the transition energy model; zero value falls back to
	// DefaultEnergy.
	Energy EnergyModel
	// Faults, if non-nil, is a pre-generated stuck-at fault map sized
	// for Rows*WordsPerRow words (the paper's fixed-fault-rate
	// "snapshot" experiments).
	Faults *FaultMap
	// Wear, if non-nil, enables endurance tracking: cells accumulate
	// state changes and become stuck when exhausted (the paper's
	// lifetime experiments).
	Wear *Wear
}

// WriteResult reports the physical outcome of one word write.
type WriteResult struct {
	// Stored is the value actually retained in the cells (stuck cells
	// keep their frozen value).
	Stored uint64
	// EnergyPJ is the write energy spent on cells that changed state.
	EnergyPJ float64
	// BitFlips is the number of logical bits that changed.
	BitFlips int
	// CellChanges is the number of physical cells that changed state
	// (equals BitFlips for SLC; counts symbols for MLC).
	CellChanges int
	// SAWCells is the number of stuck-at-wrong cells: stuck cells whose
	// frozen value differs from the desired value.
	SAWCells int
	// SAWBits is the number of stuck-at-wrong logical bits (a stuck MLC
	// cell can be wrong in one or both digits). Bit-granular correctors
	// such as SECDED care about this count rather than SAWCells.
	SAWBits int
	// NewlyFailed is the number of cells whose endurance was exhausted
	// by this write (wear-enabled devices only).
	NewlyFailed int
}

// Device is a simulated PCM array addressed in 64-bit words.
//
// All writes are physical: the device applies stuck-at masking, charges
// transition energy for cells that change, and (if wear tracking is on)
// ages cells and converts exhausted cells into stuck cells frozen at
// their present state.
type Device struct {
	cfg   Config
	words []uint64
	// Stuck state lives in the fault map; if none was provided an empty
	// one is created so wear-induced faults have somewhere to live.
	faults *FaultMap

	// Totals accumulates device-wide statistics.
	Totals DeviceStats
}

// DeviceStats accumulates write statistics over the device lifetime.
type DeviceStats struct {
	Writes      int64
	EnergyPJ    float64
	BitFlips    int64
	CellChanges int64
	SAWCells    int64
}

// NewDevice builds a device from cfg. It panics on invalid geometry.
func NewDevice(cfg Config) *Device {
	if cfg.Rows <= 0 || cfg.WordsPerRow <= 0 {
		panic("pcm: device needs positive Rows and WordsPerRow")
	}
	if cfg.Energy == (EnergyModel{}) {
		cfg.Energy = DefaultEnergy
	}
	n := cfg.Rows * cfg.WordsPerRow
	d := &Device{cfg: cfg, words: make([]uint64, n)}
	if cfg.Faults != nil {
		if cfg.Faults.NumWords() != n {
			panic(fmt.Sprintf("pcm: fault map covers %d words, device has %d",
				cfg.Faults.NumWords(), n))
		}
		if cfg.Faults.Mode != cfg.Mode {
			panic("pcm: fault map cell mode mismatch")
		}
		d.faults = cfg.Faults
	} else {
		d.faults = NewFaultMap(cfg.Mode, n)
	}
	if cfg.Wear != nil && cfg.Wear.NumCells() != n*cfg.Mode.CellsPerWord() {
		panic(fmt.Sprintf("pcm: wear tracks %d cells, device has %d",
			cfg.Wear.NumCells(), n*cfg.Mode.CellsPerWord()))
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumWords returns the total number of 64-bit words.
func (d *Device) NumWords() int { return len(d.words) }

// NumRows returns the number of rows.
func (d *Device) NumRows() int { return d.cfg.Rows }

// WordsPerRow returns words per row.
func (d *Device) WordsPerRow() int { return d.cfg.WordsPerRow }

// WordIndex converts (row, col) to a flat word index.
func (d *Device) WordIndex(row, col int) int { return row*d.cfg.WordsPerRow + col }

// Read returns the stored value of word w.
func (d *Device) Read(w int) uint64 { return d.words[w] }

// ReadRow copies the row's words into dst (len >= WordsPerRow) and
// returns it; dst may be nil.
func (d *Device) ReadRow(row int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, d.cfg.WordsPerRow)
	}
	copy(dst, d.words[row*d.cfg.WordsPerRow:(row+1)*d.cfg.WordsPerRow])
	return dst
}

// Stuck exposes the stuck mask and frozen values of word w (what a
// runtime fault repository would provide to the memory controller).
func (d *Device) Stuck(w int) (mask, vals uint64) { return d.faults.Stuck(w) }

// Faults returns the device's fault map (shared, live view).
func (d *Device) Faults() *FaultMap { return d.faults }

// InitRandom fills every word with random data without charging energy or
// wear, modeling the paper's initialization of each address with
// cryptographically random bytes. Stuck cells still hold their frozen
// values afterwards.
func (d *Device) InitRandom(rng *prng.Rand) {
	for i := range d.words {
		d.words[i] = d.faults.Apply(i, rng.Uint64())
	}
}

// SetRaw stores v into word w bypassing faults, energy and wear. For
// tests and initialization only.
func (d *Device) SetRaw(w int, v uint64) { d.words[w] = v }

// Write performs a physical write of desired into word w and returns the
// outcome. The sequence models a differential write:
//
//  1. Stuck cells force their frozen values (SAW cells are counted).
//  2. Only cells whose state differs from the stored value are
//     programmed; each is charged transition energy and one wear cycle.
//  3. Cells exhausted by this write become stuck at their just-written
//     state (the write itself succeeds; the cell is immutable after).
func (d *Device) Write(w int, desired uint64) WriteResult {
	old := d.words[w]
	stored := d.faults.Apply(w, desired)
	res := WriteResult{
		Stored:   stored,
		SAWCells: d.faults.SAWCells(w, desired),
		SAWBits:  bits.OnesCount64(desired ^ stored),
		BitFlips: bits.OnesCount64(old ^ stored),
		EnergyPJ: d.cfg.Energy.WordEnergy(d.cfg.Mode, old, stored),
	}
	if d.cfg.Mode == MLC {
		res.CellChanges = bitutil.SymbolCount(old, stored)
	} else {
		res.CellChanges = res.BitFlips
	}

	if d.cfg.Wear != nil && old != stored {
		res.NewlyFailed = d.age(w, old, stored)
	}

	d.words[w] = stored
	d.Totals.Writes++
	d.Totals.EnergyPJ += res.EnergyPJ
	d.Totals.BitFlips += int64(res.BitFlips)
	d.Totals.CellChanges += int64(res.CellChanges)
	d.Totals.SAWCells += int64(res.SAWCells)
	return res
}

// age records wear on every cell of word w that changed from old to
// stored, converting exhausted cells to stuck cells frozen at their new
// state. Wear is energy-weighted: programming an MLC cell into an
// intermediate state (or a SLC RESET) charges WearHigh units, other
// programs WearLow — the coupling that lets energy-aware encodings
// extend lifetime. Returns the number of cells newly failed.
func (d *Device) age(w int, old, stored uint64) int {
	cellsPerWord := d.cfg.Mode.CellsPerWord()
	base := w * cellsPerWord
	failed := 0
	if d.cfg.Mode == MLC {
		diff := bitutil.CollapseBitMaskToSymbols(old ^ stored)
		for diff != 0 {
			k := bits.TrailingZeros64(diff)
			diff &= diff - 1
			newSym := bitutil.Symbol(stored, k)
			units := uint32(WearLow)
			if IsIntermediate(newSym) {
				units = WearHigh
			}
			if d.cfg.Wear.RecordWeighted(base+k, units) {
				d.faults.StickCellAt(w, k, newSym)
				failed++
			}
		}
		return failed
	}
	diff := old ^ stored
	for diff != 0 {
		k := bits.TrailingZeros64(diff)
		diff &= diff - 1
		newBit := uint8(stored>>uint(k)) & 1
		units := uint32(WearLow)
		if newBit == 0 { // RESET: melt pulse
			units = WearHigh
		}
		if d.cfg.Wear.RecordWeighted(base+k, units) {
			d.faults.StickCellAt(w, k, newBit)
			failed++
		}
	}
	return failed
}

// String summarizes the device.
func (d *Device) String() string {
	return fmt.Sprintf("Device{%s, rows=%d x %d words, stuck=%d}",
		d.cfg.Mode, d.cfg.Rows, d.cfg.WordsPerRow, d.faults.NumStuckCells())
}
