// Package pcm models phase-change memory at the cell level: Gray-coded
// multi-level cells (MLC) and single-level cells (SLC), the asymmetric
// write-energy behaviour of Table I of the paper, stuck-at faults with
// spatially-correlated fault maps, per-cell endurance (wear) and a device
// abstraction that applies all of the above on every write.
//
// The paper's prototype references ([2] Bedeschi et al., [41] Wang et
// al.) motivate the key physical facts encoded here:
//
//   - MLC resistance levels are Gray-coded in resistance order
//     00 → 01 → 11 → 10 (Table I row/column order), so adjacent levels
//     differ in one bit.
//   - Programming a cell into one of the two intermediate states (01, 11
//     — exactly the states whose RIGHT digit is 1) requires a full
//     SET+RESET preamble plus program-and-verify, costing roughly an
//     order of magnitude more energy than programming the extreme states.
//   - A cell whose endurance is exhausted becomes stuck at its present
//     state: immutable but still readable.
package pcm

import "fmt"

// CellMode selects the cell technology being simulated.
type CellMode int

const (
	// MLC is a 4-level (2-bit) multi-level cell. A 64-bit word occupies
	// 32 cells.
	MLC CellMode = iota
	// SLC is a single-level (1-bit) cell. A 64-bit word occupies 64
	// cells.
	SLC
)

// String implements fmt.Stringer.
func (m CellMode) String() string {
	switch m {
	case MLC:
		return "MLC"
	case SLC:
		return "SLC"
	default:
		return fmt.Sprintf("CellMode(%d)", int(m))
	}
}

// CellsPerWord returns how many physical cells a 64-bit word occupies.
func (m CellMode) CellsPerWord() int {
	if m == MLC {
		return 32
	}
	return 64
}

// BitsPerCell returns the number of logical bits stored per cell.
func (m CellMode) BitsPerCell() int {
	if m == MLC {
		return 2
	}
	return 1
}

// GrayLevels lists the MLC symbols in resistance order (lowest to
// highest), matching Table I of the paper. Adjacent entries differ in a
// single bit.
var GrayLevels = [4]uint8{0b00, 0b01, 0b11, 0b10}

// LevelOf returns the resistance-level index (0-3) of an MLC symbol.
func LevelOf(sym uint8) int {
	switch sym & 3 {
	case 0b00:
		return 0
	case 0b01:
		return 1
	case 0b11:
		return 2
	default: // 0b10
		return 3
	}
}

// IsIntermediate reports whether an MLC symbol is one of the two
// intermediate resistance states (01 or 11) — exactly the symbols whose
// right digit is 1, which Table I marks as high-energy write targets.
func IsIntermediate(sym uint8) bool { return sym&1 == 1 }
