package pcm

import (
	"fmt"

	"repro/internal/prng"
)

// Wear tracks per-cell endurance. Each cell is assigned a lifetime (a
// number of state-changing writes it can tolerate) drawn from a normal
// distribution; once a cell's count of state changes exceeds its
// lifetime, the cell becomes stuck at its present state.
//
// The paper assigns lifetimes from a normal distribution about a mean of
// 1e8 writes with a coefficient of variation of 0.2 (Section VI-A,
// following Zhang et al. [45]). Simulating 1e8 writes per cell is not
// feasible in a unit-test-speed reproduction, so lifetime experiments use
// a scaled MeanWrites (see DESIGN.md substitution #4); the techniques are
// compared by ratios, which scaling preserves.
type Wear struct {
	limits []uint32 // per-cell endurance in state changes
	counts []uint32 // per-cell state changes so far
	failed int      // cells that have exceeded their lifetime
}

// WearParams configures endurance assignment.
type WearParams struct {
	// MeanWrites is the mean cell lifetime in state-changing writes.
	MeanWrites float64
	// CoV is the coefficient of variation of the lifetime distribution
	// (the paper uses 0.2).
	CoV float64
	// RowCoV optionally adds a per-row lifetime factor on top of the
	// per-cell variation, modeling the spatial correlation of weak
	// cells; 0 disables it (the paper's base configuration).
	RowCoV float64
	// CellsPerRow is required when RowCoV > 0.
	CellsPerRow int
}

// NewWear assigns lifetimes for numCells cells.
func NewWear(numCells int, p WearParams, rng *prng.Rand) *Wear {
	w := &Wear{
		limits: make([]uint32, numCells),
		counts: make([]uint32, numCells),
	}
	rowFactor := 1.0
	for i := 0; i < numCells; i++ {
		if p.RowCoV > 0 && p.CellsPerRow > 0 && i%p.CellsPerRow == 0 {
			rowFactor = rng.Normal(1, p.RowCoV)
			if rowFactor < 0.05 {
				rowFactor = 0.05
			}
		}
		l := rng.Normal(p.MeanWrites*rowFactor, p.CoV*p.MeanWrites*rowFactor)
		if l < 1 {
			l = 1
		}
		w.limits[i] = uint32(l)
	}
	return w
}

// NumCells returns the number of tracked cells.
func (w *Wear) NumCells() int { return len(w.limits) }

// FailedCells returns how many cells have exceeded their lifetime.
func (w *Wear) FailedCells() int { return w.failed }

// WearHigh and WearLow are the wear units charged per state change for
// high-energy (intermediate-state SET+RESET+verify) and low-energy
// programs respectively. Section II-A of the paper: temperature extremes
// are the primary cause of cell wear, so reducing write energy "simul-
// taneously improves energy efficiency and prolongs cell lifetime"; the
// 10:1 ratio mirrors the energy model's asymmetry. Lifetime means are
// therefore expressed in these weighted units.
const (
	WearHigh = 10
	WearLow  = 1
)

// Record registers one low-energy state change on cell i; see
// RecordWeighted.
func (w *Wear) Record(i int) bool { return w.RecordWeighted(i, WearLow) }

// RecordWeighted charges `units` wear on cell i and reports whether this
// write exhausted the cell (crossed its limit). Subsequent calls for an
// already-failed cell return false.
func (w *Wear) RecordWeighted(i int, units uint32) bool {
	before := w.counts[i]
	w.counts[i] += units
	if before <= w.limits[i] && w.counts[i] > w.limits[i] {
		w.failed++
		return true
	}
	return false
}

// Exhausted reports whether cell i has exceeded its lifetime.
func (w *Wear) Exhausted(i int) bool { return w.counts[i] > w.limits[i] }

// Remaining returns how many state changes cell i can still take.
func (w *Wear) Remaining(i int) uint32 {
	if w.counts[i] >= w.limits[i] {
		return 0
	}
	return w.limits[i] - w.counts[i]
}

// Count returns the state changes recorded on cell i.
func (w *Wear) Count(i int) uint32 { return w.counts[i] }

// Limit returns the assigned lifetime of cell i.
func (w *Wear) Limit(i int) uint32 { return w.limits[i] }

// String summarizes wear state.
func (w *Wear) String() string {
	return fmt.Sprintf("Wear{cells=%d, failed=%d}", len(w.limits), w.failed)
}
