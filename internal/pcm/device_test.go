package pcm

import (
	"testing"

	"repro/internal/prng"
)

func newTestDevice(mode CellMode) *Device {
	return NewDevice(Config{Mode: mode, Rows: 4, WordsPerRow: 8})
}

func TestDeviceGeometry(t *testing.T) {
	d := newTestDevice(MLC)
	if d.NumWords() != 32 || d.NumRows() != 4 || d.WordsPerRow() != 8 {
		t.Error("geometry wrong")
	}
	if d.WordIndex(1, 3) != 11 {
		t.Errorf("WordIndex = %d", d.WordIndex(1, 3))
	}
}

func TestDevicePanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: MLC, Rows: 0, WordsPerRow: 8},
		{Mode: MLC, Rows: 8, WordsPerRow: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewDevice(cfg)
		}()
	}
}

func TestDevicePanicsOnMismatchedFaultMap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDevice(Config{Mode: MLC, Rows: 2, WordsPerRow: 8,
		Faults: NewFaultMap(MLC, 3)})
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDevice(MLC)
	res := d.Write(5, 0xDEADBEEFCAFEF00D)
	if res.Stored != 0xDEADBEEFCAFEF00D {
		t.Errorf("stored = %#x", res.Stored)
	}
	if d.Read(5) != 0xDEADBEEFCAFEF00D {
		t.Error("read-back mismatch")
	}
}

func TestWriteEnergyAndFlips(t *testing.T) {
	d := newTestDevice(MLC)
	// Writing 0 over 0: free.
	res := d.Write(0, 0)
	if res.EnergyPJ != 0 || res.BitFlips != 0 || res.CellChanges != 0 {
		t.Errorf("idempotent write not free: %+v", res)
	}
	// One symbol to 01: one high program, one bit flip, one cell change.
	res = d.Write(0, 1)
	if res.EnergyPJ != DefaultEnergy.MLCHighPJ {
		t.Errorf("energy = %v", res.EnergyPJ)
	}
	if res.BitFlips != 1 || res.CellChanges != 1 {
		t.Errorf("flips=%d cells=%d", res.BitFlips, res.CellChanges)
	}
}

func TestWriteWithStuckCell(t *testing.T) {
	fm := NewFaultMap(MLC, 32)
	fm.StickCellAt(3, 0, 0b10)
	d := NewDevice(Config{Mode: MLC, Rows: 4, WordsPerRow: 8, Faults: fm})
	res := d.Write(3, 0b01) // desired symbol 01, stuck at 10
	if res.SAWCells != 1 {
		t.Errorf("SAW = %d", res.SAWCells)
	}
	if res.Stored != 0b10 {
		t.Errorf("stored = %#b", res.Stored)
	}
	if d.Read(3) != 0b10 {
		t.Error("stuck value not retained")
	}
	// Writing the stuck value back: no SAW.
	res = d.Write(3, 0b10)
	if res.SAWCells != 0 {
		t.Errorf("matching write SAW = %d", res.SAWCells)
	}
}

func TestEnergyChargedOnStoredNotDesired(t *testing.T) {
	// A stuck cell never changes state, so no energy is charged for it.
	fm := NewFaultMap(MLC, 32)
	fm.StickCellAt(0, 0, 0b00)
	d := NewDevice(Config{Mode: MLC, Rows: 4, WordsPerRow: 8, Faults: fm})
	res := d.Write(0, 0b01)
	if res.EnergyPJ != 0 {
		t.Errorf("energy for stuck cell write = %v, want 0", res.EnergyPJ)
	}
}

func TestWearFailsCell(t *testing.T) {
	const rows, wpr = 1, 1
	cells := rows * wpr * MLC.CellsPerWord()
	wear := NewWear(cells, WearParams{MeanWrites: 3, CoV: 0}, prng.New(1))
	d := NewDevice(Config{Mode: MLC, Rows: rows, WordsPerRow: wpr, Wear: wear})

	// Toggle symbol 0 between 10 and 00: both extreme states, so each
	// write charges one WearLow unit.
	v := uint64(0)
	failedAt := -1
	for i := 1; i <= 10; i++ {
		v ^= 2
		res := d.Write(0, v)
		if res.NewlyFailed > 0 {
			failedAt = i
			break
		}
	}
	if failedAt != 4 {
		// Lifetime 3 means the 4th low-wear state change exhausts the
		// cell.
		t.Errorf("cell failed at write %d, want 4", failedAt)
	}
	// After failure the cell must be stuck at its just-written state.
	mask, vals := d.Stuck(0)
	if mask != 3 {
		t.Errorf("stuck mask = %#x", mask)
	}
	stuckSym := vals & 3
	if stuckSym != d.Read(0)&3 {
		t.Error("stuck value should match present state")
	}
	// Further writes cannot change it.
	d.Write(0, ^stuckSym&3)
	if d.Read(0)&3 != stuckSym {
		t.Error("failed cell changed state")
	}
}

func TestWearOnlyOnStateChanges(t *testing.T) {
	cells := MLC.CellsPerWord()
	wear := NewWear(cells, WearParams{MeanWrites: 5, CoV: 0}, prng.New(1))
	d := NewDevice(Config{Mode: MLC, Rows: 1, WordsPerRow: 1, Wear: wear})
	for i := 0; i < 100; i++ {
		d.Write(0, 0) // never changes state
	}
	if wear.Count(0) != 0 {
		t.Errorf("idempotent writes aged the cell: %d", wear.Count(0))
	}
}

func TestInitRandomRespectsStuck(t *testing.T) {
	fm := NewFaultMap(MLC, 32)
	fm.StickCellAt(0, 0, 0b11)
	d := NewDevice(Config{Mode: MLC, Rows: 4, WordsPerRow: 8, Faults: fm})
	d.InitRandom(prng.New(5))
	if d.Read(0)&3 != 3 {
		t.Error("InitRandom overwrote a stuck cell")
	}
}

func TestTotalsAccumulate(t *testing.T) {
	d := newTestDevice(SLC)
	d.Write(0, 0xF)
	d.Write(0, 0x0)
	if d.Totals.Writes != 2 {
		t.Errorf("writes = %d", d.Totals.Writes)
	}
	if d.Totals.BitFlips != 8 {
		t.Errorf("flips = %d", d.Totals.BitFlips)
	}
	wantE := 4*DefaultEnergy.SLCSetPJ + 4*DefaultEnergy.SLCResetPJ
	if d.Totals.EnergyPJ != wantE {
		t.Errorf("energy = %v, want %v", d.Totals.EnergyPJ, wantE)
	}
}

func TestReadRow(t *testing.T) {
	d := newTestDevice(MLC)
	for c := 0; c < 8; c++ {
		d.SetRaw(d.WordIndex(2, c), uint64(c)+100)
	}
	row := d.ReadRow(2, nil)
	for c := 0; c < 8; c++ {
		if row[c] != uint64(c)+100 {
			t.Errorf("row[%d] = %d", c, row[c])
		}
	}
}

func TestSLCWearPath(t *testing.T) {
	cells := SLC.CellsPerWord()
	wear := NewWear(cells, WearParams{MeanWrites: 2, CoV: 0}, prng.New(1))
	d := NewDevice(Config{Mode: SLC, Rows: 1, WordsPerRow: 1, Wear: wear})
	v := uint64(0)
	var newlyFailed int
	for i := 0; i < 6; i++ {
		v ^= 1
		newlyFailed += d.Write(0, v).NewlyFailed
	}
	if newlyFailed != 1 {
		t.Errorf("newlyFailed = %d, want 1", newlyFailed)
	}
	mask, _ := d.Stuck(0)
	if mask != 1 {
		t.Errorf("stuck mask = %#x", mask)
	}
}

func TestDeviceString(t *testing.T) {
	if newTestDevice(MLC).String() == "" {
		t.Error("String empty")
	}
}

func TestWearAccessors(t *testing.T) {
	w := NewWear(10, WearParams{MeanWrites: 100, CoV: 0}, prng.New(1))
	if w.NumCells() != 10 || w.FailedCells() != 0 {
		t.Error("fresh wear state wrong")
	}
	if w.Limit(0) != 100 {
		t.Errorf("limit = %d", w.Limit(0))
	}
	w.Record(0)
	if w.Count(0) != 1 || w.Remaining(0) != 99 {
		t.Error("count/remaining wrong")
	}
	if w.Exhausted(0) {
		t.Error("not yet exhausted")
	}
	if w.String() == "" {
		t.Error("String empty")
	}
}

func TestWearVariation(t *testing.T) {
	w := NewWear(10000, WearParams{MeanWrites: 1000, CoV: 0.2}, prng.New(9))
	var sum, sumsq float64
	for i := 0; i < w.NumCells(); i++ {
		v := float64(w.Limit(i))
		sum += v
		sumsq += v * v
	}
	n := float64(w.NumCells())
	mean := sum / n
	sd := sumsq/n - mean*mean
	if mean < 950 || mean > 1050 {
		t.Errorf("mean lifetime %v, want ~1000", mean)
	}
	cov := 0.0
	if mean > 0 {
		cov = sqrt(sd) / mean
	}
	if cov < 0.17 || cov > 0.23 {
		t.Errorf("CoV %v, want ~0.2", cov)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestWearRowCorrelation(t *testing.T) {
	// With RowCoV, lifetimes within a row share a factor: row means
	// should vary more than under the independent model.
	p := WearParams{MeanWrites: 1000, CoV: 0.05, RowCoV: 0.3, CellsPerRow: 256}
	w := NewWear(256*64, p, prng.New(4))
	var rowMeans []float64
	for r := 0; r < 64; r++ {
		var s float64
		for c := 0; c < 256; c++ {
			s += float64(w.Limit(r*256 + c))
		}
		rowMeans = append(rowMeans, s/256)
	}
	// Row means should deviate noticeably from the global mean.
	spread := 0.0
	for _, m := range rowMeans {
		d := m - 1000
		spread += d * d
	}
	spread = sqrt(spread / float64(len(rowMeans)))
	if spread < 100 {
		t.Errorf("row mean spread %v too small for RowCoV=0.3", spread)
	}
}
