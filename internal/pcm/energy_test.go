package pcm

import (
	"testing"
	"testing/quick"

	"repro/internal/bitutil"
)

// TestTableISymbolEnergies checks the full 4x4 transition matrix of
// Table I: diagonal free, columns N(01)/N(11) high, N(00)/N(10) low.
func TestTableISymbolEnergies(t *testing.T) {
	e := DefaultEnergy
	type tr struct {
		old, new uint8
		want     float64
	}
	var cases []tr
	for _, o := range GrayLevels {
		for _, n := range GrayLevels {
			var want float64
			switch {
			case o == n:
				want = 0
			case n&1 == 1: // new right digit 1: intermediate state
				want = e.MLCHighPJ
			default:
				want = e.MLCLowPJ
			}
			cases = append(cases, tr{o, n, want})
		}
	}
	if len(cases) != 16 {
		t.Fatalf("expected 16 transitions, got %d", len(cases))
	}
	for _, c := range cases {
		if got := e.MLCSymbolEnergy(c.old, c.new); got != c.want {
			t.Errorf("E(%02b->%02b) = %v, want %v", c.old, c.new, got, c.want)
		}
	}
}

// TestTableIAsymmetry verifies the order-of-magnitude MLC asymmetry the
// paper's introduction describes.
func TestTableIAsymmetry(t *testing.T) {
	if DefaultEnergy.MLCHighPJ < 5*DefaultEnergy.MLCLowPJ {
		t.Errorf("high/low ratio %v too small; paper says ~10x",
			DefaultEnergy.MLCHighPJ/DefaultEnergy.MLCLowPJ)
	}
	if DefaultEnergy.SLCResetPJ <= DefaultEnergy.SLCSetPJ {
		t.Error("SLC RESET should cost more than SET")
	}
}

// TestMLCWordEnergyMatchesPerSymbol cross-checks the vectorized word
// energy against a per-symbol loop.
func TestMLCWordEnergyMatchesPerSymbol(t *testing.T) {
	e := DefaultEnergy
	f := func(old, new uint64) bool {
		var want float64
		for k := 0; k < 32; k++ {
			want += e.MLCSymbolEnergy(bitutil.Symbol(old, k), bitutil.Symbol(new, k))
		}
		return e.MLCWordEnergy(old, new) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMLCWordEnergyKnown(t *testing.T) {
	e := DefaultEnergy
	// Same word: zero energy.
	if got := e.MLCWordEnergy(0xDEADBEEF, 0xDEADBEEF); got != 0 {
		t.Errorf("no-change energy = %v", got)
	}
	// One symbol 00 -> 01 (high).
	if got := e.MLCWordEnergy(0, 1); got != e.MLCHighPJ {
		t.Errorf("00->01 = %v, want %v", got, e.MLCHighPJ)
	}
	// One symbol 00 -> 10 (low).
	if got := e.MLCWordEnergy(0, 2); got != e.MLCLowPJ {
		t.Errorf("00->10 = %v, want %v", got, e.MLCLowPJ)
	}
	// All 32 symbols 00 -> 11 (high).
	all11 := ^uint64(0)
	if got := e.MLCWordEnergy(0, all11); got != 32*e.MLCHighPJ {
		t.Errorf("all 00->11 = %v, want %v", got, 32*e.MLCHighPJ)
	}
}

func TestSLCWordEnergy(t *testing.T) {
	e := DefaultEnergy
	if got := e.SLCWordEnergy(0, 0xF); got != 4*e.SLCSetPJ {
		t.Errorf("4 sets = %v", got)
	}
	if got := e.SLCWordEnergy(0xF, 0); got != 4*e.SLCResetPJ {
		t.Errorf("4 resets = %v", got)
	}
	if got := e.SLCWordEnergy(0xFF, 0xFF); got != 0 {
		t.Errorf("no change = %v", got)
	}
	if got := e.SLCWordEnergy(0b01, 0b10); got != e.SLCSetPJ+e.SLCResetPJ {
		t.Errorf("swap = %v", got)
	}
}

func TestWordEnergyDispatch(t *testing.T) {
	e := DefaultEnergy
	if e.WordEnergy(MLC, 0, 1) != e.MLCWordEnergy(0, 1) {
		t.Error("MLC dispatch wrong")
	}
	if e.WordEnergy(SLC, 0, 1) != e.SLCWordEnergy(0, 1) {
		t.Error("SLC dispatch wrong")
	}
}

func TestAuxBitsEnergy(t *testing.T) {
	e := DefaultEnergy
	// Writing 0b11 over 0b00 in 2 aux bits on MLC: two high programs.
	if got := e.AuxBitsEnergy(MLC, 0, 3, 2); got != 2*e.MLCHighPJ {
		t.Errorf("aux 0->11 = %v", got)
	}
	// Clearing them back costs two low programs.
	if got := e.AuxBitsEnergy(MLC, 3, 0, 2); got != 2*e.MLCLowPJ {
		t.Errorf("aux 11->0 = %v", got)
	}
	// Bits above nbits ignored.
	if got := e.AuxBitsEnergy(MLC, 0, 0xFF, 2); got != 2*e.MLCHighPJ {
		t.Errorf("aux masked = %v", got)
	}
	// SLC path.
	if got := e.AuxBitsEnergy(SLC, 0, 1, 8); got != e.SLCSetPJ {
		t.Errorf("slc aux = %v", got)
	}
	if got := e.AuxBitsEnergy(SLC, 1, 0, 8); got != e.SLCResetPJ {
		t.Errorf("slc aux reset = %v", got)
	}
}

func TestCellModeHelpers(t *testing.T) {
	if MLC.CellsPerWord() != 32 || SLC.CellsPerWord() != 64 {
		t.Error("CellsPerWord wrong")
	}
	if MLC.BitsPerCell() != 2 || SLC.BitsPerCell() != 1 {
		t.Error("BitsPerCell wrong")
	}
	if MLC.String() != "MLC" || SLC.String() != "SLC" {
		t.Error("String wrong")
	}
	if CellMode(9).String() == "" {
		t.Error("unknown mode String empty")
	}
}

func TestGrayLevelsAdjacency(t *testing.T) {
	// Adjacent resistance levels must differ in exactly one bit (Gray).
	for i := 0; i < len(GrayLevels)-1; i++ {
		d := GrayLevels[i] ^ GrayLevels[i+1]
		if d&(d-1) != 0 || d == 0 {
			t.Errorf("levels %d,%d not Gray adjacent", i, i+1)
		}
	}
	for i, s := range GrayLevels {
		if LevelOf(s) != i {
			t.Errorf("LevelOf(%02b) = %d, want %d", s, LevelOf(s), i)
		}
	}
}

func TestIsIntermediate(t *testing.T) {
	if IsIntermediate(0b00) || IsIntermediate(0b10) {
		t.Error("extreme states flagged intermediate")
	}
	if !IsIntermediate(0b01) || !IsIntermediate(0b11) {
		t.Error("intermediate states not flagged")
	}
}

// TestMLCWordEnergyVariantsAgree pins the three MLC energy entry points
// against each other: the expanded-mask form on pre-expanded masks and
// the unmasked form on full words must equal the general masked form
// bit-for-bit (identical integer counts through identical float
// expressions) — the contract the coset encode fast path relies on.
func TestMLCWordEnergyVariantsAgree(t *testing.T) {
	e := DefaultEnergy
	if err := quick.Check(func(old, new, symMask uint64) bool {
		exp := bitutil.ExpandSymbolMask(symMask & bitutil.Mask(32))
		if e.MLCWordEnergyExpandedMask(old, new, exp) != e.MLCWordEnergyMasked(old, new, exp) {
			return false
		}
		return e.MLCWordEnergyAll(old, new) == e.MLCWordEnergyMasked(old, new, ^uint64(0))
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestMLCWordEnergyAllSubBlocksSum checks the decomposition the sliced
// evaluator uses: summing the unmasked form over 2m-bit sub-blocks
// equals the masked full-word evaluation partition by partition.
func TestMLCWordEnergyAllSubBlocksSum(t *testing.T) {
	e := DefaultEnergy
	if err := quick.Check(func(old, new uint64) bool {
		const w = 16 // 8 symbols per slice
		for j := 0; j < 64/w; j++ {
			oldSub := bitutil.SubBlock(old, j, w)
			newSub := bitutil.SubBlock(new, j, w)
			mask := bitutil.Mask(w) << uint(j*w)
			if e.MLCWordEnergyAll(oldSub, newSub) != e.MLCWordEnergyMasked(old, new, mask) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
