package pcm

import (
	"math/bits"

	"repro/internal/bitutil"
)

// EnergyModel holds per-transition write energies in picojoules.
//
// Table I of the paper classifies MLC symbol transitions qualitatively:
// writing any NEW symbol whose right digit is 1 (the intermediate
// resistance states 01 and 11) is "high" energy, every other actual
// transition is "low", and the diagonal (no state change) costs nothing
// because differential write skips unchanged cells. The paper's
// introduction states the asymmetry "can vary by an order of magnitude"
// for MLC, so the defaults below use a 10x ratio. Absolute values are
// calibrated to the scale of the prototype MLC PCM energies reported by
// Wang et al. [41] (tens of pJ per intermediate-state program); only
// ratios matter for every comparison in the paper.
type EnergyModel struct {
	// MLCHighPJ is the energy to program an MLC cell into an
	// intermediate state (new right digit = 1): full SET+RESET preamble
	// plus program-and-verify.
	MLCHighPJ float64
	// MLCLowPJ is the energy to program an MLC cell into an extreme
	// state (new right digit = 0) when the symbol actually changes.
	MLCLowPJ float64
	// SLCSetPJ is the energy of a SLC SET (write '1': long, low-current
	// crystallizing pulse).
	SLCSetPJ float64
	// SLCResetPJ is the energy of a SLC RESET (write '0': short,
	// high-current melt pulse). RESET is the costlier, wear-dominant
	// operation.
	SLCResetPJ float64
}

// DefaultEnergy is the model used by every experiment unless a driver
// overrides it.
var DefaultEnergy = EnergyModel{
	MLCHighPJ:  40.0,
	MLCLowPJ:   4.0,
	SLCSetPJ:   13.5,
	SLCResetPJ: 19.2,
}

// evenMask/oddMask select the right (even bit positions) and left (odd
// bit positions) digits of the 32 MLC symbols in a 64-bit word.
const (
	evenMask = 0x5555555555555555
	oddMask  = 0xAAAAAAAAAAAAAAAA
)

// MLCSymbolEnergy returns the energy (pJ) of writing symbol new over
// symbol old in a single MLC cell, per Table I.
func (e EnergyModel) MLCSymbolEnergy(old, new uint8) float64 {
	old &= 3
	new &= 3
	if old == new {
		return 0
	}
	if new&1 == 1 {
		return e.MLCHighPJ
	}
	return e.MLCLowPJ
}

// MLCWordEnergy returns the total energy (pJ) of writing the 64-bit word
// new over old across the word's 32 MLC cells, using vectorized
// symbol-difference masks.
func (e EnergyModel) MLCWordEnergy(old, new uint64) float64 {
	return e.MLCWordEnergyMasked(old, new, ^uint64(0))
}

// MLCWordEnergyMasked is MLCWordEnergy restricted to the cells whose bits
// are selected by bitMask (a per-bit mask; a cell is included if either
// of its bits is in the mask). Used by the coset evaluators to cost one
// partition of a word at a time.
func (e EnergyModel) MLCWordEnergyMasked(old, new, bitMask uint64) float64 {
	diff := bitutil.SymbolDiffMask(old, new) // both bits set per changed cell
	diff &= bitutil.ExpandSymbolMask(bitutil.CollapseBitMaskToSymbols(bitMask))
	// Right digits of the new word, expanded back onto symbol pairs so
	// we can split the changed cells into high/low classes.
	newRight := bitutil.ExpandSymbolMask(bitutil.CompressEven(new))
	high := bits.OnesCount64(diff&newRight) / 2
	changed := bits.OnesCount64(diff) / 2
	low := changed - high
	return float64(high)*e.MLCHighPJ + float64(low)*e.MLCLowPJ
}

// MLCWordEnergyExpandedMask is MLCWordEnergyMasked for callers that
// already hold a symbol-expanded bit mask (both bits of every selected
// cell set, none half-set), skipping the collapse/expand round trip the
// masked variant performs to normalize arbitrary masks. The coset
// evaluator uses it on its hoisted full-plane mask.
func (e EnergyModel) MLCWordEnergyExpandedMask(old, new, expMask uint64) float64 {
	diff := bitutil.SymbolDiffMask(old, new) & expMask
	newRight := bitutil.ExpandSymbolMask(bitutil.CompressEven(new))
	high := bits.OnesCount64(diff&newRight) / 2
	changed := bits.OnesCount64(diff) / 2
	low := changed - high
	return float64(high)*e.MLCHighPJ + float64(low)*e.MLCLowPJ
}

// MLCWordCounts returns the exact integer transition counts of writing
// new over old across every MLC cell the operands carry: high is the
// number of changed symbols programmed into an intermediate state (new
// right digit 1), low the remaining changed symbols. It is the counting
// core of MLCWordEnergyAll, exposed so the coset nibble-count tables can
// accumulate the same integers per 4-symbol group and defer the
// multiply-accumulate to MLCEnergyFromCounts — keeping table-driven and
// direct pricing bit-identical by construction.
func MLCWordCounts(old, new uint64) (high, low int) {
	d := old ^ new
	// Bit 2k of changed is set iff symbol k differs; bit 2k of new is the
	// new right digit of symbol k, so their AND counts high-energy cells.
	changed := (d & evenMask) | ((d & oddMask) >> 1)
	high = bits.OnesCount64(changed & new & evenMask)
	low = bits.OnesCount64(changed) - high
	return high, low
}

// SLCWordCounts returns the exact integer SET (0→1) and RESET (1→0)
// counts of writing new over old treating every bit as one SLC cell —
// the counting core of SLCWordEnergy, split out for the same
// table-accumulation reason as MLCWordCounts.
func SLCWordCounts(old, new uint64) (sets, resets int) {
	d := old ^ new
	sets = bits.OnesCount64(d & new)
	resets = bits.OnesCount64(d &^ new)
	return sets, resets
}

// MLCEnergyFromCounts is the canonical high/low multiply-accumulate. All
// MLC energy paths (masked, unmasked, nibble-table) must fold their
// counts through this one expression: float64 addition is not
// associative, so sharing the expression is what makes exact integer
// counts imply bit-identical energies.
func (e EnergyModel) MLCEnergyFromCounts(high, low int) float64 {
	return float64(high)*e.MLCHighPJ + float64(low)*e.MLCLowPJ
}

// SLCEnergyFromCounts is the SLC counterpart of MLCEnergyFromCounts.
func (e EnergyModel) SLCEnergyFromCounts(sets, resets int) float64 {
	return float64(sets)*e.SLCSetPJ + float64(resets)*e.SLCResetPJ
}

// MLCWordEnergyAll prices every cell of the old→new transition with no
// mask at all. It is the cheapest form, used by the partition-sliced
// encode fast path on pre-sliced sub-blocks (both operands carry only
// the symbols under evaluation): one XOR, two mask folds and two
// popcounts replace the full masked pipeline. The high/low split and the
// final multiply-add are written exactly as in MLCWordEnergyMasked so
// the two produce bit-identical float64 results from identical counts.
func (e EnergyModel) MLCWordEnergyAll(old, new uint64) float64 {
	high, low := MLCWordCounts(old, new)
	return e.MLCEnergyFromCounts(high, low)
}

// SLCWordEnergy returns the total energy (pJ) of writing new over old
// treating each of the 64 bits as one SLC cell.
func (e EnergyModel) SLCWordEnergy(old, new uint64) float64 {
	return e.SLCWordEnergyMasked(old, new, ^uint64(0))
}

// SLCWordEnergyMasked is SLCWordEnergy restricted to bits in bitMask.
func (e EnergyModel) SLCWordEnergyMasked(old, new, bitMask uint64) float64 {
	diff := (old ^ new) & bitMask
	sets := bits.OnesCount64(diff & new)
	resets := bits.OnesCount64(diff &^ new)
	return float64(sets)*e.SLCSetPJ + float64(resets)*e.SLCResetPJ
}

// WordEnergy dispatches on mode.
func (e EnergyModel) WordEnergy(mode CellMode, old, new uint64) float64 {
	if mode == MLC {
		return e.MLCWordEnergy(old, new)
	}
	return e.SLCWordEnergy(old, new)
}

// AuxBitsEnergy models the cost of writing auxiliary (coset index) bits.
// Aux bits live in the spare ECC capacity of the row, in cells of the
// same technology. For MLC we model each aux bit as the right digit of a
// cell whose left digit is 0, so writing a '1' aux bit that changes is a
// high-energy intermediate-state program, matching how the paper charges
// for auxiliary information. old and new carry nbits significant bits.
func (e EnergyModel) AuxBitsEnergy(mode CellMode, old, new uint64, nbits int) float64 {
	m := bitutil.Mask(nbits)
	diff := (old ^ new) & m
	if mode == MLC {
		high := bits.OnesCount64(diff & new)
		low := bits.OnesCount64(diff &^ new)
		return float64(high)*e.MLCHighPJ + float64(low)*e.MLCLowPJ
	}
	sets := bits.OnesCount64(diff & new)
	resets := bits.OnesCount64(diff &^ new)
	return float64(sets)*e.SLCSetPJ + float64(resets)*e.SLCResetPJ
}
