package experiments

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// driver, plus the DESIGN.md ablations.
	want := []string{
		"fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "table1", "table2",
		"ablate-kernels", "ablate-m", "ablate-hybrid", "ablate-cost",
		"ablate-wearlevel", "ablate-compress", "ablate-faultrepo", "fig13-sim",
		"ablate-visibility", "slc-energy", "ablate-cafo",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	for _, id := range IDs() {
		if Describe(id) == "" {
			t.Errorf("experiment %q has no description", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Quick, 1); err == nil {
		t.Error("unknown id should error")
	}
	if _, err := RunMany([]string{"fig1", "nope"}, Opts{Mode: Quick, Seed: 1}, 2); err == nil {
		t.Error("RunMany with an unknown id should error before running anything")
	}
}

// TestRunManyMatchesRun: the parallel runner must return exactly what
// sequential Run calls return, in ids order.
func TestRunManyMatchesRun(t *testing.T) {
	ids := []string{"fig1", "table1", "fig3", "fig6", "table2"}
	opts := Opts{Mode: Quick, Seed: 1}
	got, err := RunMany(ids, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want, err := Run(id, Quick, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("%s: parallel result differs from sequential", id)
		}
	}
}

func TestShardReplayDriver(t *testing.T) {
	// Deterministic at any worker count, and shard write counts must
	// account for every replayed record.
	a, err := RunOpts("shard-replay", Opts{Mode: Quick, Seed: 1, Shards: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOpts("shard-replay", Opts{Mode: Quick, Seed: 1, Shards: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("shard-replay result depends on worker count")
	}
	for _, row := range a.Rows {
		if cell(row[4]) < cell(row[5]) {
			t.Errorf("%s: max shard writes %v below min %v", row[0], row[4], row[5])
		}
		if cell(row[1]) <= 0 {
			t.Errorf("%s: no writes replayed", row[0])
		}
	}
}

// TestAsyncSweepDriver: the async-sweep table must carry identical
// statistics columns across submission modes within each
// (pattern, shards) group — the driver itself panics on divergence, so
// here we check shape plus the sync/async row structure.
func TestAsyncSweepDriver(t *testing.T) {
	r := runQ(t, "async-sweep")
	if len(r.Rows) != 2*2*4 { // patterns x shards x (sync + 3 depths)
		t.Fatalf("want 16 rows, got %d", len(r.Rows))
	}
	for i, row := range r.Rows {
		sync := i%4 == 0
		if sync && (row[2] != "sync" || row[3] != "-") {
			t.Errorf("row %d: want sync/- submission cells, got %v/%v", i, row[2], row[3])
		}
		if !sync && row[2] != "async" {
			t.Errorf("row %d: want async submission, got %v", i, row[2])
		}
		if cell(row[4]) <= 0 || cell(row[5]) <= 0 {
			t.Errorf("row %d: no traffic replayed: %v", i, row)
		}
	}
}

// TestWorkloadSweepInFlightInvariant: driving workload-sweep through
// the pipelined async path must reproduce the synchronous statistics
// bit for bit (only the machine-dependent ops_per_sec column may move).
func TestWorkloadSweepInFlightInvariant(t *testing.T) {
	syncRes, err := RunOpts("workload-sweep", Opts{Mode: Quick, Seed: 1, Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := RunOpts("workload-sweep", Opts{Mode: Quick, Seed: 1, Shards: 2, Workers: 2, InFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(syncRes.Rows) != len(asyncRes.Rows) {
		t.Fatalf("row counts diverge: %d vs %d", len(syncRes.Rows), len(asyncRes.Rows))
	}
	for i := range syncRes.Rows {
		a, b := syncRes.Rows[i], asyncRes.Rows[i]
		for c := 0; c < len(a)-1; c++ { // last column is wall-clock
			if a[c] != b[c] {
				t.Errorf("row %d col %d (%s): sync %v, async %v",
					i, c, syncRes.Header[c], a[c], b[c])
			}
		}
	}
}

// cell parses a numeric table cell (strips % suffix).
func cell(s string) float64 {
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic("unparsable cell: " + s)
	}
	return v
}

func runQ(t *testing.T, id string) *Result {
	t.Helper()
	r, err := Run(id, Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Header) == 0 {
		t.Fatalf("%s: empty result", id)
	}
	for _, row := range r.Rows {
		if len(row) != len(r.Header) {
			t.Fatalf("%s: ragged row %v vs header %v", id, row, r.Header)
		}
	}
	if !strings.Contains(r.Table(), r.Title) {
		t.Fatalf("%s: Table() missing title", id)
	}
	if !strings.Contains(r.CSV(), r.Header[0]) {
		t.Fatalf("%s: CSV() missing header", id)
	}
	return r
}

func TestFig1Driver(t *testing.T) {
	r := runQ(t, "fig1")
	if len(r.Rows) != 4 {
		t.Fatalf("want 4 coset counts, got %d", len(r.Rows))
	}
	// RCC at N=256 beats BCC (paper's main point).
	last := r.Rows[3]
	if cell(last[2]) <= cell(last[1]) {
		t.Errorf("N=256: RCC %v should beat BCC %v", last[2], last[1])
	}
}

func TestFig2Driver(t *testing.T) {
	r := runQ(t, "fig2")
	first := cell(strings.TrimSuffix(r.Rows[0][1], ""))
	last := cell(r.Rows[len(r.Rows)-1][1])
	if last >= first {
		t.Errorf("observed fault rate should fall with cosets: %v -> %v", first, last)
	}
}

func TestFig3Driver(t *testing.T) {
	r := runQ(t, "fig3")
	m := map[string]string{}
	for _, row := range r.Rows {
		m[row[0]] = row[1]
	}
	if m["Xopt"] != "0b000007000010c0d0" && m["Xopt"] == "" {
		t.Error("missing Xopt")
	}
	if m["total ones incl aux"] != "17" {
		t.Errorf("cost %v, want 17", m["total ones incl aux"])
	}
	if m["decoded"] != m["input D"] {
		t.Error("decode mismatch in worked example")
	}
}

func TestTable1Driver(t *testing.T) {
	r := runQ(t, "table1")
	if len(r.Rows) != 4 {
		t.Fatal("Table I must have 4 rows")
	}
	for i, row := range r.Rows {
		if row[i+1] != "-" {
			t.Errorf("diagonal entry %d = %q, want '-'", i, row[i+1])
		}
	}
}

func TestFig6Driver(t *testing.T) {
	r := runQ(t, "fig6")
	if len(r.Rows) != 20 { // 4 coset counts x 5 designs
		t.Fatalf("want 20 rows, got %d", len(r.Rows))
	}
}

func TestFig7Driver(t *testing.T) {
	r := runQ(t, "fig7")
	// Data-only (aux-free) savings reproduce the paper's Fig 7 numbers;
	// all-in savings (including aux writes) land lower (~28-30%), which
	// is consistent with the paper's own per-benchmark Fig 9 average.
	last := r.Rows[len(r.Rows)-1]
	rccAll, rccData := cell(last[2]), cell(last[3])
	genData := cell(last[5])
	stData := cell(last[7])
	if rccData < 38 || rccData > 55 {
		t.Errorf("RCC data-only saving at 256 = %v%%, paper ~46%%", rccData)
	}
	if genData < 35 || stData < 38 {
		t.Errorf("VCC data-only savings at 256 = %v%%/%v%%, paper ~45%%", genData, stData)
	}
	if stData > rccData+2 {
		t.Errorf("VCC-stored saving %v%% should not exceed RCC %v%%", stData, rccData)
	}
	if rccAll < 22 {
		t.Errorf("RCC all-in saving %v%% below the 22-28%% band", rccAll)
	}
	// Savings grow with coset count.
	if first := cell(r.Rows[0][3]); first >= rccData {
		t.Errorf("savings should grow with N: %v%% at 32 vs %v%% at 256", first, rccData)
	}
}

func TestFig8Driver(t *testing.T) {
	r := runQ(t, "fig8")
	prev := 0.0
	for _, row := range r.Rows {
		red := cell(row[3])
		if red < prev-1.5 { // allow small noise, demand overall growth
			t.Errorf("reduction fell: %v after %v", red, prev)
		}
		prev = red
	}
	// At N=32 VCC has only 2r=4 sub-candidates per partition, capping
	// symbol-granular masking near 68% (structural; the paper's 88.5%
	// is recorded as a deviation in EXPERIMENTS.md). At 256 the paper's
	// ~95.6% is reproduced.
	if first := cell(r.Rows[0][3]); first < 60 {
		t.Errorf("reduction at 32 cosets = %v%%, expected >=60%%", first)
	}
	if last := cell(r.Rows[len(r.Rows)-1][3]); last < 90 {
		t.Errorf("reduction at 256 cosets = %v%%, paper ~95.6%%", last)
	}
}

func TestFig9Driver(t *testing.T) {
	r := runQ(t, "fig9")
	for _, row := range r.Rows {
		base := cell(row[1])
		vE, vS := cell(row[2]), cell(row[3])
		if vE >= base {
			t.Errorf("%s: VCC Opt.Energy %v not below unencoded %v", row[0], vE, base)
		}
		// Savings maintained under SAW-first ordering (within a few
		// points, per Fig 9).
		if vS >= base {
			t.Errorf("%s: VCC Opt.SAW %v not below unencoded %v", row[0], vS, base)
		}
	}
}

func TestFig10Driver(t *testing.T) {
	r := runQ(t, "fig10")
	for _, row := range r.Rows {
		if red := cell(row[3]); red < 90 {
			t.Errorf("%s: SAW reduction %v%%, paper >=95%%", row[0], red)
		}
	}
}

func TestFig13Driver(t *testing.T) {
	r := runQ(t, "fig13")
	for _, row := range r.Rows {
		dbi, vcc, rcc := cell(row[1]), cell(row[2]), cell(row[3])
		if !(dbi >= vcc && vcc >= rcc) {
			t.Errorf("%s: IPC ordering violated: %v %v %v", row[0], dbi, vcc, rcc)
		}
		if rcc < 0.92 {
			t.Errorf("%s: RCC IPC %v below Fig 13 axis", row[0], rcc)
		}
	}
}

func TestTable2Driver(t *testing.T) {
	r := runQ(t, "table2")
	if len(r.Rows) < 10 {
		t.Error("Table II should list the full parameter set")
	}
}

func TestAblateKernelsDriver(t *testing.T) {
	r := runQ(t, "ablate-kernels")
	// SAW row: generated must mask fewer SAWs than stored.
	saw := r.Rows[1]
	if cell(saw[2]) <= cell(saw[1]) {
		t.Errorf("generated SAW %v should exceed stored %v", saw[2], saw[1])
	}
	// Energy row: within ~10% of each other.
	e := r.Rows[0]
	if ratio := cell(e[2]) / cell(e[1]); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("energy ratio generated/stored = %v, want near 1", ratio)
	}
}

func TestAblateHybridDriver(t *testing.T) {
	r := runQ(t, "ablate-hybrid")
	adv := cell(r.Rows[2][1])
	if adv <= 0 {
		t.Errorf("hybrid advantage %v%% on biased data, want positive", adv)
	}
}

func TestAblateCostDriver(t *testing.T) {
	r := runQ(t, "ablate-cost")
	if len(r.Rows) != 3 {
		t.Fatal("want 3 rows")
	}
	base := cell(r.Rows[2][1])
	for i := 0; i < 2; i++ {
		if cell(r.Rows[i][1]) >= base {
			t.Errorf("VCC energy row %d not below unencoded", i)
		}
	}
	// SAW-first masks at least as well as energy-first.
	if cell(r.Rows[1][2]) > cell(r.Rows[0][2]) {
		t.Error("SAW-first should not have more SAW cells than energy-first")
	}
}

func TestAblateMDriver(t *testing.T) {
	r := runQ(t, "ablate-m")
	if len(r.Rows) != 3 {
		t.Fatal("want 3 kernel widths")
	}
}

// Lifetime drivers are exercised in Quick mode (seconds).
func TestFig11Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime driver is seconds-long")
	}
	r := runQ(t, "fig11")
	// Header: benchmark + 7 techniques.
	if len(r.Header) != 8 {
		t.Fatalf("want 8 columns, got %d", len(r.Header))
	}
	idx := map[string]int{}
	for i, h := range r.Header {
		idx[h] = i
	}
	for _, row := range r.Rows {
		vcc := cell(row[idx["VCC"]])
		unenc := cell(row[idx["Unencoded"]])
		if vcc <= unenc {
			t.Errorf("%s: VCC %v not above unencoded %v", row[0], vcc, unenc)
		}
	}
}

func TestFig12Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime sweep is tens of seconds")
	}
	r := runQ(t, "fig12")
	for _, row := range r.Rows {
		if row[0] == "VCC" || row[0] == "RCC" {
			if cell(row[4]) <= cell(row[1]) {
				t.Errorf("%s: lifetime should grow from N=32 to N=256: %v -> %v",
					row[0], row[1], row[4])
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("mode strings wrong")
	}
}

func TestAblateCompressDriver(t *testing.T) {
	r := runQ(t, "ablate-compress")
	for _, row := range r.Rows {
		if enc := cell(row[2]); enc > 0.5 {
			t.Errorf("%s: %v%% of encrypted words aux-eligible; ciphertext should be incompressible", row[0], enc)
		}
	}
	// At least one plaintext workload must show substantial inline space.
	best := 0.0
	for _, row := range r.Rows {
		if v := cell(row[1]); v > best {
			best = v
		}
	}
	if best < 50 {
		t.Errorf("best plaintext eligibility %v%%; integer workloads should compress", best)
	}
}

func TestFig13SimDriver(t *testing.T) {
	r := runQ(t, "fig13-sim")
	for _, row := range r.Rows {
		dbi, vcc, rcc := cell(row[1]), cell(row[2]), cell(row[3])
		if !(dbi >= vcc && vcc >= rcc) {
			t.Errorf("%s: event-sim ordering violated: %v %v %v", row[0], dbi, vcc, rcc)
		}
		if rcc < 0.92 {
			t.Errorf("%s: RCC IPC %v below plausible range", row[0], rcc)
		}
	}
}

func TestAblateFaultRepoDriver(t *testing.T) {
	r := runQ(t, "ablate-faultrepo")
	first := cell(r.Rows[0][3])
	last := cell(r.Rows[len(r.Rows)-1][3])
	if last < 99 {
		t.Errorf("final coverage %v%%; repository should converge to the oracle", last)
	}
	if last < first {
		t.Error("coverage should be monotone")
	}
}

func TestAblateWearLevelDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime-based driver is seconds-long")
	}
	r := runQ(t, "ablate-wearlevel")
	for _, row := range r.Rows {
		if cell(row[2]) < cell(row[1])*0.9 {
			t.Errorf("%s: start-gap made lifetime much worse (%v -> %v)",
				row[0], row[1], row[2])
		}
	}
	// The hot-spot-heavy trace must benefit somewhere.
	any := false
	for _, row := range r.Rows {
		if cell(row[3]) > 3 {
			any = true
		}
	}
	if !any {
		t.Error("no technique gained from wear leveling on a skewed trace")
	}
}

func TestAblateVisibilityDriver(t *testing.T) {
	r := runQ(t, "ablate-visibility")
	first := cell(r.Rows[0][2])
	last := cell(r.Rows[len(r.Rows)-1][2])
	if last >= first {
		t.Errorf("discovered-view SAW should fall as the repo learns: %v -> %v", first, last)
	}
	// By the final pass the discovered view should be within ~3x of oracle.
	oracleLast := cell(r.Rows[len(r.Rows)-1][1])
	if last > 3*oracleLast+10 {
		t.Errorf("discovered view did not converge: %v vs oracle %v", last, oracleLast)
	}
}

func TestSLCEnergyDriver(t *testing.T) {
	r := runQ(t, "slc-energy")
	get := func(name string) []string {
		for _, row := range r.Rows {
			if row[0] == name {
				return row
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	vcc := get("VCC(64,256,16)")
	rcc := get("RCC(64,256)")
	fnw := get("DBI/FNW")
	if cell(vcc[2]) < 15 {
		t.Errorf("VCC SLC flip saving %v%%, want substantial", vcc[2])
	}
	if cell(vcc[2]) <= cell(fnw[2]) {
		t.Errorf("VCC flip saving %v%% should beat FNW %v%%", vcc[2], fnw[2])
	}
	if cell(vcc[4]) < cell(rcc[4])-3 {
		t.Errorf("VCC energy saving %v%% should approach RCC %v%%", vcc[4], rcc[4])
	}
}

func TestAblateCAFODriver(t *testing.T) {
	r := runQ(t, "ablate-cafo")
	if len(r.Rows) != 2 {
		t.Fatal("want plaintext and encrypted rows")
	}
	plain, enc := r.Rows[0], r.Rows[1]
	// Biased techniques collapse under encryption; VCC holds.
	if cell(enc[1]) > cell(plain[1])-20 {
		t.Errorf("CAFO saving should collapse: %v -> %v", plain[1], enc[1])
	}
	if cell(enc[2]) > cell(plain[2])-20 {
		t.Errorf("FNW saving should collapse: %v -> %v", plain[2], enc[2])
	}
	if diff := cell(plain[3]) - cell(enc[3]); diff > 5 || diff < -5 {
		t.Errorf("VCC saving should be encryption-invariant: %v vs %v", plain[3], enc[3])
	}
	// On encrypted data VCC wins.
	if cell(enc[3]) <= cell(enc[2]) {
		t.Errorf("encrypted: VCC %v should beat FNW %v", enc[3], enc[2])
	}
}
