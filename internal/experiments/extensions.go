package experiments

import (
	"fmt"

	"repro/internal/banksim"
	"repro/internal/bitutil"
	"repro/internal/compress"
	"repro/internal/cryptmem"
	"repro/internal/faultrepo"
	"repro/internal/hwmodel"
	"repro/internal/lifetime"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/trace"
)

func init() {
	register("ablate-wearlevel", "lifetime with Start-Gap wear leveling stacked under each technique", runAblateWearLevel)
	register("ablate-compress", "restricted coset coding: inline aux space before/after encryption", runAblateCompress)
	register("fig13-sim", "normalized IPC from the discrete-event bank simulator", runFig13Sim)
	register("ablate-faultrepo", "runtime fault repository: discovery convergence and cache behaviour", runAblateFaultRepo)
}

func runAblateWearLevel(mode Mode, seed uint64) *Result {
	bm, err := trace.SpecByName("mcf_s") // hot-spot heavy: leveling matters most
	if err != nil {
		panic(err)
	}
	p := lifetimeParams(mode, bm, seed)
	seeds := lifetimeSeeds(mode, seed)
	res := &Result{
		ID:     "ablate-wearlevel",
		Title:  "Start-Gap wear leveling stacked under each protection (mcf_s)",
		Header: []string{"technique", "no_leveling", "start_gap", "gain"},
		Notes: []string{
			"Start-Gap (paper ref [30]) spreads the hot rows; gap interval 64",
			"wear tolerance (cosets) and wear leveling compose: both gains survive stacking",
		},
	}
	for _, tech := range []lifetime.Technique{lifetime.Unencoded, lifetime.SECDED,
		lifetime.DBIFNW, lifetime.VCC, lifetime.RCC} {
		plain, _ := lifetime.RunSeeds(tech, p, seeds)
		pw := p
		pw.WearLevelInterval = 64
		leveled, _ := lifetime.RunSeeds(tech, pw, seeds)
		res.Rows = append(res.Rows, []string{
			tech.String(), fmtF(plain), fmtF(leveled),
			fmtPct(100 * (leveled/plain - 1)),
		})
	}
	return res
}

func runAblateCompress(mode Mode, seed uint64) *Result {
	linesN := 2000
	if mode == Full {
		linesN = 20_000
	}
	res := &Result{
		ID:     "ablate-compress",
		Title:  "Inline aux space via word compression (restricted coset coding, ref [38])",
		Header: []string{"benchmark", "plain_eligible", "encrypted_eligible"},
		Notes: []string{
			"eligible = words whose compression slack fits the 8 coset aux bits inline",
			"AES-CTR ciphertext is incompressible: inline aux is unavailable on the encrypted",
			"path, which is why the paper budgets aux bits in the ECC spare region",
		},
	}
	key := [32]byte{1}
	// Span the content spectrum: integers (highly compressible), sparse
	// pointers, clustered-exponent floats, pre-compressed media.
	var picks []trace.Spec
	for _, name := range []string{"xalancbmk_s", "gcc_s", "mcf_s", "lbm_s", "x264_s"} {
		s, err := trace.SpecByName(name)
		if err != nil {
			panic(err)
		}
		picks = append(picks, s)
	}
	for _, bm := range picks {
		gen := trace.NewGenerator(bm, seed)
		crypt := cryptmem.MustNew(key, 1)
		var rec trace.Record
		ct := make([]byte, cryptmem.LineSize)
		var plain, enc compress.LineStats
		for i := 0; i < linesN; i++ {
			gen.Next(&rec)
			pw := bitutil.BytesToWords(rec.Data[:])
			ps := compress.Analyze(pw, 8)
			plain.Words += ps.Words
			plain.AuxEligible += ps.AuxEligible
			crypt.EncryptLine(0, ct, rec.Data[:])
			es := compress.Analyze(bitutil.BytesToWords(ct), 8)
			enc.Words += es.Words
			enc.AuxEligible += es.AuxEligible
		}
		res.Rows = append(res.Rows, []string{
			bm.Name,
			fmtPct(100 * float64(plain.AuxEligible) / float64(plain.Words)),
			fmtPct(100 * float64(enc.AuxEligible) / float64(enc.Words)),
		})
	}
	return res
}

func runFig13Sim(mode Mode, seed uint64) *Result {
	instr := int64(1_000_000)
	if mode == Full {
		instr = 20_000_000
	}
	techs := []struct {
		name  string
		delay float64
	}{
		{"DBI/Flipcy", 0.3},
		{"VCC", hwmodel.VCC(hwmodel.Default45, 64, 16, 256, true).DelayPS / 1000},
		{"RCC", hwmodel.RCC(hwmodel.Default45, 64, 256).DelayPS / 1000},
	}
	res := &Result{
		ID:     "fig13-sim",
		Title:  "Normalized IPC (discrete-event bank model, 256 cosets)",
		Header: []string{"benchmark", techs[0].name, techs[1].name, techs[2].name},
		Notes: []string{
			"mechanistic cross-check of fig13: slowdown emerges from bank conflicts",
			"instead of the closed-form exposure factor; orderings must agree",
		},
	}
	for _, bm := range benchSubset(mode) {
		row := []string{bm.Name}
		for _, tc := range techs {
			n := banksim.NormalizedIPC(tc.delay, bm, instr, seed)
			row = append(row, fmt.Sprintf("%.4f", n))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runAblateFaultRepo(mode Mode, seed uint64) *Result {
	words := 4096
	passes := 6
	if mode == Full {
		words = 32768
	}
	rng := prng.NewFrom(seed, "repo-exp")
	faults := pcm.Generate(pcm.MLC, words, pcm.FaultParams{CellRate: 1e-2}, rng)
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: words / 8, WordsPerRow: 8,
		Faults: faults})
	repo := faultrepo.New(pcm.MLC, 256)

	res := &Result{
		ID:     "ablate-faultrepo",
		Title:  "Fault repository discovery (write-verify driven, 1e-2 faults)",
		Header: []string{"pass", "known_cells", "oracle_cells", "coverage", "cache_hit"},
		Notes: []string{
			"the paper assumes a fault repository (Section III); this one discovers",
			"stuck cells from program-and-verify mismatches and converges to the oracle",
		},
	}
	oracle := int64(faults.NumStuckCells())
	for pass := 1; pass <= passes; pass++ {
		for w := 0; w < words; w++ {
			repo.Lookup(w)
			desired := rng.Uint64()
			r := dev.Write(w, desired)
			repo.RecordVerify(w, desired, r.Stored)
		}
		res.Rows = append(res.Rows, []string{
			fmtI(int64(pass)),
			fmtI(repo.KnownStuckCells()),
			fmtI(oracle),
			fmtPct(100 * float64(repo.KnownStuckCells()) / float64(oracle)),
			fmtPct(100 * repo.HitRate()),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf("backing table: %d faulty words, %.1f KiB",
		repo.FaultyWords(), float64(repo.StorageBits(words))/8192))
	return res
}
