package experiments

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/coset"
	"repro/internal/cryptmem"
	"repro/internal/faultrepo"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/trace"
)

func init() {
	register("ablate-visibility", "oracle vs discovered fault visibility for the encoder", runAblateVisibility)
	register("slc-energy", "SLC write reduction: FNW vs VCC vs RCC under flip and energy objectives", runSLCEnergy)
	register("ablate-cafo", "2D Flip-N-Write (CAFO) vs 1D FNW vs VCC on biased and encrypted lines", runAblateCAFO)
}

// runAblateCAFO contrasts the strongest biased-family technique the
// paper's Section II-C discusses (the two-dimensional FNW of reference
// [25]) against 1D FNW and VCC, on biased plaintext lines and on the
// same lines after AES-CTR encryption. The pattern the paper's
// motivation predicts: the biased family collapses to near-zero benefit
// under encryption while VCC's random virtual cosets do not.
func runAblateCAFO(mode Mode, seed uint64) *Result {
	linesN := 2000
	if mode == Full {
		linesN = 20_000
	}
	bm, err := trace.SpecByName("xalancbmk_s")
	if err != nil {
		panic(err)
	}
	key := [32]byte{7}
	crypt := cryptmem.MustNew(key, 2)
	cafo := coset.NewCAFO(memctrl.WordsPerLine, 4)
	fnw := coset.NewFNW(64, 16)
	vcc := coset.NewVCCStored(64, 16, 256, seed)

	measure := func(encrypted bool) (base, cafoF, fnwF, vccF float64) {
		gen := trace.NewGenerator(bm, seed)
		oldGen := trace.NewGenerator(bm, seed^0x01D)
		var rec, oldRec trace.Record
		ct := make([]byte, cryptmem.LineSize)
		oldCT := make([]byte, cryptmem.LineSize)
		for i := 0; i < linesN; i++ {
			gen.Next(&rec)
			oldGen.Next(&oldRec) // a previous version of similar content
			data, oldData := rec.Data[:], oldRec.Data[:]
			if encrypted {
				// Counter-mode: each version gets a fresh pad, so both
				// stored images are independently random.
				crypt.EncryptLine(0, ct, rec.Data[:])
				crypt.EncryptLine(0, oldCT, oldRec.Data[:])
				data, oldData = ct, oldCT
			}
			words := bitutil.BytesToWords(data)
			old := bitutil.BytesToWords(oldData)
			for w := range words {
				base += float64(bitutil.HammingDistance(words[w], old[w]))
			}
			cafoF += float64(cafo.FlipsAgainst(words, old))
			for w := range words {
				ev := coset.NewEvaluator(coset.Ctx{N: 64, OldWord: old[w]},
					coset.ObjFlips)
				e, a := fnw.Encode(words[w], ev)
				fnwF += ev.Full(e).Add(ev.Aux(a, fnw.AuxBits())).Primary
				ev2 := coset.NewEvaluator(coset.Ctx{N: 64, OldWord: old[w]},
					coset.ObjFlips)
				e2, a2 := vcc.Encode(words[w], ev2)
				vccF += ev2.Full(e2).Add(ev2.Aux(a2, vcc.AuxBits())).Primary
			}
		}
		return
	}
	res := &Result{
		ID:     "ablate-cafo",
		Title:  "Bit flips vs unencoded: 2D FNW (CAFO), 1D FNW, VCC — before/after encryption",
		Header: []string{"data", "CAFO_save", "FNW_save", "VCC_save"},
		Notes: []string{
			"CAFO = row+column FNW (paper ref [25]); biased techniques collapse under encryption",
		},
	}
	for _, enc := range []bool{false, true} {
		b, cf, ff, vf := measure(enc)
		label := "plaintext (biased)"
		if enc {
			label = "encrypted"
		}
		res.Rows = append(res.Rows, []string{
			label,
			fmtPct(100 * (1 - cf/b)),
			fmtPct(100 * (1 - ff/b)),
			fmtPct(100 * (1 - vf/b)),
		})
	}
	return res
}

// runAblateVisibility compares the encoder operating on the device's
// oracle fault view against the realistic discovered view of a runtime
// fault repository fed by verify-after-write. Early writes pay for
// undiscovered cells; steady state converges to near-oracle masking.
func runAblateVisibility(mode Mode, seed uint64) *Result {
	lines := 512
	passes := 5
	if mode == Full {
		lines = 4096
	}
	res := &Result{
		ID:     "ablate-visibility",
		Title:  "SAW cells per write pass: oracle vs discovered fault view (VCC 256, Opt.SAW)",
		Header: []string{"pass", "oracle_SAW", "discovered_SAW"},
		Notes: []string{
			"discovered view starts blind and converges as verify-after-write",
			"populates the repository (the system the paper assumes in Section III)",
		},
	}
	run := func(useRepo bool) []int64 {
		words := lines * memctrl.WordsPerLine
		faults := pcm.Generate(pcm.MLC, words,
			pcm.FaultParams{CellRate: 1e-2}, prng.NewFrom(seed, "vis-faults"))
		dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: lines,
			WordsPerRow: memctrl.WordsPerLine, Faults: faults})
		dev.InitRandom(prng.NewFrom(seed, "vis-init"))
		cfg := memctrl.Config{Device: dev,
			Codec:     coset.NewVCCStored(64, 16, 256, seed),
			Objective: coset.ObjSAWEnergy}
		if useRepo {
			cfg.FaultRepo = faultrepo.New(pcm.MLC, 128)
		}
		ctrl, err := memctrl.New(cfg)
		if err != nil {
			panic(err)
		}
		rng := prng.NewFrom(seed, "vis-data")
		buf := make([]byte, 64)
		var perPass []int64
		for p := 0; p < passes; p++ {
			before := ctrl.Stats().SAWCells
			for l := 0; l < lines; l++ {
				rng.Fill(buf)
				ctrl.WriteLine(l, buf)
			}
			perPass = append(perPass, ctrl.Stats().SAWCells-before)
		}
		return perPass
	}
	oracle := run(false)
	disc := run(true)
	for p := 0; p < passes; p++ {
		res.Rows = append(res.Rows, []string{
			fmtI(int64(p + 1)), fmtI(oracle[p]), fmtI(disc[p]),
		})
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"discovered/oracle SAW ratio: pass 1 = %.1fx, pass %d = %.2fx",
		float64(disc[0])/float64(oracle[0]+1), passes,
		float64(disc[passes-1])/float64(oracle[passes-1]+1)))
	return res
}

// runSLCEnergy exercises the SLC path the paper's contribution list
// covers ("reducing write energy in SLC and MLC phase-change memory"):
// random (encrypted) data written to SLC cells, comparing flip-count and
// SET/RESET-energy minimization across codecs.
func runSLCEnergy(mode Mode, seed uint64) *Result {
	words := 20_000
	if mode == Full {
		words = 200_000
	}
	res := &Result{
		ID:     "slc-energy",
		Title:  "SLC write reduction on random data (fresh-cell regime)",
		Header: []string{"codec", "bit_flips", "flip_save", "energy_pJ", "energy_save"},
		Notes: []string{
			"SLC asymmetry: RESET (write 0) costs more than SET; minimizing energy",
			"skews candidates toward 1s while minimizing flips treats both alike",
		},
	}
	type entry struct {
		name  string
		codec coset.Codec
	}
	entries := []entry{
		{"Unencoded", coset.NewIdentity(64)},
		{"DBI/FNW", coset.NewFNW(64, 16)},
		{"Flipcy", coset.NewFlipcy(64)},
		{"VCC(64,256,16)", coset.NewVCCStored(64, 16, 256, seed)},
		{"RCC(64,256)", coset.NewRCC(64, 256, seed)},
	}
	var baseFlips, baseEnergy float64
	for i, e := range entries {
		rng := prng.NewFrom(seed, "slc-"+e.name)
		var flips, energy float64
		for w := 0; w < words; w++ {
			old := rng.Uint64()
			data := rng.Uint64()
			// Flip objective.
			evF := coset.NewEvaluator(coset.Ctx{N: 64, Mode: pcm.SLC,
				OldWord: old}, coset.ObjFlips)
			encF, auxF := e.codec.Encode(data, evF)
			flips += evF.Full(encF).Add(evF.Aux(auxF, e.codec.AuxBits())).Primary
			// Energy objective.
			evE := coset.NewEvaluator(coset.Ctx{N: 64, Mode: pcm.SLC,
				OldWord: old}, coset.ObjEnergySAW)
			encE, auxE := e.codec.Encode(data, evE)
			energy += evE.Full(encE).Add(evE.Aux(auxE, e.codec.AuxBits())).Primary
		}
		if i == 0 {
			baseFlips, baseEnergy = flips, energy
		}
		res.Rows = append(res.Rows, []string{
			e.name, fmtF(flips), fmtPct(100 * (1 - flips/baseFlips)),
			fmtF(energy), fmtPct(100 * (1 - energy/baseEnergy)),
		})
	}
	return res
}
