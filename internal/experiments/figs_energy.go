package experiments

import (
	"fmt"

	"repro/internal/coset"
	"repro/internal/cryptmem"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("fig2", "observed fault rate vs number of coset codes (RCC masking)", runFig2)
	register("fig7", "write energy vs coset count: RCC, VCC, VCC-stored, unencoded", runFig7)
	register("fig8", "SAW cell reduction vs coset cardinality", runFig8)
	register("fig9", "per-benchmark write energy under Opt.Energy and Opt.SAW", runFig9)
	register("fig10", "per-benchmark SAW cells: unencoded vs VCC(64,256,16)", runFig10)
}

// simConfig bundles the knobs of one controller-based simulation.
type simConfig struct {
	codec     coset.Codec
	obj       coset.Objective
	lines     int // memory size in cache lines
	writes    int // number of line writes
	faultRate float64
	seed      uint64
	bench     *trace.Spec // nil: uniformly random addresses and data
	encrypt   bool
	// sweep writes each line exactly once in order, so every write sees
	// the fresh randomly-initialized memory (the paper's Fig. 7 regime);
	// without it, revisited lines see previously-encoded (biased) data,
	// the steady state that explains Fig. 9's lower savings.
	sweep bool
}

// simOutcome aggregates what the figures need.
type simOutcome struct {
	energyPJ float64
	auxPJ    float64
	sawCells int64
	sawBits  int64
	bitsW    int64 // data bits written
}

var simKey = [32]byte{0x42, 0x13, 0x37}

// runSim drives the full controller datapath for one configuration.
func runSim(c simConfig) simOutcome {
	words := c.lines * memctrl.WordsPerLine
	var faults *pcm.FaultMap
	if c.faultRate > 0 {
		faults = pcm.Generate(pcm.MLC, words,
			pcm.FaultParams{CellRate: c.faultRate}, prng.NewFrom(c.seed, "faults"))
	}
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: c.lines,
		WordsPerRow: memctrl.WordsPerLine, Faults: faults})
	dev.InitRandom(prng.NewFrom(c.seed, "init"))

	cfg := memctrl.Config{Device: dev, Codec: c.codec, Objective: c.obj}
	if c.encrypt {
		cfg.Crypt = cryptmem.MustNew(simKey, c.lines)
	}
	ctrl, err := memctrl.New(cfg)
	if err != nil {
		// Experiment configs are static; a geometry error here is a bug
		// in the experiment definition, not a runtime condition.
		panic(err)
	}

	addrRNG := prng.NewFrom(c.seed, "addr")
	dataRNG := prng.NewFrom(c.seed, "data")
	var gen *trace.Generator
	if c.bench != nil {
		gen = trace.NewGenerator(*c.bench, c.seed)
	}
	var rec trace.Record
	buf := make([]byte, cryptmem.LineSize)
	var sawBits int64
	for i := 0; i < c.writes; i++ {
		var line int
		switch {
		case c.sweep:
			line = i % c.lines
			dataRNG.Fill(buf)
		case gen != nil:
			gen.Next(&rec)
			line = int(rec.Line % uint64(c.lines))
			copy(buf, rec.Data[:])
		default:
			line = int(addrRNG.Uint64n(uint64(c.lines)))
			dataRNG.Fill(buf)
		}
		outc, _ := ctrl.WriteLine(line, buf)
		for _, o := range outc {
			sawBits += int64(o.Res.SAWBits)
		}
	}
	return simOutcome{
		energyPJ: ctrl.Stats().EnergyPJ,
		auxPJ:    ctrl.Stats().AuxEnergyPJ,
		sawCells: ctrl.Stats().SAWCells,
		sawBits:  sawBits,
		bitsW:    int64(c.writes) * 512,
	}
}

func sizes(mode Mode) (lines, writes int) {
	if mode == Full {
		return 4096, 100_000
	}
	return 1024, 12_000
}

func runFig2(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	res := &Result{
		ID:     "fig2",
		Title:  "Observed fault rate vs coset codes (fault incidence 1e-2)",
		Header: []string{"cosets", "observed_fault_rate", "SAW_cells"},
		Notes: []string{
			"RCC applied with SAW-first cost; rate = stuck-at-wrong bits / bits written",
			"paper claim preserved: monotone decrease with coset count",
		},
	}
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		out := runSim(simConfig{
			codec: coset.NewRCC(64, n, seed), obj: coset.ObjSAWEnergy,
			lines: lines, writes: writes, faultRate: 1e-2, seed: seed,
		})
		res.Rows = append(res.Rows, []string{
			fmtI(int64(n)),
			fmt.Sprintf("%.3e", float64(out.sawBits)/float64(out.bitsW)),
			fmtI(out.sawCells),
		})
	}
	return res
}

func runFig7(mode Mode, seed uint64) *Result {
	_, writes := sizes(mode)
	lines := writes // single sweep: every write sees fresh random cells
	res := &Result{
		ID:     "fig7",
		Title:  "Write energy vs coset count (random data, MLC, no faults)",
		Header: []string{"N", "unencoded_pJ", "RCC_save", "RCC_save_data", "VCCgen_save", "VCCgen_save_data", "VCCstored_save", "VCCstored_save_data"},
		Notes: []string{
			"paper: at 256 cosets RCC ~46.3%, VCC-generated ~44.8%, VCC-stored ~45.1% savings",
			"_data columns exclude auxiliary-bit write energy and are the paper-comparable series:",
			"the paper's savings are reproduced only under aux-free accounting (EXPERIMENTS.md deviation D2)",
			"VCC-generated encodes the right-digit plane (Alg. 2 kernels); VCC-stored is full-word",
			"single-sweep regime: each address written once over fresh random cells (see EXPERIMENTS.md)",
		},
	}
	base := runSim(simConfig{codec: coset.NewIdentity(64), obj: coset.ObjEnergySAW,
		lines: lines, writes: writes, seed: seed, sweep: true})
	for _, n := range []int{32, 64, 128, 256} {
		rcc := runSim(simConfig{codec: coset.NewRCC(64, n, seed), obj: coset.ObjEnergySAW,
			lines: lines, writes: writes, seed: seed, sweep: true})
		gen := runSim(simConfig{codec: coset.NewVCCGenerated(16, n), obj: coset.ObjEnergySAW,
			lines: lines, writes: writes, seed: seed, sweep: true})
		st := runSim(simConfig{codec: coset.NewVCCStored(64, 16, n, seed), obj: coset.ObjEnergySAW,
			lines: lines, writes: writes, seed: seed, sweep: true})
		save := func(o simOutcome) string {
			return fmtPct(100 * (1 - o.energyPJ/base.energyPJ))
		}
		saveData := func(o simOutcome) string {
			return fmtPct(100 * (1 - (o.energyPJ-o.auxPJ)/(base.energyPJ-base.auxPJ)))
		}
		res.Rows = append(res.Rows, []string{
			fmtI(int64(n)), fmtF(base.energyPJ),
			save(rcc), saveData(rcc),
			save(gen), saveData(gen),
			save(st), saveData(st),
		})
	}
	return res
}

func runFig8(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	nSeeds := 2
	if mode == Full {
		nSeeds = 5 // the paper averages five fault-map permutations
	}
	res := &Result{
		ID:     "fig8",
		Title:  "SAW cells vs coset cardinality (fault incidence 1e-2)",
		Header: []string{"N", "unencoded_SAW", "VCC_SAW", "reduction"},
		Notes: []string{
			"paper: 88.5% / 93.3% / 95.2% / 95.6% reduction at 32/64/128/256 cosets",
			"VCC is full-word with stored kernels (DESIGN.md ambiguity resolution)",
		},
	}
	for _, n := range []int{32, 64, 128, 256} {
		var uSum, vSum float64
		for s := 0; s < nSeeds; s++ {
			sd := seed + uint64(s)*1000
			u := runSim(simConfig{codec: coset.NewIdentity(64), obj: coset.ObjSAWEnergy,
				lines: lines, writes: writes, faultRate: 1e-2, seed: sd})
			v := runSim(simConfig{codec: coset.NewVCCStored(64, 16, n, sd), obj: coset.ObjSAWEnergy,
				lines: lines, writes: writes, faultRate: 1e-2, seed: sd})
			uSum += float64(u.sawCells)
			vSum += float64(v.sawCells)
		}
		res.Rows = append(res.Rows, []string{
			fmtI(int64(n)), fmtF(uSum / float64(nSeeds)), fmtF(vSum / float64(nSeeds)),
			fmtPct(100 * (1 - vSum/uSum)),
		})
	}
	return res
}

func benchSubset(mode Mode) []trace.Spec {
	bs := trace.Benchmarks()
	if mode == Quick {
		return bs[:6]
	}
	return bs
}

func runFig9(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	res := &Result{
		ID:     "fig9",
		Title:  "Per-benchmark write energy (pJ), 256 cosets, fault rate 1e-2",
		Header: []string{"benchmark", "unencoded", "VCC_OptEnergy", "VCC_OptSAW", "RCC_OptEnergy", "RCC_OptSAW", "VCC_save"},
		Notes: []string{
			"paper: ~28% average VCC savings, maintained under either cost-function ordering",
			"traces are synthetic SPEC-like writebacks, AES-CTR encrypted before encoding",
		},
	}
	var saves []float64
	for _, bm := range benchSubset(mode) {
		b := bm
		run := func(codec coset.Codec, obj coset.Objective) simOutcome {
			return runSim(simConfig{codec: codec, obj: obj, lines: lines,
				writes: writes, faultRate: 1e-2, seed: seed, bench: &b,
				encrypt: true})
		}
		base := run(coset.NewIdentity(64), coset.ObjEnergySAW)
		vE := run(coset.NewVCCStored(64, 16, 256, seed), coset.ObjEnergySAW)
		vS := run(coset.NewVCCStored(64, 16, 256, seed), coset.ObjSAWEnergy)
		rE := run(coset.NewRCC(64, 256, seed), coset.ObjEnergySAW)
		rS := run(coset.NewRCC(64, 256, seed), coset.ObjSAWEnergy)
		save := 100 * (1 - vE.energyPJ/base.energyPJ)
		saves = append(saves, save)
		res.Rows = append(res.Rows, []string{
			bm.Name, fmtF(base.energyPJ), fmtF(vE.energyPJ), fmtF(vS.energyPJ),
			fmtF(rE.energyPJ), fmtF(rS.energyPJ), fmtPct(save),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean VCC Opt.Energy saving: %s", fmtPct(stats.Mean(saves))))
	return res
}

func runFig10(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	res := &Result{
		ID:     "fig10",
		Title:  "Per-benchmark SAW cells: unencoded vs VCC (256 cosets, Opt.SAW)",
		Header: []string{"benchmark", "unencoded_SAW", "VCC_SAW", "reduction"},
		Notes: []string{
			"paper claim: at least 95% SAW reduction on every benchmark at 256 cosets",
		},
	}
	for _, bm := range benchSubset(mode) {
		b := bm
		base := runSim(simConfig{codec: coset.NewIdentity(64), obj: coset.ObjSAWEnergy,
			lines: lines, writes: writes, faultRate: 1e-2, seed: seed, bench: &b,
			encrypt: true})
		v := runSim(simConfig{codec: coset.NewVCCStored(64, 16, 256, seed),
			obj: coset.ObjSAWEnergy, lines: lines, writes: writes,
			faultRate: 1e-2, seed: seed, bench: &b, encrypt: true})
		res.Rows = append(res.Rows, []string{
			bm.Name, fmtI(base.sawCells), fmtI(v.sawCells),
			fmtPct(100 * (1 - float64(v.sawCells)/float64(base.sawCells))),
		})
	}
	return res
}
