package experiments

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/coset"
	"repro/internal/pcm"
	"repro/internal/trace"
)

func init() {
	register("ablate-kernels", "stored vs generated kernels: energy and SAW masking", runAblateKernels)
	register("ablate-m", "kernel width sweep m in {8,16,32} at fixed N", runAblateM)
	register("ablate-hybrid", "hybrid (biased+random) kernels on unencrypted data", runAblateHybrid)
	register("ablate-cost", "cost-function ordering: Opt.Energy vs Opt.SAW", runAblateCost)
}

func runAblateKernels(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	res := &Result{
		ID:     "ablate-kernels",
		Title:  "Stored (full-word) vs generated (right-plane) kernels, N=256",
		Header: []string{"metric", "VCC-Stored", "VCC-Generated"},
		Notes: []string{
			"generated kernels cannot alter left digits: near-equal energy, weaker SAW masking",
			"this is the paper's 'slightly less flexible' remark made quantitative",
		},
	}
	st := runSim(simConfig{codec: coset.NewVCCStored(64, 16, 256, seed),
		obj: coset.ObjSAWEnergy, lines: lines, writes: writes, faultRate: 1e-2, seed: seed})
	gen := runSim(simConfig{codec: coset.NewVCCGenerated(16, 256),
		obj: coset.ObjSAWEnergy, lines: lines, writes: writes, faultRate: 1e-2, seed: seed})
	res.Rows = [][]string{
		{"write energy (pJ)", fmtF(st.energyPJ), fmtF(gen.energyPJ)},
		{"SAW cells", fmtI(st.sawCells), fmtI(gen.sawCells)},
	}
	return res
}

func runAblateM(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	res := &Result{
		ID:     "ablate-m",
		Title:  "Kernel width sweep at N=256 (full-word, stored kernels)",
		Header: []string{"m", "partitions", "kernels", "aux_bits", "energy_pJ", "SAW_cells"},
		Notes: []string{
			"paper: m=16 and m=32 showed little difference; m=8 needs too few kernels per the aux budget",
		},
	}
	for _, m := range []int{8, 16, 32} {
		p := 64 / m
		r := 256 >> uint(p)
		if r < 1 {
			res.Rows = append(res.Rows, []string{fmtI(int64(m)), fmtI(int64(p)),
				"-", "-", "infeasible", "-"})
			continue
		}
		codec := coset.NewVCCStored(64, m, 256, seed)
		out := runSim(simConfig{codec: codec, obj: coset.ObjEnergySAW,
			lines: lines, writes: writes, faultRate: 1e-2, seed: seed})
		res.Rows = append(res.Rows, []string{
			fmtI(int64(m)), fmtI(int64(p)), fmtI(int64(r)),
			fmtI(int64(codec.AuxBits())), fmtF(out.energyPJ), fmtI(out.sawCells),
		})
	}
	return res
}

func runAblateHybrid(mode Mode, seed uint64) *Result {
	// Biased (unencrypted integer-like) data: a pure random kernel set
	// wastes its candidates; adding the identity/inversion kernel
	// (Section VII) recovers FNW-like behaviour.
	writes := 4000
	if mode == Full {
		writes = 40_000
	}
	spec, err := trace.SpecByName("xalancbmk_s") // integer-heavy, biased
	if err != nil {
		panic(err)
	}
	plain := coset.NewVCC(64, coset.NewStoredKernels(8, 16, seed))
	hybrid := coset.NewVCC(64, coset.WithHybridKernels(coset.NewStoredKernels(8, 16, seed)))

	// Unencrypted biased data under weight (ones) minimization — the SLC
	// SET-energy objective of the paper's own worked example. Random
	// kernels scramble a mostly-zeros block to ~m/2 ones per partition;
	// the identity kernel writes it as-is, recovering the biased-coset
	// behaviour the Section VII hybrid targets.
	count := func(c coset.Codec) int64 {
		gen := trace.NewGenerator(spec, seed)
		var rec trace.Record
		var ones int64
		for i := 0; i < writes; i++ {
			gen.Next(&rec)
			for _, w := range bitutil.BytesToWords(rec.Data[:]) {
				ev := coset.NewEvaluator(coset.Ctx{N: 64, Mode: pcm.SLC},
					coset.ObjOnes)
				enc, aux := c.Encode(w, ev)
				ones += int64(ev.Full(enc).Add(ev.Aux(aux, c.AuxBits())).Primary)
			}
		}
		return ones
	}
	pf := count(plain)
	hf := count(hybrid)
	return &Result{
		ID:     "ablate-hybrid",
		Title:  "Hybrid kernels on biased (unencrypted) integer data",
		Header: []string{"kernel set", "written ones (incl aux)"},
		Rows: [][]string{
			{"random kernels only", fmtI(pf)},
			{"random + identity (hybrid)", fmtI(hf)},
			{"hybrid advantage", fmtPct(100 * (1 - float64(hf)/float64(pf)))},
		},
		Notes: []string{"Section VII: adding identity/inversion kernels serves biased and random data"},
	}
}

func runAblateCost(mode Mode, seed uint64) *Result {
	lines, writes := sizes(mode)
	res := &Result{
		ID:     "ablate-cost",
		Title:  "Cost ordering: energy-first vs SAW-first (VCC, 256 cosets)",
		Header: []string{"objective", "energy_pJ", "SAW_cells"},
		Notes: []string{
			"paper Fig 9: ~28% energy savings maintained under either ordering",
		},
	}
	for _, obj := range []coset.Objective{coset.ObjEnergySAW, coset.ObjSAWEnergy} {
		out := runSim(simConfig{codec: coset.NewVCCStored(64, 16, 256, seed),
			obj: obj, lines: lines, writes: writes, faultRate: 1e-2, seed: seed})
		res.Rows = append(res.Rows, []string{
			obj.String(), fmtF(out.energyPJ), fmtI(out.sawCells),
		})
	}
	base := runSim(simConfig{codec: coset.NewIdentity(64), obj: coset.ObjEnergySAW,
		lines: lines, writes: writes, faultRate: 1e-2, seed: seed})
	res.Rows = append(res.Rows, []string{"unencoded", fmtF(base.energyPJ), fmtI(base.sawCells)})
	res.Notes = append(res.Notes, fmt.Sprintf("both orderings vs unencoded energy: %s / %s",
		fmtPct(100*(1-parseRow(res.Rows[0][1])/base.energyPJ)),
		fmtPct(100*(1-parseRow(res.Rows[1][1])/base.energyPJ))))
	return res
}

// parseRow converts a cell back to float (cells are produced by fmtF).
func parseRow(s string) float64 {
	var v float64
	fmt.Sscanf(s, "%g", &v)
	return v
}
