package experiments

import (
	"fmt"
	"time"

	"repro/internal/coset"
	"repro/internal/linecache"
	"repro/internal/prng"
	"repro/internal/shard"
	"repro/internal/workload"
)

func init() {
	registerOpts("cache-sweep",
		"decoded-line cache in front of the controller: hit rate, device writes, energy and throughput across cache size x policy x pattern x read fraction",
		runCacheSweep)
}

// cacheSweepConfigs is the cache dimension of the sweep: off, then two
// capacities under each write policy.
var cacheSweepConfigs = []struct {
	lines  int
	policy linecache.Policy
}{
	{0, linecache.WriteThrough}, // uncached baseline
	{64, linecache.WriteThrough},
	{64, linecache.WriteBack},
	{256, linecache.WriteThrough},
	{256, linecache.WriteBack},
}

// runCacheSweep drives the sharded engine's mixed op path through the
// decoded-line cache stack (VCC 256, Opt.Energy, AES-CTR, 1e-2 faults —
// the fig9 configuration, like workload-sweep) over locality-heavy and
// streaming patterns at SPEC-like read fractions, for every cache
// configuration. Each engine is Flushed before its statistics are
// collected, so write-back rows account every deferred device RMW. All
// statistics columns are deterministic in (mode, seed, shards) at any
// worker count; only ops_per_sec is machine-dependent.
func runCacheSweep(o Opts) *Result {
	lines, totalOps := sizes(o.Mode)
	totalOps /= 2 // two patterns x two fractions x five cache configs: keep quick mode quick
	shards := o.Shards
	if shards <= 0 {
		shards = 1
	}
	res := &Result{
		ID:    "cache-sweep",
		Title: fmt.Sprintf("Decoded-line cache sweep (VCC 256, Opt.Energy, %d shard(s))", shards),
		Header: []string{"pattern", "read_frac", "cache", "policy", "device_writes",
			"hit_rate", "coalesced", "energy_pJ", "SAW_cells", "ops_per_sec"},
		Notes: []string{
			"every row replays the same op budget through Engine.Apply; cache=0 is the uncached baseline",
			"hit_rate is reads served from decoded plaintext without decode+decrypt",
			"device_writes counts coset RMWs actually programmed; write-back rows include the final Flush",
			"coalesced counts writes absorbed into an already-dirty cached line (device work eliminated)",
			"energy falls with device_writes: deferral coalesces hot-line writebacks into one RMW",
			"ops_per_sec is wall-clock and machine-dependent; all other columns are deterministic in (mode, seed, shards)",
		},
	}
	const batchSize = 256
	for _, pat := range []string{"zipf", "seq"} {
		for _, rf := range []float64{0.55, 0.78} { // the SPEC read-fraction envelope
			for _, cc := range cacheSweepConfigs {
				eng, err := shard.New(shard.Config{
					Lines:       lines,
					Shards:      shards,
					Workers:     o.Workers,
					NewCodec:    func() coset.Codec { return coset.NewVCCStored(64, 16, 256, o.Seed) },
					Objective:   coset.ObjEnergySAW,
					Key:         simKey,
					FaultRate:   1e-2,
					Seed:        o.Seed,
					CacheLines:  cc.lines,
					CachePolicy: cc.policy,
				})
				if err != nil {
					panic(fmt.Sprintf("cache-sweep: %v", err))
				}
				phases := sweepPattern(pat, lines, o.Seed)
				for i := range phases {
					phases[i].ReadFrac = rf
				}
				stream := workload.NewStream(o.Seed, phases...)
				fillRng := prng.NewFrom(o.Seed, "cache-sweep-data:"+pat)
				fill := func(_ uint64, data []byte) { fillRng.Fill(data) }
				start := time.Now()
				runSyncStream("cache-sweep", eng, stream, totalOps, batchSize, fill)
				eng.Flush() // write-back: account every deferred RMW
				elapsed := time.Since(start)
				st := eng.Stats()
				cacheCol, policyCol := "off", "-"
				if cc.lines > 0 {
					cacheCol, policyCol = fmtI(int64(cc.lines)), cc.policy.String()
				}
				res.Rows = append(res.Rows, []string{
					pat, fmtF(rf), cacheCol, policyCol, fmtI(st.LineWrites),
					fmtPct(100 * st.HitRate()), fmtI(st.CoalescedWrites),
					fmtF(st.EnergyPJ), fmtI(st.SAWCells),
					fmtF(float64(totalOps) / elapsed.Seconds()),
				})
				eng.Close()
			}
		}
	}
	return res
}
