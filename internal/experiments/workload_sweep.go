package experiments

import (
	"fmt"
	"time"

	"repro/internal/coset"
	"repro/internal/prng"
	"repro/internal/shard"
	"repro/internal/workload"
)

func init() {
	registerOpts("workload-sweep",
		"mixed read/write op streams: energy/SAW/throughput across access patterns and read fractions",
		runWorkloadSweep)
}

// sweepPattern builds one named access pattern over the sweep footprint.
// "phased" alternates a streaming phase with a pointer-chasing phase to
// exercise the workload package's phase mixing.
func sweepPattern(name string, lines int, seed uint64) []workload.Phase {
	mk := func(p workload.Pattern, frac float64) []workload.Phase {
		return []workload.Phase{{Pattern: p, ReadFrac: frac}}
	}
	switch name {
	case "seq":
		return mk(workload.NewSequential(lines), 0)
	case "zipf":
		return mk(workload.NewZipfHot(lines, 1.3, prng.NewFrom(seed, "sweep-zipf")), 0)
	case "stride":
		return mk(workload.NewStrided(lines, 17), 0)
	case "chase":
		return mk(workload.NewPointerChase(lines, prng.NewFrom(seed, "sweep-chase")), 0)
	case "phased":
		return []workload.Phase{
			{Pattern: workload.NewSequential(lines), Ops: 512},
			{Pattern: workload.NewPointerChase(lines, prng.NewFrom(seed, "sweep-phase-chase")), Ops: 512},
		}
	default:
		panic("workload-sweep: unknown pattern " + name)
	}
}

// runSyncStream replays totalOps accesses from the stream through the
// engine with synchronous batched Apply and reused buffers — the
// non-pipelined baseline loop shared by the workload-sweep, cache-sweep
// and async-sweep drivers. id labels the panic on engine errors.
func runSyncStream(id string, eng *shard.Engine, stream *workload.Stream,
	totalOps, batchSize int, fill func(uint64, []byte)) {
	ops := make([]shard.Op, batchSize)
	bufs := make([]byte, batchSize*shard.LineSize)
	var outs []shard.Outcome
	for done := 0; done < totalOps; {
		n := batchSize
		if totalOps-done < n {
			n = totalOps - done
		}
		for i := 0; i < n; i++ {
			ops[i].Data = bufs[i*shard.LineSize : (i+1)*shard.LineSize]
			stream.FillOp(&ops[i], fill)
		}
		var err error
		if outs, err = eng.Apply(ops[:n], outs); err != nil {
			panic(fmt.Sprintf("%s: %v", id, err))
		}
		done += n
	}
}

// runWorkloadSweep drives the sharded engine's mixed op path
// (Engine.Apply) with every workload pattern at read fractions 0-0.75
// (VCC 256, Opt.Energy, AES-CTR, 1e-2 faults — the fig9 configuration)
// and reports per-cell energy/SAW totals alongside wall-clock
// throughput. With Opts.CacheLines > 0 every engine runs behind the
// decoded-line cache and the cache columns light up (the uncached
// default reports them as zero/0.0%). All statistics columns are
// deterministic in (mode, seed, shards, cache) at any worker count;
// only the ops/sec column is machine-dependent.
func runWorkloadSweep(o Opts) *Result {
	lines, totalOps := sizes(o.Mode)
	shards := o.Shards
	if shards <= 0 {
		shards = 1
	}
	cacheDesc := ""
	if o.CacheLines > 0 {
		cacheDesc = fmt.Sprintf(", %d-line %s cache/shard", o.CacheLines, o.CachePolicy)
	}
	if o.InFlight > 0 {
		cacheDesc += fmt.Sprintf(", async x%d in flight", o.InFlight)
	}
	title := fmt.Sprintf("Mixed op-stream sweep (VCC 256, Opt.Energy, %d shard(s)%s)", shards, cacheDesc)
	res := &Result{
		ID:    "workload-sweep",
		Title: title,
		Header: []string{"pattern", "read_frac", "writes", "reads",
			"energy_pJ", "pJ_per_write", "SAW_cells", "hit_rate", "coalesced", "ops_per_sec"},
		Notes: []string{
			"every row replays the same op budget through Engine.Apply in mixed batches",
			"energy scales with the write fraction: reads decode without programming cells",
			"hit_rate/coalesced surface the decoded-line cache counters; they are zero at the uncached default (vccrepro -cachelines enables the cache; cache-sweep sweeps the cache dimension itself)",
			"with Opts.InFlight > 0 (vccrepro -inflight) the stream goes through the pipelined async Submit path; statistics are identical, only ops_per_sec can move (async-sweep sweeps the in-flight dimension itself)",
			"ops_per_sec is wall-clock and machine-dependent; all other columns are deterministic in (mode, seed, shards, cache)",
			"the phased pattern alternates 512-op streaming and pointer-chase phases (phase mixing)",
		},
	}
	const batchSize = 256
	for _, pat := range []string{"seq", "zipf", "stride", "chase", "phased"} {
		for _, rf := range []float64{0, 0.25, 0.5, 0.75} {
			eng, err := shard.New(shard.Config{
				Lines:       lines,
				Shards:      shards,
				Workers:     o.Workers,
				NewCodec:    func() coset.Codec { return coset.NewVCCStored(64, 16, 256, o.Seed) },
				Objective:   coset.ObjEnergySAW,
				Key:         simKey,
				FaultRate:   1e-2,
				Seed:        o.Seed,
				CacheLines:  o.CacheLines,
				CachePolicy: o.CachePolicy,
			})
			if err != nil {
				panic(fmt.Sprintf("workload-sweep: %v", err))
			}
			phases := sweepPattern(pat, lines, o.Seed)
			for i := range phases {
				phases[i].ReadFrac = rf
			}
			stream := workload.NewStream(o.Seed, phases...)
			fillRng := prng.NewFrom(o.Seed, "sweep-data:"+pat)
			fill := func(_ uint64, data []byte) { fillRng.Fill(data) }
			start := time.Now()
			if o.InFlight > 0 {
				// Same op sequence through the pipelined async path:
				// statistics are unchanged, only wall clock can move.
				if err := workload.RunPipelined(eng, stream, totalOps, workload.PipelineConfig{
					Batch: batchSize, Depth: o.InFlight, Fill: fill,
				}); err != nil {
					panic(fmt.Sprintf("workload-sweep: %v", err))
				}
			} else {
				runSyncStream("workload-sweep", eng, stream, totalOps, batchSize, fill)
			}
			eng.Flush() // write-back caches: account deferred RMWs in this row
			elapsed := time.Since(start)
			st := eng.Stats()
			perWrite := 0.0
			if st.LineWrites > 0 {
				perWrite = st.EnergyPJ / float64(st.LineWrites)
			}
			res.Rows = append(res.Rows, []string{
				pat, fmtF(rf), fmtI(st.LineWrites), fmtI(st.LineReads),
				fmtF(st.EnergyPJ), fmtF(perWrite), fmtI(st.SAWCells),
				fmtPct(100 * st.HitRate()), fmtI(st.CoalescedWrites),
				fmtF(float64(totalOps) / elapsed.Seconds()),
			})
			eng.Close()
		}
	}
	return res
}
