package experiments

import (
	"fmt"

	"repro/internal/lifetime"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("fig11", "per-benchmark lifetime (writes to 4 failed rows), 7 techniques", runFig11)
	register("fig12", "mean lifetime vs coset count per technique", runFig12)
}

func lifetimeParams(mode Mode, bm trace.Spec, seed uint64) lifetime.Params {
	p := lifetime.DefaultParams(bm, seed)
	if mode == Quick {
		p.Rows = 64
		p.MeanWrites = 800
	}
	return p
}

func lifetimeSeeds(mode Mode, seed uint64) []uint64 {
	n := 2
	if mode == Full {
		n = 5 // the paper averages five lifetime experiments
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = seed + uint64(i)*7919
	}
	return seeds
}

func runFig11(mode Mode, seed uint64) *Result {
	techs := lifetime.AllTechniques()
	res := &Result{
		ID:    "fig11",
		Title: "Lifetime row-writes to failure per benchmark (256 cosets)",
		Header: append([]string{"benchmark"}, func() []string {
			var h []string
			for _, t := range techs {
				h = append(h, t.String())
			}
			return h
		}()...),
		Notes: []string{
			"scaled endurance per DESIGN.md substitution #4: compare ratios, not absolutes",
			"paper claims: VCC/RCC strongest; Flipcy near unencoded; SECDED/ECP/DBI modest",
		},
	}
	bms := benchSubset(mode)
	if mode == Quick {
		bms = bms[:4]
	}
	perTech := map[lifetime.Technique][]float64{}
	for _, bm := range bms {
		row := []string{bm.Name}
		for _, t := range techs {
			m, _ := lifetime.RunSeeds(t, lifetimeParams(mode, bm, seed),
				lifetimeSeeds(mode, seed))
			row = append(row, fmtF(m))
			perTech[t] = append(perTech[t], m)
		}
		res.Rows = append(res.Rows, row)
	}
	unenc := stats.Mean(perTech[lifetime.Unencoded])
	vcc := stats.Mean(perTech[lifetime.VCC])
	res.Notes = append(res.Notes, fmt.Sprintf(
		"mean VCC improvement over unencoded: %s (paper: at least 50%%)",
		fmtPct(100*(vcc/unenc-1))))
	return res
}

func runFig12(mode Mode, seed uint64) *Result {
	res := &Result{
		ID:     "fig12",
		Title:  "Mean lifetime across benchmarks vs coset count",
		Header: []string{"technique", "N=32", "N=64", "N=128", "N=256"},
		Notes: []string{
			"non-coset techniques are flat by construction; VCC/RCC grow with N",
		},
	}
	bms := benchSubset(mode)
	if mode == Quick {
		bms = bms[:3]
	}
	counts := []int{32, 64, 128, 256}
	for _, t := range lifetime.AllTechniques() {
		row := []string{t.String()}
		for _, n := range counts {
			var vals []float64
			for _, bm := range bms {
				p := lifetimeParams(mode, bm, seed)
				p.CosetCount = n
				m, _ := lifetime.RunSeeds(t, p, lifetimeSeeds(mode, seed))
				vals = append(vals, m)
			}
			row = append(row, fmtF(stats.Mean(vals)))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
