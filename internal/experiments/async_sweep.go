package experiments

import (
	"fmt"
	"time"

	"repro/internal/coset"
	"repro/internal/prng"
	"repro/internal/shard"
	"repro/internal/workload"
)

func init() {
	registerOpts("async-sweep",
		"asynchronous submission path: sync Apply vs pipelined Submit/Wait across in-flight depth x shards x pattern",
		runAsyncSweep)
}

// runAsyncSweep drives the same op budget through the engine's request
// path synchronously (Apply per batch) and asynchronously (pipelined
// Submit/Wait at several in-flight depths), across shard counts and
// access patterns (VCC 256, Opt.Energy, AES-CTR, 1e-2 faults — the
// fig9 configuration, like workload-sweep). Every statistics column is
// required to be identical across submission modes for a given
// (pattern, shards) group — per-shard queues preserve submission order,
// so the async path changes wall-clock behavior only; the driver
// panics if that invariant ever breaks, making the sweep itself a
// determinism check. ops_per_sec is machine-dependent, and
// producer/consumer overlap only shows wall-clock gains on multi-core
// hosts (on one core the async rows cost a small queue-handoff
// overhead instead).
func runAsyncSweep(o Opts) *Result {
	lines, totalOps := sizes(o.Mode)
	totalOps /= 2 // two patterns x two shard counts x four modes: keep quick mode quick
	res := &Result{
		ID:    "async-sweep",
		Title: "Async submission sweep (VCC 256, Opt.Energy, sync Apply vs pipelined Submit)",
		Header: []string{"pattern", "shards", "submit", "inflight", "writes", "reads",
			"energy_pJ", "SAW_cells", "ops_per_sec"},
		Notes: []string{
			"every row replays the same op budget (read fraction 0.6); sync rows use Apply, async rows keep N tickets in flight via Session-style Submit/Wait",
			"statistics columns are identical across submission modes by construction (per-shard queues preserve submission order); the driver verifies this",
			"ops_per_sec is wall-clock and machine-dependent; producer/consumer overlap only helps on multi-core hosts",
		},
	}
	const batchSize = 256
	const readFrac = 0.6
	for _, pat := range []string{"seq", "zipf"} {
		for _, shards := range []int{1, 4} {
			type rowStats struct {
				writes, reads, sawCells int64
				energy                  float64
			}
			var ref *rowStats
			for _, depth := range []int{0, 1, 4, 16} { // 0 = synchronous Apply
				eng, err := shard.New(shard.Config{
					Lines:     lines,
					Shards:    shards,
					Workers:   o.Workers,
					NewCodec:  func() coset.Codec { return coset.NewVCCStored(64, 16, 256, o.Seed) },
					Objective: coset.ObjEnergySAW,
					Key:       simKey,
					FaultRate: 1e-2,
					Seed:      o.Seed,
				})
				if err != nil {
					panic(fmt.Sprintf("async-sweep: %v", err))
				}
				phases := sweepPattern(pat, lines, o.Seed)
				for i := range phases {
					phases[i].ReadFrac = readFrac
				}
				stream := workload.NewStream(o.Seed, phases...)
				fillRng := prng.NewFrom(o.Seed, "async-sweep-data:"+pat)
				fill := func(_ uint64, data []byte) { fillRng.Fill(data) }
				start := time.Now()
				if depth == 0 {
					runSyncStream("async-sweep", eng, stream, totalOps, batchSize, fill)
				} else if err := workload.RunPipelined(eng, stream, totalOps, workload.PipelineConfig{
					Batch: batchSize, Depth: depth, Fill: fill,
				}); err != nil {
					panic(fmt.Sprintf("async-sweep: %v", err))
				}
				elapsed := time.Since(start)
				st := eng.Stats()
				row := rowStats{writes: st.LineWrites, reads: st.LineReads,
					sawCells: st.SAWCells, energy: st.EnergyPJ}
				if ref == nil {
					r := row
					ref = &r
				} else if row != *ref {
					panic(fmt.Sprintf("async-sweep: %s/%d-shard stats diverge between submission modes: %+v vs %+v",
						pat, shards, row, *ref))
				}
				submit, inflight := "sync", "-"
				if depth > 0 {
					submit, inflight = "async", fmtI(int64(depth))
				}
				res.Rows = append(res.Rows, []string{
					pat, fmtI(int64(shards)), submit, inflight,
					fmtI(st.LineWrites), fmtI(st.LineReads),
					fmtF(st.EnergyPJ), fmtI(st.SAWCells),
					fmtF(float64(totalOps) / elapsed.Seconds()),
				})
				eng.Close()
			}
		}
	}
	return res
}
