package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/coset"
	"repro/internal/hwmodel"
	"repro/internal/pcm"
	"repro/internal/perf"
	"repro/internal/trace"
)

func init() {
	register("fig1", "analytic reduction in bit changes: RCC vs BCC (Eq. 1/2)", runFig1)
	register("fig3", "the paper's worked VCC(64,64,4) encoding example", runFig3)
	register("table1", "MLC symbol transition energy matrix (Table I)", runTable1)
	register("fig6", "encoder area/energy/delay vs coset count (45nm model)", runFig6)
	register("fig13", "normalized IPC per benchmark and technique", runFig13)
	register("table2", "architecture parameters of the performance study", runTable2)
}

func runFig1(mode Mode, seed uint64) *Result {
	pts := analytic.Fig1(64, []int{2, 4, 16, 256})
	res := &Result{
		ID:     "fig1",
		Title:  "Reduction in bit changes for random data (n=64)",
		Header: []string{"N", "BCC", "RCC(incl-aux)", "RCC(no-aux)"},
		Notes: []string{
			"paper claim: BCC wins at N<=4, RCC wins at N>=16 by a considerable margin at 256",
			"closed forms: Eq. (1) for RCC, Eq. (2) for BCC; aux accounting reported both ways",
		},
	}
	for _, p := range pts {
		res.Rows = append(res.Rows, []string{
			fmtI(int64(p.N)), fmtPct(p.ReductionBCC), fmtPct(p.ReductionRCC),
			fmtPct(p.ReductionRCCNoAux),
		})
	}
	return res
}

func runFig3(mode Mode, seed uint64) *Result {
	// The exact vectors of the paper's Fig. 3.
	parse := func(s string) uint64 {
		var v uint64
		for _, c := range s {
			if c == ' ' {
				continue
			}
			v = v<<1 | uint64(c-'0')
		}
		return v
	}
	d := parse("1010001011011011 0101000100100100 0100011001000101 1010010100001011")
	kernels := []uint64{
		parse("1010100111011011"),
		parse("0100011111110100"),
		parse("0011001001100011"),
		parse("1010110001000111"),
	}
	vcc := coset.NewVCC(64, fixedKernelSource{m: 16, ks: kernels})
	ev := coset.NewEvaluator(coset.Ctx{N: 64, Mode: pcm.SLC}, coset.ObjOnes)
	enc, aux := vcc.Encode(d, ev)
	cost := ev.Full(enc).Add(ev.Aux(aux, vcc.AuxBits()))
	res := &Result{
		ID:     "fig3",
		Title:  "Worked example: VCC(64,64,4) ones-minimization",
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"input D", fmt.Sprintf("%016x", d)},
			{"Xopt", fmt.Sprintf("%016x", enc)},
			{"aux (kernel|flags)", fmt.Sprintf("%02b %04b", aux>>4, aux&0xF)},
			{"total ones incl aux", fmtF(cost.Primary)},
			{"decoded", fmt.Sprintf("%016x", vcc.Decode(enc, aux, 0))},
		},
		Notes: []string{"paper expects Xopt=0000101100000000 0000011100000000 0001000001100001 0000110011010000, kernel 0, flags 0110, cost 17"},
	}
	return res
}

// fixedKernelSource adapts explicit kernels (for the worked example).
type fixedKernelSource struct {
	m  int
	ks []uint64
}

func (f fixedKernelSource) Kernels(left uint64) []uint64 { return f.ks }
func (f fixedKernelSource) NumKernels() int              { return len(f.ks) }
func (f fixedKernelSource) KernelBits() int              { return f.m }
func (f fixedKernelSource) Stored() bool                 { return true }

func runTable1(mode Mode, seed uint64) *Result {
	e := pcm.DefaultEnergy
	res := &Result{
		ID:     "table1",
		Title:  "MLC symbol transition energies (pJ)",
		Header: []string{"old\\new", "N(00)", "N(01)", "N(11)", "N(10)"},
		Notes: []string{
			"diagonal free (differential write); new right digit 1 => high-energy intermediate state",
			fmt.Sprintf("high/low ratio %.0fx per the paper's order-of-magnitude claim", e.MLCHighPJ/e.MLCLowPJ),
		},
	}
	for _, o := range pcm.GrayLevels {
		row := []string{fmt.Sprintf("O(%02b)", o)}
		for _, n := range pcm.GrayLevels {
			if o == n {
				row = append(row, "-")
			} else {
				row = append(row, fmtF(e.MLCSymbolEnergy(o, n)))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func runFig6(mode Mode, seed uint64) *Result {
	rows := hwmodel.Fig6(hwmodel.Default45, []int{32, 64, 128, 256})
	res := &Result{
		ID:     "fig6",
		Title:  "Coset encoder hardware at 45nm (analytic synthesis model)",
		Header: []string{"N", "design", "area_um2", "energy_pJ", "delay_ps"},
		Notes: []string{
			"substitution: analytic gate model in place of Cadence Encounter synthesis (DESIGN.md #2)",
			"paper claims preserved: RCC area/energy slope >> VCC; VCC delay 1.8-2ns at 256 vs RCC >2.3ns",
		},
	}
	add := func(e hwmodel.Estimate) {
		res.Rows = append(res.Rows, []string{
			fmtI(int64(e.N)), e.Design, fmtF(e.AreaUM2), fmtF(e.EnergyPJ), fmtF(e.DelayPS),
		})
	}
	for _, r := range rows {
		add(r.RCC)
		add(r.VCC64)
		add(r.VCC64Stored)
		add(r.VCC32)
		add(r.VCC32Stored)
	}
	return res
}

func runFig13(mode Mode, seed uint64) *Result {
	cfg := perf.DefaultTableII()
	techs := perf.TechniquesFromHW(hwmodel.Default45, 256)
	results := perf.Fig13(cfg, trace.Benchmarks(), techs)
	res := &Result{
		ID:     "fig13",
		Title:  "Normalized IPC (256 coset candidates)",
		Header: []string{"benchmark", "DBI/Flipcy", "VCC", "RCC"},
		Notes: []string{
			"substitution: mechanistic IPC model in place of Sniper (DESIGN.md #3)",
			"paper claims preserved: DBI/Flipcy negligible; VCC <2% average; RCC <3% average",
		},
	}
	byBench := map[string][]string{}
	var order []string
	for _, r := range results {
		if byBench[r.Benchmark] == nil {
			order = append(order, r.Benchmark)
			byBench[r.Benchmark] = []string{r.Benchmark}
		}
		byBench[r.Benchmark] = append(byBench[r.Benchmark],
			fmt.Sprintf("%.4f", r.NormalizedIPC))
	}
	for _, b := range order {
		res.Rows = append(res.Rows, byBench[b])
	}
	return res
}

func runTable2(mode Mode, seed uint64) *Result {
	c := perf.DefaultTableII()
	return &Result{
		ID:     "table2",
		Title:  "Architecture parameters (performance study)",
		Header: []string{"parameter", "value"},
		Rows: [][]string{
			{"cores", fmtI(int64(c.Cores)) + " out-of-order"},
			{"issue width", fmtI(int64(c.IssueWidth))},
			{"technology", fmtI(int64(c.TechnologyNM)) + " nm"},
			{"frequency", fmtF(c.FrequencyGHz) + " GHz"},
			{"L1", fmtI(int64(c.L1KiB)) + " KiB I + D"},
			{"L2 per core", fmtI(int64(c.L2KiBPerCore)) + " KiB"},
			{"associativity", fmtI(int64(c.Associativity))},
			{"block size", fmtI(int64(c.BlockBytes)) + " B"},
			{"memory", fmtI(int64(c.MainMemoryGiB)) + " GiB PCM"},
			{"rows/words", fmt.Sprintf("%d-bit rows, %d-bit words", c.RowBits, c.WordBits)},
			{"channels", fmt.Sprintf("%d channels, %d rank, %d banks", c.Channels, c.RanksPerChan, c.BanksPerRank)},
			{"base access delay", fmtF(c.BaseAccessNS) + " ns"},
		},
	}
}
