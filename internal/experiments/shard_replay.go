package experiments

import (
	"fmt"

	"repro/internal/coset"
	"repro/internal/shard"
	"repro/internal/trace"
)

func init() {
	registerOpts("shard-replay",
		"sharded trace replay: per-benchmark energy/SAW and shard load balance",
		runShardReplay)
}

// runShardReplay replays each benchmark's writeback trace through the
// concurrent sharded engine (VCC 256, Opt.Energy, AES-CTR, 1e-2 faults
// — the fig9 configuration) and reports per-benchmark totals plus the
// shard load imbalance. With one shard the replay runs the exact
// sequential pipeline; with more, each shard draws its own fault map
// and initial cells from a derived seed, so absolutes shift while
// orderings persist. Deterministic in (mode, seed, shards) at any
// worker count.
func runShardReplay(o Opts) *Result {
	lines, writes := sizes(o.Mode)
	shards := o.Shards
	if shards <= 0 {
		shards = 1
	}
	res := &Result{
		ID:    "shard-replay",
		Title: fmt.Sprintf("Sharded trace replay (VCC 256, Opt.Energy, %d shard(s))", shards),
		Header: []string{"benchmark", "writes", "energy_pJ", "SAW_cells",
			"max_shard_writes", "min_shard_writes"},
		Notes: []string{
			"replay through the concurrent engine; 1 shard runs the exact sequential pipeline",
			"shards >1 derive independent per-shard seeds: compare orderings, not absolutes, across shard counts",
			"max/min shard writes expose the interleaved partition's load balance on Zipf+streaming traces",
		},
	}
	const batchSize = 256
	for _, bm := range benchSubset(o.Mode) {
		eng, err := shard.New(shard.Config{
			Lines:     lines,
			Shards:    shards,
			Workers:   o.Workers,
			NewCodec:  func() coset.Codec { return coset.NewVCCStored(64, 16, 256, o.Seed) },
			Objective: coset.ObjEnergySAW,
			Key:       simKey,
			FaultRate: 1e-2,
			Seed:      o.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("shard-replay: %v", err))
		}
		gen := trace.NewGenerator(bm, o.Seed)
		var rec trace.Record
		reqs := make([]shard.WriteReq, 0, batchSize)
		bufs := make([][]byte, batchSize)
		for i := range bufs {
			bufs[i] = make([]byte, shard.LineSize)
		}
		for done := 0; done < writes; {
			reqs = reqs[:0]
			for len(reqs) < batchSize && done+len(reqs) < writes {
				gen.Next(&rec)
				buf := bufs[len(reqs)]
				copy(buf, rec.Data[:])
				reqs = append(reqs, shard.WriteReq{
					Line: int(rec.Line % uint64(lines)), Data: buf,
				})
			}
			if _, err := eng.WriteBatch(reqs); err != nil {
				panic(fmt.Sprintf("shard-replay: %v", err))
			}
			done += len(reqs)
		}
		st := eng.Stats()
		maxW, minW := int64(-1), int64(-1)
		for s := 0; s < eng.Shards(); s++ {
			w := eng.ShardStats(s).LineWrites
			if maxW < 0 || w > maxW {
				maxW = w
			}
			if minW < 0 || w < minW {
				minW = w
			}
		}
		res.Rows = append(res.Rows, []string{
			bm.Name, fmtI(st.LineWrites), fmtF(st.EnergyPJ), fmtI(st.SAWCells),
			fmtI(maxW), fmtI(minW),
		})
		eng.Close() // release the per-shard drainer goroutines
	}
	return res
}
