// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md. Every
// driver is deterministic given (mode, seed) and returns a Result that
// renders as an aligned text table or CSV; cmd/vccrepro exposes them all
// and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Mode scales experiment size.
type Mode int

const (
	// Quick runs in seconds on a laptop; shapes and orderings are
	// stable, absolute counts are smaller than the paper's.
	Quick Mode = iota
	// Full runs the larger calibrated configuration (minutes).
	Full
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Full {
		return "full"
	}
	return "quick"
}

// Result is a rendered experiment.
type Result struct {
	ID     string
	Title  string
	Notes  []string // provenance, substitutions, expectations
	Header []string
	Rows   [][]string
}

// Table renders an aligned text table with title and notes.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values (quotes are not
// needed: no cell produced by this package contains commas).
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner produces a Result.
type Runner func(mode Mode, seed uint64) *Result

// entry pairs a runner with its description.
type entry struct {
	run  Runner
	desc string
}

var registry = map[string]entry{}

// register is called from each driver file's init.
func register(id, desc string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{run: run, desc: desc}
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return registry[id].desc }

// Run executes one experiment by id.
func Run(id string, mode Mode, seed uint64) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e.run(mode, seed), nil
}

// fmtF formats a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// fmtI formats an integer cell.
func fmtI(v int64) string { return fmt.Sprintf("%d", v) }
