// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md. Every
// driver is deterministic given (mode, seed) and returns a Result that
// renders as an aligned text table or CSV; cmd/vccrepro exposes them all
// and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/linecache"
)

// Mode scales experiment size.
type Mode int

const (
	// Quick runs in seconds on a laptop; shapes and orderings are
	// stable, absolute counts are smaller than the paper's.
	Quick Mode = iota
	// Full runs the larger calibrated configuration (minutes).
	Full
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Full {
		return "full"
	}
	return "quick"
}

// Result is a rendered experiment.
type Result struct {
	ID     string
	Title  string
	Notes  []string // provenance, substitutions, expectations
	Header []string
	Rows   [][]string
}

// Table renders an aligned text table with title and notes.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values (quotes are not
// needed: no cell produced by this package contains commas).
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Opts carries the knobs a driver may consult. Mode and Seed are
// meaningful to every experiment; Shards and Workers only to the
// sharded-replay drivers (plain drivers ignore them).
type Opts struct {
	Mode Mode
	Seed uint64
	// Shards is the shard count for drivers built on the sharded engine
	// (0 and 1 both mean the sequential single-shard configuration).
	Shards int
	// Workers bounds the worker pool of sharded drivers; 0 defaults to
	// the shard count.
	Workers int
	// CacheLines fronts each shard of sharded drivers that honor it
	// (workload-sweep) with a decoded-line cache of this capacity; 0
	// (the default) runs uncached. cache-sweep sweeps its own cache
	// dimension and ignores this.
	CacheLines int
	// CachePolicy selects the cache write policy for CacheLines > 0.
	CachePolicy linecache.Policy
	// InFlight, when positive, makes drivers that honor it
	// (workload-sweep) issue their op stream through the asynchronous
	// submission path with this many tickets in flight; 0 (the default)
	// uses synchronous Apply. Statistics are identical either way —
	// only wall-clock throughput can differ. async-sweep sweeps its own
	// in-flight dimension and ignores this.
	InFlight int
}

// Runner produces a Result from (mode, seed) — the signature of every
// paper-figure driver, which are deterministic in exactly those two
// inputs.
type Runner func(mode Mode, seed uint64) *Result

// OptRunner is a driver that also consults Shards/Workers.
type OptRunner func(o Opts) *Result

// entry pairs a runner with its description.
type entry struct {
	run  OptRunner
	desc string
}

var registry = map[string]entry{}

// register is called from each driver file's init.
func register(id, desc string, run Runner) {
	registerOpts(id, desc, func(o Opts) *Result { return run(o.Mode, o.Seed) })
}

// registerOpts registers a driver that consumes the full option set.
func registerOpts(id, desc string, run OptRunner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{run: run, desc: desc}
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return registry[id].desc }

// Run executes one experiment by id with default options.
func Run(id string, mode Mode, seed uint64) (*Result, error) {
	return RunOpts(id, Opts{Mode: mode, Seed: seed})
}

// RunOpts executes one experiment by id.
func RunOpts(id string, o Opts) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e.run(o), nil
}

// RunMany executes the given experiments over a bounded worker pool and
// returns their results in ids order. Drivers are independent and
// deterministic in their options, so parallel execution returns exactly
// what sequential Run calls would; the first unknown id aborts the
// whole batch before anything runs.
func RunMany(ids []string, o Opts, workers int) ([]*Result, error) {
	entries := make([]entry, len(ids))
	for i, id := range ids {
		e, ok := registry[id]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
		}
		entries[i] = e
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	results := make([]*Result, len(ids))
	if workers <= 1 {
		for i, e := range entries {
			results[i] = e.run(o)
		}
		return results, nil
	}
	ch := make(chan int, len(ids))
	for i := range ids {
		ch <- i
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = entries[i].run(o)
			}
		}()
	}
	wg.Wait()
	return results, nil
}

// fmtF formats a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// fmtI formats an integer cell.
func fmtI(v int64) string { return fmt.Sprintf("%d", v) }
