// Package lifetime implements the paper's endurance experiments (Section
// VI-A, Figs. 11 and 12): a wear-enabled MLC PCM memory is written with
// encrypted (uniformly random) data through one of seven protection
// techniques until four row addresses experience uncorrectable faults;
// the memory lifetime is the number of row writes reached.
//
// Technique semantics on each row write:
//
//   - Unencoded: any stuck-at-wrong cell is an uncorrectable error.
//   - SECDED: up to one wrong bit per 64-bit word is corrected
//     ((72,64) Hamming); two or more wrong bits in a word fail the row.
//   - ECP3: up to 3 stuck cells per 64-bit word are remapped to
//     replacement cells (pointers allocated on first wrong occurrence);
//     a wrong cell with no pointer available fails the row.
//   - DBI/FNW, Flipcy, VCC, RCC: the encoder picks the candidate
//     minimizing stuck-at-wrong cells (then energy); if the best
//     candidate still has a wrong cell, the row fails.
//
// Scaling: the paper uses a 2 GB memory and 1e8-write mean endurance.
// Per DESIGN.md substitution #4, defaults here are laptop-scale (rows in
// the hundreds, endurance in the thousands); every Fig. 11/12 comparison
// is a ratio between techniques, which scaling preserves.
package lifetime

import (
	"fmt"

	"repro/internal/coset"
	"repro/internal/ecc"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/trace"
	"repro/internal/wearlevel"
)

// Technique enumerates the protection schemes of Fig. 11.
type Technique int

const (
	Unencoded Technique = iota
	SECDED
	ECP3
	DBIFNW
	Flipcy
	VCC
	RCC
)

// AllTechniques lists the Fig. 11 set in the paper's legend order.
func AllTechniques() []Technique {
	return []Technique{SECDED, ECP3, Unencoded, VCC, RCC, Flipcy, DBIFNW}
}

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case Unencoded:
		return "Unencoded"
	case SECDED:
		return "SECDED"
	case ECP3:
		return "ECP3"
	case DBIFNW:
		return "DBI/FNW"
	case Flipcy:
		return "Flipcy"
	case VCC:
		return "VCC"
	case RCC:
		return "RCC"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Params configures one lifetime run.
type Params struct {
	// Rows is the number of memory rows (512-bit rows = one cache line
	// each).
	Rows int
	// MeanWrites / CoV parameterize per-cell endurance in energy-
	// weighted wear units (pcm.WearHigh/WearLow); the paper's 1e8 writes
	// correspond to ~5.5e8 units for random data, scaled down here per
	// DESIGN.md substitution #4.
	MeanWrites float64
	CoV        float64
	// CosetCount is N for VCC and RCC (and sets the FNW/Flipcy aux
	// budget comparison point); the paper's headline is 256.
	CosetCount int
	// FailedRowLimit is the number of failed rows that ends the run
	// (paper: 4).
	FailedRowLimit int
	// MaxRowWrites caps the simulation (0 = no cap) so runaway configs
	// cannot hang a test run.
	MaxRowWrites int64
	// WearLevelInterval, when positive, layers Start-Gap wear leveling
	// (Qureshi et al., the paper's reference [30]) under the protection
	// scheme: logical rows are remapped over Rows+1 physical rows and
	// the gap advances every WearLevelInterval row writes. 0 disables.
	WearLevelInterval int
	// Benchmark supplies the address stream.
	Benchmark trace.Spec
	// Seed drives endurance assignment, data, and the trace.
	Seed uint64
}

// DefaultParams returns laptop-scale parameters for benchmark bm.
func DefaultParams(bm trace.Spec, seed uint64) Params {
	return Params{
		Rows:           256,
		MeanWrites:     8000,
		CoV:            0.2,
		CosetCount:     256,
		FailedRowLimit: 4,
		MaxRowWrites:   20_000_000,
		Benchmark:      bm,
		Seed:           seed,
	}
}

// Result reports one run.
type Result struct {
	Technique  Technique
	Benchmark  string
	RowWrites  int64 // lifetime in row writes
	FailedRows int
	CapHit     bool // MaxRowWrites reached before enough rows failed
}

const wordsPerRow = 8

// codecFor builds the encoder for a coset technique (nil otherwise).
func codecFor(t Technique, n int, seed uint64) coset.Codec {
	switch t {
	case DBIFNW:
		return coset.NewFNW(64, 16)
	case Flipcy:
		return coset.NewFlipcy(64)
	case VCC:
		return coset.NewVCCStored(64, 16, n, seed)
	case RCC:
		return coset.NewRCC(64, n, seed)
	default:
		return nil
	}
}

// Run ages one memory under one technique until FailedRowLimit rows have
// failed (or the cap is hit) and returns the lifetime.
func Run(t Technique, p Params) Result {
	if p.Rows <= 0 || p.FailedRowLimit <= 0 {
		panic("lifetime: invalid params")
	}
	physRows := p.Rows
	var sg *wearlevel.StartGap
	if p.WearLevelInterval > 0 {
		sg = wearlevel.NewStartGap(p.Rows, p.WearLevelInterval)
		physRows = sg.PhysicalRows()
	}
	cells := physRows * wordsPerRow * pcm.MLC.CellsPerWord()
	wear := pcm.NewWear(cells, pcm.WearParams{MeanWrites: p.MeanWrites, CoV: p.CoV},
		prng.NewFrom(p.Seed, "endurance"))
	dev := pcm.NewDevice(pcm.Config{
		Mode: pcm.MLC, Rows: physRows, WordsPerRow: wordsPerRow, Wear: wear,
	})
	dev.InitRandom(prng.NewFrom(p.Seed, "init"))

	codec := codecFor(t, p.CosetCount, p.Seed^0xC05E7)
	var ecp *ecc.ECP
	if t == ECP3 {
		// 3 pointers per 512-bit row (256 MLC cells): the iso-area
		// configuration — ~33 pointer bits per row against SECDED's 64 —
		// which is why the paper finds ECP comparable to SECDED once
		// spatially-correlated wear clusters failures within a row.
		ecp = ecc.NewECP(3, wordsPerRow*pcm.MLC.CellsPerWord())
	}
	aux := make([]uint64, dev.NumWords())
	gen := trace.NewGenerator(p.Benchmark, p.Seed)
	dataRNG := prng.NewFrom(p.Seed, "ciphertext")

	failed := make(map[int]bool)
	var rec trace.Record
	var rowWrites int64
	// One long-lived evaluator, rebound per word: Reset applies defaults
	// and hoists the per-write invariants the encode paths rely on
	// (building an Evaluator as a raw literal would leave them unbound).
	var ev coset.Evaluator

	for {
		if p.MaxRowWrites > 0 && rowWrites >= p.MaxRowWrites {
			return Result{Technique: t, Benchmark: p.Benchmark.Name,
				RowWrites: rowWrites, FailedRows: len(failed), CapHit: true}
		}
		gen.Next(&rec)
		row := int(rec.Line % uint64(p.Rows))
		if sg != nil {
			row = sg.Map(row)
		}
		rowWrites++
		rowFailed := false

		for col := 0; col < wordsPerRow; col++ {
			w := row*wordsPerRow + col
			data := dataRNG.Uint64() // encrypted: uniformly random
			desired := data
			if codec != nil {
				stuckMask, stuckVal := dev.Stuck(w)
				ev.Reset(coset.Ctx{
					N: 64, Mode: pcm.MLC,
					OldWord:   dev.Read(w),
					StuckMask: stuckMask,
					StuckVal:  stuckVal,
					OldAux:    aux[w],
					Energy:    pcm.DefaultEnergy,
				}, coset.ObjSAWEnergy)
				enc, a := codec.Encode(data, &ev)
				desired = enc
				aux[w] = a
			}
			res := dev.Write(w, desired)
			if res.SAWCells == 0 {
				continue
			}
			// Note: no early exit — all eight words of the row are
			// written physically regardless of failures, so wear
			// accumulates identically across techniques.
			switch t {
			case Unencoded, DBIFNW, Flipcy, VCC, RCC:
				rowFailed = true
			case SECDED:
				if res.SAWBits > 1 {
					rowFailed = true
				}
			case ECP3:
				// Wrong cells: collapse the wrong-bit mask to symbols
				// and try to point each one at a replacement cell from
				// the row's budget.
				wrong := desired ^ res.Stored
				for k := 0; k < pcm.MLC.CellsPerWord(); k++ {
					if wrong>>(2*k)&3 == 0 {
						continue
					}
					if !ecp.Cover(row, col*pcm.MLC.CellsPerWord()+k) {
						rowFailed = true
					}
				}
			}
		}
		if rowFailed && !failed[row] {
			failed[row] = true
			if len(failed) >= p.FailedRowLimit {
				return Result{Technique: t, Benchmark: p.Benchmark.Name,
					RowWrites: rowWrites, FailedRows: len(failed)}
			}
		}
		if sg != nil {
			if from, to, moved := sg.OnWrite(); moved {
				// Physically relocate the displaced row into the old
				// gap slot; the copy is a real write and wears cells.
				for col := 0; col < wordsPerRow; col++ {
					src, dst := from*wordsPerRow+col, to*wordsPerRow+col
					dev.Write(dst, dev.Read(src))
					aux[dst] = aux[src]
				}
			}
		}
	}
}

// RunSeeds averages lifetimes over multiple seeds (the paper averages
// five lifetime experiments).
func RunSeeds(t Technique, base Params, seeds []uint64) (mean float64, results []Result) {
	var sum float64
	for _, s := range seeds {
		p := base
		p.Seed = s
		r := Run(t, p)
		results = append(results, r)
		sum += float64(r.RowWrites)
	}
	return sum / float64(len(seeds)), results
}
