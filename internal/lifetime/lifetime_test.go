package lifetime

import (
	"testing"

	"repro/internal/trace"
)

// quickParams keeps unit-test runtime low: a tiny memory and short
// endurance. Ratios between techniques are preserved (DESIGN.md
// substitution #4).
func quickParams(seed uint64) Params {
	bm, _ := trace.SpecByName("mcf_s")
	p := DefaultParams(bm, seed)
	p.Rows = 64
	p.MeanWrites = 800
	p.CosetCount = 64
	p.MaxRowWrites = 3_000_000
	return p
}

func TestRunTerminates(t *testing.T) {
	for _, tech := range AllTechniques() {
		r := Run(tech, quickParams(1))
		if r.CapHit {
			t.Errorf("%s: hit write cap before failing", tech)
		}
		if r.FailedRows < 4 {
			t.Errorf("%s: only %d failed rows", tech, r.FailedRows)
		}
		if r.RowWrites <= 0 {
			t.Errorf("%s: nonpositive lifetime", tech)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Run(VCC, quickParams(7))
	b := Run(VCC, quickParams(7))
	if a.RowWrites != b.RowWrites {
		t.Errorf("lifetime not deterministic: %d vs %d", a.RowWrites, b.RowWrites)
	}
}

// TestFig11Ordering pins the paper's quantitative lifetime claims at 256
// cosets on a scaled-down configuration, averaged over seeds. The
// paper's aggregate numbers (abstract and Section VI-C): VCC improves
// lifetime at least 50% over unencoded (50-60% in Fig. 12) and at least
// 36% over SECDED/ECP/DBI; RCC is the slightly better ceiling (50-64%);
// Flipcy is close to unencoded.
func TestFig11Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime ordering test is seconds-long")
	}
	seeds := []uint64{1, 2, 3}
	params := quickParams(0)
	params.CosetCount = 256
	mean := map[Technique]float64{}
	for _, tech := range AllTechniques() {
		m, _ := RunSeeds(tech, params, seeds)
		mean[tech] = m
	}
	// >= 50% improvement over unencoded for VCC and RCC.
	if mean[VCC] < 1.5*mean[Unencoded] {
		t.Errorf("VCC lifetime %v not >=1.5x unencoded %v", mean[VCC], mean[Unencoded])
	}
	if mean[RCC] < 1.5*mean[Unencoded] {
		t.Errorf("RCC lifetime %v not >=1.5x unencoded %v", mean[RCC], mean[Unencoded])
	}
	// >= 36% improvement over the state-of-the-art protections.
	for _, other := range []Technique{SECDED, ECP3, DBIFNW} {
		if mean[VCC] < 1.3*mean[other] {
			t.Errorf("VCC lifetime %v not well above %s %v", mean[VCC], other, mean[other])
		}
	}
	// Flipcy close to unencoded (generally ineffective on unbiased
	// data).
	if mean[Flipcy] > 1.5*mean[Unencoded] {
		t.Errorf("Flipcy %v should be near unencoded %v", mean[Flipcy], mean[Unencoded])
	}
	// Protection superior to nothing.
	for _, tech := range []Technique{SECDED, ECP3, DBIFNW} {
		if mean[tech] <= mean[Unencoded] {
			t.Errorf("%s lifetime %v not above unencoded %v", tech, mean[tech], mean[Unencoded])
		}
	}
	// VCC nearly matches RCC (paper: "nearly matching the effectiveness
	// of RCC"; stored-kernel VCC effectively matches).
	if mean[VCC] < 0.85*mean[RCC] {
		t.Errorf("VCC %v much worse than RCC %v", mean[VCC], mean[RCC])
	}
}

// TestMoreCosetsExtendLifetime is the Fig. 12 trend for VCC.
func TestMoreCosetsExtendLifetime(t *testing.T) {
	if testing.Short() {
		t.Skip("coset sweep is seconds-long")
	}
	p := quickParams(5)
	p32 := p
	p32.CosetCount = 32
	p256 := p
	p256.CosetCount = 256
	seeds := []uint64{11, 12}
	m32, _ := RunSeeds(VCC, p32, seeds)
	m256, _ := RunSeeds(VCC, p256, seeds)
	if m256 <= m32 {
		t.Errorf("256 cosets (%v) should outlive 32 cosets (%v)", m256, m32)
	}
}

func TestCapHit(t *testing.T) {
	p := quickParams(1)
	p.MaxRowWrites = 10
	r := Run(VCC, p)
	if !r.CapHit {
		t.Error("cap should have been hit")
	}
	if r.RowWrites != 10 {
		t.Errorf("row writes %d, want 10", r.RowWrites)
	}
}

func TestRunPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(VCC, Params{})
}

func TestTechniqueStrings(t *testing.T) {
	for _, tech := range AllTechniques() {
		if tech.String() == "" {
			t.Error("empty technique name")
		}
	}
	if Technique(42).String() == "" {
		t.Error("unknown technique should still print")
	}
}

func TestAllTechniquesComplete(t *testing.T) {
	if len(AllTechniques()) != 7 {
		t.Errorf("Fig 11 compares 7 techniques, got %d", len(AllTechniques()))
	}
}

// TestWearLevelingExtendsHotSpotLifetime: Start-Gap under a skewed trace
// should not hurt, and typically helps, every technique.
func TestWearLevelingExtendsHotSpotLifetime(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime test is seconds-long")
	}
	p := quickParams(3)
	p.CosetCount = 64
	seeds := []uint64{41, 42}
	plain, _ := RunSeeds(Unencoded, p, seeds)
	pw := p
	pw.WearLevelInterval = 64
	leveled, _ := RunSeeds(Unencoded, pw, seeds)
	if leveled < 0.9*plain {
		t.Errorf("start-gap hurt lifetime: %v -> %v", plain, leveled)
	}
	// VCC + leveling still outlives plain VCC or close to it.
	vccPlain, _ := RunSeeds(VCC, p, seeds)
	vccLeveled, _ := RunSeeds(VCC, pw, seeds)
	if vccLeveled < 0.9*vccPlain {
		t.Errorf("start-gap hurt VCC lifetime: %v -> %v", vccPlain, vccLeveled)
	}
}
