package perf

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestLatencyBucketRoundTrip(t *testing.T) {
	// Every value must land in a valid bucket whose representative is
	// within the histogram's relative-error bound.
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1 << 20, 1<<20 + 1, 1<<40 + 12345, math.MaxUint64} {
		b := bucketOf(v)
		if b < 0 || b >= latBuckets {
			t.Fatalf("bucketOf(%d) = %d out of [0,%d)", v, b, latBuckets)
		}
		rep := bucketValue(b)
		if v < 1<<latSubBits {
			if rep != v {
				t.Fatalf("low range must be exact: bucketValue(bucketOf(%d)) = %d", v, rep)
			}
			continue
		}
		relErr := math.Abs(float64(rep)-float64(v)) / float64(v)
		if relErr > 1.0/(1<<latSubBits) {
			t.Fatalf("bucketOf(%d) -> rep %d: relative error %.4f", v, rep, relErr)
		}
	}
	// Buckets are monotone in the sample value.
	prev := -1
	for exp := 0; exp < 64; exp++ {
		v := uint64(1) << exp
		b := bucketOf(v)
		if b <= prev {
			t.Fatalf("bucketOf(1<<%d) = %d not increasing past %d", exp, b, prev)
		}
		prev = b
	}
}

func TestLatencyQuantiles(t *testing.T) {
	var s LatencySink
	// A known uniform distribution: 1..10000.
	for v := uint64(1); v <= 10000; v++ {
		s.Record(v)
	}
	if s.Count() != 10000 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Min() != 1 || s.Max() != 10000 {
		t.Fatalf("min/max = %d/%d", s.Min(), s.Max())
	}
	if got, want := s.Mean(), 5000.5; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 5000}, {0.95, 9500}, {0.99, 9900}, {1, 10000}} {
		got := float64(s.Quantile(tc.q))
		if math.Abs(got-tc.want)/tc.want > 0.04 {
			t.Errorf("q%.2f = %.0f, want %.0f +/- 4%%", tc.q, got, tc.want)
		}
	}
}

func TestLatencyMergeMatchesSingle(t *testing.T) {
	rng := prng.NewFrom(7, "latency-merge-test")
	var whole LatencySink
	parts := make([]LatencySink, 4)
	for i := 0; i < 40000; i++ {
		v := rng.Uint64() % (1 << 22)
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	var merged LatencySink
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatalf("merged sink differs from single-producer sink: %+v vs %+v",
			merged.Summary(), whole.Summary())
	}
	sum := merged.Summary()
	if sum.P50 > sum.P95 || sum.P95 > sum.P99 || sum.P99 > sum.Max || sum.Min > sum.P50 {
		t.Fatalf("summary not monotone: %+v", sum)
	}
}

func TestLatencyEmptySink(t *testing.T) {
	var s LatencySink
	if s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Count() != 0 {
		t.Fatal("empty sink must report zeros")
	}
	var o LatencySink
	o.Record(5)
	o.Merge(&s) // merging an empty sink is a no-op
	if o.Count() != 1 || o.Min() != 5 || o.Max() != 5 {
		t.Fatalf("merge with empty sink corrupted state: %+v", o.Summary())
	}
}
