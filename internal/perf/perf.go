// Package perf estimates the IPC impact of encoder latency on the
// read-modify-write path, standing in for the paper's Sniper full-system
// simulation (DESIGN.md substitution #3).
//
// Model. The paper's Table II system (4-core out-of-order, 1 GHz, PCM
// with 84 ns baseline access delay) commits dirty evictions only after
// the RMW read returns and the encoder finishes (Section VI-A). Write
// latency is mostly off the critical path, but encoder occupancy extends
// bank busy time; a fraction of that shows up as extra stall when later
// accesses conflict. We model per-benchmark slowdown as
//
//	slowdown = 1 + WPKI/1000 * t_enc(ns) * CyclesPerNS * ExposureFactor
//
// where WPKI is the benchmark's writebacks per kilo-instruction (from
// the trace package), t_enc comes from the hwmodel critical path, and
// ExposureFactor (calibrated at 0.5) is the fraction of encoder
// occupancy that lands on the critical path through bank conflicts.
// Normalized IPC is 1/slowdown. What must hold, and what the paper's
// Fig. 13 shows: DBI/Flipcy are indistinguishable from baseline, VCC
// costs < 2% on average, RCC up to ~3%, all orderings preserved per
// benchmark.
package perf

import (
	"fmt"

	"repro/internal/hwmodel"
	"repro/internal/trace"
)

// TableII captures the architecture parameters of the paper's
// performance study.
type TableII struct {
	Cores          int
	IssueWidth     int
	TechnologyNM   int
	FrequencyGHz   float64
	L1KiB          int
	L2KiBPerCore   int
	Associativity  int
	BlockBytes     int
	RowBits        int
	WordBits       int
	MainMemoryGiB  int
	Channels       int
	RanksPerChan   int
	BanksPerRank   int
	BaseAccessNS   float64
	ExposureFactor float64
}

// DefaultTableII returns the paper's Table II configuration.
func DefaultTableII() TableII {
	return TableII{
		Cores:          4,
		IssueWidth:     4,
		TechnologyNM:   28,
		FrequencyGHz:   1.0,
		L1KiB:          32,
		L2KiBPerCore:   256,
		Associativity:  8,
		BlockBytes:     64,
		RowBits:        512,
		WordBits:       64,
		MainMemoryGiB:  2,
		Channels:       2,
		RanksPerChan:   1,
		BanksPerRank:   8,
		BaseAccessNS:   84,
		ExposureFactor: 0.5,
	}
}

// Validate sanity-checks the configuration.
func (c TableII) Validate() error {
	if c.FrequencyGHz <= 0 || c.BaseAccessNS <= 0 {
		return fmt.Errorf("perf: frequency and access delay must be positive")
	}
	if c.ExposureFactor < 0 || c.ExposureFactor > 1 {
		return fmt.Errorf("perf: exposure factor %v out of [0,1]", c.ExposureFactor)
	}
	return nil
}

// Technique couples a display name with its encoder latency.
type Technique struct {
	Name       string
	EncDelayNS float64
}

// TechniquesFromHW derives the Fig. 13 technique set from the hardware
// model at the given coset count (the paper uses 256).
func TechniquesFromHW(t hwmodel.Tech45, cosetCount int) []Technique {
	rcc := hwmodel.RCC(t, 64, cosetCount)
	vcc := hwmodel.VCC(t, 64, 16, cosetCount, true)
	// DBI and Flipcy evaluate 2-3 candidates with trivial logic; the
	// paper lumps them together as "a few hundred ps".
	return []Technique{
		{Name: "DBI/Flipcy", EncDelayNS: 0.3},
		{Name: "VCC", EncDelayNS: vcc.DelayPS / 1000},
		{Name: "RCC", EncDelayNS: rcc.DelayPS / 1000},
	}
}

// Result is one bar of Fig. 13.
type Result struct {
	Benchmark     string
	Technique     string
	NormalizedIPC float64
}

// NormalizedIPC computes the normalized IPC of one benchmark under one
// technique.
func NormalizedIPC(cfg TableII, spec trace.Spec, tech Technique) float64 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cyclesPerNS := cfg.FrequencyGHz
	extra := spec.WriteIntensity / 1000 * tech.EncDelayNS * cyclesPerNS *
		cfg.ExposureFactor
	return 1 / (1 + extra)
}

// Fig13 evaluates the full benchmark x technique matrix.
func Fig13(cfg TableII, benchmarks []trace.Spec, techniques []Technique) []Result {
	out := make([]Result, 0, len(benchmarks)*len(techniques))
	for _, b := range benchmarks {
		for _, tech := range techniques {
			out = append(out, Result{
				Benchmark:     b.Name,
				Technique:     tech.Name,
				NormalizedIPC: NormalizedIPC(cfg, b, tech),
			})
		}
	}
	return out
}
