package perf

// This file adds measured-latency accounting to the modeled-IPC
// package: a fixed-footprint log-linear histogram for request
// latencies, used by the network load generator (cmd/loadgen) to
// report p50/p95/p99 without retaining per-request samples.
//
// Bucketing: values below 2^latSubBits are exact; above that each
// power-of-two range splits into 2^latSubBits equal sub-buckets, so
// the relative quantization error is bounded by 2^-latSubBits
// (~3.1%) at any magnitude — the standard HDR-histogram trade.

import (
	"encoding/json"
	"math/bits"
)

const (
	// latSubBits is the sub-bucket resolution: each power-of-two range
	// splits into 1<<latSubBits buckets.
	latSubBits = 5
	// latBuckets covers the full uint64 range: the exact low range is
	// buckets [0, 2^latSubBits), and exponent range exp (0 to
	// 63-latSubBits) occupies [(exp+1)<<latSubBits, (exp+2)<<latSubBits).
	latBuckets = (64 - latSubBits + 1) << latSubBits
)

// LatencySink accumulates latency samples into a log-linear histogram
// with bounded (~3%) relative error. The zero value is ready to use;
// it is not safe for concurrent use — give each producer its own sink
// and Merge them.
type LatencySink struct {
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
	bucket [latBuckets]uint64
}

// bucketOf maps a sample to its histogram bucket.
func bucketOf(v uint64) int {
	if v < 1<<latSubBits {
		return int(v)
	}
	exp := bits.Len64(v) - latSubBits - 1
	return exp<<latSubBits + int(v>>uint(exp)) // high latSubBits+1 bits, offset past the exact range
}

// bucketValue returns a representative (midpoint) sample for a bucket.
func bucketValue(b int) uint64 {
	if b < 1<<latSubBits {
		return uint64(b)
	}
	exp := uint(b>>latSubBits - 1)
	sub := uint64(b&(1<<latSubBits-1) | 1<<latSubBits)
	return sub<<exp + 1<<exp>>1
}

// Record adds one sample (typically nanoseconds).
func (s *LatencySink) Record(v uint64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.bucket[bucketOf(v)]++
}

// Merge folds o into s.
func (s *LatencySink) Merge(o *LatencySink) {
	if o.count == 0 {
		return
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	for i, c := range o.bucket {
		s.bucket[i] += c
	}
}

// Count returns the number of recorded samples.
func (s *LatencySink) Count() uint64 { return s.count }

// Mean returns the exact arithmetic mean (the sum is kept exactly).
func (s *LatencySink) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.count)
}

// Min returns the smallest recorded sample (exact).
func (s *LatencySink) Min() uint64 { return s.min }

// Max returns the largest recorded sample (exact).
func (s *LatencySink) Max() uint64 { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) as a representative
// bucket value, clamped to the exact observed min/max.
func (s *LatencySink) Quantile(q float64) uint64 {
	if s.count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.count-1))
	var seen uint64
	for b, c := range s.bucket {
		seen += uint64(c)
		if seen > rank {
			v := bucketValue(b)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// LatencySummary is the JSON shape loadgen reports (all values in the
// unit the samples were recorded in, nanoseconds by convention).
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ns"`
	P50   uint64  `json:"p50_ns"`
	P95   uint64  `json:"p95_ns"`
	P99   uint64  `json:"p99_ns"`
	Min   uint64  `json:"min_ns"`
	Max   uint64  `json:"max_ns"`
}

// Summary extracts the standard report.
func (s *LatencySink) Summary() LatencySummary {
	return LatencySummary{
		Count: s.count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Min:   s.min,
		Max:   s.max,
	}
}

// MarshalJSON serializes the summary (not the raw buckets).
func (s *LatencySink) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Summary())
}
