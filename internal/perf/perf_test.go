package perf

import (
	"testing"

	"repro/internal/hwmodel"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestTableIIMatchesPaper(t *testing.T) {
	c := DefaultTableII()
	if c.Cores != 4 || c.IssueWidth != 4 || c.FrequencyGHz != 1.0 {
		t.Error("CPU parameters drifted from Table II")
	}
	if c.L1KiB != 32 || c.L2KiBPerCore != 256 || c.Associativity != 8 ||
		c.BlockBytes != 64 {
		t.Error("cache parameters drifted from Table II")
	}
	if c.RowBits != 512 || c.WordBits != 64 || c.MainMemoryGiB != 2 ||
		c.Channels != 2 || c.BanksPerRank != 8 || c.BaseAccessNS != 84 {
		t.Error("memory parameters drifted from Table II")
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := DefaultTableII()
	c.FrequencyGHz = 0
	if c.Validate() == nil {
		t.Error("zero frequency accepted")
	}
	c = DefaultTableII()
	c.ExposureFactor = 2
	if c.Validate() == nil {
		t.Error("exposure factor > 1 accepted")
	}
}

func TestTechniquesFromHW(t *testing.T) {
	ts := TechniquesFromHW(hwmodel.Default45, 256)
	if len(ts) != 3 {
		t.Fatalf("want 3 techniques, got %d", len(ts))
	}
	if !(ts[0].EncDelayNS < ts[1].EncDelayNS && ts[1].EncDelayNS < ts[2].EncDelayNS) {
		t.Errorf("delay ordering wrong: %+v", ts)
	}
	// VCC within the paper's 1.8-2 ns band, RCC above.
	if ts[1].EncDelayNS < 1.5 || ts[1].EncDelayNS > 2.1 {
		t.Errorf("VCC delay %v ns outside calibration", ts[1].EncDelayNS)
	}
	if ts[2].EncDelayNS < 2.3 {
		t.Errorf("RCC delay %v ns too low", ts[2].EncDelayNS)
	}
}

// TestFig13Claims pins the paper's Fig. 13 statements: DBI/Flipcy have
// negligible impact; VCC averages < 2% slowdown; RCC averages < 3%; per
// benchmark, IPC(DBI) >= IPC(VCC) >= IPC(RCC); all values in (0.92, 1].
func TestFig13Claims(t *testing.T) {
	cfg := DefaultTableII()
	bms := trace.Benchmarks()
	techs := TechniquesFromHW(hwmodel.Default45, 256)
	results := Fig13(cfg, bms, techs)
	if len(results) != len(bms)*3 {
		t.Fatalf("result count %d", len(results))
	}
	byTech := map[string][]float64{}
	byBench := map[string]map[string]float64{}
	for _, r := range results {
		if r.NormalizedIPC <= 0.92 || r.NormalizedIPC > 1 {
			t.Errorf("%s/%s IPC %v outside Fig 13 axis range",
				r.Benchmark, r.Technique, r.NormalizedIPC)
		}
		byTech[r.Technique] = append(byTech[r.Technique], r.NormalizedIPC)
		if byBench[r.Benchmark] == nil {
			byBench[r.Benchmark] = map[string]float64{}
		}
		byBench[r.Benchmark][r.Technique] = r.NormalizedIPC
	}
	if m := stats.Mean(byTech["DBI/Flipcy"]); m < 0.995 {
		t.Errorf("DBI/Flipcy mean IPC %v, want negligible impact", m)
	}
	if m := stats.Mean(byTech["VCC"]); m < 0.98 {
		t.Errorf("VCC mean IPC %v, want < 2%% slowdown", m)
	}
	if m := stats.Mean(byTech["RCC"]); m < 0.97 {
		t.Errorf("RCC mean IPC %v, want < 3%% slowdown", m)
	}
	for b, m := range byBench {
		if !(m["DBI/Flipcy"] >= m["VCC"] && m["VCC"] >= m["RCC"]) {
			t.Errorf("%s: ordering violated %v", b, m)
		}
	}
}

// TestWriteIntensityDrivesImpact: memory-intensive benchmarks see larger
// slowdowns under the same encoder.
func TestWriteIntensityDrivesImpact(t *testing.T) {
	cfg := DefaultTableII()
	lbm, _ := trace.SpecByName("lbm_s") // highest write intensity
	gcc, _ := trace.SpecByName("gcc_s") // low write intensity
	tech := Technique{Name: "VCC", EncDelayNS: 1.9}
	if NormalizedIPC(cfg, lbm, tech) >= NormalizedIPC(cfg, gcc, tech) {
		t.Error("higher write intensity should cost more IPC")
	}
}

func TestZeroDelayIsBaseline(t *testing.T) {
	cfg := DefaultTableII()
	spec, _ := trace.SpecByName("lbm_s")
	if got := NormalizedIPC(cfg, spec, Technique{Name: "none"}); got != 1 {
		t.Errorf("zero-delay IPC = %v, want 1", got)
	}
}
