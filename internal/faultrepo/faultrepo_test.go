package faultrepo

import (
	"testing"

	"repro/internal/pcm"
	"repro/internal/prng"
)

func TestEmptyRepo(t *testing.T) {
	r := New(pcm.MLC, 4)
	d, hit := r.Lookup(0)
	if d.StuckMask != 0 || hit {
		t.Error("empty repo should return empty descriptor, cache miss")
	}
	if r.FaultyWords() != 0 || r.KnownStuckCells() != 0 {
		t.Error("fresh repo not empty")
	}
}

func TestDiscoveryViaVerify(t *testing.T) {
	r := New(pcm.MLC, 4)
	// Verify mismatch on symbol 3 (bits 6-7): desired 01, stored 10.
	desired := uint64(0b01) << 6
	stored := uint64(0b10) << 6
	if n := r.RecordVerify(9, desired, stored); n != 1 {
		t.Errorf("discovered %d cells, want 1", n)
	}
	d, _ := r.Lookup(9)
	if d.StuckMask != uint64(0b11)<<6 {
		t.Errorf("mask = %#x", d.StuckMask)
	}
	if d.StuckVal != stored {
		t.Errorf("val = %#x", d.StuckVal)
	}
	// Same mismatch again: nothing new.
	if n := r.RecordVerify(9, desired, stored); n != 0 {
		t.Errorf("rediscovered %d cells", n)
	}
}

func TestDiscoveryMarksWholeCell(t *testing.T) {
	// A single wrong bit in an MLC cell marks both digits stuck.
	r := New(pcm.MLC, 4)
	r.RecordVerify(0, 0, 1) // right digit of cell 0 differs
	d, _ := r.Lookup(0)
	if d.StuckMask != 0b11 {
		t.Errorf("mask = %#b, want whole cell", d.StuckMask)
	}
}

func TestSLCGranularity(t *testing.T) {
	r := New(pcm.SLC, 4)
	if n := r.RecordVerify(0, 0, 1); n != 1 {
		t.Errorf("discovered %d, want 1", n)
	}
	d, _ := r.Lookup(0)
	if d.StuckMask != 1 {
		t.Errorf("SLC mask = %#x, want single bit", d.StuckMask)
	}
}

func TestVerifyCleanWriteDiscoversNothing(t *testing.T) {
	r := New(pcm.MLC, 4)
	if n := r.RecordVerify(0, 0xDEAD, 0xDEAD); n != 0 {
		t.Errorf("clean verify discovered %d cells", n)
	}
}

func TestCacheHitsAndEvictions(t *testing.T) {
	r := New(pcm.MLC, 2)
	r.Lookup(0) // miss, insert
	r.Lookup(0) // hit
	if r.Stats.CacheHits != 1 || r.Stats.CacheMiss != 1 {
		t.Errorf("hits=%d miss=%d", r.Stats.CacheHits, r.Stats.CacheMiss)
	}
	r.Lookup(1) // miss, insert
	r.Lookup(2) // miss, evict LRU (word 0)
	if r.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", r.Stats.Evictions)
	}
	// Word 0 was evicted: next lookup misses again.
	r.Lookup(0)
	if r.Stats.CacheMiss != 4 {
		t.Errorf("miss = %d, want 4", r.Stats.CacheMiss)
	}
}

func TestLRUKeepsHotEntry(t *testing.T) {
	r := New(pcm.MLC, 2)
	r.Lookup(0)
	r.Lookup(1)
	r.Lookup(0) // refresh 0: word 1 is now LRU
	r.Lookup(2) // evicts 1
	r.Lookup(0) // must still hit
	if r.Stats.CacheHits != 2 {
		t.Errorf("hits = %d, want 2 (hot entry evicted?)", r.Stats.CacheHits)
	}
}

func TestUncachedMode(t *testing.T) {
	r := New(pcm.MLC, 0)
	r.Lookup(0)
	r.Lookup(0)
	if r.Stats.CacheHits != 0 || r.Stats.CacheMiss != 2 {
		t.Error("uncached repo should always miss")
	}
	if r.HitRate() != 0 {
		t.Error("hit rate should be 0")
	}
}

// TestTracksDeviceFaults drives a faulty device through verify-style
// discovery and checks the repository converges to the oracle for
// written words.
func TestTracksDeviceFaults(t *testing.T) {
	rng := prng.New(3)
	faults := pcm.Generate(pcm.MLC, 64, pcm.FaultParams{CellRate: 5e-2}, rng)
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: 8, WordsPerRow: 8,
		Faults: faults})
	repo := New(pcm.MLC, 16)
	for pass := 0; pass < 4; pass++ {
		for w := 0; w < 64; w++ {
			desired := rng.Uint64()
			res := dev.Write(w, desired)
			repo.RecordVerify(w, desired, res.Stored)
		}
	}
	// Every stuck cell must have been discovered by now (each pass gives
	// a 3/4 chance per cell of a visible mismatch).
	missing := 0
	for w := 0; w < 64; w++ {
		oracleMask, _ := dev.Stuck(w)
		d, _ := repo.Lookup(w)
		if oracleMask&^d.StuckMask != 0 {
			missing++
		}
	}
	if missing > 2 {
		t.Errorf("%d words still have undiscovered stuck cells after 4 passes", missing)
	}
	// And nothing invented: repo mask must be a subset of the oracle.
	for w := 0; w < 64; w++ {
		oracleMask, oracleVal := dev.Stuck(w)
		d, _ := repo.Lookup(w)
		if d.StuckMask&^oracleMask != 0 {
			t.Fatalf("word %d: repo invented stuck bits", w)
		}
		if d.StuckVal&d.StuckMask != oracleVal&d.StuckMask {
			t.Fatalf("word %d: repo stuck values disagree with oracle", w)
		}
	}
}

func TestStorageBits(t *testing.T) {
	r := New(pcm.MLC, 4)
	if r.StorageBits(1024) != 0 {
		t.Error("empty repo should need no storage")
	}
	r.RecordVerify(5, 0, 1)
	want := 11 + 128 // ceil(log2(1024))+1 index bits + two 64-bit fields
	if got := r.StorageBits(1024); got != want {
		t.Errorf("storage = %d bits, want %d", got, want)
	}
}

func TestString(t *testing.T) {
	if New(pcm.MLC, 4).String() == "" {
		t.Error("empty String")
	}
}

func TestNewPanicsOnNegativeCache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(pcm.MLC, -1)
}
