// Package faultrepo implements the runtime fault repository the paper
// assumes is present (Section III: "Several fault repositories have been
// proposed for efficiently tracking faults up to fault rates approaching
// 1e-2... we assume some such mechanism is in place"), modeled on the
// FLOWER/ArchShield line of work it cites ([20], [26]).
//
// The repository answers the memory controller's per-write question —
// which cells of this word are stuck, and at what values — from a
// bounded on-chip structure instead of the oracle view the device holds:
//
//   - A small fully-associative SRAM cache of per-row fault descriptors
//     (hot rows hit here at access time).
//   - A backing table in a reserved memory region holding descriptors
//     for every faulty row (cache misses model an extra memory access).
//
// Discovery is write-driven: a verify-after-write (the program-and-check
// PCM already performs) reports mismatching cells, which the controller
// records here. The repository therefore lags the oracle until a cell's
// first post-failure write, exactly like a real system.
package faultrepo

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/pcm"
)

// Descriptor records the stuck cells of one word.
type Descriptor struct {
	// StuckMask has every bit of every known-stuck cell set.
	StuckMask uint64
	// StuckVal holds the frozen values at stuck positions.
	StuckVal uint64
}

// Stats counts repository traffic.
type Stats struct {
	Lookups    int64
	CacheHits  int64
	CacheMiss  int64
	Discovered int64 // stuck cells recorded
	Evictions  int64
}

// Repo tracks discovered stuck-at faults per word with a bounded cache
// over a complete backing table.
type Repo struct {
	mode    pcm.CellMode
	table   map[int]Descriptor // backing store: word -> descriptor
	cache   map[int]int        // word -> LRU tick
	cacheSz int
	tick    int
	Stats   Stats
}

// New creates a repository for the given cell mode with a descriptor
// cache of cacheWords entries (0 means uncached: every lookup is a
// miss).
func New(mode pcm.CellMode, cacheWords int) *Repo {
	if cacheWords < 0 {
		panic("faultrepo: negative cache size")
	}
	return &Repo{
		mode:    mode,
		table:   make(map[int]Descriptor),
		cache:   make(map[int]int),
		cacheSz: cacheWords,
	}
}

// Lookup returns the known fault descriptor for a word and whether the
// answer came from the cache (miss implies an extra backing access).
func (r *Repo) Lookup(word int) (Descriptor, bool) {
	r.Stats.Lookups++
	d := r.table[word]
	if r.cacheSz == 0 {
		r.Stats.CacheMiss++
		return d, false
	}
	if _, ok := r.cache[word]; ok {
		r.tick++
		r.cache[word] = r.tick
		r.Stats.CacheHits++
		return d, true
	}
	r.Stats.CacheMiss++
	r.insert(word)
	return d, false
}

func (r *Repo) insert(word int) {
	r.tick++
	if len(r.cache) >= r.cacheSz {
		// Evict the least recently used entry.
		oldest, oldestTick := -1, r.tick+1
		for w, tk := range r.cache {
			if tk < oldestTick {
				oldest, oldestTick = w, tk
			}
		}
		delete(r.cache, oldest)
		r.Stats.Evictions++
	}
	r.cache[word] = r.tick
}

// Peek returns the known fault descriptor for a word without modeling a
// repository access: no lookup is counted and the descriptor cache is
// untouched. It is the metadata view used by repair policy decisions
// (e.g. spare-line selection in memctrl's remapping decorator), as
// opposed to the per-write Lookup the datapath performs.
func (r *Repo) Peek(word int) Descriptor { return r.table[word] }

// RecordVerify digests a verify-after-write outcome: desired is what the
// controller asked the cells to store, stored is what read-back
// returned. Any mismatching cell is recorded as stuck at its read-back
// value. Returns the number of newly discovered stuck cells.
func (r *Repo) RecordVerify(word int, desired, stored uint64) int {
	diff := desired ^ stored
	if diff == 0 {
		return 0
	}
	d := r.table[word]
	var mask uint64
	if r.mode == pcm.MLC {
		mask = bitutil.ExpandSymbolMask(bitutil.CollapseBitMaskToSymbols(diff))
	} else {
		mask = diff
	}
	newBits := mask &^ d.StuckMask
	if newBits == 0 {
		return 0
	}
	d.StuckMask |= newBits
	d.StuckVal = (d.StuckVal &^ newBits) | (stored & newBits)
	r.table[word] = d
	var newly int
	if r.mode == pcm.MLC {
		newly = bitutil.OnesCount(bitutil.CollapseBitMaskToSymbols(newBits))
	} else {
		newly = bitutil.OnesCount(newBits)
	}
	r.Stats.Discovered += int64(newly)
	return newly
}

// KnownStuckCells returns the number of stuck cells recorded so far.
func (r *Repo) KnownStuckCells() int64 { return r.Stats.Discovered }

// FaultyWords returns how many words have at least one known fault.
func (r *Repo) FaultyWords() int { return len(r.table) }

// HitRate returns the cache hit fraction of lookups so far.
func (r *Repo) HitRate() float64 {
	if r.Stats.Lookups == 0 {
		return 0
	}
	return float64(r.Stats.CacheHits) / float64(r.Stats.Lookups)
}

// StorageBits estimates the backing-table footprint: per faulty word,
// one word index plus the descriptor pair. This is the overhead the
// FLOWER/ArchShield papers engineer down; the estimate lets experiments
// report it.
func (r *Repo) StorageBits(totalWords int) int {
	idxBits := 1
	for v := totalWords - 1; v > 0; v >>= 1 {
		idxBits++
	}
	return len(r.table) * (idxBits + 128)
}

// String summarizes the repository.
func (r *Repo) String() string {
	return fmt.Sprintf("faultrepo{words=%d, stuck=%d, hit=%.1f%%}",
		len(r.table), r.Stats.Discovered, 100*r.HitRate())
}
