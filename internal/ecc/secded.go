// Package ecc implements the two fault-mitigation substrates the paper
// compares against (Section II-B): Hamming SECDED(72,64) — single error
// correction, double error detection over 64-bit words with 8 check bits
// — and error-correcting pointers (ECP-N), which remap up to N known
// stuck cells per row to spare replacement cells.
package ecc

import (
	"fmt"
	"math/bits"
)

// SECDED implements the (72,64) Hamming code with an overall parity bit:
// 64 data bits protected by 8 check bits (the classic DRAM/NVM DIMM
// configuration the paper cites as the 12.5% spare-capacity budget).
//
// Layout: the codeword occupies positions 1..71 in classic Hamming
// numbering (power-of-two positions hold check bits, the rest data,
// filled LSB-first), plus an overall parity bit covering the entire
// codeword for double-error detection.
type SECDED struct{}

// Syndrome outcomes.
type SECDEDStatus int

const (
	// OK: no error detected.
	OK SECDEDStatus = iota
	// Corrected: a single-bit error was corrected.
	Corrected
	// Detected: a double-bit error was detected but not corrected.
	Detected
)

// String implements fmt.Stringer.
func (s SECDEDStatus) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("SECDEDStatus(%d)", int(s))
	}
}

// dataPos[i] is the Hamming position (1-based) of data bit i.
var dataPos = func() [64]int {
	var pos [64]int
	i := 0
	for p := 1; i < 64; p++ {
		if p&(p-1) == 0 { // power of two: check bit position
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}()

// Encode computes the 8 check bits for a 64-bit data word. Check bit k
// (k=0..6) is the parity of all positions whose bit k is set; check bit 7
// is overall parity.
func (SECDED) Encode(data uint64) uint8 {
	var check uint8
	for k := 0; k < 7; k++ {
		var par uint64
		for i := 0; i < 64; i++ {
			if dataPos[i]>>uint(k)&1 == 1 {
				par ^= data >> uint(i) & 1
			}
		}
		check |= uint8(par) << uint(k)
	}
	// Overall parity over data and the 7 Hamming check bits.
	overall := uint(bits.OnesCount64(data)+bits.OnesCount8(check&0x7F)) & 1
	check |= uint8(overall) << 7
	return check
}

// Decode checks (and where possible corrects) a received data word and
// check byte. It returns the corrected data and status. On Detected the
// data is returned unmodified and must be treated as lost.
func (s SECDED) Decode(data uint64, check uint8) (uint64, SECDEDStatus) {
	expected := s.Encode(data)
	syndrome := (check ^ expected) & 0x7F
	// Overall parity is verified over the received codeword: data bits,
	// the seven received Hamming check bits, and the received parity bit
	// itself. Any single-bit error flips exactly this sum.
	recvParity := uint(bits.OnesCount64(data)+bits.OnesCount8(check)) & 1
	overallErr := recvParity == 1

	switch {
	case syndrome == 0 && !overallErr:
		return data, OK
	case syndrome == 0 && overallErr:
		// Error in the overall parity bit itself: data intact.
		return data, Corrected
	case overallErr:
		// Single-bit error at Hamming position `syndrome`.
		pos := int(syndrome)
		for i := 0; i < 64; i++ {
			if dataPos[i] == pos {
				return data ^ 1<<uint(i), Corrected
			}
		}
		// Error was in a check bit: data intact.
		return data, Corrected
	default:
		// Non-zero syndrome with even overall parity: double error.
		return data, Detected
	}
}

// CanCorrect reports whether a word with the given number of wrong bits
// (data bits only) is correctable by SECDED.
func (SECDED) CanCorrect(wrongBits int) bool { return wrongBits <= 1 }
