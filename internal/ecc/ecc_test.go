package ecc

import (
	"testing"

	"repro/internal/prng"
)

func TestSECDEDNoError(t *testing.T) {
	var s SECDED
	for _, d := range []uint64{0, 1, ^uint64(0), 0xDEADBEEFCAFEF00D} {
		c := s.Encode(d)
		got, st := s.Decode(d, c)
		if st != OK || got != d {
			t.Errorf("clean word %x decoded to %x status %v", d, got, st)
		}
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	var s SECDED
	rng := prng.New(3)
	for trial := 0; trial < 20; trial++ {
		d := rng.Uint64()
		c := s.Encode(d)
		for b := 0; b < 64; b++ {
			corrupted := d ^ 1<<uint(b)
			got, st := s.Decode(corrupted, c)
			if st != Corrected {
				t.Fatalf("bit %d: status %v, want Corrected", b, st)
			}
			if got != d {
				t.Fatalf("bit %d: got %x, want %x", b, got, d)
			}
		}
	}
}

func TestSECDEDCorrectsCheckBitErrors(t *testing.T) {
	var s SECDED
	d := uint64(0x0123456789ABCDEF)
	c := s.Encode(d)
	for b := 0; b < 8; b++ {
		got, st := s.Decode(d, c^1<<uint(b))
		if st != Corrected {
			t.Errorf("check bit %d: status %v", b, st)
		}
		if got != d {
			t.Errorf("check bit %d: data corrupted to %x", b, got)
		}
	}
}

func TestSECDEDDetectsDoubleErrors(t *testing.T) {
	var s SECDED
	rng := prng.New(5)
	for trial := 0; trial < 300; trial++ {
		d := rng.Uint64()
		c := s.Encode(d)
		b1 := int(rng.Uint64n(64))
		b2 := int(rng.Uint64n(64))
		if b1 == b2 {
			continue
		}
		corrupted := d ^ 1<<uint(b1) ^ 1<<uint(b2)
		_, st := s.Decode(corrupted, c)
		if st != Detected {
			t.Fatalf("double error (%d,%d) status %v, want Detected", b1, b2, st)
		}
	}
}

func TestSECDEDCanCorrect(t *testing.T) {
	var s SECDED
	if !s.CanCorrect(0) || !s.CanCorrect(1) || s.CanCorrect(2) {
		t.Error("CanCorrect thresholds wrong")
	}
}

func TestSECDEDStatusString(t *testing.T) {
	for _, st := range []SECDEDStatus{OK, Corrected, Detected, SECDEDStatus(9)} {
		if st.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestDataPositionsSkipPowersOfTwo(t *testing.T) {
	for _, p := range dataPos {
		if p&(p-1) == 0 {
			t.Errorf("data bit assigned to check position %d", p)
		}
	}
	// All distinct.
	seen := map[int]bool{}
	for _, p := range dataPos {
		if seen[p] {
			t.Errorf("duplicate position %d", p)
		}
		seen[p] = true
	}
}

func TestECPCoverage(t *testing.T) {
	e := NewECP(3, 512)
	if e.N() != 3 {
		t.Error("N wrong")
	}
	for i := 0; i < 3; i++ {
		if !e.Cover(7, i*10) {
			t.Fatalf("cover %d failed within budget", i)
		}
	}
	if e.Cover(7, 100) {
		t.Error("4th pointer should exceed ECP3 budget")
	}
	if e.Covered(7) != 3 {
		t.Errorf("covered = %d", e.Covered(7))
	}
	// Re-covering an existing position succeeds without a new pointer.
	if !e.Cover(7, 10) {
		t.Error("re-cover should succeed")
	}
	if e.Covered(7) != 3 {
		t.Error("re-cover consumed a pointer")
	}
	// Other rows unaffected.
	if !e.Cover(8, 5) {
		t.Error("other row should have fresh budget")
	}
}

func TestECPIsCovered(t *testing.T) {
	e := NewECP(2, 64)
	e.Cover(0, 13)
	if !e.IsCovered(0, 13) || e.IsCovered(0, 14) || e.IsCovered(1, 13) {
		t.Error("IsCovered wrong")
	}
}

func TestECPCorrectMask(t *testing.T) {
	e := NewECP(3, 64)
	e.Cover(2, 0)
	e.Cover(2, 63)
	if got := e.CorrectMask(2); got != 1|1<<63 {
		t.Errorf("mask = %#x", got)
	}
}

func TestECPReset(t *testing.T) {
	e := NewECP(1, 64)
	e.Cover(0, 1)
	e.Reset()
	if e.Covered(0) != 0 {
		t.Error("reset did not clear pointers")
	}
}

func TestECPPointerBits(t *testing.T) {
	// 512-bit row: 9 position bits + replacement + valid = 11 per entry.
	e := NewECP(6, 512)
	if got := e.PointerBits(); got != 66 {
		t.Errorf("pointer bits = %d, want 66", got)
	}
}

func TestECPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewECP(3, 64).Cover(0, 64)
}
