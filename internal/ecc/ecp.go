package ecc

import (
	"fmt"
	"math/bits"
)

// ECP implements error-correcting pointers (Schechter et al., ISCA 2010).
// Each protected row carries N (pointer, replacement-cell) pairs: when a
// cell is identified as stuck, its position is recorded in a pointer and
// its intended value is served from the replacement cell. ECP corrects
// hard (stuck-at) faults regardless of the stuck value, but only N of
// them per row; the paper evaluates ECP6-per-512-bit-row scaled to the
// iso-area ECP3 per 64-bit word configuration labeled "ECP3".
//
// The implementation tracks pointers per row index. Replacement cells
// are modeled as fault-free (as in the original proposal's analysis; the
// paper notes ECP "is inefficient if faults occur within the ECP
// pointers" — that failure mode is outside both models).
type ECP struct {
	n        int
	rowBits  int
	pointers map[int][]int // row -> positions covered (bit positions)
}

// NewECP creates an ECP corrector with n pointers per row of rowBits
// bits.
func NewECP(n, rowBits int) *ECP {
	if n < 0 || rowBits <= 0 {
		panic(fmt.Sprintf("ecc: bad ECP config n=%d rowBits=%d", n, rowBits))
	}
	return &ECP{n: n, rowBits: rowBits, pointers: make(map[int][]int)}
}

// N returns the pointer budget per row.
func (e *ECP) N() int { return e.n }

// PointerBits returns the per-row auxiliary storage in bits:
// n * (ceil(log2(rowBits)) + 1 replacement bit) + n valid bits.
func (e *ECP) PointerBits() int {
	lg := bits.Len(uint(e.rowBits - 1))
	return e.n * (lg + 2)
}

// Covered returns how many stuck positions of the row are covered.
func (e *ECP) Covered(row int) int { return len(e.pointers[row]) }

// Cover attempts to allocate a pointer for a stuck bit position in the
// row. It returns true if the position is (now) covered, false if the
// row's pointer budget is exhausted. Covering an already-covered
// position is a no-op returning true.
func (e *ECP) Cover(row, pos int) bool {
	if pos < 0 || pos >= e.rowBits {
		panic(fmt.Sprintf("ecc: ECP position %d out of row of %d bits", pos, e.rowBits))
	}
	ps := e.pointers[row]
	for _, p := range ps {
		if p == pos {
			return true
		}
	}
	if len(ps) >= e.n {
		return false
	}
	e.pointers[row] = append(ps, pos)
	return true
}

// IsCovered reports whether the row position has a pointer.
func (e *ECP) IsCovered(row, pos int) bool {
	for _, p := range e.pointers[row] {
		if p == pos {
			return true
		}
	}
	return false
}

// CorrectMask returns a bit mask (over a rowBits-wide row, rowBits <= 64)
// of positions whose values are served from replacement cells — i.e.
// positions at which stuck-at-wrong values are repaired.
func (e *ECP) CorrectMask(row int) uint64 {
	if e.rowBits > 64 {
		panic("ecc: CorrectMask requires rowBits <= 64")
	}
	var m uint64
	for _, p := range e.pointers[row] {
		m |= 1 << uint(p)
	}
	return m
}

// Reset clears all pointers (new simulation run).
func (e *ECP) Reset() { e.pointers = make(map[int][]int) }
