package campaign

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRunUnknownName(t *testing.T) {
	_, err := Run("no-such-scenario", DefaultParams(1))
	if err == nil {
		t.Fatal("unknown scenario did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no-such-scenario") {
		t.Errorf("error does not name the bad scenario: %q", msg)
	}
	for _, known := range Names() {
		if !strings.Contains(msg, known) {
			t.Errorf("error does not list registered scenario %q: %q", known, msg)
		}
	}
}

func TestListDeterministicAndSorted(t *testing.T) {
	first := List()
	if len(first) == 0 {
		t.Fatal("no scenarios registered")
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Name >= first[i].Name {
			t.Errorf("List not strictly sorted: %q before %q", first[i-1].Name, first[i].Name)
		}
	}
	for i := 0; i < 5; i++ {
		if again := List(); !reflect.DeepEqual(first, again) {
			t.Fatalf("List changed across calls: %v vs %v", first, again)
		}
	}
	for _, in := range first {
		if in.Title == "" || Describe(in.Name) != in.Title {
			t.Errorf("scenario %q has inconsistent title", in.Name)
		}
	}
	want := []string{"chaos", "crash-recovery", "fault-aging", "remap-repair", "wearlevel-rotation"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("required scenario %q not registered (have %v)", w, names)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		fn()
	}
	dummy := func(Params) *Result { return &Result{} }
	expectPanic("empty name", func() { Register("", "t", dummy) })
	expectPanic("nil runner", func() { Register("x-nil", "t", nil) })
	expectPanic("duplicate", func() { Register("fault-aging", "t", dummy) })
}

// tinyParams keeps every scenario to a few hundred ops so the whole
// table runs green under -race in seconds.
func tinyParams() Params {
	return Params{Seed: 7, Shards: 2, Lines: 64, Horizon: 512, Checkpoints: 2}
}

// TestScenariosTinyScale runs every registered scenario at reduced
// horizon and checks the structural contract (well-formed table, finite
// summary) plus each scenario's headline invariant.
func TestScenariosTinyScale(t *testing.T) {
	for _, info := range List() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(info.Name, tinyParams())
			if err != nil {
				t.Fatal(err)
			}
			if res.Name != info.Name {
				t.Errorf("Result.Name = %q, want %q", res.Name, info.Name)
			}
			if len(res.Header) == 0 || len(res.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range res.Rows {
				if len(row) != len(res.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(res.Header))
				}
			}
			for k, v := range res.Summary {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("summary %q = %v, want finite", k, v)
				}
			}
			if out := res.Table(); !strings.Contains(out, info.Name) {
				t.Error("Table() does not carry the scenario name")
			}

			switch info.Name {
			case "fault-aging":
				// VCC-Stored approximates random coset coding; the curve
				// must track the ERCC model within a loose envelope.
				if re := res.Summary["rel_err_final"]; re > 0.35 {
					t.Errorf("rel_err_final = %v, want <= 0.35", re)
				}
				if res.Summary["ext_measured_final"] <= 1 {
					t.Errorf("measured extension %v not above unencoded baseline",
						res.Summary["ext_measured_final"])
				}
			case "remap-repair":
				if v := res.Summary["verify_violations"]; v != 0 {
					t.Errorf("verify_violations = %v, want 0", v)
				}
				if res.Summary["corrupt_remap"] > res.Summary["corrupt_baseline"] {
					t.Errorf("repair made corruption worse: %v > %v",
						res.Summary["corrupt_remap"], res.Summary["corrupt_baseline"])
				}
			case "wearlevel-rotation":
				if ext := res.Summary["extension"]; ext < 1 {
					t.Errorf("rotation extension = %v, want >= 1", ext)
				}
			case "crash-recovery":
				if v := res.Summary["verify_violations"]; v != 0 {
					t.Errorf("verify_violations = %v, want 0", v)
				}
				if res.Summary["dirty_lost"] == 0 {
					t.Error("no dirty lines at the crash point: the scenario exercised nothing")
				}
				if res.Summary["evicted_committed"] == 0 {
					t.Error("no evicted lines at the crash point: subset fits the cache entirely")
				}
			case "chaos":
				if v := res.Summary["verify_violations"]; v != 0 {
					t.Errorf("verify_violations = %v, want 0", v)
				}
				if v := res.Summary["untyped_failures"]; v != 0 {
					t.Errorf("untyped_failures = %v, want 0", v)
				}
				if res.Summary["device_errors"] == 0 {
					t.Error("no device errors observed: chaos injected nothing")
				}
			}
		})
	}
}

// TestScenariosDeterministic pins every scenario to identical results
// across repeated runs with the same Params (the engine guarantees this
// at any worker count; the scenario layer must not break it).
func TestScenariosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: tiny-scale determinism is covered by -race CI runs")
	}
	for _, info := range List() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			p := tinyParams()
			a, err := Run(info.Name, p)
			if err != nil {
				t.Fatal(err)
			}
			p.Workers = 1 // results must not depend on worker count
			b, err := Run(info.Name, p)
			if err != nil {
				t.Fatal(err)
			}
			if info.Name == "chaos" {
				// The chaos scenario spans real TCP connections and
				// concurrent tenants, so its traffic counters are
				// timing-dependent; its deterministic contract is the
				// invariant summary.
				for _, k := range []string{"verify_violations", "untyped_failures"} {
					if a.Summary[k] != b.Summary[k] {
						t.Errorf("summary %q differs across runs: %v vs %v",
							k, a.Summary[k], b.Summary[k])
					}
				}
				return
			}
			if !reflect.DeepEqual(a.Rows, b.Rows) {
				t.Errorf("rows differ across runs:\n%v\nvs\n%v", a.Rows, b.Rows)
			}
			if !reflect.DeepEqual(a.Summary, b.Summary) {
				t.Errorf("summary differs across runs: %v vs %v", a.Summary, b.Summary)
			}
		})
	}
}
