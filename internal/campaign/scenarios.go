package campaign

// This file registers the built-in scenarios. Each is deterministic in
// its Params at any shard/worker count, builds its engines from
// internal/shard directly (the same convention the experiments drivers
// follow), and reports a machine-checkable Summary alongside the table.

import (
	"bytes"
	"fmt"

	"repro/internal/analytic"
	"repro/internal/coset"
	"repro/internal/linecache"
	"repro/internal/prng"
	"repro/internal/shard"
	"repro/internal/wearlevel"
)

func init() {
	Register("fault-aging",
		"age a wear-enabled memory until cells stick; checkpoint the lifetime-extension curve against the analytic ERCC model",
		runFaultAging)
	Register("remap-repair",
		"discover faults by verify-after-write and repair failing lines onto spares via the remapping decorator",
		runRemapRepair)
	Register("wearlevel-rotation",
		"rotate a hot write stream with Start-Gap and measure writes-to-first-cell-failure against the unrotated baseline",
		runWearRotation)
	Register("crash-recovery",
		"drop a write-back cache mid-stream and verify the recovered device against write-through oracle semantics",
		runCrashRecovery)
}

var campaignKey = [32]byte{0xC4, 0x3E, 0x19}

// cosetN is the paper's headline candidate count, shared by every
// scenario so the analytic comparisons line up.
const cosetN = 256

func orI(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func orI64(v, def int64) int64 {
	if v <= 0 {
		return def
	}
	return v
}

// --- fault-aging -------------------------------------------------------

// runFaultAging writes uniformly random (encrypted) data over a
// wear-enabled SLC memory until the write horizon, checkpointing the
// measured lifetime extension — unencoded expected flips per 64-bit
// word (32) over measured flips per word — against the analytic model
// 32/ERCC(64, N) from Equation 1. SLC is used because ERCC counts
// changed *bits* of the 64-bit block, which is exactly what an SLC cell
// stores; as wear accumulates, cells stick and the stuck-at-wrong count
// climbs, tracing how the encoder degrades with age.
func runFaultAging(p Params) *Result {
	lines := orI(p.Lines, 128)
	horizon := orI64(p.Horizon, 120_000)
	checkpoints := orI(p.Checkpoints, 8)
	eng, err := shard.New(shard.Config{
		Lines:           lines,
		Shards:          orI(p.Shards, 1),
		Workers:         p.Workers,
		NewCodec:        func() coset.Codec { return coset.NewVCCStored(64, 16, cosetN, p.Seed) },
		Objective:       coset.ObjFlips,
		SLC:             true,
		Key:             campaignKey,
		EnduranceWrites: 6000,
		Seed:            p.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("campaign fault-aging: %v", err))
	}
	defer eng.Close()

	modelExt := 32 / analytic.ERCC(64, cosetN)
	res := &Result{
		Name:  "fault-aging",
		Title: fmt.Sprintf("Lifetime-extension curve vs analytic ERCC model (VCC %d, SLC, wear-enabled)", cosetN),
		Header: []string{"checkpoint", "line_writes", "flips_per_word",
			"ext_measured", "ext_model", "rel_err", "saw_cells", "failed_cells"},
		Notes: []string{
			"ext_measured = 32 / measured flips per 64-bit word; 32 is the unencoded expectation for random data",
			fmt.Sprintf("ext_model = 32 / ERCC(64, %d) = %.4g (Equation 1, best-of-N random cosets)", cosetN, modelExt),
			"VCC approximates random coset coding with stored kernels, so a modest gap to the model is expected",
			"saw_cells and failed_cells climb as wear exhausts cells: the encoder keeps masking until it cannot",
		},
		Summary: map[string]float64{"ext_model": modelExt},
	}

	addrRNG := prng.NewFrom(p.Seed, "campaign-aging-addr")
	dataRNG := prng.NewFrom(p.Seed, "campaign-aging-data")
	const batch = 256
	ops := make([]shard.Op, 0, batch)
	bufs := make([]byte, batch*shard.LineSize)
	var outs []shard.Outcome
	var written int64
	prev := eng.Stats()
	perCheckpoint := horizon / int64(checkpoints)
	if perCheckpoint < 1 {
		perCheckpoint = 1
	}
	for ck := 1; ck <= checkpoints; ck++ {
		target := written + perCheckpoint
		for written < target {
			n := batch
			if rem := target - written; rem < int64(n) {
				n = int(rem)
			}
			ops = ops[:0]
			for i := 0; i < n; i++ {
				data := bufs[i*shard.LineSize : (i+1)*shard.LineSize]
				dataRNG.Fill(data)
				ops = append(ops, shard.Op{
					Kind: shard.OpWrite, Line: addrRNG.Intn(lines), Data: data,
				})
			}
			out, err := eng.Apply(ops, outs)
			if err != nil {
				panic(fmt.Sprintf("campaign fault-aging: %v", err))
			}
			outs = out
			written += int64(n)
		}
		st := eng.Stats()
		d := st.Delta(prev)
		prev = st
		flipsPerWord := float64(d.BitFlips) / (8 * float64(d.LineWrites))
		extMeasured := 32 / flipsPerWord
		relErr := (extMeasured - modelExt) / modelExt
		if relErr < 0 {
			relErr = -relErr
		}
		res.Rows = append(res.Rows, []string{
			fmtI(int64(ck)), fmtI(written), fmtF(flipsPerWord),
			fmtF(extMeasured), fmtF(modelExt), fmtF(relErr),
			fmtI(st.SAWCells), fmtI(eng.FailedCells()),
		})
		res.Summary["rel_err_final"] = relErr
		res.Summary["ext_measured_final"] = extMeasured
	}
	res.Summary["failed_cells"] = float64(eng.FailedCells())
	res.Summary["line_writes"] = float64(written)
	return res
}

// --- remap-repair ------------------------------------------------------

// runRemapRepair runs the same faulty write workload against two
// engines — spares disabled and spares enabled — under the runtime
// fault repository. Faults are unknown until a verify-after-write
// catches them, so first writes to faulty words store stuck-at-wrong
// cells; with spares the remapping decorator relocates those lines and
// rewrites them, and the final read-back pass checks the repair
// contract: every line whose last write reported zero SAW cells must
// read back exactly what was written.
func runRemapRepair(p Params) *Result {
	lines := orI(p.Lines, 128)
	passes := int(orI64(p.Horizon, int64(3*lines)) / int64(lines))
	if passes < 1 {
		passes = 1
	}
	spares := lines / 4
	if spares < 1 {
		spares = 1
	}
	res := &Result{
		Name:  "remap-repair",
		Title: fmt.Sprintf("Fault discovery and line repair (VCC %d, MLC, 1e-2 faults, runtime fault repository)", cosetN),
		Header: []string{"config", "line_writes", "remapped", "repair_failures",
			"spares_left", "repo_stuck", "corrupt_lines", "clean_violations"},
		Notes: []string{
			"faults are discovered by verify-after-write: the repository starts empty and lags the device",
			"corrupt_lines counts lines whose read-back differs from the last written plaintext",
			"clean_violations counts corrupt lines whose final write nevertheless reported zero SAW cells — must be 0",
			"with spares=0 the decorator is absent and discovered-but-unmaskable faults stay corrupt",
		},
		Summary: map[string]float64{},
	}
	for _, cfg := range []struct {
		label  string
		spares int
	}{{"no-remap", 0}, {fmt.Sprintf("remap-%d", spares), spares}} {
		eng, err := shard.New(shard.Config{
			Lines:        lines,
			Shards:       orI(p.Shards, 1),
			Workers:      p.Workers,
			NewCodec:     func() coset.Codec { return coset.NewVCCStored(64, 16, cosetN, p.Seed) },
			Objective:    coset.ObjSAWEnergy,
			Key:          campaignKey,
			FaultRate:    1e-2,
			Seed:         p.Seed,
			RemapSpares:  cfg.spares,
			UseFaultRepo: true,
		})
		if err != nil {
			panic(fmt.Sprintf("campaign remap-repair: %v", err))
		}
		dataRNG := prng.NewFrom(p.Seed, "campaign-remap-data:"+cfg.label)
		expected := make([]byte, lines*shard.LineSize)
		cleanWrite := make([]bool, lines)
		var lineWrites int64
		for pass := 0; pass < passes; pass++ {
			for l := 0; l < lines; l++ {
				data := expected[l*shard.LineSize : (l+1)*shard.LineSize]
				dataRNG.Fill(data)
				saw, err := eng.Write(l, data)
				if err != nil {
					panic(fmt.Sprintf("campaign remap-repair: %v", err))
				}
				cleanWrite[l] = saw == 0
				lineWrites++
			}
		}
		corrupt, violations := 0, 0
		rd := make([]byte, shard.LineSize)
		for l := 0; l < lines; l++ {
			got, err := eng.Read(l, rd)
			if err != nil {
				panic(fmt.Sprintf("campaign remap-repair: %v", err))
			}
			if !bytes.Equal(got, expected[l*shard.LineSize:(l+1)*shard.LineSize]) {
				corrupt++
				if cleanWrite[l] {
					violations++
				}
			}
		}
		st := eng.Stats()
		repo := eng.FaultRepoStats()
		res.Rows = append(res.Rows, []string{
			cfg.label, fmtI(lineWrites), fmtI(st.RemappedLines), fmtI(st.RepairFailures),
			fmtI(int64(eng.SpareLinesLeft())), fmtI(repo.Discovered),
			fmtI(int64(corrupt)), fmtI(int64(violations)),
		})
		if cfg.spares == 0 {
			res.Summary["corrupt_baseline"] = float64(corrupt)
		} else {
			res.Summary["corrupt_remap"] = float64(corrupt)
			res.Summary["remapped_lines"] = float64(st.RemappedLines)
			res.Summary["spares_left"] = float64(eng.SpareLinesLeft())
		}
		res.Summary["verify_violations"] += float64(violations)
		eng.Close()
	}
	return res
}

// --- wearlevel-rotation ------------------------------------------------

// runWearRotation drives an identical hot-spot write stream into two
// identically-seeded wear-enabled engines — one addressed directly, one
// through Start-Gap rotation (gap copies are real engine writes and
// wear cells, as in internal/lifetime) — and measures how many writes
// each survives before the first cell exhausts its endurance.
func runWearRotation(p Params) *Result {
	lines := orI(p.Lines, 32)
	horizon := orI64(p.Horizon, 120_000)
	// The gap must sweep the whole array many times before the weakest
	// hot cell dies, or the mapping never rotates hot lines off their
	// physical rows; one full sweep costs (lines+1)*gapInterval writes.
	const gapInterval = 8
	const pollEvery = 64
	hot := lines / 8
	if hot < 1 {
		hot = 1
	}
	res := &Result{
		Name:  "wearlevel-rotation",
		Title: fmt.Sprintf("Start-Gap rotation under a hot-spot stream (VCC %d, MLC, wear-enabled)", cosetN),
		Header: []string{"config", "writes_to_first_fail", "capped",
			"gap_moves", "failed_cells"},
		Notes: []string{
			fmt.Sprintf("70%% of writes hit the first %d of %d lines; both engines replay the same logical stream", hot, lines),
			fmt.Sprintf("rotation: Start-Gap over %d physical lines, gap moves every %d writes; each move copies one line through the engine (real wear)", lines+1, gapInterval),
			"first-fail is polled every " + fmt.Sprint(pollEvery) + " writes, so counts are quantized to that grain",
		},
		Summary: map[string]float64{},
	}
	firstFail := map[string]float64{}
	for _, rotate := range []bool{false, true} {
		// Both engines have lines+1 physical rows (the rotated one needs
		// the Start-Gap spare; the baseline just never touches it), so
		// the per-cell endurance draws are identical.
		eng, err := shard.New(shard.Config{
			Lines:           lines + 1,
			Shards:          1,
			NewCodec:        func() coset.Codec { return coset.NewVCCStored(64, 16, cosetN, p.Seed) },
			Objective:       coset.ObjFlips,
			Key:             campaignKey,
			EnduranceWrites: 4000,
			Seed:            p.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("campaign wearlevel-rotation: %v", err))
		}
		var sg *wearlevel.StartGap
		label := "direct"
		if rotate {
			sg = wearlevel.NewStartGap(lines, gapInterval)
			label = "start-gap"
		}
		addrRNG := prng.NewFrom(p.Seed, "campaign-rotate-addr")
		dataRNG := prng.NewFrom(p.Seed, "campaign-rotate-data")
		data := make([]byte, shard.LineSize)
		copyBuf := make([]byte, shard.LineSize)
		var writes int64
		failedAt := int64(-1)
		for writes < horizon {
			logical := addrRNG.Intn(lines)
			if addrRNG.Float64() < 0.7 {
				logical = addrRNG.Intn(hot)
			}
			dataRNG.Fill(data)
			row := logical
			if sg != nil {
				row = sg.Map(logical)
			}
			if _, err := eng.Write(row, data); err != nil {
				panic(fmt.Sprintf("campaign wearlevel-rotation: %v", err))
			}
			writes++
			if sg != nil {
				if from, to, moved := sg.OnWrite(); moved {
					// Relocate the displaced row through the engine: the
					// copy re-encodes and wears cells, the real Start-Gap
					// overhead.
					got, err := eng.Read(from, copyBuf)
					if err != nil {
						panic(fmt.Sprintf("campaign wearlevel-rotation: %v", err))
					}
					if _, err := eng.Write(to, got); err != nil {
						panic(fmt.Sprintf("campaign wearlevel-rotation: %v", err))
					}
				}
			}
			if failedAt < 0 && writes%pollEvery == 0 && eng.FailedCells() > 0 {
				failedAt = writes
				break
			}
		}
		capped := "no"
		if failedAt < 0 {
			failedAt = horizon
			capped = "yes"
		}
		var moves int64
		if sg != nil {
			moves = sg.GapMoves()
		}
		res.Rows = append(res.Rows, []string{
			label, fmtI(failedAt), capped, fmtI(moves), fmtI(eng.FailedCells()),
		})
		firstFail[label] = float64(failedAt)
		eng.Close()
	}
	res.Summary["first_fail_direct"] = firstFail["direct"]
	res.Summary["first_fail_rotated"] = firstFail["start-gap"]
	res.Summary["extension"] = firstFail["start-gap"] / firstFail["direct"]
	return res
}

// --- crash-recovery ----------------------------------------------------

// runCrashRecovery fills a write-back cached engine, commits everything
// with a Flush, rewrites a subset of lines without flushing, then drops
// the volatile caches mid-stream (a simulated power cut) and verifies
// the recovered device against write-through oracle semantics: a
// rewritten line that was still dirty at the crash must read back its
// last committed (phase-1) content, a rewritten line that had already
// been evicted to the device must read back its phase-2 content, and
// every untouched line keeps phase-1. Exactly one phase-2 write per
// line makes the oracle exact: the dirty set snapshot fully determines
// which version the device holds.
func runCrashRecovery(p Params) *Result {
	lines := orI(p.Lines, 256)
	shards := orI(p.Shards, 1)
	perShardCache := orI(lines/(8*shards), 4)
	eng, err := shard.New(shard.Config{
		Lines:       lines,
		Shards:      shards,
		Workers:     p.Workers,
		NewCodec:    func() coset.Codec { return coset.NewVCCStored(64, 16, cosetN, p.Seed) },
		Objective:   coset.ObjEnergySAW,
		Key:         campaignKey,
		Seed:        p.Seed,
		CacheLines:  perShardCache,
		CachePolicy: linecache.WriteBack,
	})
	if err != nil {
		panic(fmt.Sprintf("campaign crash-recovery: %v", err))
	}
	defer eng.Close()

	dataRNG := prng.NewFrom(p.Seed, "campaign-crash-data")
	phase1 := make([]byte, lines*shard.LineSize)
	phase2 := make([]byte, lines*shard.LineSize)

	// Phase 1: write every line, then Flush — all of it is committed.
	for l := 0; l < lines; l++ {
		data := phase1[l*shard.LineSize : (l+1)*shard.LineSize]
		dataRNG.Fill(data)
		if _, err := eng.Write(l, data); err != nil {
			panic(fmt.Sprintf("campaign crash-recovery: %v", err))
		}
	}
	eng.Flush()

	// Phase 2: rewrite every other line once, no flush. The subset is
	// larger than the cache, so some rewrites are evicted to the device
	// (committed) and the rest are still dirty when the power cuts.
	rewritten := make([]bool, lines)
	for l := 0; l < lines; l += 2 {
		data := phase2[l*shard.LineSize : (l+1)*shard.LineSize]
		dataRNG.Fill(data)
		if _, err := eng.Write(l, data); err != nil {
			panic(fmt.Sprintf("campaign crash-recovery: %v", err))
		}
		rewritten[l] = true
	}

	// Crash: snapshot what is about to be lost, then lose it.
	dirty := eng.DirtyLines()
	isDirty := make(map[int]bool, len(dirty))
	for _, l := range dirty {
		isDirty[l] = true
	}
	eng.DropCaches()

	// Recovery: read every line from device state and check the oracle.
	violations, committed := 0, 0
	rd := make([]byte, shard.LineSize)
	for l := 0; l < lines; l++ {
		want := phase1[l*shard.LineSize : (l+1)*shard.LineSize]
		if rewritten[l] && !isDirty[l] {
			want = phase2[l*shard.LineSize : (l+1)*shard.LineSize]
			committed++
		}
		got, err := eng.Read(l, rd)
		if err != nil {
			panic(fmt.Sprintf("campaign crash-recovery: %v", err))
		}
		if !bytes.Equal(got, want) {
			violations++
		}
	}
	st := eng.Stats()
	res := &Result{
		Name:  "crash-recovery",
		Title: fmt.Sprintf("Write-back cache power loss and device-state recovery (%d lines, %d shard(s), %d cache lines/shard)", lines, shards, perShardCache),
		Header: []string{"lines", "rewritten", "dirty_lost", "evicted_committed",
			"writebacks", "verify_violations"},
		Rows: [][]string{{
			fmtI(int64(lines)), fmtI(int64((lines + 1) / 2)), fmtI(int64(len(dirty))),
			fmtI(int64(committed)), fmtI(st.Writebacks), fmtI(int64(violations)),
		}},
		Notes: []string{
			"dirty_lost lines revert to their last committed (phase-1) content; evicted_committed lines keep phase-2",
			"the coset aux bits and any remap table live in the device's persistent metadata region, so both survive the crash",
			"verify_violations must be 0: device state after DropCaches is exactly the committed write-through history",
		},
		Summary: map[string]float64{
			"verify_violations": float64(violations),
			"dirty_lost":        float64(len(dirty)),
			"evicted_committed": float64(committed),
		},
	}
	return res
}
