package campaign

// The chaos scenario is the resilience capstone: it stands up the real
// network service over a fault-injecting engine and machine-checks the
// end-to-end failure contract from the client's seat. Unlike the other
// scenarios it spans the full stack — chaos decorator, backend retry,
// wire statuses, admission control, client backoff/reconnect — so its
// traffic counters (retries, sheds) are timing-dependent; only the
// invariant summary (verify_violations, untyped failures) is
// deterministic, and it must be zero.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	vcc "repro"
	"repro/internal/prng"
	"repro/internal/server"
)

func init() {
	Register("chaos",
		"inject device faults, latency and admission pressure under the network service; verify no silent corruption and exact counter reconciliation",
		runChaos)
}

// chaosTenantResult is one tenant's client-side tally.
type chaosTenantResult struct {
	ops, ok, devErr, busy, retries, reconnects, transport int64
	corruptions, reconcileErrs, untypedFailures           int64
	err                                                   error
}

// runChaos drives tenants concurrently through retrying clients
// against a served engine whose chaos decorator fails, corrupts and
// stalls ops, with an in-flight budget small enough to shed under
// load. Three invariants are machine-checked, each a
// verify_violations contribution:
//
//   - No silent corruption: every read that returns without error must
//     equal the tenant's last acknowledged write of that line.
//   - Typed failure: an op that still fails after the client's retry
//     budget must fail as a *server.StatusError (or a transport
//     error) — never by returning bad data.
//   - Exact reconciliation: after recovery, each tenant's server-side
//     Ops count equals its OK responses plus its device-error
//     responses; shed (busy) requests are charged to nobody.
func runChaos(p Params) *Result {
	lines := orI(p.Lines, 256)
	horizon := orI64(p.Horizon, 20_000)
	tenants := 4
	if lines < tenants {
		tenants = 1
	}
	perTenant := horizon / int64(tenants)
	if perTenant < 1 {
		perTenant = 1
	}

	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:  lines,
		Shards: orI(p.Shards, 1),
		Seed:   p.Seed,
		Key:    campaignKey,
		// Rates are per backend attempt; the controller retries each op
		// twice, so a fault only reaches the wire when three draws in a
		// row fail (~6% per op at these rates) — high enough that every
		// run exercises the device-error path end to end.
		Chaos: &vcc.ChaosSpec{
			ReadErrRate:     0.3,
			WriteErrRate:    0.3,
			TornWriteRate:   0.1,
			ReadCorruptRate: 0.1,
			StallRate:       0.01,
			StallDelay:      50 * time.Microsecond,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("campaign chaos: %v", err))
	}
	defer mem.Close()
	// An in-flight budget of half the tenant count guarantees admission
	// pressure: with every tenant keeping one op in flight, some
	// requests must shed with StatusBusy and win through on retry.
	srv, err := server.New(server.Config{
		Mem:            mem,
		Tenants:        tenants,
		MaxInflightOps: (tenants + 1) / 2,
		WriteTimeout:   5 * time.Second,
	})
	if err != nil {
		panic(fmt.Sprintf("campaign chaos: %v", err))
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("campaign chaos: %v", err))
	}
	go srv.Serve(l)
	defer srv.Stop()
	addr := l.Addr().String()

	results := make([]chaosTenantResult, tenants)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			results[tn] = runChaosTenant(addr, tn, perTenant, p.Seed)
		}(tn)
	}
	wg.Wait()

	res := &Result{
		Name:  "chaos",
		Title: "end-to-end failure contract under injected device faults and admission pressure",
		Header: []string{"tenant", "ops", "ok", "device_errors", "busy",
			"retries", "reconnects", "corruptions", "reconcile_errs"},
		Notes: []string{
			"chaos rates per backend attempt: 30% read/write transient, 10% torn-write, 10% read-corruption, 1% stalls",
			"every fault is surfaced typed (StatusDeviceError/StatusBusy); retried ops must converge to clean data",
			"server Ops per tenant must equal OK + device-error responses exactly (busy sheds charged to nobody)",
			"traffic counters are timing-dependent; the violation counts are the deterministic contract",
		},
		Summary: map[string]float64{},
	}
	var violations, totRetries, totDevErr, totBusy, totReconnects, totUntyped float64
	for tn := range results {
		r := &results[tn]
		if r.err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("tenant %d: %v", tn, r.err))
			violations++
		}
		violations += float64(r.corruptions + r.reconcileErrs + r.untypedFailures)
		totRetries += float64(r.retries)
		totDevErr += float64(r.devErr)
		totBusy += float64(r.busy)
		totReconnects += float64(r.reconnects)
		totUntyped += float64(r.untypedFailures)
		res.Rows = append(res.Rows, []string{
			fmtI(int64(tn)), fmtI(r.ops), fmtI(r.ok), fmtI(r.devErr), fmtI(r.busy),
			fmtI(r.retries), fmtI(r.reconnects), fmtI(r.corruptions), fmtI(r.reconcileErrs),
		})
	}
	res.Summary["verify_violations"] = violations
	res.Summary["untyped_failures"] = totUntyped
	res.Summary["retries"] = totRetries
	res.Summary["device_errors"] = totDevErr
	res.Summary["busy_shed"] = totBusy
	res.Summary["reconnects"] = totReconnects
	return res
}

// runChaosTenant is one tenant's client loop plus its final
// verification pass.
func runChaosTenant(addr string, tenant int, ops int64, seed uint64) chaosTenantResult {
	var r chaosTenantResult
	c, err := server.DialRetryOpts(addr, 5*time.Second, server.ClientOpts{
		OpTimeout:  5 * time.Second,
		MaxRetries: 500,
		RetryBase:  50 * time.Microsecond,
		RetryMax:   2 * time.Millisecond,
		Seed:       seed ^ uint64(tenant)<<32,
	})
	if err != nil {
		r.err = err
		return r
	}
	defer c.Close()
	slice, err := c.Hello(tenant)
	if err != nil {
		r.err = err
		return r
	}

	rng := prng.NewFrom(seed, fmt.Sprintf("campaign-chaos-%d", tenant))
	shadow := map[uint64][]byte{}
	data := make([]byte, server.LineSize)
	for i := int64(0); i < ops; i++ {
		line := rng.Uint64n(slice)
		if rng.Float64() < 0.4 && shadow[line] != nil {
			got, err := c.Read(line, nil)
			if err != nil {
				if !typedFailure(err) {
					r.untypedFailures++
				}
				continue
			}
			r.ok++
			if !bytes.Equal(got, shadow[line]) {
				r.corruptions++
			}
		} else {
			rng.Fill(data)
			if _, err := c.Write(line, data); err != nil {
				if !typedFailure(err) {
					r.untypedFailures++
				}
				continue
			}
			r.ok++
			shadow[line] = append(shadow[line][:0], data...)
		}
	}

	// Recovery pass: after the fault storm every acknowledged write must
	// read back exactly, through whatever retries it takes.
	for line, want := range shadow {
		got, err := c.Read(line, nil)
		if err != nil {
			if !typedFailure(err) {
				r.untypedFailures++
			}
			continue
		}
		r.ok++
		if !bytes.Equal(got, want) {
			r.corruptions++
		}
	}

	r.devErr = c.DeviceErrorResponses()
	r.busy = c.BusyResponses()
	r.retries = c.Retries()
	r.reconnects = c.Reconnects()
	r.transport = c.TransportErrors()

	st, err := c.Stats()
	if err != nil {
		r.err = err
		return r
	}
	r.ops = st.Ops
	// Exact reconciliation: every admitted op is accounted once — the
	// requests that came back OK plus those that came back device-error.
	if st.Ops != r.ok+r.devErr {
		r.reconcileErrs++
	}
	return r
}

// typedFailure reports whether a final op failure is contractual: a
// typed wire status or a transport-level error (which the client
// surfaces as such, never as data).
func typedFailure(err error) bool {
	var se *server.StatusError
	if errors.As(err, &se) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) || errors.Is(err, net.ErrClosed)
}
