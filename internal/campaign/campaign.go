// Package campaign implements long-horizon scenario campaigns over the
// sharded engine: named end-to-end runs in which stuck-at cells
// accumulate under the wear model, the fault-repair remapping decorator
// relocates failing lines onto spares, Start-Gap wear leveling rotates
// hot lines, and a simulated power loss drops the volatile cache layer
// mid-stream. Where the experiments package reproduces individual paper
// figures from steady-state statistics, a campaign exercises the
// *trajectory*: how the system degrades, repairs and recovers over many
// writes, checkpointed against internal/analytic's closed-form model
// where one exists.
//
// Scenarios are registered by name in an init-time registry and are
// deterministic in their Params; cmd/vccrepro exposes them via
// -campaign <name>, and the table-driven tests in campaign_test.go run
// every registered scenario at reduced horizon under the race detector.
package campaign

import (
	"fmt"
	"sort"
	"strings"
)

// Params configures one campaign run. Every scenario is deterministic
// in its Params: same Params, same Result, at any worker count.
type Params struct {
	// Seed drives all stochastic state (cell endurance, data, streams).
	Seed uint64
	// Shards is the engine shard count; 0 defaults to 1.
	Shards int
	// Workers bounds drainer parallelism; 0 defaults to the shard count.
	// Results never depend on it.
	Workers int
	// Lines is the logical line capacity; 0 lets the scenario choose.
	Lines int
	// Horizon is the op budget (row writes for aging scenarios, total
	// ops otherwise); 0 lets the scenario choose. The CI smoke step and
	// the unit tests pass reduced horizons through this knob.
	Horizon int64
	// Checkpoints is the number of curve points aging scenarios report;
	// 0 lets the scenario choose.
	Checkpoints int
}

// DefaultParams returns the laptop-scale defaults scenarios assume when
// a Params field is zero.
func DefaultParams(seed uint64) Params {
	return Params{Seed: seed, Shards: 1}
}

// Result is one finished campaign, rendered like an experiments.Result
// (aligned table plus notes) with an additional machine-readable
// summary for tests and smoke checks.
type Result struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Summary carries the scenario's headline scalars (e.g. the final
	// model relative error, lines repaired, lines verified) keyed by
	// stable names, so tests assert outcomes without parsing table text.
	Summary map[string]float64
}

// Table renders an aligned text table with title, notes and summary.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== campaign %s: %s ==\n", r.Name, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	keys := make([]string, 0, len(r.Summary))
	for k := range r.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "summary: %s = %.6g\n", k, r.Summary[k])
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner executes one scenario.
type Runner func(p Params) *Result

// Info describes one registered scenario.
type Info struct {
	Name  string
	Title string
}

type entry struct {
	title string
	run   Runner
}

var registry = map[string]entry{}

// Register adds a named scenario; it panics on an empty name, nil
// runner, or duplicate registration (scenario files register from init,
// so a duplicate is a programming error, not a runtime condition).
func Register(name, title string, run Runner) {
	if name == "" {
		panic("campaign: empty scenario name")
	}
	if run == nil {
		panic("campaign: nil runner for " + name)
	}
	if _, dup := registry[name]; dup {
		panic("campaign: duplicate scenario " + name)
	}
	registry[name] = entry{title: title, run: run}
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List returns all registered scenarios sorted by name.
func List() []Info {
	infos := make([]Info, 0, len(registry))
	for _, n := range Names() {
		infos = append(infos, Info{Name: n, Title: registry[n].title})
	}
	return infos
}

// Describe returns a scenario's one-line title ("" if unknown).
func Describe(name string) string { return registry[name].title }

// Run executes one scenario by name. An unknown name returns an error
// listing the registered scenarios.
func Run(name string, p Params) (*Result, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown scenario %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return e.run(p), nil
}

// fmtF formats a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtI formats an integer cell.
func fmtI(v int64) string { return fmt.Sprintf("%d", v) }
