package linecache

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/memctrl"
)

// stubStore is a deterministic in-memory LineStore for cache-semantics
// tests. Lines listed in corrupt have their first byte inverted by every
// write — the stub's stand-in for a stuck-at-wrong cell — and the write
// outcome reports one SAW cell, exactly like a real controller would.
type stubStore struct {
	lines   map[int]*[LineSize]byte
	corrupt map[int]bool
	stats   memctrl.Stats
	outc    [1]memctrl.WordOutcome
}

func newStub(corrupt ...int) *stubStore {
	s := &stubStore{lines: map[int]*[LineSize]byte{}, corrupt: map[int]bool{}}
	for _, l := range corrupt {
		s.corrupt[l] = true
	}
	return s
}

func (s *stubStore) WriteLine(line int, plaintext []byte) ([]memctrl.WordOutcome, error) {
	buf, ok := s.lines[line]
	if !ok {
		buf = new([LineSize]byte)
		s.lines[line] = buf
	}
	copy(buf[:], plaintext)
	s.stats.LineWrites++
	saw := 0
	if s.corrupt[line] {
		buf[0] ^= 0xFF
		saw = 1
		s.stats.SAWCells++
	}
	s.outc[0] = memctrl.WordOutcome{Word: line * memctrl.WordsPerLine, SAWCells: saw}
	return s.outc[:], nil
}

func (s *stubStore) ReadLine(line int, dst []byte) ([]byte, error) {
	if dst == nil {
		dst = make([]byte, LineSize)
	}
	if buf, ok := s.lines[line]; ok {
		copy(dst, buf[:])
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	s.stats.LineReads++
	return dst, nil
}

// readMust is a test convenience over the error-carrying ReadLine for
// a stub that never fails.
func (s *stubStore) readMust(line int) []byte {
	out, _ := s.ReadLine(line, nil)
	return out
}

func (s *stubStore) Flush() error         { return nil }
func (s *stubStore) Stats() memctrl.Stats { return s.stats }
func (s *stubStore) ResetStats()          { s.stats = memctrl.Stats{} }
func (s *stubStore) NumLines() int        { return 1 << 20 }

func mk(t *testing.T, inner memctrl.LineStore, lines int, p Policy) *Cache {
	t.Helper()
	c, err := New(Config{Inner: inner, Lines: lines, Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func line(b byte) []byte {
	d := make([]byte, LineSize)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Lines: 4}); err == nil {
		t.Error("want error for missing inner store")
	}
	if _, err := New(Config{Inner: newStub(), Lines: 0}); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := New(Config{Inner: newStub(), Lines: 4, Policy: Policy(9)}); err == nil {
		t.Error("want error for unknown policy")
	}
}

// TestShortBufferPanics: both policies must reject malformed buffers
// identically — a write-back absorb must not silently truncate input
// the controller would have panicked on.
func TestShortBufferPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: short buffer did not panic", name)
			}
		}()
		f()
	}
	for _, p := range []Policy{WriteThrough, WriteBack} {
		c := mk(t, newStub(), 4, p)
		expectPanic(fmt.Sprintf("WriteLine/%v", p), func() { c.WriteLine(0, make([]byte, 8)) })
		expectPanic(fmt.Sprintf("ReadLine/%v", p), func() { c.ReadLine(0, make([]byte, 8)) })
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"wt": WriteThrough, "writethrough": WriteThrough,
		"wb": WriteBack, "writeback": WriteBack,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePolicy("lru"); err == nil {
		t.Error("want error for unknown policy name")
	}
}

// TestWriteThroughSemantics: writes reach the inner store immediately
// and in order; subsequent reads hit the cache and never touch the
// inner read pipeline.
func TestWriteThroughSemantics(t *testing.T) {
	inner := newStub()
	c := mk(t, inner, 8, WriteThrough)
	for l := 0; l < 4; l++ {
		outs, err := c.WriteLine(l, line(byte(l+1)))
		if err != nil || len(outs) != 1 {
			t.Fatalf("write-through must pass outcomes through, got %d (err %v)", len(outs), err)
		}
	}
	if inner.stats.LineWrites != 4 {
		t.Fatalf("inner saw %d writes, want 4", inner.stats.LineWrites)
	}
	for l := 0; l < 4; l++ {
		got, _ := c.ReadLine(l, nil)
		if !bytes.Equal(got, line(byte(l+1))) {
			t.Fatalf("line %d: wrong plaintext", l)
		}
	}
	if inner.stats.LineReads != 0 {
		t.Errorf("read hits leaked to the inner store: %d", inner.stats.LineReads)
	}
	st := c.Stats()
	if st.CacheHits != 4 || st.CacheMisses != 0 {
		t.Errorf("hits=%d misses=%d, want 4/0", st.CacheHits, st.CacheMisses)
	}
	if hr := c.HitRate(); hr != 1 {
		t.Errorf("hit rate %v, want 1", hr)
	}
}

// TestWriteBackCoalescing: repeated writes to one hot line must reach
// the device exactly once, at Flush.
func TestWriteBackCoalescing(t *testing.T) {
	inner := newStub()
	c := mk(t, inner, 8, WriteBack)
	for i := 0; i < 10; i++ {
		if outs, _ := c.WriteLine(3, line(byte(i))); len(outs) != 0 {
			t.Fatalf("deferred write returned %d outcomes, want none", len(outs))
		}
	}
	if inner.stats.LineWrites != 0 {
		t.Fatalf("deferred writes leaked: inner saw %d", inner.stats.LineWrites)
	}
	if got := c.Stats().CoalescedWrites; got != 9 {
		t.Fatalf("coalesced %d writes, want 9", got)
	}
	if c.DirtyLines() != 1 {
		t.Fatalf("dirty lines %d, want 1", c.DirtyLines())
	}
	c.Flush()
	if inner.stats.LineWrites != 1 {
		t.Fatalf("flush issued %d device writes, want 1", inner.stats.LineWrites)
	}
	if !bytes.Equal(inner.readMust(3), line(9)) {
		t.Fatal("device holds a stale version after flush")
	}
	if c.DirtyLines() != 0 {
		t.Error("lines still dirty after flush")
	}
	c.Flush() // idempotent
	if inner.stats.LineWrites != 1 || c.Stats().Writebacks != 1 {
		t.Error("second flush must be a no-op")
	}
	// The flushed line stays cached (clean): reads still hit.
	if got, _ := c.ReadLine(3, nil); !bytes.Equal(got, line(9)) {
		t.Fatal("flushed line lost from cache")
	}
	if c.Stats().CacheMisses != 0 {
		t.Error("read after flush missed; clean line should stay cached")
	}
}

// TestLRUEviction: capacity overflow evicts the least recently used
// line; dirty victims are written back, clean ones dropped silently.
func TestLRUEviction(t *testing.T) {
	inner := newStub()
	c := mk(t, inner, 2, WriteBack)
	c.WriteLine(1, line(1))
	c.WriteLine(2, line(2))
	c.ReadLine(1, nil) // 1 becomes MRU; 2 is now the victim
	c.WriteLine(3, line(3))
	if inner.stats.LineWrites != 1 {
		t.Fatalf("eviction issued %d writebacks, want 1 (line 2)", inner.stats.LineWrites)
	}
	if !bytes.Equal(inner.readMust(2), line(2)) {
		t.Fatal("evicted dirty line not written back")
	}
	st := c.Stats()
	if st.CacheEvictions != 1 || st.Writebacks != 1 {
		t.Errorf("evictions=%d writebacks=%d, want 1/1", st.CacheEvictions, st.Writebacks)
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d lines, want 2", c.Len())
	}
	// Clean eviction: read-miss install of line 4 evicts clean line 1
	// (LRU after the line-3 write) with no writeback.
	c.Flush()
	before := inner.stats.LineWrites
	c.ReadLine(4, nil)
	if inner.stats.LineWrites != before {
		t.Error("clean eviction must not write back")
	}
}

// TestFaultVisibilityWriteThrough: when the device corrupts a
// write-through store (SAW cells in the outcome), the cache must not
// retain the clean plaintext — the very next read has to observe the
// corruption, exactly as it would uncached.
func TestFaultVisibilityWriteThrough(t *testing.T) {
	inner := newStub(5)
	c := mk(t, inner, 8, WriteThrough)
	want := line(0xAB)
	outs, _ := c.WriteLine(5, want)
	if sawCells(outs) == 0 {
		t.Fatal("stub did not report the SAW cell")
	}
	got, _ := c.ReadLine(5, nil)
	if bytes.Equal(got, want) {
		t.Fatal("cache masked the stuck-at-wrong corruption")
	}
	if !bytes.Equal(got, inner.readMust(5)) {
		t.Fatal("cached read diverges from device contents")
	}
	// The corrupted read-miss result is now cached; further reads hit
	// and still return the corrupted bytes.
	again, _ := c.ReadLine(5, nil)
	if !bytes.Equal(again, got) {
		t.Fatal("repeated read changed contents")
	}
	if c.Stats().CacheHits != 1 {
		t.Error("second read should hit the (corrupted) cached copy")
	}
}

// TestFaultVisibilityWriteBack: before the deferred writeback the cache
// legitimately serves the stored plaintext (the device holds nothing
// newer); after eviction or Flush the corruption must read back.
func TestFaultVisibilityWriteBack(t *testing.T) {
	t.Run("eviction", func(t *testing.T) {
		inner := newStub(7)
		c := mk(t, inner, 1, WriteBack)
		want := line(0x11)
		c.WriteLine(7, want)
		if got, _ := c.ReadLine(7, nil); !bytes.Equal(got, want) {
			t.Fatal("pre-eviction read must serve the pending plaintext")
		}
		c.WriteLine(8, line(0x22)) // capacity 1: evicts 7, corrupting writeback
		got, _ := c.ReadLine(7, nil)
		if bytes.Equal(got, want) {
			t.Fatal("post-eviction read masked the corruption")
		}
	})
	t.Run("flush", func(t *testing.T) {
		inner := newStub(7)
		c := mk(t, inner, 4, WriteBack)
		want := line(0x11)
		c.WriteLine(7, want)
		c.Flush()
		got, _ := c.ReadLine(7, nil)
		if bytes.Equal(got, want) {
			t.Fatal("post-flush read masked the corruption")
		}
		if !bytes.Equal(got, inner.readMust(7)) {
			t.Fatal("post-flush read diverges from device contents")
		}
	})
}

// TestFlushOrderDeterministic: Flush walks the LRU list, so the inner
// store sees dirty lines least-recently-used first, independent of map
// iteration order.
func TestFlushOrderDeterministic(t *testing.T) {
	order := []int{}
	inner := &orderStub{stubStore: *newStub(), order: &order}
	c := mk(t, inner, 8, WriteBack)
	for _, l := range []int{4, 2, 6, 1} {
		c.WriteLine(l, line(byte(l)))
	}
	c.ReadLine(2, nil) // 2 becomes MRU
	c.Flush()
	want := []int{4, 6, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("flushed %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("flushed %v, want %v", order, want)
		}
	}
}

type orderStub struct {
	stubStore
	order *[]int
}

func (s *orderStub) WriteLine(line int, plaintext []byte) ([]memctrl.WordOutcome, error) {
	*s.order = append(*s.order, line)
	return s.stubStore.WriteLine(line, plaintext)
}

// TestInvalidate drops everything without writebacks.
func TestInvalidate(t *testing.T) {
	inner := newStub()
	c := mk(t, inner, 4, WriteBack)
	c.WriteLine(1, line(1))
	c.WriteLine(2, line(2))
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d lines after Invalidate", c.Len())
	}
	if inner.stats.LineWrites != 0 {
		t.Error("Invalidate must not write back")
	}
}

// TestResetStats zeroes counters but keeps contents.
func TestResetStats(t *testing.T) {
	inner := newStub()
	c := mk(t, inner, 4, WriteBack)
	c.WriteLine(1, line(9))
	c.ReadLine(1, nil)
	c.ResetStats()
	if st := c.Stats(); st != (memctrl.Stats{}) {
		t.Errorf("stats not cleared: %+v", st)
	}
	if got, _ := c.ReadLine(1, nil); !bytes.Equal(got, line(9)) {
		t.Error("ResetStats must not drop cached contents")
	}
}
