// Package linecache implements a per-shard LRU cache of decoded 64-byte
// plaintext lines, layered as a memctrl.LineStore decorator between
// shard.Engine and the memory controller.
//
// The paper's datapath pays coset decode + AES-CTR decrypt on every read
// and a full encode + encrypt + read-modify-write on every writeback.
// With SPEC-like read fractions of 0.55-0.78 most traffic is reads that
// keep hitting the same hot lines, so caching the decoded plaintext in
// front of the controller removes the bulk of that work:
//
//   - WriteThrough: every write still goes straight to the device (the
//     paper's per-writeback energy accounting is untouched), but the
//     plaintext is retained so subsequent read hits skip decode+decrypt.
//   - WriteBack: writes are absorbed into the cache and marked dirty;
//     the device write (encode + encrypt + RMW) is deferred until the
//     line is evicted or Flush is called, so repeated writes to a hot
//     line coalesce into one device writeback.
//
// Fault visibility. The cache must not mask the paper's failure mode:
// data stored over stuck-at-wrong cells has to read back corrupted. Two
// rules guarantee that. First, read misses install exactly the (possibly
// corrupted) plaintext the inner store returned. Second, whenever a
// device write reports SAW cells the cached copy is discarded instead of
// retained, so the next read falls through to the device and observes
// the corruption. A dirty write-back line legitimately serves its stored
// plaintext before eviction: the device has not been written yet, so no
// corruption exists to observe.
//
// The cache is deterministic: hits, evictions and flush order depend
// only on the sequence of calls, never on map iteration order (eviction
// follows the intrusive LRU list; Flush walks that list too). Steady
// state allocates nothing: evicted entries are recycled through a free
// list. Like every LineStore, a Cache is not safe for concurrent use;
// shard.Engine serializes access per shard.
package linecache

import (
	"fmt"

	"repro/internal/cryptmem"
	"repro/internal/memctrl"
)

// LineSize is the cached line granularity in bytes.
const LineSize = cryptmem.LineSize

// Policy selects how writes interact with the cache.
type Policy uint8

const (
	// WriteThrough sends every write to the inner store immediately and
	// caches the plaintext for later read hits. Post-write device state
	// is bit-identical to running without the cache.
	WriteThrough Policy = iota
	// WriteBack absorbs writes into the cache and defers the device
	// writeback until eviction or Flush, coalescing repeated writes to
	// the same line into one device RMW.
	WriteBack
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case WriteThrough:
		return "writethrough"
	case WriteBack:
		return "writeback"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParsePolicy maps the accepted spellings ("writethrough"/"wt",
// "writeback"/"wb") to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "writethrough", "wt":
		return WriteThrough, nil
	case "writeback", "wb":
		return WriteBack, nil
	}
	return 0, fmt.Errorf("linecache: unknown policy %q (writethrough|wt|writeback|wb)", s)
}

// Config assembles a Cache.
type Config struct {
	// Inner is the decorated store (required). In the engine's stack
	// this is the shard's memctrl.Controller.
	Inner memctrl.LineStore
	// Lines is the cache capacity in 64-byte lines (required, > 0).
	Lines int
	// Policy selects write-through (default) or write-back.
	Policy Policy
}

// entry is one cached line, threaded on the intrusive LRU list.
type entry struct {
	line       int
	dirty      bool
	data       [LineSize]byte
	prev, next *entry
}

// Cache is an LRU decoded-line cache decorating an inner LineStore.
type Cache struct {
	inner  memctrl.LineStore
	policy Policy
	cap    int

	byLine map[int]*entry
	// head/tail delimit the LRU list: head.next is most recent,
	// tail.prev is the eviction victim. Both are sentinels.
	head, tail entry
	// free recycles evicted entries so steady state allocates nothing.
	free *entry

	hits      int64
	misses    int64
	evictions int64
	// writebacks counts deferred device writes issued on eviction/Flush.
	writebacks int64
	// coalesced counts writes absorbed into an already-dirty line.
	coalesced int64
}

var _ memctrl.LineStore = (*Cache)(nil)

// New builds a Cache over cfg.Inner.
func New(cfg Config) (*Cache, error) {
	if cfg.Inner == nil {
		return nil, fmt.Errorf("linecache: Inner store is required")
	}
	if cfg.Lines <= 0 {
		return nil, fmt.Errorf("linecache: Lines must be positive, got %d", cfg.Lines)
	}
	if cfg.Policy != WriteThrough && cfg.Policy != WriteBack {
		return nil, fmt.Errorf("linecache: unknown policy %d", cfg.Policy)
	}
	c := &Cache{
		inner:  cfg.Inner,
		policy: cfg.Policy,
		cap:    cfg.Lines,
		byLine: make(map[int]*entry, cfg.Lines),
	}
	c.head.next, c.tail.prev = &c.tail, &c.head
	return c, nil
}

// Policy returns the write policy.
func (c *Cache) Policy() Policy { return c.policy }

// Cap returns the capacity in lines.
func (c *Cache) Cap() int { return c.cap }

// Len returns the number of currently cached lines.
func (c *Cache) Len() int { return len(c.byLine) }

// NumLines implements LineStore.
func (c *Cache) NumLines() int { return c.inner.NumLines() }

// --- LRU list plumbing -------------------------------------------------

func (c *Cache) unlink(e *entry) {
	e.prev.next, e.next.prev = e.next, e.prev
}

func (c *Cache) pushFront(e *entry) {
	e.prev, e.next = &c.head, c.head.next
	e.prev.next, e.next.prev = e, e
}

func (c *Cache) touch(e *entry) {
	c.unlink(e)
	c.pushFront(e)
}

// drop removes e from the cache entirely and recycles it.
func (c *Cache) drop(e *entry) {
	c.unlink(e)
	delete(c.byLine, e.line)
	e.next = c.free
	c.free = e
}

// newEntry returns a recycled (or freshly allocated) entry for line.
func (c *Cache) newEntry(line int) *entry {
	e := c.free
	if e != nil {
		c.free = e.next
	} else {
		e = &entry{}
	}
	e.line, e.dirty = line, false
	return e
}

// install binds line to a fresh MRU entry, evicting the LRU victim if
// the cache is full, and returns it. A failed dirty-victim writeback
// aborts the install: the victim stays cached and dirty (its data is
// never dropped on a device error), and the caller decides how to
// serve the triggering operation without a cache slot.
func (c *Cache) install(line int) (*entry, error) {
	if len(c.byLine) >= c.cap {
		if err := c.evict(c.tail.prev); err != nil {
			return nil, err
		}
	}
	e := c.newEntry(line)
	c.byLine[line] = e
	c.pushFront(e)
	return e, nil
}

// evict removes the given entry, writing it back first when dirty. On a
// writeback device error the entry is kept, still dirty, so the data
// survives for a later retry (eviction or Flush).
func (c *Cache) evict(e *entry) error {
	if e.dirty {
		if _, err := c.inner.WriteLine(e.line, e.data[:]); err != nil {
			return err
		}
		c.writebacks++
		e.dirty = false
	}
	c.evictions++
	c.drop(e)
	return nil
}

// --- LineStore implementation ------------------------------------------

// sawCells sums the stuck-at-wrong cells of one write's outcomes.
func sawCells(outs []memctrl.WordOutcome) int {
	saw := 0
	for i := range outs {
		saw += outs[i].SAWCells
	}
	return saw
}

// WriteLine implements LineStore. Under WriteThrough the write reaches
// the device immediately and the per-word outcomes pass through
// verbatim; under WriteBack the plaintext is absorbed into the cache and
// an empty outcome slice is returned (the device outcomes materialize on
// eviction or Flush, visible through Stats).
//
// Device errors never strand state silently: a failed write-through
// drops any cached copy (the device state is untrusted, so the next
// read must fall through and observe it) and propagates the error; a
// write-back absorb whose victim eviction fails forwards this one write
// straight to the inner store instead, so the op either persists or
// fails typed while the victim stays cached and dirty for a later
// retry.
func (c *Cache) WriteLine(line int, plaintext []byte) ([]memctrl.WordOutcome, error) {
	if len(plaintext) != LineSize {
		// Validate before absorbing: under WriteBack a short buffer would
		// otherwise be truncated silently instead of panicking like the
		// controller does, and the two policies must reject alike.
		panic("linecache: WriteLine needs a 64-byte line")
	}
	if c.policy == WriteThrough {
		outs, err := c.inner.WriteLine(line, plaintext)
		if err != nil || sawCells(outs) > 0 {
			// The device mangled the line (SAW) or the write failed;
			// retaining clean plaintext would mask that on the next hit.
			if e, ok := c.byLine[line]; ok {
				c.drop(e)
			}
			return outs, err
		}
		e, ok := c.byLine[line]
		if !ok {
			var ierr error
			if e, ierr = c.install(line); ierr != nil {
				// Write-through caches have no dirty victims, so install
				// cannot fail here in a pure-WT stack; guard anyway and
				// serve the (successful) write uncached.
				return outs, nil
			}
		} else {
			c.touch(e)
		}
		copy(e.data[:], plaintext)
		return outs, nil
	}
	// WriteBack: absorb, defer the device write.
	e, ok := c.byLine[line]
	if !ok {
		var ierr error
		if e, ierr = c.install(line); ierr != nil {
			// No slot: the LRU victim's writeback failed. Write this op
			// through directly so it either persists now or fails typed;
			// its outcomes pass through like a write-through op's.
			return c.inner.WriteLine(line, plaintext)
		}
	} else {
		c.touch(e)
		if e.dirty {
			c.coalesced++
		}
	}
	e.dirty = true
	copy(e.data[:], plaintext)
	return nil, nil
}

// ReadLine implements LineStore: hits copy the cached plaintext into dst
// without touching the decode+decrypt pipeline; misses fall through to
// the inner store and install whatever it returned (corruption
// included). A failed inner read propagates without installing
// anything; a failed dirty-victim eviction merely skips the install —
// the read itself succeeded and the victim's data stays cached and
// dirty, retried on the next eviction or Flush.
func (c *Cache) ReadLine(line int, dst []byte) ([]byte, error) {
	if dst == nil {
		dst = make([]byte, LineSize)
	}
	if len(dst) != LineSize {
		panic("linecache: ReadLine needs a 64-byte buffer")
	}
	if e, ok := c.byLine[line]; ok {
		c.touch(e)
		copy(dst, e.data[:])
		c.hits++
		return dst, nil
	}
	c.misses++
	out, err := c.inner.ReadLine(line, dst)
	if err != nil {
		return out, err
	}
	if e, ierr := c.install(line); ierr == nil {
		copy(e.data[:], out)
	}
	return out, nil
}

// Flush implements LineStore: every dirty line is written back to the
// inner store (in LRU-list order, least recent first — deterministic)
// and marked clean; entries whose writeback reported SAW cells are
// dropped so the corruption stays visible. Clean entries stay cached.
// A writeback device error leaves that entry dirty (its data survives
// for the next Flush); the walk continues so one bad line cannot
// strand the rest, and the first error is returned after the full pass.
func (c *Cache) Flush() error {
	var first error
	for e := c.tail.prev; e != &c.head; {
		prev := e.prev
		if e.dirty {
			outs, err := c.inner.WriteLine(e.line, e.data[:])
			if err != nil {
				if first == nil {
					first = err
				}
				e = prev
				continue
			}
			c.writebacks++
			e.dirty = false
			if sawCells(outs) > 0 {
				c.drop(e)
			}
		}
		e = prev
	}
	if err := c.inner.Flush(); err != nil && first == nil {
		first = err
	}
	return first
}

// Invalidate drops every cached line without writing anything back.
// Dirty data is lost; callers that need it persisted must Flush first.
func (c *Cache) Invalidate() {
	for e := c.tail.prev; e != &c.head; {
		prev := e.prev
		c.drop(e)
		e = prev
	}
}

// Stats implements LineStore: the inner store's counters plus this
// cache's. LineWrites/LineReads keep their device-level meaning (RMWs
// programmed, lines decoded); logical request-level totals decompose as
//
//	reads served  = LineReads + CacheHits
//	writes served = LineWrites + CoalescedWrites + still-dirty lines
//
// and after a Flush the still-dirty term is zero: every absorbed write
// has either become one of the deferred device writebacks or was
// coalesced away — which is exactly the device work the write-back
// policy eliminated.
func (c *Cache) Stats() memctrl.Stats {
	s := c.inner.Stats()
	s.CacheHits += c.hits
	s.CacheMisses += c.misses
	s.CacheEvictions += c.evictions
	s.Writebacks += c.writebacks
	s.CoalescedWrites += c.coalesced
	return s
}

// ResetStats implements LineStore, zeroing cache and inner counters.
// Cached contents (including dirty lines) are untouched.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.evictions, c.writebacks, c.coalesced = 0, 0, 0, 0, 0
	c.inner.ResetStats()
}

// HitRate returns hits / (hits + misses), or 0 before any read.
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// DirtyLineIDs appends the line indices of every dirty cached line to
// dst (least recently used first — the same deterministic order Flush
// writes them back in) and returns it. It is the crash-scenario test
// hook: the exact set of writes that would be lost if the cache's
// volatile contents vanished right now.
func (c *Cache) DirtyLineIDs(dst []int) []int {
	for e := c.tail.prev; e != &c.head; e = e.prev {
		if e.dirty {
			dst = append(dst, e.line)
		}
	}
	return dst
}

// DirtyLines returns the number of cached lines awaiting writeback.
func (c *Cache) DirtyLines() int {
	n := 0
	for e := c.head.next; e != &c.tail; e = e.next {
		if e.dirty {
			n++
		}
	}
	return n
}
