package workload

import (
	"testing"
	"time"
)

func collectMix(t *testing.T, spec string, opts MixOpts, n int) []uint64 {
	t.Helper()
	pat, err := ParseMix(spec, opts)
	if err != nil {
		t.Fatalf("ParseMix(%q): %v", spec, err)
	}
	s := NewStream(opts.Seed, Phase{Pattern: pat})
	lines := make([]uint64, n)
	for i := range lines {
		lines[i], _ = s.Next()
	}
	return lines
}

func TestParseMixDeterministic(t *testing.T) {
	opts := MixOpts{Lines: 4096, Seed: 11, Label: "mix-test"}
	a := collectMix(t, "seq:0.5,zipf:0.4,chase:0.1", opts, 2000)
	b := collectMix(t, "seq:0.5,zipf:0.4,chase:0.1", opts, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same spec+opts diverged at op %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] >= uint64(opts.Lines) {
			t.Fatalf("op %d line %d outside footprint %d", i, a[i], opts.Lines)
		}
	}
	// A different label must derive different zipf/chase streams.
	c := collectMix(t, "zipf:1", opts, 200)
	d := collectMix(t, "zipf:1", MixOpts{Lines: 4096, Seed: 11, Label: "other"}, 200)
	same := 0
	for i := range c {
		if c[i] == d[i] {
			same++
		}
	}
	if same == len(c) {
		t.Fatal("different labels produced identical zipf streams")
	}
}

func TestParseMixNormalizesAndRejects(t *testing.T) {
	// Weights normalize: "seq:2" behaves like "seq:1" (Sequential's
	// cursor starts at line 1).
	a := collectMix(t, "seq:2", MixOpts{Lines: 64, Seed: 1, Label: "n"}, 10)
	for i, l := range a {
		if l != uint64(i+1)%64 {
			t.Fatalf("normalized pure-seq mix not sequential at %d: %d", i, l)
		}
	}
	for _, spec := range []string{"", "seq", "seq:x", "seq:-1", "bogus:1", "seq:0,zipf:0"} {
		if _, err := ParseMix(spec, MixOpts{Lines: 64, Seed: 1, Label: "n"}); err == nil {
			t.Errorf("ParseMix(%q) accepted a bad spec", spec)
		}
	}
	if _, err := ParseMix("seq:1", MixOpts{Lines: 0}); err == nil {
		t.Error("ParseMix accepted a zero footprint")
	}
}

func TestPacer(t *testing.T) {
	// Closed loop: never sleeps, returns now.
	p := NewPacer(0)
	now := time.Now()
	if got := p.Wait(now); !got.Equal(now) {
		t.Fatalf("closed-loop pacer shifted time: %v vs %v", got, now)
	}
	// Open loop: slots advance on the fixed grid regardless of the
	// caller's arrival time.
	p = NewPacer(1000) // 1ms grid
	start := time.Now()
	first := p.Wait(start)
	second := p.Wait(first)
	if !first.Equal(start) {
		t.Fatalf("first slot = %v, want %v", first, start)
	}
	if want := start.Add(time.Millisecond); !second.Equal(want) {
		t.Fatalf("second slot = %v, want %v", second, want)
	}
}
