// Package workload generates synthetic memory access streams: composable
// address patterns (Zipf hot set, sequential stream, strided sweep,
// pointer-chase dependent chain), weighted mixtures of patterns, and
// phased streams that interleave reads and writes at a configurable read
// fraction — the op-stream substrate behind internal/trace's SPEC-like
// benchmarks and the workload-sweep experiment.
//
// Everything is deterministic given the PRNG streams it is constructed
// with, which keeps every consumer (traces, experiments, benchmarks)
// regenerable bit for bit.
//
// The split of responsibilities with internal/trace: this package owns
// *where* accesses go and *whether* they read or write; trace owns the
// benchmark parameterizations and the plaintext the writes carry.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/prng"
	"repro/internal/shard"
)

// scatter is the fixed multiplicative hash used to spread rank-ordered
// hot sets across the footprint rather than packing them at low
// addresses (the same constant internal/trace has always used, so trace
// address streams are preserved bit for bit).
const scatter = 0x9E3779B97F4A7C15

// Pattern generates a deterministic stream of line addresses in
// [0, Lines()). NextLine draws any randomness it needs from the rng the
// caller passes, so one selection stream can drive a whole mixture;
// patterns with private state (cursors, chains, Zipf samplers) advance
// it only when they are actually chosen.
type Pattern interface {
	// Lines is the footprint: every generated address is < Lines.
	Lines() int
	// NextLine returns the next address of the stream.
	NextLine(rng *prng.Rand) uint64
}

// Sequential is a streaming cursor: 1, 2, ..., wrapping at the
// footprint. It models the unit-stride writeback stream of a scientific
// kernel sweeping its grid.
type Sequential struct {
	lines  uint64
	cursor uint64
}

// NewSequential builds a sequential stream over lines addresses.
func NewSequential(lines int) *Sequential {
	mustLines(lines)
	return &Sequential{lines: uint64(lines)}
}

// Lines implements Pattern.
func (s *Sequential) Lines() int { return int(s.lines) }

// NextLine implements Pattern. It consumes no randomness.
func (s *Sequential) NextLine(*prng.Rand) uint64 {
	s.cursor = (s.cursor + 1) % s.lines
	return s.cursor
}

// Strided sweeps the footprint with a fixed stride, modeling column
// walks over row-major arrays and banked-structure hopping.
type Strided struct {
	lines  uint64
	stride uint64
	cursor uint64
}

// NewStrided builds a strided stream; stride < 1 defaults to 1.
func NewStrided(lines, stride int) *Strided {
	mustLines(lines)
	if stride < 1 {
		stride = 1
	}
	return &Strided{lines: uint64(lines), stride: uint64(stride)}
}

// Lines implements Pattern.
func (s *Strided) Lines() int { return int(s.lines) }

// NextLine implements Pattern. It consumes no randomness.
func (s *Strided) NextLine(*prng.Rand) uint64 {
	s.cursor = (s.cursor + s.stride) % s.lines
	return s.cursor
}

// ZipfHot samples a Zipf-skewed hot set: rank r is hit with probability
// proportional to 1/(1+r)^s, and ranks are scattered over the footprint
// by a fixed multiplicative hash so the hot lines are not all adjacent.
type ZipfHot struct {
	lines uint64
	zipf  *rand.Zipf
}

// NewZipfHot builds a Zipf sampler over lines addresses with skew s
// (clamped to > 1, as rand.Zipf requires; higher = hotter hot set),
// drawing from src. The sampler owns src; callers must not share it.
func NewZipfHot(lines int, s float64, src *prng.Rand) *ZipfHot {
	mustLines(lines)
	if s <= 1 {
		s = 1.01
	}
	return &ZipfHot{
		lines: uint64(lines),
		zipf:  rand.NewZipf(rand.New(src), s, 1, uint64(lines-1)),
	}
}

// Lines implements Pattern.
func (z *ZipfHot) Lines() int { return int(z.lines) }

// NextLine implements Pattern. Randomness comes from the sampler's own
// source, not the passed rng, so mixture arms stay decorrelated.
func (z *ZipfHot) NextLine(*prng.Rand) uint64 {
	return (z.zipf.Uint64() * scatter) % z.lines
}

// PointerChase walks a random single-cycle permutation of the
// footprint: each address is determined by the previous one, modeling
// the dependent-load chains of linked-list and graph codes (mcf,
// omnetpp). The cycle visits every line before repeating.
type PointerChase struct {
	next []uint32
	cur  uint64
}

// NewPointerChase builds a dependent chain over lines addresses
// (lines must fit in uint32), using rng to shuffle the permutation.
func NewPointerChase(lines int, rng *prng.Rand) *PointerChase {
	mustLines(lines)
	if lines > 1<<32-1 {
		panic("workload: pointer-chase footprint exceeds uint32")
	}
	// Sattolo's algorithm: a uniformly random cyclic permutation, so the
	// chase is one cycle covering the whole footprint.
	next := make([]uint32, lines)
	for i := range next {
		next[i] = uint32(i)
	}
	for i := lines - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	return &PointerChase{next: next}
}

// Lines implements Pattern.
func (p *PointerChase) Lines() int { return len(p.next) }

// NextLine implements Pattern. It consumes no randomness; the chain was
// fixed at construction.
func (p *PointerChase) NextLine(*prng.Rand) uint64 {
	p.cur = uint64(p.next[p.cur])
	return p.cur
}

// Arm weights a pattern inside a Mixture.
type Arm struct {
	// Frac is the probability this arm serves the next access.
	Frac float64
	// Pattern generates the arm's addresses.
	Pattern Pattern
}

// Mixture picks one of its arms per access by cumulative fraction over
// a single rng draw; the last arm absorbs any remaining probability
// mass. Only the chosen arm's state advances, which is what lets a
// mixture reproduce internal/trace's historical stream+Zipf interleave
// exactly.
type Mixture struct {
	arms  []Arm
	lines int
}

// NewMixture builds a mixture; all arms must share one footprint and
// fractions must be non-negative.
func NewMixture(arms ...Arm) *Mixture {
	if len(arms) == 0 {
		panic("workload: mixture needs at least one arm")
	}
	lines := arms[0].Pattern.Lines()
	for _, a := range arms {
		if a.Frac < 0 {
			panic("workload: negative mixture fraction")
		}
		if a.Pattern.Lines() != lines {
			panic("workload: mixture arms disagree on footprint")
		}
	}
	return &Mixture{arms: arms, lines: lines}
}

// Lines implements Pattern.
func (m *Mixture) Lines() int { return m.lines }

// NextLine implements Pattern: one uniform draw selects the arm.
func (m *Mixture) NextLine(rng *prng.Rand) uint64 {
	f := rng.Float64()
	cum := 0.0
	for i := range m.arms {
		cum += m.arms[i].Frac
		if f < cum || i == len(m.arms)-1 {
			return m.arms[i].Pattern.NextLine(rng)
		}
	}
	panic("unreachable")
}

// Phase is one stage of a Stream: a pattern driven for Ops accesses at
// the given read fraction.
type Phase struct {
	// Pattern generates this phase's addresses.
	Pattern Pattern
	// ReadFrac is the fraction of accesses that are reads (0 = all
	// writes, 1 = all reads).
	ReadFrac float64
	// Ops is the phase length in accesses before the stream advances to
	// the next phase (cycling); 0 means the phase never ends.
	Ops int
}

// Stream interleaves reads and writes over a cycle of phases — the
// mixed op-stream generator consumed by Apply-based drivers. A
// single-phase stream is a plain pattern with a read fraction; multiple
// phases model program phase behavior (e.g. a streaming init phase
// followed by a pointer-chasing compute phase).
type Stream struct {
	phases []Phase
	rng    *prng.Rand
	idx    int
	done   int
}

// NewStream builds a stream cycling through phases, drawing pattern
// selection and read/write choices from a generator derived from seed.
func NewStream(seed uint64, phases ...Phase) *Stream {
	if len(phases) == 0 {
		panic("workload: stream needs at least one phase")
	}
	for i := range phases {
		if phases[i].Ops < 0 {
			panic("workload: negative phase length")
		}
		if phases[i].ReadFrac < 0 || phases[i].ReadFrac > 1 {
			panic(fmt.Sprintf("workload: phase %d read fraction %v out of [0,1]", i, phases[i].ReadFrac))
		}
	}
	return &Stream{phases: phases, rng: prng.NewFrom(seed, "workload-stream")}
}

// Lines returns the footprint of the current phase's pattern.
func (s *Stream) Lines() int { return s.phases[s.idx].Pattern.Lines() }

// Next returns the next access: its line address and whether it is a
// read.
func (s *Stream) Next() (line uint64, read bool) {
	ph := &s.phases[s.idx]
	if ph.Ops > 0 && s.done >= ph.Ops {
		s.idx = (s.idx + 1) % len(s.phases)
		s.done = 0
		ph = &s.phases[s.idx]
	}
	s.done++
	line = ph.Pattern.NextLine(s.rng)
	read = s.rng.Float64() < ph.ReadFrac
	return line, read
}

// FillOp writes the next access into op: reads keep op.Data as the
// caller's reusable destination buffer, writes get their plaintext from
// fill (which may be nil for zero data). It lets hot loops build
// shard.Engine.Apply batches without per-op allocation.
func (s *Stream) FillOp(op *shard.Op, fill func(line uint64, data []byte)) {
	line, read := s.Next()
	op.Line = int(line)
	if read {
		op.Kind = shard.OpRead
		return
	}
	op.Kind = shard.OpWrite
	if fill != nil {
		fill(line, op.Data)
	} else {
		clear(op.Data)
	}
}

// Collect draws n ops from the stream, allocating a 64-byte buffer per
// op (write plaintext via fill, or a read destination). Convenience for
// tests and small drivers; hot paths should reuse buffers with FillOp.
func Collect(s *Stream, n int, fill func(line uint64, data []byte)) []shard.Op {
	ops := make([]shard.Op, n)
	for i := range ops {
		ops[i].Data = make([]byte, shard.LineSize)
		s.FillOp(&ops[i], fill)
	}
	return ops
}

func mustLines(lines int) {
	if lines <= 0 {
		panic("workload: footprint must be positive")
	}
}
