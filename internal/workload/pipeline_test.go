package workload

import (
	"testing"

	"repro/internal/coset"
	"repro/internal/prng"
	"repro/internal/shard"
)

// pipelineEngine builds a small engine for driver tests.
func pipelineEngine(t *testing.T, lines int) *shard.Engine {
	t.Helper()
	e, err := shard.New(shard.Config{
		Lines: lines, Shards: 3, Workers: 2,
		NewCodec:  func() coset.Codec { return coset.NewFNW(64, 16) },
		FaultRate: 1e-2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// pipelineStream builds the reference mixed stream; fill must be
// re-derived per run so every engine sees identical plaintext.
func pipelineStream(lines int) (*Stream, func(uint64, []byte)) {
	s := NewStream(5, Phase{
		Pattern:  NewZipfHot(lines, 1.2, prng.NewFrom(5, "pipe-zipf")),
		ReadFrac: 0.5,
	})
	rng := prng.NewFrom(5, "pipe-data")
	return s, func(_ uint64, data []byte) { rng.Fill(data) }
}

// TestRunPipelinedMatchesSyncLoop: the pipelined driver must leave the
// engine in exactly the state a synchronous FillOp+Apply loop over the
// same stream produces, at any depth (including partial final batches).
func TestRunPipelinedMatchesSyncLoop(t *testing.T) {
	const lines, totalOps, batch = 200, 2500, 64 // 2500 % 64 != 0: partial tail
	ref := pipelineEngine(t, lines)
	defer ref.Close()
	stream, fill := pipelineStream(lines)
	ops := make([]shard.Op, batch)
	bufs := make([]byte, batch*shard.LineSize)
	var outs []shard.Outcome
	for done := 0; done < totalOps; {
		n := batch
		if totalOps-done < n {
			n = totalOps - done
		}
		for i := 0; i < n; i++ {
			ops[i].Data = bufs[i*shard.LineSize : (i+1)*shard.LineSize]
			stream.FillOp(&ops[i], fill)
		}
		var err error
		if outs, err = ref.Apply(ops[:n], outs); err != nil {
			t.Fatal(err)
		}
		done += n
	}
	want := ref.Stats()

	for _, depth := range []int{1, 3, 8} {
		e := pipelineEngine(t, lines)
		stream, fill := pipelineStream(lines)
		if err := RunPipelined(e, stream, totalOps, PipelineConfig{
			Batch: batch, Depth: depth, Fill: fill,
		}); err != nil {
			t.Fatal(err)
		}
		if got := e.Stats(); got != want {
			t.Errorf("depth=%d: stats diverge from sync loop:\ngot  %+v\nwant %+v", depth, got, want)
		}
		e.Close()
	}

	// RunPipelinedFrom with a hand-rolled source must match too (the
	// CLI replay path).
	e := pipelineEngine(t, lines)
	defer e.Close()
	stream2, fill2 := pipelineStream(lines)
	issued := 0
	if err := RunPipelinedFrom(e, func(op *shard.Op) bool {
		if issued >= totalOps {
			return false
		}
		issued++
		stream2.FillOp(op, fill2)
		return true
	}, PipelineConfig{Batch: batch, Depth: 4}); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats(); got != want {
		t.Errorf("RunPipelinedFrom: stats diverge from sync loop:\ngot  %+v\nwant %+v", got, want)
	}
}
