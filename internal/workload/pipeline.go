package workload

import (
	"repro/internal/shard"
)

// PipelineConfig parameterizes the pipelined drivers.
type PipelineConfig struct {
	// Batch is the number of ops per submitted ticket (default 256).
	Batch int
	// Depth is the number of tickets kept in flight (default 4). Depth 1
	// degenerates to synchronous Apply-style dispatch (Submit followed
	// immediately by Wait); deeper pipelines overlap op-stream
	// generation with encoding across shards.
	Depth int
	// Fill provides write plaintext for RunPipelined, as in
	// Stream.FillOp (nil zeroes). RunPipelinedFrom ignores it: there the
	// source callback fills ops itself.
	Fill func(line uint64, data []byte)
}

// RunPipelinedFrom drives ops pulled from next through the engine's
// async submission path, keeping Depth tickets in flight, until next
// reports exhaustion. Each of the Depth slots owns its op, plaintext
// and outcome buffers: next receives ops whose Data field is a
// reusable 64-byte buffer (write plaintext or read destination) and
// returns false — without consuming the op — when the stream ends. A
// slot is refilled as soon as its previous ticket completes and
// resubmitted while the remaining slots are still encoding, so the
// producer loop allocates nothing in steady state (pooled tickets,
// per-slot reused buffers).
//
// The op sequence — and therefore every engine statistic — is exactly
// the one a synchronous next+Apply loop would produce, at any Depth:
// ops are drawn in submission order and per-shard queues preserve that
// order. Only wall-clock throughput changes, and producer/consumer
// overlap only shows gains on multi-core hosts.
func RunPipelinedFrom(eng *shard.Engine, next func(*shard.Op) bool, cfg PipelineConfig) error {
	batch := cfg.Batch
	if batch <= 0 {
		batch = 256
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = 4
	}
	type slot struct {
		ops  []shard.Op
		bufs []byte
		out  []shard.Outcome
		tk   *shard.Ticket
	}
	slots := make([]slot, depth)
	for i := range slots {
		slots[i].ops = make([]shard.Op, batch)
		slots[i].bufs = make([]byte, batch*shard.LineSize)
		slots[i].out = make([]shard.Outcome, batch)
	}
	idx := 0
	for {
		sl := &slots[idx%depth]
		idx++
		if sl.tk != nil {
			if _, err := sl.tk.Wait(); err != nil {
				return err
			}
			sl.tk = nil
		}
		n := 0
		for n < batch {
			sl.ops[n].Data = sl.bufs[n*shard.LineSize : (n+1)*shard.LineSize]
			if !next(&sl.ops[n]) {
				break
			}
			n++
		}
		if n == 0 {
			break
		}
		tk, err := eng.Submit(sl.ops[:n], sl.out[:n])
		if err != nil {
			return err
		}
		sl.tk = tk
		if n < batch {
			break
		}
	}
	for i := range slots {
		if slots[i].tk != nil {
			if _, err := slots[i].tk.Wait(); err != nil {
				return err
			}
			slots[i].tk = nil
		}
	}
	return nil
}

// RunPipelined drives totalOps accesses from the stream through
// RunPipelinedFrom, filling write plaintext via cfg.Fill.
func RunPipelined(eng *shard.Engine, stream *Stream, totalOps int, cfg PipelineConfig) error {
	issued := 0
	return RunPipelinedFrom(eng, func(op *shard.Op) bool {
		if issued >= totalOps {
			return false
		}
		issued++
		stream.FillOp(op, cfg.Fill)
		return true
	}, cfg)
}
