package workload

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/shard"
)

func TestPatternsStayInFootprint(t *testing.T) {
	const lines = 257
	rng := prng.New(1)
	for _, p := range []Pattern{
		NewSequential(lines),
		NewStrided(lines, 17),
		NewZipfHot(lines, 1.3, prng.New(2)),
		NewPointerChase(lines, prng.New(3)),
	} {
		if p.Lines() != lines {
			t.Fatalf("%T.Lines() = %d, want %d", p, p.Lines(), lines)
		}
		for i := 0; i < 4*lines; i++ {
			if l := p.NextLine(rng); l >= lines {
				t.Fatalf("%T produced line %d outside [0,%d)", p, l, lines)
			}
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(3)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = append(got, s.NextLine(nil))
	}
	want := []uint64{1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequential stream %v, want %v", got, want)
		}
	}
}

func TestPointerChaseIsOneFullCycle(t *testing.T) {
	const lines = 101
	p := NewPointerChase(lines, prng.New(7))
	seen := make(map[uint64]bool)
	start := p.NextLine(nil)
	seen[start] = true
	for i := 1; i < lines; i++ {
		l := p.NextLine(nil)
		if seen[l] {
			t.Fatalf("chase revisited line %d after %d steps (cycle too short)", l, i)
		}
		seen[l] = true
	}
	if next := p.NextLine(nil); next != start {
		t.Errorf("after %d steps chase landed on %d, want cycle start %d", lines, next, start)
	}
}

func TestZipfHotConcentrates(t *testing.T) {
	const lines, draws = 1 << 12, 20000
	z := NewZipfHot(lines, 1.6, prng.New(11))
	counts := map[uint64]int{}
	for i := 0; i < draws; i++ {
		counts[z.NextLine(nil)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / draws; frac < 0.10 {
		t.Errorf("hottest line got %.1f%% of skewed draws, want a concentrated hot set", 100*frac)
	}
	if len(counts) < 10 {
		t.Errorf("only %d distinct lines drawn; hot set should still have a tail", len(counts))
	}
}

func TestMixtureRespectsFractions(t *testing.T) {
	const lines, draws = 1 << 10, 20000
	// Sequential addresses are dense and small-step; chase jumps. Count
	// unit-step transitions to estimate the sequential fraction.
	m := NewMixture(
		Arm{Frac: 0.7, Pattern: NewSequential(lines)},
		Arm{Frac: 0.3, Pattern: NewPointerChase(lines, prng.New(5))},
	)
	rng := prng.New(6)
	prev := m.NextLine(rng)
	unit := 0
	for i := 1; i < draws; i++ {
		l := m.NextLine(rng)
		if l == (prev+1)%lines {
			unit++
		}
		prev = l
	}
	frac := float64(unit) / draws
	// The sequential arm advances only when chosen, so consecutive
	// sequential picks are unit steps; expect roughly 0.7^2 < frac < 0.7.
	if frac < 0.40 || frac > 0.75 {
		t.Errorf("unit-step fraction %.2f, want ~0.49-0.70 for a 70%% sequential mixture", frac)
	}
}

func TestMixtureValidation(t *testing.T) {
	mustPanic(t, "empty mixture", func() { NewMixture() })
	mustPanic(t, "negative fraction", func() {
		NewMixture(Arm{Frac: -0.1, Pattern: NewSequential(8)})
	})
	mustPanic(t, "footprint mismatch", func() {
		NewMixture(
			Arm{Frac: 0.5, Pattern: NewSequential(8)},
			Arm{Frac: 0.5, Pattern: NewSequential(9)},
		)
	})
}

func TestStreamDeterministicAndReadFrac(t *testing.T) {
	mk := func() *Stream {
		return NewStream(42, Phase{
			Pattern:  NewZipfHot(1<<10, 1.2, prng.New(9)),
			ReadFrac: 0.25,
		})
	}
	a, b := mk(), mk()
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		la, ra := a.Next()
		lb, rb := b.Next()
		if la != lb || ra != rb {
			t.Fatalf("op %d: streams diverge (%d,%v) vs (%d,%v)", i, la, ra, lb, rb)
		}
		if ra {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("read fraction %.3f, want ~0.25", frac)
	}
}

func TestStreamPhasesCycle(t *testing.T) {
	s := NewStream(1,
		Phase{Pattern: NewSequential(100), ReadFrac: 0, Ops: 10},
		Phase{Pattern: NewSequential(100), ReadFrac: 1, Ops: 5},
	)
	// Phase 1 is all-writes for 10 ops, phase 2 all-reads for 5, cycling.
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 10; i++ {
			if _, read := s.Next(); read {
				t.Fatalf("cycle %d op %d: read in the all-write phase", cycle, i)
			}
		}
		for i := 0; i < 5; i++ {
			if _, read := s.Next(); !read {
				t.Fatalf("cycle %d op %d: write in the all-read phase", cycle, i)
			}
		}
	}
}

func TestFillOpAndCollect(t *testing.T) {
	s := NewStream(3, Phase{
		Pattern:  NewSequential(64),
		ReadFrac: 0.5,
	})
	ops := Collect(s, 500, func(line uint64, data []byte) {
		data[0] = byte(line)
	})
	reads, writes := 0, 0
	for i := range ops {
		switch ops[i].Kind {
		case shard.OpRead:
			reads++
		case shard.OpWrite:
			writes++
			if ops[i].Data[0] != byte(ops[i].Line) {
				t.Fatalf("op %d: fill not applied", i)
			}
		}
		if len(ops[i].Data) != shard.LineSize {
			t.Fatalf("op %d: buffer len %d", i, len(ops[i].Data))
		}
	}
	if reads == 0 || writes == 0 {
		t.Errorf("want a mix of reads and writes, got %d/%d", reads, writes)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic", name)
		}
	}()
	f()
}
