package workload

// This file holds the shared textual mixture grammar and the
// client-side pacing driver. The "pat:frac,..." grammar started life
// inside cmd/tracegen; loadgen replays the same mixes over the
// network, so the parser lives here and both commands (and tests)
// share one spelling of every pattern name and PRNG stream label.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/prng"
)

// MixOpts parameterizes ParseMix.
type MixOpts struct {
	// Lines is the footprint every pattern addresses, in cache lines.
	Lines int
	// ZipfSkew is the zipf pattern's skew; 0 defaults to 1.2.
	ZipfSkew float64
	// Stride is the stride pattern's step in lines; 0 defaults to 64.
	Stride int
	// Seed derives the zipf/chase PRNG streams (with Label), so equal
	// (spec, opts) pairs generate bit-identical address sequences.
	Seed uint64
	// Label prefixes the derived PRNG stream names; repeated patterns
	// get independent streams ("<label>-zipf-<i>", "<label>-chase-<i>",
	// i the token index). Callers must keep their label stable or
	// recorded traces stop replaying bit-identically.
	Label string
}

// ParseMix parses a "pat:frac,pat:frac,..." mixture spec (patterns
// seq, zipf, stride, chase) into a Pattern over opts.Lines. Fractions
// are normalized to sum to 1, so "seq:1,zipf:1" is an even mix.
func ParseMix(spec string, opts MixOpts) (Pattern, error) {
	if opts.Lines <= 0 {
		return nil, fmt.Errorf("workload: mix needs a positive footprint, got %d lines", opts.Lines)
	}
	skew := opts.ZipfSkew
	if skew == 0 {
		skew = 1.2
	}
	stride := opts.Stride
	if stride == 0 {
		stride = 64
	}
	var arms []Arm
	total := 0.0
	for i, tok := range strings.Split(spec, ",") {
		name, fracS, ok := strings.Cut(strings.TrimSpace(tok), ":")
		if !ok {
			return nil, fmt.Errorf("workload: mix token %q: want pattern:fraction", tok)
		}
		frac, err := strconv.ParseFloat(fracS, 64)
		if err != nil || !(frac >= 0) || math.IsInf(frac, 0) {
			return nil, fmt.Errorf("workload: mix token %q: bad fraction", tok)
		}
		var p Pattern
		switch name {
		case "seq":
			p = NewSequential(opts.Lines)
		case "zipf":
			p = NewZipfHot(opts.Lines, skew,
				prng.NewFrom(opts.Seed, fmt.Sprintf("%s-zipf-%d", opts.Label, i)))
		case "stride":
			p = NewStrided(opts.Lines, stride)
		case "chase":
			p = NewPointerChase(opts.Lines,
				prng.NewFrom(opts.Seed, fmt.Sprintf("%s-chase-%d", opts.Label, i)))
		default:
			return nil, fmt.Errorf("workload: mix pattern %q: want seq|zipf|stride|chase", name)
		}
		arms = append(arms, Arm{Frac: frac, Pattern: p})
		total += frac
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: mix %q: fractions must sum to > 0", spec)
	}
	for i := range arms {
		arms[i].Frac /= total
	}
	return NewMixture(arms...), nil
}

// Pacer schedules an open-loop client: requests fire on a fixed
// wall-clock grid of Rate per second regardless of response latency,
// the standard way to measure a service's latency at a target load
// (a closed loop degrades to coordinated omission: a slow response
// delays the next request and hides the queueing it caused). A
// non-positive rate disables pacing — the client runs closed-loop,
// issuing as fast as responses return.
type Pacer struct {
	interval time.Duration
	next     time.Time
}

// NewPacer builds a pacer firing ratePerSec times per second; rate
// <= 0 returns a no-op closed-loop pacer.
func NewPacer(ratePerSec float64) *Pacer {
	if ratePerSec <= 0 {
		return &Pacer{}
	}
	return &Pacer{interval: time.Duration(float64(time.Second) / ratePerSec)}
}

// Wait blocks until the next grid slot (never for a closed-loop
// pacer) and returns the slot time — the intended start, which open-
// loop latency accounting measures from so queueing delay behind a
// slow server is charged to the server, not silently absorbed.
func (p *Pacer) Wait(now time.Time) time.Time {
	if p.interval == 0 {
		return now
	}
	if p.next.IsZero() {
		p.next = now
	}
	slot := p.next
	p.next = slot.Add(p.interval)
	if d := slot.Sub(now); d > 0 {
		time.Sleep(d)
	}
	return slot
}
