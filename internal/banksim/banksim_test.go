package banksim

import (
	"testing"

	"repro/internal/trace"
)

const testInstr = 2_000_000

func spec(t *testing.T, name string) trace.Spec {
	t.Helper()
	s, err := trace.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBaselineIPCReasonable(t *testing.T) {
	bm := spec(t, "lbm_s")
	r := Run(DefaultConfig(0, bm.WriteIntensity), bm, testInstr, 1)
	if r.IPC <= 0.3 || r.IPC > 1.0 {
		t.Errorf("baseline IPC %v implausible", r.IPC)
	}
	if r.Instructions != testInstr {
		t.Error("instruction count wrong")
	}
}

func TestEncoderLatencyCostsIPC(t *testing.T) {
	bm := spec(t, "lbm_s")
	n0 := NormalizedIPC(0, bm, testInstr, 1)
	if n0 < 0.999 || n0 > 1.001 {
		t.Errorf("zero-latency normalized IPC = %v, want 1", n0)
	}
	nVCC := NormalizedIPC(1.9, bm, testInstr, 1)
	nRCC := NormalizedIPC(2.6, bm, testInstr, 1)
	if !(nVCC < 1 && nRCC < nVCC) {
		t.Errorf("ordering wrong: vcc=%v rcc=%v", nVCC, nRCC)
	}
	// Fig 13 magnitude: encoder costs are small, low single digits.
	if nRCC < 0.90 {
		t.Errorf("RCC normalized IPC %v lower than plausible", nRCC)
	}
}

// TestAgreesWithAnalyticModel cross-checks the event simulation against
// internal/perf's closed form: same ordering, same ballpark (within a
// few points) for the Fig. 13 technique set.
func TestAgreesWithAnalyticModel(t *testing.T) {
	for _, name := range []string{"lbm_s", "gcc_s", "omnetpp_s"} {
		bm := spec(t, name)
		nDBI := NormalizedIPC(0.3, bm, testInstr, 2)
		nVCC := NormalizedIPC(1.9, bm, testInstr, 2)
		nRCC := NormalizedIPC(2.6, bm, testInstr, 2)
		if !(nDBI >= nVCC && nVCC >= nRCC) {
			t.Errorf("%s: ordering violated: %v %v %v", name, nDBI, nVCC, nRCC)
		}
		if nRCC < 0.92 {
			t.Errorf("%s: RCC %v below Fig 13 axis range", name, nRCC)
		}
	}
}

// TestWriteIntensityMatters isolates the intensity knob on a fixed
// address stream. (Across benchmarks, address locality can dominate:
// a skewed stream serializes on one bank and exposes more encoder
// latency than a heavier streaming one — an emergent effect the
// closed-form model in internal/perf does not capture.)
func TestWriteIntensityMatters(t *testing.T) {
	bm := spec(t, "lbm_s")
	norm := func(wpki float64) float64 {
		base := Run(DefaultConfig(0, wpki), bm, testInstr, 3)
		enc := Run(DefaultConfig(2.6, wpki), bm, testInstr, 3)
		return enc.IPC / base.IPC
	}
	if nHeavy, nLight := norm(21.4), norm(6.4); nHeavy >= nLight {
		t.Errorf("heavier write stream should lose more IPC: %v vs %v", nHeavy, nLight)
	}
}

func TestBankConflictsGrowWithOccupancy(t *testing.T) {
	bm := spec(t, "lbm_s")
	r0 := Run(DefaultConfig(0, bm.WriteIntensity), bm, testInstr, 4)
	r1 := Run(DefaultConfig(50, bm.WriteIntensity), bm, testInstr, 4) // absurd encoder
	if r1.BankConflict <= r0.BankConflict {
		t.Errorf("conflicts %d -> %d; longer occupancy should conflict more",
			r0.BankConflict, r1.BankConflict)
	}
	if r1.IPC >= r0.IPC {
		t.Error("huge encoder latency should cost IPC")
	}
}

func TestDeterministic(t *testing.T) {
	bm := spec(t, "mcf_s")
	a := Run(DefaultConfig(1.9, bm.WriteIntensity), bm, 200_000, 7)
	b := Run(DefaultConfig(1.9, bm.WriteIntensity), bm, 200_000, 7)
	if a.IPC != b.IPC || a.BankConflict != b.BankConflict {
		t.Error("simulation not deterministic")
	}
}

func TestZeroTrafficIsIdeal(t *testing.T) {
	cfg := DefaultConfig(1.9, 0)
	cfg.ReadsPerKI = 0
	bm := spec(t, "gcc_s")
	r := Run(cfg, bm, 100_000, 1)
	if r.IPC != 1 {
		t.Errorf("no memory traffic should give IPC 1, got %v", r.IPC)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(Config{}, spec(t, "gcc_s"), 10, 1)
}
