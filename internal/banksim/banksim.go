// Package banksim is a discrete-event model of the PCM main-memory
// backend of Table II: channels x banks with per-bank occupancy, serving
// the read and writeback streams of a benchmark. It provides a
// mechanistic cross-check of the closed-form IPC model in
// internal/perf: writebacks are read-modify-write operations whose bank
// occupancy includes the coset encoder's latency, and the slowdown
// emerges from bank conflicts rather than from an analytic exposure
// factor.
//
// The core model is deliberately simple (the paper's Sniper substitute,
// DESIGN.md #3): a 1-IPC-when-unstalled core issuing reads that stall it
// when their bank is busy beyond an out-of-order hiding window, and
// writebacks that never stall directly but keep banks busy. What the
// experiments check is relative IPC across encoder latencies, which this
// structure captures.
package banksim

import (
	"fmt"

	"repro/internal/prng"
	"repro/internal/trace"
)

// Config parameterizes the backend.
type Config struct {
	// Banks is the total number of independent banks (Table II: 2
	// channels x 1 rank x 8 banks = 16).
	Banks int
	// ReadNS / WriteNS are the array access occupancies.
	ReadNS, WriteNS float64
	// EncodeNS is the coset encoder latency added to every writeback's
	// occupancy (read-modify-write: read, encode, program).
	EncodeNS float64
	// HideNS is the out-of-order window: read latency below this is
	// hidden; only the excess stalls the core.
	HideNS float64
	// FreqGHz converts core cycles to nanoseconds.
	FreqGHz float64
	// ReadsPerKI / WritesPerKI are memory accesses per kilo-instruction.
	ReadsPerKI, WritesPerKI float64
}

// DefaultConfig derives a backend from Table II numbers for a benchmark
// write intensity (reads modeled at 2x the writeback rate, a typical
// LLC-miss-to-writeback ratio for writeback caches).
func DefaultConfig(encodeNS, writesPerKI float64) Config {
	return Config{
		Banks:       16,
		ReadNS:      84,
		WriteNS:     150, // PCM writes are slower than reads
		EncodeNS:    encodeNS,
		HideNS:      60,
		FreqGHz:     1.0,
		ReadsPerKI:  2 * writesPerKI,
		WritesPerKI: writesPerKI,
	}
}

// Result reports one simulation.
type Result struct {
	Instructions int64
	TotalNS      float64
	IPC          float64
	ReadStallNS  float64
	BankConflict int64 // accesses that found their bank busy
}

// Run simulates `instructions` instructions of the benchmark address
// stream through the backend and returns timing. Deterministic per seed.
func Run(cfg Config, bm trace.Spec, instructions int64, seed uint64) Result {
	if cfg.Banks <= 0 || cfg.FreqGHz <= 0 {
		panic(fmt.Sprintf("banksim: bad config %+v", cfg))
	}
	gen := trace.NewGenerator(bm, seed)
	rng := prng.NewFrom(seed, "banksim")
	bankFree := make([]float64, cfg.Banks)

	cycleNS := 1 / cfg.FreqGHz
	// Events per kilo-instruction, spread uniformly.
	evPerKI := cfg.ReadsPerKI + cfg.WritesPerKI
	if evPerKI <= 0 {
		return Result{Instructions: instructions,
			TotalNS: float64(instructions) * cycleNS,
			IPC:     1}
	}
	instrPerEvent := 1000 / evPerKI
	pRead := cfg.ReadsPerKI / evPerKI

	var now, stall float64
	var conflicts int64
	var rec trace.Record
	var executed float64
	for executed = 0; executed < float64(instructions); executed += instrPerEvent {
		// Core executes the gap between memory events at 1 IPC.
		now += instrPerEvent * cycleNS
		gen.Next(&rec)
		bank := int(rec.Line % uint64(cfg.Banks))
		start := now
		if bankFree[bank] > now {
			conflicts++
			start = bankFree[bank]
		}
		if rng.Float64() < pRead {
			done := start + cfg.ReadNS
			// The OoO window hides HideNS of latency; the rest stalls.
			if s := done - now - cfg.HideNS; s > 0 {
				stall += s
				now += s
			}
			bankFree[bank] = done
		} else {
			// Writeback: read-modify-write occupies the bank; the core
			// does not wait for it.
			bankFree[bank] = start + cfg.ReadNS + cfg.EncodeNS + cfg.WriteNS
		}
	}
	total := now
	return Result{
		Instructions: instructions,
		TotalNS:      total,
		IPC:          float64(instructions) / (total / cycleNS),
		ReadStallNS:  stall,
		BankConflict: conflicts,
	}
}

// NormalizedIPC runs the benchmark with and without encoder latency and
// returns the ratio — the quantity Fig. 13 plots.
func NormalizedIPC(encodeNS float64, bm trace.Spec, instructions int64, seed uint64) float64 {
	base := Run(DefaultConfig(0, bm.WriteIntensity), bm, instructions, seed)
	enc := Run(DefaultConfig(encodeNS, bm.WriteIntensity), bm, instructions, seed)
	return enc.IPC / base.IPC
}
