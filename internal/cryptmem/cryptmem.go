// Package cryptmem implements the counter-mode encryption/decryption unit
// of the paper's Fig. 4: before a 512-bit cache line is written to
// memory, it is XORed with a one-time pad produced by AES engines from
// (key, line address, per-line write counter). Reads regenerate the same
// pad from the stored counter and XOR it away.
//
// Properties that matter to the rest of the system:
//
//   - Ciphertext is computationally indistinguishable from uniform random
//     bits, which is precisely why biased coset coding stops working and
//     the paper's random/virtual cosets are needed.
//   - Each write increments the line's counter, so consecutive writes of
//     identical plaintext still produce different (random-looking)
//     ciphertext — data similarity techniques see no similarity.
//
// The unit is deliberately synchronous and allocation-free on the hot
// path; the memory controller calls it once per line write/read.
package cryptmem

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// LineSize is the cache-line size in bytes (512 bits).
const LineSize = 64

// Unit is the on-chip encryption/decryption engine plus its counter
// store. One Unit serves one memory; it is not safe for concurrent use.
type Unit struct {
	block    cipher.Block
	counters []uint64
	// scratch buffers reused across calls
	pad  [LineSize]byte
	ctrB [aes.BlockSize]byte
}

// New creates a Unit for a memory of numLines cache lines using the given
// 256-bit key (AES-256, as in the paper's "256-bit unique key").
func New(key [32]byte, numLines int) (*Unit, error) {
	if numLines <= 0 {
		return nil, fmt.Errorf("cryptmem: numLines must be positive, got %d", numLines)
	}
	b, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("cryptmem: %w", err)
	}
	return &Unit{block: b, counters: make([]uint64, numLines)}, nil
}

// MustNew is New for tests and examples with a fixed key.
func MustNew(key [32]byte, numLines int) *Unit {
	u, err := New(key, numLines)
	if err != nil {
		panic(err)
	}
	return u
}

// NumLines returns the number of cache lines served.
func (u *Unit) NumLines() int { return len(u.counters) }

// Counter returns the current write counter of a line.
func (u *Unit) Counter(line int) uint64 { return u.counters[line] }

// genPad fills u.pad with the one-time pad for (line, ctr). The pad is
// four AES blocks, mirroring the paper's "4 x 128-bit random binary
// streams" from four parallel AES engines; engine i encrypts the tweak
// (lineAddr, ctr, i).
func (u *Unit) genPad(line int, ctr uint64) {
	for i := 0; i < LineSize/aes.BlockSize; i++ {
		binary.LittleEndian.PutUint64(u.ctrB[0:8], uint64(line))
		binary.LittleEndian.PutUint64(u.ctrB[8:16], ctr<<2|uint64(i))
		u.block.Encrypt(u.pad[i*aes.BlockSize:(i+1)*aes.BlockSize], u.ctrB[:])
	}
}

// EncryptLine encrypts a 64-byte plaintext for the given line, advancing
// the line's write counter, and writes the ciphertext into dst (which may
// alias plaintext). It returns the counter value used, which the caller
// stores alongside the line (as the paper does) and must pass back to
// DecryptLine.
func (u *Unit) EncryptLine(line int, dst, plaintext []byte) uint64 {
	if len(plaintext) != LineSize || len(dst) != LineSize {
		panic("cryptmem: EncryptLine needs 64-byte buffers")
	}
	u.counters[line]++
	ctr := u.counters[line]
	u.genPad(line, ctr)
	for i := range dst {
		dst[i] = plaintext[i] ^ u.pad[i]
	}
	return ctr
}

// DecryptLine decrypts a 64-byte ciphertext previously produced for
// (line, ctr) into dst (may alias ciphertext).
func (u *Unit) DecryptLine(line int, ctr uint64, dst, ciphertext []byte) {
	if len(ciphertext) != LineSize || len(dst) != LineSize {
		panic("cryptmem: DecryptLine needs 64-byte buffers")
	}
	u.genPad(line, ctr)
	for i := range dst {
		dst[i] = ciphertext[i] ^ u.pad[i]
	}
}
