package cryptmem

import (
	"bytes"
	"math/bits"
	"testing"
)

var testKey = [32]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
	17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}

func TestRoundTrip(t *testing.T) {
	u := MustNew(testKey, 16)
	pt := make([]byte, LineSize)
	for i := range pt {
		pt[i] = byte(i)
	}
	ct := make([]byte, LineSize)
	ctr := u.EncryptLine(3, ct, pt)
	if bytes.Equal(ct, pt) {
		t.Error("ciphertext equals plaintext")
	}
	out := make([]byte, LineSize)
	u.DecryptLine(3, ctr, out, ct)
	if !bytes.Equal(out, pt) {
		t.Error("round trip failed")
	}
}

func TestCounterAdvances(t *testing.T) {
	u := MustNew(testKey, 4)
	pt := make([]byte, LineSize)
	ct1 := make([]byte, LineSize)
	ct2 := make([]byte, LineSize)
	c1 := u.EncryptLine(0, ct1, pt)
	c2 := u.EncryptLine(0, ct2, pt)
	if c2 != c1+1 {
		t.Errorf("counter did not advance: %d -> %d", c1, c2)
	}
	if bytes.Equal(ct1, ct2) {
		t.Error("same plaintext re-encrypted identically — counter not mixed in")
	}
	if u.Counter(0) != c2 {
		t.Error("Counter accessor wrong")
	}
}

func TestLinesIndependent(t *testing.T) {
	u := MustNew(testKey, 4)
	pt := make([]byte, LineSize)
	a := make([]byte, LineSize)
	b := make([]byte, LineSize)
	u.EncryptLine(0, a, pt)
	u.EncryptLine(1, b, pt)
	if bytes.Equal(a, b) {
		t.Error("different lines produced identical ciphertext")
	}
}

func TestOldCounterStillDecrypts(t *testing.T) {
	// The controller stores the counter with the line; decrypting an old
	// snapshot with its stored counter must work even after later writes.
	u := MustNew(testKey, 2)
	pt1 := bytes.Repeat([]byte{0xAA}, LineSize)
	pt2 := bytes.Repeat([]byte{0x55}, LineSize)
	ct1 := make([]byte, LineSize)
	ct2 := make([]byte, LineSize)
	c1 := u.EncryptLine(0, ct1, pt1)
	u.EncryptLine(0, ct2, pt2)
	out := make([]byte, LineSize)
	u.DecryptLine(0, c1, out, ct1)
	if !bytes.Equal(out, pt1) {
		t.Error("old-counter decryption failed")
	}
}

// TestCiphertextLooksRandom is the motivating property: even an all-zeros
// plaintext encrypts to roughly balanced bits, which is what defeats
// biased coset candidates (Section III of the paper).
func TestCiphertextLooksRandom(t *testing.T) {
	u := MustNew(testKey, 256)
	pt := make([]byte, LineSize) // all zeros: maximal plaintext bias
	ones, total := 0, 0
	ct := make([]byte, LineSize)
	for line := 0; line < 256; line++ {
		u.EncryptLine(line, ct, pt)
		for _, b := range ct {
			ones += bits.OnesCount8(b)
			total += 8
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("ciphertext ones fraction %v, want ~0.5", frac)
	}
}

func TestDeterministicForSameKeyAndCounter(t *testing.T) {
	u1 := MustNew(testKey, 4)
	u2 := MustNew(testKey, 4)
	pt := bytes.Repeat([]byte{7}, LineSize)
	a := make([]byte, LineSize)
	b := make([]byte, LineSize)
	u1.EncryptLine(2, a, pt)
	u2.EncryptLine(2, b, pt)
	if !bytes.Equal(a, b) {
		t.Error("same key/line/counter should give same ciphertext")
	}
}

func TestDifferentKeysDiffer(t *testing.T) {
	k2 := testKey
	k2[0] ^= 0xFF
	u1 := MustNew(testKey, 4)
	u2 := MustNew(k2, 4)
	pt := make([]byte, LineSize)
	a := make([]byte, LineSize)
	b := make([]byte, LineSize)
	u1.EncryptLine(0, a, pt)
	u2.EncryptLine(0, b, pt)
	if bytes.Equal(a, b) {
		t.Error("different keys produced identical ciphertext")
	}
}

func TestInPlaceEncryption(t *testing.T) {
	u := MustNew(testKey, 4)
	pt := bytes.Repeat([]byte{0x3C}, LineSize)
	buf := append([]byte(nil), pt...)
	ctr := u.EncryptLine(1, buf, buf)
	u.DecryptLine(1, ctr, buf, buf)
	if !bytes.Equal(buf, pt) {
		t.Error("in-place round trip failed")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(testKey, 0); err == nil {
		t.Error("numLines=0 should error")
	}
}

func TestEncryptPanicsOnShortBuffer(t *testing.T) {
	u := MustNew(testKey, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	u.EncryptLine(0, make([]byte, 8), make([]byte, 8))
}

func TestNumLines(t *testing.T) {
	if MustNew(testKey, 42).NumLines() != 42 {
		t.Error("NumLines wrong")
	}
}
