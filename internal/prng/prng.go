// Package prng provides a small, fast, deterministic pseudo-random number
// generator (xoshiro256** seeded via splitmix64) used by every simulation
// component in this repository.
//
// Determinism matters here: the paper reports averages over five fault-map
// permutations and five lifetime experiments; to make every figure
// regenerable bit-for-bit, all stochastic inputs (fault maps, cell
// endurance draws, synthetic traces, encryption pads in tests) derive from
// explicit seeds through this package. The generator also implements
// math/rand's Source and Source64 so stdlib distributions (e.g.
// rand.Zipf) can be layered on top.
package prng

import "math"

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
	// cached gaussian for NormFloat64 (polar method produces pairs)
	gauss    float64
	hasGauss bool
}

// splitmix64 advances the seed state and returns the next value. Used to
// initialize xoshiro state so that similar seeds yield unrelated streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	s := seed
	for i := range r.s {
		r.s[i] = splitmix64(&s)
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

// NewFrom derives an independent child generator from seed and a stream
// label, so components can be given decorrelated streams from one master
// seed (e.g. fault map vs. endurance vs. trace).
func NewFrom(seed uint64, stream string) *Rand {
	h := seed
	for _, c := range []byte(stream) {
		h ^= uint64(c)
		h *= 0x100000001B3 // FNV-1a prime
	}
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns 32 uniformly random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 implements math/rand.Source.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed implements math/rand.Source by reinitializing the state.
func (r *Rand) Seed(seed int64) { *r = *New(uint64(seed)) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := ^uint64(0) - (^uint64(0) % n)
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the order of n elements using the provided swap
// function, matching math/rand's contract.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fill fills b with random bytes.
func (r *Rand) Fill(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for k := 0; k < 8; k++ {
			b[i+k] = byte(v >> uint(8*k))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Words returns n fresh random 64-bit words.
func (r *Rand) Words(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}
