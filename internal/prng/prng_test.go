package prng

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 identical outputs from different seeds", same)
	}
}

func TestNewFromStreamsIndependent(t *testing.T) {
	a := NewFrom(7, "faults")
	b := NewFrom(7, "endurance")
	if a.Uint64() == b.Uint64() {
		t.Error("stream-labeled generators should differ")
	}
	// Same label must reproduce.
	c := NewFrom(7, "faults")
	a2 := NewFrom(7, "faults")
	if c.Uint64() != a2.Uint64() {
		t.Error("same label should reproduce")
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var any uint64
	for i := 0; i < 10; i++ {
		any |= r.Uint64()
	}
	if any == 0 {
		t.Error("seed 0 generator produced only zeros")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7) value %d count %d, want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(8)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(100, 20)
	}
	mean := sum / n
	if math.Abs(mean-100) > 0.5 {
		t.Errorf("Normal(100,20) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(11)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Error("shuffle lost elements")
	}
}

func TestFill(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		b := make([]byte, n)
		r.Fill(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Errorf("Fill(%d) produced all zeros", n)
			}
		}
	}
}

func TestWords(t *testing.T) {
	r := New(13)
	ws := r.Words(16)
	if len(ws) != 16 {
		t.Fatalf("len = %d", len(ws))
	}
	distinct := make(map[uint64]bool)
	for _, w := range ws {
		distinct[w] = true
	}
	if len(distinct) != 16 {
		t.Error("expected 16 distinct random words")
	}
}

// TestSourceInterface verifies Rand satisfies math/rand.Source64 so stdlib
// distributions (Zipf in particular, used by the trace generators) work.
func TestSourceInterface(t *testing.T) {
	var src rand.Source64 = New(14)
	rr := rand.New(src)
	z := rand.NewZipf(rr, 1.2, 1, 1000)
	if z == nil {
		t.Fatal("NewZipf returned nil")
	}
	for i := 0; i < 1000; i++ {
		if v := z.Uint64(); v > 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestBitBalance(t *testing.T) {
	// Each bit position should be ~50% ones.
	r := New(15)
	const n = 64000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v>>uint(b)&1 == 1 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.48 || frac > 0.52 {
			t.Errorf("bit %d ones fraction %v", b, frac)
		}
	}
}
