package bitutil

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 3}, {8, 0xFF}, {16, 0xFFFF},
		{32, 0xFFFFFFFF}, {63, 0x7FFFFFFFFFFFFFFF}, {64, ^uint64(0)},
		{100, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.n); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
}

func TestSubBlockRoundTrip(t *testing.T) {
	x := uint64(0x0123456789ABCDEF)
	for _, m := range []int{4, 8, 16, 32} {
		p := 64 / m
		var rebuilt uint64
		for j := 0; j < p; j++ {
			rebuilt = SetSubBlock(rebuilt, j, m, SubBlock(x, j, m))
		}
		if rebuilt != x {
			t.Errorf("m=%d: rebuilt %#x != %#x", m, rebuilt, x)
		}
	}
}

func TestSubBlockValues(t *testing.T) {
	x := uint64(0x1111222233334444)
	if got := SubBlock(x, 0, 16); got != 0x4444 {
		t.Errorf("partition 0 = %#x, want 0x4444", got)
	}
	if got := SubBlock(x, 3, 16); got != 0x1111 {
		t.Errorf("partition 3 = %#x, want 0x1111", got)
	}
}

func TestSetSubBlockMasksValue(t *testing.T) {
	// Bits of v above m must be ignored.
	got := SetSubBlock(0, 1, 8, 0xFFF)
	if got != 0xFF00 {
		t.Errorf("SetSubBlock = %#x, want 0xFF00", got)
	}
}

func TestRepeat(t *testing.T) {
	if got := Repeat(0xAB, 8, 4); got != 0xABABABAB {
		t.Errorf("Repeat = %#x, want 0xABABABAB", got)
	}
	if got := Repeat(0xFFFF, 16, 4); got != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("Repeat = %#x", got)
	}
	// Kernel bits above m ignored.
	if got := Repeat(0x1FF, 8, 2); got != 0xFFFF {
		t.Errorf("Repeat with overlong kernel = %#x, want 0xFFFF", got)
	}
}

func TestTileMask(t *testing.T) {
	// Paper Algorithm 2 example: 2-bit mask 01 tiled over 16 bits.
	got := TileMask(0b01, 2, 16)
	if got != 0x5555 {
		t.Errorf("TileMask(01,2,16) = %#x, want 0x5555", got)
	}
	// Truncated final copy: 3-bit mask 101 tiled at offsets 0,3,6 over
	// 8 bits -> 0b(1)01_101_101 with the 9th bit cut off.
	got = TileMask(0b101, 3, 8)
	want := uint64(0b01101101)
	if got != want {
		t.Errorf("TileMask(101,3,8) = %#b, want %#b", got, want)
	}
	if TileMask(0b1, 0, 8) != 0 {
		t.Error("TileMask with w=0 should be 0")
	}
}

// TestAlgorithm2PaperVectors checks the tiled-mask XOR against the worked
// example in Section IV-B of the paper: base vectors
// 1101101100000100 and 0001000011000011 with masks 00 and 01 produce the
// four listed kernels.
func TestAlgorithm2PaperVectors(t *testing.T) {
	b0 := uint64(0b1101101100000100)
	b1 := uint64(0b0001000011000011)
	m1 := TileMask(0b01, 2, 16)
	if got := b0 ^ m1; got != 0b1000111001010001 {
		t.Errorf("b0^M1 = %016b, want 1000111001010001", got)
	}
	if got := b1 ^ m1; got != 0b0100010110010110 {
		t.Errorf("b1^M1 = %016b, want 0100010110010110", got)
	}
}

func TestPlanesRoundTrip(t *testing.T) {
	f := func(w uint64) bool {
		l, r := SplitPlanes(w)
		if l > 0xFFFFFFFF || r > 0xFFFFFFFF {
			return false
		}
		return MergePlanes(l, r) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlanesKnownValues(t *testing.T) {
	// Word with all left digits set, right digits clear.
	l, r := SplitPlanes(0xAAAAAAAAAAAAAAAA)
	if l != 0xFFFFFFFF || r != 0 {
		t.Errorf("planes of 0xAA..: left=%#x right=%#x", l, r)
	}
	l, r = SplitPlanes(0x5555555555555555)
	if l != 0 || r != 0xFFFFFFFF {
		t.Errorf("planes of 0x55..: left=%#x right=%#x", l, r)
	}
	// Symbol 0 = 0b11, all else zero: word = 3.
	l, r = SplitPlanes(3)
	if l != 1 || r != 1 {
		t.Errorf("planes of 3: left=%#x right=%#x", l, r)
	}
}

func TestCompressSpreadInverse(t *testing.T) {
	f := func(x uint64) bool {
		lo := x & 0xFFFFFFFF
		return CompressEven(SpreadEven(lo)) == lo &&
			CompressOdd(SpreadOdd(lo)) == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolAccessors(t *testing.T) {
	var w uint64
	for k := 0; k < 32; k++ {
		w = SetSymbol(w, k, uint8(k%4))
	}
	for k := 0; k < 32; k++ {
		if got := Symbol(w, k); got != uint8(k%4) {
			t.Errorf("Symbol(%d) = %d, want %d", k, got, k%4)
		}
	}
}

func TestSymbolCount(t *testing.T) {
	a := uint64(0)
	b := SetSymbol(SetSymbol(0, 3, 2), 17, 1)
	if got := SymbolCount(a, b); got != 2 {
		t.Errorf("SymbolCount = %d, want 2", got)
	}
	if SymbolCount(a, a) != 0 {
		t.Error("SymbolCount of equal words must be 0")
	}
	// Both bits of one symbol differing is still one symbol.
	c := SetSymbol(0, 5, 3)
	if got := SymbolCount(0, c); got != 1 {
		t.Errorf("SymbolCount both-bit = %d, want 1", got)
	}
}

func TestSymbolCountAgainstNaive(t *testing.T) {
	f := func(a, b uint64) bool {
		n := 0
		for k := 0; k < 32; k++ {
			if Symbol(a, k) != Symbol(b, k) {
				n++
			}
		}
		return n == SymbolCount(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolDiffMask(t *testing.T) {
	f := func(a, b uint64) bool {
		m := SymbolDiffMask(a, b)
		for k := 0; k < 32; k++ {
			want := Symbol(a, k) != Symbol(b, k)
			both := (m>>(2*k))&3 == 3
			none := (m>>(2*k))&3 == 0
			if want && !both {
				return false
			}
			if !want && !none {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpandCollapseSymbolMask(t *testing.T) {
	f := func(sm uint64) bool {
		sm &= 0xFFFFFFFF
		bm := ExpandSymbolMask(sm)
		return CollapseBitMaskToSymbols(bm) == sm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollapseBitMaskSingleBit(t *testing.T) {
	// A single stuck bit marks its whole symbol.
	bm := uint64(1) << 7 // bit 7 = left digit of symbol 3
	if got := CollapseBitMaskToSymbols(bm); got != 1<<3 {
		t.Errorf("collapse = %#x, want %#x", got, uint64(1)<<3)
	}
}

func TestParity(t *testing.T) {
	if ParityOf(0) != 0 || ParityOf(1) != 1 || ParityOf(3) != 0 ||
		ParityOf(0xFFFFFFFFFFFFFFFF) != 0 || ParityOf(7) != 1 {
		t.Error("ParityOf wrong")
	}
}

func TestReverseBits(t *testing.T) {
	if got := ReverseBits(0b0011, 4); got != 0b1100 {
		t.Errorf("ReverseBits = %#b", got)
	}
	f := func(x uint64) bool {
		x &= Mask(16)
		return ReverseBits(ReverseBits(x, 16), 16) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesWordsRoundTrip(t *testing.T) {
	b := make([]byte, 64)
	for i := range b {
		b[i] = byte(i * 7)
	}
	ws := BytesToWords(b)
	if len(ws) != 8 {
		t.Fatalf("len = %d", len(ws))
	}
	b2 := WordsToBytes(ws)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestBytesToWordsEndianness(t *testing.T) {
	b := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	if BytesToWords(b)[0] != 1 {
		t.Error("byte 0 should be the least significant")
	}
}

func TestBytesToWordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on odd length")
		}
	}()
	BytesToWords(make([]byte, 7))
}

func TestHammingDistance(t *testing.T) {
	if HammingDistance(0, 0xFF) != 8 {
		t.Error("HammingDistance(0,0xFF) != 8")
	}
	if HammingDistanceMasked(0, 0xFF, 0x0F) != 4 {
		t.Error("masked distance wrong")
	}
}

func TestOnesCountMatchesStdlib(t *testing.T) {
	f := func(x uint64) bool { return OnesCount(x) == bits.OnesCount64(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubBlocksInto(t *testing.T) {
	if err := quick.Check(func(x uint64) bool {
		for _, m := range []int{1, 4, 8, 16, 32, 64} {
			dst := make([]uint64, 64/m)
			SubBlocksInto(dst, x, m)
			for j := range dst {
				if dst[j] != SubBlock(x, j, m) {
					return false
				}
			}
		}
		// Partial coverage: fewer blocks than fit.
		dst := make([]uint64, 2)
		SubBlocksInto(dst, x, 16)
		return dst[0] == SubBlock(x, 0, 16) && dst[1] == SubBlock(x, 1, 16)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSubBlocksIntoPanicsPast64(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 5*16 > 64 bits")
		}
	}()
	SubBlocksInto(make([]uint64, 5), 1, 16)
}
