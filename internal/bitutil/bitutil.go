// Package bitutil provides the bit-level primitives used throughout the
// VCC reproduction: sub-block (partition) extraction and insertion within
// 64-bit data blocks, MLC digit-plane interleaving, popcount helpers and
// mask construction.
//
// # Conventions
//
// A "block" is up to 64 bits stored in the low bits of a uint64. Partition
// j of width m covers bits [j*m, (j+1)*m), counting from the least
// significant bit. An MLC word packs 32 two-bit Gray-coded symbols: symbol
// k occupies bits (2k+1, 2k) where bit 2k+1 is the "left" (most
// significant) digit and bit 2k is the "right" (least significant) digit.
// The paper's Table I shows write energy depends on the right digit of the
// new symbol, which is why the planes are split and re-merged so often.
package bitutil

import "math/bits"

// Mask returns a mask with the low n bits set. n must be in [0, 64].
func Mask(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// SubBlock extracts the m-bit partition j (counted from the LSB) of x.
func SubBlock(x uint64, j, m int) uint64 {
	return (x >> uint(j*m)) & Mask(m)
}

// SubBlocksInto slices x into len(dst) consecutive m-bit sub-blocks,
// least significant first: dst[j] = SubBlock(x, j, m). One mask is built
// and the shift advances incrementally, so slicing a whole write context
// (the coset encode fast path does this four times per word) costs one
// shift+AND per partition. len(dst)*m must not exceed 64.
func SubBlocksInto(dst []uint64, x uint64, m int) {
	if len(dst)*m > 64 {
		panic("bitutil: SubBlocksInto slices past bit 64")
	}
	mk := Mask(m)
	for j := range dst {
		dst[j] = x & mk
		x >>= uint(m)
	}
}

// SetSubBlock returns x with partition j (width m) replaced by v. Bits of
// v above m are ignored.
func SetSubBlock(x uint64, j, m int, v uint64) uint64 {
	sh := uint(j * m)
	return (x &^ (Mask(m) << sh)) | ((v & Mask(m)) << sh)
}

// Repeat tiles the low m bits of kernel across p partitions, producing a
// p*m-bit value. This is the paper's construction of an n-bit virtual
// coset candidate from an m-bit kernel (Section IV).
func Repeat(kernel uint64, m, p int) uint64 {
	k := kernel & Mask(m)
	var out uint64
	for j := 0; j < p; j++ {
		out |= k << uint(j*m)
	}
	return out
}

// TileMask tiles the low w bits of mask across m bits (the final copy is
// truncated if w does not divide m). Used by the Algorithm 2 kernel
// generator, where a short mask is "independently XORed with sub-vectors"
// of each base vector.
func TileMask(mask uint64, w, m int) uint64 {
	if w <= 0 {
		return 0
	}
	mk := mask & Mask(w)
	var out uint64
	for off := 0; off < m; off += w {
		out |= mk << uint(off)
	}
	return out & Mask(m)
}

// OnesCount is bits.OnesCount64, re-exported for call-site uniformity.
func OnesCount(x uint64) int { return bits.OnesCount64(x) }

// HammingDistance counts bit positions where a and b differ.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// HammingDistanceMasked counts differing bit positions within mask.
func HammingDistanceMasked(a, b, mask uint64) int {
	return bits.OnesCount64((a ^ b) & mask)
}

// evenMask selects the even-indexed bits 0,2,4,... of a 64-bit word,
// i.e. the right digits of the 32 MLC symbols.
const evenMask = 0x5555555555555555

// oddMask selects the odd-indexed bits 1,3,5,... i.e. the left digits.
const oddMask = 0xAAAAAAAAAAAAAAAA

// CompressEven gathers the 32 even-indexed bits of x (bits 0,2,...,62)
// into the low 32 bits of the result. For an MLC word this extracts the
// right-digit plane.
func CompressEven(x uint64) uint64 {
	x &= evenMask
	// Parallel bit-compress: shift pairs together in log steps.
	x = (x | (x >> 1)) & 0x3333333333333333
	x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0F
	x = (x | (x >> 4)) & 0x00FF00FF00FF00FF
	x = (x | (x >> 8)) & 0x0000FFFF0000FFFF
	x = (x | (x >> 16)) & 0x00000000FFFFFFFF
	return x
}

// CompressOdd gathers the 32 odd-indexed bits of x (bits 1,3,...,63) into
// the low 32 bits of the result. For an MLC word this extracts the
// left-digit plane.
func CompressOdd(x uint64) uint64 { return CompressEven(x >> 1) }

// SpreadEven is the inverse of CompressEven: it scatters the low 32 bits
// of x to even bit positions 0,2,...,62.
func SpreadEven(x uint64) uint64 {
	x &= 0x00000000FFFFFFFF
	x = (x | (x << 16)) & 0x0000FFFF0000FFFF
	x = (x | (x << 8)) & 0x00FF00FF00FF00FF
	x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F
	x = (x | (x << 2)) & 0x3333333333333333
	x = (x | (x << 1)) & evenMask
	return x
}

// SpreadOdd scatters the low 32 bits of x to odd bit positions 1,3,...,63.
func SpreadOdd(x uint64) uint64 { return SpreadEven(x) << 1 }

// NibbleGroups returns the number of 4-bit nibble groups covering an
// m-bit value: ceil(m/4). The coset encode fast path prices candidates
// per nibble group, so partition geometry and nibble-table sizing share
// this one definition.
func NibbleGroups(m int) int { return (m + 3) / 4 }

// Nibble extracts nibble group g (bits [4g, 4g+4)) of x.
func Nibble(x uint64, g int) uint64 {
	return (x >> uint(4*g)) & 0xF
}

// spreadEvenNibbleTab[v] is SpreadEven(v) for v in [0, 16): the 4-bit
// value scattered to even bit positions 0, 2, 4, 6.
var spreadEvenNibbleTab = [16]uint64{
	0x00, 0x01, 0x04, 0x05, 0x10, 0x11, 0x14, 0x15,
	0x40, 0x41, 0x44, 0x45, 0x50, 0x51, 0x54, 0x55,
}

// SpreadEvenNibble is SpreadEven restricted to a 4-bit input: one table
// lookup instead of the five shift/mask steps, sized for the nibble-table
// construction loop that calls it 16 times per table.
func SpreadEvenNibble(v uint64) uint64 { return spreadEvenNibbleTab[v&0xF] }

// SplitPlanes splits an MLC word into its (left, right) digit planes,
// each returned in the low 32 bits.
func SplitPlanes(word uint64) (left, right uint64) {
	return CompressOdd(word), CompressEven(word)
}

// MergePlanes is the inverse of SplitPlanes.
func MergePlanes(left, right uint64) uint64 {
	return SpreadOdd(left) | SpreadEven(right)
}

// Symbol extracts MLC symbol k (0-31) of word as a 2-bit value, with the
// left digit in bit 1 and the right digit in bit 0.
func Symbol(word uint64, k int) uint8 {
	return uint8((word >> uint(2*k)) & 3)
}

// SetSymbol returns word with MLC symbol k replaced by s (low 2 bits).
func SetSymbol(word uint64, k int, s uint8) uint64 {
	sh := uint(2 * k)
	return (word &^ (uint64(3) << sh)) | (uint64(s&3) << sh)
}

// SymbolDiffMask returns a mask with both bits of every symbol set where
// the symbols of a and b differ. Useful for counting changed MLC cells:
// OnesCount(SymbolDiffMask(a,b))/2 is the number of differing symbols.
func SymbolDiffMask(a, b uint64) uint64 {
	d := a ^ b
	// Smear each symbol's difference onto both of its bit positions.
	d = d | ((d & evenMask) << 1) | ((d & oddMask) >> 1)
	return d
}

// SymbolCount counts MLC symbols (cells) where a and b differ.
func SymbolCount(a, b uint64) int {
	d := a ^ b
	// A symbol differs if either of its two bits differs.
	or := (d & evenMask) | ((d & oddMask) >> 1)
	return bits.OnesCount64(or)
}

// ExpandSymbolMask turns a 32-bit per-symbol mask (bit k = symbol k) into
// a 64-bit per-bit mask with both bits of each selected symbol set.
func ExpandSymbolMask(symMask uint64) uint64 {
	e := SpreadEven(symMask)
	return e | (e << 1)
}

// CollapseBitMaskToSymbols turns a 64-bit per-bit mask into a 32-bit
// per-symbol mask where symbol k is set if either of its bits is set.
func CollapseBitMaskToSymbols(bitMask uint64) uint64 {
	or := (bitMask & evenMask) | ((bitMask & oddMask) >> 1)
	return CompressEven(or)
}

// ParityOf returns the parity (XOR of all bits) of x as 0 or 1.
func ParityOf(x uint64) uint64 {
	return uint64(bits.OnesCount64(x) & 1)
}

// ReverseBits reverses the low n bits of x (bit 0 swaps with bit n-1).
func ReverseBits(x uint64, n int) uint64 {
	return bits.Reverse64(x) >> uint(64-n)
}

// BytesToWords packs a little-endian byte slice into uint64 words. The
// length of b must be a multiple of 8.
func BytesToWords(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	BytesToWordsInto(out, b)
	return out
}

// BytesToWordsInto packs a little-endian byte slice into dst without
// allocating. len(b) must be a multiple of 8 and dst must hold exactly
// len(b)/8 words.
func BytesToWordsInto(dst []uint64, b []byte) {
	if len(b)%8 != 0 || len(dst) != len(b)/8 {
		panic("bitutil: BytesToWordsInto needs len(b) = 8*len(dst)")
	}
	for i := range dst {
		var w uint64
		for k := 0; k < 8; k++ {
			w |= uint64(b[i*8+k]) << uint(8*k)
		}
		dst[i] = w
	}
}

// WordsToBytes is the inverse of BytesToWords.
func WordsToBytes(ws []uint64) []byte {
	out := make([]byte, len(ws)*8)
	WordsToBytesInto(out, ws)
	return out
}

// WordsToBytesInto is the inverse of BytesToWordsInto: it unpacks ws
// into dst (which must hold exactly 8*len(ws) bytes) without allocating.
func WordsToBytesInto(dst []byte, ws []uint64) {
	if len(dst) != len(ws)*8 {
		panic("bitutil: WordsToBytesInto needs len(dst) = 8*len(ws)")
	}
	for i, w := range ws {
		for k := 0; k < 8; k++ {
			dst[i*8+k] = byte(w >> uint(8*k))
		}
	}
}
