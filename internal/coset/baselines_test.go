package coset

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/pcm"
	"repro/internal/prng"
)

func allCodecs() []Codec {
	return []Codec{
		NewIdentity(64),
		NewIdentity(32),
		NewFNW(64, 16),
		NewFNW(32, 16),
		NewFNW(64, 8),
		NewFlipcy(64),
		NewFlipcy(32),
		NewRCC(64, 16, 1),
		NewRCC(64, 256, 2),
		NewRCC(32, 64, 3),
		NewVCCStored(64, 16, 256, 4),
		NewVCCGenerated(16, 256),
	}
}

// TestAllCodecsRoundTrip: Decode(Encode(x)) == x for every codec under
// random data and contexts, for all objectives.
func TestAllCodecsRoundTrip(t *testing.T) {
	rng := prng.New(41)
	for _, c := range allCodecs() {
		n := c.PlaneBits()
		for trial := 0; trial < 50; trial++ {
			data := rng.Uint64() & bitutil.Mask(n)
			ctx := randCtx(rng, n == 32)
			left := ctx.NewLeft
			for _, obj := range []Objective{ObjFlips, ObjOnes, ObjEnergySAW, ObjSAWEnergy} {
				ev := NewEvaluator(ctx, obj)
				enc, aux := c.Encode(data, ev)
				if aux >= 1<<uint(c.AuxBits()) {
					t.Fatalf("%s: aux %d exceeds %d bits", c.Name(), aux, c.AuxBits())
				}
				if got := c.Decode(enc, aux, left); got != data {
					t.Fatalf("%s obj %v: round trip %x -> (%x,%x) -> %x",
						c.Name(), obj, data, enc, aux, got)
				}
			}
		}
	}
}

// TestCodecsNeverExceedPlane: encoded output must fit in the plane.
func TestCodecsNeverExceedPlane(t *testing.T) {
	rng := prng.New(43)
	for _, c := range allCodecs() {
		n := c.PlaneBits()
		ev := NewEvaluator(Ctx{N: n, Mode: pcm.SLC, MLCPlane: n == 32}, ObjOnes)
		for trial := 0; trial < 20; trial++ {
			enc, _ := c.Encode(rng.Uint64()&bitutil.Mask(n), ev)
			if enc&^bitutil.Mask(n) != 0 {
				t.Fatalf("%s: encoded value overflows plane", c.Name())
			}
		}
	}
}

func TestIdentityIsTransparent(t *testing.T) {
	c := NewIdentity(64)
	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC}, ObjOnes)
	enc, aux := c.Encode(0xDEADBEEF, ev)
	if enc != 0xDEADBEEF || aux != 0 {
		t.Error("identity transformed the data")
	}
	if c.AuxBits() != 0 {
		t.Error("identity should need no aux bits")
	}
}

func TestFNWInvertsHeavySubBlocks(t *testing.T) {
	// Sub-block of 16 ones over old data of zeros: inversion wins for
	// flip minimization.
	c := NewFNW(64, 16)
	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC, OldWord: 0}, ObjFlips)
	enc, aux := c.Encode(0xFFFF, ev)
	if enc != 0 {
		t.Errorf("enc = %#x, want 0 (inverted)", enc)
	}
	if aux != 1 {
		t.Errorf("aux = %#b, want partition 0 flagged", aux)
	}
	if c.Decode(enc, aux, 0) != 0xFFFF {
		t.Error("round trip failed")
	}
}

func TestFNWAuxBits(t *testing.T) {
	if NewFNW(64, 16).AuxBits() != 4 {
		t.Error("FNW(64,16) should use 4 aux bits")
	}
	if NewFNW(64, 8).AuxBits() != 8 {
		t.Error("FNW(64,8) should use 8 aux bits")
	}
}

func TestFNWPanicsOnBadGranularity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFNW(64, 24)
}

func TestFlipcyCandidates(t *testing.T) {
	c := NewFlipcy(64)
	// Old data = one's complement of the input: aux 1 should win flips.
	d := uint64(0x0F0F0F0F0F0F0F0F)
	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC, OldWord: ^d}, ObjFlips)
	enc, aux := c.Encode(d, ev)
	if aux != 1 || enc != ^d {
		t.Errorf("enc=%x aux=%d, want one's complement chosen", enc, aux)
	}
}

func TestFlipcyTwosComplementRoundTrip(t *testing.T) {
	for _, n := range []int{32, 64} {
		c := NewFlipcy(n)
		for _, d := range []uint64{0, 1, bitutil.Mask(n), bitutil.Mask(n) - 1,
			0x8000000000000000 & bitutil.Mask(n), 42} {
			d &= bitutil.Mask(n)
			twos := (^d + 1) & bitutil.Mask(n)
			if got := c.Decode(twos, 2, 0); got != d {
				t.Errorf("n=%d d=%x: twos decode = %x", n, d, got)
			}
		}
	}
}

func TestRCCIdentityCosetAtZero(t *testing.T) {
	c := NewRCC(64, 16, 7)
	if c.Coset(0) != 0 {
		t.Error("coset 0 should be the identity")
	}
	for i := 1; i < c.NumCosets(); i++ {
		if c.Coset(i) == 0 {
			t.Errorf("coset %d is zero (duplicate identity)", i)
		}
	}
}

func TestRCCPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRCC(64, 6, 1)
}

func TestRCCReducesOnes(t *testing.T) {
	rng := prng.New(51)
	c := NewRCC(64, 256, 9)
	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC}, ObjOnes)
	var total float64
	const trials = 1500
	for i := 0; i < trials; i++ {
		enc, _ := c.Encode(rng.Uint64(), ev)
		total += float64(bitutil.OnesCount(enc))
	}
	if avg := total / trials; avg >= 26 {
		t.Errorf("avg ones %v, want clearly below 32", avg)
	}
}

// TestRCCBeatsFewerCosets: more random cosets must not do worse on
// average (the Section III motivation).
func TestRCCMoreCosetsBetter(t *testing.T) {
	rng := prng.New(53)
	c16 := NewRCC(64, 16, 9)
	c256 := NewRCC(64, 256, 9)
	var t16, t256 float64
	const trials = 1500
	for i := 0; i < trials; i++ {
		d := rng.Uint64()
		ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC}, ObjOnes)
		e16, _ := c16.Encode(d, ev)
		e256, _ := c256.Encode(d, ev)
		t16 += float64(bitutil.OnesCount(e16))
		t256 += float64(bitutil.OnesCount(e256))
	}
	if t256 >= t16 {
		t.Errorf("256 cosets (%v) not better than 16 (%v)", t256/trials, t16/trials)
	}
}

// TestVCCApproximatesRCC: with equal virtual/real coset counts, VCC's
// ones-minimization should land close to RCC's (the paper's Section V-B
// claim: within a point or two of savings).
func TestVCCApproximatesRCC(t *testing.T) {
	rng := prng.New(57)
	rcc := NewRCC(64, 256, 11)
	vcc := NewVCCStored(64, 16, 256, 11)
	var tr, tv float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		d := rng.Uint64()
		ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC}, ObjOnes)
		er, _ := rcc.Encode(d, ev)
		evv, _ := vcc.Encode(d, ev)
		tr += float64(bitutil.OnesCount(er))
		tv += float64(bitutil.OnesCount(evv))
	}
	mr, mv := tr/trials, tv/trials
	if mv > mr*1.08 {
		t.Errorf("VCC mean ones %v much worse than RCC %v", mv, mr)
	}
}

// TestCosetMaskingReducesSAW: with stuck cells, coset codecs must reduce
// stuck-at-wrong cells versus identity (the Fig. 2/8 mechanism).
func TestCosetMaskingReducesSAW(t *testing.T) {
	rng := prng.New(61)
	id := NewIdentity(64)
	rcc := NewRCC(64, 256, 13)
	var sawID, sawRCC float64
	const trials = 800
	for i := 0; i < trials; i++ {
		// Four stuck SLC bits per word.
		var stuck uint64
		for k := 0; k < 4; k++ {
			stuck |= 1 << rng.Uint64n(64)
		}
		ctx := Ctx{N: 64, Mode: pcm.SLC, OldWord: rng.Uint64(),
			StuckMask: stuck, StuckVal: rng.Uint64() & stuck}
		d := rng.Uint64()
		evI := NewEvaluator(ctx, ObjSAWEnergy)
		encI, _ := id.Encode(d, evI)
		sawID += evI.Full(encI).Primary
		evR := NewEvaluator(ctx, ObjSAWEnergy)
		encR, _ := rcc.Encode(d, evR)
		sawRCC += evR.Full(encR).Primary
	}
	if sawRCC > sawID/4 {
		t.Errorf("RCC SAW %v not clearly below identity %v", sawRCC, sawID)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 256: 8}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCodecNames(t *testing.T) {
	for _, c := range allCodecs() {
		if c.Name() == "" {
			t.Error("codec with empty name")
		}
	}
}
