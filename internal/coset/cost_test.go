package coset

import (
	"math"
	"testing"

	"repro/internal/bitutil"
	"repro/internal/pcm"
	"repro/internal/prng"
)

func randCtx(rng *prng.Rand, mlcPlane bool) Ctx {
	stuckSym := rng.Uint64() & 0x1F
	var mode pcm.CellMode
	var stuckMask uint64
	if mlcPlane || rng.Bool() {
		mode = pcm.MLC
		stuckMask = bitutil.ExpandSymbolMask(stuckSym)
	} else {
		mode = pcm.SLC
		stuckMask = rng.Uint64() & rng.Uint64() & rng.Uint64() // sparse
	}
	n := 64
	if mlcPlane {
		n = 32
		mode = pcm.MLC
	}
	return Ctx{
		N: n, Mode: mode, MLCPlane: mlcPlane,
		OldWord:   rng.Uint64(),
		NewLeft:   rng.Uint64() & bitutil.Mask(32),
		StuckMask: stuckMask,
		StuckVal:  rng.Uint64() & stuckMask,
		OldAux:    rng.Uint64() & 0xFF,
	}
}

// TestFullEqualsSumOfParts is the decomposability invariant VCC's
// per-partition optimization rests on.
func TestFullEqualsSumOfParts(t *testing.T) {
	rng := prng.New(31)
	for trial := 0; trial < 300; trial++ {
		mlcPlane := trial%2 == 0
		ctx := randCtx(rng, mlcPlane)
		cand := rng.Uint64() & bitutil.Mask(ctx.N)
		for _, obj := range []Objective{ObjFlips, ObjOnes, ObjEnergySAW, ObjSAWEnergy} {
			ev := NewEvaluator(ctx, obj)
			full := ev.Full(cand)
			m := 16
			var sum Pair
			for j := 0; j < ctx.N/m; j++ {
				sum = sum.Add(ev.Part(cand, j, m))
			}
			if math.Abs(full.Primary-sum.Primary) > 1e-9 ||
				math.Abs(full.Secondary-sum.Secondary) > 1e-9 {
				t.Fatalf("trial %d obj %v: Full %+v != sum of parts %+v",
					trial, obj, full, sum)
			}
		}
	}
}

// TestAuxEqualsSumOfAuxBits checks the per-bit aux decomposition used by
// VCC's flag-aware partition decisions.
func TestAuxEqualsSumOfAuxBits(t *testing.T) {
	rng := prng.New(37)
	for trial := 0; trial < 200; trial++ {
		ctx := randCtx(rng, trial%2 == 0)
		const nbits = 8
		aux := rng.Uint64() & bitutil.Mask(nbits)
		for _, obj := range []Objective{ObjFlips, ObjOnes, ObjEnergySAW, ObjSAWEnergy} {
			ev := NewEvaluator(ctx, obj)
			whole := ev.Aux(aux, nbits)
			var sum Pair
			for b := 0; b < nbits; b++ {
				sum = sum.Add(ev.AuxBit(b, aux>>uint(b)&1))
			}
			if math.Abs(whole.Primary-sum.Primary) > 1e-9 ||
				math.Abs(whole.Secondary-sum.Secondary) > 1e-9 {
				t.Fatalf("obj %v: Aux %+v != sum of AuxBits %+v", obj, whole, sum)
			}
		}
	}
}

func TestPairLess(t *testing.T) {
	if !(Pair{1, 0}).Less(Pair{2, 0}) {
		t.Error("primary ordering")
	}
	if !(Pair{1, 1}).Less(Pair{1, 2}) {
		t.Error("secondary tie-break")
	}
	if (Pair{1, 2}).Less(Pair{1, 2}) {
		t.Error("equal pairs not Less")
	}
	if (Pair{2, 0}).Less(Pair{1, 100}) {
		t.Error("secondary must not override primary")
	}
}

func TestEvaluatorDefaults(t *testing.T) {
	ev := NewEvaluator(Ctx{MLCPlane: true}, ObjFlips)
	if ev.Ctx.N != 32 {
		t.Errorf("default plane width = %d, want 32", ev.Ctx.N)
	}
	if ev.Ctx.Energy != pcm.DefaultEnergy {
		t.Error("energy default not applied")
	}
	ev = NewEvaluator(Ctx{}, ObjFlips)
	if ev.Ctx.N != 64 {
		t.Errorf("default full width = %d, want 64", ev.Ctx.N)
	}
}

func TestObjFlipsCountsCells(t *testing.T) {
	// MLC: writing symbol 3 over symbol 0 changes 2 bits but 1 cell.
	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.MLC, OldWord: 0}, ObjFlips)
	if got := ev.Full(3).Primary; got != 1 {
		t.Errorf("MLC flips = %v, want 1 cell", got)
	}
	ev = NewEvaluator(Ctx{N: 64, Mode: pcm.SLC, OldWord: 0}, ObjFlips)
	if got := ev.Full(3).Primary; got != 2 {
		t.Errorf("SLC flips = %v, want 2 bits", got)
	}
}

func TestObjEnergyMLCPlane(t *testing.T) {
	// Old word all zeros; candidate plane sets right digit of cell 0 to
	// 1, left digits zero: one high-energy program.
	ctx := Ctx{N: 32, Mode: pcm.MLC, MLCPlane: true, OldWord: 0, NewLeft: 0}
	ev := NewEvaluator(ctx, ObjEnergySAW)
	if got := ev.Full(1).Primary; got != pcm.DefaultEnergy.MLCHighPJ {
		t.Errorf("energy = %v, want high", got)
	}
	// Left digit set instead (via NewLeft): low-energy program of 00->10.
	ctx.NewLeft = 1
	ev = NewEvaluator(ctx, ObjEnergySAW)
	if got := ev.Full(0).Primary; got != pcm.DefaultEnergy.MLCLowPJ {
		t.Errorf("energy = %v, want low", got)
	}
}

func TestSAWCounting(t *testing.T) {
	// Cell 0 stuck at symbol 10; desired symbol 01 -> 1 SAW.
	ctx := Ctx{N: 32, Mode: pcm.MLC, MLCPlane: true,
		OldWord: 0b10, NewLeft: 0, StuckMask: 0b11, StuckVal: 0b10}
	ev := NewEvaluator(ctx, ObjSAWEnergy)
	// Candidate right digit 1, left 0 -> desired symbol 01 != stuck 10.
	if got := ev.Full(1).Primary; got != 1 {
		t.Errorf("SAW = %v, want 1", got)
	}
	// Candidate matching the stuck value (desired 10 needs left=1): with
	// left=0 the best the plane can do is right digit 0 -> desired 00,
	// still SAW.
	if got := ev.Full(0).Primary; got != 1 {
		t.Errorf("SAW = %v, want 1 (left digit mismatch)", got)
	}
	// With left=1 and right 0 the desired symbol is 10 == stuck: no SAW.
	ctx.NewLeft = 1
	ev = NewEvaluator(ctx, ObjSAWEnergy)
	if got := ev.Full(0).Primary; got != 0 {
		t.Errorf("SAW = %v, want 0", got)
	}
}

func TestStuckCellsCostNoEnergy(t *testing.T) {
	// A stuck cell never switches, so candidates differing only there
	// cost the same energy.
	ctx := Ctx{N: 32, Mode: pcm.MLC, MLCPlane: true,
		OldWord: 0, StuckMask: 0b11, StuckVal: 0}
	ev := NewEvaluator(ctx, ObjEnergySAW)
	if got := ev.Full(1).Primary; got != 0 {
		t.Errorf("energy through stuck cell = %v, want 0", got)
	}
}

func TestObjectiveString(t *testing.T) {
	for _, o := range []Objective{ObjFlips, ObjOnes, ObjEnergySAW, ObjSAWEnergy} {
		if o.String() == "objective?" || o.String() == "" {
			t.Errorf("objective %d has no name", o)
		}
	}
	if Objective(99).String() != "objective?" {
		t.Error("unknown objective should say so")
	}
}
