package coset

import (
	"strings"
	"testing"

	"repro/internal/bitutil"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// parseBits parses a big-endian binary string (spaces allowed) into a
// uint64, so test vectors can be written exactly as the paper prints
// them (leftmost bit most significant).
func parseBits(s string) uint64 {
	s = strings.ReplaceAll(s, " ", "")
	var v uint64
	for _, c := range s {
		v <<= 1
		if c == '1' {
			v |= 1
		} else if c != '0' {
			panic("bad bit string")
		}
	}
	return v
}

// fixedKernels is a KernelSource with explicit kernel values.
type fixedKernels struct {
	m  int
	ks []uint64
}

func (f *fixedKernels) Kernels(left uint64) []uint64 { return f.ks }
func (f *fixedKernels) NumKernels() int              { return len(f.ks) }
func (f *fixedKernels) KernelBits() int              { return f.m }
func (f *fixedKernels) Stored() bool                 { return true }

// TestPaperWorkedExample reproduces Fig. 3 of the paper end to end:
// VCC(64, 64, 4) minimizing ones on the exact data block and kernels
// shown, expecting the exact Xopt and auxiliary bits.
//
// Bit-order note: the paper writes d0 as the leftmost (most significant)
// 16 bits; this implementation numbers partition 0 from the least
// significant bits, so paper partition d_k is partition 3-k here. The
// paper's flag string "0110" (d0..d3) maps to flags 0b0110 here as well
// because the pattern is palindromic.
func TestPaperWorkedExample(t *testing.T) {
	d := parseBits("1010001011011011 0101000100100100 0100011001000101 1010010100001011")
	kernels := []uint64{
		parseBits("1010100111011011"), // R0
		parseBits("0100011111110100"), // R1
		parseBits("0011001001100011"), // R2
		parseBits("1010110001000111"), // R3
	}
	wantX := parseBits("0000101100000000 0000011100000000 0001000001100001 0000110011010000")

	vcc := NewVCC(64, &fixedKernels{m: 16, ks: kernels})
	if vcc.NumVirtualCosets() != 64 {
		t.Fatalf("N = %d, want 64", vcc.NumVirtualCosets())
	}
	if vcc.AuxBits() != 6 {
		t.Fatalf("aux bits = %d, want 6", vcc.AuxBits())
	}

	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC}, ObjOnes)
	enc, aux := vcc.Encode(d, ev)
	if enc != wantX {
		t.Errorf("Xopt = %016x, want %016x", enc, wantX)
	}
	// Kernel 0 selected; paper flags d0..d3 = 0,1,1,0 -> bits 0b0110.
	if aux>>4 != 0 {
		t.Errorf("kernel index = %d, want 0", aux>>4)
	}
	if aux&0xF != 0b0110 {
		t.Errorf("flags = %04b, want 0110", aux&0xF)
	}
	// Total cost per Fig. 3(d.3): 17 ones including aux bits.
	total := ev.Full(enc).Add(ev.Aux(aux, vcc.AuxBits()))
	if total.Primary != 17 {
		t.Errorf("total cost = %v, want 17", total.Primary)
	}
	// Round trip.
	if got := vcc.Decode(enc, aux, 0); got != d {
		t.Errorf("decode = %016x, want %016x", got, d)
	}
}

// TestPaperPerKernelCosts checks the intermediate cost matrix of
// Fig. 3(d.1) for kernel R0 (paper values 3, 13, 12, 5 for d0..d3).
func TestPaperPerKernelCosts(t *testing.T) {
	d := parseBits("1010001011011011 0101000100100100 0100011001000101 1010010100001011")
	r0 := parseBits("1010100111011011")
	// Paper d0 is partition 3 here, d3 is partition 0.
	want := map[int]int{3: 3, 2: 13, 1: 12, 0: 5}
	for j, w := range want {
		dj := bitutil.SubBlock(d, j, 16)
		if got := bitutil.OnesCount(dj ^ r0); got != w {
			t.Errorf("partition %d cost = %d, want %d", j, got, w)
		}
	}
}

// TestAlgorithm2GeneratesPaperKernels feeds the worked example's left
// digits through the Algorithm 2 generator and expects the four kernels
// listed in Section IV-B (as a set; base-vector ordering differs by
// endianness convention).
func TestAlgorithm2GeneratesPaperKernels(t *testing.T) {
	d := parseBits("1010001011011011 0101000100100100 0100011001000101 1010010100001011")
	left := bitutil.CompressOdd(d)
	gen := NewGeneratedKernels(32, 16, 4)
	got := gen.Kernels(left)
	want := map[uint64]bool{
		parseBits("1101101100000100"): true,
		parseBits("1000111001010001"): true,
		parseBits("0001000011000011"): true,
		parseBits("0100010110010110"): true,
	}
	if len(got) != 4 {
		t.Fatalf("got %d kernels", len(got))
	}
	for _, k := range got {
		if !want[k] {
			t.Errorf("unexpected kernel %016b", k)
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Errorf("missing kernels: %v", want)
	}
}

// TestVCCEncodeIsOptimal exhaustively checks that Encode finds the global
// optimum over all N virtual cosets (including aux cost), for several
// objectives and random contexts.
func TestVCCEncodeIsOptimal(t *testing.T) {
	rng := prng.New(99)
	vcc := NewVCCStored(32, 16, 16, 7) // n=32, m=16, p=2, r=4, N=16
	for trial := 0; trial < 200; trial++ {
		data := rng.Uint64() & bitutil.Mask(32)
		old := rng.Uint64()
		stuckSym := rng.Uint64() & 0x7 // a few stuck cells
		ctx := Ctx{
			N: 32, Mode: pcm.MLC, MLCPlane: true,
			OldWord:   old,
			NewLeft:   rng.Uint64() & bitutil.Mask(32),
			StuckMask: bitutil.ExpandSymbolMask(stuckSym),
			StuckVal:  rng.Uint64() & bitutil.ExpandSymbolMask(stuckSym),
			OldAux:    rng.Uint64() & bitutil.Mask(vcc.AuxBits()),
		}
		for _, obj := range []Objective{ObjOnes, ObjFlips, ObjEnergySAW, ObjSAWEnergy} {
			ev := NewEvaluator(ctx, obj)
			enc, aux := vcc.Encode(data, ev)
			got := ev.Full(enc).Add(ev.Aux(aux, vcc.AuxBits()))

			// Exhaustive reference: try every aux index.
			best := Pair{Primary: 1e18}
			for a := uint64(0); a < uint64(vcc.NumVirtualCosets()); a++ {
				cand := data ^ vcc.VirtualCoset(a, ctx.NewLeft)
				cost := ev.Full(cand).Add(ev.Aux(a, vcc.AuxBits()))
				if cost.Less(best) {
					best = cost
				}
			}
			if got != best {
				t.Fatalf("trial %d obj %v: Encode cost %+v, exhaustive best %+v",
					trial, obj, got, best)
			}
		}
	}
}

// TestVCCRoundTrip checks Decode inverts Encode across configurations,
// kernel sources, and objectives.
func TestVCCRoundTrip(t *testing.T) {
	rng := prng.New(5)
	configs := []*VCC{
		NewVCCStored(64, 16, 256, 1),
		NewVCCStored(64, 16, 32, 2),
		NewVCCStored(32, 16, 64, 3),
		NewVCCStored(64, 32, 8, 4),
		NewVCCGenerated(16, 64),
		NewVCCGenerated(16, 256),
		NewVCC(32, WithHybridKernels(NewGeneratedKernels(32, 16, 16))),
	}
	for _, vcc := range configs {
		n := vcc.PlaneBits()
		for trial := 0; trial < 100; trial++ {
			data := rng.Uint64() & bitutil.Mask(n)
			left := rng.Uint64() & bitutil.Mask(32)
			ctx := Ctx{N: n, Mode: pcm.MLC, MLCPlane: n == 32,
				OldWord: rng.Uint64(), NewLeft: left}
			ev := NewEvaluator(ctx, ObjEnergySAW)
			enc, aux := vcc.Encode(data, ev)
			if got := vcc.Decode(enc, aux, left); got != data {
				t.Fatalf("%s: round trip failed: %x -> %x,%x -> %x",
					vcc.Name(), data, enc, aux, got)
			}
		}
	}
}

func TestVCCAuxBitsMatchRCC(t *testing.T) {
	// Paper Section IV-A: VCC(64,256,16) and RCC(64,256) both use 8 aux
	// bits.
	vcc := NewVCCStored(64, 16, 256, 1)
	rcc := NewRCC(64, 256, 1)
	if vcc.AuxBits() != 8 || rcc.AuxBits() != 8 {
		t.Errorf("aux bits vcc=%d rcc=%d, want 8", vcc.AuxBits(), rcc.AuxBits())
	}
	// MLC plane config: r=64, p=2 -> 6+2 = 8.
	if got := NewVCCGenerated(16, 256).AuxBits(); got != 8 {
		t.Errorf("generated aux bits = %d, want 8", got)
	}
}

func TestVCCReducesOnesOnRandomData(t *testing.T) {
	// On random data, minimizing ones with 256 virtual cosets should get
	// well under the unencoded expectation of n/2 = 32 ones.
	rng := prng.New(17)
	vcc := NewVCCStored(64, 16, 256, 9)
	ev := NewEvaluator(Ctx{N: 64, Mode: pcm.SLC}, ObjOnes)
	var total float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		enc, _ := vcc.Encode(rng.Uint64(), ev)
		total += float64(bitutil.OnesCount(enc))
	}
	avg := total / trials
	if avg >= 26 {
		t.Errorf("avg ones %v, want clearly below 32 (unencoded)", avg)
	}
}

func TestVCCGeneratedDecodableFromStoredWord(t *testing.T) {
	// The decoder sees only the stored word; for generated kernels the
	// left plane passes through unchanged, so decode must succeed using
	// the stored word's left plane.
	rng := prng.New(23)
	vcc := NewVCCGenerated(16, 256)
	for i := 0; i < 200; i++ {
		word := rng.Uint64() // encrypted incoming word
		left, right := bitutil.SplitPlanes(word)
		ev := NewEvaluator(Ctx{N: 32, Mode: pcm.MLC, MLCPlane: true,
			OldWord: rng.Uint64(), NewLeft: left}, ObjEnergySAW)
		enc, aux := vcc.Encode(right, ev)
		storedWord := bitutil.MergePlanes(left, enc)
		// Decode from what memory retains.
		sl, sr := bitutil.SplitPlanes(storedWord)
		if got := vcc.Decode(sr, aux, sl); got != right {
			t.Fatalf("decode from stored word failed at trial %d", i)
		}
	}
}

func TestVCCVirtualCosetStructure(t *testing.T) {
	// Virtual coset aux=i<<p (no flags) must be the kernel tiled across
	// all partitions; flags complement the corresponding partition.
	vcc := NewVCCStored(64, 16, 64, 3) // r=4, p=4
	ks := vcc.Source().Kernels(0)
	for i := range ks {
		v := vcc.VirtualCoset(uint64(i)<<4, 0)
		if v != bitutil.Repeat(ks[i], 16, 4) {
			t.Errorf("kernel %d: plain virtual coset wrong", i)
		}
		vInv := vcc.VirtualCoset(uint64(i)<<4|0b0001, 0)
		want := bitutil.SetSubBlock(v, 0, 16, ^bitutil.SubBlock(v, 0, 16)&0xFFFF)
		if vInv != want {
			t.Errorf("kernel %d: flagged virtual coset wrong", i)
		}
	}
}

func TestVCCPanicsOnBadConfig(t *testing.T) {
	for name, f := range map[string]func(){
		"m not dividing n": func() { NewVCC(64, NewStoredKernels(4, 24, 1)) },
		"N not multiple":   func() { NewVCCStored(64, 16, 100, 1) },
		"zero kernels":     func() { NewStoredKernels(0, 16, 1) },
		"bad gen width":    func() { NewGeneratedKernels(32, 24, 4) },
		"gen r too small":  func() { NewGeneratedKernels(32, 16, 1) },
		"gen r not pow2":   func() { NewGeneratedKernels(32, 16, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHybridKernelsActLikeFNWOnBiasedData(t *testing.T) {
	// With the zero kernel present, a biased (all-zeros) block should
	// encode to all zeros at zero cost, like FNW would.
	src := WithHybridKernels(NewStoredKernels(3, 16, 5))
	vcc := NewVCC(32, src)
	ev := NewEvaluator(Ctx{N: 32, Mode: pcm.SLC}, ObjOnes)
	enc, aux := vcc.Encode(0, ev)
	if enc != 0 {
		t.Errorf("biased block encoded to %x, want 0", enc)
	}
	if got := vcc.Decode(enc, aux, 0); got != 0 {
		t.Error("round trip failed")
	}
}

func TestStoredKernelsDeterministic(t *testing.T) {
	a := NewStoredKernels(8, 16, 42).Kernels(0)
	b := NewStoredKernels(8, 16, 42).Kernels(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("kernel ROM not deterministic")
		}
	}
	c := NewStoredKernels(8, 16, 43).Kernels(0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical ROMs")
	}
}

func TestGeneratedKernelsVaryWithData(t *testing.T) {
	gen := NewGeneratedKernels(32, 16, 8)
	a := append([]uint64(nil), gen.Kernels(0x12345678)...)
	b := gen.Kernels(0x87654321)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("generated kernels should depend on the left digits")
	}
}

func TestVCCName(t *testing.T) {
	if got := NewVCCStored(64, 16, 256, 1).Name(); got != "VCC-Stored(64,256,16)" {
		t.Errorf("name = %q", got)
	}
	if got := NewVCCGenerated(16, 256).Name(); got != "VCC-Gen(32,256,64)" {
		t.Errorf("name = %q", got)
	}
}
