package coset

import (
	"testing"

	"repro/internal/pcm"
	"repro/internal/prng"
)

// TestNibbleTableCountsExact pins the nibble count tables against
// brute-force per-cell counting. buildNibbleTables derives entries with
// SWAR mask algebra and a packed doubling DP; the oracle here walks one
// cell at a time with scalar ifs — a deliberately different
// implementation of the same definition, so a vectorization bug cannot
// hide in both. Both packed halves of every entry are checked: the low
// 32 bits against the nibble value itself, the high 32 against its
// in-partition complement.

// bruteGroupCounts counts, one cell at a time, the contributions of
// nibble group g of partition j when the candidate's group bits equal
// nib: MLC high/low-energy programs (or SLC SET/RESET in the hi/lo
// slots) and stuck-at-wrong cells.
func bruteGroupCounts(sc *SlicedCtx, j, g int, nib uint64) (hi, lo, saw int) {
	if sc.mlcPlane {
		// Group g covers symbols [4g, 4g+4) of the partition; each symbol
		// occupies two bits of the 2m-bit word-coordinate slice, with the
		// candidate supplying the right digit and leftSpread the left.
		for s := 0; s < 4; s++ {
			if 4*g+s >= sc.m {
				break
			}
			bit := uint(8*g + 2*s)
			oldSym := sc.old[j] >> bit & 3
			left := sc.leftSpread[j] >> (bit + 1) & 1
			desired := left<<1 | nib>>uint(s)&1
			sm := sc.stuckMask[j] >> bit & 3
			sv := sc.stuckVal[j] >> bit & 3
			stored := (desired &^ sm) | (sv & sm)
			if stored != oldSym {
				if stored&1 == 1 {
					hi++
				} else {
					lo++
				}
			}
			if (desired^sv)&sm != 0 {
				saw++
			}
		}
		return hi, lo, saw
	}
	if sc.mode == pcm.MLC {
		// Full-word MLC: group g covers two whole symbols, bits
		// [4g, 4g+4) of the m-bit slice.
		for s := 0; s < 2; s++ {
			if 4*g+2*s >= sc.m {
				break
			}
			bit := uint(4*g + 2*s)
			oldSym := sc.old[j] >> bit & 3
			desired := nib >> uint(2*s) & 3
			sm := sc.stuckMask[j] >> bit & 3
			sv := sc.stuckVal[j] >> bit & 3
			stored := (desired &^ sm) | (sv & sm)
			if stored != oldSym {
				if stored&1 == 1 {
					hi++
				} else {
					lo++
				}
			}
			if (desired^sv)&sm != 0 {
				saw++
			}
		}
		return hi, lo, saw
	}
	// SLC: four independent cells; the hi slot carries SETs (0→1), the
	// lo slot RESETs (1→0).
	for s := 0; s < 4; s++ {
		if 4*g+s >= sc.m {
			break
		}
		bit := uint(4*g + s)
		oldBit := sc.old[j] >> bit & 1
		desired := nib >> uint(s) & 1
		sm := sc.stuckMask[j] >> bit & 1
		sv := sc.stuckVal[j] >> bit & 1
		stored := (desired &^ sm) | (sv & sm)
		if stored != oldBit {
			if stored == 1 {
				hi++
			} else {
				lo++
			}
		}
		if (desired^sv)&sm != 0 {
			saw++
		}
	}
	return hi, lo, saw
}

// TestBindForTablesAllocFree is the package-local half of the
// steady-state 0-alloc guard (the engine-level half is
// shard.TestApplySteadyStateAllocsSlicedEncoders): rebinding a warm
// SlicedCtx with table construction and running the headline VCC encode
// must not allocate, even as the rotating contexts force fresh nibble
// tables — and occasionally a fresh energy model, which rebuilds the
// etab cache — on every word.
func TestBindForTablesAllocFree(t *testing.T) {
	rng := prng.New(0xA110C)
	const ringLen = 8
	var ctxs [ringLen]Ctx
	var data [ringLen]uint64
	for i := range ctxs {
		ctxs[i] = equivCtx(rng, 32, true)
		data[i] = rng.Uint64() & 0xFFFFFFFF
	}
	codec := NewVCCGenerated(16, 256)
	ev := NewEvaluator(ctxs[0], ObjEnergySAW)
	var sc SlicedCtx
	run := func() {
		for i := range ctxs {
			ev.Reset(ctxs[i], ObjEnergySAW)
			codec.EncodeSliced(data[i], ev, &sc)
		}
	}
	run() // warm: the codec's search scratch is built lazily
	if !sc.tabOK {
		t.Fatal("VCC-Gen bind hint did not build nibble tables")
	}
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Errorf("steady-state bind+encode allocated %.2f times per ring pass, want 0", avg)
	}
}

// TestBindLineRebindAllocFree pins the line-scoped bind contract: after
// one successful BindLine, same-configuration BindFor calls must take
// the warm fingerprint path — one fastRebinds increment per word, no
// allocations — while still re-slicing each word's context. This is the
// controller's per-line pattern (8 words, one fingerprint).
func TestBindLineRebindAllocFree(t *testing.T) {
	rng := prng.New(0xB11D)
	const ringLen = 8
	var ctxs [ringLen]Ctx
	for i := range ctxs {
		ctxs[i] = equivCtx(rng, 64, false)
		// Hold the word-invariant fingerprint fields fixed across the
		// ring; everything per-word (old word, stuck cells, old aux)
		// stays randomized.
		ctxs[i].Mode = pcm.SLC
		ctxs[i].Energy = pcm.EnergyModel{}
	}
	ev := NewEvaluator(ctxs[0], ObjEnergySAW)
	var sc SlicedCtx
	const hint = 32 // the stored-ROM hint: tables amortize under energy+SAW
	if !sc.BindLine(ev, 16, hint) {
		t.Fatal("BindLine refused a supported configuration")
	}
	run := func() {
		for i := range ctxs {
			ev.Reset(ctxs[i], ObjEnergySAW)
			if !sc.BindFor(ev, 16, hint) {
				t.Fatal("BindFor refused the bound-line configuration")
			}
		}
	}
	before := sc.fastRebinds
	run()
	if got := sc.fastRebinds - before; got != ringLen {
		t.Errorf("warm ring pass took %d fast rebinds, want %d", got, ringLen)
	}
	if !sc.tabOK {
		t.Fatal("stored-ROM hint did not build nibble tables under energy+SAW")
	}
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Errorf("warm BindFor ring pass allocated %.2f times, want 0", avg)
	}
	// A changed objective must miss the fingerprint and rebind cold.
	before = sc.fastRebinds
	ev.Reset(ctxs[0], ObjFlips)
	if !sc.BindFor(ev, 16, hint) {
		t.Fatal("BindFor refused an objective change")
	}
	if sc.fastRebinds != before {
		t.Error("objective change incorrectly took the warm fingerprint path")
	}
}

func TestNibbleTableCountsExact(t *testing.T) {
	rng := prng.New(0x7AB1E)
	var sc SlicedCtx
	sc.ForceTables = true
	checkHalf := func(t *testing.T, sc *SlicedCtx, j, g int, nib uint64, got uint32) {
		t.Helper()
		hi, lo, saw := bruteGroupCounts(sc, j, g, nib)
		want := uint32(hi) | uint32(lo)<<8 | uint32(saw)<<16
		if got != want {
			t.Fatalf("m=%d mode=%v plane=%v j=%d g=%d nib=%#x: table counts (hi=%d lo=%d saw=%d), brute force (hi=%d lo=%d saw=%d)",
				sc.m, sc.mode, sc.mlcPlane, j, g, nib,
				got&0xFF, got>>8&0xFF, got>>16&0xFF, hi, lo, saw)
		}
	}
	for trial := 0; trial < 150; trial++ {
		mlcPlane := trial%2 == 0
		n := 64
		if mlcPlane {
			n = 32
		}
		ctx := equivCtx(rng, n, mlcPlane)
		// m=2 exercises the partial final group (lastNibMask = 0x3);
		// the wider kernels cover multi-group partitions.
		for _, m := range []int{2, 8, 16, 32} {
			ev := NewEvaluator(ctx, ObjEnergySAW)
			if !sc.Bind(ev, m) {
				t.Fatalf("Bind failed for supported config n=%d m=%d", n, m)
			}
			if !sc.tabOK {
				t.Fatalf("ForceTables bind built no tables (n=%d m=%d)", n, m)
			}
			for j := 0; j < sc.p; j++ {
				for g := 0; g < sc.groups; g++ {
					gmask := uint64(0xF)
					if g == sc.groups-1 {
						gmask = sc.lastNibMask
					}
					for nib := uint64(0); nib < 16; nib++ {
						if nib&^gmask != 0 {
							continue // candidates never index past the partition width
						}
						ent := sc.nibTab[(j*sc.groups+g)*16+int(nib)]
						checkHalf(t, &sc, j, g, nib, uint32(ent))
						checkHalf(t, &sc, j, g, nib^gmask, uint32(ent>>32))
					}
				}
			}
		}
	}
}
