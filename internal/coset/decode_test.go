package coset

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

// The line-decode contract is the same as the encode one: DecodeWords
// must equal a per-word Decode loop bit-for-bit, for every plan shape —
// stored ROMs read pre-tiled kernels, generated sources answer single
// kernels through KernelAt, FNW collapses to a flag-table XOR, and
// geometries too wide for the plan fall back to Decode itself.

// lineDecCases spans every DecodeWords dispatch arm at least once.
func lineDecCases() []struct {
	name string
	dec  LineDecoder
	n, p int
	r    int // kernel-index range for aux synthesis; 0 = no index bits
} {
	return []struct {
		name string
		dec  LineDecoder
		n, p int
		r    int
	}{
		// storedTiled arm.
		{"VCC-Stored(64,256,16)", NewVCCStored(64, 16, 256, 1), 64, 4, 16},
		{"VCC-Stored(32,64,16)", NewVCCStored(32, 16, 64, 3), 32, 2, 16},
		// kat arm (generated and hybrid-over-generated sources).
		{"VCC-Gen(16,256)", NewVCCGenerated(16, 256), 32, 2, 64},
		{"VCC-Gen(8,256)", NewVCCGenerated(8, 256), 32, 4, 16},
		{"VCC-Hybrid-Gen", NewVCC(32, WithHybridKernels(NewGeneratedKernels(32, 16, 16))), 32, 2, 17},
		// Hybrid over a ROM reports Stored() and lands on storedTiled.
		{"VCC-Hybrid-Stored", NewVCC(64, WithHybridKernels(NewStoredKernels(15, 16, 5))), 64, 4, 16},
		// p > vccFlagTabMaxP: plan disabled, per-word Decode fallback.
		{"VCC-Stored(64,65536,1)m4", NewVCCStored(64, 4, 1<<16, 7), 64, 16, 1},
		// FNW flag-table arm and its wide-p fallback.
		{"FNW(64,16)", NewFNW(64, 16), 64, 4, 0},
		{"FNW(32,16)", NewFNW(32, 16), 32, 2, 0},
		{"FNW(64,4)", NewFNW(64, 4), 64, 16, 0},
	}
}

// TestDecodeWordsMatchesDecode pins the batched decode against the
// per-word reference on random stored lines. Inputs are synthesized
// directly — any (enc, aux, left) with an in-range kernel index is a
// legal stored word, whether or not an encoder would have produced it,
// so the oracle covers the whole input domain rather than only
// encoder-reachable points.
func TestDecodeWordsMatchesDecode(t *testing.T) {
	rng := prng.New(0xDEC0DE)
	const wordsPerLine = 8
	for _, tc := range lineDecCases() {
		t.Run(tc.name, func(t *testing.T) {
			var enc, aux, left, got, want [wordsPerLine]uint64
			for trial := 0; trial < 200; trial++ {
				for i := 0; i < wordsPerLine; i++ {
					// Raw 64-bit stored values: Decode masks to the plane
					// width itself, so garbage high bits must not leak.
					enc[i] = rng.Uint64()
					left[i] = rng.Uint64() & bitutil.Mask(32)
					if tc.r > 0 {
						ki := rng.Uint64() % uint64(tc.r)
						aux[i] = ki<<uint(tc.p) | rng.Uint64()&bitutil.Mask(tc.p)
					} else {
						// FNW ignores aux bits above the sub-block count.
						aux[i] = rng.Uint64()
					}
					want[i] = tc.dec.Decode(enc[i], aux[i], left[i])
				}
				tc.dec.DecodeWords(enc[:], aux[:], left[:], got[:])
				for i := 0; i < wordsPerLine; i++ {
					if got[i] != want[i] {
						t.Fatalf("trial %d word %d: DecodeWords = %#x, Decode = %#x (enc=%#x aux=%#x left=%#x)",
							trial, i, got[i], want[i], enc[i], aux[i], left[i])
					}
				}
			}
		})
	}
}

// TestDecodeWordsRoundTripsEncode closes the loop through the encoder:
// encode 8 random words under random contexts, batch-decode the line,
// and require the original data back. This is the controller's actual
// read path in miniature (memctrl.ReadLine drives DecodeWords the same
// way), exercising encoder-shaped aux rather than uniform aux.
func TestDecodeWordsRoundTripsEncode(t *testing.T) {
	rng := prng.New(0x0DEC)
	const wordsPerLine = 8
	for _, ec := range equivCodecs() {
		dec, ok := ec.codec.(LineDecoder)
		if !ok {
			continue
		}
		t.Run(ec.name, func(t *testing.T) {
			var enc, aux, left, data, got [wordsPerLine]uint64
			for trial := 0; trial < 100; trial++ {
				for i := 0; i < wordsPerLine; i++ {
					ctx := equivCtx(rng, ec.n, ec.mlcPlane)
					data[i] = rng.Uint64() & bitutil.Mask(ec.n)
					left[i] = ctx.NewLeft
					ev := NewEvaluator(ctx, ObjEnergySAW)
					enc[i], aux[i] = ec.codec.Encode(data[i], ev)
				}
				dec.DecodeWords(enc[:], aux[:], left[:], got[:])
				for i := 0; i < wordsPerLine; i++ {
					if got[i] != data[i] {
						t.Fatalf("trial %d word %d: round trip = %#x, want %#x",
							trial, i, got[i], data[i])
					}
				}
			}
		})
	}
}

// BenchmarkDecode compares the batched line decode against the per-word
// reference loop for the engine's codec shapes (the benchreport
// decode/* pairs run the same kernels).
func BenchmarkDecode(b *testing.B) {
	const wordsPerLine = 8
	cases := []struct {
		name string
		dec  LineDecoder
		n, p int
		r    int
	}{
		{"vcc_stored256", NewVCCStored(64, 16, 256, 1), 64, 4, 16},
		{"vcc_gen256", NewVCCGenerated(16, 256), 32, 2, 64},
		{"fnw16", NewFNW(64, 16), 64, 4, 0},
	}
	for _, tc := range cases {
		rng := prng.New(0xBE7C)
		var enc, aux, left, out [wordsPerLine]uint64
		for i := 0; i < wordsPerLine; i++ {
			enc[i] = rng.Uint64()
			left[i] = rng.Uint64() & bitutil.Mask(32)
			if tc.r > 0 {
				aux[i] = (rng.Uint64()%uint64(tc.r))<<uint(tc.p) |
					rng.Uint64()&bitutil.Mask(tc.p)
			} else {
				aux[i] = rng.Uint64()
			}
		}
		b.Run(tc.name+"/line", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.dec.DecodeWords(enc[:], aux[:], left[:], out[:])
			}
		})
		b.Run(tc.name+"/word", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for w := 0; w < wordsPerLine; w++ {
					out[w] = tc.dec.Decode(enc[w], aux[w], left[w])
				}
			}
		})
	}
}
