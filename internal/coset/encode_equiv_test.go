package coset

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// The fast-path contract is bit-identity: for every codec exposing
// EncodeSliced, (enc, aux) must equal EncodeRef's output exactly — same
// winning virtual coset, same tie-breaks — across objectives, cell
// modes, stuck-cell patterns and energy models. These tests are the
// oracle; FuzzEncodeEquivalence keeps hunting after they pass.

// equivCodec pairs a codec with the context shapes it supports.
type equivCodec struct {
	name     string
	codec    Codec
	n        int
	mlcPlane bool // exercise the MLC right-digit-plane configuration
}

func equivCodecs() []equivCodec {
	return []equivCodec{
		{"VCC-Stored(64,256,16)", NewVCCStored(64, 16, 256, 1), 64, false},
		{"VCC-Stored(64,8,2)m32", NewVCCStored(64, 32, 8, 4), 64, false},
		{"VCC-Stored(32,64,16)", NewVCCStored(32, 16, 64, 3), 32, true},
		{"VCC-Gen(16,256)", NewVCCGenerated(16, 256), 32, true},
		{"VCC-Gen(16,64)", NewVCCGenerated(16, 64), 32, true},
		{"VCC-Gen(8,256)", NewVCCGenerated(8, 256), 32, true},
		{"VCC-Hybrid", NewVCC(32, WithHybridKernels(NewGeneratedKernels(32, 16, 16))), 32, true},
		{"FNW(64,16)", NewFNW(64, 16), 64, false},
		{"FNW(64,8)", NewFNW(64, 8), 64, false},
		{"FNW(32,16)", NewFNW(32, 16), 32, true},
		{"RCC(64,256)", NewRCC(64, 256, 1), 64, false},
		{"RCC(32,16)", NewRCC(32, 16, 2), 32, true},
		{"Flipcy(64)", NewFlipcy(64), 64, false},
	}
}

// referenceEncode routes a codec to its retained reference search. For
// the explicit-candidate codecs (RCC, Flipcy) the bestOf sweep over
// Full+Aux is the reference; re-running Encode on a freshly constructed
// evaluator is exactly that sweep, so fast-vs-ref only diverges for the
// sliced codecs — which is where the assertion has teeth.
func referenceEncode(c Codec, data uint64, ev *Evaluator) (uint64, uint64) {
	switch rc := c.(type) {
	case *VCC:
		return rc.EncodeRef(data, ev)
	case *FNW:
		return rc.EncodeRef(data, ev)
	default:
		return c.Encode(data, ev)
	}
}

// equivCtx derives a randomized write context. Stuck cells arrive in
// both sparse-bit (SLC) and whole-symbol (MLC) shapes, old aux bits and
// the left plane are random, and occasionally a custom (non-default)
// energy model replaces Table I's to exercise arbitrary float costs.
func equivCtx(rng *prng.Rand, n int, mlcPlane bool) Ctx {
	mode := pcm.MLC
	if !mlcPlane && rng.Bool() {
		mode = pcm.SLC
	}
	var stuckMask uint64
	switch rng.Uint64() % 3 {
	case 0: // healthy word
	case 1: // a few stuck cells
		if mode == pcm.MLC {
			stuckMask = bitutil.ExpandSymbolMask(rng.Uint64() & rng.Uint64() & bitutil.Mask(32))
		} else {
			stuckMask = rng.Uint64() & rng.Uint64() & rng.Uint64()
		}
	default: // dense damage
		if mode == pcm.MLC {
			stuckMask = bitutil.ExpandSymbolMask(rng.Uint64() & bitutil.Mask(32))
		} else {
			stuckMask = rng.Uint64()
		}
	}
	ctx := Ctx{
		N: n, Mode: mode, MLCPlane: mlcPlane,
		OldWord:   rng.Uint64(),
		NewLeft:   rng.Uint64() & bitutil.Mask(32),
		StuckMask: stuckMask,
		StuckVal:  rng.Uint64() & stuckMask,
		OldAux:    rng.Uint64() & 0xFFFF,
	}
	if rng.Uint64()%4 == 0 {
		ctx.Energy = pcm.EnergyModel{
			MLCHighPJ: 7.25, MLCLowPJ: 1.1,
			SLCSetPJ: 3.3, SLCResetPJ: 11.7,
		}
	}
	return ctx
}

var equivObjectives = []Objective{ObjFlips, ObjOnes, ObjEnergySAW, ObjSAWEnergy}

// setTableMode drives the SlicedCtx nibble-table toggles through their
// three states — 0: BindFor's amortization threshold decides, 1: tables
// forced on every bind, 2: tables disabled (direct per-symbol pricing) —
// so equivalence trials cross-check table-driven against direct pricing
// on identical contexts.
func setTableMode(sc *SlicedCtx, mode int) {
	sc.ForceTables = mode == 1
	sc.DisableTables = mode == 2
}

// TestFastEncodeMatchesReference is the randomized equivalence oracle:
// every sliced-path codec, 4 objectives, SLC + MLC (full-word and
// right-digit plane), random stuck patterns and old aux, against the
// retained reference evaluator search. A shared SlicedCtx is reused
// across all trials, mimicking the controller's per-word rebinding, and
// trials rotate through the three table modes so the nibble-table and
// direct pricing paths are both held to the reference.
func TestFastEncodeMatchesReference(t *testing.T) {
	rng := prng.New(0x5E11CED)
	var sc SlicedCtx
	for _, ec := range equivCodecs() {
		t.Run(ec.name, func(t *testing.T) {
			for trial := 0; trial < 400; trial++ {
				setTableMode(&sc, trial%3)
				ctx := equivCtx(rng, ec.n, ec.mlcPlane)
				data := rng.Uint64() & bitutil.Mask(ec.n)
				for _, obj := range equivObjectives {
					evFast := NewEvaluator(ctx, obj)
					evRef := NewEvaluator(ctx, obj)
					var fastEnc, fastAux uint64
					if fc, ok := ec.codec.(FastCodec); ok {
						fastEnc, fastAux = fc.EncodeSliced(data, evFast, &sc)
					} else {
						fastEnc, fastAux = ec.codec.Encode(data, evFast)
					}
					refEnc, refAux := referenceEncode(ec.codec, data, evRef)
					if fastEnc != refEnc || fastAux != refAux {
						t.Fatalf("trial %d obj %v ctx %+v data %#x:\nfast (enc,aux) = (%#x,%#x)\nref  (enc,aux) = (%#x,%#x)",
							trial, obj, ctx, data, fastEnc, fastAux, refEnc, refAux)
					}
					// Line-scoped bind sweep: re-encoding the same word must
					// take the warm fingerprint path (every equivCodec
					// geometry binds, so the second BindFor must skip the
					// word-invariant layer) and still produce the identical
					// result — the controller's 8-words-per-line pattern.
					if fc, ok := ec.codec.(FastCodec); ok {
						rebinds := sc.fastRebinds
						warmEnc, warmAux := fc.EncodeSliced(data, NewEvaluator(ctx, obj), &sc)
						if warmEnc != fastEnc || warmAux != fastAux {
							t.Fatalf("trial %d obj %v: warm rebind diverged: (%#x,%#x) vs (%#x,%#x)",
								trial, obj, warmEnc, warmAux, fastEnc, fastAux)
						}
						if sc.fastRebinds != rebinds+1 {
							t.Fatalf("trial %d obj %v: warm re-encode took the cold bind path (fastRebinds %d -> %d)",
								trial, obj, rebinds, sc.fastRebinds)
						}
					}
					// Decode must invert the fast encoding too.
					if dec := ec.codec.Decode(fastEnc, fastAux, ctx.NewLeft); dec != data {
						t.Fatalf("trial %d obj %v: decode(fast) = %#x, want %#x",
							trial, obj, dec, data)
					}
				}
			}
		})
	}
}

// TestSlicedFallsBackToReference pins the configurations the sliced
// context cannot represent: an odd kernel width on full-word MLC would
// split symbols across partitions, and a plane-width mismatch between
// codec and context has reference-defined degenerate semantics. Both
// must transparently produce the reference result.
func TestSlicedFallsBackToReference(t *testing.T) {
	rng := prng.New(77)
	var sc SlicedCtx

	// Odd m on full-word MLC: Bind refuses, EncodeSliced defers.
	fnw := NewFNW(64, 1)
	for trial := 0; trial < 50; trial++ {
		ctx := equivCtx(rng, 64, false)
		ctx.Mode = pcm.MLC
		data := rng.Uint64()
		for _, obj := range equivObjectives {
			ev := NewEvaluator(ctx, obj)
			if (&SlicedCtx{}).Bind(ev, 1) {
				t.Fatal("Bind should refuse odd m on full-word MLC")
			}
			fe, fa := fnw.EncodeSliced(data, ev, &sc)
			re, ra := fnw.EncodeRef(data, NewEvaluator(ctx, obj))
			if fe != re || fa != ra {
				t.Fatalf("fallback mismatch: (%#x,%#x) vs (%#x,%#x)", fe, fa, re, ra)
			}
		}
	}

	// Plane-width mismatch: a 64-bit codec driven with a 32-bit context.
	vcc := NewVCCStored(64, 16, 64, 9)
	for trial := 0; trial < 50; trial++ {
		ctx := equivCtx(rng, 32, false)
		data := rng.Uint64()
		ev := NewEvaluator(ctx, ObjEnergySAW)
		fe, fa := vcc.EncodeSliced(data, ev, &sc)
		re, ra := vcc.EncodeRef(data, NewEvaluator(ctx, ObjEnergySAW))
		if fe != re || fa != ra {
			t.Fatalf("N-mismatch fallback diverged: (%#x,%#x) vs (%#x,%#x)", fe, fa, re, ra)
		}
	}

	// A malformed MLCPlane context claiming a 64-bit plane: Bind must
	// refuse (a right-digit plane has at most 32 symbols) rather than
	// slice past bit 64, and Encode must match the reference's
	// degenerate handling.
	for trial := 0; trial < 50; trial++ {
		ctx := equivCtx(rng, 64, false)
		ctx.MLCPlane = true
		ctx.Mode = pcm.MLC
		data := rng.Uint64()
		ev := NewEvaluator(ctx, ObjEnergySAW)
		if (&SlicedCtx{}).Bind(ev, 16) {
			t.Fatal("Bind should refuse MLCPlane with N > 32")
		}
		fe, fa := vcc.EncodeSliced(data, ev, &sc)
		re, ra := vcc.EncodeRef(data, NewEvaluator(ctx, ObjEnergySAW))
		if fe != re || fa != ra {
			t.Fatalf("wide-MLCPlane fallback diverged: (%#x,%#x) vs (%#x,%#x)", fe, fa, re, ra)
		}
	}
}

// TestRawLiteralEvaluatorSelfHeals pins the raw-literal escape hatch:
// an Evaluator built without Reset (zero-value EnergyModel, hoists
// unbound) must price and encode exactly like a Reset one — both Bind
// and the reference eval self-heal by rebinding, so the fast and
// reference paths see identical defaulted contexts.
func TestRawLiteralEvaluatorSelfHeals(t *testing.T) {
	rng := prng.New(0x117)
	codecs := []Codec{NewVCCStored(64, 16, 64, 9), NewFNW(64, 16)}
	for trial := 0; trial < 100; trial++ {
		ctx := equivCtx(rng, 64, false)
		ctx.Energy = pcm.EnergyModel{} // force the default substitution
		data := rng.Uint64()
		for _, c := range codecs {
			for _, obj := range equivObjectives {
				raw := &Evaluator{Ctx: ctx, Obj: obj}
				bound := NewEvaluator(ctx, obj)
				fe, fa := c.Encode(data, raw)
				re, ra := c.Encode(data, bound)
				if fe != re || fa != ra {
					t.Fatalf("raw-literal evaluator diverged on %s obj %v: (%#x,%#x) vs (%#x,%#x)",
						c.Name(), obj, fe, fa, re, ra)
				}
			}
		}
	}
}

// TestSlicedCtxPartCostMatchesPart checks the low-level contract
// directly: PartCost(j, v) must equal Part(v<<(j*m), j, m) bit-for-bit
// on random contexts, for every partition, objective and table mode —
// the invariant the whole fast path is built on. PartCostPair must agree
// with two PartCost calls (its fused table walk reads the packed
// complement halves, a genuinely different code path).
func TestSlicedCtxPartCostMatchesPart(t *testing.T) {
	rng := prng.New(0xC057)
	var sc SlicedCtx
	for trial := 0; trial < 300; trial++ {
		mlcPlane := trial%2 == 0
		n := 64
		if mlcPlane {
			n = 32
		}
		ctx := equivCtx(rng, n, mlcPlane)
		for _, m := range []int{8, 16, 32} {
			if n%m != 0 {
				continue
			}
			for _, obj := range equivObjectives {
				for mode := 0; mode < 3; mode++ {
					setTableMode(&sc, mode)
					ev := NewEvaluator(ctx, obj)
					if !sc.Bind(ev, m) {
						t.Fatalf("Bind failed for supported config n=%d m=%d", n, m)
					}
					for j := 0; j < n/m; j++ {
						v := rng.Uint64() & bitutil.Mask(m)
						got := sc.PartCost(j, v)
						want := ev.Part(v<<uint(j*m), j, m)
						if got != want {
							t.Fatalf("PartCost(%d,%#x) m=%d obj=%v mode=%d = %+v, want %+v",
								j, v, m, obj, mode, got, want)
						}
						gotV, gotC := sc.PartCostPair(j, v)
						wantC := ev.Part((v^bitutil.Mask(m))<<uint(j*m), j, m)
						if gotV != want || gotC != wantC {
							t.Fatalf("PartCostPair(%d,%#x) m=%d obj=%v mode=%d = (%+v,%+v), want (%+v,%+v)",
								j, v, m, obj, mode, gotV, gotC, want, wantC)
						}
					}
					// And the aux table against the reference switch.
					for b := 0; b < 16; b++ {
						for val := uint64(0); val < 2; val++ {
							if got, want := sc.AuxBit(b, val), ev.AuxBit(b, val); got != want {
								t.Fatalf("AuxBit(%d,%d) = %+v, want %+v", b, val, got, want)
							}
						}
					}
				}
			}
		}
	}
	setTableMode(&sc, 0)
}

// FuzzEncodeEquivalence fuzzes the fast path against the reference
// search over raw context bytes. Run with `go test -fuzz
// FuzzEncodeEquivalence ./internal/coset` to hunt; the seed corpus plus
// any minimized crashers run as part of the normal test suite.
func FuzzEncodeEquivalence(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint8(0), uint8(0))
	f.Add(uint64(0xDEADBEEFCAFEF00D), uint64(0x0123456789ABCDEF), uint64(0xFFFFFFFF),
		uint64(0xF0F0F0F0F0F0F0F0), uint64(0x5555555555555555), uint64(0xAB), uint8(2), uint8(1))
	f.Add(^uint64(0), uint64(1), uint64(2), uint64(3), uint64(4), uint64(5), uint8(3), uint8(6))
	// Seeds pinning the forced-table and table-disabled pricing paths
	// (codecSel bits 6-7 select the table mode below).
	f.Add(uint64(0xABCDEF), uint64(0x1234), uint64(0x5678), uint64(0xFF00FF),
		uint64(0xF000F0), uint64(0x3C), uint8(2), uint8(0x40|3))
	f.Add(uint64(0xABCDEF), uint64(0x1234), uint64(0x5678), uint64(0xFF00FF),
		uint64(0xF000F0), uint64(0x3C), uint8(2), uint8(0x80|3))
	// Seed pinning the warm line-bind re-encode (objSel bit 4) on the
	// stored-kernel codec, whose fast scan the warm path feeds.
	f.Add(uint64(0x5CC5CC), uint64(0x9999), uint64(0x1111), uint64(0xF0F0),
		uint64(0x5050), uint64(0x7), uint8(0x10|2), uint8(0))

	codecs := equivCodecs()
	var sc SlicedCtx
	f.Fuzz(func(t *testing.T, data, old, left, stuckMask, stuckVal, oldAux uint64,
		objSel, codecSel uint8) {
		ec := codecs[int(codecSel)%len(codecs)]
		obj := equivObjectives[int(objSel)%len(equivObjectives)]
		// codecSel's high bits are spare entropy (13 codecs fit in the low
		// six); they steer the nibble-table toggles so the fuzzer hunts
		// across table-driven, direct, and threshold-decided pricing.
		setTableMode(&sc, int(codecSel>>6)%3)
		mode := pcm.MLC
		if objSel&4 != 0 && !ec.mlcPlane {
			mode = pcm.SLC
		}
		if mode == pcm.MLC && objSel&8 == 0 {
			// Bias toward physically-plausible whole-symbol stuck cells
			// half the time; keep raw patterns the other half.
			stuckMask = bitutil.ExpandSymbolMask(stuckMask & bitutil.Mask(32))
		}
		ctx := Ctx{
			N: ec.n, Mode: mode, MLCPlane: ec.mlcPlane,
			OldWord:   old,
			NewLeft:   left & bitutil.Mask(32),
			StuckMask: stuckMask,
			StuckVal:  stuckVal & stuckMask,
			OldAux:    oldAux,
		}
		data &= bitutil.Mask(ec.n)
		evFast := NewEvaluator(ctx, obj)
		evRef := NewEvaluator(ctx, obj)
		var fastEnc, fastAux uint64
		if fc, ok := ec.codec.(FastCodec); ok {
			fastEnc, fastAux = fc.EncodeSliced(data, evFast, &sc)
		} else {
			fastEnc, fastAux = ec.codec.Encode(data, evFast)
		}
		refEnc, refAux := referenceEncode(ec.codec, data, evRef)
		if fastEnc != refEnc || fastAux != refAux {
			t.Fatalf("%s obj %v: fast (%#x,%#x) != ref (%#x,%#x)",
				ec.name, obj, fastEnc, fastAux, refEnc, refAux)
		}
		// objSel bit 4 re-encodes through the warm line-bind fingerprint:
		// the second pass must skip the word-invariant bind layer yet
		// remain bit-identical to the cold result.
		if objSel&16 != 0 {
			if fc, ok := ec.codec.(FastCodec); ok {
				rebinds := sc.fastRebinds
				warmEnc, warmAux := fc.EncodeSliced(data, NewEvaluator(ctx, obj), &sc)
				if warmEnc != fastEnc || warmAux != fastAux {
					t.Fatalf("%s obj %v: warm rebind diverged: (%#x,%#x) vs (%#x,%#x)",
						ec.name, obj, warmEnc, warmAux, fastEnc, fastAux)
				}
				if sc.fastRebinds != rebinds+1 {
					t.Fatalf("%s obj %v: warm re-encode took the cold bind path", ec.name, obj)
				}
			}
		}
	})
}
