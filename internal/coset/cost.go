// Package coset implements the paper's primary contribution — Virtual
// Coset Coding (Algorithm 1) with stored and generated kernels
// (Algorithm 2) — together with every coset baseline it is evaluated
// against: random coset coding (RCC), biased coset coding
// (Flip-N-Write/DBI) and Flipcy, all behind one Codec interface driven by
// pluggable lexicographic cost functions (bit flips, MLC write energy,
// stuck-at-wrong cells).
//
// # Planes and contexts
//
// A codec operates on an n-bit "plane" carried in the low bits of a
// uint64. Two configurations appear throughout:
//
//   - full-word: the plane is the whole 64-bit data block (SLC memories,
//     or full-word RCC on MLC);
//   - MLC right-digit plane (paper Section IV-B): the plane is the 32
//     right digits of a 64-bit MLC word. The 32 left digits pass through
//     unencoded — Table I makes write energy insensitive to them — and
//     double as the entropy source for generated coset kernels.
//
// The Evaluator binds a write context (old word, stuck cells, old aux
// bits, energy model) to an Objective and can price a whole candidate or
// any single partition of it, which is what lets VCC evaluate kernels and
// their complements partition-by-partition exactly as the hardware does.
package coset

import (
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/pcm"
)

// Pair is a lexicographic cost: compare Primary first, break ties with
// Secondary. The paper's two optimization modes are (energy, SAW) and
// (SAW, energy) — Section VI-A.
type Pair struct {
	Primary   float64
	Secondary float64
}

// Less reports whether p is strictly cheaper than q lexicographically.
func (p Pair) Less(q Pair) bool {
	if p.Primary != q.Primary {
		return p.Primary < q.Primary
	}
	return p.Secondary < q.Secondary
}

// Add returns the component-wise sum.
func (p Pair) Add(q Pair) Pair {
	return Pair{p.Primary + q.Primary, p.Secondary + q.Secondary}
}

// Objective selects what a candidate costs.
type Objective int

const (
	// ObjFlips minimizes changed cells (symbols for MLC, bits for SLC):
	// the classic write-reduction objective.
	ObjFlips Objective = iota
	// ObjOnes minimizes the Hamming weight of the written code word plus
	// its auxiliary bits — the cost used in the paper's Fig. 3 worked
	// example and Algorithm 1.
	ObjOnes
	// ObjEnergySAW minimizes write energy first and stuck-at-wrong cells
	// second (the paper's "Opt. Energy").
	ObjEnergySAW
	// ObjSAWEnergy minimizes stuck-at-wrong cells first and energy
	// second (the paper's "Opt. SAW").
	ObjSAWEnergy
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjFlips:
		return "flips"
	case ObjOnes:
		return "ones"
	case ObjEnergySAW:
		return "energy+saw"
	case ObjSAWEnergy:
		return "saw+energy"
	default:
		return "objective?"
	}
}

// Ctx is the physical write context a candidate is priced against.
type Ctx struct {
	// N is the plane width in bits: 64 for full-word, 32 for the MLC
	// right-digit plane.
	N int
	// Mode is the cell technology of the target word.
	Mode pcm.CellMode
	// MLCPlane marks the right-digit-plane configuration: candidates are
	// 32-bit planes merged with NewLeft before hitting the cells.
	MLCPlane bool
	// OldWord is the full 64-bit word currently stored in the cells.
	OldWord uint64
	// NewLeft holds the incoming word's 32 left digits (MLCPlane only).
	NewLeft uint64
	// StuckMask/StuckVal describe stuck cells of the word (full-word bit
	// coordinates, both bits of a stuck MLC cell set).
	StuckMask uint64
	StuckVal  uint64
	// OldAux is the auxiliary-bit value currently stored for this word.
	OldAux uint64
	// Energy prices transitions; zero value falls back to pcm.DefaultEnergy.
	Energy pcm.EnergyModel
}

// Evaluator prices candidate planes under one objective. It is cheap to
// construct per write.
//
// Reset hoists the per-write invariants below; Ctx must therefore not be
// mutated in place after binding — Reset with the changed context
// instead.
type Evaluator struct {
	Ctx Ctx
	Obj Objective

	// Write-context invariants hoisted by Reset so neither the reference
	// search nor the sliced fast path re-derives them per candidate:
	// planeMask is Mask(Ctx.N), fullBitMask is the whole plane in bit
	// (cell) coordinates, and leftSpread is SpreadOdd(NewLeft) — the
	// merged-left contribution of every MLC-plane candidate. planeMask is
	// also the "bound" sentinel: it is never zero after Reset, so a zero
	// value marks an evaluator built as a raw literal and eval self-heals
	// by rebinding.
	planeMask   uint64
	fullBitMask uint64
	leftSpread  uint64
}

// NewEvaluator builds an evaluator, applying defaults.
func NewEvaluator(ctx Ctx, obj Objective) *Evaluator {
	e := &Evaluator{}
	e.Reset(ctx, obj)
	return e
}

// Reset re-binds the evaluator to a new write context and objective,
// applying the same defaults as NewEvaluator. It lets a long-lived
// evaluator (e.g. one owned by a memory controller) be reused across
// word writes without a heap allocation per word.
func (e *Evaluator) Reset(ctx Ctx, obj Objective) {
	if ctx.Energy == (pcm.EnergyModel{}) {
		ctx.Energy = pcm.DefaultEnergy
	}
	if ctx.N == 0 {
		if ctx.MLCPlane {
			ctx.N = 32
		} else {
			ctx.N = 64
		}
	}
	e.Ctx, e.Obj = ctx, obj
	e.planeMask = bitutil.Mask(ctx.N)
	if ctx.MLCPlane {
		e.fullBitMask = bitutil.ExpandSymbolMask(e.planeMask & bitutil.Mask(32))
		e.leftSpread = bitutil.SpreadOdd(ctx.NewLeft)
	} else {
		e.fullBitMask = e.planeMask
		e.leftSpread = 0
	}
}

// OldPlane returns the currently-stored plane value (what the candidate
// will be compared against by flip-style objectives).
func (e *Evaluator) OldPlane() uint64 {
	if e.Ctx.MLCPlane {
		return bitutil.CompressEven(e.Ctx.OldWord)
	}
	return e.Ctx.OldWord & bitutil.Mask(e.Ctx.N)
}

// Full prices the complete candidate plane.
func (e *Evaluator) Full(candidate uint64) Pair {
	if e.planeMask == 0 {
		e.Reset(e.Ctx, e.Obj) // raw-literal evaluator: bind the hoists
	}
	return e.eval(candidate, e.planeMask)
}

// Part prices only partition j (width m) of the candidate plane. The
// candidate's bits for that partition must be in place (i.e. at bit
// offset j*m); other bits are ignored. Summing Part over all partitions
// equals Full.
func (e *Evaluator) Part(candidate uint64, j, m int) Pair {
	return e.eval(candidate, bitutil.Mask(m)<<uint(j*m))
}

// eval prices the candidate restricted to planeMask (plane coordinates).
func (e *Evaluator) eval(candidate, planeMask uint64) Pair {
	if e.planeMask == 0 {
		e.Reset(e.Ctx, e.Obj) // raw-literal evaluator: bind the hoists
	}
	c := &e.Ctx
	var desired, bitMask uint64
	if c.MLCPlane {
		desired = e.leftSpread | bitutil.SpreadEven(candidate)
		if planeMask == e.planeMask {
			bitMask = e.fullBitMask
		} else {
			bitMask = bitutil.ExpandSymbolMask(planeMask & bitutil.Mask(32))
		}
	} else {
		desired = candidate & e.planeMask
		bitMask = planeMask & e.planeMask
	}
	stored := (desired &^ c.StuckMask) | (c.StuckVal & c.StuckMask)

	switch e.Obj {
	case ObjOnes:
		return Pair{float64(bits.OnesCount64(candidate & planeMask)), 0}
	case ObjFlips:
		return Pair{float64(e.cellChanges(stored, bitMask)), 0}
	case ObjEnergySAW:
		return Pair{e.energy(stored, bitMask), float64(e.saw(desired, bitMask))}
	case ObjSAWEnergy:
		return Pair{float64(e.saw(desired, bitMask)), e.energy(stored, bitMask)}
	default:
		panic("coset: unknown objective")
	}
}

func (e *Evaluator) cellChanges(stored, bitMask uint64) int {
	diff := (e.Ctx.OldWord ^ stored) & bitMask
	if e.Ctx.Mode == pcm.MLC {
		return bits.OnesCount64(bitutil.CollapseBitMaskToSymbols(diff))
	}
	return bits.OnesCount64(diff)
}

func (e *Evaluator) energy(stored, bitMask uint64) float64 {
	if e.Ctx.Mode == pcm.MLC {
		if e.Ctx.MLCPlane {
			// bitMask came from ExpandSymbolMask, so the normalizing
			// collapse/expand round trip inside the masked variant is a
			// no-op — skip it.
			return e.Ctx.Energy.MLCWordEnergyExpandedMask(e.Ctx.OldWord, stored, bitMask)
		}
		return e.Ctx.Energy.MLCWordEnergyMasked(e.Ctx.OldWord, stored, bitMask)
	}
	return e.Ctx.Energy.SLCWordEnergyMasked(e.Ctx.OldWord, stored, bitMask)
}

func (e *Evaluator) saw(desired, bitMask uint64) int {
	wrong := (desired ^ e.Ctx.StuckVal) & e.Ctx.StuckMask & bitMask
	if e.Ctx.Mode == pcm.MLC {
		return bits.OnesCount64(bitutil.CollapseBitMaskToSymbols(wrong))
	}
	return bits.OnesCount64(wrong)
}

// AuxBit prices writing a single auxiliary bit (bit position bitIdx of
// the aux index) with value val (0 or 1). Aux cost decomposes per bit for
// every objective in this package, which lets VCC fold each partition's
// flag-bit cost into the partition decision and stay exactly optimal over
// all N virtual cosets (see VCC.Encode).
func (e *Evaluator) AuxBit(bitIdx int, val uint64) Pair {
	old := e.Ctx.OldAux >> uint(bitIdx) & 1
	val &= 1
	switch e.Obj {
	case ObjOnes:
		return Pair{float64(val), 0}
	case ObjFlips:
		if old != val {
			return Pair{1, 0}
		}
		return Pair{}
	case ObjEnergySAW, ObjSAWEnergy:
		var en float64
		if old != val {
			if e.Ctx.Mode == pcm.MLC {
				if val == 1 {
					en = e.Ctx.Energy.MLCHighPJ
				} else {
					en = e.Ctx.Energy.MLCLowPJ
				}
			} else {
				if val == 1 {
					en = e.Ctx.Energy.SLCSetPJ
				} else {
					en = e.Ctx.Energy.SLCResetPJ
				}
			}
		}
		if e.Obj == ObjEnergySAW {
			return Pair{en, 0}
		}
		return Pair{0, en}
	default:
		panic("coset: unknown objective")
	}
}

// Aux prices writing the nbits-wide auxiliary index aux over the old aux
// value. Aux cells are modeled as healthy spare cells of the same
// technology (see pcm.EnergyModel.AuxBitsEnergy); Algorithm 1 line 19
// requires candidate selection to include this term.
func (e *Evaluator) Aux(aux uint64, nbits int) Pair {
	if nbits == 0 {
		return Pair{}
	}
	c := &e.Ctx
	switch e.Obj {
	case ObjOnes:
		return Pair{float64(bits.OnesCount64(aux & bitutil.Mask(nbits))), 0}
	case ObjFlips:
		return Pair{float64(bitutil.HammingDistanceMasked(aux, c.OldAux,
			bitutil.Mask(nbits))), 0}
	case ObjEnergySAW:
		return Pair{c.Energy.AuxBitsEnergy(c.Mode, c.OldAux, aux, nbits), 0}
	case ObjSAWEnergy:
		return Pair{0, c.Energy.AuxBitsEnergy(c.Mode, c.OldAux, aux, nbits)}
	default:
		panic("coset: unknown objective")
	}
}
