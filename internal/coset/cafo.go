package coset

import "repro/internal/bitutil"

// CAFO implements the two-dimensional Flip-N-Write of Maddah et al.
// (HPCA 2015, the paper's reference [25], discussed in Section II-C): a
// cache line is viewed as a bit matrix of `rows` words by 64 columns,
// and row inversions and column inversions are applied alternately until
// no single flip reduces the cost any further. Auxiliary state is one
// flip bit per row plus one per column.
//
// Like the other biased techniques, CAFO shines on biased data and loses
// its edge on encrypted lines; it is provided as the strongest member of
// the biased family for the ablations.
type CAFO struct {
	rows     int
	maxIters int
}

// NewCAFO builds a 2D-FNW encoder over `rows` 64-bit words (8 for a
// 512-bit line), iterating at most maxIters row/column passes (the
// original proposal converges in a handful).
func NewCAFO(rows, maxIters int) *CAFO {
	if rows <= 0 || maxIters <= 0 {
		panic("coset: CAFO needs positive rows and iterations")
	}
	return &CAFO{rows: rows, maxIters: maxIters}
}

// Rows returns the matrix height.
func (c *CAFO) Rows() int { return c.rows }

// AuxBits returns the auxiliary budget: one bit per row + one per column.
func (c *CAFO) AuxBits() int { return c.rows + 64 }

// cost is the Hamming distance of the candidate matrix to old.
func cafoCost(words, old []uint64) int {
	total := 0
	for i := range words {
		total += bitutil.HammingDistance(words[i], old[i])
	}
	return total
}

// Encode minimizes bit flips of the line against old (both length Rows)
// by alternating greedy row and column inversion passes. It returns the
// encoded words (a fresh slice), the row-flip mask and the column-flip
// mask.
func (c *CAFO) Encode(line, old []uint64) (enc []uint64, rowFlips uint64, colFlips uint64) {
	if len(line) != c.rows || len(old) != c.rows {
		panic("coset: CAFO line length mismatch")
	}
	enc = append([]uint64(nil), line...)
	for iter := 0; iter < c.maxIters; iter++ {
		improved := false
		// Row pass: flip any row whose inversion reduces its distance
		// (accounting for its aux bit by requiring strict improvement
		// of more than 1 bit).
		for i := 0; i < c.rows; i++ {
			d := bitutil.HammingDistance(enc[i], old[i])
			dInv := 64 - d
			if dInv+1 < d {
				enc[i] = ^enc[i]
				rowFlips ^= 1 << uint(i)
				improved = true
			}
		}
		// Column pass: flip any column where more than half the bits
		// (plus the aux bit) disagree.
		for col := 0; col < 64; col++ {
			mask := uint64(1) << uint(col)
			bad := 0
			for i := 0; i < c.rows; i++ {
				if (enc[i]^old[i])&mask != 0 {
					bad++
				}
			}
			if (c.rows-bad)+1 < bad {
				for i := 0; i < c.rows; i++ {
					enc[i] ^= mask
				}
				colFlips ^= mask
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return enc, rowFlips, colFlips
}

// Decode inverts Encode given the flip masks.
func (c *CAFO) Decode(enc []uint64, rowFlips, colFlips uint64) []uint64 {
	if len(enc) != c.rows {
		panic("coset: CAFO line length mismatch")
	}
	out := make([]uint64, c.rows)
	for i := range out {
		v := enc[i] ^ colFlips
		if rowFlips>>uint(i)&1 == 1 {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// FlipsAgainst reports the total bit flips (including aux bits, modeled
// as starting from zero) the encoded line costs against old.
func (c *CAFO) FlipsAgainst(line, old []uint64) int {
	enc, rf, cf := c.Encode(line, old)
	return cafoCost(enc, old) + bitutil.OnesCount(rf) + bitutil.OnesCount(cf)
}
