package coset

import (
	"fmt"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

// FNW implements Flip-N-Write / data block inversion (Cho & Lee, MICRO
// 2009; Section II-C of the paper): the plane is split into k-bit
// sub-blocks and each is written directly or inverted, whichever is
// cheaper, with one auxiliary bit per sub-block. Viewed as coset coding
// this is BCC with the biased candidates {0...0, 1...1} per sub-block.
// The paper evaluates it at 16-bit granularity under the label "DBI/FNW".
type FNW struct {
	n, k int
	// sc backs the plain Encode entry point with the sliced fast path;
	// controllers pass their own context via EncodeSliced.
	sc SlicedCtx
	// flagTab maps the aux bits to the full-plane inversion mask they
	// select (built when the sub-block count fits the same table budget
	// as VCC's decode plan), making DecodeWords one XOR per word.
	flagTab []uint64
}

// NewFNW returns a Flip-N-Write codec over n-bit planes with k-bit
// sub-blocks. k must divide n.
func NewFNW(n, k int) *FNW {
	if n%k != 0 {
		panic(fmt.Sprintf("coset: FNW k=%d must divide n=%d", k, n))
	}
	c := &FNW{n: n, k: k}
	if p := n / k; p <= vccFlagTabMaxP {
		kMask := bitutil.Mask(k)
		c.flagTab = make([]uint64, 1<<uint(p))
		for f := 1; f < len(c.flagTab); f++ {
			low := uint(bits.TrailingZeros(uint(f)))
			c.flagTab[f] = c.flagTab[f&(f-1)] | kMask<<(low*uint(k))
		}
	}
	return c
}

// Name implements Codec.
func (c *FNW) Name() string { return "DBI/FNW" }

// PlaneBits implements Codec.
func (c *FNW) PlaneBits() int { return c.n }

// AuxBits implements Codec.
func (c *FNW) AuxBits() int { return c.n / c.k }

// Encode implements Codec. Selection is per sub-block, as in the
// hardware: for decomposable costs this is globally optimal. Like VCC,
// Encode runs the sliced fast path against codec-owned scratch;
// EncodeRef retains the direct Evaluator search the equivalence suite
// checks against.
func (c *FNW) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	return c.EncodeSliced(data, ev, &c.sc)
}

// EncodeRef is the reference per-sub-block search.
func (c *FNW) EncodeRef(data uint64, ev *Evaluator) (uint64, uint64) {
	p := c.n / c.k
	var enc, aux uint64
	for j := 0; j < p; j++ {
		d := bitutil.SubBlock(data, j, c.k)
		plain := d << uint(j*c.k)
		flipped := (d ^ bitutil.Mask(c.k)) << uint(j*c.k)
		costP := ev.Part(plain, j, c.k)
		costF := ev.Part(flipped, j, c.k)
		if costF.Less(costP) {
			enc |= flipped
			aux |= 1 << uint(j)
		} else {
			enc |= plain
		}
	}
	return enc, aux
}

// EncodeSliced implements FastCodec: each sub-block's two candidates are
// priced through the sliced context. FNW charges no aux cost in its
// per-block decision (one flag bit is written either way and the
// historical selection rule compares data cost alone), so the decision
// rule is exactly EncodeRef's, on bit-identical Pairs.
func (c *FNW) EncodeSliced(data uint64, ev *Evaluator, sc *SlicedCtx) (uint64, uint64) {
	// The bind hint is 2: FNW asks each partition for exactly one
	// candidate pair, far below the nibble-table construction threshold,
	// so Bind stays cheap and pricing runs the direct path.
	if ev.Ctx.N != c.n || !sc.BindFor(ev, c.k, 2) {
		return c.EncodeRef(data, ev)
	}
	p := c.n / c.k
	kMask := bitutil.Mask(c.k)
	var enc, aux uint64
	for j := 0; j < p; j++ {
		d := bitutil.SubBlock(data, j, c.k)
		costP, costF := sc.PartCostPair(j, d)
		if costF.Less(costP) {
			enc |= (d ^ kMask) << uint(j*c.k)
			aux |= 1 << uint(j)
		} else {
			enc |= d << uint(j*c.k)
		}
	}
	return enc, aux
}

// Decode implements Codec.
func (c *FNW) Decode(enc, aux, left uint64) uint64 {
	p := c.n / c.k
	out := enc & bitutil.Mask(c.n)
	for j := 0; j < p; j++ {
		if aux>>uint(j)&1 == 1 {
			out ^= bitutil.Mask(c.k) << uint(j*c.k)
		}
	}
	return out
}

// DecodeWords implements LineDecoder: Decode's per-sub-block flip loop
// is a pure function of the aux bits, so it collapses into one table
// lookup and XOR per word. Aux bits above the sub-block count are
// ignored, exactly as Decode's loop ignores them.
func (c *FNW) DecodeWords(enc, aux, left, out []uint64) {
	if c.flagTab == nil {
		for i := range aux {
			out[i] = c.Decode(enc[i], aux[i], left[i])
		}
		return
	}
	nMask := bitutil.Mask(c.n)
	pMask := uint64(len(c.flagTab) - 1)
	for i, a := range aux {
		out[i] = (enc[i] & nMask) ^ c.flagTab[a&pMask]
	}
}

// Flipcy (Imran et al., ICCAD 2019) writes the data, its one's
// complement, or its two's complement, choosing the cheapest; 2 auxiliary
// bits record the choice. Designed for biased data, it degrades to
// near-unencoded behaviour on encrypted workloads — which is exactly the
// paper's point in Figs. 11/12.
type Flipcy struct {
	n int
}

// NewFlipcy returns a Flipcy codec over n-bit planes.
func NewFlipcy(n int) *Flipcy { return &Flipcy{n: n} }

// Name implements Codec.
func (c *Flipcy) Name() string { return "Flipcy" }

// PlaneBits implements Codec.
func (c *Flipcy) PlaneBits() int { return c.n }

// AuxBits implements Codec.
func (c *Flipcy) AuxBits() int { return 2 }

// Encode implements Codec.
func (c *Flipcy) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	m := bitutil.Mask(c.n)
	d := data & m
	return bestOf(3, 2, func(i int) uint64 {
		switch i {
		case 0:
			return d
		case 1:
			return ^d & m // one's complement
		default:
			return (^d + 1) & m // two's complement
		}
	}, ev)
}

// Decode implements Codec.
func (c *Flipcy) Decode(enc, aux, left uint64) uint64 {
	m := bitutil.Mask(c.n)
	e := enc & m
	switch aux {
	case 0:
		return e
	case 1:
		return ^e & m
	case 2:
		return ^((e - 1) & m) & m
	default:
		panic(fmt.Sprintf("coset: Flipcy aux %d out of range", aux))
	}
}

// RCC is random coset coding (Jacobvitz et al., HPCA 2013): N
// independent uniformly random n-bit coset candidates held in a ROM; the
// encoder XORs the data with each and keeps the cheapest. It is the
// quality ceiling VCC approximates at a fraction of the hardware cost.
type RCC struct {
	n      int
	cosets []uint64
}

// NewRCC builds an RCC codec with N random cosets over n-bit planes,
// deterministically derived from seed (the ROM contents).
func NewRCC(n, N int, seed uint64) *RCC {
	if N < 1 || N&(N-1) != 0 {
		panic(fmt.Sprintf("coset: RCC N=%d must be a positive power of two", N))
	}
	rng := prng.NewFrom(seed, "rcc-rom")
	cosets := make([]uint64, N)
	for i := range cosets {
		cosets[i] = rng.Uint64() & bitutil.Mask(n)
	}
	// Convention from the literature: keep the identity coset at index 0
	// so RCC never does worse than unencoded on a lucky block.
	cosets[0] = 0
	return &RCC{n: n, cosets: cosets}
}

// Name implements Codec.
func (c *RCC) Name() string { return fmt.Sprintf("RCC(%d,%d)", c.n, len(c.cosets)) }

// PlaneBits implements Codec.
func (c *RCC) PlaneBits() int { return c.n }

// AuxBits implements Codec.
func (c *RCC) AuxBits() int { return log2(len(c.cosets)) }

// NumCosets returns N.
func (c *RCC) NumCosets() int { return len(c.cosets) }

// Coset exposes candidate i (for the hardware model and tests).
func (c *RCC) Coset(i int) uint64 { return c.cosets[i] }

// Encode implements Codec.
func (c *RCC) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	d := data & bitutil.Mask(c.n)
	return bestOf(len(c.cosets), c.AuxBits(), func(i int) uint64 {
		return d ^ c.cosets[i]
	}, ev)
}

// Decode implements Codec.
func (c *RCC) Decode(enc, aux, left uint64) uint64 {
	return (enc ^ c.cosets[aux]) & bitutil.Mask(c.n)
}
