package coset

// The partition-sliced encode fast path.
//
// Every candidate the VCC/FNW searches price is a per-partition edit of
// the same physical write context: the old word, the stuck cells, the
// incoming left digits and the old auxiliary bits never change while
// Algorithm 1 enumerates its r kernels x p partitions x 2 complements.
// The reference Evaluator nevertheless re-derives the full-word plane
// merge, the symbol-mask expansion and the stuck-cell overlay on every
// Part call. SlicedCtx instead slices the context once per write —
// per-partition sub-blocks of the old word and stuck masks, the
// spread-odd merged-left contribution, and a 2x2 aux-bit cost table —
// after which pricing one m-bit candidate value is a handful of
// sub-word bit operations.
//
// Bit-identity with the reference path is a hard invariant (enforced by
// TestFastEncodeMatchesReference and FuzzEncodeEquivalence): PartCost
// computes the same integer cell counts as Evaluator.Part and feeds them
// through the same float64 expressions, so the resulting Pairs are equal
// as bit patterns, not merely approximately.

import (
	"math"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/pcm"
)

// maxSlices bounds the partition count of a sliced context: a 64-bit
// plane in 1-bit partitions.
const maxSlices = 64

// SlicedCtx is a write context pre-sliced into partitions. A memory
// controller owns one and rebinds it per word (Bind allocates nothing),
// reusing the slice arrays across the eight words of a line and across
// lines; codecs also embed one as a fallback so the plain Codec.Encode
// entry point gets the fast path too.
//
// The zero value is unbound; Bind must succeed before PartCost/AuxBit
// are used.
type SlicedCtx struct {
	m, p     int
	obj      Objective
	mode     pcm.CellMode
	mlcPlane bool
	energy   pcm.EnergyModel
	oldAux   uint64

	// Per-partition slices. For MLC-plane contexts slot j holds the
	// 2m-bit word-coordinate sub-block covering partition j's symbols
	// (and leftSpread its spread-odd left digits); otherwise the m-bit
	// plane sub-block.
	old        [maxSlices]uint64
	stuckMask  [maxSlices]uint64
	stuckVal   [maxSlices]uint64
	leftSpread [maxSlices]uint64

	// auxTab[old][val] is the cost of writing an auxiliary bit with
	// value val over stored value old — the whole Evaluator.AuxBit
	// switch collapsed to one table lookup, valid for every bit index
	// because aux-bit cost depends only on the (old, new) bit pair.
	auxTab [2][2]Pair
}

// Bind slices ev's write context for kernel width m and reports whether
// the sliced fast path supports this configuration. It returns false —
// and the caller must fall back to the reference search — when a
// partition boundary would split an MLC symbol (full-word MLC with odd
// m), since such a partition cannot be priced from an independent slice.
func (sc *SlicedCtx) Bind(ev *Evaluator, m int) bool {
	if ev.planeMask == 0 {
		// Raw-literal evaluator: rebind so defaults (plane width, energy
		// model) are applied before the context is copied into slices —
		// the same self-heal the reference eval performs, keeping fast
		// and reference paths on identical contexts.
		ev.Reset(ev.Ctx, ev.Obj)
	}
	c := &ev.Ctx
	if m <= 0 || c.N%m != 0 || c.N/m > maxSlices {
		return false
	}
	if c.MLCPlane {
		// A right-digit plane has at most 32 symbols; a wider N is a
		// malformed context whose (degenerate) semantics belong to the
		// reference path.
		if c.N > 32 {
			return false
		}
	} else if c.Mode == pcm.MLC && m%2 != 0 {
		return false
	}
	p := c.N / m
	sc.m, sc.p = m, p
	sc.obj, sc.mode, sc.mlcPlane = ev.Obj, c.Mode, c.MLCPlane
	sc.energy = c.Energy
	sc.oldAux = c.OldAux
	if c.MLCPlane {
		w := 2 * m
		bitutil.SubBlocksInto(sc.old[:p], c.OldWord, w)
		bitutil.SubBlocksInto(sc.stuckMask[:p], c.StuckMask, w)
		bitutil.SubBlocksInto(sc.stuckVal[:p], c.StuckVal, w)
		for j := 0; j < p; j++ {
			sc.leftSpread[j] = bitutil.SpreadOdd(bitutil.SubBlock(c.NewLeft, j, m))
		}
	} else {
		bitutil.SubBlocksInto(sc.old[:p], c.OldWord, m)
		bitutil.SubBlocksInto(sc.stuckMask[:p], c.StuckMask, m)
		bitutil.SubBlocksInto(sc.stuckVal[:p], c.StuckVal, m)
	}
	for old := 0; old < 2; old++ {
		for val := 0; val < 2; val++ {
			sc.auxTab[old][val] = auxBitCost(sc.mode, sc.energy, sc.obj,
				uint64(old), uint64(val))
		}
	}
	return true
}

// Partitions returns the partition count of the bound context.
func (sc *SlicedCtx) Partitions() int { return sc.p }

// AuxBit prices writing auxiliary bit bitIdx with value val — the
// table-lookup equivalent of Evaluator.AuxBit on the bound context.
func (sc *SlicedCtx) AuxBit(bitIdx int, val uint64) Pair {
	return sc.auxTab[sc.oldAux>>uint(bitIdx)&1][val&1]
}

// PartCost prices the unshifted m-bit value v as the contents of
// partition j: it equals Evaluator.Part(v<<(j*m), j, m) bit-for-bit. v
// must carry no bits above m.
func (sc *SlicedCtx) PartCost(j int, v uint64) Pair {
	if sc.obj == ObjOnes {
		return Pair{float64(bits.OnesCount64(v)), 0}
	}
	var desired uint64
	if sc.mlcPlane {
		desired = sc.leftSpread[j] | bitutil.SpreadEven(v)
	} else {
		desired = v
	}
	sm := sc.stuckMask[j]
	stored := (desired &^ sm) | (sc.stuckVal[j] & sm)
	switch sc.obj {
	case ObjFlips:
		if sc.mode == pcm.MLC {
			return Pair{float64(bitutil.SymbolCount(sc.old[j], stored)), 0}
		}
		return Pair{float64(bits.OnesCount64(sc.old[j] ^ stored)), 0}
	case ObjEnergySAW:
		return Pair{sc.sliceEnergy(j, stored), float64(sc.sliceSAW(j, desired))}
	case ObjSAWEnergy:
		return Pair{float64(sc.sliceSAW(j, desired)), sc.sliceEnergy(j, stored)}
	default:
		panic("coset: unknown objective")
	}
}

func (sc *SlicedCtx) sliceEnergy(j int, stored uint64) float64 {
	if sc.mode == pcm.MLC {
		return sc.energy.MLCWordEnergyAll(sc.old[j], stored)
	}
	return sc.energy.SLCWordEnergy(sc.old[j], stored)
}

func (sc *SlicedCtx) sliceSAW(j int, desired uint64) int {
	wrong := (desired ^ sc.stuckVal[j]) & sc.stuckMask[j]
	if sc.mode == pcm.MLC {
		return bitutil.SymbolCount(wrong, 0)
	}
	return bits.OnesCount64(wrong)
}

// auxBitCost mirrors Evaluator.AuxBit for one (old bit, new bit) pair.
func auxBitCost(mode pcm.CellMode, en pcm.EnergyModel, obj Objective, old, val uint64) Pair {
	switch obj {
	case ObjOnes:
		return Pair{float64(val), 0}
	case ObjFlips:
		if old != val {
			return Pair{1, 0}
		}
		return Pair{}
	case ObjEnergySAW, ObjSAWEnergy:
		var e float64
		if old != val {
			if mode == pcm.MLC {
				if val == 1 {
					e = en.MLCHighPJ
				} else {
					e = en.MLCLowPJ
				}
			} else {
				if val == 1 {
					e = en.SLCSetPJ
				} else {
					e = en.SLCResetPJ
				}
			}
		}
		if obj == ObjEnergySAW {
			return Pair{e, 0}
		}
		return Pair{0, e}
	default:
		panic("coset: unknown objective")
	}
}

// pairFloor is a component-wise minimum: the result is lexicographically
// <= both inputs, which is what makes it a sound branch-and-bound lower
// bound (a lexicographic minimum alone would not bound the Secondary
// component of a sum).
func pairFloor(a, b Pair) Pair {
	if b.Primary < a.Primary {
		a.Primary = b.Primary
	}
	if b.Secondary < a.Secondary {
		a.Secondary = b.Secondary
	}
	return a
}

// pairInf is the identity element of pairFloor.
var pairInf = Pair{math.Inf(1), math.Inf(1)}

// cannotBeat reports whether a search branch whose component-wise cost
// lower bound is lb is provably unable to improve on the incumbent under
// obj, so the branch may be pruned without changing the search result.
//
// Soundness has to account for the reference search's own float
// behavior, not just exact arithmetic. Cost components come in two
// kinds. Cell/SAW counts are small integers whose float sums are exact,
// so comparing them is exact: a bound strictly worse loses for certain,
// and a bound exactly equal cannot displace the incumbent either (the
// search requires strict improvement), making >= prunable. Energy sums
// are inexact — two candidates with equal exact cost can differ by ULPs
// depending on which terms were summed — and the reference breaks such
// ties by exactly that noise (FuzzEncodeEquivalence found the case: two
// kernels at exact cost 555.9 summed to 555.9 and 555.9000000000001,
// and the reference's strict < picked the former). A bound cannot
// predict a completion's noise, so on energy components it prunes only
// beyond a relative slack of 1e-9 — four orders above the worst-case
// summation noise of these <=70-term sums (~1e-13 relative), and far
// below any real cost quantum — and near-ties fall through to full
// evaluation in the reference's own summation order.
func cannotBeat(obj Objective, lb, incumbent Pair) bool {
	switch obj {
	case ObjFlips, ObjOnes:
		// Both components exact integer counts.
		return !lb.Less(incumbent)
	case ObjEnergySAW:
		// Primary is energy (noisy): prune on it alone, beyond slack.
		// The secondary never prunes — it only matters on an exact
		// primary tie, which the reference resolves at ULP granularity.
		return lb.Primary > incumbent.Primary+ulpSlack(lb.Primary, incumbent.Primary)
	case ObjSAWEnergy:
		// Primary (SAW count) is exact; secondary is noisy energy.
		if lb.Primary != incumbent.Primary {
			return lb.Primary > incumbent.Primary
		}
		return lb.Secondary > incumbent.Secondary+ulpSlack(lb.Secondary, incumbent.Secondary)
	default:
		return false
	}
}

// ulpSlack is the relative margin separating "worse by a real cost
// quantum" from "possibly an exact tie perturbed by summation noise".
func ulpSlack(a, b float64) float64 {
	return 1e-9 * (math.Abs(a) + math.Abs(b) + 1)
}
