package coset

// The partition-sliced encode fast path.
//
// Every candidate the VCC/FNW searches price is a per-partition edit of
// the same physical write context: the old word, the stuck cells, the
// incoming left digits and the old auxiliary bits never change while
// Algorithm 1 enumerates its r kernels x p partitions x 2 complements.
// The reference Evaluator nevertheless re-derives the full-word plane
// merge, the symbol-mask expansion and the stuck-cell overlay on every
// Part call. SlicedCtx instead slices the context once per write —
// per-partition sub-blocks of the old word and stuck masks, the
// spread-odd merged-left contribution, and a 2x2 aux-bit cost table —
// after which pricing one m-bit candidate value is a handful of
// sub-word bit operations.
//
// Bit-identity with the reference path is a hard invariant (enforced by
// TestFastEncodeMatchesReference and FuzzEncodeEquivalence): PartCost
// computes the same integer cell counts as Evaluator.Part and feeds them
// through the same float64 expressions, so the resulting Pairs are equal
// as bit patterns, not merely approximately.

import (
	"math"
	"math/bits"

	"repro/internal/bitutil"
	"repro/internal/pcm"
)

// maxSlices bounds the partition count of a sliced context: a 64-bit
// plane in 1-bit partitions.
const maxSlices = 64

// maxNibGroups bounds the total nibble-group count across all partitions
// of a bound context. p*ceil(m/4) <= p*m <= 64 for every supported
// geometry, with equality only at m=1 (p=64, one group each).
const maxNibGroups = 64

// nibTableMinPrices is the amortization threshold of BindFor: nibble
// tables are built only when the codec expects at least this many
// PartCost prices per partition per 16-entry group. One group costs 16
// table-entry constructions via the generic assembly; below ~16 prices
// per group the per-symbol direct path is cheaper than building tables
// it will barely consult (measured on the BenchmarkEncode matrix:
// VCC-Gen(16,256) prices 128x per partition and wins big, FNW prices 2x
// and would pay ~30x its query cost in construction).
const nibTableMinPrices = 16

// nibTableMinPricesEnergySAW is the lower threshold applied under
// ObjEnergySAW, where two effects shift the break-even: every full
// group — MLC-plane, full-word MLC and SLC alike — is assembled by the
// packed doubling DP (a handful of SWAR mask derivations plus ~14
// packed adds) instead of 16 independent count evaluations, and the
// bound tables feed the lazy branchless kernel scan whose queries are
// four loads against a direct path of two energy MACs plus a SAW count.
// Stored-kernel VCC (r=16: 32 prices per partition, 8 per group) sits
// exactly at this line and measures ~2.3x faster with tables; FNW
// (2 prices) still stays direct. Other objectives price through the
// generic Pair walk, whose cheaper direct path keeps the old
// break-even.
const nibTableMinPricesEnergySAW = 8

// SlicedCtx is a write context pre-sliced into partitions. A memory
// controller owns one and rebinds it per word (Bind allocates nothing),
// reusing the slice arrays across the eight words of a line and across
// lines; codecs also embed one as a fallback so the plain Codec.Encode
// entry point gets the fast path too.
//
// The zero value is unbound; Bind must succeed before PartCost/AuxBit
// are used.
type SlicedCtx struct {
	m, p     int
	obj      Objective
	mode     pcm.CellMode
	mlcPlane bool
	energy   pcm.EnergyModel
	oldAux   uint64

	// DisableTables forces every PartCost onto the direct per-symbol
	// pricing path: BindFor never builds nibble tables. ForceTables
	// builds them on every successful bind regardless of the
	// amortization threshold. Both exist so the equivalence suite can
	// cross-check table-driven against direct pricing; production
	// callers leave them false and let BindFor's threshold decide.
	DisableTables bool
	ForceTables   bool

	// Per-partition slices. For MLC-plane contexts slot j holds the
	// 2m-bit word-coordinate sub-block covering partition j's symbols
	// (and leftSpread its spread-odd left digits); otherwise the m-bit
	// plane sub-block.
	old        [maxSlices]uint64
	stuckMask  [maxSlices]uint64
	stuckVal   [maxSlices]uint64
	leftSpread [maxSlices]uint64

	// auxTab[old][val] is the cost of writing an auxiliary bit with
	// value val over stored value old — the whole Evaluator.AuxBit
	// switch collapsed to one table lookup, valid for every bit index
	// because aux-bit cost depends only on the (old, new) bit pair.
	auxTab [2][2]Pair

	// Nibble count tables. When tabOK is set, entry
	// nibTab[(j*groups+g)*16 + v] holds the exact integer contribution
	// of partition j's nibble group g (4 symbols for MLC-plane, 4 bits
	// otherwise) when the candidate's bits [4g, 4g+4) equal v. The low
	// 32 bits pack that contribution as high | low<<8 | sawHits<<16
	// (MLC high/low programs, or SLC SET/RESET counts); the high 32
	// bits pack the same counts for the group's m-bit-complement index
	// (v XOR the group's in-partition mask, baked in at build). One
	// fused walk therefore accumulates both orientations of a candidate
	// pair — exactly how VCC consumes candidates. Field sums across a
	// partition's <=16 groups stay below 256, so neither half of a
	// packed uint64 accumulator ever carries between fields. cHi/cLo
	// cache the matching energy coefficients. The array is owned by the
	// SlicedCtx and overwritten in place on every rebind — table
	// storage never allocates.
	tabOK       bool
	groups      int
	lastNibMask uint64
	cHi, cLo    float64
	nibTab      [maxNibGroups * 16]uint64

	// Line-scoped bind state. lineKey fingerprints every input of the
	// word-invariant bind layer (geometry validation, the 2x2 aux-bit
	// cost table, group layout, the table-amortization decision); when
	// a rebind arrives with an identical fingerprint — the 8 words of a
	// cache line, or every word of a steady single-codec workload —
	// BindFor skips that whole layer and only re-slices the new word.
	// fastRebinds counts the skips (observable by tests; one increment
	// per word is noise next to the work it replaces).
	lineOK      bool
	lineKey     bindKey
	wantTab     bool
	fastRebinds uint64

	// etab memoizes the energy multiply-accumulate over count pairs:
	// etab[lo<<6|hi] = float64(hi)*cHi + float64(lo)*cLo, the exact
	// pairFromCounts expression, so the hot encode loop converts packed
	// counts to energy with one load instead of two int-to-float
	// conversions and two multiplies. Fields are 6 bits, so the table
	// serves any bound partition of at most 63 cells (etabFits); it
	// depends only on the coefficients, not the write context, and is
	// rebuilt only when the energy model changes (etabOK caches
	// validity across rebinds — in steady state construction costs two
	// float compares per bind).
	etabOK   bool
	etabFits bool
	etab     [64 * 64]float64
}

// Bind slices ev's write context for kernel width m and reports whether
// the sliced fast path supports this configuration. It returns false —
// and the caller must fall back to the reference search — when a
// partition boundary would split an MLC symbol (full-word MLC with odd
// m), since such a partition cannot be priced from an independent slice.
// Bind alone never builds nibble tables (unless ForceTables is set);
// codecs that know their query volume use BindFor.
func (sc *SlicedCtx) Bind(ev *Evaluator, m int) bool {
	return sc.BindFor(ev, m, 0)
}

// bindKey fingerprints the word-invariant inputs of a bind: the plane
// geometry, objective, cell mode, energy model, the table-mode toggles
// and the amortization hint. Everything else a bind consumes (the old
// word, stuck cells, left digits, old aux) is per-word and lives in the
// slicing layer.
type bindKey struct {
	n, m           int
	obj            Objective
	mode           pcm.CellMode
	mlcPlane       bool
	energy         pcm.EnergyModel
	force, disable bool
	hint           int
}

// BindFor is Bind with an amortization hint: pricesPerPartition is the
// number of PartCost queries the codec expects to issue against each
// partition before the next rebind. When the hint clears the per-group
// construction threshold (or ForceTables is set), BindFor additionally
// builds the per-partition nibble count tables so each query collapses
// into ceil(m/4) table lookups; below it, queries run the direct
// per-symbol path and construction costs nothing.
//
// BindFor is line-scoped: when the configuration fingerprint matches
// the previous bind — the common case for the 8 words of a cache line,
// and for consecutive lines of a steady workload — the word-invariant
// layer (BindLine) is skipped and only the new word is sliced.
func (sc *SlicedCtx) BindFor(ev *Evaluator, m, pricesPerPartition int) bool {
	if ev.planeMask == 0 {
		// Raw-literal evaluator: rebind so defaults (plane width, energy
		// model) are applied before the context is copied into slices —
		// the same self-heal the reference eval performs, keeping fast
		// and reference paths on identical contexts.
		ev.Reset(ev.Ctx, ev.Obj)
	}
	c := &ev.Ctx
	if !sc.lineOK || (bindKey{c.N, m, ev.Obj, c.Mode, c.MLCPlane, c.Energy,
		sc.ForceTables, sc.DisableTables, pricesPerPartition}) != sc.lineKey {
		if !sc.BindLine(ev, m, pricesPerPartition) {
			return false
		}
	} else {
		sc.fastRebinds++
	}
	p := sc.p
	sc.oldAux = c.OldAux
	if sc.mlcPlane {
		w := 2 * m
		bitutil.SubBlocksInto(sc.old[:p], c.OldWord, w)
		bitutil.SubBlocksInto(sc.stuckMask[:p], c.StuckMask, w)
		bitutil.SubBlocksInto(sc.stuckVal[:p], c.StuckVal, w)
		for j := 0; j < p; j++ {
			sc.leftSpread[j] = bitutil.SpreadOdd(bitutil.SubBlock(c.NewLeft, j, m))
		}
	} else {
		bitutil.SubBlocksInto(sc.old[:p], c.OldWord, m)
		bitutil.SubBlocksInto(sc.stuckMask[:p], c.StuckMask, m)
		bitutil.SubBlocksInto(sc.stuckVal[:p], c.StuckVal, m)
	}
	sc.tabOK = false
	if sc.wantTab {
		sc.buildNibbleTables()
	}
	return true
}

// BindLine performs the word-invariant layer of a bind: geometry
// validation, the 2x2 aux-bit cost table (aux-bit cost depends only on
// mode/energy/objective, never on the word), nibble-group layout, and
// the table-amortization decision. It reports whether the sliced fast
// path supports this configuration, and on success records the
// fingerprint so subsequent same-configuration BindFor calls skip
// straight to word slicing. A memory controller may call it once per
// line; BindFor calls it automatically on any fingerprint miss, so the
// explicit call is an optimization, never a correctness requirement.
func (sc *SlicedCtx) BindLine(ev *Evaluator, m, pricesPerPartition int) bool {
	if ev.planeMask == 0 {
		ev.Reset(ev.Ctx, ev.Obj)
	}
	c := &ev.Ctx
	sc.lineOK = false
	if m <= 0 || c.N%m != 0 || c.N/m > maxSlices {
		return false
	}
	if c.MLCPlane {
		// A right-digit plane has at most 32 symbols; a wider N is a
		// malformed context whose (degenerate) semantics belong to the
		// reference path.
		if c.N > 32 {
			return false
		}
	} else if c.Mode == pcm.MLC && m%2 != 0 {
		return false
	}
	sc.m, sc.p = m, c.N/m
	sc.obj, sc.mode, sc.mlcPlane = ev.Obj, c.Mode, c.MLCPlane
	sc.energy = c.Energy
	for old := 0; old < 2; old++ {
		for val := 0; val < 2; val++ {
			sc.auxTab[old][val] = auxBitCost(sc.mode, sc.energy, sc.obj,
				uint64(old), uint64(val))
		}
	}
	sc.groups = bitutil.NibbleGroups(m)
	sc.lastNibMask = bitutil.Mask(m - 4*(sc.groups-1))
	minPrices := nibTableMinPrices
	if sc.obj == ObjEnergySAW {
		minPrices = nibTableMinPricesEnergySAW
	}
	sc.wantTab = sc.obj != ObjOnes && !sc.DisableTables &&
		(sc.ForceTables || pricesPerPartition >= minPrices*sc.groups)
	sc.lineKey = bindKey{c.N, m, ev.Obj, c.Mode, c.MLCPlane, c.Energy,
		sc.ForceTables, sc.DisableTables, pricesPerPartition}
	sc.lineOK = true
	return true
}

// buildNibbleTables fills nibTab for the bound context. Each entry is
// computed with the same primitives the direct path prices with
// (pcm.MLCWordCounts / pcm.SLCWordCounts, bitutil.SymbolCount) applied
// to the group's sub-byte of the bound slices, so the counts are exact
// integers by construction, not an approximation of the direct path.
func (sc *SlicedCtx) buildNibbleTables() {
	cHi, cLo := sc.energy.MLCHighPJ, sc.energy.MLCLowPJ
	cells := sc.m
	if sc.mode == pcm.MLC {
		if !sc.mlcPlane {
			cells = sc.m / 2
		}
	} else {
		cHi, cLo = sc.energy.SLCSetPJ, sc.energy.SLCResetPJ
	}
	sc.etabFits = cells < 64
	if !sc.etabOK || cHi != sc.cHi || cLo != sc.cLo {
		sc.cHi, sc.cLo = cHi, cLo
		// Layout matches the packed-count extraction in the encode hot
		// loop: high-drive count in the low 6 bits, low-drive above.
		for lo := 0; lo < 64; lo++ {
			for hi := 0; hi < 64; hi++ {
				sc.etab[lo<<6|hi] = float64(hi)*cHi + float64(lo)*cLo
			}
		}
		sc.etabOK = true
	}
	var cnt [16]uint32
	t := 0
	for j := 0; j < sc.p; j++ {
		for g := 0; g < sc.groups; g++ {
			// Each entry is packed with its complement-orientation
			// partner. All groups complement against 0xF except a final
			// partial group, whose in-partition bits are lastNibMask.
			gmask := uint64(0xF)
			if g == sc.groups-1 {
				gmask = sc.lastNibMask
			}
			if gmask == 0xF && !sc.mlcPlane {
				sh := uint(4 * g)
				oldN := (sc.old[j] >> sh) & 0xF
				smN := (sc.stuckMask[j] >> sh) & 0xF
				svN := (sc.stuckVal[j] >> sh) & 0xF
				stuck := svN & smN
				out := sc.nibTab[t : t+16]
				if sc.mode == pcm.MLC {
					// Full-word MLC group: two whole symbols. Counts
					// decompose per symbol, so evaluate each symbol slot's
					// four candidate values once (change/high/low from the
					// stuck-overlaid stored symbol, SAW from the stuck
					// mismatch — the same per-symbol cases
					// pcm.MLCWordCounts sums), pack each with its
					// complement partner (symbol value XOR 3, composing to
					// the nibble's XOR 0xF), and assemble the 16 entries as
					// a 4x4 outer sum: 8 symbol evaluations and 16 packed
					// adds replace 16 word-count passes.
					var q0, q1 [4]uint64
					for slot := 0; slot < 2; slot++ {
						b2 := uint(2 * slot)
						oldS := (oldN >> b2) & 3
						smS := (smN >> b2) & 3
						svS := (svN >> b2) & 3
						stS := svS & smS
						var e [4]uint64
						for v := uint64(0); v < 4; v++ {
							stored := (v &^ smS) | stS
							diff := stored ^ oldS
							ne := (diff | diff>>1) & 1
							hi := ne & stored & 1
							lo := ne ^ hi
							wr := (v ^ svS) & smS
							saw := (wr | wr>>1) & 1
							e[v] = hi | lo<<8 | saw<<16
						}
						if slot == 0 {
							for v := uint64(0); v < 4; v++ {
								q0[v] = e[v] | e[v^3]<<32
							}
						} else {
							for v := uint64(0); v < 4; v++ {
								q1[v] = e[v] | e[v^3]<<32
							}
						}
					}
					for v1 := uint64(0); v1 < 4; v1++ {
						b := q1[v1]
						out[v1<<2] = b + q0[0]
						out[v1<<2|1] = b + q0[1]
						out[v1<<2|2] = b + q0[2]
						out[v1<<2|3] = b + q0[3]
					}
				} else {
					// Full SLC group: four independent cells. Derive every
					// slot's SET/RESET/SAW bit for candidate 0 and 1 with
					// nibble-wide mask algebra (the per-bit cases
					// pcm.SLCWordCounts counts), then assemble all 16
					// packed entries in place by doubling, exactly as the
					// MLC-plane path below does: 14 packed adds replace 16
					// count evaluations.
					st0 := stuck
					st1 := (0xF &^ smN) | stuck
					x0 := st0 ^ oldN
					x1 := st1 ^ oldN
					set0 := x0 & st0
					set1 := x1 & st1
					rst0 := x0 &^ st0
					rst1 := x1 &^ st1
					w0 := svN & smN
					w1 := (svN ^ 0xF) & smN
					n := 1
					for slot := 0; slot < 4; slot++ {
						b := uint(slot)
						e0 := set0>>b&1 | (rst0>>b&1)<<8 | (w0>>b&1)<<16
						e1 := set1>>b&1 | (rst1>>b&1)<<8 | (w1>>b&1)<<16
						q0 := e0 | e1<<32
						q1 := e1 | e0<<32
						if slot == 0 {
							out[0], out[1] = q0, q1
						} else {
							for v := 0; v < n; v++ {
								out[v|n] = out[v] + q1
								out[v] += q0
							}
						}
						n <<= 1
					}
				}
				t += 16
				continue
			}
			if sc.mlcPlane && gmask == 0xF {
				// Full plane group: symbols [4g, 4g+4) of the partition,
				// byte [8g, 8g+8) of the 2m-bit slice, spread-odd left
				// digits fixed per group. Counts decompose per symbol
				// (MLCWordCounts is a per-symbol sum), so derive each
				// symbol slot's contribution for candidate right digit
				// 0/1 with byte-wide mask algebra, pair it with its
				// complement (right digit flipped), and assemble all 16
				// packed entries in place by doubling: 14 packed adds
				// replace 16 byte-wide count evaluations plus the
				// complement-partner gather.
				sh := uint(8 * g)
				oldB := (sc.old[j] >> sh) & 0xFF
				smB := (sc.stuckMask[j] >> sh) & 0xFF
				svB := (sc.stuckVal[j] >> sh) & 0xFF
				stuck := svB & smB
				// Desired bytes for all-right-digits-0 / all-1; their
				// per-symbol changed/high/low/SAW masks on even bits.
				d0 := (sc.leftSpread[j] >> sh) & 0xFF
				d1 := d0 | 0x55
				st0 := (d0 &^ smB) | stuck
				st1 := (d1 &^ smB) | stuck
				x0 := st0 ^ oldB
				x1 := st1 ^ oldB
				ch0 := (x0 | x0>>1) & 0x55
				ch1 := (x1 | x1>>1) & 0x55
				hi0 := ch0 & st0
				hi1 := ch1 & st1
				lo0 := ch0 &^ st0
				lo1 := ch1 &^ st1
				w0 := (d0 ^ svB) & smB
				w1 := (d1 ^ svB) & smB
				sw0 := (w0 | w0>>1) & 0x55
				sw1 := (w1 | w1>>1) & 0x55
				out := sc.nibTab[t : t+16]
				n := 1
				for slot := 0; slot < 4; slot++ {
					b2 := uint(2 * slot)
					e0 := hi0>>b2&1 | (lo0>>b2&1)<<8 | (sw0>>b2&1)<<16
					e1 := hi1>>b2&1 | (lo1>>b2&1)<<8 | (sw1>>b2&1)<<16
					q0 := e0 | e1<<32
					q1 := e1 | e0<<32
					if slot == 0 {
						out[0], out[1] = q0, q1
					} else {
						for v := 0; v < n; v++ {
							out[v|n] = out[v] + q1
							out[v] += q0
						}
					}
					n <<= 1
				}
				t += 16
				continue
			}
			switch {
			case sc.mlcPlane:
				// Partial final plane group (m not a multiple of 4):
				// rare tail, priced entrywise exactly as PartCost's
				// desired-word construction does.
				sh := uint(8 * g)
				oldB := (sc.old[j] >> sh) & 0xFF
				smB := (sc.stuckMask[j] >> sh) & 0xFF
				svB := (sc.stuckVal[j] >> sh) & 0xFF
				leftB := (sc.leftSpread[j] >> sh) & 0xFF
				for nib := uint64(0); nib < 16; nib++ {
					desired := leftB | bitutil.SpreadEvenNibble(nib)
					stored := (desired &^ smB) | (svB & smB)
					hi, lo := pcm.MLCWordCounts(oldB, stored)
					saw := bitutil.SymbolCount((desired^svB)&smB, 0)
					cnt[nib] = uint32(hi) | uint32(lo)<<8 | uint32(saw)<<16
				}
			case sc.mode == pcm.MLC:
				// Full-word MLC (even m): group g covers two whole
				// symbols, bits [4g, 4g+4) of the slice. Nibble
				// boundaries are 4-bit aligned and symbols 2-bit
				// aligned, so no symbol is ever split across groups.
				sh := uint(4 * g)
				oldN := (sc.old[j] >> sh) & 0xF
				smN := (sc.stuckMask[j] >> sh) & 0xF
				svN := (sc.stuckVal[j] >> sh) & 0xF
				for nib := uint64(0); nib < 16; nib++ {
					stored := (nib &^ smN) | (svN & smN)
					hi, lo := pcm.MLCWordCounts(oldN, stored)
					saw := bitutil.SymbolCount((nib^svN)&smN, 0)
					cnt[nib] = uint32(hi) | uint32(lo)<<8 | uint32(saw)<<16
				}
			default:
				// SLC: group g covers four independent cells. high/low
				// slots carry SET/RESET counts.
				sh := uint(4 * g)
				oldN := (sc.old[j] >> sh) & 0xF
				smN := (sc.stuckMask[j] >> sh) & 0xF
				svN := (sc.stuckVal[j] >> sh) & 0xF
				for nib := uint64(0); nib < 16; nib++ {
					stored := (nib &^ smN) | (svN & smN)
					sets, resets := pcm.SLCWordCounts(oldN, stored)
					saw := bits.OnesCount64((nib ^ svN) & smN)
					cnt[nib] = uint32(sets) | uint32(resets)<<8 | uint32(saw)<<16
				}
			}
			for nib := uint64(0); nib < 16; nib++ {
				sc.nibTab[t] = uint64(cnt[nib]) | uint64(cnt[nib^gmask])<<32
				t++
			}
		}
	}
	sc.tabOK = true
}

// pairFromCounts folds a packed count accumulator into the bound
// objective's Pair. The energy multiply-accumulate mirrors the canonical
// pcm.*EnergyFromCounts expression term for term (cHi/cLo are the bound
// mode's coefficients) — identical counts therefore yield float64
// results bit-identical to the direct path's.
func (sc *SlicedCtx) pairFromCounts(acc uint32) Pair {
	hi := int(acc & 0xFF)
	lo := int(acc >> 8 & 0xFF)
	switch sc.obj {
	case ObjFlips:
		return Pair{float64(hi + lo), 0}
	case ObjEnergySAW:
		return Pair{float64(hi)*sc.cHi + float64(lo)*sc.cLo, float64(acc >> 16)}
	case ObjSAWEnergy:
		return Pair{float64(acc >> 16), float64(hi)*sc.cHi + float64(lo)*sc.cLo}
	default:
		panic("coset: unknown objective")
	}
}

// Partitions returns the partition count of the bound context.
func (sc *SlicedCtx) Partitions() int { return sc.p }

// AuxBit prices writing auxiliary bit bitIdx with value val — the
// table-lookup equivalent of Evaluator.AuxBit on the bound context.
func (sc *SlicedCtx) AuxBit(bitIdx int, val uint64) Pair {
	return sc.auxTab[sc.oldAux>>uint(bitIdx)&1][val&1]
}

// PartCost prices the unshifted m-bit value v as the contents of
// partition j: it equals Evaluator.Part(v<<(j*m), j, m) bit-for-bit. v
// must carry no bits above m. With nibble tables bound it is ceil(m/4)
// lookups into exact integer counts; otherwise it prices the slice
// directly.
func (sc *SlicedCtx) PartCost(j int, v uint64) Pair {
	if sc.obj == ObjOnes {
		return Pair{float64(bits.OnesCount64(v)), 0}
	}
	if sc.tabOK {
		row := sc.nibTab[j*sc.groups*16:]
		var acc uint64
		for g := 0; g < sc.groups; g++ {
			acc += row[v&0xF]
			row = row[16:]
			v >>= 4
		}
		return sc.pairFromCounts(uint32(acc))
	}
	return sc.partCostDirect(j, v)
}

// PartCostPair prices v and its m-bit complement v^Mask(m) for partition
// j in one pass: with tables bound, a single fused walk accumulates both
// orientations' packed counts (each entry carries its complement
// partner in the high half), which is exactly how VCC consumes
// candidate pairs. Results are bit-identical to two PartCost calls.
func (sc *SlicedCtx) PartCostPair(j int, v uint64) (Pair, Pair) {
	if sc.tabOK && sc.obj != ObjOnes {
		row := sc.nibTab[j*sc.groups*16:]
		var acc uint64
		for g := 0; g < sc.groups; g++ {
			acc += row[v&0xF]
			row = row[16:]
			v >>= 4
		}
		return sc.pairFromCounts(uint32(acc)), sc.pairFromCounts(uint32(acc >> 32))
	}
	return sc.PartCost(j, v), sc.PartCost(j, v^bitutil.Mask(sc.m))
}

// partCostDirect is the table-free pricing path: the per-slice
// mask/popcount pipeline the tables were derived from.
func (sc *SlicedCtx) partCostDirect(j int, v uint64) Pair {
	var desired uint64
	if sc.mlcPlane {
		desired = sc.leftSpread[j] | bitutil.SpreadEven(v)
	} else {
		desired = v
	}
	sm := sc.stuckMask[j]
	stored := (desired &^ sm) | (sc.stuckVal[j] & sm)
	switch sc.obj {
	case ObjFlips:
		if sc.mode == pcm.MLC {
			return Pair{float64(bitutil.SymbolCount(sc.old[j], stored)), 0}
		}
		return Pair{float64(bits.OnesCount64(sc.old[j] ^ stored)), 0}
	case ObjEnergySAW:
		return Pair{sc.sliceEnergy(j, stored), float64(sc.sliceSAW(j, desired))}
	case ObjSAWEnergy:
		return Pair{float64(sc.sliceSAW(j, desired)), sc.sliceEnergy(j, stored)}
	default:
		panic("coset: unknown objective")
	}
}

// sliceFlips counts partition j's flips for the unshifted m-bit value v
// as a raw integer: the count partCostDirect wraps in a float Pair,
// exposed undecorated for the integer flips specialization. It equals
// Evaluator.Part(v<<(j*m), j, m).Primary exactly (the float is the
// int's exact image).
func (sc *SlicedCtx) sliceFlips(j int, v uint64) int {
	var desired uint64
	if sc.mlcPlane {
		desired = sc.leftSpread[j] | bitutil.SpreadEven(v)
	} else {
		desired = v
	}
	sm := sc.stuckMask[j]
	stored := (desired &^ sm) | (sc.stuckVal[j] & sm)
	if sc.mode == pcm.MLC {
		return bitutil.SymbolCount(sc.old[j], stored)
	}
	return bits.OnesCount64(sc.old[j] ^ stored)
}

func (sc *SlicedCtx) sliceEnergy(j int, stored uint64) float64 {
	if sc.mode == pcm.MLC {
		return sc.energy.MLCWordEnergyAll(sc.old[j], stored)
	}
	return sc.energy.SLCWordEnergy(sc.old[j], stored)
}

func (sc *SlicedCtx) sliceSAW(j int, desired uint64) int {
	wrong := (desired ^ sc.stuckVal[j]) & sc.stuckMask[j]
	if sc.mode == pcm.MLC {
		return bitutil.SymbolCount(wrong, 0)
	}
	return bits.OnesCount64(wrong)
}

// auxBitCost mirrors Evaluator.AuxBit for one (old bit, new bit) pair.
func auxBitCost(mode pcm.CellMode, en pcm.EnergyModel, obj Objective, old, val uint64) Pair {
	switch obj {
	case ObjOnes:
		return Pair{float64(val), 0}
	case ObjFlips:
		if old != val {
			return Pair{1, 0}
		}
		return Pair{}
	case ObjEnergySAW, ObjSAWEnergy:
		var e float64
		if old != val {
			if mode == pcm.MLC {
				if val == 1 {
					e = en.MLCHighPJ
				} else {
					e = en.MLCLowPJ
				}
			} else {
				if val == 1 {
					e = en.SLCSetPJ
				} else {
					e = en.SLCResetPJ
				}
			}
		}
		if obj == ObjEnergySAW {
			return Pair{e, 0}
		}
		return Pair{0, e}
	default:
		panic("coset: unknown objective")
	}
}

// pairFloor is a component-wise minimum: the result is lexicographically
// <= both inputs, which is what makes it a sound branch-and-bound lower
// bound (a lexicographic minimum alone would not bound the Secondary
// component of a sum).
func pairFloor(a, b Pair) Pair {
	if b.Primary < a.Primary {
		a.Primary = b.Primary
	}
	if b.Secondary < a.Secondary {
		a.Secondary = b.Secondary
	}
	return a
}

// pairInf is the identity element of pairFloor.
var pairInf = Pair{math.Inf(1), math.Inf(1)}

// cannotBeat reports whether a search branch whose component-wise cost
// lower bound is lb is provably unable to improve on the incumbent under
// obj, so the branch may be pruned without changing the search result.
//
// Soundness has to account for the reference search's own float
// behavior, not just exact arithmetic. Cost components come in two
// kinds. Cell/SAW counts are small integers whose float sums are exact,
// so comparing them is exact: a bound strictly worse loses for certain,
// and a bound exactly equal cannot displace the incumbent either (the
// search requires strict improvement), making >= prunable. Energy sums
// are inexact — two candidates with equal exact cost can differ by ULPs
// depending on which terms were summed — and the reference breaks such
// ties by exactly that noise (FuzzEncodeEquivalence found the case: two
// kernels at exact cost 555.9 summed to 555.9 and 555.9000000000001,
// and the reference's strict < picked the former). A bound cannot
// predict a completion's noise, so on energy components it prunes only
// beyond a relative slack of 1e-9 — four orders above the worst-case
// summation noise of these <=70-term sums (~1e-13 relative), and far
// below any real cost quantum — and near-ties fall through to full
// evaluation in the reference's own summation order.
func cannotBeat(obj Objective, lb, incumbent Pair) bool {
	switch obj {
	case ObjFlips, ObjOnes:
		// Both components exact integer counts.
		return !lb.Less(incumbent)
	case ObjEnergySAW:
		// Primary is energy (noisy): prune on it alone, beyond slack.
		// The secondary never prunes — it only matters on an exact
		// primary tie, which the reference resolves at ULP granularity.
		return lb.Primary > incumbent.Primary+ulpSlack(lb.Primary, incumbent.Primary)
	case ObjSAWEnergy:
		// Primary (SAW count) is exact; secondary is noisy energy.
		if lb.Primary != incumbent.Primary {
			return lb.Primary > incumbent.Primary
		}
		return lb.Secondary > incumbent.Secondary+ulpSlack(lb.Secondary, incumbent.Secondary)
	default:
		return false
	}
}

// ulpSlack is the relative margin separating "worse by a real cost
// quantum" from "possibly an exact tie perturbed by summation noise".
func ulpSlack(a, b float64) float64 {
	return 1e-9 * (math.Abs(a) + math.Abs(b) + 1)
}

// pruneThreshold precomputes cannotBeat's noisy-component test as a
// single bound: for nonnegative costs,
//
//	lb > incumbent + ulpSlack(lb, incumbent)
//	  <=>  lb*(1 - 1e-9) > incumbent*(1 + 1e-9) + 1e-9
//	  <=>  lb > (incumbent*(1+1e-9) + 1e-9) / (1 - 1e-9)
//
// so the kernel scan refreshes the threshold once per incumbent change
// and the per-branch check is one float compare instead of the
// abs/mul/add slack evaluation. The float rounding of the threshold
// itself shifts the cut by a few ULPs (~1e-16 relative) — negligible
// against the four orders of magnitude separating the 1e-9 slack from
// worst-case summation noise, so pruning stays sound. A negative
// incumbent (an adversarial energy model with negative coefficients)
// falls outside the nonnegativity assumption: disable pruning entirely
// rather than risk over-pruning.
func pruneThreshold(incumbent float64) float64 {
	if incumbent < 0 {
		return math.Inf(1)
	}
	return (incumbent*(1+1e-9) + 1e-9) / (1 - 1e-9)
}
