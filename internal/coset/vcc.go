package coset

import (
	"fmt"
	"math/bits"

	"repro/internal/bitutil"
)

// VCC is Virtual Coset Coding (Algorithm 1 of the paper). The n-bit data
// plane is split into p = n/m partitions; each of the r kernels (and its
// complement) is priced on every partition independently and in parallel,
// and the per-partition choices are concatenated into the best virtual
// coset that kernel can form. The overall winner among the r kernels is
// emitted together with its index:
//
//	aux = kernelIndex << p | flags
//
// where flag bit j records that partition j used the complemented kernel.
// One kernel thus stands in for 2^p virtual cosets, so VCC(n, N, r)
// evaluates N = r * 2^p candidates at the cost of r kernel passes — the
// 2^(p-1) complexity reduction over RCC quantified in Section IV.
//
// The per-partition minimization is exact for every Objective in this
// package because all of them decompose over cells: the lexicographic
// (primary, secondary) sum over partitions is minimized by choosing the
// lexicographic minimum within each partition.
type VCC struct {
	n, m, p int
	src     KernelSource

	// sc is the codec-owned sliced context backing the plain Encode
	// entry point; callers that batch words (memctrl) pass their own via
	// EncodeSliced. fs is the fast-path search scratch (candidate cost
	// tables, kernel classes, bound suffixes), allocated on first use
	// and reused so steady-state encodes are allocation-free. Both make
	// a VCC, like the kernel sources it wraps, single-goroutine state.
	sc SlicedCtx
	fs vccSearch
}

// vccSearch is the reusable scratch of the sliced encode search.
type vccSearch struct {
	// Kernel canonicalization: kernels k and k^mMask generate the same
	// per-partition candidate values (with flag roles swapped), so each
	// kernel maps to a class — the canonical value min(k, k^mMask) — and
	// an orientation (comp: whether the kernel is the complemented
	// form). Distinct classes, not kernels, pay candidate pricing.
	canon []uint64 // distinct canonical kernel values (len q <= r)
	pres  []uint8  // per class: bit 0/1 = plain/complemented kernel present
	class []int32  // per kernel: class index
	comp  []bool   // per kernel: complemented orientation
	tab   []uint64 // open-addressed canon -> class map (power-of-two size)

	// Per-partition candidate cost tables: choice[j*q+t] is class t's
	// resolved decision (chosen sub-value, flag bit, cost including the
	// flag aux bit) for partition j, for both orientations.
	choice []partChoice

	// Branch-and-bound state: lb[j] is the component-wise floor of every
	// available choice in partition j, lbSuffix[j] the floor of
	// completing partitions j..p-1. Index-bit cost enters the bound as a
	// single shared floor (idxFloor, the cheaper aux value per index
	// bit, summed) rather than per kernel — the final sum of a surviving
	// kernel re-adds its exact index bits in reference order.
	lb       []Pair
	lbSuffix []Pair

	// epoch invalidates tab lazily: a slot is live only when its stored
	// epoch matches, so dedupe skips the O(len(tab)) clear per word.
	epoch uint32
}

// partChoice holds one kernel class's resolved decision for one
// partition, indexed by kernel orientation.
type partChoice struct {
	enc  [2]uint64
	flag [2]uint64
	cost [2]Pair
}

// ensure sizes the scratch for r kernels over p partitions.
func (s *vccSearch) ensure(r, p int) {
	if cap(s.canon) < r {
		s.canon = make([]uint64, r)
		s.pres = make([]uint8, r)
		s.class = make([]int32, r)
		s.comp = make([]bool, r)
		n := 1
		for n < 2*r {
			n <<= 1
		}
		s.tab = make([]uint64, n)
		s.epoch = 0
	}
	if cap(s.choice) < r*p {
		s.choice = make([]partChoice, r*p)
	}
	if cap(s.lb) < p {
		s.lb = make([]Pair, p)
		s.lbSuffix = make([]Pair, p+1)
	}
}

// dedupe canonicalizes the kernel set and returns the class count q.
// tab slots pack (epoch << 32) | (class + 1); a stale epoch means empty,
// so advancing the epoch invalidates the whole map in O(1). The epoch is
// 32 bits, so a full clear happens once every 2^32 words on wrap.
func (s *vccSearch) dedupe(kernels []uint64, mMask uint64) int {
	tab := s.tab
	s.epoch++
	if s.epoch == 0 { // wrapped: stale slots could alias the new epoch
		for i := range tab {
			tab[i] = 0
		}
		s.epoch = 1
	}
	live := uint64(s.epoch) << 32
	shift := uint(64 - bits.TrailingZeros(uint(len(tab))))
	q := 0
	for i, k := range kernels {
		canon, comp := k, false
		if kc := k ^ mMask; kc < k {
			canon, comp = kc, true
		}
		h := (canon * 0x9E3779B97F4A7C15) >> shift
		for {
			var t int32
			if e := tab[h]; e>>32 != uint64(s.epoch) {
				tab[h] = live | uint64(q+1)
				s.canon[q] = canon
				s.pres[q] = 0
				t = int32(q)
				q++
			} else {
				t = int32(e&0xFFFFFFFF) - 1
				if s.canon[t] != canon {
					h = (h + 1) & uint64(len(tab)-1)
					continue
				}
			}
			s.class[i] = t
			s.comp[i] = comp
			if comp {
				s.pres[t] |= 2
			} else {
				s.pres[t] |= 1
			}
			break
		}
	}
	return q
}

// NewVCC builds a VCC codec over n-bit planes using kernels from src
// (whose width m must divide n).
func NewVCC(n int, src KernelSource) *VCC {
	m := src.KernelBits()
	if n <= 0 || n > 64 || n%m != 0 {
		panic(fmt.Sprintf("coset: VCC kernel width %d must divide plane width %d", m, n))
	}
	p := n / m
	if p > 16 {
		panic("coset: too many partitions")
	}
	return &VCC{n: n, m: m, p: p, src: src}
}

// NewVCCStored is shorthand for the paper's VCC(n, N, r) with a kernel
// ROM: r = N / 2^p kernels of m = n/p bits derived from seed.
func NewVCCStored(n, m, numVirtual int, seed uint64) *VCC {
	p := n / m
	r := numVirtual >> uint(p)
	if r < 1 || r<<uint(p) != numVirtual {
		panic(fmt.Sprintf("coset: N=%d not a multiple of 2^p=%d", numVirtual, 1<<uint(p)))
	}
	return NewVCC(n, NewStoredKernels(r, m, seed))
}

// NewVCCGenerated is shorthand for the MLC right-digit-plane
// configuration with Algorithm 2 kernels: plane width 32, kernels of m
// bits generated from the 32 left digits, N = r * 2^(32/m) virtual
// cosets.
func NewVCCGenerated(m, numVirtual int) *VCC {
	const n = 32
	p := n / m
	r := numVirtual >> uint(p)
	if r < 1 || r<<uint(p) != numVirtual {
		panic(fmt.Sprintf("coset: N=%d not a multiple of 2^p=%d", numVirtual, 1<<uint(p)))
	}
	return NewVCC(n, NewGeneratedKernels(n, m, r))
}

// Name implements Codec.
func (c *VCC) Name() string {
	kind := "Gen"
	if c.src.Stored() {
		kind = "Stored"
	}
	return fmt.Sprintf("VCC-%s(%d,%d,%d)", kind, c.n, c.NumVirtualCosets(), c.src.NumKernels())
}

// PlaneBits implements Codec.
func (c *VCC) PlaneBits() int { return c.n }

// Partitions returns p = n/m.
func (c *VCC) Partitions() int { return c.p }

// KernelBits returns m.
func (c *VCC) KernelBits() int { return c.m }

// NumKernels returns r.
func (c *VCC) NumKernels() int { return c.src.NumKernels() }

// NumVirtualCosets returns N = r * 2^p.
func (c *VCC) NumVirtualCosets() int { return c.src.NumKernels() << uint(c.p) }

// Source returns the kernel source.
func (c *VCC) Source() KernelSource { return c.src }

// AuxBits implements Codec: log2(r) kernel-select bits plus p flag bits,
// which equals log2(N) — the same auxiliary budget as RCC(n, N).
func (c *VCC) AuxBits() int { return log2(c.src.NumKernels()) + c.p }

// Encode implements Codec (Algorithm 1). Each partition decision folds in
// the write cost of its own flag bit (auxiliary cost decomposes per bit),
// and each kernel's total folds in its index bits, so the result is
// exactly the optimum over all N virtual cosets including auxiliary
// overhead — the quantity Algorithm 1 line 19 minimizes.
//
// Encode runs the partition-sliced fast path (EncodeSliced) against the
// codec-owned sliced context; EncodeRef retains the direct search. The
// two are bit-identical — enforced by TestFastEncodeMatchesReference and
// FuzzEncodeEquivalence.
func (c *VCC) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	return c.EncodeSliced(data, ev, &c.sc)
}

// EncodeRef is the reference Algorithm 1 search: every kernel prices
// both complements of every partition through the plain Evaluator. It is
// the correctness oracle the fast path is fuzzed against, and the
// fallback for contexts the sliced path cannot represent.
func (c *VCC) EncodeRef(data uint64, ev *Evaluator) (uint64, uint64) {
	d := data & bitutil.Mask(c.n)
	kernels := c.src.Kernels(ev.Ctx.NewLeft)
	mMask := bitutil.Mask(c.m)

	var bestEnc, bestAux uint64
	var bestCost Pair
	for i, k := range kernels {
		var enc, flags uint64
		var cost Pair
		for j := 0; j < c.p; j++ {
			dj := bitutil.SubBlock(d, j, c.m)
			y0 := (dj ^ k) << uint(j*c.m)
			y1 := (dj ^ (k ^ mMask)) << uint(j*c.m)
			c0 := ev.Part(y0, j, c.m).Add(ev.AuxBit(j, 0))
			c1 := ev.Part(y1, j, c.m).Add(ev.AuxBit(j, 1))
			if c1.Less(c0) {
				enc |= y1
				flags |= 1 << uint(j)
				cost = cost.Add(c1)
			} else {
				enc |= y0
				cost = cost.Add(c0)
			}
		}
		// Kernel-index bits occupy aux positions p and up.
		for b := c.p; b < c.AuxBits(); b++ {
			cost = cost.Add(ev.AuxBit(b, uint64(i)>>uint(b-c.p)&1))
		}
		aux := uint64(i)<<uint(c.p) | flags
		if i == 0 || cost.Less(bestCost) {
			bestEnc, bestAux, bestCost = enc, aux, cost
		}
	}
	return bestEnc, bestAux
}

// EncodeSliced implements FastCodec: Algorithm 1 restructured around the
// sliced write context sc (rebound here; the caller only provides the
// reusable storage). Three phases replace the reference's uniform
// r x p x 2 Evaluator sweep:
//
//  1. Kernel canonicalization. Kernels k and k^mMask span the same
//     candidate values per partition, so kernels collapse into q <= r
//     classes; only distinct classes are priced.
//  2. Per-partition candidate cost tables. For each partition j and
//     class t the two candidate values {dj^k, dj^k^mMask} are priced
//     once through the sliced context, the flag decision (including the
//     flag bit's own aux cost, from the 2x2 table) is resolved for both
//     kernel orientations, and a component-wise cost floor per
//     partition is recorded.
//  3. Branch-and-bound kernel scan. Each kernel's total is now a sum of
//     table entries, accumulated in the reference's summation order; a
//     kernel is abandoned as soon as its partial cost plus the floor of
//     the remaining partitions and index bits provably cannot beat the
//     incumbent (see cannotBeat for why pruning never changes the
//     selected coset).
func (c *VCC) EncodeSliced(data uint64, ev *Evaluator, sc *SlicedCtx) (uint64, uint64) {
	// A context whose plane width disagrees with the codec's would slice
	// into partitions the search does not iterate; the reference path
	// defines the (degenerate) semantics of that misuse, so defer to it.
	if ev.Ctx.N != c.n || !sc.Bind(ev, c.m) {
		return c.EncodeRef(data, ev)
	}
	d := data & bitutil.Mask(c.n)
	kernels := c.src.Kernels(ev.Ctx.NewLeft)
	r := len(kernels)
	s := &c.fs
	s.ensure(r, c.p)
	mMask := bitutil.Mask(c.m)
	q := s.dedupe(kernels, mMask)

	auxBits := c.AuxBits()
	for j := 0; j < c.p; j++ {
		dj := bitutil.SubBlock(d, j, c.m)
		a0 := sc.AuxBit(j, 0)
		a1 := sc.AuxBit(j, 1)
		floor := pairInf
		row := s.choice[j*q : (j+1)*q]
		for t := 0; t < q; t++ {
			y0 := dj ^ s.canon[t]
			y1 := y0 ^ mMask
			pc0 := sc.PartCost(j, y0)
			pc1 := sc.PartCost(j, y1)
			e := &row[t]
			pres := s.pres[t]
			if pres&1 != 0 { // plain orientation: flag 0 writes y0
				c0 := pc0.Add(a0)
				c1 := pc1.Add(a1)
				if c1.Less(c0) {
					e.cost[0], e.enc[0], e.flag[0] = c1, y1, 1
				} else {
					e.cost[0], e.enc[0], e.flag[0] = c0, y0, 0
				}
				floor = pairFloor(floor, e.cost[0])
			}
			if pres&2 != 0 { // complemented orientation: flag 0 writes y1
				c0 := pc1.Add(a0)
				c1 := pc0.Add(a1)
				if c1.Less(c0) {
					e.cost[1], e.enc[1], e.flag[1] = c1, y0, 1
				} else {
					e.cost[1], e.enc[1], e.flag[1] = c0, y1, 0
				}
				floor = pairFloor(floor, e.cost[1])
			}
		}
		s.lb[j] = floor
	}
	// Fold the cheapest possible index-bit spend into the bound suffix:
	// every kernel pays at least the cheaper aux value per index bit, so
	// the floor stays a valid component-wise lower bound for all of them.
	var idxFloor Pair
	for b := c.p; b < auxBits; b++ {
		idxFloor = idxFloor.Add(pairFloor(sc.AuxBit(b, 0), sc.AuxBit(b, 1)))
	}
	s.lbSuffix[c.p] = idxFloor
	for j := c.p - 1; j >= 0; j-- {
		s.lbSuffix[j] = s.lb[j].Add(s.lbSuffix[j+1])
	}

	var bestEnc, bestAux uint64
	var bestCost Pair
	for i := 0; i < r; i++ {
		t := s.class[i]
		o := 0
		if s.comp[i] {
			o = 1
		}
		var enc, flags uint64
		var cost Pair
		pruned := false
		for j := 0; j < c.p; j++ {
			e := &s.choice[j*q+int(t)]
			cost = cost.Add(e.cost[o])
			enc |= e.enc[o] << uint(j*c.m)
			flags |= e.flag[o] << uint(j)
			if i > 0 && cannotBeat(sc.obj, cost.Add(s.lbSuffix[j+1]), bestCost) {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		for b := c.p; b < auxBits; b++ {
			cost = cost.Add(sc.AuxBit(b, uint64(i)>>uint(b-c.p)&1))
		}
		aux := uint64(i)<<uint(c.p) | flags
		if i == 0 || cost.Less(bestCost) {
			bestEnc, bestAux, bestCost = enc, aux, cost
		}
	}
	return bestEnc, bestAux
}

// Decode implements Codec: the inverse is a single XOR/XNOR per
// partition, selected by the stored flags (Section IV-A: "the process of
// decoding is simpler ... and incurs negligible latency overhead").
func (c *VCC) Decode(enc, aux, left uint64) uint64 {
	kernels := c.src.Kernels(left)
	i := aux >> uint(c.p)
	flags := aux & bitutil.Mask(c.p)
	if int(i) >= len(kernels) {
		panic(fmt.Sprintf("coset: VCC kernel index %d out of range", i))
	}
	k := kernels[i]
	mMask := bitutil.Mask(c.m)
	var out uint64
	for j := 0; j < c.p; j++ {
		yj := bitutil.SubBlock(enc, j, c.m)
		kj := k
		if flags>>uint(j)&1 == 1 {
			kj ^= mMask
		}
		out |= (yj ^ kj) << uint(j*c.m)
	}
	return out
}

// VirtualCoset materializes virtual coset candidate with the given aux
// index for a word whose left plane is left: the full n-bit XOR vector
// the encoder implicitly applied. Exposed for tests and for the analytic
// comparisons against RCC.
func (c *VCC) VirtualCoset(aux, left uint64) uint64 {
	kernels := c.src.Kernels(left)
	i := aux >> uint(c.p)
	flags := aux & bitutil.Mask(c.p)
	k := kernels[i]
	mMask := bitutil.Mask(c.m)
	var v uint64
	for j := 0; j < c.p; j++ {
		kj := k
		if flags>>uint(j)&1 == 1 {
			kj ^= mMask
		}
		v |= kj << uint(j*c.m)
	}
	return v
}
