package coset

import (
	"fmt"

	"repro/internal/bitutil"
)

// VCC is Virtual Coset Coding (Algorithm 1 of the paper). The n-bit data
// plane is split into p = n/m partitions; each of the r kernels (and its
// complement) is priced on every partition independently and in parallel,
// and the per-partition choices are concatenated into the best virtual
// coset that kernel can form. The overall winner among the r kernels is
// emitted together with its index:
//
//	aux = kernelIndex << p | flags
//
// where flag bit j records that partition j used the complemented kernel.
// One kernel thus stands in for 2^p virtual cosets, so VCC(n, N, r)
// evaluates N = r * 2^p candidates at the cost of r kernel passes — the
// 2^(p-1) complexity reduction over RCC quantified in Section IV.
//
// The per-partition minimization is exact for every Objective in this
// package because all of them decompose over cells: the lexicographic
// (primary, secondary) sum over partitions is minimized by choosing the
// lexicographic minimum within each partition.
type VCC struct {
	n, m, p int
	src     KernelSource
}

// NewVCC builds a VCC codec over n-bit planes using kernels from src
// (whose width m must divide n).
func NewVCC(n int, src KernelSource) *VCC {
	m := src.KernelBits()
	if n <= 0 || n > 64 || n%m != 0 {
		panic(fmt.Sprintf("coset: VCC kernel width %d must divide plane width %d", m, n))
	}
	p := n / m
	if p > 16 {
		panic("coset: too many partitions")
	}
	return &VCC{n: n, m: m, p: p, src: src}
}

// NewVCCStored is shorthand for the paper's VCC(n, N, r) with a kernel
// ROM: r = N / 2^p kernels of m = n/p bits derived from seed.
func NewVCCStored(n, m, numVirtual int, seed uint64) *VCC {
	p := n / m
	r := numVirtual >> uint(p)
	if r < 1 || r<<uint(p) != numVirtual {
		panic(fmt.Sprintf("coset: N=%d not a multiple of 2^p=%d", numVirtual, 1<<uint(p)))
	}
	return NewVCC(n, NewStoredKernels(r, m, seed))
}

// NewVCCGenerated is shorthand for the MLC right-digit-plane
// configuration with Algorithm 2 kernels: plane width 32, kernels of m
// bits generated from the 32 left digits, N = r * 2^(32/m) virtual
// cosets.
func NewVCCGenerated(m, numVirtual int) *VCC {
	const n = 32
	p := n / m
	r := numVirtual >> uint(p)
	if r < 1 || r<<uint(p) != numVirtual {
		panic(fmt.Sprintf("coset: N=%d not a multiple of 2^p=%d", numVirtual, 1<<uint(p)))
	}
	return NewVCC(n, NewGeneratedKernels(n, m, r))
}

// Name implements Codec.
func (c *VCC) Name() string {
	kind := "Gen"
	if c.src.Stored() {
		kind = "Stored"
	}
	return fmt.Sprintf("VCC-%s(%d,%d,%d)", kind, c.n, c.NumVirtualCosets(), c.src.NumKernels())
}

// PlaneBits implements Codec.
func (c *VCC) PlaneBits() int { return c.n }

// Partitions returns p = n/m.
func (c *VCC) Partitions() int { return c.p }

// KernelBits returns m.
func (c *VCC) KernelBits() int { return c.m }

// NumKernels returns r.
func (c *VCC) NumKernels() int { return c.src.NumKernels() }

// NumVirtualCosets returns N = r * 2^p.
func (c *VCC) NumVirtualCosets() int { return c.src.NumKernels() << uint(c.p) }

// Source returns the kernel source.
func (c *VCC) Source() KernelSource { return c.src }

// AuxBits implements Codec: log2(r) kernel-select bits plus p flag bits,
// which equals log2(N) — the same auxiliary budget as RCC(n, N).
func (c *VCC) AuxBits() int { return log2(c.src.NumKernels()) + c.p }

// Encode implements Codec (Algorithm 1). Each partition decision folds in
// the write cost of its own flag bit (auxiliary cost decomposes per bit),
// and each kernel's total folds in its index bits, so the result is
// exactly the optimum over all N virtual cosets including auxiliary
// overhead — the quantity Algorithm 1 line 19 minimizes.
func (c *VCC) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	d := data & bitutil.Mask(c.n)
	kernels := c.src.Kernels(ev.Ctx.NewLeft)
	mMask := bitutil.Mask(c.m)

	var bestEnc, bestAux uint64
	var bestCost Pair
	for i, k := range kernels {
		var enc, flags uint64
		var cost Pair
		for j := 0; j < c.p; j++ {
			dj := bitutil.SubBlock(d, j, c.m)
			y0 := (dj ^ k) << uint(j*c.m)
			y1 := (dj ^ (k ^ mMask)) << uint(j*c.m)
			c0 := ev.Part(y0, j, c.m).Add(ev.AuxBit(j, 0))
			c1 := ev.Part(y1, j, c.m).Add(ev.AuxBit(j, 1))
			if c1.Less(c0) {
				enc |= y1
				flags |= 1 << uint(j)
				cost = cost.Add(c1)
			} else {
				enc |= y0
				cost = cost.Add(c0)
			}
		}
		// Kernel-index bits occupy aux positions p and up.
		for b := c.p; b < c.AuxBits(); b++ {
			cost = cost.Add(ev.AuxBit(b, uint64(i)>>uint(b-c.p)&1))
		}
		aux := uint64(i)<<uint(c.p) | flags
		if i == 0 || cost.Less(bestCost) {
			bestEnc, bestAux, bestCost = enc, aux, cost
		}
	}
	return bestEnc, bestAux
}

// Decode implements Codec: the inverse is a single XOR/XNOR per
// partition, selected by the stored flags (Section IV-A: "the process of
// decoding is simpler ... and incurs negligible latency overhead").
func (c *VCC) Decode(enc, aux, left uint64) uint64 {
	kernels := c.src.Kernels(left)
	i := aux >> uint(c.p)
	flags := aux & bitutil.Mask(c.p)
	if int(i) >= len(kernels) {
		panic(fmt.Sprintf("coset: VCC kernel index %d out of range", i))
	}
	k := kernels[i]
	mMask := bitutil.Mask(c.m)
	var out uint64
	for j := 0; j < c.p; j++ {
		yj := bitutil.SubBlock(enc, j, c.m)
		kj := k
		if flags>>uint(j)&1 == 1 {
			kj ^= mMask
		}
		out |= (yj ^ kj) << uint(j*c.m)
	}
	return out
}

// VirtualCoset materializes virtual coset candidate with the given aux
// index for a word whose left plane is left: the full n-bit XOR vector
// the encoder implicitly applied. Exposed for tests and for the analytic
// comparisons against RCC.
func (c *VCC) VirtualCoset(aux, left uint64) uint64 {
	kernels := c.src.Kernels(left)
	i := aux >> uint(c.p)
	flags := aux & bitutil.Mask(c.p)
	k := kernels[i]
	mMask := bitutil.Mask(c.m)
	var v uint64
	for j := 0; j < c.p; j++ {
		kj := k
		if flags>>uint(j)&1 == 1 {
			kj ^= mMask
		}
		v |= kj << uint(j*c.m)
	}
	return v
}
