package coset

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitutil"
)

// VCC is Virtual Coset Coding (Algorithm 1 of the paper). The n-bit data
// plane is split into p = n/m partitions; each of the r kernels (and its
// complement) is priced on every partition independently and in parallel,
// and the per-partition choices are concatenated into the best virtual
// coset that kernel can form. The overall winner among the r kernels is
// emitted together with its index:
//
//	aux = kernelIndex << p | flags
//
// where flag bit j records that partition j used the complemented kernel.
// One kernel thus stands in for 2^p virtual cosets, so VCC(n, N, r)
// evaluates N = r * 2^p candidates at the cost of r kernel passes — the
// 2^(p-1) complexity reduction over RCC quantified in Section IV.
//
// The per-partition minimization is exact for every Objective in this
// package because all of them decompose over cells: the lexicographic
// (primary, secondary) sum over partitions is minimized by choosing the
// lexicographic minimum within each partition.
type VCC struct {
	n, m, p int
	src     KernelSource

	// sc is the codec-owned sliced context backing the plain Encode
	// entry point; callers that batch words (memctrl) pass their own via
	// EncodeSliced. fs is the fast-path search scratch (candidate cost
	// tables, kernel classes, bound suffixes), allocated on first use
	// and reused so steady-state encodes are allocation-free. Both make
	// a VCC, like the kernel sources it wraps, single-goroutine state.
	sc SlicedCtx
	fs vccSearch

	// Decode fast-path plan, fixed at construction (see DecodeWords).
	// repMul tiles an m-bit kernel across all p partitions with one
	// multiply (ones at bit positions j*m; kernels carry no bits above
	// m, so the partial products never overlap and the sum is exactly
	// the OR of the shifted copies). flagTab maps the p flag bits to
	// the full-plane complement mask they select. storedTiled caches
	// the ROM kernels pre-tiled; kat answers single generated kernels
	// without expanding the set. flagTab == nil (p too wide for the
	// table) disables the plan and DecodeWords falls back to Decode.
	repMul      uint64
	flagTab     []uint64
	storedTiled []uint64
	kat         KernelAtSource
}

// vccFlagTabMaxP bounds the decode flag table at 256 entries (2 KiB).
// NewVCC admits p up to 16, but beyond 8 flag bits the table would
// outgrow its cache-residency budget for a rarely-used geometry, so
// those decode through the reference path instead.
const vccFlagTabMaxP = 8

// vccSearch is the reusable scratch of the sliced encode search.
type vccSearch struct {
	// Kernel canonicalization: kernels k and k^mMask generate the same
	// per-partition candidate values (with flag roles swapped), so each
	// kernel maps to a class — the canonical value min(k, k^mMask) — and
	// an orientation (comp: whether the kernel is the complemented
	// form). Distinct classes, not kernels, pay candidate pricing.
	canon []uint64 // distinct canonical kernel values (len q <= r)
	pres  []uint8  // per class: bit 0/1 = plain/complemented kernel present
	class []int32  // per kernel: class index
	comp  []bool   // per kernel: complemented orientation
	tab   []uint64 // open-addressed canon -> class map (power-of-two size)

	// Per-partition candidate cost tables: choice[j*q+t] is class t's
	// resolved decision (chosen sub-value, flag bit, cost including the
	// flag aux bit) for partition j, for both orientations.
	choice []partChoice

	// idxP caches the kernel-index aux-bit primary costs per bit value
	// for the ObjEnergySAW specialization, so surviving kernels fold
	// their index bits with one indexed load each.
	idxP [2][16]float64

	// Branch-and-bound state: lb[j] is the component-wise floor of every
	// available choice in partition j, lbSuffix[j] the floor of
	// completing partitions j..p-1. Index-bit cost enters the bound as a
	// single shared floor (idxFloor, the cheaper aux value per index
	// bit, summed) rather than per kernel — the final sum of a surviving
	// kernel re-adds its exact index bits in reference order.
	lb       []Pair
	lbSuffix []Pair

	// epoch invalidates tab lazily: a slot is live only when its stored
	// epoch matches, so dedupe skips the O(len(tab)) clear per word.
	epoch uint32

	// Stored kernel ROMs never change, so their canonicalization is
	// computed once (staticDone) and the class count cached (staticQ)
	// instead of re-hashing the identical kernel set every word.
	staticDone bool
	staticQ    int
}

// partChoice holds one kernel class's resolved decision for one
// partition, indexed by kernel orientation.
type partChoice struct {
	enc  [2]uint64
	flag [2]uint64
	cost [2]Pair
}

// ensure sizes the scratch for r kernels over p partitions.
func (s *vccSearch) ensure(r, p int) {
	if cap(s.canon) < r {
		s.canon = make([]uint64, r)
		s.pres = make([]uint8, r)
		s.class = make([]int32, r)
		s.comp = make([]bool, r)
		n := 1
		for n < 2*r {
			n <<= 1
		}
		s.tab = make([]uint64, n)
		s.epoch = 0
	}
	if cap(s.choice) < r*p {
		s.choice = make([]partChoice, r*p)
	}
	if cap(s.lb) < p {
		s.lb = make([]Pair, p)
		s.lbSuffix = make([]Pair, p+1)
	}
}

// dedupe canonicalizes the kernel set and returns the class count q.
// tab slots pack (epoch << 32) | (class + 1); a stale epoch means empty,
// so advancing the epoch invalidates the whole map in O(1). The epoch is
// 32 bits, so a full clear happens once every 2^32 words on wrap.
func (s *vccSearch) dedupe(kernels []uint64, mMask uint64) int {
	tab := s.tab
	s.epoch++
	if s.epoch == 0 { // wrapped: stale slots could alias the new epoch
		for i := range tab {
			tab[i] = 0
		}
		s.epoch = 1
	}
	live := uint64(s.epoch) << 32
	shift := uint(64 - bits.TrailingZeros(uint(len(tab))))
	q := 0
	for i, k := range kernels {
		canon, comp := k, false
		if kc := k ^ mMask; kc < k {
			canon, comp = kc, true
		}
		h := (canon * 0x9E3779B97F4A7C15) >> shift
		for {
			var t int32
			if e := tab[h]; e>>32 != uint64(s.epoch) {
				tab[h] = live | uint64(q+1)
				s.canon[q] = canon
				s.pres[q] = 0
				t = int32(q)
				q++
			} else {
				t = int32(e&0xFFFFFFFF) - 1
				if s.canon[t] != canon {
					h = (h + 1) & uint64(len(tab)-1)
					continue
				}
			}
			s.class[i] = t
			s.comp[i] = comp
			if comp {
				s.pres[t] |= 2
			} else {
				s.pres[t] |= 1
			}
			break
		}
	}
	return q
}

// NewVCC builds a VCC codec over n-bit planes using kernels from src
// (whose width m must divide n).
func NewVCC(n int, src KernelSource) *VCC {
	m := src.KernelBits()
	if n <= 0 || n > 64 || n%m != 0 {
		panic(fmt.Sprintf("coset: VCC kernel width %d must divide plane width %d", m, n))
	}
	p := n / m
	if p > 16 {
		panic("coset: too many partitions")
	}
	c := &VCC{n: n, m: m, p: p, src: src}
	if p <= vccFlagTabMaxP {
		for j := 0; j < p; j++ {
			c.repMul |= 1 << uint(j*m)
		}
		mMask := bitutil.Mask(m)
		c.flagTab = make([]uint64, 1<<uint(p))
		for f := 1; f < len(c.flagTab); f++ {
			low := uint(bits.TrailingZeros(uint(f)))
			c.flagTab[f] = c.flagTab[f&(f-1)] | mMask<<(low*uint(m))
		}
		if src.Stored() {
			ks := src.Kernels(0)
			c.storedTiled = make([]uint64, len(ks))
			for i, k := range ks {
				c.storedTiled[i] = k * c.repMul
			}
		} else if ka, ok := src.(KernelAtSource); ok {
			c.kat = ka
		}
	}
	return c
}

// NewVCCStored is shorthand for the paper's VCC(n, N, r) with a kernel
// ROM: r = N / 2^p kernels of m = n/p bits derived from seed.
func NewVCCStored(n, m, numVirtual int, seed uint64) *VCC {
	p := n / m
	r := numVirtual >> uint(p)
	if r < 1 || r<<uint(p) != numVirtual {
		panic(fmt.Sprintf("coset: N=%d not a multiple of 2^p=%d", numVirtual, 1<<uint(p)))
	}
	return NewVCC(n, NewStoredKernels(r, m, seed))
}

// NewVCCGenerated is shorthand for the MLC right-digit-plane
// configuration with Algorithm 2 kernels: plane width 32, kernels of m
// bits generated from the 32 left digits, N = r * 2^(32/m) virtual
// cosets.
func NewVCCGenerated(m, numVirtual int) *VCC {
	const n = 32
	p := n / m
	r := numVirtual >> uint(p)
	if r < 1 || r<<uint(p) != numVirtual {
		panic(fmt.Sprintf("coset: N=%d not a multiple of 2^p=%d", numVirtual, 1<<uint(p)))
	}
	return NewVCC(n, NewGeneratedKernels(n, m, r))
}

// Name implements Codec.
func (c *VCC) Name() string {
	kind := "Gen"
	if c.src.Stored() {
		kind = "Stored"
	}
	return fmt.Sprintf("VCC-%s(%d,%d,%d)", kind, c.n, c.NumVirtualCosets(), c.src.NumKernels())
}

// PlaneBits implements Codec.
func (c *VCC) PlaneBits() int { return c.n }

// Partitions returns p = n/m.
func (c *VCC) Partitions() int { return c.p }

// KernelBits returns m.
func (c *VCC) KernelBits() int { return c.m }

// NumKernels returns r.
func (c *VCC) NumKernels() int { return c.src.NumKernels() }

// NumVirtualCosets returns N = r * 2^p.
func (c *VCC) NumVirtualCosets() int { return c.src.NumKernels() << uint(c.p) }

// Source returns the kernel source.
func (c *VCC) Source() KernelSource { return c.src }

// AuxBits implements Codec: log2(r) kernel-select bits plus p flag bits,
// which equals log2(N) — the same auxiliary budget as RCC(n, N).
func (c *VCC) AuxBits() int { return log2(c.src.NumKernels()) + c.p }

// Encode implements Codec (Algorithm 1). Each partition decision folds in
// the write cost of its own flag bit (auxiliary cost decomposes per bit),
// and each kernel's total folds in its index bits, so the result is
// exactly the optimum over all N virtual cosets including auxiliary
// overhead — the quantity Algorithm 1 line 19 minimizes.
//
// Encode runs the partition-sliced fast path (EncodeSliced) against the
// codec-owned sliced context; EncodeRef retains the direct search. The
// two are bit-identical — enforced by TestFastEncodeMatchesReference and
// FuzzEncodeEquivalence.
func (c *VCC) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	return c.EncodeSliced(data, ev, &c.sc)
}

// EncodeRef is the reference Algorithm 1 search: every kernel prices
// both complements of every partition through the plain Evaluator. It is
// the correctness oracle the fast path is fuzzed against, and the
// fallback for contexts the sliced path cannot represent.
func (c *VCC) EncodeRef(data uint64, ev *Evaluator) (uint64, uint64) {
	d := data & bitutil.Mask(c.n)
	kernels := c.src.Kernels(ev.Ctx.NewLeft)
	mMask := bitutil.Mask(c.m)

	var bestEnc, bestAux uint64
	var bestCost Pair
	for i, k := range kernels {
		var enc, flags uint64
		var cost Pair
		for j := 0; j < c.p; j++ {
			dj := bitutil.SubBlock(d, j, c.m)
			y0 := (dj ^ k) << uint(j*c.m)
			y1 := (dj ^ (k ^ mMask)) << uint(j*c.m)
			c0 := ev.Part(y0, j, c.m).Add(ev.AuxBit(j, 0))
			c1 := ev.Part(y1, j, c.m).Add(ev.AuxBit(j, 1))
			if c1.Less(c0) {
				enc |= y1
				flags |= 1 << uint(j)
				cost = cost.Add(c1)
			} else {
				enc |= y0
				cost = cost.Add(c0)
			}
		}
		// Kernel-index bits occupy aux positions p and up.
		for b := c.p; b < c.AuxBits(); b++ {
			cost = cost.Add(ev.AuxBit(b, uint64(i)>>uint(b-c.p)&1))
		}
		aux := uint64(i)<<uint(c.p) | flags
		if i == 0 || cost.Less(bestCost) {
			bestEnc, bestAux, bestCost = enc, aux, cost
		}
	}
	return bestEnc, bestAux
}

// EncodeSliced implements FastCodec: Algorithm 1 restructured around the
// sliced write context sc (rebound here; the caller only provides the
// reusable storage). Three phases replace the reference's uniform
// r x p x 2 Evaluator sweep:
//
//  1. Kernel class layout. Stored ROMs are canonicalized once (kernels
//     k and k^mMask span the same candidate values per partition, so
//     kernels collapse into q <= r classes) and the result reused for
//     every word. Generated sources vary per word, but Algorithm 2's
//     mask width already keeps complements out of the set and exact
//     duplicates need base-vector collisions (probability ~r/2^m on
//     random data), so hashing every kernel every word costs more than
//     the rare duplicate pricing it would save: each kernel is its own
//     class, exactly the reference's view.
//  2. Per-partition candidate cost tables. For each partition j and
//     class t the candidate pair {dj^k, dj^k^mMask} is priced in one
//     PartCostPair walk through the sliced context (nibble tables when
//     bound), the flag decision (including the flag bit's own aux
//     cost, from the 2x2 table) is resolved per orientation, and a
//     component-wise cost floor per partition is recorded.
//  3. Branch-and-bound kernel scan. Each kernel's total is now a sum of
//     table entries, accumulated in the reference's summation order; a
//     kernel is abandoned as soon as its partial cost plus the floor of
//     the remaining partitions and index bits provably cannot beat the
//     incumbent. The prune predicate is cannotBeat's, with the noisy
//     component's slack test precomputed into a single bound per
//     incumbent (see pruneThreshold for why this never changes the
//     selected coset).
func (c *VCC) EncodeSliced(data uint64, ev *Evaluator, sc *SlicedCtx) (uint64, uint64) {
	// A context whose plane width disagrees with the codec's would slice
	// into partitions the search does not iterate; the reference path
	// defines the (degenerate) semantics of that misuse, so defer to it.
	// Each kernel prices both complements of every partition, so the
	// bind hint clears the nibble-table threshold for every real VCC
	// geometry.
	if ev.Ctx.N != c.n || !sc.BindFor(ev, c.m, 2*c.src.NumKernels()) {
		return c.EncodeRef(data, ev)
	}
	d := data & bitutil.Mask(c.n)
	kernels := c.src.Kernels(ev.Ctx.NewLeft)
	r := len(kernels)
	s := &c.fs
	// The specialization prices kernels[i] directly and never consults
	// the class tables, so it serves stored ROMs and per-word generated
	// sets alike (pricing a duplicate kernel costs four table loads —
	// cheaper than the dedupe that would skip it). Its suffix bounds
	// assume cell energies are nonnegative (remaining partitions are
	// floored at their aux cost alone), so a pathological
	// negative-coefficient model stays on the generic path, whose floors
	// are minima of actual candidate costs.
	if sc.tabOK && sc.obj == ObjEnergySAW && sc.etabFits &&
		sc.cHi >= 0 && sc.cLo >= 0 {
		return c.encodeSlicedEnergySAW(d, kernels, sc, s)
	}
	if sc.obj == ObjFlips && !sc.tabOK {
		return c.encodeSlicedFlips(d, kernels, sc)
	}
	s.ensure(r, c.p)
	mMask := bitutil.Mask(c.m)
	identity := !c.src.Stored()
	var q int
	if identity {
		q = r
	} else {
		if !s.staticDone {
			s.staticQ = s.dedupe(kernels, mMask)
			s.staticDone = true
		}
		q = s.staticQ
	}

	auxBits := c.AuxBits()
	for j := 0; j < c.p; j++ {
		dj := bitutil.SubBlock(d, j, c.m)
		a0 := sc.AuxBit(j, 0)
		a1 := sc.AuxBit(j, 1)
		floor := pairInf
		row := s.choice[j*q : (j+1)*q]
		if identity {
			// Per-word kernels, plain orientation only: same decision
			// and tie-break as the reference's flag scan.
			for t := 0; t < q; t++ {
				y0 := dj ^ kernels[t]
				pc0, pc1 := sc.PartCostPair(j, y0)
				e := &row[t]
				c0 := pc0.Add(a0)
				c1 := pc1.Add(a1)
				if c1.Less(c0) {
					e.cost[0], e.enc[0], e.flag[0] = c1, y0^mMask, 1
				} else {
					e.cost[0], e.enc[0], e.flag[0] = c0, y0, 0
				}
				floor = pairFloor(floor, e.cost[0])
			}
			s.lb[j] = floor
			continue
		}
		for t := 0; t < q; t++ {
			y0 := dj ^ s.canon[t]
			y1 := y0 ^ mMask
			pc0, pc1 := sc.PartCostPair(j, y0)
			e := &row[t]
			pres := s.pres[t]
			if pres&1 != 0 { // plain orientation: flag 0 writes y0
				c0 := pc0.Add(a0)
				c1 := pc1.Add(a1)
				if c1.Less(c0) {
					e.cost[0], e.enc[0], e.flag[0] = c1, y1, 1
				} else {
					e.cost[0], e.enc[0], e.flag[0] = c0, y0, 0
				}
				floor = pairFloor(floor, e.cost[0])
			}
			if pres&2 != 0 { // complemented orientation: flag 0 writes y1
				c0 := pc1.Add(a0)
				c1 := pc0.Add(a1)
				if c1.Less(c0) {
					e.cost[1], e.enc[1], e.flag[1] = c1, y0, 1
				} else {
					e.cost[1], e.enc[1], e.flag[1] = c0, y1, 0
				}
				floor = pairFloor(floor, e.cost[1])
			}
		}
		s.lb[j] = floor
	}
	// Fold the cheapest possible index-bit spend into the bound suffix:
	// every kernel pays at least the cheaper aux value per index bit, so
	// the floor stays a valid component-wise lower bound for all of them.
	var idxFloor Pair
	for b := c.p; b < auxBits; b++ {
		idxFloor = idxFloor.Add(pairFloor(sc.AuxBit(b, 0), sc.AuxBit(b, 1)))
	}
	s.lbSuffix[c.p] = idxFloor
	for j := c.p - 1; j >= 0; j-- {
		s.lbSuffix[j] = s.lb[j].Add(s.lbSuffix[j+1])
	}

	obj := sc.obj
	var bestEnc, bestAux uint64
	var bestCost Pair
	// Precomputed prune cuts (see pruneThreshold): threshP bounds the
	// noisy primary under ObjEnergySAW, threshS the noisy secondary
	// under ObjSAWEnergy. Both refresh only when the incumbent changes,
	// so the inner check is a compare instead of cannotBeat's slack
	// evaluation — same predicate, hoisted.
	var threshP, threshS float64
	for i := 0; i < r; i++ {
		t, o := i, 0
		if !identity {
			t = int(s.class[i])
			if s.comp[i] {
				o = 1
			}
		}
		var enc, flags uint64
		var cost Pair
		pruned := false
		for j := 0; j < c.p; j++ {
			e := &s.choice[j*q+t]
			cost = cost.Add(e.cost[o])
			enc |= e.enc[o] << uint(j*c.m)
			flags |= e.flag[o] << uint(j)
			if i == 0 {
				continue
			}
			lb := s.lbSuffix[j+1]
			switch obj {
			case ObjEnergySAW:
				pruned = cost.Primary+lb.Primary > threshP
			case ObjSAWEnergy:
				p := cost.Primary + lb.Primary
				pruned = p > bestCost.Primary ||
					(p == bestCost.Primary && cost.Secondary+lb.Secondary > threshS)
			default: // exact integer components: a >= bound cannot win
				p := cost.Primary + lb.Primary
				pruned = p > bestCost.Primary ||
					(p == bestCost.Primary && cost.Secondary+lb.Secondary >= bestCost.Secondary)
			}
			if pruned {
				break
			}
		}
		if pruned {
			continue
		}
		for b := c.p; b < auxBits; b++ {
			cost = cost.Add(sc.AuxBit(b, uint64(i)>>uint(b-c.p)&1))
		}
		aux := uint64(i)<<uint(c.p) | flags
		if i == 0 || cost.Less(bestCost) {
			bestEnc, bestAux, bestCost = enc, aux, cost
			switch obj {
			case ObjEnergySAW:
				threshP = pruneThreshold(bestCost.Primary)
			case ObjSAWEnergy:
				threshS = pruneThreshold(bestCost.Secondary)
			}
		}
	}
	return bestEnc, bestAux
}

// encodeSlicedEnergySAW is EncodeSliced's hot specialization: nibble
// tables bound, ObjEnergySAW with nonnegative cell energies — the
// memory-controller configuration the paper's encode-latency claim
// rests on. It prices each kernel value as supplied by the source, so
// it serves stored ROMs (whose tables BindFor now amortizes at r=16)
// exactly as it serves per-word generated sets. Instead of the generic
// fill-then-scan structure it runs one lazy pass in kernel order: each
// partition of a kernel is priced on demand (one fused table walk
// yields both orientations' packed counts; the energy
// multiply-accumulate is memoized per count pair in sc.etab) and the
// kernel is abandoned the moment its partial cost plus the remaining
// partitions' aux-cost floor cannot beat the incumbent. Pruned kernels
// therefore never touch their remaining partitions at all, and nothing
// is ever staged in memory.
//
// Bit-identity with EncodeRef: the per-partition decision compares the
// identical c0/c1 float values (same MAC expression shape, term for
// term, same evaluation order) with the SAW tie-break on raw integer
// counts (int -> float64 is monotone and exact in this range, and aux
// Pairs under ObjEnergySAW carry zero Secondary, so the SAW component
// of any candidate sum is exactly float64 of its integer count); the
// kernel total accumulates in the reference's partition order; and the
// incumbent updates on the reference's exact comparison in the
// reference's kernel order. Pruning uses pruneThreshold against a sound
// lower bound of the remaining cost (energies are nonnegative — the
// dispatch guard — and each remaining aux bit costs at least its
// cheaper value), so no kernel that could have updated the incumbent is
// ever skipped. The bound is weaker than the generic path's measured
// per-partition floors, but the prune only has to pay for itself: here
// a successful first-partition cut saves whole candidate evaluations,
// not just table loads.
func (c *VCC) encodeSlicedEnergySAW(d uint64, kernels []uint64, sc *SlicedCtx, s *vccSearch) (uint64, uint64) {
	q := len(kernels)
	mMask := bitutil.Mask(c.m)
	groups := sc.groups
	auxBits := c.AuxBits()
	nb := auxBits - c.p
	etab := &sc.etab

	// Hoisted per-partition state: sub-blocks, flag aux-bit costs, and
	// the suffix floors suff[j] = sum of min aux cost over partitions
	// j..p-1 plus the index-bit floor.
	var djv [maxSlices]uint64
	var a0, a1 [maxSlices]float64
	var suff [maxSlices + 1]float64
	for j := 0; j < c.p; j++ {
		djv[j] = bitutil.SubBlock(d, j, c.m)
		a0[j] = sc.AuxBit(j, 0).Primary
		a1[j] = sc.AuxBit(j, 1).Primary
	}
	useIdxTab := nb <= len(s.idxP[0])
	idxFloorP := 0.0
	for b := 0; b < nb; b++ {
		f0 := sc.AuxBit(c.p+b, 0).Primary
		f1 := sc.AuxBit(c.p+b, 1).Primary
		if useIdxTab {
			s.idxP[0][b], s.idxP[1][b] = f0, f1
		}
		if f1 < f0 {
			f0 = f1
		}
		idxFloorP += f0
	}
	suff[c.p] = idxFloorP
	for j := c.p - 1; j >= 0; j-- {
		af := a0[j]
		if a1[j] < af {
			af = a1[j]
		}
		suff[j] = af + suff[j+1]
	}

	var bestEnc, bestAux uint64
	var bestP float64
	var bestSaw uint64
	var threshP float64
	if c.p == 2 && groups == 4 {
		// The headline geometry (n=32, m=16, MLC plane): both partition
		// evaluations unrolled with every loop-invariant in a register,
		// and the orientation select computed branch-free. The select
		// works on IEEE bit patterns: candidate energies are nonnegative
		// finite floats, for which Float64bits is monotone and injective,
		// so the lexicographic (energy, SAW) comparison and the value
		// select itself run as integer mask algebra — the chosen value is
		// bit-identical to the branchy compare's, with no 50/50 data-
		// dependent branch in the loop body.
		t40 := sc.nibTab[0:64]
		t41 := sc.nibTab[64:128]
		d0, d1 := djv[0], djv[1]
		a00, a10 := a0[0], a1[0]
		a01, a11 := a0[1], a1[1]
		suff1, suff2 := suff[1], suff[2]
		shm := uint(c.m)
		for i := 0; i < q; i++ {
			k := kernels[i]
			y0 := d0 ^ k
			acc := t40[y0&0xF] + t40[16+(y0>>4&0xF)] +
				t40[32+(y0>>8&0xF)] + t40[48+(y0>>12&0xF)]
			acc0 := uint32(acc)
			acc1 := uint32(acc >> 32)
			b0 := math.Float64bits(etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a00)
			b1 := math.Float64bits(etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a10)
			saw0 := uint64(acc0 >> 16)
			saw1 := uint64(acc1 >> 16)
			// w = all-ones iff (c1p, saw1) < (c0p, saw0) lexicographically.
			e := b0 ^ b1
			mNE := uint64(int64(e|(0-e)) >> 63)
			mLT := uint64((int64(b1) - int64(b0)) >> 63)
			w := mLT | (^mNE & uint64((int64(saw1)-int64(saw0))>>63))
			cp := math.Float64frombits(b0 ^ (e & w))
			enc := y0 ^ (mMask & w)
			flags := w & 1
			saw := saw0 ^ ((saw0 ^ saw1) & w)
			if i > 0 && cp+suff1 > threshP {
				continue
			}
			y1 := d1 ^ k
			acc = t41[y1&0xF] + t41[16+(y1>>4&0xF)] +
				t41[32+(y1>>8&0xF)] + t41[48+(y1>>12&0xF)]
			acc0 = uint32(acc)
			acc1 = uint32(acc >> 32)
			b0 = math.Float64bits(etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a01)
			b1 = math.Float64bits(etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a11)
			saw0 = uint64(acc0 >> 16)
			saw1 = uint64(acc1 >> 16)
			e = b0 ^ b1
			mNE = uint64(int64(e|(0-e)) >> 63)
			mLT = uint64((int64(b1) - int64(b0)) >> 63)
			w = mLT | (^mNE & uint64((int64(saw1)-int64(saw0))>>63))
			cp += math.Float64frombits(b0 ^ (e & w))
			enc |= (y1 ^ (mMask & w)) << shm
			flags |= (w & 1) << 1
			saw += saw0 ^ ((saw0 ^ saw1) & w)
			if i > 0 && cp+suff2 > threshP {
				continue
			}
			if useIdxTab {
				for b := 0; b < nb; b++ {
					cp += s.idxP[uint64(i)>>uint(b)&1][b]
				}
			} else {
				for b := c.p; b < auxBits; b++ {
					cp += sc.AuxBit(b, uint64(i)>>uint(b-c.p)&1).Primary
				}
			}
			if i == 0 || cp < bestP || (cp == bestP && saw < bestSaw) {
				bestEnc = enc
				bestAux = uint64(i)<<2 | flags
				bestP, bestSaw = cp, saw
				threshP = pruneThreshold(bestP)
			}
		}
		return bestEnc, bestAux
	}
	if c.p == 4 && groups == 4 {
		// The full-word stored geometry (n=64, m=16 — the engine's
		// default codec, SLC or full-word MLC): all four partition
		// evaluations unrolled with the same branch-free IEEE-bit
		// select as the p=2 plane variant above, loop-invariants
		// (table windows, aux costs, suffix floors) held in registers
		// and a prune check after every partition.
		t40 := sc.nibTab[0:64]
		t41 := sc.nibTab[64:128]
		t42 := sc.nibTab[128:192]
		t43 := sc.nibTab[192:256]
		d0, d1, d2, d3 := djv[0], djv[1], djv[2], djv[3]
		a00, a10 := a0[0], a1[0]
		a01, a11 := a0[1], a1[1]
		a02, a12 := a0[2], a1[2]
		a03, a13 := a0[3], a1[3]
		suff1, suff2, suff3, suff4 := suff[1], suff[2], suff[3], suff[4]
		shm := uint(c.m)
		for i := 0; i < q; i++ {
			k := kernels[i]
			y := d0 ^ k
			acc := t40[y&0xF] + t40[16+(y>>4&0xF)] +
				t40[32+(y>>8&0xF)] + t40[48+(y>>12&0xF)]
			acc0 := uint32(acc)
			acc1 := uint32(acc >> 32)
			b0 := math.Float64bits(etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a00)
			b1 := math.Float64bits(etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a10)
			saw0 := uint64(acc0 >> 16)
			saw1 := uint64(acc1 >> 16)
			e := b0 ^ b1
			mNE := uint64(int64(e|(0-e)) >> 63)
			mLT := uint64((int64(b1) - int64(b0)) >> 63)
			w := mLT | (^mNE & uint64((int64(saw1)-int64(saw0))>>63))
			cp := math.Float64frombits(b0 ^ (e & w))
			enc := y ^ (mMask & w)
			flags := w & 1
			saw := saw0 ^ ((saw0 ^ saw1) & w)
			if i > 0 && cp+suff1 > threshP {
				continue
			}
			y = d1 ^ k
			acc = t41[y&0xF] + t41[16+(y>>4&0xF)] +
				t41[32+(y>>8&0xF)] + t41[48+(y>>12&0xF)]
			acc0 = uint32(acc)
			acc1 = uint32(acc >> 32)
			b0 = math.Float64bits(etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a01)
			b1 = math.Float64bits(etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a11)
			saw0 = uint64(acc0 >> 16)
			saw1 = uint64(acc1 >> 16)
			e = b0 ^ b1
			mNE = uint64(int64(e|(0-e)) >> 63)
			mLT = uint64((int64(b1) - int64(b0)) >> 63)
			w = mLT | (^mNE & uint64((int64(saw1)-int64(saw0))>>63))
			cp += math.Float64frombits(b0 ^ (e & w))
			enc |= (y ^ (mMask & w)) << shm
			flags |= (w & 1) << 1
			saw += saw0 ^ ((saw0 ^ saw1) & w)
			if i > 0 && cp+suff2 > threshP {
				continue
			}
			y = d2 ^ k
			acc = t42[y&0xF] + t42[16+(y>>4&0xF)] +
				t42[32+(y>>8&0xF)] + t42[48+(y>>12&0xF)]
			acc0 = uint32(acc)
			acc1 = uint32(acc >> 32)
			b0 = math.Float64bits(etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a02)
			b1 = math.Float64bits(etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a12)
			saw0 = uint64(acc0 >> 16)
			saw1 = uint64(acc1 >> 16)
			e = b0 ^ b1
			mNE = uint64(int64(e|(0-e)) >> 63)
			mLT = uint64((int64(b1) - int64(b0)) >> 63)
			w = mLT | (^mNE & uint64((int64(saw1)-int64(saw0))>>63))
			cp += math.Float64frombits(b0 ^ (e & w))
			enc |= (y ^ (mMask & w)) << (2 * shm)
			flags |= (w & 1) << 2
			saw += saw0 ^ ((saw0 ^ saw1) & w)
			if i > 0 && cp+suff3 > threshP {
				continue
			}
			y = d3 ^ k
			acc = t43[y&0xF] + t43[16+(y>>4&0xF)] +
				t43[32+(y>>8&0xF)] + t43[48+(y>>12&0xF)]
			acc0 = uint32(acc)
			acc1 = uint32(acc >> 32)
			b0 = math.Float64bits(etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a03)
			b1 = math.Float64bits(etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a13)
			saw0 = uint64(acc0 >> 16)
			saw1 = uint64(acc1 >> 16)
			e = b0 ^ b1
			mNE = uint64(int64(e|(0-e)) >> 63)
			mLT = uint64((int64(b1) - int64(b0)) >> 63)
			w = mLT | (^mNE & uint64((int64(saw1)-int64(saw0))>>63))
			cp += math.Float64frombits(b0 ^ (e & w))
			enc |= (y ^ (mMask & w)) << (3 * shm)
			flags |= (w & 1) << 3
			saw += saw0 ^ ((saw0 ^ saw1) & w)
			if i > 0 && cp+suff4 > threshP {
				continue
			}
			if useIdxTab {
				for b := 0; b < nb; b++ {
					cp += s.idxP[uint64(i)>>uint(b)&1][b]
				}
			} else {
				for b := c.p; b < auxBits; b++ {
					cp += sc.AuxBit(b, uint64(i)>>uint(b-c.p)&1).Primary
				}
			}
			if i == 0 || cp < bestP || (cp == bestP && saw < bestSaw) {
				bestEnc = enc
				bestAux = uint64(i)<<4 | flags
				bestP, bestSaw = cp, saw
				threshP = pruneThreshold(bestP)
			}
		}
		return bestEnc, bestAux
	}
	for i := 0; i < q; i++ {
		k := kernels[i]
		var enc, flags, saw uint64
		var cp float64
		pruned := false
		for j := 0; j < c.p; j++ {
			y0 := djv[j] ^ k
			var acc uint64
			if groups == 4 {
				// The dominant geometry (m=16): four independent loads
				// from a bounds-check-free 64-entry window.
				t4 := sc.nibTab[j*64:][:64]
				acc = t4[y0&0xF] + t4[16+(y0>>4&0xF)] +
					t4[32+(y0>>8&0xF)] + t4[48+(y0>>12&0xF)]
			} else {
				row := sc.nibTab[j*groups*16:]
				v := y0
				for g := 0; g < groups; g++ {
					acc += row[v&0xF]
					row = row[16:]
					v >>= 4
				}
			}
			acc0 := uint32(acc)
			acc1 := uint32(acc >> 32)
			c0p := etab[(acc0&0x3F)|(acc0>>2&0xFC0)] + a0[j]
			c1p := etab[(acc1&0x3F)|(acc1>>2&0xFC0)] + a1[j]
			saw0 := acc0 >> 16
			saw1 := acc1 >> 16
			sh := uint(j * c.m)
			if c1p < c0p || (c1p == c0p && saw1 < saw0) {
				cp += c1p
				enc |= (y0 ^ mMask) << sh
				flags |= uint64(1) << uint(j)
				saw += uint64(saw1)
			} else {
				cp += c0p
				enc |= y0 << sh
				saw += uint64(saw0)
			}
			if i > 0 && cp+suff[j+1] > threshP {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		if useIdxTab {
			for b := 0; b < nb; b++ {
				cp += s.idxP[uint64(i)>>uint(b)&1][b]
			}
		} else {
			for b := c.p; b < auxBits; b++ {
				cp += sc.AuxBit(b, uint64(i)>>uint(b-c.p)&1).Primary
			}
		}
		if i == 0 || cp < bestP || (cp == bestP && saw < bestSaw) {
			bestEnc = enc
			bestAux = uint64(i)<<uint(c.p) | flags
			bestP, bestSaw = cp, saw
			threshP = pruneThreshold(bestP)
		}
	}
	return bestEnc, bestAux
}

// encodeSlicedFlips is the table-free integer specialization for
// ObjFlips — the engine's default objective. Flip counts and aux-bit
// costs are small nonnegative integers whose float64 images are exact,
// and a flips Pair carries zero Secondary, so every comparison the
// reference search makes (orientation select, incumbent update, prune)
// collapses to an integer compare: the specialization reproduces
// EncodeRef decision for decision with no float arithmetic at all. Like
// the energy+SAW scan it prices each kernel value exactly as the source
// supplies it (stored ROM or generated), lazily per partition,
// abandoning a kernel once its partial count plus the remaining
// partitions' aux-cost floor reaches the incumbent — integer counts are
// exact, so >= prunes soundly against the reference's strict-improvement
// rule.
func (c *VCC) encodeSlicedFlips(d uint64, kernels []uint64, sc *SlicedCtx) (uint64, uint64) {
	mMask := bitutil.Mask(c.m)
	auxBits := c.AuxBits()
	var djv [maxSlices]uint64
	var a0, a1 [maxSlices]int
	var suff [maxSlices + 1]int
	for j := 0; j < c.p; j++ {
		djv[j] = bitutil.SubBlock(d, j, c.m)
		a0[j] = int(sc.AuxBit(j, 0).Primary)
		a1[j] = int(sc.AuxBit(j, 1).Primary)
	}
	idxFloor := 0
	for b := c.p; b < auxBits; b++ {
		f0 := int(sc.AuxBit(b, 0).Primary)
		if f1 := int(sc.AuxBit(b, 1).Primary); f1 < f0 {
			f0 = f1
		}
		idxFloor += f0
	}
	suff[c.p] = idxFloor
	for j := c.p - 1; j >= 0; j-- {
		af := a0[j]
		if a1[j] < af {
			af = a1[j]
		}
		suff[j] = af + suff[j+1]
	}
	var bestEnc, bestAux uint64
	best := 0
	for i, k := range kernels {
		var enc, flags uint64
		cost := 0
		pruned := false
		for j := 0; j < c.p; j++ {
			y0 := djv[j] ^ k
			c0 := sc.sliceFlips(j, y0) + a0[j]
			c1 := sc.sliceFlips(j, y0^mMask) + a1[j]
			sh := uint(j * c.m)
			if c1 < c0 {
				cost += c1
				enc |= (y0 ^ mMask) << sh
				flags |= 1 << uint(j)
			} else {
				cost += c0
				enc |= y0 << sh
			}
			if i > 0 && cost+suff[j+1] >= best {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		for b := c.p; b < auxBits; b++ {
			cost += int(sc.AuxBit(b, uint64(i)>>uint(b-c.p)&1).Primary)
		}
		if i == 0 || cost < best {
			bestEnc = enc
			bestAux = uint64(i)<<uint(c.p) | flags
			best = cost
		}
	}
	return bestEnc, bestAux
}

// Decode implements Codec: the inverse is a single XOR/XNOR per
// partition, selected by the stored flags (Section IV-A: "the process of
// decoding is simpler ... and incurs negligible latency overhead").
func (c *VCC) Decode(enc, aux, left uint64) uint64 {
	kernels := c.src.Kernels(left)
	i := aux >> uint(c.p)
	flags := aux & bitutil.Mask(c.p)
	if int(i) >= len(kernels) {
		panic(fmt.Sprintf("coset: VCC kernel index %d out of range", i))
	}
	k := kernels[i]
	mMask := bitutil.Mask(c.m)
	var out uint64
	for j := 0; j < c.p; j++ {
		yj := bitutil.SubBlock(enc, j, c.m)
		kj := k
		if flags>>uint(j)&1 == 1 {
			kj ^= mMask
		}
		out |= (yj ^ kj) << uint(j*c.m)
	}
	return out
}

// DecodeWords implements LineDecoder. Per word the whole partition loop
// of Decode collapses into three XORs against precomputed state:
//
//	out = (enc & Mask(n)) ^ tile(kernel) ^ flagTab[flags]
//
// Bit-identity with Decode is structural, not approximate: Decode
// assembles Sum_j (SubBlock(enc,j,m) ^ k_j) << j*m where k_j is the
// kernel or its m-bit complement per flag bit j. The sub-block
// reassembly of enc is enc & Mask(n); the kernel terms are the kernel
// tiled across all partitions (repMul); and the per-flag complements
// are Mask(m) at each flagged partition — exactly flagTab's entry. XOR
// is bitwise, so regrouping the terms cannot change any bit. Stored
// ROMs read their kernel pre-tiled from storedTiled; generated sources
// produce the single indexed kernel via KernelAt instead of expanding
// all r kernels per word as Decode must.
func (c *VCC) DecodeWords(enc, aux, left, out []uint64) {
	r := c.src.NumKernels()
	nMask := bitutil.Mask(c.n)
	pMask := bitutil.Mask(c.p)
	sh := uint(c.p)
	switch {
	case c.storedTiled != nil:
		for i, a := range aux {
			ki := a >> sh
			if ki >= uint64(r) {
				panic(fmt.Sprintf("coset: VCC kernel index %d out of range", ki))
			}
			out[i] = (enc[i] & nMask) ^ c.storedTiled[ki] ^ c.flagTab[a&pMask]
		}
	case c.kat != nil:
		for i, a := range aux {
			ki := a >> sh
			if ki >= uint64(r) {
				panic(fmt.Sprintf("coset: VCC kernel index %d out of range", ki))
			}
			k := c.kat.KernelAt(left[i], int(ki))
			out[i] = (enc[i] & nMask) ^ k*c.repMul ^ c.flagTab[a&pMask]
		}
	default:
		for i := range aux {
			out[i] = c.Decode(enc[i], aux[i], left[i])
		}
	}
}

// VirtualCoset materializes virtual coset candidate with the given aux
// index for a word whose left plane is left: the full n-bit XOR vector
// the encoder implicitly applied. Exposed for tests and for the analytic
// comparisons against RCC.
func (c *VCC) VirtualCoset(aux, left uint64) uint64 {
	kernels := c.src.Kernels(left)
	i := aux >> uint(c.p)
	flags := aux & bitutil.Mask(c.p)
	k := kernels[i]
	mMask := bitutil.Mask(c.m)
	var v uint64
	for j := 0; j < c.p; j++ {
		kj := k
		if flags>>uint(j)&1 == 1 {
			kj ^= mMask
		}
		v |= kj << uint(j*c.m)
	}
	return v
}
