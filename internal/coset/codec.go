package coset

import "repro/internal/bitutil"

// Codec transforms an n-bit data plane into a code plane chosen to
// minimize the evaluator's objective, producing the auxiliary index
// needed to invert the transform.
//
// Decode receives the stored word's left-digit plane (meaningful only
// for codecs whose kernels are generated from it, per Algorithm 2; all
// other codecs ignore it).
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	// PlaneBits is the plane width n the codec operates on.
	PlaneBits() int
	// AuxBits is the number of auxiliary bits stored per plane.
	AuxBits() int
	// Encode returns the optimal code plane and its auxiliary index.
	Encode(data uint64, ev *Evaluator) (enc, aux uint64)
	// Decode recovers the data plane from the code plane and index.
	Decode(enc, aux, left uint64) uint64
}

// FastCodec is implemented by codecs with a partition-sliced encode fast
// path (see SlicedCtx). EncodeSliced selects exactly the same (enc, aux)
// as Encode, but prices candidates through the caller-owned sliced
// context, letting a memory controller rebind one SlicedCtx across the
// eight words of a line instead of each codec reslicing into private
// scratch — and keeping the write path at zero steady-state heap
// allocations.
type FastCodec interface {
	Codec
	// EncodeSliced is Encode priced through sc (rebound to ev's context
	// internally; any prior binding is overwritten).
	EncodeSliced(data uint64, ev *Evaluator, sc *SlicedCtx) (enc, aux uint64)
}

// LineDecoder is implemented by codecs with a batched decode fast path.
// DecodeWords recovers len(out) data planes in one devirtualized pass:
// out[i] must equal Decode(enc[i], aux[i], left[i]) bit for bit for
// every i (enforced by TestDecodeWordsMatchesDecode and the engine read
// oracles). A memory controller that detects the interface at
// construction decodes a whole cache line with one dynamic dispatch and
// per-word arithmetic precomputed at codec construction, instead of
// eight interface calls that each re-derive kernel state.
type LineDecoder interface {
	Codec
	// DecodeWords decodes enc[i] under aux[i]/left[i] into out[i]. The
	// four slices must have equal length; enc/aux/left may not alias
	// out.
	DecodeWords(enc, aux, left, out []uint64)
}

// bestOf enumerates num candidates (cand(i) must return the full code
// plane for index i) and returns the lexicographically cheapest including
// its aux-write cost. It is the shared engine of the explicit-candidate
// codecs (identity, Flipcy, RCC). Full-plane pricing rides the hoisted
// write context Evaluator.Reset precomputes (plane mask, expanded symbol
// mask, merged-left spread), so RCC's N-candidate sweep no longer
// re-derives those invariants per candidate; it deliberately keeps the
// reference Full/Aux summation (not the sliced tables) because its
// candidates are whole planes with no partition structure to exploit.
func bestOf(num int, auxBits int, cand func(i int) uint64, ev *Evaluator) (uint64, uint64) {
	bestEnc, bestAux := cand(0), uint64(0)
	bestCost := ev.Full(bestEnc).Add(ev.Aux(0, auxBits))
	for i := 1; i < num; i++ {
		c := cand(i)
		cost := ev.Full(c).Add(ev.Aux(uint64(i), auxBits))
		if cost.Less(bestCost) {
			bestEnc, bestAux, bestCost = c, uint64(i), cost
		}
	}
	return bestEnc, bestAux
}

// log2 returns ceil(log2(n)) for n >= 1.
func log2(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// Identity is the unencoded baseline: data is written as-is and no
// auxiliary bits are used.
type Identity struct {
	n int
}

// NewIdentity returns the unencoded codec for n-bit planes.
func NewIdentity(n int) *Identity { return &Identity{n: n} }

// Name implements Codec.
func (c *Identity) Name() string { return "Unencoded" }

// PlaneBits implements Codec.
func (c *Identity) PlaneBits() int { return c.n }

// AuxBits implements Codec.
func (c *Identity) AuxBits() int { return 0 }

// Encode implements Codec.
func (c *Identity) Encode(data uint64, ev *Evaluator) (uint64, uint64) {
	return data & bitutil.Mask(c.n), 0
}

// Decode implements Codec.
func (c *Identity) Decode(enc, aux, left uint64) uint64 {
	return enc & bitutil.Mask(c.n)
}
