package coset

import (
	"fmt"
	"testing"

	"repro/internal/bitutil"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// BenchmarkEncode is the codec x objective x cell-technology encode
// matrix, with fast/ref variants for the sliced-path codecs. Contexts
// rotate through a pre-generated ring so successive iterations see
// fresh-but-reproducible words without timing the PRNG; ReportAllocs
// pins every variant at zero steady-state allocations per encode.
//
// The headline acceptance pair of the fast-path PR is
// Encode/VCC-Gen(16,256)/MLC/energy+saw: fast vs ref must hold >= 2x
// (recorded in BENCH_5.json and README.md by cmd/benchreport).

// benchCtxRing pre-generates write contexts for a configuration.
type benchCtxRing struct {
	ctxs []Ctx
	data []uint64
}

func newBenchCtxRing(n int, mlcPlane, slc bool, seed uint64) *benchCtxRing {
	const ringLen = 256
	rng := prng.New(seed)
	r := &benchCtxRing{
		ctxs: make([]Ctx, ringLen),
		data: make([]uint64, ringLen),
	}
	mode := pcm.MLC
	if slc {
		mode = pcm.SLC
	}
	for i := range r.ctxs {
		stuckSym := rng.Uint64() & rng.Uint64() & rng.Uint64() & bitutil.Mask(32)
		var stuckMask uint64
		if mode == pcm.MLC {
			stuckMask = bitutil.ExpandSymbolMask(stuckSym)
		} else {
			stuckMask = rng.Uint64() & rng.Uint64() & rng.Uint64()
		}
		r.ctxs[i] = Ctx{
			N: n, Mode: mode, MLCPlane: mlcPlane,
			OldWord:   rng.Uint64(),
			NewLeft:   rng.Uint64() & bitutil.Mask(32),
			StuckMask: stuckMask,
			StuckVal:  rng.Uint64() & stuckMask,
			OldAux:    rng.Uint64() & 0xFFFF,
		}
		r.data[i] = rng.Uint64() & bitutil.Mask(n)
	}
	return r
}

// encodeFunc abstracts over the fast and reference entry points.
type encodeFunc func(data uint64, ev *Evaluator) (uint64, uint64)

func benchEncodeLoop(b *testing.B, ring *benchCtxRing, obj Objective, enc encodeFunc) {
	b.Helper()
	ev := NewEvaluator(ring.ctxs[0], obj)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		k := i & (len(ring.ctxs) - 1)
		ev.Reset(ring.ctxs[k], obj)
		e, a := enc(ring.data[k], ev)
		sink ^= e ^ a
	}
	_ = sink
}

func BenchmarkEncode(b *testing.B) {
	type codecCase struct {
		name     string
		codec    Codec
		n        int
		mlcPlane bool
		slcOK    bool // full-word codecs also run on SLC contexts
	}
	cases := []codecCase{
		{"VCC-Stored(64,256,16)", NewVCCStored(64, 16, 256, 1), 64, false, true},
		{"VCC-Gen(16,256)", NewVCCGenerated(16, 256), 32, true, false},
		{"RCC(64,256)", NewRCC(64, 256, 1), 64, false, true},
		{"FNW(64,16)", NewFNW(64, 16), 64, false, true},
		{"Flipcy(64)", NewFlipcy(64), 64, false, true},
	}
	objs := []Objective{ObjFlips, ObjOnes, ObjEnergySAW, ObjSAWEnergy}
	for _, cc := range cases {
		cells := []struct {
			name string
			slc  bool
		}{{"MLC", false}}
		if cc.slcOK {
			cells = append(cells, struct {
				name string
				slc  bool
			}{"SLC", true})
		}
		for _, cell := range cells {
			ring := newBenchCtxRing(cc.n, cc.mlcPlane, cell.slc, 1)
			for _, obj := range objs {
				name := fmt.Sprintf("%s/%s/%v", cc.name, cell.name, obj)
				if fc, ok := cc.codec.(FastCodec); ok {
					var sc SlicedCtx
					b.Run(name+"/fast", func(b *testing.B) {
						benchEncodeLoop(b, ring, obj, func(d uint64, ev *Evaluator) (uint64, uint64) {
							return fc.EncodeSliced(d, ev, &sc)
						})
					})
					b.Run(name+"/ref", func(b *testing.B) {
						benchEncodeLoop(b, ring, obj, refEncodeFunc(cc.codec))
					})
				} else {
					b.Run(name, func(b *testing.B) {
						benchEncodeLoop(b, ring, obj, cc.codec.Encode)
					})
				}
			}
		}
	}
}

// refEncodeFunc returns the retained reference search of a sliced-path
// codec.
func refEncodeFunc(c Codec) encodeFunc {
	switch rc := c.(type) {
	case *VCC:
		return rc.EncodeRef
	case *FNW:
		return rc.EncodeRef
	default:
		return c.Encode
	}
}

// BenchmarkSlicedCtxBind isolates the per-word slicing overhead the
// controller pays before any candidate is priced: the direct variant is
// slicing alone (no tables, the FNW-style bind), the tables variant adds
// nibble-count table construction with the VCC-Gen(16,256) query-volume
// hint — the full per-word rebind cost of the headline encode path.
// ReportAllocs pins both at zero: the tables are fixed arrays owned by
// the SlicedCtx, rebuilt in place on every rebind.
func BenchmarkSlicedCtxBind(b *testing.B) {
	variants := []struct {
		name string
		hint int
	}{
		{"direct", 0},
		{"tables", 2 * 256}, // 2 orientations x r=256 kernel prices per partition
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			ring := newBenchCtxRing(32, true, false, 2)
			ev := NewEvaluator(ring.ctxs[0], ObjEnergySAW)
			var sc SlicedCtx
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i & (len(ring.ctxs) - 1)
				ev.Reset(ring.ctxs[k], ObjEnergySAW)
				if !sc.BindFor(ev, 16, v.hint) {
					b.Fatal("bind failed")
				}
			}
			if v.hint > 0 && !sc.tabOK {
				b.Fatal("tables variant built no tables")
			}
		})
	}
}
