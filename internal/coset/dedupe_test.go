package coset

import (
	"testing"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

// TestStoredKernelClassTablesExact pins the kernel canonicalization
// (vccSearch.dedupe) against brute force, mirroring what
// TestNibbleTableCountsExact does for the count tables: dedupe resolves
// classes through an epoch-tagged open-addressed hash map, the oracle
// here recomputes every relation with O(r^2) scalar scans — a
// deliberately different implementation of the same definition. Kernel
// sets are seeded with exact duplicates and complement pairs at small m
// so hash collisions and both presence orientations occur constantly,
// and the same vccSearch is reused across trials so the lazy epoch
// invalidation (not a fresh map) is what keeps stale classes out.
func TestStoredKernelClassTablesExact(t *testing.T) {
	rng := prng.New(0xC1A55)
	var s vccSearch
	for trial := 0; trial < 300; trial++ {
		m := []int{2, 4, 8, 16}[trial%4]
		mMask := bitutil.Mask(m)
		r := 1 + int(rng.Uint64()%63)
		kernels := make([]uint64, r)
		for i := range kernels {
			switch {
			case i > 0 && rng.Uint64()%4 == 0: // exact duplicate
				kernels[i] = kernels[int(rng.Uint64()%uint64(i))]
			case i > 0 && rng.Uint64()%4 == 0: // complement pair
				kernels[i] = kernels[int(rng.Uint64()%uint64(i))] ^ mMask
			default:
				kernels[i] = rng.Uint64() & mMask
			}
		}
		s.ensure(r, 1)
		q := s.dedupe(kernels, mMask)
		if q < 1 || q > r {
			t.Fatalf("trial %d: q=%d out of range (r=%d)", trial, q, r)
		}
		// Per-kernel relations: class points at the canonical value,
		// comp records the orientation.
		for i, k := range kernels {
			canon, comp := k, false
			if kc := k ^ mMask; kc < k {
				canon, comp = kc, true
			}
			cl := s.class[i]
			if cl < 0 || int(cl) >= q {
				t.Fatalf("trial %d kernel %d: class %d out of range (q=%d)", trial, i, cl, q)
			}
			if s.canon[cl] != canon {
				t.Fatalf("trial %d kernel %#x: canon[class]=%#x, want %#x",
					trial, k, s.canon[cl], canon)
			}
			if s.comp[i] != comp {
				t.Fatalf("trial %d kernel %#x: comp=%v, want %v", trial, k, s.comp[i], comp)
			}
		}
		// Per-class relations: canonical values pairwise distinct, every
		// class inhabited, presence bits exactly the orientations seen.
		for a := 0; a < q; a++ {
			for b := a + 1; b < q; b++ {
				if s.canon[a] == s.canon[b] {
					t.Fatalf("trial %d: classes %d and %d share canon %#x",
						trial, a, b, s.canon[a])
				}
			}
			var pres uint8
			for i := range kernels {
				if int(s.class[i]) == a {
					if s.comp[i] {
						pres |= 2
					} else {
						pres |= 1
					}
				}
			}
			if pres == 0 {
				t.Fatalf("trial %d: class %d has no kernels", trial, a)
			}
			if s.pres[a] != pres {
				t.Fatalf("trial %d class %d: pres=%b, want %b", trial, a, s.pres[a], pres)
			}
		}
	}
}

// TestStoredDedupeCachedOncePerROM pins the static-ROM caching: a
// stored kernel set never changes, so its canonicalization must be
// computed on the first sliced encode and reused — with the class
// tables still describing the ROM exactly — for every later word.
func TestStoredDedupeCachedOncePerROM(t *testing.T) {
	rng := prng.New(0x57A7)
	// A narrow kernel width forces real duplicates into the ROM so the
	// cached q is genuinely smaller than r.
	c := NewVCC(64, NewStoredKernels(32, 4, 11))
	var sc SlicedCtx
	for trial := 0; trial < 20; trial++ {
		ctx := equivCtx(rng, 64, false)
		// ObjSAWEnergy stays on the generic class-table scan (the flips
		// and energy+SAW specializations bypass dedupe entirely).
		ev := NewEvaluator(ctx, ObjSAWEnergy)
		c.EncodeSliced(rng.Uint64(), ev, &sc)
		if !c.fs.staticDone {
			t.Fatal("stored encode left staticDone unset")
		}
	}
	kernels := c.src.Kernels(0)
	mMask := bitutil.Mask(4)
	for i, k := range kernels {
		canon := k
		if kc := k ^ mMask; kc < k {
			canon = kc
		}
		if got := c.fs.canon[c.fs.class[i]]; got != canon {
			t.Fatalf("cached class table: kernel %d canon %#x, want %#x", i, got, canon)
		}
	}
	if c.fs.staticQ >= len(kernels) {
		t.Fatalf("staticQ=%d found no duplicates in a 32-kernel 4-bit ROM", c.fs.staticQ)
	}
}
