package coset

import (
	"testing"

	"repro/internal/prng"
)

func TestCAFORoundTrip(t *testing.T) {
	c := NewCAFO(8, 4)
	rng := prng.New(1)
	for trial := 0; trial < 200; trial++ {
		line := rng.Words(8)
		old := rng.Words(8)
		enc, rf, cf := c.Encode(line, old)
		got := c.Decode(enc, rf, cf)
		for i := range line {
			if got[i] != line[i] {
				t.Fatalf("trial %d word %d: round trip failed", trial, i)
			}
		}
	}
}

func TestCAFONeverWorseThanUnencoded(t *testing.T) {
	c := NewCAFO(8, 4)
	rng := prng.New(2)
	for trial := 0; trial < 300; trial++ {
		line := rng.Words(8)
		old := rng.Words(8)
		base := cafoCost(line, old)
		if got := c.FlipsAgainst(line, old); got > base {
			t.Fatalf("trial %d: CAFO %d flips > unencoded %d", trial, got, base)
		}
	}
}

func TestCAFOFlipsInvertedRow(t *testing.T) {
	c := NewCAFO(4, 4)
	old := []uint64{0, 0, 0, 0}
	line := []uint64{0, ^uint64(0), 0, 0} // row 1 is all-ones
	enc, rf, _ := c.Encode(line, old)
	if rf != 0b0010 {
		t.Errorf("row flips = %04b, want row 1", rf)
	}
	if enc[1] != 0 {
		t.Errorf("row 1 should be stored inverted (all zeros), got %#x", enc[1])
	}
}

func TestCAFOFlipsBadColumn(t *testing.T) {
	c := NewCAFO(8, 4)
	old := make([]uint64, 8)
	line := make([]uint64, 8)
	for i := range line {
		line[i] = 1 << 13 // column 13 set in every row
	}
	enc, _, cf := c.Encode(line, old)
	if cf != 1<<13 {
		t.Errorf("column flips = %#x, want bit 13", cf)
	}
	for i := range enc {
		if enc[i] != 0 {
			t.Errorf("row %d should be all zeros after column flip", i)
		}
	}
}

func TestCAFOBeatsRowOnlyFNWOnStructuredData(t *testing.T) {
	// Data with a hot column (e.g. a sign bit set across all words)
	// over zeroed old contents: row-only FNW cannot remove it without
	// wrecking each row, the column pass can.
	c := NewCAFO(8, 4)
	fnw := NewFNW(64, 16)
	old := make([]uint64, 8)
	line := make([]uint64, 8)
	rng := prng.New(3)
	for i := range line {
		line[i] = 1<<63 | (rng.Uint64() & 0xFF) // sign column + sparse noise
	}
	cafoFlips := c.FlipsAgainst(line, old)
	fnwFlips := 0
	for i := range line {
		ev := NewEvaluator(Ctx{N: 64, OldWord: old[i]}, ObjFlips)
		enc, aux := fnw.Encode(line[i], ev)
		fnwFlips += int(ev.Full(enc).Add(ev.Aux(aux, fnw.AuxBits())).Primary)
	}
	if cafoFlips >= fnwFlips {
		t.Errorf("CAFO %d flips not below FNW %d on column-structured data",
			cafoFlips, fnwFlips)
	}
}

func TestCAFOAuxBits(t *testing.T) {
	if got := NewCAFO(8, 4).AuxBits(); got != 72 {
		t.Errorf("aux bits = %d, want 72", got)
	}
}

func TestCAFOTerminates(t *testing.T) {
	// Even with a generous iteration cap, encode must stop quickly on
	// random data (no oscillation).
	c := NewCAFO(8, 1000)
	rng := prng.New(4)
	line := rng.Words(8)
	old := rng.Words(8)
	enc1, rf1, cf1 := c.Encode(line, old)
	// Idempotence: re-encoding the already-optimal line changes nothing.
	enc2, rf2, cf2 := c.Encode(c.Decode(enc1, rf1, cf1), old)
	for i := range enc1 {
		if enc1[i] != enc2[i] {
			t.Fatal("re-encode differs")
		}
	}
	if rf1 != rf2 || cf1 != cf2 {
		t.Fatal("flip masks differ on re-encode")
	}
}

func TestCAFOPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCAFO(0, 1)
}

func TestCAFOLengthMismatchPanics(t *testing.T) {
	c := NewCAFO(8, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Encode(make([]uint64, 4), make([]uint64, 8))
}

func TestCAFOOnBiasedVsRandomData(t *testing.T) {
	// The motivating contrast: CAFO helps biased data far more than
	// encrypted (random) data.
	c := NewCAFO(8, 4)
	rng := prng.New(5)
	var savedBiased, savedRandom float64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		old := make([]uint64, 8)
		biased := make([]uint64, 8)
		for i := range biased {
			// Negative integers in twos complement: the heavy upper bits
			// are exactly what DBI-style inversion removes.
			biased[i] = 0xFFFFFFFFFFFF0000 | (rng.Uint64() & 0xFFFF)
		}
		random := rng.Words(8)
		savedBiased += 1 - float64(c.FlipsAgainst(biased, old))/
			float64(cafoCost(biased, old)+1)
		savedRandom += 1 - float64(c.FlipsAgainst(random, rng.Words(8)))/
			float64(64*8/2)
	}
	if savedBiased/trials < 2*savedRandom/trials {
		t.Errorf("CAFO biased saving %.2f not >> random saving %.2f",
			savedBiased/trials, savedRandom/trials)
	}
}
