package coset

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/prng"
)

// KernelSource supplies the r m-bit coset kernels VCC composes virtual
// cosets from. Implementations must be deterministic functions of their
// inputs, because the decoder regenerates the same kernels.
type KernelSource interface {
	// Kernels returns the kernel set given the stored word's left-digit
	// plane (in the low 32 bits). Stored-kernel sources ignore it.
	Kernels(left uint64) []uint64
	// NumKernels returns r.
	NumKernels() int
	// KernelBits returns m.
	KernelBits() int
	// Stored reports whether kernels come from a ROM (true) or are
	// generated from the data (false) — the paper's VCC-Stored vs. VCC
	// distinction in Figs. 6 and 7.
	Stored() bool
}

// KernelAtSource is implemented by kernel sources that can produce a
// single kernel by index without materializing the whole set. The
// decode path consumes exactly one kernel per word (the stored index),
// so a generated source answering KernelAt replaces an r-kernel
// expansion per decoded word with one masked shift.
type KernelAtSource interface {
	// KernelAt returns kernel i of the set Kernels(left) would return.
	KernelAt(left uint64, i int) uint64
}

// StoredKernels is a ROM of r random m-bit kernels (the paper's
// "VCC-Stored" variant: slightly better encoding quality, but the kernel
// set is a secret that could in principle leak).
type StoredKernels struct {
	m       int
	kernels []uint64
}

// NewStoredKernels derives r random m-bit kernels from seed.
func NewStoredKernels(r, m int, seed uint64) *StoredKernels {
	if r < 1 {
		panic("coset: need at least one kernel")
	}
	if m < 1 || m > 64 {
		panic(fmt.Sprintf("coset: kernel width %d out of range", m))
	}
	rng := prng.NewFrom(seed, "vcc-kernel-rom")
	ks := make([]uint64, r)
	for i := range ks {
		ks[i] = rng.Uint64() & bitutil.Mask(m)
	}
	return &StoredKernels{m: m, kernels: ks}
}

// Kernels implements KernelSource.
func (s *StoredKernels) Kernels(left uint64) []uint64 { return s.kernels }

// KernelAt implements KernelAtSource.
func (s *StoredKernels) KernelAt(left uint64, i int) uint64 { return s.kernels[i] }

// NumKernels implements KernelSource.
func (s *StoredKernels) NumKernels() int { return len(s.kernels) }

// KernelBits implements KernelSource.
func (s *StoredKernels) KernelBits() int { return s.m }

// Stored implements KernelSource.
func (s *StoredKernels) Stored() bool { return true }

// GeneratedKernels implements the paper's Algorithm 2: kernels are
// derived at run time from the l = 32 left digits of the encrypted data
// block, so nothing secret is stored and the kernel set varies per word.
// The left digits are split into b = l/m base vectors; each of the r/b
// masks (of width 1 + log2(r/b); the extra bit keeps complementary
// patterns out of the set) is tiled across a base vector and XORed in,
// yielding r kernels.
//
// Because encoding leaves the left digits untouched (Section IV-B), the
// decoder regenerates the identical kernel set from the stored word.
type GeneratedKernels struct {
	l, m, b, r int
	maskWidth  int
	// tiled holds the r/b tiled masks, which depend only on the
	// generator geometry — precomputed so the per-word Kernels call is
	// pure XORs of base vectors against them.
	tiled []uint64
	// scratch avoids a per-word allocation; Kernels returns this slice,
	// valid until the next call. lastLeft/warm memoize the left plane
	// the scratch currently expands — the cross-word kernel-expansion
	// cache: consecutive words sharing a left plane (zero fills, memset
	// patterns, rewrites of the same word) reuse the expansion instead
	// of recomputing r XORs. Callers never mutate the returned slice
	// (it is the codec-facing kernel set), so the memo cannot go stale.
	scratch  []uint64
	lastLeft uint64
	warm     bool
}

// NewGeneratedKernels builds an Algorithm 2 generator producing r kernels
// of m bits from an l-bit left-digit plane (l is 32 for 64-bit MLC
// words). Requires m | l and (r / (l/m)) a power of two >= 1.
func NewGeneratedKernels(l, m, r int) *GeneratedKernels {
	if l <= 0 || m <= 0 || l%m != 0 {
		panic(fmt.Sprintf("coset: kernel width m=%d must divide l=%d", m, l))
	}
	b := l / m
	if r < b || r%b != 0 {
		panic(fmt.Sprintf("coset: r=%d must be a multiple of b=%d", r, b))
	}
	perBase := r / b
	if perBase&(perBase-1) != 0 {
		panic(fmt.Sprintf("coset: r/b=%d must be a power of two", perBase))
	}
	g := &GeneratedKernels{
		l: l, m: m, b: b, r: r,
		maskWidth: 1 + log2(perBase),
		tiled:     make([]uint64, perBase),
		scratch:   make([]uint64, r),
	}
	for i := range g.tiled {
		g.tiled[i] = bitutil.TileMask(uint64(i), g.maskWidth, g.m)
	}
	return g
}

// Kernels implements KernelSource. Kernel index k maps to base vector
// k%b and mask k/b, matching Algorithm 2's R_{i*b+j} = M_i XOR base_j.
func (g *GeneratedKernels) Kernels(left uint64) []uint64 {
	if g.warm && left == g.lastLeft {
		return g.scratch
	}
	mk := bitutil.Mask(g.m)
	for i, tiled := range g.tiled {
		rest := left
		for j := 0; j < g.b; j++ {
			g.scratch[i*g.b+j] = (rest & mk) ^ tiled
			rest >>= uint(g.m)
		}
	}
	g.lastLeft, g.warm = left, true
	return g.scratch
}

// KernelAt implements KernelAtSource without touching the scratch set.
func (g *GeneratedKernels) KernelAt(left uint64, i int) uint64 {
	return (left >> (uint(i%g.b) * uint(g.m)) & bitutil.Mask(g.m)) ^ g.tiled[i/g.b]
}

// NumKernels implements KernelSource.
func (g *GeneratedKernels) NumKernels() int { return g.r }

// KernelBits implements KernelSource.
func (g *GeneratedKernels) KernelBits() int { return g.m }

// Stored implements KernelSource.
func (g *GeneratedKernels) Stored() bool { return false }

// HybridKernels wraps another source and prepends the all-zeros kernel.
// With the zero kernel, each partition's choice degenerates to
// {identity, inversion} — i.e. Flip-N-Write — so the hybrid set serves
// both biased (unencrypted) and random (encrypted) data, the extension
// sketched in the paper's Section VII.
type HybridKernels struct {
	inner   KernelSource
	scratch []uint64
}

// WithHybridKernels adds the biased (zero) kernel to src.
func WithHybridKernels(src KernelSource) *HybridKernels {
	return &HybridKernels{inner: src,
		scratch: make([]uint64, src.NumKernels()+1)}
}

// Kernels implements KernelSource.
func (h *HybridKernels) Kernels(left uint64) []uint64 {
	h.scratch[0] = 0
	copy(h.scratch[1:], h.inner.Kernels(left))
	return h.scratch
}

// KernelAt implements KernelAtSource: index 0 is the zero kernel, the
// rest shift down onto the wrapped source.
func (h *HybridKernels) KernelAt(left uint64, i int) uint64 {
	if i == 0 {
		return 0
	}
	if ka, ok := h.inner.(KernelAtSource); ok {
		return ka.KernelAt(left, i-1)
	}
	return h.inner.Kernels(left)[i-1]
}

// NumKernels implements KernelSource.
func (h *HybridKernels) NumKernels() int { return h.inner.NumKernels() + 1 }

// KernelBits implements KernelSource.
func (h *HybridKernels) KernelBits() int { return h.inner.KernelBits() }

// Stored implements KernelSource.
func (h *HybridKernels) Stored() bool { return h.inner.Stored() }
