// Package trace produces synthetic last-level-cache writeback traces
// standing in for the SPEC CPU 2017 memory-intensive subset the paper
// captures with a full-system simulator (substitution #1 in DESIGN.md).
//
// What must be faithful for the paper's experiments to be meaningful:
//
//   - Every write is encrypted before encoding, so the *content* of the
//     writebacks is irrelevant post-AES — any plaintext distribution
//     yields uniformly random ciphertext. The generators still produce
//     benchmark-flavoured plaintext (integers, floats, pointers, text) so
//     the encryption stage is exercised with realistic inputs and so
//     unencrypted ablations show the bias that coset baselines exploit.
//   - The *address* stream determines how wear and faults concentrate,
//     which drives the per-benchmark differences in Figs. 9-11. Each
//     benchmark is parameterized by its write footprint, a Zipf skew
//     (hot-line concentration) and a streaming/strided fraction,
//     qualitatively matching the categories in Panda et al.'s SPEC 2017
//     characterization (memory-bound streaming FP codes vs.
//     pointer-chasing integer codes).
package trace

import (
	"fmt"

	"repro/internal/prng"
	"repro/internal/workload"
)

// LineBytes is the writeback granularity: one 512-bit cache line.
const LineBytes = 64

// Record is one LLC writeback: a cache-line address (line index, not
// byte address) and the 64-byte plaintext being evicted.
type Record struct {
	Line uint64
	Data [LineBytes]byte
}

// DataKind selects the plaintext value distribution.
type DataKind int

const (
	// KindInt: small signed integers in 64-bit slots (twos complement,
	// heavy 0x00/0xFF upper bytes).
	KindInt DataKind = iota
	// KindFloat: float64-like patterns with clustered exponents.
	KindFloat
	// KindPointer: 8-byte aligned addresses sharing a heap base.
	KindPointer
	// KindSparse: mostly zero bytes with occasional values.
	KindSparse
	// KindRandom: uniformly random bytes (already-compressed or
	// media-like content).
	KindRandom
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	// Name is the SPECspeed 2017 benchmark the parameters imitate.
	Name string
	// Lines is the write footprint in distinct cache lines; the driver
	// maps it onto the simulated memory size (modulo).
	Lines int
	// ZipfS is the Zipf skew (>1; higher = hotter hot set) for the
	// random-access fraction.
	ZipfS float64
	// StreamFrac is the fraction of writes issued by a sequential
	// streaming cursor rather than the Zipf sampler.
	StreamFrac float64
	// Kind selects the plaintext generator.
	Kind DataKind
	// WriteIntensity is the relative writeback rate (writebacks per
	// kilo-instruction, scaled); the performance model uses it to weight
	// encoder latency (Fig. 13).
	WriteIntensity float64
	// ReadFrac is the fraction of memory accesses that are reads in the
	// mixed op stream (NextOp). Parameterized from the read/write mixes
	// of Panda et al.'s SPEC 2017 characterization; the write-only
	// stream (Next) ignores it, so all writeback-driven experiments are
	// unaffected.
	ReadFrac float64
}

// Benchmarks returns the synthetic stand-ins for the paper's benchmark
// set: the most memory-intensive SPECspeed 2017 Integer and Floating
// Point members per Panda et al. [28]. Parameters are qualitative: FP
// streaming codes get large footprints and high stream fractions,
// pointer/integer codes get skewed reuse.
func Benchmarks() []Spec {
	return []Spec{
		{Name: "bwaves_s", Lines: 1 << 16, ZipfS: 1.1, StreamFrac: 0.80, Kind: KindFloat, WriteIntensity: 18.6, ReadFrac: 0.62},
		{Name: "cactuBSSN_s", Lines: 1 << 15, ZipfS: 1.2, StreamFrac: 0.60, Kind: KindFloat, WriteIntensity: 12.9, ReadFrac: 0.66},
		{Name: "fotonik3d_s", Lines: 1 << 16, ZipfS: 1.1, StreamFrac: 0.75, Kind: KindFloat, WriteIntensity: 16.3, ReadFrac: 0.64},
		{Name: "gcc_s", Lines: 1 << 14, ZipfS: 1.5, StreamFrac: 0.20, Kind: KindPointer, WriteIntensity: 6.4, ReadFrac: 0.74},
		{Name: "lbm_s", Lines: 1 << 16, ZipfS: 1.05, StreamFrac: 0.90, Kind: KindFloat, WriteIntensity: 21.4, ReadFrac: 0.55},
		{Name: "mcf_s", Lines: 1 << 14, ZipfS: 1.6, StreamFrac: 0.15, Kind: KindPointer, WriteIntensity: 9.8, ReadFrac: 0.72},
		{Name: "omnetpp_s", Lines: 1 << 13, ZipfS: 1.7, StreamFrac: 0.10, Kind: KindPointer, WriteIntensity: 7.1, ReadFrac: 0.76},
		{Name: "pop2_s", Lines: 1 << 15, ZipfS: 1.2, StreamFrac: 0.55, Kind: KindFloat, WriteIntensity: 10.5, ReadFrac: 0.68},
		{Name: "roms_s", Lines: 1 << 16, ZipfS: 1.1, StreamFrac: 0.70, Kind: KindFloat, WriteIntensity: 14.7, ReadFrac: 0.65},
		{Name: "wrf_s", Lines: 1 << 15, ZipfS: 1.3, StreamFrac: 0.50, Kind: KindFloat, WriteIntensity: 11.2, ReadFrac: 0.69},
		{Name: "x264_s", Lines: 1 << 14, ZipfS: 1.3, StreamFrac: 0.40, Kind: KindRandom, WriteIntensity: 8.3, ReadFrac: 0.71},
		{Name: "xalancbmk_s", Lines: 1 << 13, ZipfS: 1.6, StreamFrac: 0.15, Kind: KindInt, WriteIntensity: 6.9, ReadFrac: 0.78},
	}
}

// SpecByName looks a benchmark up; it returns an error listing the valid
// names on a miss.
func SpecByName(name string) (Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Generator produces an endless stream of writeback records for one
// Spec, deterministically from its seed. Address generation is
// delegated to internal/workload: the spec's StreamFrac/ZipfS pair
// becomes a workload.Mixture of a sequential stream and a Zipf hot set,
// driven by the same PRNG streams this package has always used, so the
// historical address sequences are preserved bit for bit.
type Generator struct {
	spec Spec
	rng  *prng.Rand
	mix  *workload.Mixture
	// rwRng drives the read/write split of NextOp. It is a dedicated
	// stream so the write-only Next sequence is untouched by ReadFrac.
	rwRng *prng.Rand
	// pointer-kind state: a stable "heap base" per generator.
	heapBase uint64
}

// NewGenerator builds a generator for spec with the given seed.
func NewGenerator(spec Spec, seed uint64) *Generator {
	if spec.Lines <= 0 {
		panic("trace: spec needs a positive footprint")
	}
	rng := prng.NewFrom(seed, "trace:"+spec.Name)
	src := prng.NewFrom(seed, "trace-zipf:"+spec.Name)
	mix := workload.NewMixture(
		workload.Arm{Frac: spec.StreamFrac, Pattern: workload.NewSequential(spec.Lines)},
		workload.Arm{Frac: 1 - spec.StreamFrac, Pattern: workload.NewZipfHot(spec.Lines, spec.ZipfS, src)},
	)
	return &Generator{
		spec:     spec,
		rng:      rng,
		mix:      mix,
		rwRng:    prng.NewFrom(seed, "trace-rw:"+spec.Name),
		heapBase: rng.Uint64() &^ 0x7,
	}
}

// Spec returns the generator's parameters.
func (g *Generator) Spec() Spec { return g.spec }

// Next fills rec with the next writeback (the write-only stream every
// paper experiment replays).
func (g *Generator) Next(rec *Record) {
	rec.Line = g.mix.NextLine(g.rng)
	g.fillData(rec)
}

// NextOp fills rec with the next memory access of the mixed op stream
// and reports whether it is a read (drawn at the spec's ReadFrac).
// Reads carry the address only; rec.Data is left untouched. Addresses
// come from the same pattern mixture Next walks (with ReadFrac == 0 the
// two streams are identical).
func (g *Generator) NextOp(rec *Record) (read bool) {
	read = g.rwRng.Float64() < g.spec.ReadFrac
	rec.Line = g.mix.NextLine(g.rng)
	if !read {
		g.fillData(rec)
	}
	return read
}

func (g *Generator) fillData(rec *Record) {
	switch g.spec.Kind {
	case KindInt:
		for i := 0; i < LineBytes; i += 8 {
			v := int64(g.rng.Uint64n(1 << 16)) // small magnitudes
			if g.rng.Float64() < 0.3 {
				v = -v
			}
			putU64(rec.Data[i:], uint64(v))
		}
	case KindFloat:
		for i := 0; i < LineBytes; i += 8 {
			// float64 bit pattern with a clustered exponent (values
			// around 1e0..1e3) and random mantissa.
			exp := uint64(1023 + g.rng.Intn(10))
			mant := g.rng.Uint64() & ((1 << 52) - 1)
			putU64(rec.Data[i:], exp<<52|mant)
		}
	case KindPointer:
		for i := 0; i < LineBytes; i += 8 {
			if g.rng.Float64() < 0.2 {
				putU64(rec.Data[i:], 0) // nil pointers
				continue
			}
			off := g.rng.Uint64n(1<<28) &^ 0x7
			putU64(rec.Data[i:], g.heapBase+off)
		}
	case KindSparse:
		rec.Data = [LineBytes]byte{}
		for k := 0; k < 4; k++ {
			rec.Data[g.rng.Intn(LineBytes)] = byte(g.rng.Uint64())
		}
	case KindRandom:
		g.rng.Fill(rec.Data[:])
	default:
		panic(fmt.Sprintf("trace: unknown data kind %d", g.spec.Kind))
	}
}

func putU64(b []byte, v uint64) {
	for k := 0; k < 8; k++ {
		b[k] = byte(v >> uint(8*k))
	}
}
