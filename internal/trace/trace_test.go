package trace

import (
	"bytes"
	"math"
	"testing"
)

func TestBenchmarksWellFormed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) < 10 {
		t.Fatalf("only %d benchmarks; paper evaluates a dozen", len(bs))
	}
	seen := map[string]bool{}
	for _, s := range bs {
		if s.Name == "" || seen[s.Name] {
			t.Errorf("bad or duplicate name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Lines <= 0 || s.ZipfS <= 1 || s.StreamFrac < 0 || s.StreamFrac > 1 {
			t.Errorf("%s: implausible parameters %+v", s.Name, s)
		}
		if s.WriteIntensity <= 0 {
			t.Errorf("%s: write intensity must be positive", s.Name)
		}
	}
}

func TestSpecByName(t *testing.T) {
	if _, err := SpecByName("lbm_s"); err != nil {
		t.Errorf("lbm_s lookup failed: %v", err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("bogus name should error")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec, _ := SpecByName("mcf_s")
	a := NewGenerator(spec, 1)
	b := NewGenerator(spec, 1)
	var ra, rb Record
	for i := 0; i < 500; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if ra.Line != rb.Line || ra.Data != rb.Data {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	spec, _ := SpecByName("mcf_s")
	a := NewGenerator(spec, 1)
	b := NewGenerator(spec, 2)
	var ra, rb Record
	diff := false
	for i := 0; i < 100; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if ra.Line != rb.Line {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds gave identical address streams")
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, spec := range Benchmarks() {
		g := NewGenerator(spec, 3)
		var r Record
		for i := 0; i < 2000; i++ {
			g.Next(&r)
			if r.Line >= uint64(spec.Lines) {
				t.Fatalf("%s: address %d outside footprint %d",
					spec.Name, r.Line, spec.Lines)
			}
		}
	}
}

// TestSkewedBenchmarksConcentrateWrites: a high-Zipf pointer-chasing
// benchmark should concentrate writes on fewer lines than a streaming
// one over equal sample counts.
func TestSkewedBenchmarksConcentrateWrites(t *testing.T) {
	lbm, _ := SpecByName("lbm_s")       // streaming
	omnet, _ := SpecByName("omnetpp_s") // skewed
	distinct := func(spec Spec) int {
		g := NewGenerator(spec, 4)
		var r Record
		seen := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			g.Next(&r)
			seen[r.Line] = true
		}
		return len(seen)
	}
	dl, do := distinct(lbm), distinct(omnet)
	if do >= dl {
		t.Errorf("omnetpp distinct lines %d >= lbm %d; skew not modeled", do, dl)
	}
}

// TestPlaintextBias: integer-like plaintext must be biased toward zero
// bits (the property encryption destroys), random-kind near balanced.
func TestPlaintextBias(t *testing.T) {
	onesFrac := func(name string) float64 {
		spec, _ := SpecByName(name)
		g := NewGenerator(spec, 5)
		var r Record
		ones, total := 0, 0
		for i := 0; i < 500; i++ {
			g.Next(&r)
			for _, b := range r.Data {
				for k := 0; k < 8; k++ {
					if b>>uint(k)&1 == 1 {
						ones++
					}
					total++
				}
			}
		}
		return float64(ones) / float64(total)
	}
	if f := onesFrac("xalancbmk_s"); f > 0.35 {
		t.Errorf("integer plaintext ones fraction %v, want biased low", f)
	}
	if f := onesFrac("x264_s"); math.Abs(f-0.5) > 0.02 {
		t.Errorf("random plaintext ones fraction %v, want ~0.5", f)
	}
}

func TestAllDataKindsProduceOutput(t *testing.T) {
	for kind := KindInt; kind <= KindRandom; kind++ {
		spec := Spec{Name: "k", Lines: 64, ZipfS: 1.2, Kind: kind,
			WriteIntensity: 1}
		g := NewGenerator(spec, 6)
		var r Record
		for i := 0; i < 10; i++ {
			g.Next(&r)
		}
	}
}

func TestStreamFractionAdvancesSequentially(t *testing.T) {
	spec := Spec{Name: "s", Lines: 1000, ZipfS: 1.2, StreamFrac: 1.0,
		Kind: KindRandom, WriteIntensity: 1}
	g := NewGenerator(spec, 7)
	var r Record
	g.Next(&r)
	prev := r.Line
	for i := 0; i < 50; i++ {
		g.Next(&r)
		if r.Line != (prev+1)%1000 {
			t.Fatalf("stream not sequential: %d -> %d", prev, r.Line)
		}
		prev = r.Line
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	spec, _ := SpecByName("gcc_s")
	recs := Collect(NewGenerator(spec, 8), 200)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Line != recs[i].Line || got[i].Data != recs[i].Data {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	_ = WriteTrace(&buf, nil)
	b := buf.Bytes()
	b[0] ^= 0xFF
	if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestGeneratorPanicsOnEmptyFootprint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGenerator(Spec{Name: "bad"}, 1)
}

func TestNextOpMixedStream(t *testing.T) {
	spec, _ := SpecByName("mcf_s") // ReadFrac 0.72
	a := NewGenerator(spec, 3)
	b := NewGenerator(spec, 3)
	var ra, rb Record
	reads := 0
	const n = 5000
	for i := 0; i < n; i++ {
		readA := a.NextOp(&ra)
		readB := b.NextOp(&rb)
		if ra.Line != rb.Line || readA != readB {
			t.Fatalf("mixed streams diverged at %d", i)
		}
		if !readA && ra.Data != rb.Data {
			t.Fatalf("write data diverged at %d", i)
		}
		if ra.Line >= uint64(spec.Lines) {
			t.Fatalf("op %d: line %d outside footprint %d", i, ra.Line, spec.Lines)
		}
		if readA {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < spec.ReadFrac-0.03 || frac > spec.ReadFrac+0.03 {
		t.Errorf("observed read fraction %.3f, spec says %.2f", frac, spec.ReadFrac)
	}
}

// TestNextOpZeroReadFracMatchesNext: with ReadFrac zeroed, the mixed
// stream degenerates to exactly the write-only stream — the guarantee
// that lets trace specs gain a read fraction without forking the
// address/data logic.
func TestNextOpZeroReadFracMatchesNext(t *testing.T) {
	spec, _ := SpecByName("lbm_s")
	spec.ReadFrac = 0
	a := NewGenerator(spec, 9)
	b := NewGenerator(spec, 9)
	var ra, rb Record
	for i := 0; i < 1000; i++ {
		a.Next(&ra)
		if read := b.NextOp(&rb); read {
			t.Fatalf("op %d: read at ReadFrac 0", i)
		}
		if ra.Line != rb.Line || ra.Data != rb.Data {
			t.Fatalf("op %d: NextOp diverges from Next at ReadFrac 0", i)
		}
	}
}

func TestBenchmarksHaveReadFractions(t *testing.T) {
	for _, s := range Benchmarks() {
		if s.ReadFrac <= 0 || s.ReadFrac >= 1 {
			t.Errorf("%s: ReadFrac %v outside (0,1)", s.Name, s.ReadFrac)
		}
	}
}
