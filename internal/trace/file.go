package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format: a small binary container so generated traces can be saved
// by cmd/tracegen and replayed byte-identically.
//
//	magic  [4]byte  "VCCT"
//	version uint32  (1)
//	count  uint64   number of records
//	records: line uint64, data [64]byte
var fileMagic = [4]byte{'V', 'C', 'C', 'T'}

const fileVersion = 1

// WriteTrace serializes records to w.
func WriteTrace(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("trace: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(fileVersion)); err != nil {
		return fmt.Errorf("trace: write version: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(records))); err != nil {
		return fmt.Errorf("trace: write count: %w", err)
	}
	for i := range records {
		if err := binary.Write(bw, binary.LittleEndian, records[i].Line); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
		if _, err := bw.Write(records[i].Data[:]); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: not a VCC trace file")
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: read count: %w", err)
	}
	const maxRecords = 1 << 28 // refuse absurd headers
	if count > maxRecords {
		return nil, fmt.Errorf("trace: record count %d too large", count)
	}
	records := make([]Record, count)
	for i := range records {
		if err := binary.Read(br, binary.LittleEndian, &records[i].Line); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, records[i].Data[:]); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
	}
	return records, nil
}

// Collect draws n records from g.
func Collect(g *Generator, n int) []Record {
	out := make([]Record, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}
