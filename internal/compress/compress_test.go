package compress

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestClassifyKnownPatterns(t *testing.T) {
	cases := []struct {
		w    uint64
		want Pattern
	}{
		{0, Zero},
		{0xFFFFFFFFFFFFFFFF, RepByte}, // -1 matches repbyte before sext8
		{0x7F, Sext8},
		{0xFFFFFFFFFFFFFF80, RepByte&0 + Sext8}, // -128: sign-extended byte
		{0x7FFF, Sext16},
		{0xFFFFFFFFFFFF8000, Sext16},
		{0x7FFFFFFF, Sext32},
		{0xFFFFFFFF80000000, Sext32},
		{0x1234567812345678, HalfRep},
		{0xDEADBEEFCAFEF00D, Uncompressed},
		{0x4242424242424242, RepByte},
	}
	for _, c := range cases {
		if got := Classify(c.w); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(w uint64) bool {
		p, payload := Encode(w)
		return Decode(p, payload) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// And the special values.
	for _, w := range []uint64{0, 1, ^uint64(0), 0x80, 0xFFFFFFFFFFFFFF80,
		0x1234567812345678, 42} {
		p, payload := Encode(w)
		if Decode(p, payload) != w {
			t.Errorf("round trip failed for %#x (pattern %v)", w, p)
		}
	}
}

func TestCompressedBits(t *testing.T) {
	if got := CompressedBits(0); got != TagBits {
		t.Errorf("zero word = %d bits", got)
	}
	if got := CompressedBits(0xDEADBEEFCAFEF00D); got != TagBits+64 {
		t.Errorf("raw word = %d bits", got)
	}
	if got := CompressedBits(42); got != TagBits+8 {
		t.Errorf("small int = %d bits", got)
	}
}

func TestSlackNeverNegative(t *testing.T) {
	f := func(w uint64) bool { return Slack(w) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Incompressible words get zero slack even though tag+64 > 64.
	if Slack(0xDEADBEEFCAFEF00D) != 0 {
		t.Error("raw word should have no slack")
	}
}

func TestCanHostAux(t *testing.T) {
	if !CanHostAux(0, 8) {
		t.Error("zero word has 61 bits of slack")
	}
	if CanHostAux(0xDEADBEEFCAFEF00D, 1) {
		t.Error("incompressible word cannot host aux")
	}
	// sext32: slack = 64-35 = 29 >= 8.
	if !CanHostAux(0x7FFFFFFF, 8) {
		t.Error("sext32 should host 8 aux bits")
	}
}

// TestCiphertextIncompressible is the punchline: random (encrypted)
// words essentially never have slack, which is why the paper stores aux
// bits in the ECC spare region rather than inline.
func TestCiphertextIncompressible(t *testing.T) {
	rng := prng.New(1)
	words := rng.Words(100_000)
	s := Analyze(words, 8)
	frac := float64(s.AuxEligible) / float64(s.Words)
	if frac > 1e-3 {
		t.Errorf("%.4f%% of random words can host aux; should be ~0", 100*frac)
	}
}

func TestBiasedDataCompressible(t *testing.T) {
	// Small integers (typical unencrypted workload content).
	var words []uint64
	for i := 0; i < 1000; i++ {
		words = append(words, uint64(i%256))
	}
	s := Analyze(words, 8)
	if s.AuxEligible < 900 {
		t.Errorf("only %d/1000 small-int words aux-eligible", s.AuxEligible)
	}
	if s.TotalSlack == 0 {
		t.Error("no slack found in biased data")
	}
}

func TestAnalyzeCounts(t *testing.T) {
	s := Analyze([]uint64{0, 0xDEADBEEFCAFEF00D}, 8)
	if s.Words != 2 || s.Compressible != 1 || s.AuxEligible != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPatternString(t *testing.T) {
	for p := Zero; p <= Uncompressed; p++ {
		if p.String() == "" {
			t.Errorf("pattern %d has no name", p)
		}
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern should print")
	}
}

func TestDecodePanicsOnBadPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Decode(Pattern(99), 0)
}

func TestIsSextBoundaries(t *testing.T) {
	if !isSext(0xFFFFFFFFFFFFFFFF, 8) {
		t.Error("-1 is sign-extendable from 8 bits")
	}
	if isSext(0x100, 8) {
		t.Error("0x100 is not an 8-bit value")
	}
	if !isSext(0x80, 16) {
		t.Error("0x80 sign-extends from 16 bits")
	}
}
