// Package compress implements a frequent-pattern word compressor in the
// style used by restricted coset coding (Seyedzadeh et al., HPCA 2018 —
// the paper's reference [38]): lightweight compression opens a few bits
// of slack inside each 64-bit word, enough to store the coset auxiliary
// index inline instead of in dedicated spare cells.
//
// The catch — and the reason the VCC paper stores auxiliary bits in the
// ECC spare region instead — is encryption: AES-CTR ciphertext is
// incompressible, so inline aux space is essentially never available on
// the encrypted path. The ablate-compress experiment quantifies exactly
// that: biased plaintext words compress readily; the same words after
// encryption almost never do.
package compress

import "fmt"

// Pattern tags, ordered from most to least compact.
type Pattern uint8

const (
	// Zero: the whole word is zero.
	Zero Pattern = iota
	// RepByte: all eight bytes equal.
	RepByte
	// Sext8: the word is a sign-extended 8-bit integer.
	Sext8
	// Sext16: sign-extended 16-bit integer.
	Sext16
	// Sext32: sign-extended 32-bit integer.
	Sext32
	// HalfRep: upper 32 bits equal lower 32 bits.
	HalfRep
	// Uncompressed: no pattern matched.
	Uncompressed
)

// TagBits is the per-word pattern tag width (7 patterns fit in 3 bits).
const TagBits = 3

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Zero:
		return "zero"
	case RepByte:
		return "repbyte"
	case Sext8:
		return "sext8"
	case Sext16:
		return "sext16"
	case Sext32:
		return "sext32"
	case HalfRep:
		return "halfrep"
	case Uncompressed:
		return "raw"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// payloadBits per pattern.
var payloadBits = map[Pattern]int{
	Zero: 0, RepByte: 8, Sext8: 8, Sext16: 16, Sext32: 32,
	HalfRep: 32, Uncompressed: 64,
}

// Classify returns the most compact pattern matching w.
func Classify(w uint64) Pattern {
	switch {
	case w == 0:
		return Zero
	case isRepByte(w):
		return RepByte
	case isSext(w, 8):
		return Sext8
	case isSext(w, 16):
		return Sext16
	case isSext(w, 32):
		return Sext32
	case w>>32 == w&0xFFFFFFFF:
		return HalfRep
	default:
		return Uncompressed
	}
}

func isRepByte(w uint64) bool {
	b := w & 0xFF
	return w == b*0x0101010101010101
}

// isSext reports whether w is the two's-complement sign extension of its
// low k bits.
func isSext(w uint64, k int) bool {
	shifted := int64(w) << uint(64-k) >> uint(64-k)
	return uint64(shifted) == w
}

// CompressedBits returns the encoded size of w in bits (tag + payload).
func CompressedBits(w uint64) int {
	return TagBits + payloadBits[Classify(w)]
}

// Slack returns how many bits compression frees inside the 64-bit slot
// (0 for incompressible words).
func Slack(w uint64) int {
	s := 64 - CompressedBits(w)
	if s < 0 {
		return 0
	}
	return s
}

// CanHostAux reports whether the word's slack can hold auxBits of coset
// index inline — the restricted-coset-coding eligibility test.
func CanHostAux(w uint64, auxBits int) bool { return Slack(w) >= auxBits }

// Encode packs w into (pattern, payload). Decode inverts it. Together
// they prove the classification is information-preserving (payload is
// the minimal field the pattern implies).
func Encode(w uint64) (Pattern, uint64) {
	p := Classify(w)
	switch p {
	case Zero:
		return p, 0
	case RepByte, Sext8:
		return p, w & 0xFF
	case Sext16:
		return p, w & 0xFFFF
	case Sext32, HalfRep:
		return p, w & 0xFFFFFFFF
	default:
		return p, w
	}
}

// Decode reconstructs the word from (pattern, payload).
func Decode(p Pattern, payload uint64) uint64 {
	switch p {
	case Zero:
		return 0
	case RepByte:
		return (payload & 0xFF) * 0x0101010101010101
	case Sext8:
		return uint64(int64(payload<<56) >> 56)
	case Sext16:
		return uint64(int64(payload<<48) >> 48)
	case Sext32:
		return uint64(int64(payload<<32) >> 32)
	case HalfRep:
		lo := payload & 0xFFFFFFFF
		return lo<<32 | lo
	case Uncompressed:
		return payload
	default:
		panic(fmt.Sprintf("compress: bad pattern %d", p))
	}
}

// LineStats summarizes compressibility of a sequence of words.
type LineStats struct {
	Words        int
	Compressible int // words with any slack
	AuxEligible  int // words whose slack fits the given aux width
	TotalSlack   int // bits
}

// Analyze scans words for slack against auxBits.
func Analyze(words []uint64, auxBits int) LineStats {
	var s LineStats
	s.Words = len(words)
	for _, w := range words {
		sl := Slack(w)
		s.TotalSlack += sl
		if sl > 0 {
			s.Compressible++
		}
		if sl >= auxBits {
			s.AuxEligible++
		}
	}
	return s
}
