package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	vcc "repro"
)

// TestConcurrentTenantsReconcile hammers one server with N clients
// across M tenants and requires exact accounting: per-tenant op
// totals match what the clients issued, and the summed per-tenant
// engine deltas reconcile with the engine-wide counters. Run under
// -race this is also the server's data-race certification. The
// engine is uncached so every op reaches the controller (cache
// write-back would defer device work past per-ticket attribution).
func TestConcurrentTenantsReconcile(t *testing.T) {
	const (
		tenants    = 3
		perTenant  = 3 // clients per tenant
		requests   = 25
		batchSize  = 8
		totalLines = 768
	)
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:  totalLines,
		Shards: 4,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	srv, addr := startServer(t, Config{Mem: mem, Tenants: tenants})

	type tally struct{ writes, reads int64 }
	tallies := make([]tally, tenants)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, tenants*perTenant)
	for c := 0; c < tenants*perTenant; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := c % tenants
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			lines, err := cl.Hello(tenant)
			if err != nil {
				errs <- err
				return
			}
			var writes, reads int64
			ops := make([]BatchOp, batchSize)
			data := make([]byte, batchSize*LineSize)
			var res []BatchResult
			for r := 0; r < requests; r++ {
				for i := range ops {
					line := uint64((c*1000 + r*batchSize + i*37) % int(lines))
					if (r+i)%2 == 0 {
						buf := data[i*LineSize : (i+1)*LineSize]
						buf[0] = byte(c)
						ops[i] = BatchOp{Kind: BatchWrite, Line: line, Data: buf}
						writes++
					} else {
						ops[i] = BatchOp{Kind: BatchRead, Line: line}
						reads++
					}
				}
				if res, err = cl.Batch(ops, res); err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", c, r, err)
					return
				}
			}
			mu.Lock()
			tallies[tenant].writes += writes
			tallies[tenant].reads += reads
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var sumOps, sumWrites, sumReads int64
	for tn := 0; tn < tenants; tn++ {
		st, err := srv.TenantStats(tn)
		if err != nil {
			t.Fatal(err)
		}
		wantOps := tallies[tn].writes + tallies[tn].reads
		if st.Ops != wantOps {
			t.Errorf("tenant %d: %d ops accounted, clients issued %d", tn, st.Ops, wantOps)
		}
		if st.LineWrites != tallies[tn].writes {
			t.Errorf("tenant %d: %d line writes accounted, clients issued %d", tn, st.LineWrites, tallies[tn].writes)
		}
		if st.LineReads != tallies[tn].reads {
			t.Errorf("tenant %d: %d line reads accounted, clients issued %d", tn, st.LineReads, tallies[tn].reads)
		}
		sumOps += st.Ops
		sumWrites += st.LineWrites
		sumReads += st.LineReads
	}
	es := mem.Stats()
	if sumWrites != es.LineWrites || sumReads != es.LineReads {
		t.Errorf("summed tenant stats (w=%d r=%d) do not reconcile with engine counters (w=%d r=%d)",
			sumWrites, sumReads, es.LineWrites, es.LineReads)
	}
	if want := int64(tenants * perTenant * requests * batchSize); sumOps != want {
		t.Errorf("summed ops = %d, want %d", sumOps, want)
	}
}

// TestCloseGivesTypedShutdownError verifies the shutdown contract:
// requests racing Close complete or get StatusShutdown, and requests
// after Close always get the typed error on a live connection — no
// hang, no panic, no dropped connection.
func TestCloseGivesTypedShutdownError(t *testing.T) {
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{Lines: 128, Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	srv, addr := startServer(t, Config{Mem: mem})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Hello(0); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, LineSize)
	if _, err := cl.Write(1, data); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The connection survives Close; data verbs get the typed error.
	for i := 0; i < 3; i++ {
		_, err := cl.Write(2, data)
		var se *StatusError
		if !errors.As(err, &se) || se.Status != StatusShutdown {
			t.Fatalf("post-Close write %d: err = %v, want StatusShutdown", i, err)
		}
		if _, err := cl.Read(1, nil); !errors.As(err, &se) || se.Status != StatusShutdown {
			t.Fatalf("post-Close read %d: err = %v, want StatusShutdown", i, err)
		}
	}
	// Stats still answer (the accounting is server-side state).
	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("post-Close stats: %v", err)
	}
	if st.Ops != 1 || st.LineWrites != 1 {
		t.Fatalf("post-Close stats = %+v, want the one pre-Close write", st)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseRacesInFlight closes the server while clients are mid-burst
// and requires every response to be either OK or typed shutdown.
func TestCloseRacesInFlight(t *testing.T) {
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{Lines: 512, Shards: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	srv, addr := startServer(t, Config{Mem: mem, Tenants: 2})

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			if _, err := cl.Hello(c % 2); err != nil {
				errs <- err
				return
			}
			data := make([]byte, LineSize)
			for i := 0; i < 500; i++ {
				_, err := cl.Write(uint64(i%256), data)
				if err == nil {
					continue
				}
				var se *StatusError
				if errors.As(err, &se) && se.Status == StatusShutdown {
					continue // expected once Close lands
				}
				errs <- fmt.Errorf("client %d op %d: %v", c, i, err)
				return
			}
		}(c)
	}
	srv.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
