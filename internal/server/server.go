package server

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	vcc "repro"
	"repro/internal/memctrl"
	"repro/internal/shard"

	"bufio"
)

// Config assembles a Server over an existing engine.
type Config struct {
	// Mem is the engine to serve. The server does not own it: Close
	// stops serving but leaves the memory open for the caller.
	Mem *vcc.ShardedMemory
	// Tenants partitions the line address space into this many equal
	// disjoint slices (tenant t owns global lines
	// [t*Lines/Tenants, (t+1)*Lines/Tenants)). 0 defaults to 1.
	Tenants int
	// MaxBatchOps bounds ops per VerbBatch frame; 0 defaults to
	// DefaultMaxBatchOps.
	MaxBatchOps int
	// Window is the per-connection in-flight request bound: how many
	// parsed requests may sit between the connection's reader and the
	// engine's completion callbacks before the reader stops pulling
	// frames. 0 defaults to 64.
	Window int
	// MaxInflightOps bounds engine ops in flight across all connections.
	// A data request that would exceed it is shed with StatusBusy before
	// touching the engine — graceful degradation instead of unbounded
	// queueing. 0 disables admission control.
	MaxInflightOps int
	// WriteTimeout bounds each response frame write. A client too slow
	// to drain its responses has its connection closed, reclaiming the
	// Window slots its requests occupy. 0 disables the deadline.
	WriteTimeout time.Duration
	// IdleTimeout bounds the wait for the next request frame on an
	// idle connection. 0 (the default) keeps connections open forever.
	IdleTimeout time.Duration
}

// tenantCounter accumulates one tenant's TenantStats under its own
// lock, fed exclusively by per-submission engine deltas
// (Session.SubmitFuncStats), so tenants never contend with each other
// and VerbStats snapshots are exact without freezing the engine.
type tenantCounter struct {
	mu sync.Mutex
	st TenantStats
}

// Server is a multi-tenant line-store service over a vcc.ShardedMemory.
// One Server may serve any number of listeners (Serve) plus the HTTP
// debug front (HTTPHandler) concurrently; all request paths funnel
// through the same validate → submit → account pipeline.
type Server struct {
	mem      *vcc.ShardedMemory
	sess     *vcc.Session
	tenants  int
	linesPer int
	maxBatch int
	window   int

	maxInflightOps int64
	inflightOps    atomic.Int64 // engine ops admitted but not yet completed
	shed           atomic.Int64 // requests refused with StatusBusy
	deviceErrors   atomic.Int64 // requests answered with StatusDeviceError

	writeTimeout time.Duration
	idleTimeout  time.Duration

	tstats []tenantCounter

	// mu pairs request admission against Close, exactly like the
	// engine's qmu: a request that passes the down check holds the read
	// lock while joining inflight, so Close's inflight.Wait covers it.
	mu       sync.RWMutex
	down     bool
	inflight sync.WaitGroup

	lmu       sync.Mutex
	listeners map[net.Listener]struct{}

	cmu      sync.Mutex
	stopped  bool
	conns    map[net.Conn]struct{}
	handlers sync.WaitGroup
}

// errShutdown is the internal sentinel for requests refused by Close.
var errShutdown = errors.New("server: shutting down")

// New builds a Server over cfg.Mem. Every tenant must own at least one
// line.
func New(cfg Config) (*Server, error) {
	if cfg.Mem == nil {
		return nil, errors.New("server: Config.Mem is required")
	}
	tenants := cfg.Tenants
	if tenants == 0 {
		tenants = 1
	}
	if tenants < 0 {
		return nil, fmt.Errorf("server: %d tenants", tenants)
	}
	linesPer := cfg.Mem.Lines() / tenants
	if linesPer == 0 {
		return nil, fmt.Errorf("server: %d lines cannot host %d tenants", cfg.Mem.Lines(), tenants)
	}
	maxBatch := cfg.MaxBatchOps
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatchOps
	}
	window := cfg.Window
	if window == 0 {
		window = 64
	}
	return &Server{
		mem:            cfg.Mem,
		sess:           cfg.Mem.Session(),
		tenants:        tenants,
		linesPer:       linesPer,
		maxBatch:       maxBatch,
		window:         window,
		maxInflightOps: int64(cfg.MaxInflightOps),
		writeTimeout:   cfg.WriteTimeout,
		idleTimeout:    cfg.IdleTimeout,
		tstats:         make([]tenantCounter, tenants),
		listeners:      make(map[net.Listener]struct{}),
		conns:          make(map[net.Conn]struct{}),
	}, nil
}

// ShedRequests returns how many data requests admission control has
// refused with StatusBusy.
func (s *Server) ShedRequests() int64 { return s.shed.Load() }

// DeviceErrorResponses returns how many data requests were answered
// with StatusDeviceError.
func (s *Server) DeviceErrorResponses() int64 { return s.deviceErrors.Load() }

// Tenants returns the tenant count.
func (s *Server) Tenants() int { return s.tenants }

// TenantLines returns the slice size every tenant owns, in lines.
func (s *Server) TenantLines() int { return s.linesPer }

// TenantStats returns tenant t's accumulated statistics snapshot.
func (s *Server) TenantStats(t int) (TenantStats, error) {
	if t < 0 || t >= s.tenants {
		return TenantStats{}, fmt.Errorf("server: tenant %d out of range [0,%d)", t, s.tenants)
	}
	tc := &s.tstats[t]
	tc.mu.Lock()
	st := tc.st
	tc.mu.Unlock()
	return st, nil
}

// account folds one completed submission's engine delta into tenant
// t's counter. ops is the op count of the submission.
func (s *Server) account(t, ops int, d memctrl.Stats) {
	tc := &s.tstats[t]
	tc.mu.Lock()
	tc.st.Ops += int64(ops)
	tc.st.LineWrites += d.LineWrites
	tc.st.LineReads += d.LineReads
	tc.st.SAWCells += d.SAWCells
	tc.st.BitFlips += d.BitFlips
	tc.st.CellChanges += d.CellChanges
	tc.st.CacheHits += d.CacheHits
	tc.st.CacheMisses += d.CacheMisses
	tc.st.EnergyPJ += d.EnergyPJ
	tc.mu.Unlock()
}

// admit joins the in-flight request group unless the server is
// shutting down.
func (s *Server) admit() error {
	s.mu.RLock()
	if s.down {
		s.mu.RUnlock()
		return errShutdown
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	return nil
}

// Serve accepts connections on l until the listener fails or the
// server is closed (which closes l). It always returns a nil error
// after Close; pass one listener per Serve goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.lmu.Lock()
	s.listeners[l] = struct{}{}
	s.lmu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.RLock()
			down := s.down
			s.mu.RUnlock()
			if down {
				return nil
			}
			return err
		}
		s.cmu.Lock()
		if s.stopped {
			s.cmu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.handlers.Add(1)
		s.cmu.Unlock()
		go s.handleConn(nc)
	}
}

// Close stops admitting engine work and waits for every in-flight
// request to complete: listeners close, but live connections stay up
// and answer subsequent data verbs with StatusShutdown (a typed
// response, not a dropped connection). The underlying memory is not
// closed — it belongs to the caller. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	already := s.down
	s.down = true
	s.mu.Unlock()
	if already {
		return nil
	}
	s.lmu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	s.lmu.Unlock()
	s.inflight.Wait()
	return nil
}

// Stop is Close plus connection teardown: every live connection is
// closed and all handler goroutines are joined before it returns.
func (s *Server) Stop() error {
	s.Close()
	s.cmu.Lock()
	s.stopped = true
	for nc := range s.conns {
		nc.Close()
	}
	s.cmu.Unlock()
	s.handlers.Wait()
	return nil
}

// slot is one in-flight request's buffers. A connection owns Window
// slots cycling reader → engine → writer → reader; the request buffer
// may be aliased by in-flight write ops and the response buffer by
// in-flight read destinations, so a slot is only recycled after its
// response hits the wire.
type slot struct {
	req  []byte
	resp []byte
	ops  []shard.Op
	out  []shard.Outcome
	// sawOff[i] is the response offset of op i's uint32 SAW count
	// (write ops; -1 for reads), filled by the completion callback.
	sawOff []int
	// ready fires when resp is complete (buffered: the engine callback
	// never blocks on it).
	ready chan struct{}
}

// connState is the per-connection tenant binding.
type connState struct {
	tenant int
	base   int
}

// handleConn runs one connection: a reader goroutine (this one)
// parses frames and bridges data verbs straight onto the engine's
// issue queues via Session.SubmitFuncStats — no goroutine per request
// — while a writer goroutine streams responses back in request order.
func (s *Server) handleConn(nc net.Conn) {
	defer s.handlers.Done()
	defer func() {
		s.cmu.Lock()
		delete(s.conns, nc)
		s.cmu.Unlock()
	}()

	sess := s.mem.Session()
	free := make(chan *slot, s.window)
	for i := 0; i < s.window; i++ {
		free <- &slot{ready: make(chan struct{}, 1)}
	}
	pending := make(chan *slot, s.window)

	bw := bufio.NewWriter(nc)
	var broken bool // writer-side: wire failed, drain without writing
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for sl := range pending {
			<-sl.ready
			if !broken {
				if s.writeTimeout > 0 {
					nc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
				}
				if err := writeFrame(bw, sl.resp); err != nil {
					broken = true
					nc.Close() // unblock the reader, reclaim its slots
				} else if len(pending) == 0 {
					if err := bw.Flush(); err != nil {
						broken = true
						nc.Close()
					}
				}
			}
			free <- sl
		}
		if !broken {
			bw.Flush()
		}
	}()

	br := bufio.NewReader(nc)
	cs := &connState{tenant: -1}
	for {
		sl := <-free
		if s.idleTimeout > 0 {
			nc.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		payload, err := readFrame(br, sl.req)
		if err != nil {
			if errors.Is(err, errFrameTooLarge) {
				// The frame cannot be skipped, so this farewell is the
				// connection's last response.
				s.respondError(sl, 0, StatusTooLarge, "frame exceeds MaxFrame")
				pending <- sl
			} else {
				free <- sl
			}
			break
		}
		sl.req = payload
		s.handle(cs, sess, sl)
		pending <- sl
	}

	// Everything this connection submitted completes (callbacks
	// included) before the response queue closes, so the writer sees
	// every response.
	sess.Drain()
	close(pending)
	wwg.Wait()
	nc.Close()
}

// respondOK sizes sl.resp for an OK response with a body of n bytes
// and returns the body slice; the caller fills it (or aliases read
// destinations into it) and signals ready when done.
func (sl *slot) respondOK(id uint32, n int) []byte {
	need := reqHeaderLen + n
	if cap(sl.resp) < need {
		sl.resp = make([]byte, need)
	}
	sl.resp = sl.resp[:need]
	sl.resp[0] = StatusOK
	binary.BigEndian.PutUint32(sl.resp[1:5], id)
	return sl.resp[reqHeaderLen:]
}

// respondError builds a typed error response and marks the slot ready.
func (s *Server) respondError(sl *slot, id uint32, status byte, msg string) {
	sl.resp = append(sl.resp[:0], status)
	sl.resp = binary.BigEndian.AppendUint32(sl.resp, id)
	sl.resp = append(sl.resp, msg...)
	sl.ready <- struct{}{}
}

// handle parses one request frame and either completes it
// synchronously (hello, stats, flush, every error) or submits its ops
// to the engine with a completion callback that finishes the response.
// It never blocks on the engine beyond queue backpressure.
func (s *Server) handle(cs *connState, sess *vcc.Session, sl *slot) {
	p := sl.req
	if len(p) < reqHeaderLen {
		s.respondError(sl, 0, StatusMalformed, "short request header")
		return
	}
	verb, id, body := p[0], binary.BigEndian.Uint32(p[1:5]), p[reqHeaderLen:]

	switch verb {
	case VerbHello:
		if len(body) != 4 {
			s.respondError(sl, id, StatusMalformed, "hello body must be a uint32 tenant")
			return
		}
		t := int(binary.BigEndian.Uint32(body))
		if cs.tenant >= 0 {
			s.respondError(sl, id, StatusBadTenant,
				fmt.Sprintf("connection already bound to tenant %d", cs.tenant))
			return
		}
		if t >= s.tenants {
			s.respondError(sl, id, StatusBadTenant,
				fmt.Sprintf("tenant %d out of range [0,%d)", t, s.tenants))
			return
		}
		cs.tenant = t
		cs.base = t * s.linesPer
		out := sl.respondOK(id, 8)
		binary.BigEndian.PutUint64(out, uint64(s.linesPer))
		sl.ready <- struct{}{}

	case VerbStats:
		if cs.tenant < 0 {
			s.respondError(sl, id, StatusNoTenant, "stats before hello")
			return
		}
		st, _ := s.TenantStats(cs.tenant)
		out := sl.respondOK(id, tenantStatsWireLen)
		st.AppendBinary(out[:0])
		sl.ready <- struct{}{}

	case VerbFlush:
		if len(body) != 0 {
			s.respondError(sl, id, StatusMalformed, "flush takes no body")
			return
		}
		if err := s.admit(); err != nil {
			s.respondError(sl, id, StatusShutdown, err.Error())
			return
		}
		// Blocking the reader is the point: the flush barrier covers
		// everything this connection submitted before it.
		s.mem.Flush()
		s.inflight.Done()
		sl.respondOK(id, 0)
		sl.ready <- struct{}{}

	case VerbWrite, VerbRead, VerbBatch:
		if cs.tenant < 0 {
			s.respondError(sl, id, StatusNoTenant, "data verb before hello")
			return
		}
		s.handleData(cs, sess, sl, verb, id, body)

	default:
		s.respondError(sl, id, StatusUnknownVerb,
			fmt.Sprintf("unknown verb %d", verb))
	}
}

// handleData parses a write/read/batch body into the slot's op slice,
// lays out the OK response (read destinations alias it), and submits.
func (s *Server) handleData(cs *connState, sess *vcc.Session, sl *slot, verb byte, id uint32, body []byte) {
	sl.ops = sl.ops[:0]
	sl.sawOff = sl.sawOff[:0]

	// Parse into (kind, tenant-relative line, write payload) triples
	// and compute the response body size.
	respLen := 0
	switch verb {
	case VerbWrite:
		if len(body) != 8+LineSize {
			s.respondError(sl, id, StatusMalformed,
				fmt.Sprintf("write body is %d bytes, want %d", len(body), 8+LineSize))
			return
		}
		line := binary.BigEndian.Uint64(body)
		if line >= uint64(s.linesPer) {
			s.respondError(sl, id, StatusRange, s.rangeMsg(cs.tenant, line))
			return
		}
		sl.ops = append(sl.ops, shard.Op{Kind: shard.OpWrite, Line: cs.base + int(line), Data: body[8 : 8+LineSize]})
		sl.sawOff = append(sl.sawOff, reqHeaderLen)
		respLen = 4
	case VerbRead:
		if len(body) != 8 {
			s.respondError(sl, id, StatusMalformed,
				fmt.Sprintf("read body is %d bytes, want 8", len(body)))
			return
		}
		line := binary.BigEndian.Uint64(body)
		if line >= uint64(s.linesPer) {
			s.respondError(sl, id, StatusRange, s.rangeMsg(cs.tenant, line))
			return
		}
		sl.ops = append(sl.ops, shard.Op{Kind: shard.OpRead, Line: cs.base + int(line)})
		sl.sawOff = append(sl.sawOff, -1)
		respLen = LineSize
	case VerbBatch:
		if len(body) < 4 {
			s.respondError(sl, id, StatusMalformed, "batch body shorter than its count")
			return
		}
		count := int(binary.BigEndian.Uint32(body))
		if count > s.maxBatch {
			s.respondError(sl, id, StatusTooLarge,
				fmt.Sprintf("batch of %d ops exceeds the %d-op bound", count, s.maxBatch))
			return
		}
		respLen = 4
		off := 4
		for i := 0; i < count; i++ {
			if off >= len(body) {
				s.respondError(sl, id, StatusMalformed,
					fmt.Sprintf("batch truncated at op %d", i))
				return
			}
			kind := body[off]
			off++
			if off+8 > len(body) {
				s.respondError(sl, id, StatusMalformed,
					fmt.Sprintf("batch truncated at op %d", i))
				return
			}
			line := binary.BigEndian.Uint64(body[off:])
			off += 8
			if line >= uint64(s.linesPer) {
				s.respondError(sl, id, StatusRange, s.rangeMsg(cs.tenant, line))
				return
			}
			switch kind {
			case BatchWrite:
				if off+LineSize > len(body) {
					s.respondError(sl, id, StatusMalformed,
						fmt.Sprintf("batch truncated at op %d", i))
					return
				}
				sl.ops = append(sl.ops, shard.Op{Kind: shard.OpWrite, Line: cs.base + int(line), Data: body[off : off+LineSize]})
				off += LineSize
				respLen += 1 + 4
			case BatchRead:
				sl.ops = append(sl.ops, shard.Op{Kind: shard.OpRead, Line: cs.base + int(line)})
				respLen += 1 + LineSize
			default:
				s.respondError(sl, id, StatusMalformed,
					fmt.Sprintf("batch op %d has unknown kind %d", i, kind))
				return
			}
		}
		if off != len(body) {
			s.respondError(sl, id, StatusMalformed,
				fmt.Sprintf("batch has %d trailing bytes", len(body)-off))
			return
		}
	}

	// Lay out the response and alias read destinations into it, then
	// record where each write's SAW count lands.
	out := sl.respondOK(id, respLen)
	if verb == VerbBatch {
		binary.BigEndian.PutUint32(out, uint32(len(sl.ops)))
		off := 4
		sl.sawOff = sl.sawOff[:0]
		for i := range sl.ops {
			if sl.ops[i].Kind == shard.OpWrite {
				out[off] = BatchWrite
				sl.sawOff = append(sl.sawOff, reqHeaderLen+off+1)
				off += 1 + 4
			} else {
				out[off] = BatchRead
				sl.ops[i].Data = out[off+1 : off+1+LineSize]
				sl.sawOff = append(sl.sawOff, -1)
				off += 1 + LineSize
			}
		}
	} else if verb == VerbRead {
		sl.ops[0].Data = out[:LineSize]
	}

	if err := s.admit(); err != nil {
		s.respondError(sl, id, StatusShutdown, err.Error())
		return
	}
	tenant, nops := cs.tenant, len(sl.ops)
	// Admission control: shed instead of queueing once the engine-wide
	// op budget is spent. Nothing was submitted, so the tenant is not
	// charged and the client may retry after a backoff.
	if s.maxInflightOps > 0 && s.inflightOps.Add(int64(nops)) > s.maxInflightOps {
		s.inflightOps.Add(int64(-nops))
		s.inflight.Done()
		s.shed.Add(1)
		s.respondError(sl, id, StatusBusy,
			fmt.Sprintf("in-flight op budget (%d) exhausted", s.maxInflightOps))
		return
	}
	if cap(sl.out) < nops {
		sl.out = make([]shard.Outcome, nops)
	}
	err := sess.SubmitFuncStats(sl.ops, sl.out[:nops], func(out []shard.Outcome, d memctrl.Stats, err error) {
		// Runs on an engine drainer goroutine; must not block. ready is
		// buffered and the tenant counter is only held for the fold.
		if s.maxInflightOps > 0 {
			s.inflightOps.Add(int64(-nops))
		}
		if err != nil {
			s.respondError(sl, id, StatusShutdown, err.Error())
			s.inflight.Done()
			return
		}
		var opErr error
		failed := 0
		for i := range out[:nops] {
			if out[i].Err != nil {
				failed++
				if opErr == nil {
					opErr = out[i].Err
				}
			}
		}
		if opErr != nil {
			// The engine did the work (and possibly left corrupted
			// cells), so the tenant is charged exactly as on success —
			// reconciliation counts every admitted op once.
			s.account(tenant, nops, d)
			s.deviceErrors.Add(1)
			s.respondError(sl, id, StatusDeviceError,
				fmt.Sprintf("%d/%d ops failed: %v", failed, nops, opErr))
		} else {
			for i, off := range sl.sawOff {
				if off >= 0 {
					binary.BigEndian.PutUint32(sl.resp[off:], uint32(out[i].SAWCells))
				}
			}
			s.account(tenant, nops, d)
			sl.ready <- struct{}{}
		}
		s.inflight.Done()
	})
	if err != nil {
		// Submission itself failed (engine closed under us): the
		// callback never fires.
		if s.maxInflightOps > 0 {
			s.inflightOps.Add(int64(-nops))
		}
		s.inflight.Done()
		status := byte(StatusMalformed)
		if errors.Is(err, vcc.ErrClosed) {
			status = StatusShutdown
		}
		s.respondError(sl, id, status, err.Error())
	}
}

// rangeMsg formats the one StatusRange message.
func (s *Server) rangeMsg(tenant int, line uint64) string {
	return fmt.Sprintf("line %d outside tenant %d's %d-line slice", line, tenant, s.linesPer)
}

// do runs ops synchronously through the shared server session with
// tenant accounting — the HTTP front's bridge onto the same engine
// path the TCP verbs use.
func (s *Server) do(tenant int, ops []shard.Op, out []shard.Outcome) error {
	if err := s.admit(); err != nil {
		return err
	}
	done := make(chan error, 1)
	err := s.sess.SubmitFuncStats(ops, out, func(o []shard.Outcome, d memctrl.Stats, err error) {
		if err == nil {
			s.account(tenant, len(ops), d)
			for i := range o {
				if o[i].Err != nil {
					err = o[i].Err
					s.deviceErrors.Add(1)
					break
				}
			}
		}
		done <- err
		s.inflight.Done()
	})
	if err != nil {
		s.inflight.Done()
		return err
	}
	return <-done
}

// httpError writes a JSON error with the closest wire status mnemonic.
func httpError(w http.ResponseWriter, code int, status byte, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{
		"error":  StatusName(status),
		"detail": msg,
	})
}

// httpTenantLine parses and validates ?tenant= and (optionally)
// ?line= query parameters.
func (s *Server) httpTenantLine(w http.ResponseWriter, r *http.Request, needLine bool) (tenant int, line uint64, ok bool) {
	t, err := strconv.Atoi(r.URL.Query().Get("tenant"))
	if err != nil || t < 0 || t >= s.tenants {
		httpError(w, http.StatusBadRequest, StatusBadTenant,
			fmt.Sprintf("tenant must be in [0,%d)", s.tenants))
		return 0, 0, false
	}
	if !needLine {
		return t, 0, true
	}
	line, err = strconv.ParseUint(r.URL.Query().Get("line"), 10, 64)
	if err != nil || line >= uint64(s.linesPer) {
		httpError(w, http.StatusBadRequest, StatusRange, s.rangeMsg(t, line))
		return 0, 0, false
	}
	return t, line, true
}

// HTTPHandler returns the thin JSON debug front over the same engine
// path: GET /v1/stats?tenant=N, GET /v1/line?tenant=N&line=M,
// PUT /v1/line?tenant=N&line=M with {"data":"<128 hex chars>"}, and
// GET /healthz. It is for inspection and smoke tests, not throughput —
// the binary TCP protocol is the data plane.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		tenant, _, ok := s.httpTenantLine(w, r, false)
		if !ok {
			return
		}
		st, _ := s.TenantStats(tenant)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/v1/line", func(w http.ResponseWriter, r *http.Request) {
		tenant, line, ok := s.httpTenantLine(w, r, true)
		if !ok {
			return
		}
		base := tenant * s.linesPer
		switch r.Method {
		case http.MethodGet:
			var buf [LineSize]byte
			ops := []shard.Op{{Kind: shard.OpRead, Line: base + int(line), Data: buf[:]}}
			out := make([]shard.Outcome, 1)
			if err := s.do(tenant, ops, out); err != nil {
				if memctrl.IsTransient(err) {
					httpError(w, http.StatusInternalServerError, StatusDeviceError, err.Error())
				} else {
					httpError(w, http.StatusServiceUnavailable, StatusShutdown, err.Error())
				}
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"line": line,
				"data": hex.EncodeToString(out[0].Data),
			})
		case http.MethodPut, http.MethodPost:
			var req struct {
				Data string `json:"data"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, StatusMalformed, err.Error())
				return
			}
			data, err := hex.DecodeString(req.Data)
			if err != nil || len(data) != LineSize {
				httpError(w, http.StatusBadRequest, StatusMalformed,
					fmt.Sprintf("data must be %d hex-encoded bytes", LineSize))
				return
			}
			ops := []shard.Op{{Kind: shard.OpWrite, Line: base + int(line), Data: data}}
			out := make([]shard.Outcome, 1)
			if err := s.do(tenant, ops, out); err != nil {
				if memctrl.IsTransient(err) {
					httpError(w, http.StatusInternalServerError, StatusDeviceError, err.Error())
				} else {
					httpError(w, http.StatusServiceUnavailable, StatusShutdown, err.Error())
				}
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"line": line,
				"saw":  out[0].SAWCells,
			})
		default:
			httpError(w, http.StatusMethodNotAllowed, StatusUnknownVerb, "use GET or PUT")
		}
	})
	return mux
}
