package server

import (
	"time"

	"repro/internal/prng"
)

// Backoff computes capped exponential delays with deterministic
// jitter: attempt n draws uniformly from [d/2, d) where
// d = min(Base<<n, Max). The half-width jitter window desynchronizes
// retry herds while keeping every delay within 2x of its neighbors;
// seeding makes schedules reproducible in tests and campaigns. Not
// safe for concurrent use — give each client its own Backoff.
type Backoff struct {
	base, max time.Duration
	rng       *prng.Rand
}

// NewBackoff builds a jittered exponential backoff. base defaults to
// 1ms, max to 200ms; max is raised to base when smaller.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if max <= 0 {
		max = 200 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, rng: prng.NewFrom(seed, "client-backoff")}
}

// Delay returns the jittered delay for retry attempt n (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	half := d / 2
	return half + time.Duration(b.rng.Float64()*float64(half))
}
