package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"

	vcc "repro"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_wire.txt from the live server")

// goldenConfig is the fixed engine the golden bytes were recorded
// against; any change to it (or to the wire format) is a protocol
// change and must re-record with -update.
func goldenConfig(t *testing.T) *vcc.ShardedMemory {
	t.Helper()
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:  256,
		Shards: 2,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// startServer serves one in-process listener and returns its address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Stop() })
	return srv, l.Addr().String()
}

// goldenRequest builds one request payload.
func goldenRequest(verb byte, id uint32, body []byte) []byte {
	p := []byte{verb}
	p = binary.BigEndian.AppendUint32(p, id)
	return append(p, body...)
}

// goldenLine fills a deterministic 64-byte plaintext.
func goldenLine(tag byte) []byte {
	data := make([]byte, LineSize)
	for i := range data {
		data[i] = tag + byte(i)*3
	}
	return data
}

// goldenScript is the recorded request sequence: every verb plus
// every error class, in an order that exercises the unbound state
// first. Replayed on a single connection, so responses are
// deterministic byte-for-byte given the fixed goldenConfig.
func goldenScript() []struct {
	name string
	req  []byte
} {
	be64 := binary.BigEndian.AppendUint64
	wbody := func(line uint64, tag byte) []byte { return append(be64(nil, line), goldenLine(tag)...) }
	batch := func() []byte {
		b := binary.BigEndian.AppendUint32(nil, 4)
		b = append(b, BatchWrite)
		b = be64(b, 1)
		b = append(b, goldenLine(0x40)...)
		b = append(b, BatchRead)
		b = be64(b, 3)
		b = append(b, BatchRead)
		b = be64(b, 1)
		b = append(b, BatchWrite)
		b = be64(b, 5)
		b = append(b, goldenLine(0x90)...)
		return b
	}
	return []struct {
		name string
		req  []byte
	}{
		{"short-header", []byte{VerbRead, 0, 0}},
		{"unknown-verb", goldenRequest(99, 1, nil)},
		{"read-before-hello", goldenRequest(VerbRead, 2, be64(nil, 3))},
		{"hello-bad-tenant", goldenRequest(VerbHello, 3, []byte{0, 0, 0, 9})},
		{"hello-malformed", goldenRequest(VerbHello, 4, []byte{0, 1})},
		{"hello", goldenRequest(VerbHello, 5, []byte{0, 0, 0, 0})},
		{"hello-rebind", goldenRequest(VerbHello, 6, []byte{0, 0, 0, 1})},
		{"write", goldenRequest(VerbWrite, 7, wbody(3, 0x10))},
		{"read", goldenRequest(VerbRead, 8, be64(nil, 3))},
		{"batch", goldenRequest(VerbBatch, 9, batch())},
		{"write-out-of-range", goldenRequest(VerbWrite, 10, wbody(128, 0x20))},
		{"write-malformed", goldenRequest(VerbWrite, 11, be64(nil, 3))},
		{"batch-too-large", goldenRequest(VerbBatch, 12, binary.BigEndian.AppendUint32(nil, 9))},
		{"stats", goldenRequest(VerbStats, 13, nil)},
		{"flush", goldenRequest(VerbFlush, 14, nil)},
	}
}

// goldenDegradedConfig is goldenConfig under deterministic failure:
// chaos at rate 1 fails every engine op even after the backend's
// retries, and a 2-op in-flight budget sheds any larger batch. Both
// degradations are timing-independent on a single synchronous
// connection, so their responses are recordable byte-for-byte.
func goldenDegradedConfig(t *testing.T) *vcc.ShardedMemory {
	t.Helper()
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:  256,
		Shards: 2,
		Seed:   7,
		Chaos:  &vcc.ChaosSpec{ReadErrRate: 1, WriteErrRate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// goldenDegradedScript records the resilience statuses: device-error
// responses for failing ops and a busy response for a shed batch.
func goldenDegradedScript() []struct {
	name string
	req  []byte
} {
	be64 := binary.BigEndian.AppendUint64
	batch := func() []byte {
		b := binary.BigEndian.AppendUint32(nil, 4)
		for i := 0; i < 4; i++ {
			b = append(b, BatchRead)
			b = be64(b, uint64(i))
		}
		return b
	}
	return []struct {
		name string
		req  []byte
	}{
		{"hello-degraded", goldenRequest(VerbHello, 1, []byte{0, 0, 0, 0})},
		{"write-device-error", goldenRequest(VerbWrite, 2,
			append(be64(nil, 3), goldenLine(0x10)...))},
		{"read-device-error", goldenRequest(VerbRead, 3, be64(nil, 3))},
		{"batch-busy", goldenRequest(VerbBatch, 4, batch())},
	}
}

const goldenPath = "testdata/golden_wire.txt"

// replayScript writes each request frame and collects the response
// frames over one connection.
func replayScript(t *testing.T, addr string, script []struct {
	name string
	req  []byte
}) [][]byte {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	got := make([][]byte, len(script))
	for i, step := range script {
		if err := writeFrame(nc, step.req); err != nil {
			t.Fatalf("%s: write: %v", step.name, err)
		}
		resp, err := readFrame(br, nil)
		if err != nil {
			t.Fatalf("%s: read: %v", step.name, err)
		}
		got[i] = append([]byte(nil), resp...)
	}
	return got
}

// TestGoldenWire replays the recorded request bytes of every verb and
// error class against an in-process server over a real TCP connection
// and requires byte-identical responses. Run with -update after a
// deliberate protocol change.
func TestGoldenWire(t *testing.T) {
	mem := goldenConfig(t)
	defer mem.Close()
	_, addr := startServer(t, Config{Mem: mem, Tenants: 2, MaxBatchOps: 8})
	script := goldenScript()
	got := replayScript(t, addr, script)

	dmem := goldenDegradedConfig(t)
	defer dmem.Close()
	_, daddr := startServer(t, Config{Mem: dmem, Tenants: 2, MaxBatchOps: 8,
		MaxInflightOps: 2})
	script = append(script, goldenDegradedScript()...)
	got = append(got, replayScript(t, daddr, goldenDegradedScript())...)

	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# Golden wire-level request/response pairs (hex), recorded against\n")
		sb.WriteString("# the fixed goldenConfig engine. Regenerate: go test ./internal/server -run TestGoldenWire -update\n")
		for i, step := range script {
			fmt.Fprintf(&sb, "name %s\nreq %s\nresp %s\n", step.name,
				hex.EncodeToString(step.req), hex.EncodeToString(got[i]))
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	want := readGolden(t)
	for i, step := range script {
		w, ok := want[step.name]
		if !ok {
			t.Errorf("%s: missing from %s (re-record with -update?)", step.name, goldenPath)
			continue
		}
		if !bytes.Equal(w.req, step.req) {
			t.Errorf("%s: script request drifted from recorded bytes\n got %x\nwant %x", step.name, step.req, w.req)
		}
		if !bytes.Equal(w.resp, got[i]) {
			t.Errorf("%s: response drifted\n got %x\nwant %x", step.name, got[i], w.resp)
		}
	}
	if len(want) != len(script) {
		t.Errorf("golden file has %d entries, script has %d", len(want), len(script))
	}
}

type goldenEntry struct{ req, resp []byte }

// readGolden parses the name/req/resp triples of the golden file.
func readGolden(t *testing.T) map[string]goldenEntry {
	t.Helper()
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (record with -update)", err)
	}
	out := map[string]goldenEntry{}
	var name string
	var cur goldenEntry
	flush := func() {
		if name != "" {
			out[name] = cur
		}
		name, cur = "", goldenEntry{}
	}
	for ln, line := range strings.Split(string(blob), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("%s:%d: malformed line %q", goldenPath, ln+1, line)
		}
		switch key {
		case "name":
			flush()
			name = val
		case "req", "resp":
			b, err := hex.DecodeString(val)
			if err != nil {
				t.Fatalf("%s:%d: bad hex: %v", goldenPath, ln+1, err)
			}
			if key == "req" {
				cur.req = b
			} else {
				cur.resp = b
			}
		default:
			t.Fatalf("%s:%d: unknown key %q", goldenPath, ln+1, key)
		}
	}
	flush()
	return out
}

// TestLoopbackOracle drives the same op sequence through a 1-tenant
// server (over TCP, via the Client) and directly through an identical
// second engine, and requires bit-identical outcomes: SAW counts,
// read plaintexts, and the full engine statistics including the
// floating-point energy accumulator. The served engine carries a
// rate-0 chaos decorator the direct engine lacks — a healthy chaos
// layer must be observationally invisible end to end.
func TestLoopbackOracle(t *testing.T) {
	mkMem := func(spec *vcc.ChaosSpec) *vcc.ShardedMemory {
		mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
			Lines:  512,
			Shards: 4,
			Seed:   99,
			Chaos:  spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mem
	}
	served, direct := mkMem(&vcc.ChaosSpec{}), mkMem(nil)
	defer served.Close()
	defer direct.Close()
	srv, addr := startServer(t, Config{Mem: served})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lines, err := c.Hello(0)
	if err != nil {
		t.Fatal(err)
	}
	if lines != 512 {
		t.Fatalf("1-tenant slice = %d lines, want 512", lines)
	}

	// A deterministic mixed sequence: single writes/reads plus batches.
	nextData := func(i int) []byte {
		d := make([]byte, LineSize)
		for j := range d {
			d[j] = byte(i*31 + j*7)
		}
		return d
	}
	for i := 0; i < 40; i++ {
		line := uint64(i * 13 % 512)
		data := nextData(i)
		gotSAW, err := c.Write(line, data)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		wantSAW, err := direct.Write(int(line), data)
		if err != nil {
			t.Fatal(err)
		}
		if gotSAW != wantSAW {
			t.Fatalf("write %d: SAW %d over the wire, %d direct", i, gotSAW, wantSAW)
		}
	}
	for i := 0; i < 40; i++ {
		line := uint64(i * 13 % 512)
		got, err := c.Read(line, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		want, err := direct.Read(int(line), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read %d: wire plaintext differs from direct engine", i)
		}
	}
	// Mixed batches through VerbBatch vs direct Apply.
	for rounds := 0; rounds < 10; rounds++ {
		var bops []BatchOp
		var dops []vcc.Op
		for i := 0; i < 16; i++ {
			line := uint64((rounds*16 + i*29) % 512)
			if i%3 == 0 {
				bops = append(bops, BatchOp{Kind: BatchRead, Line: line})
				dops = append(dops, vcc.Op{Kind: vcc.OpRead, Line: int(line)})
			} else {
				data := nextData(rounds*100 + i)
				bops = append(bops, BatchOp{Kind: BatchWrite, Line: line, Data: data})
				dops = append(dops, vcc.Op{Kind: vcc.OpWrite, Line: int(line), Data: data})
			}
		}
		bres, err := c.Batch(bops, nil)
		if err != nil {
			t.Fatalf("batch %d: %v", rounds, err)
		}
		dres, err := direct.Apply(dops, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bres {
			if bops[i].Kind == BatchWrite {
				if bres[i].SAW != dres[i].SAWCells {
					t.Fatalf("batch %d op %d: SAW %d vs %d", rounds, i, bres[i].SAW, dres[i].SAWCells)
				}
			} else if !bytes.Equal(bres[i].Data, dres[i].Data) {
				t.Fatalf("batch %d op %d: read bytes differ", rounds, i)
			}
		}
	}

	if got, want := served.Stats(), direct.Stats(); got != want {
		t.Fatalf("served engine stats differ from direct engine:\n got %+v\nwant %+v", got, want)
	}
	// The tenant's attributed stats must equal the engine totals: one
	// tenant, all traffic through the server.
	st, err := srv.TenantStats(0)
	if err != nil {
		t.Fatal(err)
	}
	es := served.Stats()
	if st.LineWrites != es.LineWrites || st.LineReads != es.LineReads ||
		st.SAWCells != es.SAWCells || st.EnergyPJ != es.EnergyPJ {
		t.Fatalf("tenant stats %+v do not reconcile with engine stats %+v", st, es)
	}
}
