// Package server exposes a vcc.ShardedMemory as a multi-tenant
// line-store network service.
//
// The wire format is length-prefixed binary frames over TCP. Every
// frame is a big-endian uint32 payload length followed by the payload;
// request payloads are verb(1) + id(4, echoed verbatim in the
// response) + verb-specific body, response payloads are status(1) +
// id(4) + body. A thin HTTP/JSON front (see HTTPHandler) wraps the
// same engine path for debuggability.
//
// Tenants partition the line address space into disjoint equal slices;
// clients address lines tenant-relatively, and the server rejects
// anything outside the tenant's slice with StatusRange. A connection
// binds to its tenant with VerbHello before issuing data verbs.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// LineSize is the fixed service line payload size in bytes.
const LineSize = 64

// MaxFrame bounds a single frame payload; oversized length prefixes
// are rejected before any allocation (StatusTooLarge).
const MaxFrame = 1 << 20

// DefaultMaxBatchOps bounds ops per VerbBatch frame when
// Config.MaxBatchOps is zero.
const DefaultMaxBatchOps = 1024

// Request verbs.
const (
	// VerbHello binds the connection to a tenant. Body: uint32 tenant
	// index. OK response body: uint64 tenant slice size in lines.
	VerbHello = byte(1)
	// VerbWrite stores one line. Body: uint64 tenant-relative line +
	// LineSize data bytes. OK response body: uint32 stuck-at-wrong
	// cell count.
	VerbWrite = byte(2)
	// VerbRead fetches one line. Body: uint64 tenant-relative line.
	// OK response body: LineSize data bytes.
	VerbRead = byte(3)
	// VerbBatch carries a mixed op sequence applied in order. Body:
	// uint32 count, then per op kind(1: 0=write, 1=read) + uint64
	// line + (LineSize data if write). OK response body: uint32 count,
	// then per op kind(1) + (uint32 saw if write | LineSize data if
	// read).
	VerbBatch = byte(4)
	// VerbStats fetches the tenant's accumulated statistics. Empty
	// body. OK response body: TenantStats.AppendBinary layout.
	VerbStats = byte(5)
	// VerbFlush forces deferred write-back state to the devices,
	// covering everything this connection submitted before it. Empty
	// body and empty OK response body.
	VerbFlush = byte(6)
)

// Batch op kinds (match shard.OpWrite / shard.OpRead).
const (
	// BatchWrite is a write element in a VerbBatch body.
	BatchWrite = byte(0)
	// BatchRead is a read element in a VerbBatch body.
	BatchRead = byte(1)
)

// Response status codes. Non-OK responses carry a human-readable
// message as their body and never kill the connection (the lone
// exception: a frame whose length prefix exceeds MaxFrame cannot be
// skipped, so the connection closes after the StatusTooLarge reply).
const (
	// StatusOK is a successful response.
	StatusOK = byte(0)
	// StatusMalformed reports a request body that does not parse.
	StatusMalformed = byte(1)
	// StatusUnknownVerb reports an unrecognized verb byte.
	StatusUnknownVerb = byte(2)
	// StatusNoTenant reports a data verb before VerbHello.
	StatusNoTenant = byte(3)
	// StatusBadTenant reports an out-of-range tenant index, or an
	// attempt to rebind an already-bound connection.
	StatusBadTenant = byte(4)
	// StatusRange reports a line outside the tenant's slice.
	StatusRange = byte(5)
	// StatusShutdown reports a request arriving after Server.Close.
	StatusShutdown = byte(6)
	// StatusTooLarge reports a frame exceeding MaxFrame or a batch
	// exceeding the server's op bound.
	StatusTooLarge = byte(7)
	// StatusDeviceError reports a request whose engine ops still failed
	// after the controller's bounded retries. The device work happened
	// (and is accounted to the tenant); the data must not be trusted.
	// The connection stays alive and writes may be safely reissued.
	StatusDeviceError = byte(8)
	// StatusBusy reports a request shed by admission control: the
	// server's in-flight op budget is exhausted and nothing was
	// submitted to the engine. Retry after a backoff; the connection
	// stays alive.
	StatusBusy = byte(9)
)

// StatusName returns a stable mnemonic for a response status code.
func StatusName(s byte) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusMalformed:
		return "malformed"
	case StatusUnknownVerb:
		return "unknown-verb"
	case StatusNoTenant:
		return "no-tenant"
	case StatusBadTenant:
		return "bad-tenant"
	case StatusRange:
		return "range"
	case StatusShutdown:
		return "shutdown"
	case StatusTooLarge:
		return "too-large"
	case StatusDeviceError:
		return "device-error"
	case StatusBusy:
		return "busy"
	default:
		return fmt.Sprintf("status-%d", s)
	}
}

// reqHeaderLen is verb(1) + id(4); response headers share the shape.
const reqHeaderLen = 5

// errFrameTooLarge aborts a connection whose peer announced a frame
// the server refuses to buffer.
var errFrameTooLarge = errors.New("server: frame exceeds MaxFrame")

// readFrame reads one length-prefixed frame into buf (grown as
// needed) and returns the payload. io.EOF is returned only on a clean
// boundary (no bytes of the next frame read).
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, errFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("server: short frame: %w", err)
	}
	return buf, nil
}

// appendFrame appends the 4-byte length prefix and payload to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// TenantStats is the per-tenant accounting snapshot served by
// VerbStats: every field is attributed exactly to the submissions of
// connections bound to that tenant (via the engine's per-ticket stat
// deltas), so concurrent tenants — and engine-wide ResetStats — never
// bleed into each other's numbers. Ops counts data requests admitted
// by the server; the remaining fields mirror vcc.Stats semantics.
type TenantStats struct {
	Ops         int64   `json:"ops"`
	LineWrites  int64   `json:"line_writes"`
	LineReads   int64   `json:"line_reads"`
	SAWCells    int64   `json:"saw_cells"`
	BitFlips    int64   `json:"bit_flips"`
	CellChanges int64   `json:"cell_changes"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	EnergyPJ    float64 `json:"energy_pj"`
}

// tenantStatsWireLen is the fixed AppendBinary size: 8 int64 fields
// plus one float64, all big-endian.
const tenantStatsWireLen = 9 * 8

// AppendBinary appends the fixed-width big-endian wire encoding.
func (t TenantStats) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.Ops))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.LineWrites))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.LineReads))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.SAWCells))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.BitFlips))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.CellChanges))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.CacheHits))
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.CacheMisses))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(t.EnergyPJ))
	return dst
}

// ParseTenantStats decodes an AppendBinary payload.
func ParseTenantStats(b []byte) (TenantStats, error) {
	if len(b) != tenantStatsWireLen {
		return TenantStats{}, fmt.Errorf("server: tenant stats body is %d bytes, want %d", len(b), tenantStatsWireLen)
	}
	u := func(i int) int64 { return int64(binary.BigEndian.Uint64(b[i*8:])) }
	return TenantStats{
		Ops:         u(0),
		LineWrites:  u(1),
		LineReads:   u(2),
		SAWCells:    u(3),
		BitFlips:    u(4),
		CellChanges: u(5),
		CacheHits:   u(6),
		CacheMisses: u(7),
		EnergyPJ:    math.Float64frombits(binary.BigEndian.Uint64(b[8*8:])),
	}, nil
}

// Add folds o into t field-wise.
func (t *TenantStats) Add(o TenantStats) {
	t.Ops += o.Ops
	t.LineWrites += o.LineWrites
	t.LineReads += o.LineReads
	t.SAWCells += o.SAWCells
	t.BitFlips += o.BitFlips
	t.CellChanges += o.CellChanges
	t.CacheHits += o.CacheHits
	t.CacheMisses += o.CacheMisses
	t.EnergyPJ += o.EnergyPJ
}
