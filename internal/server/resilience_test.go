package server

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	vcc "repro"
)

// TestBackoffDeterministic: the jitter schedule is a pure function of
// the seed, every delay sits in [d/2, d) of its exponential step, and
// the cap holds.
func TestBackoffDeterministic(t *testing.T) {
	const base, max = time.Millisecond, 16 * time.Millisecond
	a := NewBackoff(base, max, 42)
	b := NewBackoff(base, max, 42)
	other := NewBackoff(base, max, 43)
	var diverged bool
	for attempt := 0; attempt < 12; attempt++ {
		da, db := a.Delay(attempt), b.Delay(attempt)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
		if da != other.Delay(attempt) {
			diverged = true
		}
		step := base << attempt
		if step > max || step <= 0 {
			step = max
		}
		if da < step/2 || da >= step {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, da, step/2, step)
		}
	}
	if !diverged {
		t.Error("different seeds produced identical schedules; jitter inert")
	}
}

func TestBackoffDefaultsAndClamp(t *testing.T) {
	b := NewBackoff(0, 0, 1)
	if d := b.Delay(0); d < 500*time.Microsecond || d >= time.Millisecond {
		t.Errorf("default base delay %v outside [0.5ms, 1ms)", d)
	}
	// max < base is raised to base.
	b = NewBackoff(10*time.Millisecond, time.Millisecond, 1)
	if d := b.Delay(5); d < 5*time.Millisecond || d >= 10*time.Millisecond {
		t.Errorf("clamped delay %v outside [5ms, 10ms)", d)
	}
}

// chaosMem builds a served engine with the given fault rates.
func chaosMem(t *testing.T, spec *vcc.ChaosSpec) *vcc.ShardedMemory {
	t.Helper()
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{
		Lines:  256,
		Shards: 2,
		Seed:   11,
		Chaos:  spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// TestClientRetriesDeviceErrors: against a server whose device fails
// half its ops even after engine retries, a retrying client completes
// every op and its counters show the recovered failures.
func TestClientRetriesDeviceErrors(t *testing.T) {
	mem := chaosMem(t, &vcc.ChaosSpec{ReadErrRate: 0.4, WriteErrRate: 0.4})
	defer mem.Close()
	_, addr := startServer(t, Config{Mem: mem})

	c, err := DialOpts(addr, ClientOpts{
		MaxRetries: 30,
		RetryBase:  100 * time.Microsecond,
		RetryMax:   time.Millisecond,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(0); err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]byte{}
	for i := 0; i < 60; i++ {
		line := uint64(i % 32)
		data := goldenLine(byte(i))
		if _, err := c.Write(line, data); err != nil {
			t.Fatalf("write %d failed through retries: %v", i, err)
		}
		want[line] = data
	}
	for line, data := range want {
		got, err := c.Read(line, nil)
		if err != nil {
			t.Fatalf("read %d failed through retries: %v", line, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("line %d read back wrong data after retried writes", line)
		}
	}
	if c.Retries() == 0 || c.DeviceErrorResponses() == 0 {
		t.Errorf("no failures recovered (retries=%d, device-errors=%d); chaos inert?",
			c.Retries(), c.DeviceErrorResponses())
	}
}

// TestClientBusyExhaustsRetries: a batch larger than the server's
// in-flight budget is shed every time; the client retries its full
// budget and surfaces the typed busy error.
func TestClientBusyExhaustsRetries(t *testing.T) {
	mem := chaosMem(t, nil)
	defer mem.Close()
	srv, addr := startServer(t, Config{Mem: mem, MaxInflightOps: 2})

	const retries = 3
	c, err := DialOpts(addr, ClientOpts{
		MaxRetries: retries,
		RetryBase:  100 * time.Microsecond,
		RetryMax:   time.Millisecond,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(0); err != nil {
		t.Fatal(err)
	}
	ops := make([]BatchOp, 4)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchRead, Line: uint64(i)}
	}
	_, err = c.Batch(ops, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusBusy {
		t.Fatalf("want StatusBusy, got %v", err)
	}
	if c.BusyResponses() != retries+1 || c.Retries() != retries {
		t.Errorf("busy=%d retries=%d, want %d/%d",
			c.BusyResponses(), c.Retries(), retries+1, retries)
	}
	if srv.ShedRequests() != retries+1 {
		t.Errorf("server shed %d requests, want %d", srv.ShedRequests(), retries+1)
	}
	// The connection survived the sheds: a within-budget op succeeds.
	if _, err := c.Read(0, nil); err != nil {
		t.Errorf("connection dead after busy responses: %v", err)
	}
}

// TestClientTransparentReconnect: when the connection drops under the
// client, the next op re-dials, re-binds the tenant and completes.
func TestClientTransparentReconnect(t *testing.T) {
	mem := chaosMem(t, nil)
	defer mem.Close()
	_, addr := startServer(t, Config{Mem: mem, Tenants: 2})

	c, err := DialOpts(addr, ClientOpts{
		MaxRetries: 3,
		RetryBase:  100 * time.Microsecond,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello(1); err != nil {
		t.Fatal(err)
	}
	data := goldenLine(0x33)
	if _, err := c.Write(7, data); err != nil {
		t.Fatal(err)
	}
	c.nc.Close() // sever the transport under the client
	got, err := c.Read(7, nil)
	if err != nil {
		t.Fatalf("read after severed connection: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("reconnected read returned wrong data (tenant binding lost?)")
	}
	if c.Reconnects() != 1 {
		t.Errorf("Reconnects = %d, want 1", c.Reconnects())
	}
}

// TestTenantReconcileUnderFaults is the -race workhorse: N concurrent
// tenants hammer a faulty, admission-limited server through retrying
// clients; afterwards every tenant's server-side Ops count must equal
// exactly the ops the server admitted for it — OK responses plus
// device-error responses, with busy sheds charged to nobody.
func TestTenantReconcileUnderFaults(t *testing.T) {
	mem := chaosMem(t, &vcc.ChaosSpec{ReadErrRate: 0.25, WriteErrRate: 0.25})
	defer mem.Close()
	_, addr := startServer(t, Config{Mem: mem, Tenants: 4, MaxInflightOps: 2})

	const opsPerTenant = 150
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for tenant := 0; tenant < 4; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			c, err := DialOpts(addr, ClientOpts{
				MaxRetries: 200,
				RetryBase:  50 * time.Microsecond,
				RetryMax:   2 * time.Millisecond,
				Seed:       uint64(tenant),
			})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Hello(tenant); err != nil {
				errs <- err
				return
			}
			written := map[uint64][]byte{}
			succeeded := int64(0)
			for i := 0; i < opsPerTenant; i++ {
				line := uint64((i * 7) % 64)
				if i%3 == 2 && written[line] != nil {
					got, err := c.Read(line, nil)
					if err != nil {
						errs <- fmt.Errorf("tenant %d read %d: %w", tenant, i, err)
						return
					}
					if !bytes.Equal(got, written[line]) {
						errs <- fmt.Errorf("tenant %d line %d: silent corruption", tenant, line)
						return
					}
				} else {
					data := goldenLine(byte(tenant*50 + i))
					if _, err := c.Write(line, data); err != nil {
						errs <- fmt.Errorf("tenant %d write %d: %w", tenant, i, err)
						return
					}
					written[line] = data
				}
				succeeded++
			}
			st, err := c.Stats()
			if err != nil {
				errs <- err
				return
			}
			// Every admitted op is accounted exactly once: the ones that
			// came back OK plus the ones that came back device-error.
			want := succeeded + c.DeviceErrorResponses()
			if st.Ops != want {
				errs <- fmt.Errorf("tenant %d: server Ops=%d, want %d (ok=%d, device-errors=%d, busy=%d)",
					tenant, st.Ops, want, succeeded, c.DeviceErrorResponses(), c.BusyResponses())
				return
			}
		}(tenant)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
