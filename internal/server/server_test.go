package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	vcc "repro"
)

func testMem(t *testing.T, lines, shards int) *vcc.ShardedMemory {
	t.Helper()
	mem, err := vcc.NewShardedMemory(vcc.ShardedMemoryConfig{Lines: lines, Shards: shards, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mem.Close)
	return mem
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil memory")
	}
	mem := testMem(t, 64, 1)
	if _, err := New(Config{Mem: mem, Tenants: 65}); err == nil {
		t.Error("New accepted more tenants than lines")
	}
	srv, err := New(Config{Mem: mem, Tenants: 4})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Tenants() != 4 || srv.TenantLines() != 16 {
		t.Fatalf("4 tenants over 64 lines: got %d x %d", srv.Tenants(), srv.TenantLines())
	}
	if _, err := srv.TenantStats(4); err == nil {
		t.Error("TenantStats accepted an out-of-range tenant")
	}
}

// TestOversizedFrameFarewell sends a frame whose announced length
// exceeds MaxFrame: the server must answer StatusTooLarge and then
// close (the frame body cannot be skipped).
func TestOversizedFrameFarewell(t *testing.T) {
	mem := testMem(t, 64, 1)
	_, addr := startServer(t, Config{Mem: mem})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	resp, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("no farewell response: %v", err)
	}
	if len(resp) < reqHeaderLen || resp[0] != StatusTooLarge {
		t.Fatalf("farewell = %x, want StatusTooLarge", resp)
	}
	if _, err := readFrame(br, nil); err != io.EOF {
		t.Fatalf("connection survived an unskippable frame: %v", err)
	}
}

// TestStatusNamesAndErrors pins the mnemonics error text flows
// through (clients log these verbatim).
func TestStatusNamesAndErrors(t *testing.T) {
	for s, want := range map[byte]string{
		StatusOK: "ok", StatusMalformed: "malformed", StatusUnknownVerb: "unknown-verb",
		StatusNoTenant: "no-tenant", StatusBadTenant: "bad-tenant", StatusRange: "range",
		StatusShutdown: "shutdown", StatusTooLarge: "too-large", 200: "status-200",
	} {
		if got := StatusName(s); got != want {
			t.Errorf("StatusName(%d) = %q, want %q", s, got, want)
		}
	}
	e := &StatusError{Status: StatusRange, Msg: "line 9 outside"}
	if !strings.Contains(e.Error(), "range") || !strings.Contains(e.Error(), "line 9") {
		t.Errorf("StatusError.Error() = %q", e.Error())
	}
}

func TestTenantStatsWireRoundTrip(t *testing.T) {
	in := TenantStats{Ops: 1, LineWrites: 2, LineReads: 3, SAWCells: 4,
		BitFlips: 5, CellChanges: 6, CacheHits: 7, CacheMisses: 8, EnergyPJ: 9.25}
	out, err := ParseTenantStats(in.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := ParseTenantStats(make([]byte, 3)); err == nil {
		t.Error("ParseTenantStats accepted a short body")
	}
	var sum TenantStats
	sum.Add(in)
	sum.Add(in)
	if sum.Ops != 2 || sum.EnergyPJ != 18.5 {
		t.Fatalf("Add: %+v", sum)
	}
}

// TestHTTPFront drives the JSON debug endpoints through the same
// engine path and cross-checks against the TCP protocol's view.
func TestHTTPFront(t *testing.T) {
	mem := testMem(t, 256, 2)
	srv, addr := startServer(t, Config{Mem: mem, Tenants: 2})
	hs := httptest.NewServer(srv.HTTPHandler())
	defer hs.Close()

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d (%s), want %d", path, resp.StatusCode, blob, want)
		}
		return blob
	}

	if !strings.Contains(string(get("/healthz", http.StatusOK)), "ok") {
		t.Fatal("healthz did not answer ok")
	}
	get("/v1/stats?tenant=9", http.StatusBadRequest)
	get("/v1/line?tenant=0&line=999999", http.StatusBadRequest)

	// Write over HTTP, read it back over HTTP and over TCP.
	data := goldenLine(0x55)
	body, _ := json.Marshal(map[string]string{"data": hex.EncodeToString(data)})
	req, _ := http.NewRequest(http.MethodPut, hs.URL+"/v1/line?tenant=1&line=7", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT line = %d", resp.StatusCode)
	}

	var rd struct {
		Line uint64 `json:"line"`
		Data string `json:"data"`
	}
	if err := json.Unmarshal(get("/v1/line?tenant=1&line=7", http.StatusOK), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Data != hex.EncodeToString(data) {
		t.Fatalf("HTTP read back %s, want %s", rd.Data, hex.EncodeToString(data))
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Hello(1); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP read disagrees with HTTP write")
	}

	// The HTTP ops were accounted to tenant 1 like any other request.
	var st TenantStats
	if err := json.Unmarshal(get("/v1/stats?tenant=1", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ops != 3 || st.LineWrites != 1 || st.LineReads != 2 {
		t.Fatalf("tenant 1 stats = %+v, want 1 write + 2 reads", st)
	}
	if blob := get("/v1/stats?tenant=0", http.StatusOK); !strings.Contains(string(blob), "\"ops\": 0") {
		var st0 TenantStats
		json.Unmarshal(blob, &st0)
		if st0.Ops != 0 {
			t.Fatalf("tenant 0 saw tenant 1's traffic: %s", blob)
		}
	}
}

// TestTenantIsolation ensures a tenant cannot address another
// tenant's slice through any verb.
func TestTenantIsolation(t *testing.T) {
	mem := testMem(t, 256, 2)
	_, addr := startServer(t, Config{Mem: mem, Tenants: 4})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lines, err := cl.Hello(2)
	if err != nil {
		t.Fatal(err)
	}
	if lines != 64 {
		t.Fatalf("tenant slice = %d, want 64", lines)
	}
	data := make([]byte, LineSize)
	for _, line := range []uint64{64, 255, 1 << 40} {
		if _, err := cl.Write(line, data); !isStatus(err, StatusRange) {
			t.Errorf("write line %d: err = %v, want StatusRange", line, err)
		}
		if _, err := cl.Read(line, nil); !isStatus(err, StatusRange) {
			t.Errorf("read line %d: err = %v, want StatusRange", line, err)
		}
		if _, err := cl.Batch([]BatchOp{{Kind: BatchRead, Line: line}}, nil); !isStatus(err, StatusRange) {
			t.Errorf("batch line %d: err = %v, want StatusRange", line, err)
		}
	}
	// In-range traffic still flows on the same connection.
	if _, err := cl.Write(63, data); err != nil {
		t.Fatalf("in-range write after range errors: %v", err)
	}
}

func isStatus(err error, status byte) bool {
	se, ok := err.(*StatusError)
	return ok && se.Status == status
}

// TestClientBatchTooLarge exercises the server-side batch bound.
func TestClientBatchTooLarge(t *testing.T) {
	mem := testMem(t, 64, 1)
	_, addr := startServer(t, Config{Mem: mem, MaxBatchOps: 4})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Hello(0); err != nil {
		t.Fatal(err)
	}
	ops := make([]BatchOp, 5)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchRead, Line: uint64(i)}
	}
	if _, err := cl.Batch(ops, nil); !isStatus(err, StatusTooLarge) {
		t.Fatalf("oversized batch: err = %v, want StatusTooLarge", err)
	}
	if _, err := cl.Batch(ops[:4], nil); err != nil {
		t.Fatalf("bounded batch after error: %v", err)
	}
}

// TestPipelinedWindow checks the reader/writer slot cycle under many
// back-to-back requests on one connection (more than Window, so slots
// recycle) with interleaved verbs.
func TestPipelinedWindow(t *testing.T) {
	mem := testMem(t, 128, 2)
	_, addr := startServer(t, Config{Mem: mem, Window: 4})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Hello(0); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, LineSize)
	for i := 0; i < 200; i++ {
		line := uint64(i % 128)
		data[0] = byte(i)
		if _, err := cl.Write(line, data); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := cl.Read(line, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("read %d returned stale data: %d", i, got[0])
		}
		if i%50 == 0 {
			if err := cl.Flush(); err != nil {
				t.Fatalf("flush %d: %v", i, err)
			}
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 400 {
		t.Fatalf("ops = %d, want 400", st.Ops)
	}
}

// TestDialRetry covers the startup-race helper.
func TestDialRetry(t *testing.T) {
	if _, err := DialRetry("127.0.0.1:1", 1); err == nil {
		t.Fatal("DialRetry to a dead port must fail")
	}
	mem := testMem(t, 64, 1)
	_, addr := startServer(t, Config{Mem: mem})
	cl, err := DialRetry(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
}
