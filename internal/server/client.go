package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"
)

// StatusError is a non-OK wire response surfaced as a Go error. The
// connection stays usable after one.
type StatusError struct {
	// Status is the wire status code (StatusMalformed, StatusRange, ...).
	Status byte
	// Msg is the server's human-readable message body.
	Msg string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s: %s", StatusName(e.Status), e.Msg)
}

// ClientOpts tunes the client's resilience behavior. The zero value
// is the legacy fail-fast client: no deadlines, no retries.
type ClientOpts struct {
	// OpTimeout bounds each request round trip via a connection
	// deadline. 0 disables deadlines.
	OpTimeout time.Duration
	// MaxRetries is how many times one op is reissued after a
	// retryable failure (transport error, StatusBusy,
	// StatusDeviceError). Every protocol op is idempotent — writes
	// store, reads fetch — so reissue is always safe. 0 disables
	// retries.
	MaxRetries int
	// RetryBase and RetryMax shape the jittered exponential backoff
	// between retries (defaults: 1ms base, 200ms cap).
	RetryBase, RetryMax time.Duration
	// Seed makes the backoff jitter schedule deterministic.
	Seed uint64
}

// Client is a synchronous line-store protocol client: one request in
// flight at a time, request and response frames built in reusable
// buffers (steady-state round trips allocate nothing). With ClientOpts
// it layers per-op deadlines, jittered-backoff retries and transparent
// reconnect (re-dial plus tenant re-bind) over the same wire calls.
// Not safe for concurrent use — loadgen concurrency comes from one
// Client per simulated client goroutine.
type Client struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	id    uint32
	req   []byte
	resp  []byte
	batch []byte

	addr   string // dial target for reconnects ("" = wrapped conn, no reconnect)
	opts   ClientOpts
	bo     *Backoff
	tenant int // bound tenant to restore after reconnect (-1 = unbound)

	retries      int64 // ops reissued
	reconnects   int64 // successful re-dials
	busySeen     int64 // StatusBusy responses observed
	devErrSeen   int64 // StatusDeviceError responses observed
	transportErr int64 // transport-level failures observed
}

// NewClient wraps an established connection. A wrapped client cannot
// reconnect (it does not know its dial address).
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc:     nc,
		br:     bufio.NewReader(nc),
		bw:     bufio.NewWriter(nc),
		tenant: -1,
	}
}

// Dial connects to a line-store server with zero (fail-fast) options.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOpts{})
}

// DialOpts connects with explicit resilience options.
func DialOpts(addr string, opts ClientOpts) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(nc)
	c.addr = addr
	c.opts = opts
	if opts.MaxRetries > 0 {
		c.bo = NewBackoff(opts.RetryBase, opts.RetryMax, opts.Seed)
	}
	return c, nil
}

// DialRetry dials until the server accepts or the window elapses —
// for harnesses that race client startup against the server's bind.
// Attempts back off exponentially with jitter instead of polling at a
// fixed period.
func DialRetry(addr string, wait time.Duration) (*Client, error) {
	return DialRetryOpts(addr, wait, ClientOpts{})
}

// DialRetryOpts is DialRetry with explicit resilience options for the
// returned client; opts.Seed also seeds the dial backoff.
func DialRetryOpts(addr string, wait time.Duration, opts ClientOpts) (*Client, error) {
	bo := NewBackoff(opts.RetryBase, opts.RetryMax, opts.Seed)
	deadline := time.Now().Add(wait)
	for attempt := 0; ; attempt++ {
		c, err := DialOpts(addr, opts)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: dial %s: gave up after %v: %w", addr, wait, err)
		}
		time.Sleep(bo.Delay(attempt))
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.nc.Close() }

// Retries returns how many ops were reissued after retryable failures.
func (c *Client) Retries() int64 { return c.retries }

// Reconnects returns how many transparent re-dials succeeded.
func (c *Client) Reconnects() int64 { return c.reconnects }

// BusyResponses returns how many StatusBusy responses were observed
// (including ones that later succeeded on retry).
func (c *Client) BusyResponses() int64 { return c.busySeen }

// DeviceErrorResponses returns how many StatusDeviceError responses
// were observed (including ones that later succeeded on retry).
func (c *Client) DeviceErrorResponses() int64 { return c.devErrSeen }

// TransportErrors returns how many transport-level failures (broken
// connection, deadline expiry) were observed.
func (c *Client) TransportErrors() int64 { return c.transportErr }

// observe classifies one round-trip error into the client's counters.
func (c *Client) observe(err error) {
	if err == nil {
		return
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case StatusBusy:
			c.busySeen++
		case StatusDeviceError:
			c.devErrSeen++
		}
		return
	}
	c.transportErr++
}

// retryable reports whether err is worth reissuing the op for: busy
// and device-error statuses always, transport errors only when the
// client can reconnect.
func (c *Client) retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == StatusBusy || se.Status == StatusDeviceError
	}
	return c.addr != ""
}

// reconnect replaces a broken connection: re-dial, fresh buffers, and
// a re-bind to the previously bound tenant.
func (c *Client) reconnect() error {
	c.nc.Close()
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.nc = nc
	c.br.Reset(nc)
	c.bw.Reset(nc)
	c.reconnects++
	if c.tenant >= 0 {
		var body [4]byte
		binary.BigEndian.PutUint32(body[:], uint32(c.tenant))
		if _, err := c.roundTrip(VerbHello, body[:]); err != nil {
			return err
		}
	}
	return nil
}

// do is roundTrip plus the retry policy: reissue on retryable failure
// up to MaxRetries times, backing off with jitter and reconnecting
// across transport errors. Safe for every protocol op — they are all
// idempotent.
func (c *Client) do(verb byte, body []byte) ([]byte, error) {
	rb, err := c.roundTrip(verb, body)
	c.observe(err)
	for attempt := 0; err != nil && attempt < c.opts.MaxRetries && c.retryable(err); attempt++ {
		time.Sleep(c.bo.Delay(attempt))
		var se *StatusError
		if !errors.As(err, &se) {
			// Transport failure: the connection is suspect; rebuild it
			// before reissuing. A failed reconnect consumes the attempt.
			if rerr := c.reconnect(); rerr != nil {
				err = rerr
				c.observe(err)
				continue
			}
		}
		c.retries++
		rb, err = c.roundTrip(verb, body)
		c.observe(err)
	}
	return rb, err
}

// roundTrip sends verb+body and returns the OK response body, valid
// until the next call. A non-OK status comes back as *StatusError.
func (c *Client) roundTrip(verb byte, body []byte) ([]byte, error) {
	c.id++
	if c.opts.OpTimeout > 0 {
		c.nc.SetDeadline(time.Now().Add(c.opts.OpTimeout))
	}
	c.req = append(c.req[:0], verb)
	c.req = binary.BigEndian.AppendUint32(c.req, c.id)
	c.req = append(c.req, body...)
	if err := writeFrame(c.bw, c.req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.br, c.resp)
	if err != nil {
		return nil, err
	}
	c.resp = payload
	if len(payload) < reqHeaderLen {
		return nil, fmt.Errorf("server: short response (%d bytes)", len(payload))
	}
	status, id, rbody := payload[0], binary.BigEndian.Uint32(payload[1:5]), payload[reqHeaderLen:]
	if id != c.id {
		return nil, fmt.Errorf("server: response id %d, want %d", id, c.id)
	}
	if status != StatusOK {
		return nil, &StatusError{Status: status, Msg: string(rbody)}
	}
	return rbody, nil
}

// Hello binds the connection to a tenant and returns the tenant's
// slice size in lines.
func (c *Client) Hello(tenant int) (uint64, error) {
	var body [4]byte
	binary.BigEndian.PutUint32(body[:], uint32(tenant))
	rb, err := c.do(VerbHello, body[:])
	if err != nil {
		return 0, err
	}
	if len(rb) != 8 {
		return 0, fmt.Errorf("server: hello response body is %d bytes, want 8", len(rb))
	}
	c.tenant = tenant // restored transparently after a reconnect
	return binary.BigEndian.Uint64(rb), nil
}

// Write stores one tenant-relative line and returns its stuck-at-wrong
// cell count.
func (c *Client) Write(line uint64, data []byte) (int, error) {
	if len(data) != LineSize {
		return 0, fmt.Errorf("server: write needs %d bytes, got %d", LineSize, len(data))
	}
	var body [8 + LineSize]byte
	binary.BigEndian.PutUint64(body[:8], line)
	copy(body[8:], data)
	rb, err := c.do(VerbWrite, body[:])
	if err != nil {
		return 0, err
	}
	if len(rb) != 4 {
		return 0, fmt.Errorf("server: write response body is %d bytes, want 4", len(rb))
	}
	return int(binary.BigEndian.Uint32(rb)), nil
}

// Read fetches one tenant-relative line into dst (allocated when nil,
// must be LineSize bytes otherwise).
func (c *Client) Read(line uint64, dst []byte) ([]byte, error) {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], line)
	rb, err := c.do(VerbRead, body[:])
	if err != nil {
		return nil, err
	}
	if len(rb) != LineSize {
		return nil, fmt.Errorf("server: read response body is %d bytes, want %d", len(rb), LineSize)
	}
	if dst == nil {
		dst = make([]byte, LineSize)
	} else if len(dst) != LineSize {
		return nil, fmt.Errorf("server: read needs a %d-byte buffer, got %d", LineSize, len(dst))
	}
	copy(dst, rb)
	return dst, nil
}

// BatchOp is one element of a Client.Batch request.
type BatchOp struct {
	// Kind is BatchWrite or BatchRead.
	Kind byte
	// Line is the tenant-relative line index.
	Line uint64
	// Data is the LineSize write payload (BatchWrite) or an optional
	// read destination (BatchRead; results alias the client's response
	// buffer when nil, valid until the next call).
	Data []byte
}

// BatchResult is the per-op result of Client.Batch.
type BatchResult struct {
	// SAW is the stuck-at-wrong cell count (writes only).
	SAW int
	// Data is the line read back (reads only); aliases the op's Data
	// buffer when one was provided, the client's response buffer
	// otherwise.
	Data []byte
}

// Batch applies a mixed op sequence in order in one round trip.
// res is reused when it has the capacity (like vcc outcome slices).
func (c *Client) Batch(ops []BatchOp, res []BatchResult) ([]BatchResult, error) {
	body := c.batchBody(ops)
	rb, err := c.do(VerbBatch, body)
	if err != nil {
		return nil, err
	}
	if cap(res) >= len(ops) {
		res = res[:len(ops)]
	} else {
		res = make([]BatchResult, len(ops))
	}
	if len(rb) < 4 {
		return nil, fmt.Errorf("server: batch response body is %d bytes", len(rb))
	}
	if n := binary.BigEndian.Uint32(rb); int(n) != len(ops) {
		return nil, fmt.Errorf("server: batch response has %d ops, want %d", n, len(ops))
	}
	off := 4
	for i := range ops {
		if off >= len(rb) {
			return nil, fmt.Errorf("server: batch response truncated at op %d", i)
		}
		kind := rb[off]
		off++
		if kind != ops[i].Kind {
			return nil, fmt.Errorf("server: batch op %d came back as kind %d, want %d", i, kind, ops[i].Kind)
		}
		switch kind {
		case BatchWrite:
			if off+4 > len(rb) {
				return nil, fmt.Errorf("server: batch response truncated at op %d", i)
			}
			res[i] = BatchResult{SAW: int(binary.BigEndian.Uint32(rb[off:]))}
			off += 4
		case BatchRead:
			if off+LineSize > len(rb) {
				return nil, fmt.Errorf("server: batch response truncated at op %d", i)
			}
			data := rb[off : off+LineSize]
			if ops[i].Data != nil {
				copy(ops[i].Data, data)
				data = ops[i].Data
			}
			res[i] = BatchResult{Data: data}
			off += LineSize
		}
	}
	return res, nil
}

// batchBody serializes ops into the client's scratch buffer (reused
// across calls; the round trip copies it onto the wire before return).
func (c *Client) batchBody(ops []BatchOp) []byte {
	need := 4
	for i := range ops {
		need += 1 + 8
		if ops[i].Kind == BatchWrite {
			need += LineSize
		}
	}
	if cap(c.batch) < need {
		c.batch = make([]byte, 0, need)
	}
	body := c.batch[:0]
	body = binary.BigEndian.AppendUint32(body, uint32(len(ops)))
	for i := range ops {
		body = append(body, ops[i].Kind)
		body = binary.BigEndian.AppendUint64(body, ops[i].Line)
		if ops[i].Kind == BatchWrite {
			body = append(body, ops[i].Data...)
		}
	}
	c.batch = body
	return body
}

// Stats fetches the connection's tenant statistics snapshot.
func (c *Client) Stats() (TenantStats, error) {
	rb, err := c.do(VerbStats, nil)
	if err != nil {
		return TenantStats{}, err
	}
	return ParseTenantStats(rb)
}

// Flush forces deferred write-back state down to the devices, covering
// everything this connection submitted before it.
func (c *Client) Flush() error {
	_, err := c.do(VerbFlush, nil)
	return err
}
