package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// StatusError is a non-OK wire response surfaced as a Go error. The
// connection stays usable after one.
type StatusError struct {
	// Status is the wire status code (StatusMalformed, StatusRange, ...).
	Status byte
	// Msg is the server's human-readable message body.
	Msg string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %s: %s", StatusName(e.Status), e.Msg)
}

// Client is a synchronous line-store protocol client: one request in
// flight at a time, request and response frames built in reusable
// buffers (steady-state round trips allocate nothing). Not safe for
// concurrent use — loadgen concurrency comes from one Client per
// simulated client goroutine.
type Client struct {
	nc    net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	id    uint32
	req   []byte
	resp  []byte
	batch []byte
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReader(nc),
		bw: bufio.NewWriter(nc),
	}
}

// Dial connects to a line-store server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// DialRetry dials until the server accepts or the window elapses —
// for harnesses that race client startup against the server's bind.
func DialRetry(addr string, wait time.Duration) (*Client, error) {
	deadline := time.Now().Add(wait)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: dial %s: gave up after %v: %w", addr, wait, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.nc.Close() }

// roundTrip sends verb+body and returns the OK response body, valid
// until the next call. A non-OK status comes back as *StatusError.
func (c *Client) roundTrip(verb byte, body []byte) ([]byte, error) {
	c.id++
	c.req = append(c.req[:0], verb)
	c.req = binary.BigEndian.AppendUint32(c.req, c.id)
	c.req = append(c.req, body...)
	if err := writeFrame(c.bw, c.req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.br, c.resp)
	if err != nil {
		return nil, err
	}
	c.resp = payload
	if len(payload) < reqHeaderLen {
		return nil, fmt.Errorf("server: short response (%d bytes)", len(payload))
	}
	status, id, rbody := payload[0], binary.BigEndian.Uint32(payload[1:5]), payload[reqHeaderLen:]
	if id != c.id {
		return nil, fmt.Errorf("server: response id %d, want %d", id, c.id)
	}
	if status != StatusOK {
		return nil, &StatusError{Status: status, Msg: string(rbody)}
	}
	return rbody, nil
}

// Hello binds the connection to a tenant and returns the tenant's
// slice size in lines.
func (c *Client) Hello(tenant int) (uint64, error) {
	var body [4]byte
	binary.BigEndian.PutUint32(body[:], uint32(tenant))
	rb, err := c.roundTrip(VerbHello, body[:])
	if err != nil {
		return 0, err
	}
	if len(rb) != 8 {
		return 0, fmt.Errorf("server: hello response body is %d bytes, want 8", len(rb))
	}
	return binary.BigEndian.Uint64(rb), nil
}

// Write stores one tenant-relative line and returns its stuck-at-wrong
// cell count.
func (c *Client) Write(line uint64, data []byte) (int, error) {
	if len(data) != LineSize {
		return 0, fmt.Errorf("server: write needs %d bytes, got %d", LineSize, len(data))
	}
	var body [8 + LineSize]byte
	binary.BigEndian.PutUint64(body[:8], line)
	copy(body[8:], data)
	rb, err := c.roundTrip(VerbWrite, body[:])
	if err != nil {
		return 0, err
	}
	if len(rb) != 4 {
		return 0, fmt.Errorf("server: write response body is %d bytes, want 4", len(rb))
	}
	return int(binary.BigEndian.Uint32(rb)), nil
}

// Read fetches one tenant-relative line into dst (allocated when nil,
// must be LineSize bytes otherwise).
func (c *Client) Read(line uint64, dst []byte) ([]byte, error) {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], line)
	rb, err := c.roundTrip(VerbRead, body[:])
	if err != nil {
		return nil, err
	}
	if len(rb) != LineSize {
		return nil, fmt.Errorf("server: read response body is %d bytes, want %d", len(rb), LineSize)
	}
	if dst == nil {
		dst = make([]byte, LineSize)
	} else if len(dst) != LineSize {
		return nil, fmt.Errorf("server: read needs a %d-byte buffer, got %d", LineSize, len(dst))
	}
	copy(dst, rb)
	return dst, nil
}

// BatchOp is one element of a Client.Batch request.
type BatchOp struct {
	// Kind is BatchWrite or BatchRead.
	Kind byte
	// Line is the tenant-relative line index.
	Line uint64
	// Data is the LineSize write payload (BatchWrite) or an optional
	// read destination (BatchRead; results alias the client's response
	// buffer when nil, valid until the next call).
	Data []byte
}

// BatchResult is the per-op result of Client.Batch.
type BatchResult struct {
	// SAW is the stuck-at-wrong cell count (writes only).
	SAW int
	// Data is the line read back (reads only); aliases the op's Data
	// buffer when one was provided, the client's response buffer
	// otherwise.
	Data []byte
}

// Batch applies a mixed op sequence in order in one round trip.
// res is reused when it has the capacity (like vcc outcome slices).
func (c *Client) Batch(ops []BatchOp, res []BatchResult) ([]BatchResult, error) {
	body := c.batchBody(ops)
	rb, err := c.roundTrip(VerbBatch, body)
	if err != nil {
		return nil, err
	}
	if cap(res) >= len(ops) {
		res = res[:len(ops)]
	} else {
		res = make([]BatchResult, len(ops))
	}
	if len(rb) < 4 {
		return nil, fmt.Errorf("server: batch response body is %d bytes", len(rb))
	}
	if n := binary.BigEndian.Uint32(rb); int(n) != len(ops) {
		return nil, fmt.Errorf("server: batch response has %d ops, want %d", n, len(ops))
	}
	off := 4
	for i := range ops {
		if off >= len(rb) {
			return nil, fmt.Errorf("server: batch response truncated at op %d", i)
		}
		kind := rb[off]
		off++
		if kind != ops[i].Kind {
			return nil, fmt.Errorf("server: batch op %d came back as kind %d, want %d", i, kind, ops[i].Kind)
		}
		switch kind {
		case BatchWrite:
			if off+4 > len(rb) {
				return nil, fmt.Errorf("server: batch response truncated at op %d", i)
			}
			res[i] = BatchResult{SAW: int(binary.BigEndian.Uint32(rb[off:]))}
			off += 4
		case BatchRead:
			if off+LineSize > len(rb) {
				return nil, fmt.Errorf("server: batch response truncated at op %d", i)
			}
			data := rb[off : off+LineSize]
			if ops[i].Data != nil {
				copy(ops[i].Data, data)
				data = ops[i].Data
			}
			res[i] = BatchResult{Data: data}
			off += LineSize
		}
	}
	return res, nil
}

// batchBody serializes ops into the client's scratch buffer (reused
// across calls; the round trip copies it onto the wire before return).
func (c *Client) batchBody(ops []BatchOp) []byte {
	need := 4
	for i := range ops {
		need += 1 + 8
		if ops[i].Kind == BatchWrite {
			need += LineSize
		}
	}
	if cap(c.batch) < need {
		c.batch = make([]byte, 0, need)
	}
	body := c.batch[:0]
	body = binary.BigEndian.AppendUint32(body, uint32(len(ops)))
	for i := range ops {
		body = append(body, ops[i].Kind)
		body = binary.BigEndian.AppendUint64(body, ops[i].Line)
		if ops[i].Kind == BatchWrite {
			body = append(body, ops[i].Data...)
		}
	}
	c.batch = body
	return body
}

// Stats fetches the connection's tenant statistics snapshot.
func (c *Client) Stats() (TenantStats, error) {
	rb, err := c.roundTrip(VerbStats, nil)
	if err != nil {
		return TenantStats{}, err
	}
	return ParseTenantStats(rb)
}

// Flush forces deferred write-back state down to the devices, covering
// everything this connection submitted before it.
func (c *Client) Flush() error {
	_, err := c.roundTrip(VerbFlush, nil)
	return err
}
