package chaos

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/coset"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/prng"
)

// newController builds a small real MLC controller stack for the
// decorator to wrap.
func newController(t *testing.T, devSeed uint64) *memctrl.Controller {
	t.Helper()
	dev := pcm.NewDevice(pcm.Config{Mode: pcm.MLC, Rows: 16, WordsPerRow: 8})
	dev.InitRandom(prng.New(devSeed))
	ctrl, err := memctrl.New(memctrl.Config{
		Device:    dev,
		Codec:     coset.NewVCCGenerated(16, 256),
		Objective: coset.ObjEnergySAW,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func fill(rng *prng.Rand) []byte {
	b := make([]byte, 64)
	rng.Fill(b)
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil inner accepted")
	}
	inner := newController(t, 1)
	for _, bad := range []Config{
		{Inner: inner, ReadErrRate: -0.1},
		{Inner: inner, WriteErrRate: 1.5},
		{Inner: inner, TornWriteRate: 2},
		{Inner: inner, ReadCorruptRate: -1},
		{Inner: inner, StallRate: 1.01},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("out-of-range rate accepted: %+v", bad)
		}
	}
}

// TestRateZeroBitIdentical is the oracle test: a chaos decorator with
// every rate zero must be observationally identical to the undecorated
// stack — same read bytes, same outcomes, same stats — over an
// arbitrary op stream.
func TestRateZeroBitIdentical(t *testing.T) {
	bare := newController(t, 42)
	wrapped, err := New(Config{Inner: newController(t, 42), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.rng != nil {
		t.Fatal("rate-0 store built a PRNG; healthy path is not inert")
	}
	rng := prng.New(9)
	for i := 0; i < 500; i++ {
		line := int(rng.Uint64n(uint64(bare.NumLines())))
		data := fill(rng)
		oA, eA := bare.WriteLine(line, data)
		oB, eB := wrapped.WriteLine(line, data)
		if eA != nil || eB != nil {
			t.Fatalf("op %d: unexpected write error %v/%v", i, eA, eB)
		}
		if len(oA) != len(oB) {
			t.Fatalf("op %d: outcome lengths diverge", i)
		}
		gA, eA := bare.ReadLine(line, nil)
		gB, eB := wrapped.ReadLine(line, nil)
		if eA != nil || eB != nil {
			t.Fatalf("op %d: unexpected read error %v/%v", i, eA, eB)
		}
		if !bytes.Equal(gA, gB) {
			t.Fatalf("op %d: read bytes diverge with rate-0 chaos installed", i)
		}
	}
	sA, sB := bare.Stats(), wrapped.Stats()
	if sA != sB {
		t.Errorf("stats diverge: bare %+v, wrapped %+v", sA, sB)
	}
	if sB.DeviceErrors != 0 {
		t.Errorf("rate-0 store reported %d device errors", sB.DeviceErrors)
	}
}

// TestDeterministicSchedule: two stores with the same seed and rates
// inject the same faults at the same ops.
func TestDeterministicSchedule(t *testing.T) {
	mk := func() *Store {
		s, err := New(Config{
			Inner: newController(t, 5), Seed: 99,
			ReadErrRate: 0.1, WriteErrRate: 0.1, TornWriteRate: 0.05,
			ReadCorruptRate: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	rng := prng.New(3)
	data := make([]byte, 64)
	var faultsA, faultsB []string
	record := func(list *[]string, err error) {
		var de *memctrl.DeviceError
		if errors.As(err, &de) {
			*list = append(*list, de.Error())
		}
	}
	for i := 0; i < 400; i++ {
		line := int(rng.Uint64n(uint64(a.NumLines())))
		rng.Fill(data)
		_, eA := a.WriteLine(line, data)
		_, eB := b.WriteLine(line, data)
		record(&faultsA, eA)
		record(&faultsB, eB)
		_, eA = a.ReadLine(line, nil)
		_, eB = b.ReadLine(line, nil)
		record(&faultsA, eA)
		record(&faultsB, eB)
	}
	if len(faultsA) == 0 {
		t.Fatal("no faults injected at 10% rates over 800 ops")
	}
	if len(faultsA) != len(faultsB) {
		t.Fatalf("schedules diverge: %d vs %d faults", len(faultsA), len(faultsB))
	}
	for i := range faultsA {
		if faultsA[i] != faultsB[i] {
			t.Fatalf("fault %d diverges: %q vs %q", i, faultsA[i], faultsB[i])
		}
	}
	if a.Injected() != int64(len(faultsA)) {
		t.Errorf("Injected() = %d, want %d", a.Injected(), len(faultsA))
	}
	if got := a.Stats().DeviceErrors; got != a.Injected() {
		t.Errorf("Stats().DeviceErrors = %d, want %d", got, a.Injected())
	}
}

// TestTransientErrorsLeaveDeviceUntouched: a transient write error must
// not reach the device; a retry then succeeds and round-trips.
func TestTransientErrorsLeaveDeviceUntouched(t *testing.T) {
	inner := newController(t, 11)
	s, err := New(Config{Inner: inner, Seed: 1, WriteErrRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.New(8)
	data := fill(rng)
	writes := inner.Stats().LineWrites
	// Drive until the schedule injects one write error.
	var injected bool
	for i := 0; i < 64 && !injected; i++ {
		_, werr := s.WriteLine(3, data)
		if werr != nil {
			if !memctrl.IsTransient(werr) {
				t.Fatalf("injected error is not transient-typed: %v", werr)
			}
			injected = true
			if inner.Stats().LineWrites != writes+int64(i) {
				t.Fatal("transient write error still reached the device")
			}
		}
	}
	if !injected {
		t.Fatal("no write error injected at rate 0.5 over 64 ops")
	}
}

// TestTornWriteCorruptsAndErrors: a torn write stores a mangled image
// and fails; the read-back differs from the written plaintext until a
// clean retry rewrites the line.
func TestTornWriteCorruptsAndErrors(t *testing.T) {
	s, err := New(Config{Inner: newController(t, 21), Seed: 4, TornWriteRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := fill(prng.New(2))
	_, werr := s.WriteLine(0, data)
	var de *memctrl.DeviceError
	if !errors.As(werr, &de) || de.Kind != memctrl.FaultTornWrite {
		t.Fatalf("want torn-write error, got %v", werr)
	}
	got, rerr := s.inner.ReadLine(0, nil) // bypass injection for the check
	if rerr != nil {
		t.Fatal(rerr)
	}
	if bytes.Equal(got, data) {
		t.Error("torn write stored the clean image; corruption not applied")
	}
	// The caller's buffer must be untouched.
	want := fill(prng.New(2))
	if !bytes.Equal(data, want) {
		t.Error("torn write scribbled on the caller's buffer")
	}
}

// TestReadCorruptionTransient: a corrupted read returns mangled bytes
// plus a typed error, but the device state is intact — the retry reads
// clean.
func TestReadCorruptionTransient(t *testing.T) {
	inner := newController(t, 31)
	s, err := New(Config{Inner: inner, Seed: 6, ReadCorruptRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := fill(prng.New(12))
	if _, werr := inner.WriteLine(5, data); werr != nil {
		t.Fatal(werr)
	}
	got, rerr := s.ReadLine(5, nil)
	var de *memctrl.DeviceError
	if !errors.As(rerr, &de) || de.Kind != memctrl.FaultReadCorruption {
		t.Fatalf("want read-corruption error, got %v", rerr)
	}
	if bytes.Equal(got, data) {
		t.Error("corrupted read returned clean bytes")
	}
	clean, rerr := inner.ReadLine(5, nil)
	if rerr != nil || !bytes.Equal(clean, data) {
		t.Error("read corruption damaged the device state")
	}
}

// TestResetStatsKeepsSchedule: ResetStats zeroes counters without
// disturbing the injection stream.
func TestResetStatsKeepsSchedule(t *testing.T) {
	s, err := New(Config{Inner: newController(t, 41), Seed: 13, WriteErrRate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	data := fill(prng.New(1))
	for i := 0; i < 50; i++ {
		s.WriteLine(i%s.NumLines(), data)
	}
	if s.Injected() == 0 {
		t.Fatal("no faults injected")
	}
	s.ResetStats()
	if s.Injected() != 0 || s.Stalls() != 0 || s.Stats().DeviceErrors != 0 {
		t.Error("ResetStats left injection counters nonzero")
	}
}
