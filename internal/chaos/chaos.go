// Package chaos implements a deterministic fault-injecting decorator
// over any memctrl.LineStore. It is the "device that actually fails"
// the rest of the resilience stack is built against: seeded PRNG,
// per-op fault schedule, and a taxonomy of transient read/write
// errors, torn writes, read corruption and latency stalls at
// configurable rates.
//
// Placement. The decorator composes like every other LineStore layer
// (linecache.Cache, memctrl.Remapper). The engine installs it at the
// top of the per-shard stack (above the cache), so every injected
// fault is visible to the shard backend's bounded retry and, past
// that, to the client as a typed device-error status. Tests are free
// to compose it anywhere — e.g. under the cache to exercise the
// cache's writeback-retry policy.
//
// Determinism. All draws come from one xoshiro stream derived from
// Config.Seed, advanced exactly once per eligible operation (one draw
// per WriteLine, one per ReadLine) while any fault rate is nonzero.
// Two runs with the same seed, rates, and op sequence inject the same
// faults at the same ops. With every rate zero the decorator is
// *inert*: no PRNG draws, no allocations, a single pointer indirection
// to the inner store — bit-identical to the undecorated stack.
//
// No silent corruption. Every injected fault is surfaced as a
// *memctrl.DeviceError. The corrupting kinds (torn write, read
// corruption) deliberately mangle data *and* return the typed error,
// so a caller that ignores errors would observe garbage — never a
// fault that passes for success.
package chaos

import (
	"fmt"
	"time"

	"repro/internal/memctrl"
	"repro/internal/prng"
)

// Config assembles a Store.
type Config struct {
	// Inner is the decorated store (required).
	Inner memctrl.LineStore
	// Seed seeds the injection schedule. Stores built with the same
	// seed and rates over the same op sequence inject identically.
	Seed uint64
	// ReadErrRate is the probability an eligible ReadLine fails with a
	// transient read error before touching the inner store.
	ReadErrRate float64
	// WriteErrRate is the probability an eligible WriteLine fails with
	// a transient write error before touching the inner store.
	WriteErrRate float64
	// TornWriteRate is the probability a WriteLine is torn: a
	// bit-corrupted copy of the line is written to the inner store and
	// the op still fails with a typed error. A retry must rewrite the
	// whole line to restore it.
	TornWriteRate float64
	// ReadCorruptRate is the probability a ReadLine returns
	// bit-corrupted data alongside a typed error (the device state
	// itself stays intact, so a retry can return clean data).
	ReadCorruptRate float64
	// StallRate is the probability an op sleeps for StallDelay before
	// executing, modeling a busy bank. Stalls are delays, not errors.
	StallRate float64
	// StallDelay is the stall duration (default 100µs when StallRate
	// is nonzero).
	StallDelay time.Duration
}

// Store is the fault-injecting LineStore decorator. Like every
// LineStore it is not safe for concurrent use; shard.Engine serializes
// access per shard.
type Store struct {
	inner memctrl.LineStore
	cfg   Config
	rng   *prng.Rand
	// active caches "any rate nonzero" so the healthy configuration
	// short-circuits to the inner store with no draws and no branches
	// beyond this one bool.
	active bool

	injected int64 // injected faults (errors, not stalls)
	stalls   int64
}

var _ memctrl.LineStore = (*Store)(nil)

// New builds a fault-injecting decorator over cfg.Inner.
func New(cfg Config) (*Store, error) {
	if cfg.Inner == nil {
		return nil, fmt.Errorf("chaos: Inner store is required")
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ReadErrRate", cfg.ReadErrRate},
		{"WriteErrRate", cfg.WriteErrRate},
		{"TornWriteRate", cfg.TornWriteRate},
		{"ReadCorruptRate", cfg.ReadCorruptRate},
		{"StallRate", cfg.StallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return nil, fmt.Errorf("chaos: %s %v out of [0,1]", r.name, r.v)
		}
	}
	if cfg.StallDelay == 0 {
		cfg.StallDelay = 100 * time.Microsecond
	}
	s := &Store{
		inner: cfg.Inner,
		cfg:   cfg,
		active: cfg.ReadErrRate > 0 || cfg.WriteErrRate > 0 ||
			cfg.TornWriteRate > 0 || cfg.ReadCorruptRate > 0 || cfg.StallRate > 0,
	}
	if s.active {
		s.rng = prng.NewFrom(cfg.Seed, "chaos-schedule")
	}
	return s, nil
}

// Injected returns the number of faults injected so far (stalls
// excluded).
func (s *Store) Injected() int64 { return s.injected }

// Stalls returns the number of latency stalls injected so far.
func (s *Store) Stalls() int64 { return s.stalls }

// corruptLine flips one deterministic pseudo-random bit of a 64-byte
// line image.
func (s *Store) corruptLine(data []byte) {
	bit := s.rng.Uint64n(uint64(len(data)) * 8)
	data[bit/8] ^= 1 << (bit % 8)
}

// WriteLine implements LineStore, injecting at most one fault per op:
// first the stall draw, then one schedule draw deciding between a
// transient write error (nothing reaches the device), a torn write (a
// corrupted image reaches the device and the op still fails), or a
// clean pass-through.
func (s *Store) WriteLine(line int, plaintext []byte) ([]memctrl.WordOutcome, error) {
	if !s.active {
		return s.inner.WriteLine(line, plaintext)
	}
	if s.cfg.StallRate > 0 && s.rng.Float64() < s.cfg.StallRate {
		s.stalls++
		time.Sleep(s.cfg.StallDelay)
	}
	p := s.rng.Float64()
	if p < s.cfg.WriteErrRate {
		s.injected++
		return nil, &memctrl.DeviceError{Kind: memctrl.FaultWriteTransient, Line: line}
	}
	if p < s.cfg.WriteErrRate+s.cfg.TornWriteRate {
		s.injected++
		// Program a corrupted image, then fail the op: the stored state
		// is garbage until a retry rewrites the full line. The scratch
		// copy allocates, which is fine — fault paths are rare by
		// construction and must not scribble on the caller's buffer.
		torn := make([]byte, len(plaintext))
		copy(torn, plaintext)
		s.corruptLine(torn)
		s.inner.WriteLine(line, torn)
		return nil, &memctrl.DeviceError{Kind: memctrl.FaultTornWrite, Line: line}
	}
	return s.inner.WriteLine(line, plaintext)
}

// ReadLine implements LineStore: one stall draw, then one schedule
// draw deciding between a transient read error (inner store untouched),
// a corrupted read (inner data fetched, one bit flipped, typed error
// returned alongside), or a clean pass-through.
func (s *Store) ReadLine(line int, dst []byte) ([]byte, error) {
	if !s.active {
		return s.inner.ReadLine(line, dst)
	}
	if s.cfg.StallRate > 0 && s.rng.Float64() < s.cfg.StallRate {
		s.stalls++
		time.Sleep(s.cfg.StallDelay)
	}
	p := s.rng.Float64()
	if p < s.cfg.ReadErrRate {
		s.injected++
		return nil, &memctrl.DeviceError{Kind: memctrl.FaultReadTransient, Line: line}
	}
	if p < s.cfg.ReadErrRate+s.cfg.ReadCorruptRate {
		s.injected++
		out, err := s.inner.ReadLine(line, dst)
		if err != nil {
			return out, err
		}
		s.corruptLine(out)
		return out, &memctrl.DeviceError{Kind: memctrl.FaultReadCorruption, Line: line}
	}
	return s.inner.ReadLine(line, dst)
}

// Flush implements LineStore. Flush is a control operation, not a data
// op; faults are injected on the line ops it triggers below (when the
// chaos layer sits under a write-back cache), not on Flush itself.
func (s *Store) Flush() error { return s.inner.Flush() }

// NumLines implements LineStore.
func (s *Store) NumLines() int { return s.inner.NumLines() }

// Stats implements LineStore: the inner stack's counters plus the
// faults this layer injected.
func (s *Store) Stats() memctrl.Stats {
	st := s.inner.Stats()
	st.DeviceErrors += s.injected
	return st
}

// ResetStats implements LineStore, zeroing injection and inner
// counters. The injection schedule (the PRNG stream) is untouched.
func (s *Store) ResetStats() {
	s.injected, s.stalls = 0, 0
	s.inner.ResetStats()
}
