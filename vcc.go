// Package vcc is the public facade of the Virtual Coset Coding
// reproduction (Longofono, Seyedzadeh, Jones — "Virtual Coset Coding for
// Encrypted Non-Volatile Memories with Multi-Level Cells", HPCA 2022).
//
// It exposes, behind one import, the pieces a downstream user needs:
//
//   - Encoders: NewVCCEncoder (the paper's contribution), plus the RCC,
//     Flip-N-Write/DBI and Flipcy baselines, all selecting candidates
//     under pluggable cost objectives (bit flips, MLC write energy,
//     stuck-at-wrong masking).
//   - Memory: a simulated encrypted MLC/SLC PCM main memory — AES-CTR
//     encryption unit, coset encoder, fault injection, endurance — with
//     cache-line Read/Write and detailed energy/wear statistics.
//   - ShardedMemory: the concurrency-safe variant, interleaving the line
//     address space across independent shards, with synchronous batched
//     I/O and an asynchronous Session/Submit/Ticket path over bounded
//     per-shard issue queues (bit-identical to Memory at one shard).
//   - The experiment registry regenerating every table and figure of the
//     paper (see cmd/vccrepro and EXPERIMENTS.md).
//
// Quick start (see examples/quickstart for the runnable version):
//
//	mem, _ := vcc.NewMemory(vcc.MemoryConfig{
//		Lines:     1024,
//		Encoder:   vcc.NewVCCEncoder(256),
//		Objective: vcc.OptEnergy,
//		Seed:      42,
//	})
//	mem.Write(7, line)          // encrypts, encodes, programs cells
//	data, _ := mem.Read(7, nil) // decodes, decrypts
//	fmt.Println(mem.Stats().EnergyPJ)
package vcc

import (
	"fmt"

	"repro/internal/coset"
	"repro/internal/cryptmem"
	"repro/internal/memctrl"
	"repro/internal/pcm"
	"repro/internal/shard"
)

// LineSize is the cache-line granularity of Memory I/O, in bytes.
const LineSize = cryptmem.LineSize

// Objective selects what the encoder minimizes. OptEnergy and OptSAW are
// the paper's two lexicographic orderings (Section VI-A); OptFlips is
// the classic write-reduction objective.
type Objective = coset.Objective

// Objective values.
const (
	OptFlips  = coset.ObjFlips
	OptOnes   = coset.ObjOnes
	OptEnergy = coset.ObjEnergySAW
	OptSAW    = coset.ObjSAWEnergy
)

// Encoder is a coset codec over 64-bit blocks (or their 32-bit MLC
// right-digit planes). Implementations are provided by the constructors
// below; the interface is re-exported for custom pipelines.
type Encoder = coset.Codec

// NewVCCEncoder returns the paper's headline configuration: full-word
// VCC(64, n, n/16) with 16-bit stored kernels. n must be a multiple of
// 16 virtual cosets (the paper evaluates 32-256).
func NewVCCEncoder(numVirtualCosets int) Encoder {
	return coset.NewVCCStored(64, 16, numVirtualCosets, 0x5CC)
}

// NewVCCGeneratedEncoder returns the security-preserving MLC variant of
// Section IV-B: the 32-bit right-digit plane is encoded with Algorithm 2
// kernels generated at run time from the block's left digits, so no
// kernel material is stored anywhere.
func NewVCCGeneratedEncoder(numVirtualCosets int) Encoder {
	return coset.NewVCCGenerated(16, numVirtualCosets)
}

// NewRCCEncoder returns classic random coset coding with n stored
// cosets — the quality ceiling VCC approximates (n a power of two).
func NewRCCEncoder(numCosets int) Encoder {
	return coset.NewRCC(64, numCosets, 0xACC)
}

// NewFNWEncoder returns Flip-N-Write / DBI at k-bit granularity.
func NewFNWEncoder(k int) Encoder { return coset.NewFNW(64, k) }

// NewFlipcyEncoder returns the Flipcy baseline.
func NewFlipcyEncoder() Encoder { return coset.NewFlipcy(64) }

// NewUnencoded returns the identity (unencoded) baseline.
func NewUnencoded() Encoder { return coset.NewIdentity(64) }

// MemoryConfig assembles a simulated encrypted PCM main memory.
type MemoryConfig struct {
	// Lines is the memory capacity in 64-byte cache lines.
	Lines int
	// Encoder transforms blocks before they reach the cells; defaults
	// to NewVCCEncoder(256).
	Encoder Encoder
	// Objective drives candidate selection; the zero value is OptFlips
	// (classic write reduction). The paper's headline results use
	// OptEnergy or OptSAW — set one explicitly to reproduce them.
	Objective Objective
	// SLC selects single-level cells (default is the paper's 2-bit MLC).
	SLC bool
	// DisableEncryption bypasses the AES-CTR unit (ablations only; the
	// paper's threat model requires encryption).
	DisableEncryption bool
	// Key is the AES-256 key for the encryption unit.
	Key [32]byte
	// FaultRate pre-generates a stuck-at fault map at this per-cell rate
	// (the paper's snapshot experiments use 1e-2). 0 disables.
	FaultRate float64
	// EnduranceWrites enables wear tracking with this mean cell lifetime
	// in energy-weighted wear units (see pcm.Wear). 0 disables.
	EnduranceWrites float64
	// EnduranceCoV is the lifetime coefficient of variation (default
	// 0.2, the paper's value) when wear tracking is on.
	EnduranceCoV float64
	// Seed drives all stochastic initialization.
	Seed uint64
}

// Memory is an encrypted, coset-encoded, fault- and wear-aware simulated
// PCM main memory addressed in cache lines.
type Memory struct {
	ctrl *memctrl.Controller
	dev  *pcm.Device
}

// Stats reports accumulated access-path statistics.
type Stats struct {
	// LineWrites is the number of Write calls served.
	LineWrites int64
	// LineReads is the number of Read calls served (each runs the full
	// decode + decrypt pipeline).
	LineReads int64
	// EnergyPJ is the total write energy, including auxiliary bits.
	EnergyPJ float64
	// BitFlips counts logical bit transitions programmed.
	BitFlips int64
	// CellChanges counts physical cell state changes.
	CellChanges int64
	// SAWCells counts stuck-at-wrong cells over all writes (data that
	// could not be stored faithfully).
	SAWCells int64
	// FailedCells is the number of cells whose endurance is exhausted.
	FailedCells int64
	// CacheHits counts reads served from the decoded-line cache without
	// running decode+decrypt (always 0 without a cache; see
	// ShardedMemoryConfig.CacheLines).
	CacheHits int64
	// CacheMisses counts cached reads that fell through to the device
	// pipeline.
	CacheMisses int64
	// CacheEvictions counts lines evicted from the decoded-line cache —
	// the capacity-pressure signal for sizing CacheLines.
	CacheEvictions int64
	// Writebacks counts deferred device writebacks issued by the
	// write-back cache policy on eviction or Flush.
	Writebacks int64
	// CoalescedWrites counts writes absorbed into an already-dirty
	// cached line — device writebacks the write-back policy eliminated.
	CoalescedWrites int64
	// RemappedLines counts repair relocations performed by the remapping
	// decorator (ShardedMemoryConfig.RemapSpares): write-verify failures
	// moved onto spare physical lines.
	RemappedLines int64
	// RepairFailures counts writes left stuck-at-wrong because the spare
	// pool was exhausted.
	RepairFailures int64
	// DeviceErrors counts transient device faults surfaced by the stack
	// (injected by the chaos decorator; see ShardedMemoryConfig.Chaos).
	DeviceErrors int64
	// ErrorRetries counts in-engine retries of transiently-faulted ops
	// before they succeeded or surfaced an error.
	ErrorRetries int64
}

// Add folds o into s field-wise. Together with Delta it supports
// interval accounting over a shared engine: take a snapshot, keep
// serving, and attribute the difference — without ResetStats, which
// would clobber every other observer's baseline.
func (s *Stats) Add(o Stats) {
	s.LineWrites += o.LineWrites
	s.LineReads += o.LineReads
	s.EnergyPJ += o.EnergyPJ
	s.BitFlips += o.BitFlips
	s.CellChanges += o.CellChanges
	s.SAWCells += o.SAWCells
	s.FailedCells += o.FailedCells
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheEvictions += o.CacheEvictions
	s.Writebacks += o.Writebacks
	s.CoalescedWrites += o.CoalescedWrites
	s.RemappedLines += o.RemappedLines
	s.RepairFailures += o.RepairFailures
	s.DeviceErrors += o.DeviceErrors
	s.ErrorRetries += o.ErrorRetries
}

// Delta returns s - o field-wise: the statistics accumulated between
// two snapshots. It is the tenant-scoped (or any interval-scoped) view
// of a shared engine: multiple observers can each difference their own
// snapshots concurrently, where a ResetStats-based scheme would race.
func (s Stats) Delta(o Stats) Stats {
	return Stats{
		LineWrites:      s.LineWrites - o.LineWrites,
		LineReads:       s.LineReads - o.LineReads,
		EnergyPJ:        s.EnergyPJ - o.EnergyPJ,
		BitFlips:        s.BitFlips - o.BitFlips,
		CellChanges:     s.CellChanges - o.CellChanges,
		SAWCells:        s.SAWCells - o.SAWCells,
		FailedCells:     s.FailedCells - o.FailedCells,
		CacheHits:       s.CacheHits - o.CacheHits,
		CacheMisses:     s.CacheMisses - o.CacheMisses,
		CacheEvictions:  s.CacheEvictions - o.CacheEvictions,
		Writebacks:      s.Writebacks - o.Writebacks,
		CoalescedWrites: s.CoalescedWrites - o.CoalescedWrites,
		RemappedLines:   s.RemappedLines - o.RemappedLines,
		RepairFailures:  s.RepairFailures - o.RepairFailures,
		DeviceErrors:    s.DeviceErrors - o.DeviceErrors,
		ErrorRetries:    s.ErrorRetries - o.ErrorRetries,
	}
}

// NewMemory builds a Memory from cfg. The pipeline assembly lives in
// internal/shard (NewMemory builds exactly one shard's backend), so the
// sequential engine and every shard of a ShardedMemory are the same
// construction by design.
func NewMemory(cfg MemoryConfig) (*Memory, error) {
	if cfg.Lines <= 0 {
		return nil, fmt.Errorf("vcc: Lines must be positive, got %d", cfg.Lines)
	}
	if cfg.Encoder == nil {
		cfg.Encoder = NewVCCEncoder(256)
	}
	b, err := shard.NewBackend(shard.BackendConfig{
		Lines:             cfg.Lines,
		Codec:             cfg.Encoder,
		Objective:         cfg.Objective,
		SLC:               cfg.SLC,
		DisableEncryption: cfg.DisableEncryption,
		Key:               cfg.Key,
		FaultRate:         cfg.FaultRate,
		EnduranceWrites:   cfg.EnduranceWrites,
		EnduranceCoV:      cfg.EnduranceCoV,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Memory{ctrl: b.Ctrl, dev: b.Dev}, nil
}

// Lines returns the capacity in cache lines.
func (m *Memory) Lines() int { return m.ctrl.NumLines() }

// Write stores a 64-byte cache line at the given line index through the
// full encrypt-encode-program pipeline. It returns the number of
// stuck-at-wrong cells the write could not avoid (0 means the line is
// stored faithfully).
func (m *Memory) Write(line int, data []byte) (sawCells int, err error) {
	if line < 0 || line >= m.ctrl.NumLines() {
		return 0, fmt.Errorf("vcc: line %d out of range [0,%d)", line, m.ctrl.NumLines())
	}
	if len(data) != LineSize {
		return 0, fmt.Errorf("vcc: Write needs %d bytes, got %d", LineSize, len(data))
	}
	outc, err := m.ctrl.WriteLine(line, data)
	if err != nil {
		return 0, err
	}
	for _, o := range outc {
		sawCells += o.SAWCells
	}
	return sawCells, nil
}

// Read retrieves a cache line through decode and decryption into dst
// (allocated when nil). Data stored over stuck-at-wrong cells reads back
// corrupted, exactly as it would from the physical device.
func (m *Memory) Read(line int, dst []byte) ([]byte, error) {
	if line < 0 || line >= m.ctrl.NumLines() {
		return nil, fmt.Errorf("vcc: line %d out of range [0,%d)", line, m.ctrl.NumLines())
	}
	if dst != nil && len(dst) != LineSize {
		return nil, fmt.Errorf("vcc: Read needs a %d-byte buffer", LineSize)
	}
	return m.ctrl.ReadLine(line, dst)
}

// Stats returns accumulated statistics.
func (m *Memory) Stats() Stats {
	s := m.ctrl.Stats()
	var failed int64
	if w := m.dev.Config().Wear; w != nil {
		failed = int64(w.FailedCells())
	}
	return Stats{
		LineWrites:  s.LineWrites,
		LineReads:   s.LineReads,
		EnergyPJ:    s.EnergyPJ,
		BitFlips:    s.BitFlips,
		CellChanges: s.CellChanges,
		SAWCells:    s.SAWCells,
		FailedCells: failed,
	}
}

// ResetStats clears accumulated statistics (device state is untouched).
func (m *Memory) ResetStats() { m.ctrl.ResetStats() }

// StuckCells returns the current number of permanently stuck cells
// (pre-generated faults plus endurance failures).
func (m *Memory) StuckCells() int { return m.dev.Faults().NumStuckCells() }
