package vcc

// Tests of the decoded-line cache stack (internal/linecache behind
// ShardedMemoryConfig.CacheLines): write-through must be op-for-op
// indistinguishable from the uncached engine (fault corruption
// included), write-back must converge to the same final plaintext after
// Flush while strictly reducing device writebacks on hot workloads, and
// cached results must stay deterministic at any shard/worker count.
// Cache-off bit-identity is pinned by the pre-existing tests
// (TestShardedSingleShardBitIdentical, TestMixedApplyOracle), which run
// the default CacheLines == 0 configuration unchanged.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/prng"
)

func cachedFrom(cfg MemoryConfig, shards, workers, cacheLines int, policy CachePolicy) ShardedMemoryConfig {
	sc := shardedFrom(cfg, shards, workers)
	sc.CacheLines = cacheLines
	sc.CachePolicy = policy
	return sc
}

// hotMixedOps builds a deterministic read-heavy op stream where 90% of
// the traffic lands on a small hot set — the SPEC-like locality that
// makes a line cache pay off.
func hotMixedOps(n, lines, hotLines int, readFrac float64, seed uint64) []Op {
	rng := prng.NewFrom(seed, "hot-mixed-ops")
	ops := make([]Op, n)
	for i := range ops {
		line := rng.Intn(lines)
		if rng.Float64() < 0.9 {
			line = rng.Intn(hotLines)
		}
		if rng.Float64() < readFrac {
			ops[i] = Op{Kind: OpRead, Line: line}
		} else {
			data := make([]byte, LineSize)
			rng.Fill(data)
			ops[i] = Op{Kind: OpWrite, Line: line, Data: data}
		}
	}
	return ops
}

// TestWriteThroughOracle: a write-through cached one-shard engine must
// be op-for-op identical to the uncached sequential oracle — same
// per-op SAW counts, same read plaintexts (stuck-at-wrong corruption
// included), same write-side statistics and final contents. Hits only
// skip decode+decrypt, which touches LineReads/WordsDecoded and nothing
// else.
func TestWriteThroughOracle(t *testing.T) {
	const lines = 256
	cfg := fullConfig(lines, 31)
	seq, err := NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedMemory(cachedFrom(cfg, 1, 2, 64, WriteThrough))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	ops := mixedOps(3000, lines, 13)
	lastWritten := make([][]byte, lines)
	corruptedReads := 0
	for off := 0; off < len(ops); off += 97 {
		end := off + 97
		if end > len(ops) {
			end = len(ops)
		}
		batch := ops[off:end]
		outs, err := sh.Apply(batch, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			op := &batch[i]
			if op.Kind == OpWrite {
				saw, err := seq.Write(op.Line, op.Data)
				if err != nil {
					t.Fatal(err)
				}
				if outs[i].SAWCells != saw {
					t.Fatalf("op %d: cached SAW %d, oracle %d", off+i, outs[i].SAWCells, saw)
				}
				lastWritten[op.Line] = op.Data
				continue
			}
			want, err := seq.Read(op.Line, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(outs[i].Data, want) {
				t.Fatalf("op %d: cached read diverges from uncached oracle", off+i)
			}
			if lastWritten[op.Line] != nil && !bytes.Equal(want, lastWritten[op.Line]) {
				corruptedReads++
			}
		}
	}
	if corruptedReads == 0 {
		t.Error("no read observed stuck-at-wrong corruption; the fault-visibility check has no teeth")
	}

	got, want := sh.Stats(), seq.Stats()
	if got.CacheHits == 0 {
		t.Error("write-through cache never hit")
	}
	if got.LineWrites != want.LineWrites || got.EnergyPJ != want.EnergyPJ ||
		got.BitFlips != want.BitFlips || got.CellChanges != want.CellChanges ||
		got.SAWCells != want.SAWCells || got.FailedCells != want.FailedCells {
		t.Errorf("write-side stats diverge:\ncached   %+v\nuncached %+v", got, want)
	}
	sh.Flush() // must be a no-op under write-through
	if st := sh.Stats(); st.Writebacks != 0 || st.CoalescedWrites != 0 {
		t.Errorf("write-through produced writebacks/coalesced: %+v", st)
	}
	for l := 0; l < lines; l++ {
		a, err := seq.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sh.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d contents diverge", l)
		}
	}
}

// TestWriteBackOracle is the acceptance criterion for the deferred
// policy: in a fault-free configuration the final plaintext after
// Flush must match the sequential oracle line for line, while the hot
// workload's device writebacks come out strictly below the uncached
// write count.
func TestWriteBackOracle(t *testing.T) {
	const lines = 256
	cfg := MemoryConfig{
		Lines:     lines,
		Encoder:   NewVCCEncoder(256),
		Objective: OptEnergy,
		Key:       [32]byte{4, 5, 6},
		Seed:      11,
	}
	seq, err := NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedMemory(cachedFrom(cfg, 1, 2, 64, WriteBack))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	ops := hotMixedOps(4000, lines, 16, 0.6, 7)
	logicalWrites := int64(0)
	for i := range ops {
		if ops[i].Kind == OpWrite {
			logicalWrites++
			if _, err := seq.Write(ops[i].Line, ops[i].Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := sh.Apply(ops, nil); err != nil {
		t.Fatal(err)
	}
	sh.Flush() // push every dirty line down to the device

	st := sh.Stats()
	if st.LineWrites >= logicalWrites {
		t.Errorf("write-back did not reduce device writes: %d device RMWs for %d logical writes",
			st.LineWrites, logicalWrites)
	}
	if st.CoalescedWrites == 0 {
		t.Error("hot workload coalesced nothing")
	}
	if st.LineWrites+st.CoalescedWrites != logicalWrites {
		t.Errorf("post-flush accounting broken: LineWrites %d + CoalescedWrites %d != logical %d",
			st.LineWrites, st.CoalescedWrites, logicalWrites)
	}
	if st.Writebacks == 0 {
		t.Error("no deferred writebacks recorded")
	}
	for l := 0; l < lines; l++ {
		a, err := seq.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sh.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d: final plaintext diverges from the mixed-Apply oracle", l)
		}
	}
}

// TestCachedApplyDeterministic: cached results — outcomes, stats and
// post-Flush contents — are identical at any worker count, for both
// policies and several shard counts (run under -race this is also the
// cached-path concurrency check).
func TestCachedApplyDeterministic(t *testing.T) {
	const lines = 300
	for _, policy := range []CachePolicy{WriteThrough, WriteBack} {
		for _, shards := range []int{2, 5} {
			var refStats Stats
			var refOuts []Outcome
			var refData [][]byte
			var refLines [][]byte
			for _, workers := range []int{1, 4, 8} {
				m, err := NewShardedMemory(ShardedMemoryConfig{
					Lines: lines, Shards: shards, Workers: workers, Seed: 9, FaultRate: 1e-2,
					NewEncoder:  func() Encoder { return NewVCCEncoder(256) },
					CacheLines:  32,
					CachePolicy: policy,
				})
				if err != nil {
					t.Fatal(err)
				}
				ops := mixedOps(2000, lines, 5)
				outs, err := m.Apply(ops, nil)
				if err != nil {
					t.Fatal(err)
				}
				data := make([][]byte, len(outs))
				for i := range outs {
					if outs[i].Data != nil {
						data[i] = bytes.Clone(outs[i].Data)
					}
				}
				m.Flush()
				st := m.Stats()
				contents := make([][]byte, lines)
				for l := 0; l < lines; l++ {
					contents[l], err = m.Read(l, nil)
					if err != nil {
						t.Fatal(err)
					}
				}
				m.Close()
				if workers == 1 {
					refStats, refOuts, refData, refLines = st, outs, data, contents
					continue
				}
				if st != refStats {
					t.Errorf("policy=%v shards=%d workers=%d: stats %+v differ from 1-worker %+v",
						policy, shards, workers, st, refStats)
				}
				for i := range outs {
					if outs[i].SAWCells != refOuts[i].SAWCells || !bytes.Equal(data[i], refData[i]) {
						t.Fatalf("policy=%v shards=%d workers=%d: op %d outcome diverges",
							policy, shards, workers, i)
					}
				}
				for l := range contents {
					if !bytes.Equal(contents[l], refLines[l]) {
						t.Fatalf("policy=%v shards=%d workers=%d: line %d diverges post-Flush",
							policy, shards, workers, l)
					}
				}
			}
		}
	}
}

// TestCloseFlushesWriteBack: Close must persist dirty write-back lines
// (the documented Close flush semantics). Afterwards the engine is
// closed for I/O — Submit and every wrapper over it return ErrClosed
// instead of panicking, while the snapshot accessors keep working — and
// a second Close is a safe no-op.
func TestCloseFlushesWriteBack(t *testing.T) {
	const lines = 64
	m, err := NewShardedMemory(ShardedMemoryConfig{
		Lines: lines, Shards: 2, Workers: 2, Seed: 3,
		NewEncoder:  func() Encoder { return NewFNWEncoder(16) },
		CacheLines:  16,
		CachePolicy: WriteBack,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, lines)
	rng := prng.New(8)
	for l := 0; l < lines; l++ {
		want[l] = make([]byte, LineSize)
		rng.Fill(want[l])
		if _, err := m.Write(l, want[l]); err != nil {
			t.Fatal(err)
		}
	}
	// Before Close a read sees the flushed-and-verified contents; keep a
	// reference read so the post-Flush oracle below is not vacuous.
	m.Flush()
	for l := 0; l < lines; l++ {
		got, err := m.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[l]) {
			t.Fatalf("line %d lost after Flush", l)
		}
	}
	// Dirty the cache again so Close itself has deferred work to flush.
	for l := 0; l < lines; l++ {
		rng.Fill(want[l])
		if _, err := m.Write(l, want[l]); err != nil {
			t.Fatal(err)
		}
	}
	// Some of the second round must still sit dirty in the caches, so
	// Close has real deferred work (device writes accounted so far fall
	// short of the logical write count).
	if pre := m.Stats(); pre.LineWrites+pre.CoalescedWrites == 2*int64(lines) {
		t.Fatal("nothing was deferred; the write-back test is vacuous")
	}
	m.Close()
	st := m.Stats() // snapshot accessors stay valid after Close
	if st.Writebacks == 0 {
		t.Error("Close did not flush dirty lines")
	}
	if st.LineWrites+st.CoalescedWrites != 2*int64(lines) {
		t.Errorf("post-Close accounting broken: LineWrites %d + CoalescedWrites %d != logical %d",
			st.LineWrites, st.CoalescedWrites, 2*lines)
	}
	// Post-Close I/O returns the sentinel, never panics.
	if _, err := m.Read(0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Read after Close: err = %v, want ErrClosed", err)
	}
	if _, err := m.Write(0, want[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Write after Close: err = %v, want ErrClosed", err)
	}
	if _, err := m.Apply([]Op{{Kind: OpWrite, Line: 0, Data: want[0]}}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Apply after Close: err = %v, want ErrClosed", err)
	}
	if _, err := m.Session().Submit([]Op{{Kind: OpRead, Line: 0}}, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
	}
	m.Close() // idempotent: double Close must not panic or hang
	m.Flush() // and a post-Close Flush is a harmless no-op
}

// TestCacheCountersMatchLive: the lock-free Counters snapshot carries
// the cache fields end-to-end.
func TestCacheCountersMatchLive(t *testing.T) {
	m, err := NewShardedMemory(ShardedMemoryConfig{
		Lines: 128, Shards: 4, Workers: 4, Seed: 5,
		NewEncoder:  func() Encoder { return NewFNWEncoder(16) },
		CacheLines:  8,
		CachePolicy: WriteBack,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ops := hotMixedOps(1500, 128, 8, 0.7, 21)
	if _, err := m.Apply(ops, nil); err != nil {
		t.Fatal(err)
	}
	m.Flush()
	st, live := m.Stats(), m.Counters()
	if live.CacheHits != st.CacheHits || live.CacheMisses != st.CacheMisses ||
		live.CacheEvictions != st.CacheEvictions || live.Writebacks != st.Writebacks ||
		live.CoalescedWrites != st.CoalescedWrites {
		t.Errorf("live cache counters %+v disagree with stats %+v", live, st)
	}
	if st.CacheEvictions == 0 {
		t.Error("8-line caches over a 128-line footprint must evict")
	}
	if st.CacheHits == 0 || st.CoalescedWrites == 0 {
		t.Errorf("hot workload produced no cache activity: %+v", st)
	}
}
