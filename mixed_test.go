package vcc

// Tests of the unified mixed read/write op-stream path (Apply): the
// oracle equivalence against the sequential engine, determinism across
// shard/worker counts, buffer-aliasing rules and the zero-allocation
// guarantee of the steady-state write path.

import (
	"bytes"
	"testing"

	"repro/internal/prng"
)

// mixedOps builds a deterministic interleaved read/write stream over
// lines, with every write carrying fresh data and every third read
// bringing its own destination buffer.
func mixedOps(n, lines int, seed uint64) []Op {
	rng := prng.NewFrom(seed, "mixed-ops")
	ops := make([]Op, n)
	for i := range ops {
		line := rng.Intn(lines)
		if rng.Float64() < 0.4 {
			ops[i] = Op{Kind: OpRead, Line: line}
			if i%3 == 0 {
				ops[i].Data = make([]byte, LineSize)
			}
		} else {
			data := make([]byte, LineSize)
			rng.Fill(data)
			ops[i] = Op{Kind: OpWrite, Line: line, Data: data}
		}
	}
	return ops
}

// TestMixedApplyOracle is the acceptance criterion: a mixed Apply batch
// on a one-shard ShardedMemory must be bit-identical — per-op SAW
// counts, read plaintexts, final Stats and final memory contents — to
// the same ops replayed one at a time through the sequential vcc.Memory.
func TestMixedApplyOracle(t *testing.T) {
	const lines = 256
	cfg := fullConfig(lines, 21)
	seq, err := NewMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedMemory(shardedFrom(cfg, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	ops := mixedOps(3000, lines, 77)

	// The sharded engine sees the ops in batches of varying size; the
	// oracle replays them strictly sequentially.
	for off := 0; off < len(ops); {
		n := 1 + (off*7)%64
		if off+n > len(ops) {
			n = len(ops) - off
		}
		batch := ops[off : off+n]
		outs, err := sh.Apply(batch, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			op := &batch[i]
			if op.Kind == OpWrite {
				saw, err := seq.Write(op.Line, op.Data)
				if err != nil {
					t.Fatal(err)
				}
				if outs[i].SAWCells != saw {
					t.Fatalf("op %d: Apply SAW %d, oracle %d", off+i, outs[i].SAWCells, saw)
				}
				continue
			}
			want, err := seq.Read(op.Line, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(outs[i].Data, want) {
				t.Fatalf("op %d: read plaintext diverges from oracle", off+i)
			}
			if op.Data != nil && &outs[i].Data[0] != &op.Data[0] {
				t.Fatalf("op %d: outcome does not alias the provided read buffer", off+i)
			}
		}
		off += n
	}

	if got, want := sh.Stats(), seq.Stats(); got != want {
		t.Errorf("stats diverge:\nsharded    %+v\nsequential %+v", got, want)
	}
	if got := sh.Stats().LineReads; got == 0 {
		t.Error("LineReads not counted on the mixed path")
	}
	for l := 0; l < lines; l++ {
		a, err := seq.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sh.Read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("line %d contents diverge", l)
		}
	}
}

// TestMixedApplyDeterministic: the same mixed op stream produces
// identical outcomes and stats at any worker count, for several shard
// counts (run under -race this is also the mixed-path concurrency
// check).
func TestMixedApplyDeterministic(t *testing.T) {
	const lines = 300
	for _, shards := range []int{2, 3, 8} {
		var refStats Stats
		var refOuts []Outcome
		var refData [][]byte
		for _, workers := range []int{1, 4, 8} {
			m, err := NewShardedMemory(ShardedMemoryConfig{
				Lines: lines, Shards: shards, Workers: workers, Seed: 9, FaultRate: 1e-2,
				NewEncoder: func() Encoder { return NewVCCEncoder(256) },
			})
			if err != nil {
				t.Fatal(err)
			}
			ops := mixedOps(2000, lines, 5)
			outs, err := m.Apply(ops, nil)
			if err != nil {
				t.Fatal(err)
			}
			data := make([][]byte, len(outs))
			for i := range outs {
				if outs[i].Data != nil {
					data[i] = bytes.Clone(outs[i].Data)
				}
			}
			st := m.Stats()
			m.Close()
			if workers == 1 {
				refStats, refOuts, refData = st, outs, data
				continue
			}
			if st != refStats {
				t.Errorf("shards=%d workers=%d: stats %+v differ from 1-worker %+v",
					shards, workers, st, refStats)
			}
			for i := range outs {
				if outs[i].SAWCells != refOuts[i].SAWCells || !bytes.Equal(data[i], refData[i]) {
					t.Fatalf("shards=%d workers=%d: op %d outcome diverges", shards, workers, i)
				}
			}
		}
	}
}

// TestApplyValidation: malformed ops are rejected up front, leaving the
// engine untouched.
func TestApplyValidation(t *testing.T) {
	m, err := NewShardedMemory(ShardedMemoryConfig{Lines: 16, Shards: 2, Seed: 1,
		NewEncoder: func() Encoder { return NewFNWEncoder(16) }})
	if err != nil {
		t.Fatal(err)
	}
	good := make([]byte, LineSize)
	for _, tc := range []struct {
		name string
		ops  []Op
	}{
		{"line out of range", []Op{{Kind: OpWrite, Line: 16, Data: good}}},
		{"short write", []Op{{Kind: OpWrite, Line: 0, Data: make([]byte, 8)}}},
		{"short read buffer", []Op{{Kind: OpRead, Line: 0, Data: make([]byte, 8)}}},
		{"unknown kind", []Op{{Kind: 7, Line: 0, Data: good}}},
		{"late bad op", []Op{{Kind: OpWrite, Line: 0, Data: good}, {Kind: OpWrite, Line: -1, Data: good}}},
	} {
		if _, err := m.Apply(tc.ops, nil); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	if n := m.Stats().LineWrites; n != 0 {
		t.Errorf("rejected batches must not write; LineWrites = %d", n)
	}
}

// TestReadBatchReusesBuffers documents the ReadBatch aliasing contract:
// provided Dst buffers are used in place.
func TestReadBatchReusesBuffers(t *testing.T) {
	const lines = 64
	m, err := NewShardedMemory(ShardedMemoryConfig{Lines: lines, Shards: 4, Seed: 2,
		NewEncoder: func() Encoder { return NewFNWEncoder(16) }})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, lines)
	for l := 0; l < lines; l++ {
		data := make([]byte, LineSize)
		data[0], data[1] = byte(l), 0xA5
		want[l] = data
		if _, err := m.Write(l, data); err != nil {
			t.Fatal(err)
		}
	}
	reqs := make([]ReadRequest, lines)
	bufs := make([][]byte, lines)
	for l := range reqs {
		bufs[l] = make([]byte, LineSize)
		reqs[l] = ReadRequest{Line: l, Dst: bufs[l]}
	}
	out, err := m.ReadBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for l := range out {
		if &out[l][0] != &bufs[l][0] {
			t.Fatalf("line %d: ReadBatch result does not alias the provided Dst", l)
		}
		if !bytes.Equal(out[l], want[l]) {
			t.Fatalf("line %d: wrong plaintext", l)
		}
	}
}
