// Command benchreport runs the repository's key encode and engine
// benchmarks with a self-contained timing harness and writes a
// machine-readable JSON report (BENCH_<n>.json at the repo root is the
// per-PR perf trajectory). Every full run also appends one line to an
// append-only history (BENCH_HISTORY.jsonl: timestamp, git SHA, host
// fingerprint, results), and a diff mode compares a fresh run against a
// committed baseline with noise-aware thresholds — CI fails on large
// regressions instead of trusting the numbers in the snapshot.
//
// Usage:
//
//	go run ./cmd/benchreport                      # ~1s per benchmark, writes BENCH_9.json
//	go run ./cmd/benchreport -benchtime 1x        # one iteration each (CI smoke)
//	go run ./cmd/benchreport -benchtime 500ms -out /tmp/bench.json
//	go run ./cmd/benchreport -validate BENCH_9.json
//	go run ./cmd/benchreport -validate summary.json        # a cmd/loadgen summary
//	go run ./cmd/benchreport -diff BENCH_8.json -in BENCH_9.json
//	go run ./cmd/benchreport -loadgen summary.json         # embed served-engine numbers
//	go run ./cmd/benchreport -profile -match encode/vcc_gen256 -topn 10
//
// The report includes the fast-vs-reference encode and line-decode
// pairs plus reduced-horizon scenario-campaign summaries (-campaigns)
// and, with -loadgen, a cmd/loadgen served-engine summary, so the perf
// trajectory, the lifetime-extension trajectory and the network-path
// throughput ride the same diff gate. Headline named metrics: the VCC MLC energy+SAW encode
// speedup (speedup_vcc_mlc_energy_saw, the nibble-table PR's >= 3.3x
// acceptance), the stored-ROM SLC encode speedup
// (speedup_vcc_stored_slc_energy_saw, the line-batched pipeline PR's
// >= 2.5x acceptance), the stored line-decode speedup, and the
// engine-scoped per-line write cost. -profile captures a pprof CPU
// profile per benchmark and prints a top-N hot-function table (decoded
// in-process, no external tooling), so "what is hot now" is one command
// away and optimization claims can cite profiles instead of guesses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	vcc "repro"
	"repro/internal/bitutil"
	"repro/internal/campaign"
	"repro/internal/coset"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Host is the machine fingerprint attached to reports and history
// entries. Absolute ns/op numbers are only comparable between runs
// whose fingerprints match; ratio metrics (speedups, allocs) gate
// across hosts.
type Host struct {
	Hostname  string `json:"hostname"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

func hostFingerprint() Host {
	hn, err := os.Hostname()
	if err != nil {
		hn = "unknown"
	}
	return Host{
		Hostname:  hn,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Report is the full JSON document.
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Host      Host     `json:"host"`
	GitSHA    string   `json:"git_sha,omitempty"`
	Timestamp string   `json:"timestamp,omitempty"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
	// SpeedupVCCMLCEnergySAW is ref/fast ns/op of the VCC MLC energy+SAW
	// encode microbenchmark — the fast-path PR's acceptance metric.
	SpeedupVCCMLCEnergySAW float64 `json:"speedup_vcc_mlc_energy_saw,omitempty"`
	// SpeedupVCCStoredSLCEnergySAW is ref/fast on the stored-ROM SLC
	// energy+SAW encode — the stored-kernel fast-scan acceptance metric
	// (required >= 2.5x by the line-batched pipeline PR).
	SpeedupVCCStoredSLCEnergySAW float64 `json:"speedup_vcc_stored_slc_energy_saw,omitempty"`
	// SpeedupDecodeStored is ref/fast on the stored-codec line decode
	// (DecodeWords vs a per-word Decode loop over the same 8-word lines).
	SpeedupDecodeStored float64 `json:"speedup_decode_stored,omitempty"`
	// EngineWriteNsPerLine is the engine-scoped write cost: apply_write
	// shards=1 ns/op divided by the batch's line count. Host-dependent
	// like any absolute time; the diff gate compares it only through the
	// same-host ns/op rules on the underlying result.
	EngineWriteNsPerLine float64 `json:"engine_write_ns_per_line,omitempty"`
	// Campaigns embeds reduced-horizon scenario-campaign summaries
	// (keyed by campaign name, then by the scenario's summary scalars)
	// so lifetime-extension and model-error trajectories ride the same
	// report and diff gate as the timing results.
	Campaigns map[string]map[string]float64 `json:"campaigns,omitempty"`
	// Loadgen embeds a cmd/loadgen summary (-loadgen flag) verbatim, so
	// served-engine throughput and tail latency ride the same snapshot
	// and diff gate as the in-process numbers. Kept raw: loadgen owns
	// its schema, benchreport only reads the gated subset.
	Loadgen json.RawMessage `json:"loadgen,omitempty"`
}

// historyEntry is one line of the append-only BENCH_HISTORY.jsonl run
// log: everything needed to place a measurement in the perf trajectory
// without trusting the mutable snapshot files.
type historyEntry struct {
	Time                         string                        `json:"time"`
	GitSHA                       string                        `json:"git_sha"`
	Host                         Host                          `json:"host"`
	BenchTime                    string                        `json:"benchtime"`
	Snapshot                     string                        `json:"snapshot"`
	Results                      []Result                      `json:"results"`
	SpeedupVCCMLCEnergySAW       float64                       `json:"speedup_vcc_mlc_energy_saw,omitempty"`
	SpeedupVCCStoredSLCEnergySAW float64                       `json:"speedup_vcc_stored_slc_energy_saw,omitempty"`
	SpeedupDecodeStored          float64                       `json:"speedup_decode_stored,omitempty"`
	EngineWriteNsPerLine         float64                       `json:"engine_write_ns_per_line,omitempty"`
	Campaigns                    map[string]map[string]float64 `json:"campaigns,omitempty"`
	Loadgen                      json.RawMessage               `json:"loadgen,omitempty"`
}

// gitSHA best-effort resolves HEAD, with a "-dirty" suffix when the
// working tree has uncommitted changes (a measurement of code that is
// not exactly any commit). History entries record "unknown" outside a
// git checkout rather than failing the run.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		sha += "-dirty"
	}
	return sha
}

// appendHistory appends one JSON line to the run history. The file is
// append-only by contract: existing lines are never rewritten, so the
// trajectory survives snapshot overwrites.
func appendHistory(path string, e historyEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchtime is either a fixed iteration count (1x mode) or a target
// duration the harness calibrates against.
type benchtime struct {
	iters int
	dur   time.Duration
}

func parseBenchtime(s string) (benchtime, error) {
	if strings.HasSuffix(s, "x") {
		n, err := strconv.Atoi(strings.TrimSuffix(s, "x"))
		if err != nil || n < 1 {
			return benchtime{}, fmt.Errorf("bad iteration count %q", s)
		}
		return benchtime{iters: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return benchtime{}, fmt.Errorf("bad duration %q", s)
	}
	return benchtime{dur: d}, nil
}

// measure times fn(n) like testing.B: one warm-up iteration (scratch
// pools, caches, dispatch plans), then either the fixed iteration count
// or geometric scaling until the target duration is met. Allocations
// come from MemStats deltas around the timed run.
func measure(bt benchtime, bytesPerOp int64, fn func(n int)) Result {
	fn(1) // warm
	run := func(n int) (time.Duration, uint64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return elapsed, after.Mallocs - before.Mallocs
	}
	n := 1
	if bt.iters > 0 {
		n = bt.iters
	}
	for {
		elapsed, mallocs := run(n)
		if bt.iters > 0 || elapsed >= bt.dur || n >= 1<<30 {
			r := Result{
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(mallocs) / float64(n),
			}
			if bytesPerOp > 0 && elapsed > 0 {
				r.MBPerS = float64(bytesPerOp) * float64(n) / 1e6 / elapsed.Seconds()
			}
			return r
		}
		// Scale toward the target like the testing package: aim 20%
		// past, capped at 100x per step.
		grow := int(1.2 * float64(bt.dur) / float64(elapsed) * float64(n))
		if grow > 100*n {
			grow = 100 * n
		}
		if grow <= n {
			grow = n + 1
		}
		n = grow
	}
}

// bench is one registered benchmark.
type bench struct {
	name    string
	bytes   int64
	prepare func() func(n int)
}

// encodeBench builds an encode-microbenchmark closure over a ring of
// randomized write contexts (stuck cells included), mirroring
// internal/coset's BenchmarkEncode.
func encodeBench(codec coset.Codec, n int, mlcPlane, slc, ref bool, obj coset.Objective) func() func(int) {
	return func() func(int) {
		const ringLen = 256
		rng := prng.New(1)
		mode := pcm.MLC
		if slc {
			mode = pcm.SLC
		}
		ctxs := make([]coset.Ctx, ringLen)
		data := make([]uint64, ringLen)
		for i := range ctxs {
			stuckSym := rng.Uint64() & rng.Uint64() & rng.Uint64() & bitutil.Mask(32)
			var stuckMask uint64
			if mode == pcm.MLC {
				stuckMask = bitutil.ExpandSymbolMask(stuckSym)
			} else {
				stuckMask = rng.Uint64() & rng.Uint64() & rng.Uint64()
			}
			ctxs[i] = coset.Ctx{
				N: n, Mode: mode, MLCPlane: mlcPlane,
				OldWord:   rng.Uint64(),
				NewLeft:   rng.Uint64() & bitutil.Mask(32),
				StuckMask: stuckMask,
				StuckVal:  rng.Uint64() & stuckMask,
				OldAux:    rng.Uint64() & 0xFFFF,
			}
			data[i] = rng.Uint64() & bitutil.Mask(n)
		}
		ev := coset.NewEvaluator(ctxs[0], obj)
		var sc coset.SlicedCtx
		encode := codec.Encode
		if ref {
			switch rc := codec.(type) {
			case *coset.VCC:
				encode = rc.EncodeRef
			case *coset.FNW:
				encode = rc.EncodeRef
			}
		} else if fc, ok := codec.(coset.FastCodec); ok {
			encode = func(d uint64, ev *coset.Evaluator) (uint64, uint64) {
				return fc.EncodeSliced(d, ev, &sc)
			}
		}
		var sink uint64
		return func(iters int) {
			for i := 0; i < iters; i++ {
				k := i & (ringLen - 1)
				ev.Reset(ctxs[k], obj)
				e, a := encode(data[k], ev)
				sink ^= e ^ a
			}
		}
	}
}

// decodeBench builds a line-decode closure over a ring of randomized
// stored lines (8 words each, encoder-independent synthesized aux with
// in-range kernel indices): fast drives the batched DecodeWords plan,
// ref the per-word Decode loop memctrl used before the line decoder.
func decodeBench(dec coset.LineDecoder, p, r int, ref bool) func() func(int) {
	return func() func(int) {
		const (
			ringLen      = 64
			wordsPerLine = 8
			total        = ringLen * wordsPerLine
		)
		rng := prng.New(9)
		enc := make([]uint64, total)
		aux := make([]uint64, total)
		left := make([]uint64, total)
		out := make([]uint64, wordsPerLine)
		for i := range enc {
			enc[i] = rng.Uint64()
			left[i] = rng.Uint64() & bitutil.Mask(32)
			aux[i] = (rng.Uint64()%uint64(r))<<uint(p) | rng.Uint64()&bitutil.Mask(p)
		}
		var sink uint64
		return func(iters int) {
			for i := 0; i < iters; i++ {
				k := (i & (ringLen - 1)) * wordsPerLine
				if ref {
					for w := 0; w < wordsPerLine; w++ {
						out[w] = dec.Decode(enc[k+w], aux[k+w], left[k+w])
					}
				} else {
					dec.DecodeWords(enc[k:k+wordsPerLine], aux[k:k+wordsPerLine],
						left[k:k+wordsPerLine], out)
				}
				sink ^= out[0]
			}
		}
	}
}

// engineBench builds a mixed Apply-loop closure over a sharded engine.
func engineBench(cfg vcc.ShardedMemoryConfig, readFrac float64, batch int) func() func(int) {
	return func() func(int) {
		mem, err := vcc.NewShardedMemory(cfg)
		if err != nil {
			panic(err)
		}
		rng := prng.New(3)
		zipf := workload.NewZipfHot(cfg.Lines, 1.3, prng.NewFrom(1, "benchreport-zipf"))
		zrng := prng.NewFrom(1, "benchreport-lines")
		ops := make([]vcc.Op, batch)
		for i := range ops {
			data := make([]byte, vcc.LineSize)
			rng.Fill(data)
			kind := vcc.OpWrite
			if rng.Float64() < readFrac {
				kind = vcc.OpRead
			}
			line := (i * 7) % cfg.Lines
			if cfg.CacheLines > 0 {
				line = int(zipf.NextLine(zrng))
			}
			ops[i] = vcc.Op{Kind: kind, Line: line, Data: data}
		}
		outs := make([]vcc.Outcome, batch)
		return func(iters int) {
			for i := 0; i < iters; i++ {
				var err error
				if outs, err = mem.Apply(ops, outs); err != nil {
					panic(err)
				}
			}
		}
	}
}

// asyncBench builds a pipelined Submit/Wait closure (depth slots).
func asyncBench(cfg vcc.ShardedMemoryConfig, depth, batch int) func() func(int) {
	return func() func(int) {
		mem, err := vcc.NewShardedMemory(cfg)
		if err != nil {
			panic(err)
		}
		sess := mem.Session()
		rng := prng.New(3)
		type slot struct {
			ops []vcc.Op
			out []vcc.Outcome
			tk  *vcc.Ticket
		}
		slots := make([]slot, depth)
		for s := range slots {
			slots[s].ops = make([]vcc.Op, batch)
			slots[s].out = make([]vcc.Outcome, batch)
			for i := range slots[s].ops {
				data := make([]byte, vcc.LineSize)
				rng.Fill(data)
				kind := vcc.OpWrite
				if rng.Float64() < 0.5 {
					kind = vcc.OpRead
				}
				slots[s].ops[i] = vcc.Op{Kind: kind, Line: (s*batch + i*7) % cfg.Lines, Data: data}
			}
		}
		return func(iters int) {
			for i := 0; i < iters; i++ {
				sl := &slots[i%depth]
				if sl.tk != nil {
					if _, err := sl.tk.Wait(); err != nil {
						panic(err)
					}
				}
				tk, err := sess.Submit(sl.ops, sl.out)
				if err != nil {
					panic(err)
				}
				sl.tk = tk
			}
			for s := range slots {
				if slots[s].tk != nil {
					if _, err := slots[s].tk.Wait(); err != nil {
						panic(err)
					}
					slots[s].tk = nil
				}
			}
		}
	}
}

func benches() []bench {
	const (
		batch = 1024
		lines = 1 << 13
	)
	objES := coset.ObjEnergySAW
	mkShard := func(shards, cacheLines int, policy vcc.CachePolicy) vcc.ShardedMemoryConfig {
		return vcc.ShardedMemoryConfig{
			Lines: lines, Shards: shards, Workers: shards, Seed: 1,
			CacheLines: cacheLines, CachePolicy: policy,
		}
	}
	return []bench{
		// Encode microbenchmarks: the fast-path acceptance pairs.
		{"encode/vcc_gen256/mlc/energy_saw/fast", 0,
			encodeBench(coset.NewVCCGenerated(16, 256), 32, true, false, false, objES)},
		{"encode/vcc_gen256/mlc/energy_saw/ref", 0,
			encodeBench(coset.NewVCCGenerated(16, 256), 32, true, false, true, objES)},
		{"encode/vcc_stored256/slc/energy_saw/fast", 0,
			encodeBench(coset.NewVCCStored(64, 16, 256, 1), 64, false, true, false, objES)},
		{"encode/vcc_stored256/slc/energy_saw/ref", 0,
			encodeBench(coset.NewVCCStored(64, 16, 256, 1), 64, false, true, true, objES)},
		{"encode/fnw16/mlc/energy_saw/fast", 0,
			encodeBench(coset.NewFNW(64, 16), 64, false, false, false, objES)},
		{"encode/fnw16/mlc/energy_saw/ref", 0,
			encodeBench(coset.NewFNW(64, 16), 64, false, false, true, objES)},
		{"encode/rcc256/mlc/energy_saw", 0,
			encodeBench(coset.NewRCC(64, 256, 1), 64, false, false, false, objES)},
		{"encode/flipcy/mlc/energy_saw", 0,
			encodeBench(coset.NewFlipcy(64), 64, false, false, false, objES)},

		// Decode microbenchmarks: the line-decode pairs (DecodeWords vs
		// the per-word loop the controller read path replaced).
		{"decode/vcc_stored256/line/fast", 0,
			decodeBench(coset.NewVCCStored(64, 16, 256, 1), 4, 16, false)},
		{"decode/vcc_stored256/line/ref", 0,
			decodeBench(coset.NewVCCStored(64, 16, 256, 1), 4, 16, true)},
		{"decode/vcc_gen256/line/fast", 0,
			decodeBench(coset.NewVCCGenerated(16, 256), 2, 64, false)},
		{"decode/vcc_gen256/line/ref", 0,
			decodeBench(coset.NewVCCGenerated(16, 256), 2, 64, true)},

		// Engine benchmarks (bytes/op = one batch of 64-byte lines).
		{"engine/apply_write/vcc256/shards=1", batch * vcc.LineSize,
			engineBench(mkShard(1, 0, vcc.WriteThrough), 0, batch)},
		{"engine/apply_write/vcc256/shards=4", batch * vcc.LineSize,
			engineBench(mkShard(4, 0, vcc.WriteThrough), 0, batch)},
		{"engine/apply_mixed/readfrac=0.5/shards=4", batch * vcc.LineSize,
			engineBench(mkShard(4, 0, vcc.WriteThrough), 0.5, batch)},
		{"engine/apply_cached/writeback/zipf/shards=4", batch * vcc.LineSize,
			engineBench(mkShard(4, 512, vcc.WriteBack), 0.75, batch)},
		{"engine/submit_async/depth=4/shards=4", batch * vcc.LineSize,
			asyncBench(mkShard(4, 0, vcc.WriteThrough), 4, batch)},
	}
}

// loadgenSummary is the subset of cmd/loadgen's report (schema
// vccrepro-loadgen/*) the validate and diff gates read; the embedded
// document keeps every field loadgen wrote.
type loadgenSummary struct {
	Schema      string  `json:"schema"`
	Clients     int     `json:"clients"`
	Tenants     int     `json:"tenants"`
	Requests    int64   `json:"requests"`
	OpsDone     int64   `json:"ops_done"`
	ThroughputO float64 `json:"throughput_ops_per_sec"`
	// Final failures: requests that exhausted loadgen's retry budget
	// (with retries disabled, every failure). These gate cleanliness.
	ErrorResps int64 `json:"error_responses"`
	Transport  int64 `json:"transport_errors"`
	// Recovered failures (schema v2, loadgen -retries): retried busy,
	// device-error and transport faults that eventually succeeded.
	// They never fail a gate — surviving injected faults is the point
	// of a chaos run — but are surfaced for the trajectory.
	Retries     int64 `json:"retries"`
	BusyResps   int64 `json:"busy_responses"`
	DevErrResps int64 `json:"device_error_responses"`
	Reconnects  int64 `json:"reconnects"`
	Latency     struct {
		P50 uint64 `json:"p50_ns"`
		P95 uint64 `json:"p95_ns"`
		P99 uint64 `json:"p99_ns"`
	} `json:"latency_ns"`
}

// checkLoadgen parses and sanity-checks a loadgen summary blob: right
// schema family, a run that actually moved data, cleanly, with a
// coherent latency histogram. "Cleanly" means no FINAL failures —
// faults that loadgen's retry budget recovered (schema v2 counters)
// are fine, so a chaos smoke run that rode out injected device errors
// still validates.
func checkLoadgen(raw []byte) (loadgenSummary, error) {
	var s loadgenSummary
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, err
	}
	if !strings.HasPrefix(s.Schema, "vccrepro-loadgen") {
		return s, fmt.Errorf("schema %q is not a vccrepro-loadgen summary", s.Schema)
	}
	if s.OpsDone <= 0 || s.ThroughputO <= 0 {
		return s, fmt.Errorf("no completed ops (ops_done=%d, %.0f ops/s)", s.OpsDone, s.ThroughputO)
	}
	if s.ErrorResps != 0 || s.Transport != 0 {
		return s, fmt.Errorf("unclean run: %d error responses, %d transport errors",
			s.ErrorResps, s.Transport)
	}
	if s.Latency.P50 > s.Latency.P95 || s.Latency.P95 > s.Latency.P99 {
		return s, fmt.Errorf("non-monotone latency quantiles p50=%d p95=%d p99=%d",
			s.Latency.P50, s.Latency.P95, s.Latency.P99)
	}
	return s, nil
}

// validate checks either document family by schema: full bench reports
// and standalone cmd/loadgen summaries (the CI smoke runs
// `benchreport -validate summary.json` on the latter directly).
func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sniff struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(raw, &sniff); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if strings.HasPrefix(sniff.Schema, "vccrepro-loadgen") {
		s, err := checkLoadgen(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		recovered := ""
		if s.Retries > 0 {
			recovered = fmt.Sprintf(", recovered %d retries (%d busy, %d device-error, %d reconnects)",
				s.Retries, s.BusyResps, s.DevErrResps, s.Reconnects)
		}
		fmt.Printf("%s: ok (%d clients x %d tenants, %d ops, %.0f ops/s, schema %s%s)\n",
			path, s.Clients, s.Tenants, s.OpsDone, s.ThroughputO, s.Schema, recovered)
		return nil
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema == "" || len(rep.Results) == 0 {
		return fmt.Errorf("%s: missing schema or results", path)
	}
	for _, r := range rep.Results {
		if r.Name == "" || r.NsPerOp <= 0 || r.Iterations < 1 {
			return fmt.Errorf("%s: malformed result %+v", path, r)
		}
	}
	if rep.Loadgen != nil {
		if _, err := checkLoadgen(rep.Loadgen); err != nil {
			return fmt.Errorf("%s: embedded loadgen summary: %w", path, err)
		}
	}
	fmt.Printf("%s: ok (%d results, schema %s)\n", path, len(rep.Results), rep.Schema)
	return nil
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// speedupPairs derives every ref/fast ns-per-op ratio a report carries:
// for each ".../fast" result with a ".../ref" sibling, the ratio under
// the common prefix. Ratios are within-host and within-run, so they
// gate across machines where absolute ns/op cannot.
func speedupPairs(rep *Report) map[string]float64 {
	byName := map[string]Result{}
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	out := map[string]float64{}
	for _, r := range rep.Results {
		base, ok := strings.CutSuffix(r.Name, "/fast")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		if ref, ok := byName[base+"/ref"]; ok && ref.NsPerOp > 0 {
			out[base] = ref.NsPerOp / r.NsPerOp
		}
	}
	return out
}

// diffReports compares a fresh report against the committed baseline
// and returns the regressions found. Thresholds are noise-aware:
//
//   - encode allocs/op gates everywhere: an encode benchmark the
//     baseline holds at zero steady-state allocations must stay at zero
//     (crossing 0 → 1 is a code change, not noise). Engine benchmarks
//     are exempt — their per-op allocations amortize pool and pipeline
//     startup over the iteration count, so they shift with benchtime;
//   - ref/fast speedup ratios gate everywhere: within one run the two
//     sides share the machine, so the ratio is host-independent. A
//     fresh ratio below 1/3 of the baseline's (floored at 2x, so a
//     baseline blip can never demand the impossible) is a regression;
//   - absolute ns/op and MB/s gate only when the host fingerprint and
//     benchtime match the baseline's — cross-machine wall-clock
//     comparisons are meaningless — and then only on large movements
//     (2.5x plus a 50ns floor, far outside scheduler jitter).
func diffReports(base, fresh *Report) []string {
	var fails []string
	baseBy := map[string]Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	sameHost := base.Host == fresh.Host && base.BenchTime == fresh.BenchTime
	fmt.Printf("diff vs baseline (same host+benchtime: %v)\n", sameHost)
	for _, fr := range fresh.Results {
		br, ok := baseBy[fr.Name]
		if !ok {
			fmt.Printf("  %-48s new benchmark, no baseline\n", fr.Name)
			continue
		}
		status := "ok"
		if strings.HasPrefix(fr.Name, "encode/") && br.AllocsPerOp < 0.5 && fr.AllocsPerOp >= 1 {
			status = "ALLOC REGRESSION"
			fails = append(fails, fmt.Sprintf("%s: %.2f allocs/op, baseline 0",
				fr.Name, fr.AllocsPerOp))
		}
		if sameHost {
			if br.NsPerOp >= 50 && fr.NsPerOp > 2.5*br.NsPerOp+50 {
				status = "NS/OP REGRESSION"
				fails = append(fails, fmt.Sprintf("%s: %.0f ns/op, baseline %.0f",
					fr.Name, fr.NsPerOp, br.NsPerOp))
			}
			if br.MBPerS > 0 && fr.MBPerS > 0 && fr.MBPerS < br.MBPerS/2.5 {
				status = "MB/S REGRESSION"
				fails = append(fails, fmt.Sprintf("%s: %.1f MB/s, baseline %.1f",
					fr.Name, fr.MBPerS, br.MBPerS))
			}
		}
		fmt.Printf("  %-48s %10.1f ns/op (base %10.1f) %6.2f allocs (base %.2f)  %s\n",
			fr.Name, fr.NsPerOp, br.NsPerOp, fr.AllocsPerOp, br.AllocsPerOp, status)
	}
	baseSp, freshSp := speedupPairs(base), speedupPairs(fresh)
	for name, bs := range baseSp {
		fs, ok := freshSp[name]
		if !ok {
			continue
		}
		floor := bs / 3
		if floor < 2 {
			floor = 2
		}
		status := "ok"
		if bs >= 2 && fs < floor {
			status = "SPEEDUP REGRESSION"
			fails = append(fails, fmt.Sprintf("%s: ref/fast %.2fx, baseline %.2fx (floor %.2fx)",
				name, fs, bs, floor))
		}
		fmt.Printf("  speedup %-40s %6.2fx (base %6.2fx, floor %5.2fx)  %s\n",
			name, fs, bs, floor, status)
	}
	fails = append(fails, diffCampaigns(base, fresh)...)
	fails = append(fails, diffLoadgen(base, fresh, sameHost)...)
	return fails
}

// diffLoadgen gates the embedded served-engine summary. A fresh report
// without one is fine (not every run serves the engine), and a baseline
// without one — every BENCH_*.json before the subsystem existed — makes
// the metrics "new, no baseline", never a failure. Cleanliness gates on
// the fresh side alone: error responses, transport errors, or zero
// completed ops are protocol failures regardless of baseline. Absolute
// throughput gates only same-host, with the same 2.5x movement floor as
// ns/op; tail latencies print for the trajectory but do not gate (they
// move with client count and pacing, not just code).
func diffLoadgen(base, fresh *Report, sameHost bool) []string {
	if fresh.Loadgen == nil {
		return nil
	}
	var fails []string
	var fs loadgenSummary
	if err := json.Unmarshal(fresh.Loadgen, &fs); err != nil {
		return []string{fmt.Sprintf("loadgen: embedded summary unreadable: %v", err)}
	}
	if fs.ErrorResps != 0 || fs.Transport != 0 || fs.OpsDone <= 0 {
		fails = append(fails, fmt.Sprintf("loadgen: unclean run (%d error responses, %d transport errors, %d ops)",
			fs.ErrorResps, fs.Transport, fs.OpsDone))
	}
	if base.Loadgen == nil {
		fmt.Printf("  loadgen %-39s %8.0f ops/s p99=%dns  new, no baseline\n",
			"throughput", fs.ThroughputO, fs.Latency.P99)
		return fails
	}
	var bs loadgenSummary
	if err := json.Unmarshal(base.Loadgen, &bs); err != nil {
		fmt.Printf("  loadgen %-39s baseline summary unreadable, skipping\n", "throughput")
		return fails
	}
	status := "ok"
	if sameHost && bs.ThroughputO > 0 && fs.ThroughputO < bs.ThroughputO/2.5 {
		status = "THROUGHPUT REGRESSION"
		fails = append(fails, fmt.Sprintf("loadgen: %.0f ops/s, baseline %.0f",
			fs.ThroughputO, bs.ThroughputO))
	}
	fmt.Printf("  loadgen %-39s %8.0f ops/s (base %8.0f) p99=%dns (base %dns)  %s\n",
		"throughput", fs.ThroughputO, bs.ThroughputO, fs.Latency.P99, bs.Latency.P99, status)
	return fails
}

// diffCampaigns gates the scenario-campaign summaries a report embeds.
// Campaigns or metrics absent from the baseline never fail the gate —
// BENCH_*.json files from before the embedding must keep passing — and
// neither does a campaign the fresh run skipped; only movements on
// metrics present on both sides fail, plus fresh-side verification
// violations, which are an absolute invariant:
//
//   - lifetime-extension metrics (wear-leveling "extension", fault-aging
//     "ext_measured_final") must not fall below half the baseline (both
//     are deterministic ratios > 1 when healthy, so a halving is a code
//     change, not seed noise);
//   - the fault-aging analytic-model error "rel_err_final" must not grow
//     past twice the baseline plus a 0.02 absolute floor;
//   - "verify_violations" must be zero wherever the fresh run reports it.
func diffCampaigns(base, fresh *Report) []string {
	var fails []string
	names := make([]string, 0, len(fresh.Campaigns))
	for name := range fresh.Campaigns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fsum := fresh.Campaigns[name]
		if v, ok := fsum["verify_violations"]; ok && v != 0 {
			fails = append(fails, fmt.Sprintf("campaign %s: %g verification violations", name, v))
		}
		bsum, ok := base.Campaigns[name]
		if !ok {
			fmt.Printf("  campaign %-38s new, no baseline\n", name)
			continue
		}
		for _, key := range []string{"extension", "ext_measured_final"} {
			bv, okb := bsum[key]
			fv, okf := fsum[key]
			if !okf {
				continue
			}
			status := "ok"
			if !okb {
				status = "no baseline metric"
			} else if bv >= 1 && fv < bv/2 {
				status = "LIFETIME REGRESSION"
				fails = append(fails, fmt.Sprintf("campaign %s: %s %.3f, baseline %.3f",
					name, key, fv, bv))
			}
			fmt.Printf("  campaign %-38s %8.3f (base %8.3f)  %s\n",
				name+"/"+key, fv, bv, status)
		}
		if fv, okf := fsum["rel_err_final"]; okf {
			bv, okb := bsum["rel_err_final"]
			status := "ok"
			if !okb {
				status = "no baseline metric"
			} else if fv > 2*bv+0.02 {
				status = "MODEL ERROR REGRESSION"
				fails = append(fails, fmt.Sprintf("campaign %s: rel_err_final %.4f, baseline %.4f",
					name, fv, bv))
			}
			fmt.Printf("  campaign %-38s %8.4f (base %8.4f)  %s\n",
				name+"/rel_err_final", fv, bv, status)
		}
	}
	return fails
}

// runProfiles executes each selected benchmark under the CPU profiler
// for ~300ms, writes the raw .pprof next to nothing the repo tracks,
// and prints the decoded top-N hot-function table — the loop that
// drove the nibble-table optimization, kept runnable so it cannot rot.
func runProfiles(bs []bench, dir string, topN int) error {
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "benchprofiles"); err != nil {
			return err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	clean := strings.NewReplacer("/", "_", "=", "_", ".", "_")
	for _, b := range bs {
		fn := b.prepare()
		fn(1) // warm: scratch pools, caches, dispatch plans
		path := filepath.Join(dir, clean.Replace(b.name)+".pprof")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		start := time.Now()
		for n := 1; time.Since(start) < 300*time.Millisecond; {
			fn(n)
			if n < 1<<20 {
				n <<= 1
			}
		}
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		funcs, err := parseCPUProfile(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		printHotFuncs(os.Stdout, b.name, funcs, topN)
		fmt.Printf("  raw profile: %s\n", path)
	}
	return nil
}

// matchBenches filters the registry by substring, preserving order.
func matchBenches(bs []bench, substr string) []bench {
	if substr == "" {
		return bs
	}
	var out []bench
	for _, b := range bs {
		if strings.Contains(b.name, substr) {
			out = append(out, b)
		}
	}
	return out
}

// campaignSummaries runs the named scenario campaigns (comma-separated)
// at a reduced horizon and returns their summary scalars for embedding.
func campaignSummaries(names string, horizon int64) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		res, err := campaign.Run(n, campaign.Params{Seed: 1, Shards: 1, Horizon: horizon})
		if err != nil {
			return nil, err
		}
		out[n] = res.Summary
	}
	return out, nil
}

func main() {
	btFlag := flag.String("benchtime", "1s", "per-benchmark target: a duration (1s) or fixed iterations (1x)")
	out := flag.String("out", "BENCH_9.json", "output path for the JSON report")
	validatePath := flag.String("validate", "", "validate an existing report instead of running")
	diffBase := flag.String("diff", "", "baseline report to diff a fresh report (-in) against; exits nonzero on regression")
	inPath := flag.String("in", "", "fresh report consumed by -diff")
	historyPath := flag.String("history", "BENCH_HISTORY.jsonl", "append-only run history (empty disables)")
	profileFlag := flag.Bool("profile", false, "capture a pprof CPU profile per benchmark and print top-N hot functions instead of timing")
	profileDir := flag.String("profiledir", "", "directory for raw .pprof files (default: a fresh temp dir)")
	topN := flag.Int("topn", 10, "rows in each -profile hot-function table")
	match := flag.String("match", "", "only run benchmarks whose name contains this substring")
	campaigns := flag.String("campaigns", "fault-aging,wearlevel-rotation",
		"scenario campaigns to run at reduced horizon and embed in the report (empty disables)")
	campHorizon := flag.Int64("campaignhorizon", 20000, "op-budget override for embedded campaigns")
	loadgenPath := flag.String("loadgen", "", "embed a cmd/loadgen -json summary into the report (empty disables)")
	flag.Parse()

	if *validatePath != "" {
		if err := validate(*validatePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	if *diffBase != "" {
		if *inPath == "" {
			fmt.Fprintln(os.Stderr, "benchreport: -diff requires -in FRESH_REPORT")
			os.Exit(2)
		}
		base, err := loadReport(*diffBase)
		if err == nil {
			var fresh *Report
			if fresh, err = loadReport(*inPath); err == nil {
				if fails := diffReports(base, fresh); len(fails) > 0 {
					for _, f := range fails {
						fmt.Fprintln(os.Stderr, "benchreport: REGRESSION:", f)
					}
					os.Exit(1)
				}
				fmt.Println("diff: no regressions")
				return
			}
		}
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	selected := matchBenches(benches(), *match)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "benchreport: no benchmark matches %q\n", *match)
		os.Exit(2)
	}

	if *profileFlag {
		if err := runProfiles(selected, *profileDir, *topN); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	bt, err := parseBenchtime(*btFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	host := hostFingerprint()
	rep := Report{
		Schema:    "vccrepro-bench/v2",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Host:      host,
		GitSHA:    gitSHA(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		BenchTime: *btFlag,
	}
	byName := map[string]Result{}
	for _, b := range selected {
		fn := b.prepare()
		r := measure(bt, b.bytes, fn)
		r.Name = b.name
		rep.Results = append(rep.Results, r)
		byName[b.name] = r
		if r.MBPerS > 0 {
			fmt.Printf("%-48s %12.1f ns/op %8.2f allocs/op %10.2f MB/s\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.MBPerS)
		} else {
			fmt.Printf("%-48s %12.1f ns/op %8.2f allocs/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp)
		}
	}
	speedupOf := func(prefix string) float64 {
		fast, okF := byName[prefix+"/fast"]
		ref, okR := byName[prefix+"/ref"]
		if !okF || !okR || fast.NsPerOp <= 0 {
			return 0
		}
		return ref.NsPerOp / fast.NsPerOp
	}
	if s := speedupOf("encode/vcc_gen256/mlc/energy_saw"); s > 0 {
		rep.SpeedupVCCMLCEnergySAW = s
		fmt.Printf("%-48s %12.2fx\n", "speedup: vcc mlc energy+saw (ref/fast)", s)
	}
	if s := speedupOf("encode/vcc_stored256/slc/energy_saw"); s > 0 {
		rep.SpeedupVCCStoredSLCEnergySAW = s
		fmt.Printf("%-48s %12.2fx\n", "speedup: vcc stored slc energy+saw (ref/fast)", s)
	}
	if s := speedupOf("decode/vcc_stored256/line"); s > 0 {
		rep.SpeedupDecodeStored = s
		fmt.Printf("%-48s %12.2fx\n", "speedup: stored line decode (ref/fast)", s)
	}
	if r, ok := byName["engine/apply_write/vcc256/shards=1"]; ok && r.NsPerOp > 0 {
		rep.EngineWriteNsPerLine = r.NsPerOp / 1024 // batch lines per op
		fmt.Printf("%-48s %12.1f ns\n", "engine: write cost per 64-byte line", rep.EngineWriteNsPerLine)
	}
	if *loadgenPath != "" {
		raw, err := os.ReadFile(*loadgenPath)
		if err == nil {
			var s loadgenSummary
			if s, err = checkLoadgen(raw); err == nil {
				rep.Loadgen = json.RawMessage(raw)
				fmt.Printf("%-48s %12.0f ops/s (p99 %dns)\n",
					"loadgen: served throughput", s.ThroughputO, s.Latency.P99)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -loadgen %s: %v\n", *loadgenPath, err)
			os.Exit(1)
		}
	}
	if *campaigns != "" {
		camps, err := campaignSummaries(*campaigns, *campHorizon)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Campaigns = camps
		cnames := make([]string, 0, len(camps))
		for n := range camps {
			cnames = append(cnames, n)
		}
		sort.Strings(cnames)
		for _, n := range cnames {
			keys := make([]string, 0, len(camps[n]))
			for k := range camps[n] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("%-48s %12.6g\n", "campaign: "+n+"/"+k, camps[n][k])
			}
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if *historyPath != "" {
		err := appendHistory(*historyPath, historyEntry{
			Time:                         rep.Timestamp,
			GitSHA:                       rep.GitSHA,
			Host:                         host,
			BenchTime:                    *btFlag,
			Snapshot:                     *out,
			Results:                      rep.Results,
			SpeedupVCCMLCEnergySAW:       rep.SpeedupVCCMLCEnergySAW,
			SpeedupVCCStoredSLCEnergySAW: rep.SpeedupVCCStoredSLCEnergySAW,
			SpeedupDecodeStored:          rep.SpeedupDecodeStored,
			EngineWriteNsPerLine:         rep.EngineWriteNsPerLine,
			Campaigns:                    rep.Campaigns,
			Loadgen:                      rep.Loadgen,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		fmt.Printf("appended %s\n", *historyPath)
	}
}
