// Command benchreport runs the repository's key encode and engine
// benchmarks with a self-contained timing harness and writes a
// machine-readable JSON report (BENCH_<n>.json at the repo root is the
// per-PR perf trajectory; CI runs `-benchtime 1x` as a smoke and
// validates the output parses).
//
// Usage:
//
//	go run ./cmd/benchreport                      # ~1s per benchmark, writes BENCH_5.json
//	go run ./cmd/benchreport -benchtime 1x        # one iteration each (CI smoke)
//	go run ./cmd/benchreport -benchtime 500ms -out /tmp/bench.json
//	go run ./cmd/benchreport -validate BENCH_5.json
//
// The report includes the fast-vs-reference encode pairs; the headline
// acceptance metric of the fast-path PR is the speedup on the VCC MLC
// energy+SAW encode (speedup_vcc_mlc_energy_saw), required >= 2x.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	vcc "repro"
	"repro/internal/bitutil"
	"repro/internal/coset"
	"repro/internal/pcm"
	"repro/internal/prng"
	"repro/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
	// SpeedupVCCMLCEnergySAW is ref/fast ns/op of the VCC MLC energy+SAW
	// encode microbenchmark — the fast-path PR's acceptance metric.
	SpeedupVCCMLCEnergySAW float64 `json:"speedup_vcc_mlc_energy_saw,omitempty"`
}

// benchtime is either a fixed iteration count (1x mode) or a target
// duration the harness calibrates against.
type benchtime struct {
	iters int
	dur   time.Duration
}

func parseBenchtime(s string) (benchtime, error) {
	if strings.HasSuffix(s, "x") {
		n, err := strconv.Atoi(strings.TrimSuffix(s, "x"))
		if err != nil || n < 1 {
			return benchtime{}, fmt.Errorf("bad iteration count %q", s)
		}
		return benchtime{iters: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return benchtime{}, fmt.Errorf("bad duration %q", s)
	}
	return benchtime{dur: d}, nil
}

// measure times fn(n) like testing.B: one warm-up iteration (scratch
// pools, caches, dispatch plans), then either the fixed iteration count
// or geometric scaling until the target duration is met. Allocations
// come from MemStats deltas around the timed run.
func measure(bt benchtime, bytesPerOp int64, fn func(n int)) Result {
	fn(1) // warm
	run := func(n int) (time.Duration, uint64) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return elapsed, after.Mallocs - before.Mallocs
	}
	n := 1
	if bt.iters > 0 {
		n = bt.iters
	}
	for {
		elapsed, mallocs := run(n)
		if bt.iters > 0 || elapsed >= bt.dur || n >= 1<<30 {
			r := Result{
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(mallocs) / float64(n),
			}
			if bytesPerOp > 0 && elapsed > 0 {
				r.MBPerS = float64(bytesPerOp) * float64(n) / 1e6 / elapsed.Seconds()
			}
			return r
		}
		// Scale toward the target like the testing package: aim 20%
		// past, capped at 100x per step.
		grow := int(1.2 * float64(bt.dur) / float64(elapsed) * float64(n))
		if grow > 100*n {
			grow = 100 * n
		}
		if grow <= n {
			grow = n + 1
		}
		n = grow
	}
}

// bench is one registered benchmark.
type bench struct {
	name    string
	bytes   int64
	prepare func() func(n int)
}

// encodeBench builds an encode-microbenchmark closure over a ring of
// randomized write contexts (stuck cells included), mirroring
// internal/coset's BenchmarkEncode.
func encodeBench(codec coset.Codec, n int, mlcPlane, slc, ref bool, obj coset.Objective) func() func(int) {
	return func() func(int) {
		const ringLen = 256
		rng := prng.New(1)
		mode := pcm.MLC
		if slc {
			mode = pcm.SLC
		}
		ctxs := make([]coset.Ctx, ringLen)
		data := make([]uint64, ringLen)
		for i := range ctxs {
			stuckSym := rng.Uint64() & rng.Uint64() & rng.Uint64() & bitutil.Mask(32)
			var stuckMask uint64
			if mode == pcm.MLC {
				stuckMask = bitutil.ExpandSymbolMask(stuckSym)
			} else {
				stuckMask = rng.Uint64() & rng.Uint64() & rng.Uint64()
			}
			ctxs[i] = coset.Ctx{
				N: n, Mode: mode, MLCPlane: mlcPlane,
				OldWord:   rng.Uint64(),
				NewLeft:   rng.Uint64() & bitutil.Mask(32),
				StuckMask: stuckMask,
				StuckVal:  rng.Uint64() & stuckMask,
				OldAux:    rng.Uint64() & 0xFFFF,
			}
			data[i] = rng.Uint64() & bitutil.Mask(n)
		}
		ev := coset.NewEvaluator(ctxs[0], obj)
		var sc coset.SlicedCtx
		encode := codec.Encode
		if ref {
			switch rc := codec.(type) {
			case *coset.VCC:
				encode = rc.EncodeRef
			case *coset.FNW:
				encode = rc.EncodeRef
			}
		} else if fc, ok := codec.(coset.FastCodec); ok {
			encode = func(d uint64, ev *coset.Evaluator) (uint64, uint64) {
				return fc.EncodeSliced(d, ev, &sc)
			}
		}
		var sink uint64
		return func(iters int) {
			for i := 0; i < iters; i++ {
				k := i & (ringLen - 1)
				ev.Reset(ctxs[k], obj)
				e, a := encode(data[k], ev)
				sink ^= e ^ a
			}
		}
	}
}

// engineBench builds a mixed Apply-loop closure over a sharded engine.
func engineBench(cfg vcc.ShardedMemoryConfig, readFrac float64, batch int) func() func(int) {
	return func() func(int) {
		mem, err := vcc.NewShardedMemory(cfg)
		if err != nil {
			panic(err)
		}
		rng := prng.New(3)
		zipf := workload.NewZipfHot(cfg.Lines, 1.3, prng.NewFrom(1, "benchreport-zipf"))
		zrng := prng.NewFrom(1, "benchreport-lines")
		ops := make([]vcc.Op, batch)
		for i := range ops {
			data := make([]byte, vcc.LineSize)
			rng.Fill(data)
			kind := vcc.OpWrite
			if rng.Float64() < readFrac {
				kind = vcc.OpRead
			}
			line := (i * 7) % cfg.Lines
			if cfg.CacheLines > 0 {
				line = int(zipf.NextLine(zrng))
			}
			ops[i] = vcc.Op{Kind: kind, Line: line, Data: data}
		}
		outs := make([]vcc.Outcome, batch)
		return func(iters int) {
			for i := 0; i < iters; i++ {
				var err error
				if outs, err = mem.Apply(ops, outs); err != nil {
					panic(err)
				}
			}
		}
	}
}

// asyncBench builds a pipelined Submit/Wait closure (depth slots).
func asyncBench(cfg vcc.ShardedMemoryConfig, depth, batch int) func() func(int) {
	return func() func(int) {
		mem, err := vcc.NewShardedMemory(cfg)
		if err != nil {
			panic(err)
		}
		sess := mem.Session()
		rng := prng.New(3)
		type slot struct {
			ops []vcc.Op
			out []vcc.Outcome
			tk  *vcc.Ticket
		}
		slots := make([]slot, depth)
		for s := range slots {
			slots[s].ops = make([]vcc.Op, batch)
			slots[s].out = make([]vcc.Outcome, batch)
			for i := range slots[s].ops {
				data := make([]byte, vcc.LineSize)
				rng.Fill(data)
				kind := vcc.OpWrite
				if rng.Float64() < 0.5 {
					kind = vcc.OpRead
				}
				slots[s].ops[i] = vcc.Op{Kind: kind, Line: (s*batch + i*7) % cfg.Lines, Data: data}
			}
		}
		return func(iters int) {
			for i := 0; i < iters; i++ {
				sl := &slots[i%depth]
				if sl.tk != nil {
					if _, err := sl.tk.Wait(); err != nil {
						panic(err)
					}
				}
				tk, err := sess.Submit(sl.ops, sl.out)
				if err != nil {
					panic(err)
				}
				sl.tk = tk
			}
			for s := range slots {
				if slots[s].tk != nil {
					if _, err := slots[s].tk.Wait(); err != nil {
						panic(err)
					}
					slots[s].tk = nil
				}
			}
		}
	}
}

func benches() []bench {
	const (
		batch = 1024
		lines = 1 << 13
	)
	objES := coset.ObjEnergySAW
	mkShard := func(shards, cacheLines int, policy vcc.CachePolicy) vcc.ShardedMemoryConfig {
		return vcc.ShardedMemoryConfig{
			Lines: lines, Shards: shards, Workers: shards, Seed: 1,
			CacheLines: cacheLines, CachePolicy: policy,
		}
	}
	return []bench{
		// Encode microbenchmarks: the fast-path acceptance pairs.
		{"encode/vcc_gen256/mlc/energy_saw/fast", 0,
			encodeBench(coset.NewVCCGenerated(16, 256), 32, true, false, false, objES)},
		{"encode/vcc_gen256/mlc/energy_saw/ref", 0,
			encodeBench(coset.NewVCCGenerated(16, 256), 32, true, false, true, objES)},
		{"encode/vcc_stored256/slc/energy_saw/fast", 0,
			encodeBench(coset.NewVCCStored(64, 16, 256, 1), 64, false, true, false, objES)},
		{"encode/vcc_stored256/slc/energy_saw/ref", 0,
			encodeBench(coset.NewVCCStored(64, 16, 256, 1), 64, false, true, true, objES)},
		{"encode/fnw16/mlc/energy_saw/fast", 0,
			encodeBench(coset.NewFNW(64, 16), 64, false, false, false, objES)},
		{"encode/fnw16/mlc/energy_saw/ref", 0,
			encodeBench(coset.NewFNW(64, 16), 64, false, false, true, objES)},
		{"encode/rcc256/mlc/energy_saw", 0,
			encodeBench(coset.NewRCC(64, 256, 1), 64, false, false, false, objES)},
		{"encode/flipcy/mlc/energy_saw", 0,
			encodeBench(coset.NewFlipcy(64), 64, false, false, false, objES)},

		// Engine benchmarks (bytes/op = one batch of 64-byte lines).
		{"engine/apply_write/vcc256/shards=1", batch * vcc.LineSize,
			engineBench(mkShard(1, 0, vcc.WriteThrough), 0, batch)},
		{"engine/apply_write/vcc256/shards=4", batch * vcc.LineSize,
			engineBench(mkShard(4, 0, vcc.WriteThrough), 0, batch)},
		{"engine/apply_mixed/readfrac=0.5/shards=4", batch * vcc.LineSize,
			engineBench(mkShard(4, 0, vcc.WriteThrough), 0.5, batch)},
		{"engine/apply_cached/writeback/zipf/shards=4", batch * vcc.LineSize,
			engineBench(mkShard(4, 512, vcc.WriteBack), 0.75, batch)},
		{"engine/submit_async/depth=4/shards=4", batch * vcc.LineSize,
			asyncBench(mkShard(4, 0, vcc.WriteThrough), 4, batch)},
	}
}

func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema == "" || len(rep.Results) == 0 {
		return fmt.Errorf("%s: missing schema or results", path)
	}
	for _, r := range rep.Results {
		if r.Name == "" || r.NsPerOp <= 0 || r.Iterations < 1 {
			return fmt.Errorf("%s: malformed result %+v", path, r)
		}
	}
	fmt.Printf("%s: ok (%d results, schema %s)\n", path, len(rep.Results), rep.Schema)
	return nil
}

func main() {
	btFlag := flag.String("benchtime", "1s", "per-benchmark target: a duration (1s) or fixed iterations (1x)")
	out := flag.String("out", "BENCH_5.json", "output path for the JSON report")
	validatePath := flag.String("validate", "", "validate an existing report instead of running")
	flag.Parse()

	if *validatePath != "" {
		if err := validate(*validatePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	bt, err := parseBenchtime(*btFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	rep := Report{
		Schema:    "vccrepro-bench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *btFlag,
	}
	byName := map[string]Result{}
	for _, b := range benches() {
		fn := b.prepare()
		r := measure(bt, b.bytes, fn)
		r.Name = b.name
		rep.Results = append(rep.Results, r)
		byName[b.name] = r
		if r.MBPerS > 0 {
			fmt.Printf("%-48s %12.1f ns/op %8.2f allocs/op %10.2f MB/s\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.MBPerS)
		} else {
			fmt.Printf("%-48s %12.1f ns/op %8.2f allocs/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp)
		}
	}
	if fast, ok := byName["encode/vcc_gen256/mlc/energy_saw/fast"]; ok {
		if ref, ok := byName["encode/vcc_gen256/mlc/energy_saw/ref"]; ok && fast.NsPerOp > 0 {
			rep.SpeedupVCCMLCEnergySAW = ref.NsPerOp / fast.NsPerOp
			fmt.Printf("%-48s %12.2fx\n", "speedup: vcc mlc energy+saw (ref/fast)", rep.SpeedupVCCMLCEnergySAW)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
