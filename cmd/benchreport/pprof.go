package main

// A minimal reader for the gzipped protobuf CPU profiles emitted by
// runtime/pprof, sufficient to attribute samples to functions and rank
// hot spots. The repository carries no external dependencies, so rather
// than import github.com/google/pprof this walks the wire format
// directly: profile.proto is stable and the four message types needed
// here (Profile, Sample, Location/Line, Function) have had fixed field
// numbers since the format was introduced.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// hotFunc is one row of the top-N table.
type hotFunc struct {
	Name   string
	FlatNs int64 // samples where the function is the leaf frame
	CumNs  int64 // samples where it appears anywhere on the stack
}

// pprofSample is one decoded Sample message.
type pprofSample struct {
	locIDs []uint64
	values []int64
}

// pprofLocation maps a location ID to its function names, innermost
// (inlined leaf) first, as runtime/pprof orders Line entries.
type pprofLocation struct {
	id    uint64
	funcs []uint64
}

// --- protobuf wire walking -------------------------------------------

// errTruncated is returned whenever a varint or length-delimited field
// runs past the end of the buffer.
var errTruncated = fmt.Errorf("pprof: truncated message")

func readVarint(b []byte, i int) (uint64, int, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if i >= len(b) {
			return 0, 0, errTruncated
		}
		c := b[i]
		i++
		v |= uint64(c&0x7F) << shift
		if c&0x80 == 0 {
			return v, i, nil
		}
	}
	return 0, 0, fmt.Errorf("pprof: varint overflow")
}

// walkFields iterates the top-level fields of one message, invoking fn
// with the field number and either the varint value (wire type 0) or
// the payload bytes (wire type 2). Fixed32/64 fields are skipped: the
// profile messages read here never use them.
func walkFields(b []byte, fn func(num int, varint uint64, payload []byte) error) error {
	i := 0
	for i < len(b) {
		key, ni, err := readVarint(b, i)
		if err != nil {
			return err
		}
		i = ni
		num, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, ni, err := readVarint(b, i)
			if err != nil {
				return err
			}
			i = ni
			if err := fn(num, v, nil); err != nil {
				return err
			}
		case 1:
			if i+8 > len(b) {
				return errTruncated
			}
			i += 8
		case 2:
			l, ni, err := readVarint(b, i)
			if err != nil {
				return err
			}
			i = ni
			if i+int(l) > len(b) || int(l) < 0 {
				return errTruncated
			}
			if err := fn(num, 0, b[i:i+int(l)]); err != nil {
				return err
			}
			i += int(l)
		case 5:
			if i+4 > len(b) {
				return errTruncated
			}
			i += 4
		default:
			return fmt.Errorf("pprof: unsupported wire type %d", wire)
		}
	}
	return nil
}

// packedUint64s decodes a repeated varint field that may arrive packed
// (payload) or as a single unpacked element (varint with nil payload).
func packedUint64s(dst []uint64, varint uint64, payload []byte) ([]uint64, error) {
	if payload == nil {
		return append(dst, varint), nil
	}
	for i := 0; i < len(payload); {
		v, ni, err := readVarint(payload, i)
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
		i = ni
	}
	return dst, nil
}

// --- profile decoding -------------------------------------------------

// parseCPUProfile decodes a gzipped runtime/pprof CPU profile into
// per-function flat/cumulative nanosecond totals. The last sample value
// is used (for CPU profiles the value types are [samples, cpu-ns]).
func parseCPUProfile(raw []byte) ([]hotFunc, error) {
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("pprof: not gzipped: %w", err)
	}
	buf, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}

	var (
		samples  []pprofSample
		locs     = map[uint64][]uint64{} // location id -> function ids
		funcName = map[uint64]int64{}    // function id -> string table index
		strtab   []string
	)
	err = walkFields(buf, func(num int, varint uint64, payload []byte) error {
		switch num {
		case 2: // Sample
			var s pprofSample
			err := walkFields(payload, func(n int, v uint64, p []byte) error {
				var err error
				switch n {
				case 1: // location_id
					s.locIDs, err = packedUint64s(s.locIDs, v, p)
				case 2: // value
					var vals []uint64
					vals, err = packedUint64s(nil, v, p)
					for _, u := range vals {
						s.values = append(s.values, int64(u))
					}
				}
				return err
			})
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case 4: // Location
			var loc pprofLocation
			err := walkFields(payload, func(n int, v uint64, p []byte) error {
				switch n {
				case 1: // id
					loc.id = v
				case 4: // Line
					return walkFields(p, func(ln int, lv uint64, _ []byte) error {
						if ln == 1 { // function_id
							loc.funcs = append(loc.funcs, lv)
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			locs[loc.id] = loc.funcs
		case 5: // Function
			var id uint64
			var name int64
			err := walkFields(payload, func(n int, v uint64, _ []byte) error {
				switch n {
				case 1:
					id = v
				case 2:
					name = int64(v)
				}
				return nil
			})
			if err != nil {
				return err
			}
			funcName[id] = name
		case 6: // string_table
			strtab = append(strtab, string(payload))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nameOf := func(fid uint64) string {
		idx := funcName[fid]
		if idx >= 0 && int(idx) < len(strtab) {
			return strtab[idx]
		}
		return fmt.Sprintf("func#%d", fid)
	}

	flat := map[string]int64{}
	cum := map[string]int64{}
	seen := map[string]bool{}
	for _, s := range samples {
		if len(s.values) == 0 || len(s.locIDs) == 0 {
			continue
		}
		ns := s.values[len(s.values)-1]
		// Leaf frame: first location, innermost inline line.
		if fs := locs[s.locIDs[0]]; len(fs) > 0 {
			flat[nameOf(fs[0])] += ns
		}
		// Cumulative: every distinct function on the stack, once.
		for k := range seen {
			delete(seen, k)
		}
		for _, lid := range s.locIDs {
			for _, fid := range locs[lid] {
				name := nameOf(fid)
				if !seen[name] {
					seen[name] = true
					cum[name] += ns
				}
			}
		}
	}

	out := make([]hotFunc, 0, len(cum))
	for name, c := range cum {
		out = append(out, hotFunc{Name: name, FlatNs: flat[name], CumNs: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FlatNs != out[j].FlatNs {
			return out[i].FlatNs > out[j].FlatNs
		}
		if out[i].CumNs != out[j].CumNs {
			return out[i].CumNs > out[j].CumNs
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// printHotFuncs renders the top-N hot-function table for one benchmark.
func printHotFuncs(w io.Writer, benchName string, funcs []hotFunc, topN int) {
	var total int64
	for _, f := range funcs {
		total += f.FlatNs
	}
	fmt.Fprintf(w, "profile %s: top %d hot functions (%.1fms sampled)\n",
		benchName, topN, float64(total)/1e6)
	if total == 0 {
		fmt.Fprintf(w, "  (no samples: run too short for the 10ms profiler tick)\n")
		return
	}
	n := topN
	if n > len(funcs) {
		n = len(funcs)
	}
	fmt.Fprintf(w, "  %10s %6s  %10s %6s  %s\n", "flat(ms)", "flat%", "cum(ms)", "cum%", "function")
	for _, f := range funcs[:n] {
		fmt.Fprintf(w, "  %10.1f %5.1f%%  %10.1f %5.1f%%  %s\n",
			float64(f.FlatNs)/1e6, 100*float64(f.FlatNs)/float64(total),
			float64(f.CumNs)/1e6, 100*float64(f.CumNs)/float64(total), f.Name)
	}
}
