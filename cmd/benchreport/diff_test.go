package main

import (
	"strings"
	"testing"
)

func diffFixture() (*Report, *Report) {
	h := Host{Hostname: "a", GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GoVersion: "go1.24"}
	base := &Report{
		Schema: "vccrepro-bench/v2", Host: h, BenchTime: "1s",
		Results: []Result{
			{Name: "encode/vcc_gen256/mlc/energy_saw/fast", Iterations: 1000, NsPerOp: 1700, AllocsPerOp: 0},
			{Name: "encode/vcc_gen256/mlc/energy_saw/ref", Iterations: 1000, NsPerOp: 15700, AllocsPerOp: 0},
			{Name: "engine/submit_async/depth=4/shards=4", Iterations: 100, NsPerOp: 1e7, AllocsPerOp: 0.1, MBPerS: 6},
		},
	}
	fresh := &Report{
		Schema: "vccrepro-bench/v2", Host: h, BenchTime: "1s",
		Results: append([]Result(nil), base.Results...),
	}
	return base, fresh
}

func hasFail(fails []string, substr string) bool {
	for _, f := range fails {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func TestDiffReportsCleanRunPasses(t *testing.T) {
	base, fresh := diffFixture()
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("identical reports flagged: %v", fails)
	}
}

func TestDiffReportsCatchesEncodeAllocRegression(t *testing.T) {
	base, fresh := diffFixture()
	fresh.Results[0].AllocsPerOp = 2
	fails := diffReports(base, fresh)
	if !hasFail(fails, "allocs/op") {
		t.Fatalf("0→2 encode allocs/op not flagged: %v", fails)
	}
}

func TestDiffReportsIgnoresEngineStartupAllocs(t *testing.T) {
	// Engine per-op allocations amortize pool startup and move with
	// benchtime; they must not trip the zero-alloc gate.
	base, fresh := diffFixture()
	fresh.Results[2].AllocsPerOp = 22
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("engine startup allocs flagged as regression: %v", fails)
	}
}

func TestDiffReportsCatchesSpeedupRegression(t *testing.T) {
	base, fresh := diffFixture()
	fresh.Results[0].NsPerOp = 8000 // speedup 9.2x -> 1.96x, under the 9.2/3 floor
	fails := diffReports(base, fresh)
	if !hasFail(fails, "ref/fast") {
		t.Fatalf("speedup collapse not flagged: %v", fails)
	}
}

func TestDiffReportsNsGateNeedsMatchingHost(t *testing.T) {
	base, fresh := diffFixture()
	// Keep the fast/ref ratio intact so only the absolute gate could
	// fire: both sides slow down 4x (a slower machine, not a
	// regression).
	fresh.Results[0].NsPerOp *= 4
	fresh.Results[1].NsPerOp *= 4
	fresh.Host.Hostname = "b"
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("cross-host slowdown flagged: %v", fails)
	}
	// Same host: the 4x movement is a real regression.
	fresh.Host.Hostname = "a"
	fails := diffReports(base, fresh)
	if !hasFail(fails, "ns/op") {
		t.Fatalf("same-host 4x ns/op regression not flagged: %v", fails)
	}
}

func TestSpeedupPairs(t *testing.T) {
	base, _ := diffFixture()
	sp := speedupPairs(base)
	got, ok := sp["encode/vcc_gen256/mlc/energy_saw"]
	if !ok {
		t.Fatalf("fast/ref pair not derived: %v", sp)
	}
	if got < 9.2 || got > 9.3 {
		t.Fatalf("speedup = %.3f, want 15700/1700", got)
	}
}
