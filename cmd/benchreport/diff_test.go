package main

import (
	"fmt"
	"strings"
	"testing"
)

func diffFixture() (*Report, *Report) {
	h := Host{Hostname: "a", GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GoVersion: "go1.24"}
	base := &Report{
		Schema: "vccrepro-bench/v2", Host: h, BenchTime: "1s",
		Results: []Result{
			{Name: "encode/vcc_gen256/mlc/energy_saw/fast", Iterations: 1000, NsPerOp: 1700, AllocsPerOp: 0},
			{Name: "encode/vcc_gen256/mlc/energy_saw/ref", Iterations: 1000, NsPerOp: 15700, AllocsPerOp: 0},
			{Name: "engine/submit_async/depth=4/shards=4", Iterations: 100, NsPerOp: 1e7, AllocsPerOp: 0.1, MBPerS: 6},
		},
	}
	fresh := &Report{
		Schema: "vccrepro-bench/v2", Host: h, BenchTime: "1s",
		Results: append([]Result(nil), base.Results...),
	}
	return base, fresh
}

func hasFail(fails []string, substr string) bool {
	for _, f := range fails {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func TestDiffReportsCleanRunPasses(t *testing.T) {
	base, fresh := diffFixture()
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("identical reports flagged: %v", fails)
	}
}

func TestDiffReportsCatchesEncodeAllocRegression(t *testing.T) {
	base, fresh := diffFixture()
	fresh.Results[0].AllocsPerOp = 2
	fails := diffReports(base, fresh)
	if !hasFail(fails, "allocs/op") {
		t.Fatalf("0→2 encode allocs/op not flagged: %v", fails)
	}
}

func TestDiffReportsIgnoresEngineStartupAllocs(t *testing.T) {
	// Engine per-op allocations amortize pool startup and move with
	// benchtime; they must not trip the zero-alloc gate.
	base, fresh := diffFixture()
	fresh.Results[2].AllocsPerOp = 22
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("engine startup allocs flagged as regression: %v", fails)
	}
}

func TestDiffReportsCatchesSpeedupRegression(t *testing.T) {
	base, fresh := diffFixture()
	fresh.Results[0].NsPerOp = 8000 // speedup 9.2x -> 1.96x, under the 9.2/3 floor
	fails := diffReports(base, fresh)
	if !hasFail(fails, "ref/fast") {
		t.Fatalf("speedup collapse not flagged: %v", fails)
	}
}

func TestDiffReportsNsGateNeedsMatchingHost(t *testing.T) {
	base, fresh := diffFixture()
	// Keep the fast/ref ratio intact so only the absolute gate could
	// fire: both sides slow down 4x (a slower machine, not a
	// regression).
	fresh.Results[0].NsPerOp *= 4
	fresh.Results[1].NsPerOp *= 4
	fresh.Host.Hostname = "b"
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("cross-host slowdown flagged: %v", fails)
	}
	// Same host: the 4x movement is a real regression.
	fresh.Host.Hostname = "a"
	fails := diffReports(base, fresh)
	if !hasFail(fails, "ns/op") {
		t.Fatalf("same-host 4x ns/op regression not flagged: %v", fails)
	}
}

func TestDiffReportsToleratesMetricsMissingFromBase(t *testing.T) {
	// A baseline from before a metric existed (older BENCH_*.json: no
	// campaign block, no stored/decode pairs, no named speedups) must
	// not fail a fresh report that carries the new metrics — they are
	// reported as new, never gated against an absent key.
	base, fresh := diffFixture()
	fresh.Results = append(fresh.Results,
		Result{Name: "decode/vcc_stored256/line/fast", Iterations: 1000, NsPerOp: 40},
		Result{Name: "decode/vcc_stored256/line/ref", Iterations: 1000, NsPerOp: 200},
	)
	fresh.SpeedupVCCStoredSLCEnergySAW = 2.9
	fresh.SpeedupDecodeStored = 5
	fresh.Campaigns = map[string]map[string]float64{
		"fault-aging": {"ext_measured_final": 1.8, "rel_err_final": 0.04},
	}
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("metrics missing from base flagged: %v", fails)
	}
	// Same for a single metric missing inside a campaign both sides ran.
	base.Campaigns = map[string]map[string]float64{"fault-aging": {}}
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("campaign metrics missing from base flagged: %v", fails)
	}
}

func TestDiffReportsCatchesLifetimeRegression(t *testing.T) {
	base, fresh := diffFixture()
	base.Campaigns = map[string]map[string]float64{
		"wear-leveling": {"extension": 3.0},
		"fault-aging":   {"ext_measured_final": 1.8},
	}
	fresh.Campaigns = map[string]map[string]float64{
		"wear-leveling": {"extension": 1.2}, // below the 1.5 half-baseline floor
		"fault-aging":   {"ext_measured_final": 1.8},
	}
	fails := diffReports(base, fresh)
	if !hasFail(fails, "extension") {
		t.Fatalf("lifetime-extension collapse not flagged: %v", fails)
	}
	if hasFail(fails, "ext_measured_final") {
		t.Fatalf("unchanged fault-aging extension flagged: %v", fails)
	}
}

func TestDiffReportsCatchesModelErrorRegression(t *testing.T) {
	base, fresh := diffFixture()
	base.Campaigns = map[string]map[string]float64{"fault-aging": {"rel_err_final": 0.03}}
	fresh.Campaigns = map[string]map[string]float64{"fault-aging": {"rel_err_final": 0.25}}
	if fails := diffReports(base, fresh); !hasFail(fails, "rel_err_final") {
		t.Fatalf("model-error growth not flagged: %v", fails)
	}
	// Within twice-the-baseline-plus-floor is noise, not a regression.
	fresh.Campaigns["fault-aging"]["rel_err_final"] = 0.07
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("in-tolerance model error flagged: %v", fails)
	}
}

func TestDiffReportsCatchesCampaignViolations(t *testing.T) {
	// verify_violations gates on the fresh side alone: a violation is an
	// oracle failure even when the baseline never ran the campaign.
	base, fresh := diffFixture()
	fresh.Campaigns = map[string]map[string]float64{
		"crash-recovery": {"verify_violations": 2},
	}
	if fails := diffReports(base, fresh); !hasFail(fails, "verification violations") {
		t.Fatalf("campaign verification violations not flagged: %v", fails)
	}
}

func loadgenBlob(throughput float64, errResps, transport int64) []byte {
	return []byte(fmt.Sprintf(`{
		"schema": "vccrepro-loadgen/v1",
		"clients": 8, "tenants": 2, "requests": 400, "ops_done": 6400,
		"throughput_ops_per_sec": %g,
		"error_responses": %d, "transport_errors": %d,
		"latency_ns": {"p50_ns": 900000, "p95_ns": 1800000, "p99_ns": 2300000}
	}`, throughput, errResps, transport))
}

func TestDiffLoadgenNewVsOldBaseline(t *testing.T) {
	// BENCH_8 predates the server subsystem: a fresh report carrying a
	// loadgen summary against it is "new, no baseline", never a failure.
	base, fresh := diffFixture()
	fresh.Loadgen = loadgenBlob(100000, 0, 0)
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("loadgen summary missing from base flagged: %v", fails)
	}
}

func TestDiffLoadgenCatchesUncleanRun(t *testing.T) {
	// Error responses gate absolutely — even without a baseline: a
	// non-OK response during the smoke burst is a protocol failure.
	base, fresh := diffFixture()
	fresh.Loadgen = loadgenBlob(100000, 3, 0)
	if fails := diffReports(base, fresh); !hasFail(fails, "unclean") {
		t.Fatalf("error responses not flagged: %v", fails)
	}
	fresh.Loadgen = loadgenBlob(100000, 0, 1)
	if fails := diffReports(base, fresh); !hasFail(fails, "unclean") {
		t.Fatalf("transport errors not flagged: %v", fails)
	}
}

func TestDiffLoadgenThroughputGateIsHostScoped(t *testing.T) {
	base, fresh := diffFixture()
	base.Loadgen = loadgenBlob(100000, 0, 0)
	fresh.Loadgen = loadgenBlob(100000, 0, 0)
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("identical loadgen summaries flagged: %v", fails)
	}
	// A >2.5x same-host throughput collapse is a regression...
	fresh.Loadgen = loadgenBlob(30000, 0, 0)
	if fails := diffReports(base, fresh); !hasFail(fails, "ops/s") {
		t.Fatalf("same-host throughput collapse not flagged: %v", fails)
	}
	// ...but the same numbers across machines are not comparable.
	fresh.Host.Hostname = "b"
	if fails := diffReports(base, fresh); len(fails) != 0 {
		t.Fatalf("cross-host throughput delta flagged: %v", fails)
	}
}

func TestCheckLoadgen(t *testing.T) {
	if _, err := checkLoadgen(loadgenBlob(100000, 0, 0)); err != nil {
		t.Fatalf("clean summary rejected: %v", err)
	}
	for name, blob := range map[string][]byte{
		"wrong-schema":  []byte(`{"schema": "vccrepro-bench/v2"}`),
		"zero-ops":      []byte(`{"schema": "vccrepro-loadgen/v1", "ops_done": 0}`),
		"unclean":       loadgenBlob(100000, 1, 0),
		"non-monotone":  []byte(`{"schema": "vccrepro-loadgen/v1", "ops_done": 1, "throughput_ops_per_sec": 1, "latency_ns": {"p50_ns": 5, "p95_ns": 3, "p99_ns": 9}}`),
		"not-even-json": []byte(`{`),
	} {
		if _, err := checkLoadgen(blob); err == nil {
			t.Errorf("checkLoadgen accepted %s summary", name)
		}
	}
}

func TestSpeedupPairs(t *testing.T) {
	base, _ := diffFixture()
	sp := speedupPairs(base)
	got, ok := sp["encode/vcc_gen256/mlc/energy_saw"]
	if !ok {
		t.Fatalf("fast/ref pair not derived: %v", sp)
	}
	if got < 9.2 || got > 9.3 {
		t.Fatalf("speedup = %.3f, want 15700/1700", got)
	}
}
