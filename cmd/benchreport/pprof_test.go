package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// pprofBurn is the profiling target: CPU-bound, package-level and
// noinline so the sampler attributes its ticks to a stable symbol the
// test can assert on.
//
//go:noinline
func pprofBurn(rounds int) uint64 {
	var acc uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < rounds; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
		acc += uint64(i)
	}
	return acc
}

var pprofSink uint64

// TestParseCPUProfile runs the real runtime/pprof encoder over a busy
// loop and feeds the result to the hand-rolled parser: the burn
// function must surface with nonzero flat time, and the rendered table
// must carry the header line CI greps for.
func TestParseCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "burn.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatal(err)
	}
	// ~150ms of work: plenty of 10ms sampler ticks.
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		pprofSink ^= pprofBurn(1 << 16)
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := parseCPUProfile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) == 0 {
		t.Fatal("no functions decoded from a 150ms busy-loop profile")
	}
	found := false
	for _, fn := range funcs {
		if strings.Contains(fn.Name, "pprofBurn") {
			found = true
			if fn.FlatNs <= 0 {
				t.Errorf("pprofBurn decoded with no flat time: %+v", fn)
			}
			if fn.CumNs < fn.FlatNs {
				t.Errorf("cum < flat for %+v", fn)
			}
		}
	}
	if !found {
		t.Fatalf("pprofBurn missing from decoded profile; top entry %+v", funcs[0])
	}

	var buf bytes.Buffer
	printHotFuncs(&buf, "test/burn", funcs, 5)
	out := buf.String()
	if !strings.Contains(out, "top 5 hot functions") {
		t.Errorf("table header missing from output:\n%s", out)
	}
	if !strings.Contains(out, "pprofBurn") {
		t.Errorf("burn function missing from rendered table:\n%s", out)
	}
}

// TestParseCPUProfileRejectsGarbage pins the error paths: plain bytes
// are not a gzip stream, and a valid gzip of garbage is not a profile.
func TestParseCPUProfileRejectsGarbage(t *testing.T) {
	if _, err := parseCPUProfile([]byte("not a profile")); err == nil {
		t.Error("plain-text input parsed without error")
	}
}
