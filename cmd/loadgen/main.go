// Command loadgen drives a live vccserve with N concurrent simulated
// clients replaying internal/workload mixes, and reports throughput
// plus p50/p95/p99 request latency.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:7421 -clients 8 -tenants 2 -n 200
//	loadgen -addr 127.0.0.1:7421 -mix "zipf:0.8,seq:0.2" -readfrac 0.7
//	loadgen -addr 127.0.0.1:7421 -duration 5s -rate 500 -json summary.json
//
// Each client owns one connection bound to tenant client%tenants and
// issues BATCH frames of -batch ops drawn from its own deterministic
// workload stream (-mix over the patterns seq, zipf, stride, chase;
// -readfrac interleaves reads). -rate paces each client on a fixed
// open-loop schedule so queueing delay is measured rather than
// absorbed; the default is closed-loop (issue on response). Latencies
// are recorded per client into internal/perf histograms and merged.
//
// With -retries N the clients use the resilient connection mode
// (server.ClientOpts): busy and device-error responses and transport
// drops are retried with jittered exponential backoff and transparent
// reconnect, up to N attempts per request. Recovered failures are
// reported in the retries/busy_responses/device_error_responses/
// reconnects counters; error_responses and transport_errors count
// only FINAL failures that exhausted the budget.
//
// The -json summary (schema vccrepro-loadgen/v2) embeds into the
// benchreport trajectory via benchreport -loadgen; the process exits
// nonzero on any final transport error, any final non-OK response, or
// zero completed ops — a run that recovered every fault through
// retries exits 0, so chaos smoke tests can assert resilience
// directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/prng"
	"repro/internal/server"
	"repro/internal/workload"
)

// Summary is the machine-readable run report.
type Summary struct {
	Schema      string  `json:"schema"`
	Addr        string  `json:"addr"`
	Clients     int     `json:"clients"`
	Tenants     int     `json:"tenants"`
	BatchOps    int     `json:"batch_ops"`
	Mix         string  `json:"mix"`
	ReadFrac    float64 `json:"read_frac"`
	RatePerSec  float64 `json:"rate_per_sec"`
	Seed        uint64  `json:"seed"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	Requests    int64   `json:"requests"`
	OpsDone     int64   `json:"ops_done"`
	ThroughputO float64 `json:"throughput_ops_per_sec"`
	ThroughputM float64 `json:"throughput_mb_per_sec"`
	// ErrorResps and Transport count final failures only: requests
	// that still failed after the -retries budget (all failures, with
	// -retries 0). Recovered faults land in the four counters below.
	ErrorResps  int64 `json:"error_responses"`
	Transport   int64 `json:"transport_errors"`
	Retries     int64 `json:"retries"`
	BusyResps   int64 `json:"busy_responses"`
	DevErrResps int64 `json:"device_error_responses"`
	Reconnects  int64 `json:"reconnects"`

	Latency   perf.LatencySummary  `json:"latency_ns"`
	PerTenant []server.TenantStats `json:"per_tenant"`
}

// client is one simulated client's workload state and result counters.
type client struct {
	id        int
	tenant    int
	opts      server.ClientOpts
	requests  int64
	ops       int64
	errResps  int64
	transport int64
	retries   int64
	busy      int64
	devErr    int64
	reconns   int64
	sink      perf.LatencySink
	err       error
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7421", "vccserve TCP address")
		clients  = flag.Int("clients", 8, "concurrent simulated clients")
		tenants  = flag.Int("tenants", 1, "tenants to spread clients across (client i binds tenant i%%tenants)")
		n        = flag.Int("n", 200, "requests per client (ignored with -duration)")
		duration = flag.Duration("duration", 0, "run for a fixed wall-clock window instead of -n requests")
		batch    = flag.Int("batch", 16, "ops per BATCH request frame")
		mix      = flag.String("mix", "zipf:1", "workload mixture, e.g. \"seq:0.5,zipf:0.4,chase:0.1\"")
		readFrac = flag.Float64("readfrac", 0.5, "fraction of ops issued as reads")
		zipfS    = flag.Float64("zipfs", 1.2, "Zipf skew of the zipf pattern")
		stride   = flag.Int("stride", 64, "stride of the stride pattern")
		rate     = flag.Float64("rate", 0, "per-client open-loop request rate (requests/sec); 0 = closed loop")
		seed     = flag.Uint64("seed", 1, "master seed; clients derive decorrelated streams")
		wait     = flag.Duration("connectwait", 5*time.Second, "how long to retry the initial dials (server startup race)")
		jsonOut  = flag.String("json", "", "write the machine-readable summary to this file ('-' = stdout)")

		retries   = flag.Int("retries", 0, "per-request retry budget for busy/device-error/transport failures (0 = fail fast)")
		retryBase = flag.Duration("retrybase", time.Millisecond, "-retries: initial backoff step")
		retryMax  = flag.Duration("retrymax", 200*time.Millisecond, "-retries: backoff cap")
		opTimeout = flag.Duration("optimeout", 0, "per-request connection deadline (0 = none)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if *clients < 1 || *tenants < 1 || *batch < 1 {
		fail(fmt.Errorf("-clients, -tenants and -batch must be positive"))
	}
	if !(*readFrac >= 0 && *readFrac <= 1) {
		fail(fmt.Errorf("-readfrac %v out of range [0,1]", *readFrac))
	}
	if *duration == 0 && *n < 1 {
		fail(fmt.Errorf("-n must be positive without -duration"))
	}

	cls := make([]*client, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = start.Add(*duration)
	}
	for i := range cls {
		cls[i] = &client{id: i, tenant: i % *tenants, opts: server.ClientOpts{
			OpTimeout:  *opTimeout,
			MaxRetries: *retries,
			RetryBase:  *retryBase,
			RetryMax:   *retryMax,
			Seed:       *seed ^ uint64(i)<<32,
		}}
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			c.err = c.run(*addr, *wait, *n, deadline, *batch, *mix, *readFrac, *zipfS, *stride, *rate, *seed)
		}(cls[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := Summary{
		Schema:     "vccrepro-loadgen/v2",
		Addr:       *addr,
		Clients:    *clients,
		Tenants:    *tenants,
		BatchOps:   *batch,
		Mix:        *mix,
		ReadFrac:   *readFrac,
		RatePerSec: *rate,
		Seed:       *seed,
		ElapsedSec: elapsed.Seconds(),
	}
	var merged perf.LatencySink
	for _, c := range cls {
		sum.Requests += c.requests
		sum.OpsDone += c.ops
		sum.ErrorResps += c.errResps
		sum.Transport += c.transport
		sum.Retries += c.retries
		sum.BusyResps += c.busy
		sum.DevErrResps += c.devErr
		sum.Reconnects += c.reconns
		merged.Merge(&c.sink)
		if c.err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: client %d: %v\n", c.id, c.err)
		}
	}
	sum.Latency = merged.Summary()
	if s := elapsed.Seconds(); s > 0 {
		sum.ThroughputO = float64(sum.OpsDone) / s
		sum.ThroughputM = float64(sum.OpsDone) * server.LineSize / 1e6 / s
	}

	// Final per-tenant server-side stats, fetched over fresh
	// connections after every client finished.
	for t := 0; t < *tenants; t++ {
		st, err := fetchTenantStats(*addr, *wait, t)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: tenant %d stats: %v\n", t, err)
			sum.Transport++
			continue
		}
		sum.PerTenant = append(sum.PerTenant, st)
	}

	fmt.Printf("loadgen: %d clients x %d tenants against %s\n", *clients, *tenants, *addr)
	fmt.Printf("  %d requests, %d ops in %.2fs: %.0f ops/s, %.2f MB/s\n",
		sum.Requests, sum.OpsDone, sum.ElapsedSec, sum.ThroughputO, sum.ThroughputM)
	fmt.Printf("  latency p50=%s p95=%s p99=%s max=%s\n",
		time.Duration(sum.Latency.P50), time.Duration(sum.Latency.P95),
		time.Duration(sum.Latency.P99), time.Duration(sum.Latency.Max))
	fmt.Printf("  error responses=%d transport errors=%d\n", sum.ErrorResps, sum.Transport)
	if sum.Retries > 0 || sum.BusyResps > 0 || sum.DevErrResps > 0 || sum.Reconnects > 0 {
		fmt.Printf("  recovered: retries=%d busy=%d device-errors=%d reconnects=%d\n",
			sum.Retries, sum.BusyResps, sum.DevErrResps, sum.Reconnects)
	}
	for _, st := range sum.PerTenant {
		fmt.Printf("  tenant ops=%d writes=%d reads=%d saw=%d hits=%d misses=%d energy=%.0fpJ\n",
			st.Ops, st.LineWrites, st.LineReads, st.SAWCells, st.CacheHits, st.CacheMisses, st.EnergyPJ)
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fail(err)
		}
		blob = append(blob, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fail(err)
		}
	}

	if sum.Transport > 0 || sum.ErrorResps > 0 || sum.OpsDone == 0 {
		os.Exit(1)
	}
}

// run executes one client's request loop.
func (c *client) run(addr string, wait time.Duration, n int, deadline time.Time,
	batch int, mix string, readFrac, zipfS float64, stride int, rate float64, seed uint64) error {
	conn, err := server.DialRetryOpts(addr, wait, c.opts)
	if err != nil {
		c.transport++
		return err
	}
	defer conn.Close()
	defer func() {
		c.retries = conn.Retries()
		c.busy = conn.BusyResponses()
		c.devErr = conn.DeviceErrorResponses()
		c.reconns = conn.Reconnects()
	}()
	lines, err := conn.Hello(c.tenant)
	if err != nil {
		c.transport++
		return fmt.Errorf("hello(tenant %d): %w", c.tenant, err)
	}

	// Every client gets a decorrelated deterministic stream: the
	// pattern PRNGs hang off the per-client label, the data PRNG off a
	// separate stream of the same seed.
	label := fmt.Sprintf("loadgen-client-%d", c.id)
	pat, err := workload.ParseMix(mix, workload.MixOpts{
		Lines:    int(lines),
		ZipfSkew: zipfS,
		Stride:   stride,
		Seed:     seed,
		Label:    label,
	})
	if err != nil {
		return err
	}
	stream := workload.NewStream(prng.NewFrom(seed, label).Uint64(),
		workload.Phase{Pattern: pat, ReadFrac: readFrac})
	data := prng.NewFrom(seed, label+"-data")

	ops := make([]server.BatchOp, batch)
	bufs := make([]byte, batch*server.LineSize)
	var res []server.BatchResult
	pacer := workload.NewPacer(rate)

	for req := 0; deadline.IsZero() && req < n || !deadline.IsZero() && time.Now().Before(deadline); req++ {
		for i := range ops {
			line, read := stream.Next()
			if read {
				ops[i] = server.BatchOp{Kind: server.BatchRead, Line: line}
			} else {
				buf := bufs[i*server.LineSize : (i+1)*server.LineSize]
				data.Fill(buf)
				ops[i] = server.BatchOp{Kind: server.BatchWrite, Line: line, Data: buf}
			}
		}
		begin := pacer.Wait(time.Now())
		res, err = conn.Batch(ops, res)
		c.sink.Record(uint64(time.Since(begin)))
		c.requests++
		if err != nil {
			if _, ok := err.(*server.StatusError); ok {
				c.errResps++
				continue
			}
			c.transport++
			return err
		}
		c.ops += int64(len(res))
	}
	return nil
}

// fetchTenantStats opens a short-lived connection to read one
// tenant's final server-side statistics.
func fetchTenantStats(addr string, wait time.Duration, tenant int) (server.TenantStats, error) {
	conn, err := server.DialRetry(addr, wait)
	if err != nil {
		return server.TenantStats{}, err
	}
	defer conn.Close()
	if _, err := conn.Hello(tenant); err != nil {
		return server.TenantStats{}, err
	}
	return conn.Stats()
}
