// Command vccrepro regenerates the tables and figures of the paper's
// evaluation from the simulation stack in this repository.
//
// Usage:
//
//	vccrepro -list                   # enumerate experiments
//	vccrepro -run fig7               # one experiment (quick mode)
//	vccrepro -run fig7 -mode full    # paper-scale configuration
//	vccrepro -run all -csv out/      # everything, also as CSV files
//	vccrepro -run all -workers 8     # fan experiments out over 8 workers
//	vccrepro -run shard-replay -shards 4  # concurrent sharded trace replay
//	vccrepro -run async-sweep             # sync Apply vs pipelined Submit/Wait
//	vccrepro -run workload-sweep -inflight 8  # drive a sweep through the async path
//	vccrepro -campaign list               # enumerate scenario campaigns
//	vccrepro -campaign fault-aging        # one long-horizon scenario campaign
//	vccrepro -campaign crash-recovery -horizon 2000 -lines 128  # reduced scale
//	vccrepro -campaign all -history BENCH_HISTORY.jsonl  # log summaries to the trajectory
//
// Experiment ids follow the paper's numbering (fig1..fig13, table1,
// table2) plus the ablations (ablate-*). Output tables carry notes
// stating the paper claim each experiment is expected to reproduce and
// any substitution involved (see DESIGN.md and EXPERIMENTS.md).
//
// -workers parallelizes across experiments (each driver is independent
// and deterministic, so output is identical to a sequential run and is
// printed in id order; with -workers > 1 tables are buffered until the
// batch completes). -shards and -workers also parameterize the
// sharded-replay driver itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/linecache"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		mode     = flag.String("mode", "quick", "quick or full")
		seed     = flag.Uint64("seed", 1, "master seed")
		csvDir   = flag.String("csv", "", "also write results as CSV files into this directory")
		shards   = flag.Int("shards", 1, "shard count for sharded-replay experiments")
		workers  = flag.Int("workers", 1, "worker pool bound: parallel experiments and sharded replay")
		cacheLn  = flag.Int("cachelines", 0, "per-shard decoded-line cache capacity for experiments that honor it (workload-sweep); 0 = uncached")
		cachePl  = flag.String("cachepolicy", "wt", "cache write policy with -cachelines: writethrough|wt|writeback|wb")
		inFlight = flag.Int("inflight", 0, "issue op streams asynchronously with this many tickets in flight, for experiments that honor it (workload-sweep); 0 = synchronous Apply")
		camp     = flag.String("campaign", "", "scenario campaign to run ('list' enumerates; see internal/campaign)")
		lines    = flag.Int("lines", 0, "line capacity override for -campaign; 0 = scenario default")
		horizon  = flag.Int64("horizon", 0, "op-budget override for -campaign (reduced-horizon smoke runs); 0 = scenario default")
		history  = flag.String("history", "", "append -campaign summaries as JSON lines to this trajectory log (e.g. BENCH_HISTORY.jsonl)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-16s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *camp != "" {
		runCampaign(*camp, campaign.Params{
			Seed: *seed, Shards: *shards, Workers: *workers,
			Lines: *lines, Horizon: *horizon,
		}, *history)
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "vccrepro: nothing to do; use -list, -run <id> or -campaign <name>")
		flag.Usage()
		os.Exit(2)
	}

	var m experiments.Mode
	switch *mode {
	case "quick":
		m = experiments.Quick
	case "full":
		m = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "vccrepro: unknown mode %q (quick|full)\n", *mode)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	if *workers < 1 {
		*workers = 1
	}
	policy, err := linecache.ParsePolicy(*cachePl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
		os.Exit(2)
	}
	opts := experiments.Opts{Mode: m, Seed: *seed, Shards: *shards, Workers: *workers,
		CacheLines: *cacheLn, CachePolicy: policy, InFlight: *inFlight}
	start := time.Now()
	emit := func(id string, res *experiments.Result) {
		fmt.Print(res.Table())
		fmt.Printf("(%s mode, seed %d)\n\n", m, *seed)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *workers == 1 {
		// Sequential: stream each table as it completes.
		for _, id := range ids {
			res, err := experiments.RunOpts(id, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
				os.Exit(1)
			}
			emit(id, res)
		}
	} else {
		results, err := experiments.RunMany(ids, opts, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
			os.Exit(1)
		}
		for i, id := range ids {
			emit(id, results[i])
		}
	}
	fmt.Printf("%d experiment(s) in %.1fs (%d worker(s))\n",
		len(ids), time.Since(start).Seconds(), *workers)
}

// runCampaign executes one scenario campaign (or lists them) and exits
// nonzero on an unknown name or a failed verification invariant, so CI
// smoke steps catch regressions without parsing the table. With a
// history path, each campaign's summary is appended as one JSON line to
// the same append-only trajectory log benchreport writes, so lifetime
// metrics are versioned alongside the timing results.
func runCampaign(name string, p campaign.Params, history string) {
	if name == "list" || name == "all" {
		for _, in := range campaign.List() {
			fmt.Printf("%-20s %s\n", in.Name, in.Title)
		}
		if name == "list" {
			return
		}
	}
	names := []string{name}
	if name == "all" {
		names = campaign.Names()
	}
	start := time.Now()
	for _, n := range names {
		res, err := campaign.Run(n, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Table())
		fmt.Printf("(seed %d)\n\n", p.Seed)
		if v, ok := res.Summary["verify_violations"]; ok && v != 0 {
			fmt.Fprintf(os.Stderr, "vccrepro: campaign %s reported %g verification violations\n", n, v)
			os.Exit(1)
		}
		if history != "" {
			if err := appendCampaignHistory(history, n, p, res.Summary); err != nil {
				fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("%d campaign(s) in %.1fs\n", len(names), time.Since(start).Seconds())
}

// campaignHistoryEntry is one JSON line in the trajectory log. The
// "kind" discriminator keeps these distinguishable from benchreport's
// timing entries when both land in the same BENCH_HISTORY.jsonl.
type campaignHistoryEntry struct {
	Kind     string             `json:"kind"`
	Time     string             `json:"time"`
	GitSHA   string             `json:"git_sha"`
	Campaign string             `json:"campaign"`
	Seed     uint64             `json:"seed"`
	Horizon  int64              `json:"horizon,omitempty"`
	Lines    int                `json:"lines,omitempty"`
	Summary  map[string]float64 `json:"summary"`
}

// appendCampaignHistory appends one summary line; the log is
// append-only by contract — existing lines are never rewritten.
func appendCampaignHistory(path, name string, p campaign.Params, summary map[string]float64) error {
	line, err := json.Marshal(campaignHistoryEntry{
		Kind: "campaign", Time: time.Now().UTC().Format(time.RFC3339),
		GitSHA: gitSHA(), Campaign: name,
		Seed: p.Seed, Horizon: p.Horizon, Lines: p.Lines,
		Summary: summary,
	})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// gitSHA best-effort resolves HEAD, with a "-dirty" suffix for
// uncommitted trees; history entries record "unknown" outside a git
// checkout rather than failing the run.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(st) > 0 {
		sha += "-dirty"
	}
	return sha
}
