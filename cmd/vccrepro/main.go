// Command vccrepro regenerates the tables and figures of the paper's
// evaluation from the simulation stack in this repository.
//
// Usage:
//
//	vccrepro -list                 # enumerate experiments
//	vccrepro -run fig7             # one experiment (quick mode)
//	vccrepro -run fig7 -mode full  # paper-scale configuration
//	vccrepro -run all -csv out/    # everything, also as CSV files
//
// Experiment ids follow the paper's numbering (fig1..fig13, table1,
// table2) plus the ablations (ablate-*). Output tables carry notes
// stating the paper claim each experiment is expected to reproduce and
// any substitution involved (see DESIGN.md and EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		run    = flag.String("run", "", "experiment id to run, or 'all'")
		mode   = flag.String("mode", "quick", "quick or full")
		seed   = flag.Uint64("seed", 1, "master seed")
		csvDir = flag.String("csv", "", "also write results as CSV files into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-16s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "vccrepro: nothing to do; use -list or -run <id>")
		flag.Usage()
		os.Exit(2)
	}

	var m experiments.Mode
	switch *mode {
	case "quick":
		m = experiments.Quick
	case "full":
		m = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "vccrepro: unknown mode %q (quick|full)\n", *mode)
		os.Exit(2)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, m, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Table())
		fmt.Printf("(%s mode, seed %d, %.1fs)\n\n", m, *seed, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "vccrepro: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
