// Command vccserve serves a vcc.ShardedMemory as a multi-tenant
// line-store network service (internal/server): a length-prefixed
// binary TCP protocol on -addr, plus an optional HTTP/JSON debug
// front on -http.
//
// Usage:
//
//	vccserve -addr :7421 -lines 65536 -shards 4 -tenants 2
//	vccserve -addr :7421 -cache -cachelines 1024 -cachepolicy wb
//	vccserve -addr 127.0.0.1:7421 -http 127.0.0.1:7422 -encoder vccgen
//	vccserve -addr :7421 -chaos 0.3 -chaostorn 0.1 -maxinflight 16
//
// The engine flags mirror vccrepro/tracegen: shard count, worker
// bound, per-shard queue depth, decoded-line cache, remap spares and
// fault injection all configure the same ShardedMemoryConfig the
// in-process experiments use. Tenants split the line address space
// into equal disjoint slices; clients bind to a tenant with the HELLO
// verb and address lines tenant-relatively (see internal/server for
// the wire protocol). SIGINT/SIGTERM shut down gracefully: in-flight
// requests drain, then the engine flushes and closes.
//
// The -chaos* flags install the deterministic fault-injection
// decorator (internal/chaos) on every shard: transient read/write
// errors, torn writes, corrupted reads and latency stalls at the
// given per-attempt rates. Faults surface on the wire as typed
// device-error responses after the controller's bounded retries;
// -maxinflight bounds admitted ops across all connections, shedding
// excess requests with a typed busy response. Both keep the
// connection alive, so retrying clients (loadgen, server.DialOpts)
// recover without reconnecting.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	vcc "repro"
	"repro/internal/linecache"
	"repro/internal/server"
)

// newEncoder maps the -encoder flag to a per-shard encoder factory.
func newEncoder(name string) (func() vcc.Encoder, error) {
	switch name {
	case "vcc":
		return func() vcc.Encoder { return vcc.NewVCCEncoder(256) }, nil
	case "vccgen":
		return func() vcc.Encoder { return vcc.NewVCCGeneratedEncoder(256) }, nil
	case "rcc":
		return func() vcc.Encoder { return vcc.NewRCCEncoder(256) }, nil
	case "fnw":
		return func() vcc.Encoder { return vcc.NewFNWEncoder(16) }, nil
	case "flipcy":
		return func() vcc.Encoder { return vcc.NewFlipcyEncoder() }, nil
	case "none":
		return func() vcc.Encoder { return vcc.NewUnencoded() }, nil
	default:
		return nil, fmt.Errorf("-encoder %q: want vcc|vccgen|rcc|fnw|flipcy|none", name)
	}
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7421", "TCP listen address for the binary line-store protocol")
		httpAddr = flag.String("http", "", "optional HTTP/JSON debug listen address (empty = disabled)")
		lines    = flag.Int("lines", 1<<16, "memory capacity in cache lines")
		shards   = flag.Int("shards", 4, "shard count")
		workers  = flag.Int("workers", 0, "worker pool bound (default min(shards, GOMAXPROCS))")
		qdepth   = flag.Int("queuedepth", 0, "per-shard issue-queue bound (0 = engine default)")
		encoder  = flag.String("encoder", "vcc", "vcc|vccgen|rcc|fnw|flipcy|none")
		slc      = flag.Bool("slc", false, "single-level cells instead of MLC")
		seed     = flag.Uint64("seed", 1, "engine master seed")
		fault    = flag.Float64("fault", 0, "per-cell stuck-at fault rate")
		spares   = flag.Int("remapspares", 0, "per-shard spare-line pool for fault remapping; 0 = no remapping")
		cache    = flag.Bool("cache", false, "front each shard with a decoded-line LRU cache")
		cacheLn  = flag.Int("cachelines", 1024, "-cache: per-shard cache capacity in lines")
		cachePl  = flag.String("cachepolicy", "wt", "-cache: write policy, writethrough|wt|writeback|wb")
		tenants  = flag.Int("tenants", 1, "tenant count (equal disjoint slices of the line space)")
		maxBatch = flag.Int("maxbatch", 0, "max ops per BATCH frame (0 = server default)")
		window   = flag.Int("window", 0, "per-connection in-flight request bound (0 = server default)")

		chaosRW      = flag.Float64("chaos", 0, "transient read+write error rate per backend attempt (shorthand for -chaosread/-chaoswrite)")
		chaosRead    = flag.Float64("chaosread", 0, "transient read-error rate per backend attempt")
		chaosWrite   = flag.Float64("chaoswrite", 0, "transient write-error rate per backend attempt")
		chaosTorn    = flag.Float64("chaostorn", 0, "torn-write rate (corrupted image stored, typed error returned)")
		chaosCorrupt = flag.Float64("chaoscorrupt", 0, "corrupted-read rate (bit-flipped data plus typed error)")
		chaosStall   = flag.Float64("chaosstall", 0, "latency-stall rate per op")
		stallDelay   = flag.Duration("stalldelay", 0, "stall duration (0 = chaos default)")
		opRetries    = flag.Int("opretries", 0, "controller in-place retry budget per faulted op (0 = default, negative = none)")
		maxInflight  = flag.Int("maxinflight", 0, "server-wide admitted-op bound; excess requests shed with busy (0 = unlimited)")
		writeTO      = flag.Duration("writetimeout", 0, "per-response-frame write deadline; slow clients are disconnected (0 = none)")
		idleTO       = flag.Duration("idletimeout", 0, "per-request idle read deadline (0 = none)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "vccserve: %v\n", err)
		os.Exit(1)
	}

	newEnc, err := newEncoder(*encoder)
	if err != nil {
		fail(err)
	}
	cfg := vcc.ShardedMemoryConfig{
		Lines:      *lines,
		Shards:     *shards,
		Workers:    *workers,
		QueueDepth: *qdepth,
		NewEncoder: newEnc,
		SLC:        *slc,
		Seed:       *seed,
		FaultRate:  *fault,
	}
	if *spares > 0 {
		cfg.RemapSpares = *spares
	}
	cfg.OpRetries = *opRetries
	if *chaosRW != 0 || *chaosRead != 0 || *chaosWrite != 0 || *chaosTorn != 0 ||
		*chaosCorrupt != 0 || *chaosStall != 0 {
		cfg.Chaos = &vcc.ChaosSpec{
			ReadErrRate:     *chaosRW + *chaosRead,
			WriteErrRate:    *chaosRW + *chaosWrite,
			TornWriteRate:   *chaosTorn,
			ReadCorruptRate: *chaosCorrupt,
			StallRate:       *chaosStall,
			StallDelay:      *stallDelay,
		}
	}
	if *cache {
		policy, err := linecache.ParsePolicy(*cachePl)
		if err != nil {
			fail(err)
		}
		if *cacheLn <= 0 {
			fail(fmt.Errorf("-cachelines %d must be positive", *cacheLn))
		}
		cfg.CacheLines = *cacheLn
		cfg.CachePolicy = policy
	}
	mem, err := vcc.NewShardedMemory(cfg)
	if err != nil {
		fail(err)
	}

	srv, err := server.New(server.Config{
		Mem:            mem,
		Tenants:        *tenants,
		MaxBatchOps:    *maxBatch,
		Window:         *window,
		MaxInflightOps: *maxInflight,
		WriteTimeout:   *writeTO,
		IdleTimeout:    *idleTO,
	})
	if err != nil {
		fail(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("vccserve: listening on %s (%d lines, %d shards, %d tenants x %d lines)\n",
		l.Addr(), mem.Lines(), mem.Shards(), srv.Tenants(), srv.TenantLines())

	var hsrv *http.Server
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("vccserve: HTTP debug front on %s\n", hl.Addr())
		hsrv = &http.Server{Handler: srv.HTTPHandler()}
		go hsrv.Serve(hl)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("vccserve: %v: draining\n", s)
	case err := <-done:
		if err != nil {
			fail(err)
		}
	}

	srv.Stop()
	if hsrv != nil {
		hsrv.Close()
	}
	mem.Close()
	fmt.Println("vccserve: closed")
}
