// Command tracegen generates synthetic LLC writeback traces (the SPEC
// CPU 2017 stand-ins of DESIGN.md substitution #1), writes them in the
// trace package's binary container format, and replays them — serially
// or through the concurrent sharded memory engine.
//
// Usage:
//
//	tracegen -list
//	tracegen -bench lbm_s -n 100000 -seed 7 -o lbm.vcct
//	tracegen -bench mcf_s -n 1000 -stats   # print address statistics only
//	tracegen -bench lbm_s -n 100000 -replay -shards 4 -workers 4
//	tracegen -replay -in lbm.vcct -shards 8 -encoder rcc
//	tracegen -bench mcf_s -n 100000 -replay -readfrac -1   # mixed ops at the spec's read fraction
//	tracegen -replay -mix "seq:0.5,zipf:0.4,chase:0.1" -readfrac 0.6 -n 100000
//	tracegen -bench lbm_s -n 100000 -replay -shards 4 -async -inflight 8
//	tracegen -bench mcf_s -n 100000 -replay -fault 1e-3 -remapspares 64 -faultrepo
//
// Replay mode drives the access stream through the full
// encrypt-encode-program pipeline of a vcc.ShardedMemory equivalent
// (internal/shard) via its mixed op path (Engine.Apply) and reports
// read/write statistics and throughput in lines/sec. The input is a
// saved .vcct file (-in), the generated stream of -bench, or a
// synthetic workload mixture (-mix, over the internal/workload
// patterns seq, zipf, stride and chase). -readfrac interleaves reads
// into any of the three; with -bench, -readfrac -1 uses the
// benchmark's own characterized read fraction.
//
// -async replays the identical stream twice — a synchronous Apply
// baseline and a pipelined run keeping -inflight tickets in flight
// through the engine's issue queues — and reports the throughput split
// plus a bit-identity check of the two runs' statistics. Pipelining
// only gains wall clock on multi-core hosts.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/coset"
	"repro/internal/linecache"
	"repro/internal/memctrl"
	"repro/internal/prng"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available benchmarks")
		bench    = flag.String("bench", "", "benchmark name")
		n        = flag.Int("n", 100000, "number of writeback records")
		seed     = flag.Uint64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file (default <bench>.vcct)")
		stats    = flag.Bool("stats", false, "print address-stream statistics instead of writing a file")
		replay   = flag.Bool("replay", false, "replay the trace through the sharded memory engine")
		in       = flag.String("in", "", "replay a saved .vcct file instead of generating")
		mix      = flag.String("mix", "", "replay a synthetic workload mixture, e.g. \"seq:0.5,zipf:0.4,chase:0.1\" (patterns: seq, zipf, stride, chase)")
		rfrac    = flag.Float64("readfrac", 0, "replay: fraction of ops issued as reads; -1 = the benchmark spec's characterized read fraction")
		zipfS    = flag.Float64("zipfs", 1.2, "replay -mix: Zipf skew of the zipf pattern")
		stride   = flag.Int("stride", 64, "replay -mix: stride of the stride pattern")
		shards   = flag.Int("shards", 1, "replay: shard count")
		workers  = flag.Int("workers", 0, "replay: worker pool bound (default min(shards, GOMAXPROCS))")
		memLine  = flag.Int("lines", 1<<16, "replay: memory capacity in cache lines")
		batch    = flag.Int("batch", 256, "replay: writes per dispatched batch")
		encoder  = flag.String("encoder", "vcc", "replay: vcc|vccgen|rcc|fnw|flipcy|none")
		fault    = flag.Float64("fault", 0, "replay: per-cell stuck-at fault rate")
		spares   = flag.Int("remapspares", 0, "replay: per-shard spare-line pool for the fault-remapping decorator; 0 = no remapping")
		frepo    = flag.Bool("faultrepo", false, "replay: track discovered stuck-at cells in a per-shard fault repository (informed remap + in-place retry)")
		slc      = flag.Bool("slc", false, "replay: single-level cells instead of MLC")
		cache    = flag.Bool("cache", false, "replay: front each shard with a decoded-line LRU cache")
		cacheLn  = flag.Int("cachelines", 1024, "replay -cache: per-shard cache capacity in lines")
		cachePl  = flag.String("cachepolicy", "wt", "replay -cache: write policy, writethrough|wt|writeback|wb")
		async    = flag.Bool("async", false, "replay: pipeline batches through the asynchronous Submit path and report the sync-vs-async throughput split")
		inflight = flag.Int("inflight", 4, "replay -async: tickets kept in flight per producer")
	)
	flag.Parse()

	if *list {
		for _, s := range trace.Benchmarks() {
			fmt.Printf("%-14s footprint=%-6d zipf=%.2f stream=%.0f%% wpki=%.1f\n",
				s.Name, s.Lines, s.ZipfS, 100*s.StreamFrac, s.WriteIntensity)
		}
		return
	}

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	if *replay {
		if *rfrac != -1 && !(*rfrac >= 0 && *rfrac <= 1) {
			fmt.Fprintf(os.Stderr, "tracegen: -readfrac %v out of range (want 0..1, or -1 for the benchmark's own fraction)\n", *rfrac)
			os.Exit(2)
		}
		if *rfrac == -1 && (*bench == "" || *in != "" || *mix != "") {
			fmt.Fprintln(os.Stderr, "tracegen: -readfrac -1 needs -bench (saved traces and -mix carry no characterized read fraction)")
			os.Exit(2)
		}
		if *mix != "" && *bench != "" {
			fmt.Fprintln(os.Stderr, "tracegen: -mix and -bench are mutually exclusive")
			os.Exit(2)
		}
		var policy linecache.Policy
		if *cache {
			var err error
			if policy, err = linecache.ParsePolicy(*cachePl); err != nil {
				fail(err)
			}
			if *cacheLn <= 0 {
				fmt.Fprintf(os.Stderr, "tracegen: -cachelines %d must be positive\n", *cacheLn)
				os.Exit(2)
			}
		}
		if *async && *inflight < 1 {
			fmt.Fprintf(os.Stderr, "tracegen: -inflight %d must be at least 1\n", *inflight)
			os.Exit(2)
		}
		if *spares < 0 {
			fmt.Fprintf(os.Stderr, "tracegen: -remapspares %d must be non-negative\n", *spares)
			os.Exit(2)
		}
		cfg := replayConfig{
			shards: *shards, workers: *workers, lines: *memLine, batch: *batch,
			encoder: *encoder, fault: *fault, slc: *slc, seed: *seed,
			spares: *spares, faultRepo: *frepo,
			readFrac: *rfrac,
			cache:    *cache, cacheLines: *cacheLn, cachePolicy: policy,
			async: *async, inFlight: *inflight,
		}
		// The replay source is built through a factory: -async replays the
		// identical stream twice (sync baseline, then pipelined) to report
		// the throughput split, so sources must be reconstructible.
		var mkSource func() (opSource, error)
		switch {
		case *in != "":
			f, err := os.Open(*in)
			if err != nil {
				fail(err)
			}
			records, err := trace.ReadTrace(f)
			f.Close()
			if err != nil {
				fail(err)
			}
			mkSource = func() (opSource, error) { return newRecordSource(records, cfg), nil }
		case *mix != "":
			mkSource = func() (opSource, error) { return newMixSource(*mix, *n, *zipfS, *stride, cfg) }
		case *bench != "":
			spec, err := trace.SpecByName(*bench)
			if err != nil {
				fail(err)
			}
			mkSource = func() (opSource, error) { return newBenchSource(spec, *n, cfg), nil }
		default:
			fmt.Fprintln(os.Stderr, "tracegen: -replay needs -bench, -in or -mix (see -list)")
			os.Exit(2)
		}
		if err := runReplay(mkSource, cfg); err != nil {
			fail(err)
		}
		return
	}

	if *in != "" {
		fmt.Fprintln(os.Stderr, "tracegen: -in without -replay does nothing")
		os.Exit(2)
	}
	if *mix != "" {
		fmt.Fprintln(os.Stderr, "tracegen: -mix without -replay does nothing")
		os.Exit(2)
	}
	if *rfrac != 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -readfrac without -replay does nothing (saved traces are write-only)")
		os.Exit(2)
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench or -in is required (see -list)")
		os.Exit(2)
	}
	spec, err := trace.SpecByName(*bench)
	if err != nil {
		fail(err)
	}
	records := trace.Collect(trace.NewGenerator(spec, *seed), *n)
	if *stats {
		printStats(spec, records)
		return
	}
	path := *out
	if path == "" {
		path = spec.Name + ".vcct"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, records); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
}

// replayConfig bundles the replay-mode flags.
type replayConfig struct {
	shards, workers, lines, batch int
	encoder                       string
	fault                         float64
	slc                           bool
	seed                          uint64
	// spares enables the per-shard fault-remapping decorator with that
	// many spare lines; faultRepo adds the write-driven stuck-cell
	// repository that informs spare selection and in-place retries.
	spares    int
	faultRepo bool
	// readFrac interleaves reads into the replayed stream: the fraction
	// of ops issued as OpRead. -1 selects the benchmark spec's
	// characterized read fraction (meaningful with -bench only).
	readFrac float64
	// cache fronts each shard with a decoded-line LRU of cacheLines
	// lines under cachePolicy.
	cache       bool
	cacheLines  int
	cachePolicy linecache.Policy
	// async replays twice — synchronous Apply baseline, then pipelined
	// Submit with inFlight tickets per producer — and reports the split.
	async    bool
	inFlight int
}

// opSource feeds the replay loop one op at a time. next fills op —
// whose Data field arrives as a reusable 64-byte buffer (write
// plaintext or read destination) — and reports false when the stream is
// exhausted.
type opSource interface {
	next(op *shard.Op) bool
}

// recordSource replays saved writeback records, optionally diverting a
// readFrac fraction of them into reads of the same address.
type recordSource struct {
	records []trace.Record
	i       int
	frac    float64
	rng     *prng.Rand
	lines   int
}

func newRecordSource(records []trace.Record, cfg replayConfig) *recordSource {
	frac := cfg.readFrac
	if frac < 0 {
		frac = 0 // saved traces carry no characterized read fraction
	}
	return &recordSource{
		records: records, frac: frac,
		rng: prng.NewFrom(cfg.seed, "tracegen-replay-rw"), lines: cfg.lines,
	}
}

func (s *recordSource) next(op *shard.Op) bool {
	if s.i >= len(s.records) {
		return false
	}
	r := &s.records[s.i]
	s.i++
	op.Line = int(r.Line % uint64(s.lines))
	if s.frac > 0 && s.rng.Float64() < s.frac {
		op.Kind = shard.OpRead
		return true
	}
	op.Kind = shard.OpWrite
	copy(op.Data, r.Data[:])
	return true
}

// benchSource generates a benchmark's stream on the fly; with a
// non-zero read fraction it walks the mixed op stream (NextOp).
type benchSource struct {
	gen   *trace.Generator
	rec   trace.Record
	left  int
	mixed bool
	lines int
}

func newBenchSource(spec trace.Spec, n int, cfg replayConfig) *benchSource {
	if cfg.readFrac >= 0 {
		spec.ReadFrac = cfg.readFrac
	}
	return &benchSource{
		gen: trace.NewGenerator(spec, cfg.seed), left: n,
		mixed: spec.ReadFrac > 0, lines: cfg.lines,
	}
}

func (s *benchSource) next(op *shard.Op) bool {
	if s.left <= 0 {
		return false
	}
	s.left--
	read := false
	if s.mixed {
		read = s.gen.NextOp(&s.rec)
	} else {
		s.gen.Next(&s.rec)
	}
	op.Line = int(s.rec.Line % uint64(s.lines))
	if read {
		op.Kind = shard.OpRead
		return true
	}
	op.Kind = shard.OpWrite
	copy(op.Data, s.rec.Data[:])
	return true
}

// mixSource drives a synthetic workload mixture (internal/workload)
// with random write plaintext — post-AES the content is uniform anyway.
type mixSource struct {
	stream *workload.Stream
	rng    *prng.Rand
	left   int
}

// newMixSource parses "pat:frac,pat:frac,..." (patterns seq, zipf,
// stride, chase) into a single-phase workload stream over the replay
// footprint. Weights are normalized to sum to 1, so "seq:1,zipf:1" is
// an even mix; repeated patterns get independent PRNG streams.
func newMixSource(spec string, n int, zipfS float64, stride int, cfg replayConfig) (*mixSource, error) {
	// The grammar (and the PRNG stream labels that keep recorded mixes
	// replaying bit-identically) lives in workload.ParseMix, shared
	// with cmd/loadgen.
	pat, err := workload.ParseMix(spec, workload.MixOpts{
		Lines:    cfg.lines,
		ZipfSkew: zipfS,
		Stride:   stride,
		Seed:     cfg.seed,
		Label:    "tracegen-mix",
	})
	if err != nil {
		return nil, fmt.Errorf("-mix: %w", err)
	}
	frac := cfg.readFrac
	if frac < 0 {
		frac = 0
	}
	return &mixSource{
		stream: workload.NewStream(cfg.seed, workload.Phase{
			Pattern: pat, ReadFrac: frac,
		}),
		rng:  prng.NewFrom(cfg.seed, "tracegen-mix-data"),
		left: n,
	}, nil
}

func (s *mixSource) next(op *shard.Op) bool {
	if s.left <= 0 {
		return false
	}
	s.left--
	s.stream.FillOp(op, func(_ uint64, data []byte) { s.rng.Fill(data) })
	return true
}

// newCodec returns a per-shard codec factory for the -encoder flag.
func newCodec(name string, seed uint64) (func() coset.Codec, error) {
	switch name {
	case "vcc":
		return func() coset.Codec { return coset.NewVCCStored(64, 16, 256, seed) }, nil
	case "vccgen":
		return func() coset.Codec { return coset.NewVCCGenerated(16, 256) }, nil
	case "rcc":
		return func() coset.Codec { return coset.NewRCC(64, 256, seed) }, nil
	case "fnw":
		return func() coset.Codec { return coset.NewFNW(64, 16) }, nil
	case "flipcy":
		return func() coset.Codec { return coset.NewFlipcy(64) }, nil
	case "none":
		return func() coset.Codec { return coset.NewIdentity(64) }, nil
	}
	return nil, fmt.Errorf("unknown encoder %q (vcc|vccgen|rcc|fnw|flipcy|none)", name)
}

// buildEngine assembles the replay engine from the flag bundle.
func buildEngine(cfg replayConfig) (*shard.Engine, error) {
	mk, err := newCodec(cfg.encoder, cfg.seed)
	if err != nil {
		return nil, err
	}
	scfg := shard.Config{
		Lines:        cfg.lines,
		Shards:       cfg.shards,
		Workers:      cfg.workers,
		NewCodec:     mk,
		Objective:    coset.ObjEnergySAW,
		SLC:          cfg.slc,
		FaultRate:    cfg.fault,
		Seed:         cfg.seed,
		RemapSpares:  cfg.spares,
		UseFaultRepo: cfg.faultRepo,
	}
	if cfg.cache {
		scfg.CacheLines = cfg.cacheLines
		scfg.CachePolicy = cfg.cachePolicy
	}
	return shard.New(scfg)
}

// replayOnce drives one full pass of the op stream through a fresh
// engine via workload.RunPipelinedFrom — depth 1 (Submit immediately
// followed by Wait, i.e. exactly Apply) for the synchronous baseline,
// cfg.inFlight tickets in flight for the pipelined run — and returns
// the engine (flushed, still open) plus the wall-clock time. All op
// and outcome buffers are allocated once up front, so the loop runs on
// the engine's allocation-free dispatch path.
func replayOnce(mkSource func() (opSource, error), cfg replayConfig, async bool) (*shard.Engine, time.Duration, error) {
	src, err := mkSource()
	if err != nil {
		return nil, 0, err
	}
	eng, err := buildEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	depth := 1
	if async {
		depth = cfg.inFlight
	}
	start := time.Now()
	if err := workload.RunPipelinedFrom(eng, src.next, workload.PipelineConfig{
		Batch: cfg.batch, Depth: depth,
	}); err != nil {
		return nil, 0, err
	}
	// Deferred write-back lines are real device work; flush inside the
	// timed region so write-back throughput is not overstated.
	eng.Flush()
	return eng, time.Since(start), nil
}

// runReplay replays the op stream and prints statistics and throughput.
// With cfg.async it replays the identical stream twice — a synchronous
// baseline and the pipelined async path — and reports both, verifying
// that every statistic is bit-identical across submission modes.
func runReplay(mkSource func() (opSource, error), cfg replayConfig) error {
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	var syncStats *memctrl.Stats
	var syncElapsed time.Duration
	if cfg.async {
		syncEng, elapsed, err := replayOnce(mkSource, cfg, false)
		if err != nil {
			return err
		}
		st := syncEng.Stats()
		syncStats, syncElapsed = &st, elapsed
		syncEng.Close()
	}
	eng, elapsed, err := replayOnce(mkSource, cfg, cfg.async)
	if err != nil {
		return err
	}
	defer eng.Close()
	st := eng.Stats()
	// Logical (request-level) totals: cache hits are reads the decode
	// pipeline never saw, coalesced writes are device RMWs that never
	// happened. Uncached, both terms are zero and these reduce to the
	// device counters.
	writes := st.LineWrites + st.CoalescedWrites
	reads := st.LineReads + st.CacheHits
	total := writes + reads
	fmt.Printf("replayed       %d ops (%d writes, %d reads)\n", total, writes, reads)
	engine := fmt.Sprintf("%d shard(s), %d worker(s), %s encoder", eng.Shards(), eng.Workers(), cfg.encoder)
	if cfg.cache {
		engine += fmt.Sprintf(", %d-line %s cache/shard", cfg.cacheLines, cfg.cachePolicy)
	}
	if cfg.spares > 0 {
		engine += fmt.Sprintf(", %d remap spares/shard", cfg.spares)
		if cfg.faultRepo {
			engine += " (fault repo)"
		}
	}
	fmt.Printf("engine         %s\n", engine)
	if cfg.async {
		fmt.Printf("submission     async, %d ticket(s) in flight, batch %d\n", cfg.inFlight, cfg.batch)
	} else {
		fmt.Printf("submission     sync, batch %d\n", cfg.batch)
	}
	fmt.Printf("elapsed        %.3fs\n", elapsed.Seconds())
	fmt.Printf("throughput     %.0f lines/sec (%.0f writes/sec, %.0f reads/sec)\n",
		float64(total)/elapsed.Seconds(),
		float64(writes)/elapsed.Seconds(),
		float64(reads)/elapsed.Seconds())
	if syncStats != nil {
		// The sync-vs-async split: same stream, same engine config, two
		// submission modes. Gains need multiple cores; on one core the
		// async path pays a small queue-handoff overhead instead.
		fmt.Printf("sync baseline  %.0f lines/sec (%.3fs); async/sync speedup %.2fx\n",
			float64(total)/syncElapsed.Seconds(), syncElapsed.Seconds(),
			syncElapsed.Seconds()/elapsed.Seconds())
		if *syncStats != st {
			fmt.Printf("WARNING        sync and async statistics diverge (submission-order bug):\n  sync  %+v\n  async %+v\n",
				*syncStats, st)
		} else {
			fmt.Printf("determinism    sync and async statistics are bit-identical\n")
		}
	}
	fmt.Printf("write energy   %.4g pJ (aux %.4g pJ)\n", st.EnergyPJ, st.AuxEnergyPJ)
	fmt.Printf("bit flips      %d\n", st.BitFlips)
	fmt.Printf("SAW cells      %d\n", st.SAWCells)
	fmt.Printf("words decoded  %d\n", st.WordsDecoded)
	if cfg.cache {
		fmt.Printf("cache          %d hits, %d misses (%.1f%% hit rate)\n",
			st.CacheHits, st.CacheMisses, 100*st.HitRate())
		fmt.Printf("device writes  %d (%d deferred writebacks, %d coalesced away)\n",
			st.LineWrites, st.Writebacks, st.CoalescedWrites)
	}
	if cfg.spares > 0 {
		fmt.Printf("remap          %d lines relocated, %d repair failures, %d spares left\n",
			st.RemappedLines, st.RepairFailures, eng.SpareLinesLeft())
		if cfg.faultRepo {
			fs := eng.FaultRepoStats()
			fmt.Printf("fault repo     %d stuck cells discovered, %d lookups (%d cache hits)\n",
				fs.Discovered, fs.Lookups, fs.CacheHits)
		}
	}
	for s := 0; s < eng.Shards(); s++ {
		ss := eng.ShardStats(s)
		fmt.Printf("shard %-3d      %d writes, %d reads\n", s, ss.LineWrites, ss.LineReads)
	}
	return nil
}

func printStats(spec trace.Spec, records []trace.Record) {
	counts := map[uint64]int{}
	for i := range records {
		counts[records[i].Line]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < len(freqs) && i < 10; i++ {
		top += freqs[i]
	}
	fmt.Printf("benchmark      %s\n", spec.Name)
	fmt.Printf("records        %d\n", len(records))
	fmt.Printf("distinct lines %d\n", len(counts))
	fmt.Printf("hottest line   %d writes (%.1f%%)\n", freqs[0],
		100*float64(freqs[0])/float64(len(records)))
	fmt.Printf("top-10 lines   %.1f%% of writes\n",
		100*float64(top)/float64(len(records)))
}
