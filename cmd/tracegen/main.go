// Command tracegen generates synthetic LLC writeback traces (the SPEC
// CPU 2017 stand-ins of DESIGN.md substitution #1) and writes them in
// the trace package's binary container format, for replay by external
// tools or for inspection.
//
// Usage:
//
//	tracegen -list
//	tracegen -bench lbm_s -n 100000 -seed 7 -o lbm.vcct
//	tracegen -bench mcf_s -n 1000 -stats   # print address statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/trace"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available benchmarks")
		bench = flag.String("bench", "", "benchmark name")
		n     = flag.Int("n", 100000, "number of writeback records")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default <bench>.vcct)")
		stats = flag.Bool("stats", false, "print address-stream statistics instead of writing a file")
	)
	flag.Parse()

	if *list {
		for _, s := range trace.Benchmarks() {
			fmt.Printf("%-14s footprint=%-6d zipf=%.2f stream=%.0f%% wpki=%.1f\n",
				s.Name, s.Lines, s.ZipfS, 100*s.StreamFrac, s.WriteIntensity)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench is required (see -list)")
		os.Exit(2)
	}
	spec, err := trace.SpecByName(*bench)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	gen := trace.NewGenerator(spec, *seed)
	records := trace.Collect(gen, *n)

	if *stats {
		printStats(spec, records)
		return
	}
	path := *out
	if path == "" {
		path = spec.Name + ".vcct"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, records); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
}

func printStats(spec trace.Spec, records []trace.Record) {
	counts := map[uint64]int{}
	for i := range records {
		counts[records[i].Line]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < len(freqs) && i < 10; i++ {
		top += freqs[i]
	}
	fmt.Printf("benchmark      %s\n", spec.Name)
	fmt.Printf("records        %d\n", len(records))
	fmt.Printf("distinct lines %d\n", len(counts))
	fmt.Printf("hottest line   %d writes (%.1f%%)\n", freqs[0],
		100*float64(freqs[0])/float64(len(records)))
	fmt.Printf("top-10 lines   %.1f%% of writes\n",
		100*float64(top)/float64(len(records)))
}
