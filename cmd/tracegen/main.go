// Command tracegen generates synthetic LLC writeback traces (the SPEC
// CPU 2017 stand-ins of DESIGN.md substitution #1), writes them in the
// trace package's binary container format, and replays them — serially
// or through the concurrent sharded memory engine.
//
// Usage:
//
//	tracegen -list
//	tracegen -bench lbm_s -n 100000 -seed 7 -o lbm.vcct
//	tracegen -bench mcf_s -n 1000 -stats   # print address statistics only
//	tracegen -bench lbm_s -n 100000 -replay -shards 4 -workers 4
//	tracegen -replay -in lbm.vcct -shards 8 -encoder rcc
//
// Replay mode drives every writeback through the full
// encrypt-encode-program pipeline of a vcc.ShardedMemory equivalent
// (internal/shard) and reports write statistics and throughput in
// lines/sec. The input is either a saved .vcct file (-in) or the
// generated stream of -bench.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/coset"
	"repro/internal/shard"
	"repro/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available benchmarks")
		bench   = flag.String("bench", "", "benchmark name")
		n       = flag.Int("n", 100000, "number of writeback records")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default <bench>.vcct)")
		stats   = flag.Bool("stats", false, "print address-stream statistics instead of writing a file")
		replay  = flag.Bool("replay", false, "replay the trace through the sharded memory engine")
		in      = flag.String("in", "", "replay a saved .vcct file instead of generating")
		shards  = flag.Int("shards", 1, "replay: shard count")
		workers = flag.Int("workers", 0, "replay: worker pool bound (default min(shards, GOMAXPROCS))")
		memLine = flag.Int("lines", 1<<16, "replay: memory capacity in cache lines")
		batch   = flag.Int("batch", 256, "replay: writes per dispatched batch")
		encoder = flag.String("encoder", "vcc", "replay: vcc|vccgen|rcc|fnw|flipcy|none")
		fault   = flag.Float64("fault", 0, "replay: per-cell stuck-at fault rate")
		slc     = flag.Bool("slc", false, "replay: single-level cells instead of MLC")
	)
	flag.Parse()

	if *list {
		for _, s := range trace.Benchmarks() {
			fmt.Printf("%-14s footprint=%-6d zipf=%.2f stream=%.0f%% wpki=%.1f\n",
				s.Name, s.Lines, s.ZipfS, 100*s.StreamFrac, s.WriteIntensity)
		}
		return
	}

	var records []trace.Record
	var spec trace.Spec
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		records, err = trace.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	case *bench != "":
		var err error
		spec, err = trace.SpecByName(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		records = trace.Collect(trace.NewGenerator(spec, *seed), *n)
	default:
		fmt.Fprintln(os.Stderr, "tracegen: -bench or -in is required (see -list)")
		os.Exit(2)
	}

	if *replay {
		cfg := replayConfig{
			shards: *shards, workers: *workers, lines: *memLine, batch: *batch,
			encoder: *encoder, fault: *fault, slc: *slc, seed: *seed,
		}
		if err := runReplay(records, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *in != "" {
		fmt.Fprintln(os.Stderr, "tracegen: -in without -replay does nothing")
		os.Exit(2)
	}
	if *stats {
		printStats(spec, records)
		return
	}
	path := *out
	if path == "" {
		path = spec.Name + ".vcct"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteTrace(f, records); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
}

// replayConfig bundles the replay-mode flags.
type replayConfig struct {
	shards, workers, lines, batch int
	encoder                       string
	fault                         float64
	slc                           bool
	seed                          uint64
}

// newCodec returns a per-shard codec factory for the -encoder flag.
func newCodec(name string, seed uint64) (func() coset.Codec, error) {
	switch name {
	case "vcc":
		return func() coset.Codec { return coset.NewVCCStored(64, 16, 256, seed) }, nil
	case "vccgen":
		return func() coset.Codec { return coset.NewVCCGenerated(16, 256) }, nil
	case "rcc":
		return func() coset.Codec { return coset.NewRCC(64, 256, seed) }, nil
	case "fnw":
		return func() coset.Codec { return coset.NewFNW(64, 16) }, nil
	case "flipcy":
		return func() coset.Codec { return coset.NewFlipcy(64) }, nil
	case "none":
		return func() coset.Codec { return coset.NewIdentity(64) }, nil
	}
	return nil, fmt.Errorf("unknown encoder %q (vcc|vccgen|rcc|fnw|flipcy|none)", name)
}

// runReplay drives the records through a sharded engine in batches and
// prints statistics and throughput.
func runReplay(records []trace.Record, cfg replayConfig) error {
	mk, err := newCodec(cfg.encoder, cfg.seed)
	if err != nil {
		return err
	}
	eng, err := shard.New(shard.Config{
		Lines:     cfg.lines,
		Shards:    cfg.shards,
		Workers:   cfg.workers,
		NewCodec:  mk,
		Objective: coset.ObjEnergySAW,
		SLC:       cfg.slc,
		FaultRate: cfg.fault,
		Seed:      cfg.seed,
	})
	if err != nil {
		return err
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	reqs := make([]shard.WriteReq, 0, cfg.batch)
	start := time.Now()
	for off := 0; off < len(records); {
		reqs = reqs[:0]
		for len(reqs) < cfg.batch && off+len(reqs) < len(records) {
			r := &records[off+len(reqs)]
			reqs = append(reqs, shard.WriteReq{
				Line: int(r.Line % uint64(cfg.lines)), Data: r.Data[:],
			})
		}
		if _, err := eng.WriteBatch(reqs); err != nil {
			return err
		}
		off += len(reqs)
	}
	elapsed := time.Since(start)
	st := eng.Stats()
	fmt.Printf("replayed       %d writebacks\n", st.LineWrites)
	fmt.Printf("engine         %d shard(s), %d worker(s), %s encoder\n",
		eng.Shards(), eng.Workers(), cfg.encoder)
	fmt.Printf("elapsed        %.3fs\n", elapsed.Seconds())
	fmt.Printf("throughput     %.0f lines/sec\n",
		float64(st.LineWrites)/elapsed.Seconds())
	fmt.Printf("write energy   %.4g pJ (aux %.4g pJ)\n", st.EnergyPJ, st.AuxEnergyPJ)
	fmt.Printf("bit flips      %d\n", st.BitFlips)
	fmt.Printf("SAW cells      %d\n", st.SAWCells)
	for s := 0; s < eng.Shards(); s++ {
		fmt.Printf("shard %-3d      %d writes\n", s, eng.ShardStats(s).LineWrites)
	}
	return nil
}

func printStats(spec trace.Spec, records []trace.Record) {
	counts := map[uint64]int{}
	for i := range records {
		counts[records[i].Line]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	for i := 0; i < len(freqs) && i < 10; i++ {
		top += freqs[i]
	}
	fmt.Printf("benchmark      %s\n", spec.Name)
	fmt.Printf("records        %d\n", len(records))
	fmt.Printf("distinct lines %d\n", len(counts))
	fmt.Printf("hottest line   %d writes (%.1f%%)\n", freqs[0],
		100*float64(freqs[0])/float64(len(records)))
	fmt.Printf("top-10 lines   %.1f%% of writes\n",
		100*float64(top)/float64(len(records)))
}
