package vcc

// Tests of the public asynchronous submission surface (Session /
// Ticket): the oracle equivalence of pipelined Submit/Wait against the
// synchronous Apply path and the sequential engine, at several shard
// counts and in-flight depths.

import (
	"bytes"
	"sync/atomic"
	"testing"
)

// opWindows carves [0, n) into the variable-size batches used by the
// mixed oracle tests.
func opWindows(n int) [][2]int {
	var wins [][2]int
	for off := 0; off < n; {
		sz := 1 + (off*7)%64
		if off+sz > n {
			sz = n - off
		}
		wins = append(wins, [2]int{off, off + sz})
		off += sz
	}
	return wins
}

// runWindowsAsync pipelines the windows through a Session, keeping up
// to depth tickets in flight, and returns per-op SAW counts and cloned
// read plaintexts.
func runWindowsAsync(t *testing.T, m *ShardedMemory, ops []Op, wins [][2]int, depth int) ([]int, [][]byte) {
	t.Helper()
	sess := m.Session()
	saw := make([]int, len(ops))
	data := make([][]byte, len(ops))
	var pending []*Ticket
	var pendingWin [][2]int
	collect := func() {
		tk, w := pending[0], pendingWin[0]
		pending, pendingWin = pending[1:], pendingWin[1:]
		outs, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			saw[w[0]+i] = outs[i].SAWCells
			if outs[i].Data != nil {
				data[w[0]+i] = bytes.Clone(outs[i].Data)
			}
		}
	}
	for _, w := range wins {
		if len(pending) == depth {
			collect()
		}
		tk, err := sess.Submit(ops[w[0]:w[1]], nil)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, tk)
		pendingWin = append(pendingWin, w)
	}
	for len(pending) > 0 {
		collect()
	}
	sess.Drain()
	return saw, data
}

// runWindowsSync replays the same windows through synchronous Apply.
func runWindowsSync(t *testing.T, m *ShardedMemory, ops []Op, wins [][2]int) ([]int, [][]byte) {
	t.Helper()
	saw := make([]int, len(ops))
	data := make([][]byte, len(ops))
	for _, w := range wins {
		outs, err := m.Apply(ops[w[0]:w[1]], nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			saw[w[0]+i] = outs[i].SAWCells
			if outs[i].Data != nil {
				data[w[0]+i] = bytes.Clone(outs[i].Data)
			}
		}
	}
	return saw, data
}

// readAll snapshots every line's plaintext.
func readAll(t *testing.T, read func(int, []byte) ([]byte, error), lines int) [][]byte {
	t.Helper()
	out := make([][]byte, lines)
	for l := 0; l < lines; l++ {
		b, err := read(l, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[l] = bytes.Clone(b)
	}
	return out
}

// TestAsyncApplyOracle is the acceptance criterion of the async
// redesign: pipelined Submit/Wait at any in-flight depth produces
// per-op outcomes, final statistics and final device state bit-identical
// to synchronous Apply — and, at one shard, to the sequential
// vcc.Memory replaying the same ops one at a time. mixedOps buffers are
// regenerated per engine because reads write into provided op buffers.
func TestAsyncApplyOracle(t *testing.T) {
	const lines, nops = 256, 3000
	cfg := fullConfig(lines, 23)
	wins := opWindows(nops)
	for _, shards := range []int{1, 4} {
		// Synchronous sharded reference.
		ref, err := NewShardedMemory(shardedFrom(cfg, shards, 2))
		if err != nil {
			t.Fatal(err)
		}
		refSAW, refData := runWindowsSync(t, ref, mixedOps(nops, lines, 91), wins)
		refStats := ref.Stats()
		refLines := readAll(t, ref.Read, lines)
		ref.Close()

		// Sequential oracle (single-shard only: ShardedMemory at one
		// shard is pinned bit-identical to Memory, so transitively the
		// async path must match it too — but check directly).
		var seqSAW []int
		var seqData, seqLines [][]byte
		if shards == 1 {
			seq, err := NewMemory(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ops := mixedOps(nops, lines, 91)
			seqSAW = make([]int, nops)
			seqData = make([][]byte, nops)
			for i := range ops {
				if ops[i].Kind == OpWrite {
					if seqSAW[i], err = seq.Write(ops[i].Line, ops[i].Data); err != nil {
						t.Fatal(err)
					}
					continue
				}
				b, err := seq.Read(ops[i].Line, nil)
				if err != nil {
					t.Fatal(err)
				}
				seqData[i] = bytes.Clone(b)
			}
			if got, want := refStats, seq.Stats(); got != want {
				t.Errorf("sync sharded stats diverge from sequential:\nsharded    %+v\nsequential %+v", got, want)
			}
			seqLines = readAll(t, seq.Read, lines)
		}

		for _, depth := range []int{1, 3, 8} {
			m, err := NewShardedMemory(shardedFrom(cfg, shards, shards))
			if err != nil {
				t.Fatal(err)
			}
			gotSAW, gotData := runWindowsAsync(t, m, mixedOps(nops, lines, 91), wins, depth)
			for i := 0; i < nops; i++ {
				if gotSAW[i] != refSAW[i] || !bytes.Equal(gotData[i], refData[i]) {
					t.Fatalf("shards=%d depth=%d: op %d outcome diverges from sync Apply", shards, depth, i)
				}
				if shards == 1 {
					want := seqSAW[i]
					if gotSAW[i] != want || !bytes.Equal(gotData[i], seqData[i]) {
						t.Fatalf("shards=1 depth=%d: op %d outcome diverges from sequential oracle", depth, i)
					}
				}
			}
			if got := m.Stats(); got != refStats {
				t.Errorf("shards=%d depth=%d: stats diverge:\nasync %+v\nsync  %+v", shards, depth, got, refStats)
			}
			gotLines := readAll(t, m.Read, lines)
			for l := 0; l < lines; l++ {
				if !bytes.Equal(gotLines[l], refLines[l]) {
					t.Fatalf("shards=%d depth=%d: line %d contents diverge from sync Apply", shards, depth, l)
				}
				if shards == 1 && !bytes.Equal(gotLines[l], seqLines[l]) {
					t.Fatalf("shards=1 depth=%d: line %d contents diverge from sequential oracle", depth, l)
				}
			}
			m.Close()
		}
	}
}

// TestAsyncCallbackTotals: the SubmitFunc + Drain flow observes exactly
// the totals the synchronous path reports, with outcome delivery
// happening entirely on drainer goroutines.
func TestAsyncCallbackTotals(t *testing.T) {
	const lines, nops = 128, 2000
	mk := func() *ShardedMemory {
		m, err := NewShardedMemory(ShardedMemoryConfig{
			Lines: lines, Shards: 4, Workers: 4, Seed: 6, FaultRate: 1e-2,
			NewEncoder: func() Encoder { return NewVCCEncoder(256) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := mk()
	defer ref.Close()
	refOuts, err := ref.Apply(mixedOps(nops, lines, 17), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSAW := 0
	for i := range refOuts {
		wantSAW += refOuts[i].SAWCells
	}

	m := mk()
	defer m.Close()
	sess := m.Session()
	ops := mixedOps(nops, lines, 17)
	var gotSAW, gotOps atomic.Int64
	cb := func(outs []Outcome, err error) {
		if err != nil {
			t.Error(err)
		}
		for i := range outs {
			gotSAW.Add(int64(outs[i].SAWCells))
		}
		gotOps.Add(int64(len(outs)))
	}
	for _, w := range opWindows(nops) {
		if err := sess.SubmitFunc(ops[w[0]:w[1]], nil, cb); err != nil {
			t.Fatal(err)
		}
	}
	sess.Drain()
	if gotOps.Load() != nops {
		t.Fatalf("callbacks saw %d ops, want %d", gotOps.Load(), nops)
	}
	if int(gotSAW.Load()) != wantSAW {
		t.Errorf("callback SAW total %d, sync total %d", gotSAW.Load(), wantSAW)
	}
	if got, want := m.Stats(), ref.Stats(); got != want {
		t.Errorf("stats diverge:\nasync %+v\nsync  %+v", got, want)
	}
}
