package vcc

import (
	"bytes"
	"testing"
)

func line(seed byte) []byte {
	b := make([]byte, LineSize)
	for i := range b {
		b[i] = seed ^ byte(i*3)
	}
	return b
}

func TestMemoryRoundTrip(t *testing.T) {
	for _, enc := range []Encoder{
		NewVCCEncoder(256), NewVCCGeneratedEncoder(256), NewRCCEncoder(64),
		NewFNWEncoder(16), NewFlipcyEncoder(), NewUnencoded(),
	} {
		mem, err := NewMemory(MemoryConfig{Lines: 32, Encoder: enc,
			Objective: OptEnergy, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < mem.Lines(); l++ {
			if _, err := mem.Write(l, line(byte(l))); err != nil {
				t.Fatal(err)
			}
			got, err := mem.Read(l, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, line(byte(l))) {
				t.Fatalf("%s: line %d corrupted", enc.Name(), l)
			}
		}
	}
}

func TestMemoryDefaults(t *testing.T) {
	mem, err := NewMemory(MemoryConfig{Lines: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Write(0, line(9)); err != nil {
		t.Fatal(err)
	}
	got, _ := mem.Read(0, nil)
	if !bytes.Equal(got, line(9)) {
		t.Error("default config round trip failed")
	}
	if mem.Stats().EnergyPJ <= 0 || mem.Stats().LineWrites != 1 {
		t.Error("stats not recorded")
	}
}

func TestMemoryValidation(t *testing.T) {
	if _, err := NewMemory(MemoryConfig{}); err == nil {
		t.Error("zero lines accepted")
	}
	mem, _ := NewMemory(MemoryConfig{Lines: 4, Seed: 3})
	if _, err := mem.Write(99, line(0)); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := mem.Write(0, make([]byte, 5)); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := mem.Read(-1, nil); err == nil {
		t.Error("negative line read accepted")
	}
	if _, err := mem.Read(0, make([]byte, 3)); err == nil {
		t.Error("short read buffer accepted")
	}
}

func TestMemoryWithFaultsReportsSAW(t *testing.T) {
	mem, _ := NewMemory(MemoryConfig{Lines: 256, Encoder: NewUnencoded(),
		FaultRate: 2e-2, Seed: 4})
	var total int
	for l := 0; l < mem.Lines(); l++ {
		saw, err := mem.Write(l, line(byte(l)))
		if err != nil {
			t.Fatal(err)
		}
		total += saw
	}
	if total == 0 {
		t.Error("2% fault rate produced no SAW on unencoded writes")
	}
	if mem.StuckCells() == 0 {
		t.Error("StuckCells should reflect the fault map")
	}
	// VCC masks most of them on the same fault landscape.
	memV, _ := NewMemory(MemoryConfig{Lines: 256, Encoder: NewVCCEncoder(256),
		Objective: OptSAW, FaultRate: 2e-2, Seed: 4})
	var totalV int
	for l := 0; l < memV.Lines(); l++ {
		saw, _ := memV.Write(l, line(byte(l)))
		totalV += saw
	}
	if totalV*5 > total {
		t.Errorf("VCC SAW %d not well below unencoded %d", totalV, total)
	}
}

func TestMemoryWearTracking(t *testing.T) {
	mem, _ := NewMemory(MemoryConfig{Lines: 4, EnduranceWrites: 30, Seed: 5})
	for i := 0; i < 400; i++ {
		if _, err := mem.Write(i%4, line(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if mem.Stats().FailedCells == 0 {
		t.Error("short-endurance memory should have failed cells")
	}
	if mem.StuckCells() == 0 {
		t.Error("failed cells should appear stuck")
	}
}

func TestMemorySLC(t *testing.T) {
	mem, err := NewMemory(MemoryConfig{Lines: 8, SLC: true,
		Encoder: NewVCCEncoder(256), Objective: OptFlips, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	mem.Write(1, line(7))
	got, _ := mem.Read(1, nil)
	if !bytes.Equal(got, line(7)) {
		t.Error("SLC round trip failed")
	}
}

func TestMemoryUnencryptedAblation(t *testing.T) {
	mem, _ := NewMemory(MemoryConfig{Lines: 8, DisableEncryption: true, Seed: 7})
	mem.Write(2, line(1))
	got, _ := mem.Read(2, nil)
	if !bytes.Equal(got, line(1)) {
		t.Error("unencrypted round trip failed")
	}
}

func TestResetStats(t *testing.T) {
	mem, _ := NewMemory(MemoryConfig{Lines: 4, Seed: 8})
	mem.Write(0, line(0))
	mem.ResetStats()
	if mem.Stats().LineWrites != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestEncoderConstructorsDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, e := range []Encoder{
		NewVCCEncoder(256), NewVCCGeneratedEncoder(256), NewRCCEncoder(64),
		NewFNWEncoder(16), NewFlipcyEncoder(), NewUnencoded(),
	} {
		if names[e.Name()] {
			t.Errorf("duplicate encoder name %q", e.Name())
		}
		names[e.Name()] = true
	}
}

// TestMemoryModelBased drives a fault-free Memory with a random
// operation sequence and checks it against a plain map reference model:
// whatever was written last to a line is what reads back, regardless of
// encoder, interleaving, or overwrite count.
func TestMemoryModelBased(t *testing.T) {
	rng := newTestRand(99)
	for _, enc := range []Encoder{NewVCCEncoder(64), NewVCCGeneratedEncoder(64),
		NewRCCEncoder(32), NewFNWEncoder(16)} {
		mem, err := NewMemory(MemoryConfig{Lines: 16, Encoder: enc, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		model := map[int][]byte{}
		for op := 0; op < 500; op++ {
			l := rng.Intn(16)
			if rng.Intn(2) == 0 || model[l] == nil {
				buf := make([]byte, LineSize)
				rng.Fill(buf)
				if _, err := mem.Write(l, buf); err != nil {
					t.Fatal(err)
				}
				model[l] = buf
			} else {
				got, err := mem.Read(l, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, model[l]) {
					t.Fatalf("%s: op %d line %d: memory diverged from model",
						enc.Name(), op, l)
				}
			}
		}
	}
}

// newTestRand is a tiny splitmix64 so the facade test does not reach
// into internal packages.
type testRand struct{ s, out uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed} }

func (r *testRand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	r.out = z ^ (z >> 31)
	return r.out
}

func (r *testRand) Intn(n int) int { return int(r.next() % uint64(n)) }

func (r *testRand) Fill(b []byte) {
	for i := range b {
		if i%8 == 0 {
			r.next()
		}
		b[i] = byte(r.out >> uint(8*(i%8)))
	}
}
