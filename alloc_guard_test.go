//go:build !race

package vcc

// The allocation guard is measured without the race detector: -race
// instrumentation itself allocates (sync.Pool tracking, channel
// shadowing), which would mask the engine's own behavior.

import (
	"testing"

	"repro/internal/prng"
)

// TestApplySteadyStateWriteAllocs pins the steady-state write hot path
// at zero heap allocations per op: reused op buffers + reused outcome
// slice + recycled dispatch plan means Apply allocates nothing, at one
// shard and across a multi-shard worker pool.
func TestApplySteadyStateWriteAllocs(t *testing.T) {
	for _, tc := range []struct{ shards, workers int }{{1, 1}, {4, 4}} {
		m, err := NewShardedMemory(ShardedMemoryConfig{
			Lines: 1 << 10, Shards: tc.shards, Workers: tc.workers, Seed: 1,
			NewEncoder: func() Encoder { return NewVCCEncoder(256) },
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := prng.New(2)
		const batch = 64
		ops := make([]Op, batch)
		for i := range ops {
			data := make([]byte, LineSize)
			rng.Fill(data)
			ops[i] = Op{Kind: OpWrite, Line: (i * 13) % (1 << 10), Data: data}
		}
		outs := make([]Outcome, batch)
		apply := func() {
			var err error
			if outs, err = m.Apply(ops, outs); err != nil {
				t.Fatal(err)
			}
		}
		apply() // warm the plan pool and per-shard scratch
		if avg := testing.AllocsPerRun(20, apply); avg != 0 {
			t.Errorf("shards=%d workers=%d: steady-state write Apply allocates %.2f/op, want 0",
				tc.shards, tc.workers, avg)
		}
		m.Close()
	}
}
