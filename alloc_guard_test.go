//go:build !race

package vcc

// The allocation guard is measured without the race detector: -race
// instrumentation itself allocates (sync.Pool tracking, channel
// shadowing), which would mask the engine's own behavior.

import (
	"testing"

	"repro/internal/prng"
)

// allocGuardOps builds a reusable mixed batch: every op carries its own
// 64-byte buffer (write plaintext or read destination), so repeated
// Apply calls recycle everything.
func allocGuardOps(batch, lines int, readFrac float64, seed uint64) []Op {
	rng := prng.New(seed)
	ops := make([]Op, batch)
	for i := range ops {
		data := make([]byte, LineSize)
		rng.Fill(data)
		kind := OpWrite
		if rng.Float64() < readFrac {
			kind = OpRead
		}
		ops[i] = Op{Kind: kind, Line: (i * 13) % lines, Data: data}
	}
	return ops
}

// testSteadyStateAllocs pins one (engine, op mix) combination at zero
// steady-state heap allocations per Apply.
func testSteadyStateAllocs(t *testing.T, cfg ShardedMemoryConfig, readFrac float64) {
	t.Helper()
	m, err := NewShardedMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const batch = 64
	ops := allocGuardOps(batch, cfg.Lines, readFrac, 2)
	outs := make([]Outcome, batch)
	apply := func() {
		var err error
		if outs, err = m.Apply(ops, outs); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the plan pool, per-shard scratch and (when configured) the
	// cache: after two rounds every touched line is resident, so the
	// steady state exercises hits plus recycled-entry evictions.
	apply()
	apply()
	if avg := testing.AllocsPerRun(20, apply); avg != 0 {
		t.Errorf("shards=%d workers=%d cache=%d/%v readfrac=%.2f: steady-state Apply allocates %.2f/op, want 0",
			cfg.Shards, cfg.Workers, cfg.CacheLines, cfg.CachePolicy, readFrac, avg)
	}
}

// TestApplySteadyStateAllocs pins the steady-state Apply hot paths at
// zero heap allocations per op — write-only, read-only and mixed
// streams, at one shard and across a multi-shard worker pool, uncached
// and behind both cache policies (hits, misses and recycled-entry
// evictions included).
func TestApplySteadyStateAllocs(t *testing.T) {
	base := func(shards, workers int) ShardedMemoryConfig {
		return ShardedMemoryConfig{
			Lines: 1 << 10, Shards: shards, Workers: workers, Seed: 1,
			NewEncoder: func() Encoder { return NewVCCEncoder(256) },
		}
	}
	for _, tc := range []struct{ shards, workers int }{{1, 1}, {4, 4}} {
		for _, readFrac := range []float64{0, 0.5, 1} {
			cfg := base(tc.shards, tc.workers)
			testSteadyStateAllocs(t, cfg, readFrac)

			cached := cfg
			cached.CacheLines = 32 // far below the 64-op footprint: constant evictions
			for _, policy := range []CachePolicy{WriteThrough, WriteBack} {
				cached.CachePolicy = policy
				testSteadyStateAllocs(t, cached, readFrac)
			}

			// The remap-decorated path: mapping indirection plus per-word
			// fault-repository lookups on every write. No faults are
			// seeded, so no repairs fire — the guard pins the decorator's
			// pass-through overhead at zero. The repository cache is
			// sized above the word footprint: once warm, every lookup is
			// an existing-key LRU touch and never grows the map.
			remapped := cfg
			remapped.RemapSpares = 16
			remapped.UseFaultRepo = true
			remapped.FaultRepoCache = 8192
			testSteadyStateAllocs(t, remapped, readFrac)
		}
	}
}

// TestApplySteadyStateAllocsSlicedEncoders extends the 0-alloc guard
// across the partition-sliced encode fast path's codec variants: stored
// kernels on MLC and SLC, Algorithm 2 generated kernels on the MLC
// right-digit plane, and FNW's sliced per-sub-block path. The sliced
// context and search scratch are controller/codec-owned and warmed by
// the first Apply, so the steady state must stay allocation-free from
// Submit through EncodeSliced.
func TestApplySteadyStateAllocsSlicedEncoders(t *testing.T) {
	for _, enc := range []struct {
		name string
		mk   func() Encoder
		slc  bool
	}{
		{"VCCStored-MLC", func() Encoder { return NewVCCEncoder(256) }, false},
		{"VCCStored-SLC", func() Encoder { return NewVCCEncoder(256) }, true},
		{"VCCGenerated-MLC", func() Encoder { return NewVCCGeneratedEncoder(256) }, false},
		{"FNW16-MLC", func() Encoder { return NewFNWEncoder(16) }, false},
		{"FNW16-SLC", func() Encoder { return NewFNWEncoder(16) }, true},
	} {
		t.Run(enc.name, func(t *testing.T) {
			cfg := ShardedMemoryConfig{
				Lines: 1 << 10, Shards: 2, Workers: 2, Seed: 1,
				NewEncoder: enc.mk, SLC: enc.slc,
			}
			testSteadyStateAllocs(t, cfg, 0.25)
		})
	}
}

// testSteadyStateAllocsAsync pins the pipelined Submit/Wait path at
// zero steady-state heap allocations per rotation: depth slots each own
// their op and outcome buffers, and one measured run submits every slot
// and waits the oldest, exactly like a pipelined producer loop.
func testSteadyStateAllocsAsync(t *testing.T, cfg ShardedMemoryConfig, readFrac float64, depth int) {
	t.Helper()
	m, err := NewShardedMemory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess := m.Session()
	const batch = 64
	type slot struct {
		ops []Op
		out []Outcome
		tk  *Ticket
	}
	slots := make([]slot, depth)
	for i := range slots {
		slots[i].ops = allocGuardOps(batch, cfg.Lines, readFrac, uint64(3+i))
		slots[i].out = make([]Outcome, batch)
	}
	rotate := func() {
		for i := range slots {
			sl := &slots[i]
			if sl.tk != nil {
				if _, err := sl.tk.Wait(); err != nil {
					t.Fatal(err)
				}
			}
			tk, err := sess.Submit(sl.ops, sl.out)
			if err != nil {
				t.Fatal(err)
			}
			sl.tk = tk
		}
	}
	drain := func() {
		for i := range slots {
			if slots[i].tk != nil {
				if _, err := slots[i].tk.Wait(); err != nil {
					t.Fatal(err)
				}
				slots[i].tk = nil
			}
		}
	}
	// Warm the ticket pool, per-shard scratch and (when configured) the
	// cache at full pipeline depth.
	rotate()
	rotate()
	avg := testing.AllocsPerRun(20, rotate)
	drain()
	if avg != 0 {
		t.Errorf("shards=%d cache=%d/%v readfrac=%.2f depth=%d: steady-state Submit/Wait allocates %.2f/rotation, want 0",
			cfg.Shards, cfg.CacheLines, cfg.CachePolicy, readFrac, depth, avg)
	}
}

// TestSubmitSteadyStateAllocs extends the 0-alloc guarantee to the
// asynchronous path: pooled tickets plus recycled per-slot buffers keep
// a pipelined producer at zero allocations per rotation, uncached and
// behind both cache policies, at one shard and across four.
func TestSubmitSteadyStateAllocs(t *testing.T) {
	base := func(shards int) ShardedMemoryConfig {
		return ShardedMemoryConfig{
			Lines: 1 << 10, Shards: shards, Workers: shards, Seed: 1,
			NewEncoder: func() Encoder { return NewVCCEncoder(256) },
		}
	}
	for _, shards := range []int{1, 4} {
		for _, readFrac := range []float64{0, 0.5} {
			cfg := base(shards)
			testSteadyStateAllocsAsync(t, cfg, readFrac, 4)

			cached := cfg
			cached.CacheLines = 32
			for _, policy := range []CachePolicy{WriteThrough, WriteBack} {
				cached.CachePolicy = policy
				testSteadyStateAllocsAsync(t, cached, readFrac, 4)
			}
		}
	}
}
